//===- visitseq/VisitSequence.h - Visit-sequence paradigm -------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Visit sequences (paper section 2.1.1): per (production, LHS partition)
/// pair, a program over the instruction set
///
///   BEGIN i   — begin the i-th visit to the current node;
///   EVAL s    — evaluate the rules defining the occurrences in set s;
///   VISIT i,j — perform the i-th visit of the j-th son (carrying, per the
///               transformation, the partition to use on that son);
///   LEAVE i   — terminate the i-th visit and return to the father.
///
/// An EvaluationPlan bundles the sequences with the partition tables; the
/// exhaustive and incremental evaluators interpret it.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_VISITSEQ_VISITSEQUENCE_H
#define FNC2_VISITSEQ_VISITSEQUENCE_H

#include "ordered/Transform.h"

#include <map>

namespace fnc2 {

/// One abstract evaluator instruction.
struct VisitInstr {
  enum class Op : uint8_t { Begin, Eval, Visit, Leave };

  Op Kind = Op::Begin;
  /// Begin/Leave: this node's visit number. Visit: the son's visit number.
  unsigned VisitNo = 0;
  /// Visit: 0-based son index.
  unsigned Child = 0;
  /// Visit: partition id the son must evaluate under.
  unsigned ChildPartition = 0;
  /// Eval: the rules to run, in dependency order.
  std::vector<RuleId> Rules;

  bool operator==(const VisitInstr &) const = default;
};

/// The visit sequence of one (production, LHS partition) pair.
struct VisitSequence {
  ProdId Prod = InvalidId;
  unsigned LhsPartition = 0;
  unsigned NumVisits = 0;
  std::vector<VisitInstr> Instrs;
  /// Index of the BEGIN i instruction per visit (1-based visit -> [i-1]).
  std::vector<unsigned> BeginIndex;
  /// Partition id committed for each son.
  std::vector<unsigned> ChildPartition;

  bool operator==(const VisitSequence &) const = default;
};

/// Everything an evaluator needs: partition tables and visit sequences.
///
/// Immutability contract: a plan is written exactly once, by
/// buildVisitSequences() (and the storage optimizer reading alongside it),
/// and is strictly read-only afterwards. Every evaluator — exhaustive,
/// demand, storage-optimized, incremental and the batch engine — takes it by
/// const reference and the read path (find(), the sequences, the grammar's
/// semantic function table) performs no hidden mutation, so one plan is
/// safely shared by any number of threads evaluating disjoint trees. The
/// only mutable state reachable through a plan is the runtime
/// DiagnosticEngine captured by molga-lowered semantic functions, which is
/// internally synchronized (see support/Diagnostics.h).
struct EvaluationPlan {
  const AttributeGrammar *AG = nullptr;
  std::vector<std::vector<TotallyOrderedPartition>> Partitions;
  std::vector<VisitSequence> Seqs;
  /// Per production: LHS partition id -> index into Seqs.
  std::vector<std::map<unsigned, unsigned>> SeqIndex;
  unsigned RootPartition = 0;

  /// Structural equality; AG compares by address (two plans for one live
  /// grammar), which is what the artifact round-trip test wants.
  bool operator==(const EvaluationPlan &) const = default;

  /// Finds the sequence for production \p P under LHS partition \p Part;
  /// nullptr when that pair was never generated.
  const VisitSequence *find(ProdId P, unsigned Part) const;

  /// Total number of visit sequences (the evaluator size metric the paper's
  /// partition-count optimization targets).
  unsigned numSequences() const { return static_cast<unsigned>(Seqs.size()); }

  /// Human-readable listing of all sequences.
  std::string dump() const;
};

/// Generates visit sequences from a successful transformation result.
/// Returns false (with diagnostics) if some linear order cannot be
/// segmented into visits — which indicates an internal inconsistency.
bool buildVisitSequences(const AttributeGrammar &AG,
                         const TransformResult &Transform,
                         EvaluationPlan &Plan, DiagnosticEngine &Diags);

} // namespace fnc2

#endif // FNC2_VISITSEQ_VISITSEQUENCE_H
