//===- visitseq/VisitSequence.cpp -----------------------------------------===//

#include "visitseq/VisitSequence.h"

using namespace fnc2;

const VisitSequence *EvaluationPlan::find(ProdId P, unsigned Part) const {
  auto It = SeqIndex[P].find(Part);
  if (It == SeqIndex[P].end())
    return nullptr;
  return &Seqs[It->second];
}

static bool buildOneSequence(const AttributeGrammar &AG,
                             const TransformResult &Transform, ProdId P,
                             const TransformInstance &Inst, VisitSequence &Seq,
                             DiagnosticEngine &Diags) {
  const Production &Pr = AG.prod(P);
  const ProductionInfo &PI = AG.info(P);
  const TotallyOrderedPartition &LhsPart =
      Transform.Partitions[Pr.Lhs][Inst.LhsPart];

  Seq.Prod = P;
  Seq.LhsPartition = Inst.LhsPart;
  Seq.NumVisits = LhsPart.numVisits();
  Seq.ChildPartition = Inst.ChildPart;

  // Visit number of each child attribute under its committed partition.
  auto childVisitOf = [&](unsigned Child, AttrId A) {
    const TotallyOrderedPartition &Part =
        Transform.Partitions[Pr.Rhs[Child]][Inst.ChildPart[Child]];
    return Part.visitOf(AG.attr(A).IndexInOwner);
  };
  auto childNumVisits = [&](unsigned Child) {
    return Transform.Partitions[Pr.Rhs[Child]][Inst.ChildPart[Child]]
        .numVisits();
  };

  // Assign every occurrence in the linear order to an LHS visit chunk; the
  // chunk counter only advances when an LHS attribute of a later block
  // appears (the partition edges guarantee monotonicity).
  std::vector<unsigned> ChunkOf(PI.numOccs(), 1);
  unsigned Current = 1;
  for (OccId O : Inst.Linear) {
    const AttrOcc &Occ = PI.Occs[O];
    if (Occ.isOnSymbol() && Occ.Pos == 0) {
      unsigned V = LhsPart.visitOf(AG.attr(Occ.Attr).IndexInOwner);
      if (V < Current) {
        Diags.error("visit sequence for operator '" + Pr.Name +
                    "': linear order violates the LHS partition");
        return false;
      }
      Current = V;
    }
    ChunkOf[O] = Current;
  }

  // Emit instructions chunk by chunk.
  std::vector<unsigned> NextChildVisit(Pr.arity(), 1);
  auto emitEval = [&](RuleId R) {
    if (!Seq.Instrs.empty() && Seq.Instrs.back().Kind == VisitInstr::Op::Eval) {
      Seq.Instrs.back().Rules.push_back(R);
      return;
    }
    VisitInstr I;
    I.Kind = VisitInstr::Op::Eval;
    I.Rules = {R};
    Seq.Instrs.push_back(std::move(I));
  };
  auto emitVisit = [&](unsigned Child, unsigned VisitNo) {
    VisitInstr I;
    I.Kind = VisitInstr::Op::Visit;
    I.Child = Child;
    I.VisitNo = VisitNo;
    I.ChildPartition = Inst.ChildPart[Child];
    Seq.Instrs.push_back(I);
  };

  for (unsigned V = 1; V <= Seq.NumVisits; ++V) {
    Seq.BeginIndex.push_back(static_cast<unsigned>(Seq.Instrs.size()));
    VisitInstr B;
    B.Kind = VisitInstr::Op::Begin;
    B.VisitNo = V;
    Seq.Instrs.push_back(B);

    for (OccId O : Inst.Linear) {
      if (ChunkOf[O] != V)
        continue;
      const AttrOcc &Occ = PI.Occs[O];
      if (Occ.isLexeme())
        continue;
      if (Occ.isOnSymbol() && Occ.Pos != 0 &&
          AG.attr(Occ.Attr).isSynthesized()) {
        // A son's synthesized attribute: make sure the visits up to the one
        // producing it have been performed.
        unsigned Child = Occ.Pos - 1;
        unsigned Needed = childVisitOf(Child, Occ.Attr);
        while (NextChildVisit[Child] <= Needed)
          emitVisit(Child, NextChildVisit[Child]++);
        continue;
      }
      RuleId R = PI.DefiningRule[O];
      if (R != InvalidId)
        emitEval(R);
    }

    if (V == Seq.NumVisits) {
      // Flush the remaining visits of every son so exhaustive evaluation
      // reaches all attribute instances (sons whose outputs this production
      // never consumes still get fully evaluated).
      for (unsigned C = 0; C != Pr.arity(); ++C)
        while (NextChildVisit[C] <= childNumVisits(C))
          emitVisit(C, NextChildVisit[C]++);
    }

    VisitInstr L;
    L.Kind = VisitInstr::Op::Leave;
    L.VisitNo = V;
    Seq.Instrs.push_back(L);
  }
  return true;
}

bool fnc2::buildVisitSequences(const AttributeGrammar &AG,
                               const TransformResult &Transform,
                               EvaluationPlan &Plan, DiagnosticEngine &Diags) {
  assert(Transform.Success && "transformation must have succeeded");
  Plan.AG = &AG;
  Plan.Partitions = Transform.Partitions;
  Plan.RootPartition = Transform.RootPartition;
  Plan.SeqIndex.assign(AG.numProds(), {});

  for (ProdId P = 0; P != AG.numProds(); ++P) {
    for (const TransformInstance &Inst : Transform.Instances[P]) {
      VisitSequence Seq;
      if (!buildOneSequence(AG, Transform, P, Inst, Seq, Diags))
        return false;
      Plan.SeqIndex[P].emplace(Inst.LhsPart,
                               static_cast<unsigned>(Plan.Seqs.size()));
      Plan.Seqs.push_back(std::move(Seq));
    }
  }
  return true;
}

std::string EvaluationPlan::dump() const {
  std::string Out;
  for (const VisitSequence &Seq : Seqs) {
    const Production &Pr = AG->prod(Seq.Prod);
    Out += "sequence for " + Pr.Name + " / partition " +
           std::to_string(Seq.LhsPartition) + " (" +
           std::to_string(Seq.NumVisits) + " visits)\n";
    for (const VisitInstr &I : Seq.Instrs) {
      switch (I.Kind) {
      case VisitInstr::Op::Begin:
        Out += "  BEGIN " + std::to_string(I.VisitNo) + "\n";
        break;
      case VisitInstr::Op::Leave:
        Out += "  LEAVE " + std::to_string(I.VisitNo) + "\n";
        break;
      case VisitInstr::Op::Visit:
        Out += "  VISIT " + std::to_string(I.VisitNo) + ", son " +
               std::to_string(I.Child + 1) + " (partition " +
               std::to_string(I.ChildPartition) + ")\n";
        break;
      case VisitInstr::Op::Eval:
        Out += "  EVAL {";
        for (size_t R = 0; R != I.Rules.size(); ++R) {
          if (R)
            Out += ", ";
          Out += AG->occName(Seq.Prod, AG->rule(I.Rules[R]).Target);
        }
        Out += "}\n";
        break;
      }
    }
  }
  return Out;
}
