//===- tree/Tree.cpp ------------------------------------------------------===//

#include "tree/Tree.h"

#include <cctype>
#include <cstring>

using namespace fnc2;

//===----------------------------------------------------------------------===//
// FrameArena
//===----------------------------------------------------------------------===//

FrameArena::~FrameArena() {
  for (auto &[Vals, Count] : Frames)
    for (uint32_t I = 0; I != Count; ++I)
      Vals[I].~Value();
}

std::pair<Value *, uint64_t *> FrameArena::allocFrame(unsigned NumVals,
                                                      unsigned NumWords) {
  static_assert(sizeof(Value) % alignof(uint64_t) == 0,
                "bitmap words follow the Value run without padding");
  const size_t Bytes =
      size_t(NumVals) * sizeof(Value) + size_t(NumWords) * sizeof(uint64_t);
  Chunk *C = Chunks.empty() ? nullptr : &Chunks.back();
  if (!C || C->Cap - C->Used < Bytes) {
    constexpr size_t MinChunk = 64 * 1024;
    Chunk Fresh;
    Fresh.Cap = std::max(MinChunk, Bytes);
    Fresh.Mem = std::make_unique<std::byte[]>(Fresh.Cap);
    Chunks.push_back(std::move(Fresh));
    C = &Chunks.back();
  }
  std::byte *Base = C->Mem.get() + C->Used;
  C->Used += Bytes;
  auto *Vals = reinterpret_cast<Value *>(Base);
  for (unsigned I = 0; I != NumVals; ++I)
    new (Vals + I) Value();
  auto *Words = reinterpret_cast<uint64_t *>(Base + NumVals * sizeof(Value));
  std::memset(Words, 0, NumWords * sizeof(uint64_t));
  if (NumVals)
    Frames.emplace_back(Vals, NumVals);
  return {Vals, Words};
}

void TreeNode::allocFrameSlow(unsigned NumAttrs, unsigned NumLocals) {
  assert(Arena && "node is not attached to a tree arena");
  const unsigned Total = NumAttrs + NumLocals;
  auto [Vals, Words] = Arena->allocFrame(Total, (Total + 63) / 64);
  Slots = Vals;
  ComputedBits = Words;
  FrameAttrs = static_cast<uint16_t>(NumAttrs);
  FrameLocals = static_cast<uint16_t>(NumLocals);
}

//===----------------------------------------------------------------------===//
// Tree
//===----------------------------------------------------------------------===//

void Tree::adoptSubtree(TreeNode *N) {
  // Nodes that already carry a frame keep their original arena so the frame
  // memory stays alive; frameless ones allocate from this tree's arena.
  if (!N->hasFrame() || !N->Arena)
    N->Arena = Arena;
  for (auto &C : N->Children)
    adoptSubtree(C.get());
}

void Tree::setRoot(std::unique_ptr<TreeNode> N) {
  Root = std::move(N);
  if (Root) {
    Root->Parent = nullptr;
    Root->IndexInParent = 0;
    adoptSubtree(Root.get());
  }
}

std::unique_ptr<TreeNode>
Tree::make(ProdId P, std::vector<std::unique_ptr<TreeNode>> Children,
           Value Lexeme) {
  const Production &Pr = AG->prod(P);
  assert(Children.size() == Pr.Rhs.size() &&
         "child count does not match production arity");
  auto N = std::make_unique<TreeNode>();
  N->Prod = P;
  N->Lexeme = std::move(Lexeme);
  N->Arena = Arena;
  for (unsigned I = 0; I != Children.size(); ++I) {
    assert(Children[I] && "null child");
    assert(AG->prod(Children[I]->Prod).Lhs == Pr.Rhs[I] &&
           "child phylum does not match production signature");
    Children[I]->Parent = N.get();
    Children[I]->IndexInParent = I;
    N->Children.push_back(std::move(Children[I]));
  }
  return N;
}

static bool validateNode(const AttributeGrammar &AG, const TreeNode *N,
                         DiagnosticEngine &Diags) {
  const Production &Pr = AG.prod(N->Prod);
  if (N->arity() != Pr.arity()) {
    Diags.error("node applying '" + Pr.Name + "' has " +
                std::to_string(N->arity()) + " children, expected " +
                std::to_string(Pr.arity()));
    return false;
  }
  bool Ok = true;
  for (unsigned I = 0; I != N->arity(); ++I) {
    const TreeNode *C = N->child(I);
    if (C->Parent != N || C->IndexInParent != I) {
      Diags.error("broken parent link under operator '" + Pr.Name + "'");
      Ok = false;
    }
    if (AG.prod(C->Prod).Lhs != Pr.Rhs[I]) {
      Diags.error("child " + std::to_string(I) + " of operator '" + Pr.Name +
                  "' has wrong phylum");
      Ok = false;
    }
    Ok &= validateNode(AG, C, Diags);
  }
  return Ok;
}

bool Tree::validate(DiagnosticEngine &Diags) const {
  if (!Root) {
    Diags.error("tree has no root");
    return false;
  }
  if (AG->Start != InvalidId && AG->prod(Root->Prod).Lhs != AG->Start)
    Diags.warning("root node is not of the start phylum");
  return validateNode(*AG, Root.get(), Diags);
}

static unsigned countNodes(const TreeNode *N) {
  unsigned Count = 1;
  for (const auto &C : N->Children)
    Count += countNodes(C.get());
  return Count;
}

unsigned Tree::size() const { return Root ? countNodes(Root.get()) : 0; }

static void resetNode(TreeNode *N) {
  const unsigned NumSlots = N->numSlots();
  for (unsigned I = 0; I != NumSlots; ++I)
    N->Slots[I] = Value();
  for (unsigned W = 0, E = (NumSlots + 63) / 64; W != E; ++W)
    N->ComputedBits[W] = 0;
  N->PartitionId = 0;
  N->SeqCache = nullptr;
  for (auto &C : N->Children)
    resetNode(C.get());
}

void Tree::resetAttributes() {
  if (Root)
    resetNode(Root.get());
}

std::unique_ptr<TreeNode> Tree::replaceSubtree(TreeNode *Old,
                                               std::unique_ptr<TreeNode> New) {
  assert(Old && New && "null subtree in replacement");
  assert(AG->prod(Old->Prod).Lhs == AG->prod(New->Prod).Lhs &&
         "replacement changes the phylum");
  TreeNode *Parent = Old->Parent;
  if (!Parent) {
    assert(Old == Root.get() && "detached node passed to replaceSubtree");
    std::unique_ptr<TreeNode> Detached = std::move(Root);
    New->Parent = nullptr;
    New->IndexInParent = 0;
    adoptSubtree(New.get());
    Root = std::move(New);
    return Detached;
  }
  unsigned Idx = Old->IndexInParent;
  std::unique_ptr<TreeNode> Detached = std::move(Parent->Children[Idx]);
  New->Parent = Parent;
  New->IndexInParent = Idx;
  adoptSubtree(New.get());
  Parent->Children[Idx] = std::move(New);
  Detached->Parent = nullptr;
  return Detached;
}

std::unique_ptr<TreeNode> Tree::clone(const TreeNode *N) const {
  auto Copy = std::make_unique<TreeNode>();
  Copy->Prod = N->Prod;
  Copy->Lexeme = N->Lexeme;
  Copy->Arena = Arena;
  for (unsigned I = 0; I != N->arity(); ++I) {
    auto C = clone(N->child(I));
    C->Parent = Copy.get();
    C->IndexInParent = I;
    Copy->Children.push_back(std::move(C));
  }
  return Copy;
}

//===----------------------------------------------------------------------===//
// Term syntax
//===----------------------------------------------------------------------===//

static void writeTermRec(const AttributeGrammar &AG, const TreeNode *N,
                         std::string &Out) {
  const Production &Pr = AG.prod(N->Prod);
  Out += Pr.Name;
  if (Pr.HasLexeme) {
    Out += '<';
    if (N->Lexeme.isString()) {
      Out += '"';
      Out += N->Lexeme.asString();
      Out += '"';
    } else if (N->Lexeme.isInt()) {
      Out += std::to_string(N->Lexeme.asInt());
    }
    Out += '>';
  }
  if (N->arity() != 0) {
    Out += '(';
    for (unsigned I = 0; I != N->arity(); ++I) {
      if (I)
        Out += ',';
      writeTermRec(AG, N->child(I), Out);
    }
    Out += ')';
  }
}

std::string fnc2::writeTerm(const AttributeGrammar &AG, const TreeNode *N) {
  std::string Out;
  writeTermRec(AG, N, Out);
  return Out;
}

namespace {

/// Tiny recursive-descent reader for the term syntax.
class TermParser {
public:
  TermParser(const AttributeGrammar &AG, const std::string &Text,
             DiagnosticEngine &Diags, Tree &T)
      : AG(AG), Text(Text), Diags(Diags), T(T) {}

  std::unique_ptr<TreeNode> parseNode() {
    skipSpace();
    std::string Name = parseIdent();
    if (Name.empty()) {
      error("expected operator name");
      return nullptr;
    }
    ProdId P = AG.findProd(Name);
    if (P == InvalidId) {
      error("unknown operator '" + Name + "'");
      return nullptr;
    }
    const Production &Pr = AG.prod(P);

    Value Lexeme;
    skipSpace();
    if (peek() == '<') {
      ++Pos;
      Lexeme = parseLexeme();
      if (peek() != '>') {
        error("expected '>' after lexeme");
        return nullptr;
      }
      ++Pos;
    }
    if (Pr.HasLexeme && Lexeme.isUnit()) {
      error("operator '" + Name + "' requires a lexeme");
      return nullptr;
    }

    std::vector<std::unique_ptr<TreeNode>> Children;
    skipSpace();
    if (peek() == '(') {
      ++Pos;
      skipSpace();
      if (peek() != ')') {
        while (true) {
          auto C = parseNode();
          if (!C)
            return nullptr;
          Children.push_back(std::move(C));
          skipSpace();
          if (peek() == ',') {
            ++Pos;
            continue;
          }
          break;
        }
      }
      if (peek() != ')') {
        error("expected ')'");
        return nullptr;
      }
      ++Pos;
    }
    if (Children.size() != Pr.arity()) {
      error("operator '" + Name + "' expects " + std::to_string(Pr.arity()) +
            " children, got " + std::to_string(Children.size()));
      return nullptr;
    }
    for (unsigned I = 0; I != Children.size(); ++I)
      if (AG.prod(Children[I]->Prod).Lhs != Pr.Rhs[I]) {
        error("child " + std::to_string(I) + " of '" + Name +
              "' has the wrong phylum");
        return nullptr;
      }
    return T.make(P, std::move(Children), std::move(Lexeme));
  }

  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

private:
  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }
  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }
  std::string parseIdent() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_'))
      ++Pos;
    return Text.substr(Start, Pos - Start);
  }
  Value parseLexeme() {
    skipSpace();
    if (peek() == '"') {
      ++Pos;
      std::string S;
      while (Pos < Text.size() && Text[Pos] != '"')
        S += Text[Pos++];
      if (peek() == '"')
        ++Pos;
      return Value::ofString(std::move(S));
    }
    bool Neg = false;
    if (peek() == '-') {
      Neg = true;
      ++Pos;
    }
    int64_t V = 0;
    bool Any = false;
    while (Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]))) {
      V = V * 10 + (Text[Pos++] - '0');
      Any = true;
    }
    if (!Any) {
      error("expected lexeme value");
      return Value();
    }
    return Value::ofInt(Neg ? -V : V);
  }
  void error(const std::string &Msg) {
    Diags.error("term syntax: " + Msg + " at offset " + std::to_string(Pos));
  }

  const AttributeGrammar &AG;
  const std::string &Text;
  DiagnosticEngine &Diags;
  Tree &T;
  size_t Pos = 0;
};

} // namespace

Tree fnc2::readTerm(const AttributeGrammar &AG, const std::string &Text,
                    DiagnosticEngine &Diags) {
  Tree T(AG);
  TermParser P(AG, Text, Diags, T);
  auto Root = P.parseNode();
  if (Root && !P.atEnd())
    Diags.error("term syntax: trailing input");
  if (Root && !Diags.hasErrors())
    T.setRoot(std::move(Root));
  return T;
}
