//===- tree/TreeGen.h - Random tree workload generator ----------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generation of well-typed trees over any
/// grammar, used as the workload generator for the evaluation benches (the
/// paper ran its evaluators on "various source texts"; we synthesize trees
/// of controlled size instead).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_TREE_TREEGEN_H
#define FNC2_TREE_TREEGEN_H

#include "tree/Tree.h"

#include <cstdint>

namespace fnc2 {

/// Grows random trees whose size approaches a target node count. The
/// generator precomputes, per phylum, the minimal completion depth so it can
/// steer toward leaf operators once the budget is spent; generation is fully
/// deterministic in the seed.
class TreeGenerator {
public:
  explicit TreeGenerator(const AttributeGrammar &AG, uint64_t Seed = 1);

  /// Generates a tree rooted at the start phylum with roughly \p TargetSize
  /// nodes (always at least the minimal completion size).
  Tree generate(unsigned TargetSize);

  /// Generates a subtree of phylum \p P into \p T.
  std::unique_ptr<TreeNode> generateNode(Tree &T, PhylumId P,
                                         unsigned Budget);

private:
  uint64_t nextRand();

  const AttributeGrammar &AG;
  uint64_t State;
  /// Minimal number of nodes needed to complete a tree of each phylum.
  std::vector<unsigned> MinSize;
  /// Minimal completion size per production.
  std::vector<unsigned> ProdMinSize;
};

} // namespace fnc2

#endif // FNC2_TREE_TREEGEN_H
