//===- tree/Tree.h - Attributed abstract trees ------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicitly-built attributed trees FNC-2 evaluators walk (the design
/// ruled out tree-less methods, paper section 1). Nodes know their operator,
/// children, parent link (needed by LEAVE and by incremental propagation),
/// an optional lexeme for leaf operators, and per-attribute value slots used
/// when attributes are tree-resident.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_TREE_TREE_H
#define FNC2_TREE_TREE_H

#include "grammar/AttributeGrammar.h"
#include "value/Value.h"

#include <memory>
#include <vector>

namespace fnc2 {

/// One node of an attributed abstract tree.
struct TreeNode {
  ProdId Prod = InvalidId;
  TreeNode *Parent = nullptr;
  unsigned IndexInParent = 0;
  std::vector<std::unique_ptr<TreeNode>> Children;
  /// Lexical value of leaf operators declared with a lexeme slot.
  Value Lexeme;

  /// Tree-resident attribute storage, indexed like the phylum's attribute
  /// list; maintained by the evaluators.
  std::vector<Value> AttrVals;
  std::vector<uint8_t> AttrComputed;
  /// Storage for the production's local attributes.
  std::vector<Value> LocalVals;
  std::vector<uint8_t> LocalComputed;

  /// Partition assigned by the l-ordered evaluator (identifies which
  /// visit-sequence variant applies at this node).
  unsigned PartitionId = 0;

  TreeNode *child(unsigned I) const { return Children[I].get(); }
  unsigned arity() const { return static_cast<unsigned>(Children.size()); }
};

/// Owns a tree over a fixed grammar and provides constructors/validation.
class Tree {
public:
  explicit Tree(const AttributeGrammar &AG) : AG(&AG) {}
  Tree(Tree &&) = default;
  Tree &operator=(Tree &&) = default;

  const AttributeGrammar &grammar() const { return *AG; }
  TreeNode *root() const { return Root.get(); }
  void setRoot(std::unique_ptr<TreeNode> N);

  /// Creates a node applying production \p P with the given children; the
  /// children's phyla are asserted against the production signature.
  std::unique_ptr<TreeNode>
  make(ProdId P, std::vector<std::unique_ptr<TreeNode>> Children = {},
       Value Lexeme = Value());

  /// Convenience: leaf node with a lexeme.
  std::unique_ptr<TreeNode> makeLeaf(ProdId P, Value Lexeme) {
    return make(P, {}, std::move(Lexeme));
  }

  /// Verifies parent/child structure, production signatures and phylum of
  /// the root against the grammar. Reports through \p Diags.
  bool validate(DiagnosticEngine &Diags) const;

  /// Total number of nodes.
  unsigned size() const;

  /// Clears evaluation state (attribute slots) of the whole tree.
  void resetAttributes();

  /// Replaces the subtree rooted at \p Old (which must be in this tree and
  /// not the root... the root is allowed too) by \p New; returns the detached
  /// old subtree. Phyla of old and new roots must agree.
  std::unique_ptr<TreeNode> replaceSubtree(TreeNode *Old,
                                           std::unique_ptr<TreeNode> New);

  /// Deep copy of a subtree (attribute state not copied).
  std::unique_ptr<TreeNode> clone(const TreeNode *N) const;

private:
  const AttributeGrammar *AG;
  std::unique_ptr<TreeNode> Root;
};

/// Renders a subtree in the textual term syntax understood by TermReader,
/// e.g. "Add(Num<3>,Num<4>)".
std::string writeTerm(const AttributeGrammar &AG, const TreeNode *N);

/// Parses the textual term syntax into a tree over \p AG. Operators are
/// referenced by name; lexemes appear in angle brackets as integers or
/// double-quoted strings. Returns an empty tree and diagnostics on error.
Tree readTerm(const AttributeGrammar &AG, const std::string &Text,
              DiagnosticEngine &Diags);

} // namespace fnc2

#endif // FNC2_TREE_TREE_H
