//===- tree/Tree.h - Attributed abstract trees ------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicitly-built attributed trees FNC-2 evaluators walk (the design
/// ruled out tree-less methods, paper section 1). Nodes know their operator,
/// children, parent link (needed by LEAVE and by incremental propagation),
/// an optional lexeme for leaf operators, and a single attribute *frame*:
/// one contiguous allocation holding the phylum's attribute slots, the
/// production's local slots, and a packed computed bitmap. Frames are bump-
/// allocated from the owning tree's FrameArena, so evaluating a tree touches
/// one cache-friendly block per node instead of four separate vectors.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_TREE_TREE_H
#define FNC2_TREE_TREE_H

#include "grammar/AttributeGrammar.h"
#include "value/Value.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace fnc2 {

/// Bump allocator for attribute frames. One arena per Tree; frames live
/// until the arena dies, so detached subtrees stay readable as long as any
/// node still references the arena (nodes hold it by shared_ptr).
///
/// Not thread-safe: each tree (and therefore each batch worker, which owns
/// disjoint trees) allocates from its own arena.
class FrameArena {
public:
  FrameArena() = default;
  ~FrameArena();
  FrameArena(const FrameArena &) = delete;
  FrameArena &operator=(const FrameArena &) = delete;

  /// Allocates one frame: \p NumVals default-constructed Values followed by
  /// \p NumWords zeroed bitmap words, contiguously.
  std::pair<Value *, uint64_t *> allocFrame(unsigned NumVals,
                                            unsigned NumWords);

private:
  struct Chunk {
    std::unique_ptr<std::byte[]> Mem;
    size_t Used = 0;
    size_t Cap = 0;
  };
  std::vector<Chunk> Chunks;
  /// Every allocated frame's Value run, destroyed with the arena.
  std::vector<std::pair<Value *, uint32_t>> Frames;
};

/// One node of an attributed abstract tree.
struct TreeNode {
  ProdId Prod = InvalidId;
  TreeNode *Parent = nullptr;
  unsigned IndexInParent = 0;
  std::vector<std::unique_ptr<TreeNode>> Children;
  /// Lexical value of leaf operators declared with a lexeme slot.
  Value Lexeme;

  /// The attribute frame: FrameAttrs slots indexed like the phylum's
  /// attribute list, then FrameLocals slots for the production's locals,
  /// with per-slot computed bits packed into words. Null until an evaluator
  /// ensures storage; stays allocated across resetAttributes() (only the
  /// contents are cleared), which keeps re-evaluation allocation-free.
  Value *Slots = nullptr;
  uint64_t *ComputedBits = nullptr;
  uint16_t FrameAttrs = 0;
  uint16_t FrameLocals = 0;

  /// Partition assigned by the l-ordered evaluator (identifies which
  /// visit-sequence variant applies at this node).
  unsigned PartitionId = 0;

  /// Compiled visit-sequence cache (a CompiledSeq*), maintained by the
  /// compiled evaluators and invalidated by resetAttributes(). Opaque here
  /// to keep the tree layer independent of the plan compiler.
  const void *SeqCache = nullptr;

  /// Storage-evaluator scratch: per-slot stack cell indices, pointing into
  /// an arena owned by the StorageEvaluator that stamped it. Only meaningful
  /// during that evaluator's evaluate() call, which re-stamps every node
  /// before any use — never dereferenced outside it.
  int64_t *CellIdx = nullptr;

  /// Arena frames are allocated from; shared so frames outlive the Tree
  /// object if a detached subtree does.
  std::shared_ptr<FrameArena> Arena;

  TreeNode *child(unsigned I) const { return Children[I].get(); }
  unsigned arity() const { return static_cast<unsigned>(Children.size()); }

  //===--- frame access ---------------------------------------------------===//

  /// True once attribute storage has been ensured (and the node has at
  /// least one slot; zero-slot productions never allocate).
  bool hasFrame() const { return Slots != nullptr; }
  unsigned numSlots() const { return unsigned(FrameAttrs) + FrameLocals; }

  /// Allocates the frame if absent. \p NumAttrs / \p NumLocals come from
  /// the node's phylum / production.
  void ensureFrame(unsigned NumAttrs, unsigned NumLocals) {
    if (Slots || (NumAttrs | NumLocals) == 0)
      return;
    allocFrameSlow(NumAttrs, NumLocals);
  }

  /// Slot numbering: attribute I lives in slot I, local J in slot
  /// FrameAttrs + J (the same numbering the storage layer's StorageIdMap
  /// uses per node).
  Value &slot(unsigned S) {
    assert(Slots && S < numSlots() && "slot access without frame");
    return Slots[S];
  }
  const Value &slot(unsigned S) const {
    assert(Slots && S < numSlots() && "slot access without frame");
    return Slots[S];
  }
  bool slotComputed(unsigned S) const {
    assert(Slots && S < numSlots() && "slot access without frame");
    return (ComputedBits[S >> 6] >> (S & 63)) & 1;
  }
  void setSlotComputed(unsigned S) {
    ComputedBits[S >> 6] |= uint64_t(1) << (S & 63);
  }
  void clearSlotComputed(unsigned S) {
    ComputedBits[S >> 6] &= ~(uint64_t(1) << (S & 63));
  }

  /// Attribute/local views used by tests and non-hot paths.
  const Value &attrVal(unsigned I) const { return slot(I); }
  const Value &localVal(unsigned I) const { return slot(FrameAttrs + I); }
  bool attrComputed(unsigned I) const {
    return hasFrame() && I < FrameAttrs && slotComputed(I);
  }
  bool localComputed(unsigned I) const {
    return hasFrame() && slotComputed(FrameAttrs + I);
  }

private:
  void allocFrameSlow(unsigned NumAttrs, unsigned NumLocals);
};

/// Owns a tree over a fixed grammar and provides constructors/validation.
class Tree {
public:
  explicit Tree(const AttributeGrammar &AG)
      : AG(&AG), Arena(std::make_shared<FrameArena>()) {}
  Tree(Tree &&) = default;
  Tree &operator=(Tree &&) = default;

  const AttributeGrammar &grammar() const { return *AG; }
  TreeNode *root() const { return Root.get(); }
  void setRoot(std::unique_ptr<TreeNode> N);

  /// Creates a node applying production \p P with the given children; the
  /// children's phyla are asserted against the production signature.
  std::unique_ptr<TreeNode>
  make(ProdId P, std::vector<std::unique_ptr<TreeNode>> Children = {},
       Value Lexeme = Value());

  /// Convenience: leaf node with a lexeme.
  std::unique_ptr<TreeNode> makeLeaf(ProdId P, Value Lexeme) {
    return make(P, {}, std::move(Lexeme));
  }

  /// Verifies parent/child structure, production signatures and phylum of
  /// the root against the grammar. Reports through \p Diags.
  bool validate(DiagnosticEngine &Diags) const;

  /// Total number of nodes.
  unsigned size() const;

  /// Clears evaluation state (attribute slots, computed bits, partitions,
  /// sequence caches) of the whole tree. Frames stay allocated.
  void resetAttributes();

  /// Replaces the subtree rooted at \p Old (which must be in this tree and
  /// not the root... the root is allowed too) by \p New; returns the detached
  /// old subtree. Phyla of old and new roots must agree.
  std::unique_ptr<TreeNode> replaceSubtree(TreeNode *Old,
                                           std::unique_ptr<TreeNode> New);

  /// Deep copy of a subtree (attribute state not copied).
  std::unique_ptr<TreeNode> clone(const TreeNode *N) const;

private:
  /// Points frameless nodes of \p N's subtree at this tree's arena (nodes
  /// that already carry a frame keep their original arena alive).
  void adoptSubtree(TreeNode *N);

  const AttributeGrammar *AG;
  std::shared_ptr<FrameArena> Arena;
  std::unique_ptr<TreeNode> Root;
};

/// Renders a subtree in the textual term syntax understood by TermReader,
/// e.g. "Add(Num<3>,Num<4>)".
std::string writeTerm(const AttributeGrammar &AG, const TreeNode *N);

/// Parses the textual term syntax into a tree over \p AG. Operators are
/// referenced by name; lexemes appear in angle brackets as integers or
/// double-quoted strings. Returns an empty tree and diagnostics on error.
Tree readTerm(const AttributeGrammar &AG, const std::string &Text,
              DiagnosticEngine &Diags);

} // namespace fnc2

#endif // FNC2_TREE_TREE_H
