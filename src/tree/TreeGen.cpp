//===- tree/TreeGen.cpp ---------------------------------------------------===//

#include "tree/TreeGen.h"

#include <algorithm>
#include <limits>

using namespace fnc2;

TreeGenerator::TreeGenerator(const AttributeGrammar &AG, uint64_t Seed)
    : AG(AG), State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {
  // Fixpoint for minimal completion sizes (a production's size is 1 plus the
  // sum of its children's minimal sizes).
  constexpr unsigned Inf = std::numeric_limits<unsigned>::max() / 4;
  MinSize.assign(AG.numPhyla(), Inf);
  ProdMinSize.assign(AG.numProds(), Inf);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      const Production &Pr = AG.prod(P);
      unsigned Size = 1;
      bool Complete = true;
      for (PhylumId C : Pr.Rhs) {
        if (MinSize[C] >= Inf) {
          Complete = false;
          break;
        }
        Size += MinSize[C];
      }
      if (!Complete)
        continue;
      if (Size < ProdMinSize[P]) {
        ProdMinSize[P] = Size;
        Changed = true;
      }
      if (Size < MinSize[Pr.Lhs]) {
        MinSize[Pr.Lhs] = Size;
        Changed = true;
      }
    }
  }
}

uint64_t TreeGenerator::nextRand() {
  // xorshift64*: cheap, deterministic, good enough for workload shaping.
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1DULL;
}

std::unique_ptr<TreeNode> TreeGenerator::generateNode(Tree &T, PhylumId P,
                                                      unsigned Budget) {
  // Candidate productions that can complete within the budget; if none,
  // fall back to the absolutely smallest completion.
  std::vector<ProdId> Fitting, Growing, Absorbing;
  ProdId Smallest = InvalidId;
  auto phylumGrowable = [&](PhylumId X) {
    for (ProdId Pr : AG.phylum(X).Prods)
      if (ProdMinSize[Pr] > MinSize[X])
        return true;
    return false;
  };
  for (ProdId Pr : AG.phylum(P).Prods) {
    if (Smallest == InvalidId ||
        ProdMinSize[Pr] < ProdMinSize[Smallest])
      Smallest = Pr;
    if (ProdMinSize[Pr] <= Budget) {
      Fitting.push_back(Pr);
      if (ProdMinSize[Pr] > MinSize[P])
        Growing.push_back(Pr);
      // A production absorbs budget when some son's phylum keeps growing —
      // its own minimality is irrelevant (a minimal wrapper around a
      // recursive son still heads toward the target).
      for (PhylumId C : AG.prod(Pr).Rhs)
        if (phylumGrowable(C)) {
          Absorbing.push_back(Pr);
          break;
        }
    }
  }
  assert(Smallest != InvalidId && "phylum has no operators");
  // While plenty of budget remains, prefer productions that can actually
  // absorb it, so the tree heads toward the target instead of collapsing.
  ProdId Chosen;
  if (Budget > 2 * MinSize[P] && !Absorbing.empty())
    Chosen = Absorbing[nextRand() % Absorbing.size()];
  else if (Budget > 2 * MinSize[P] && !Growing.empty())
    Chosen = Growing[nextRand() % Growing.size()];
  else if (!Fitting.empty())
    Chosen = Fitting[nextRand() % Fitting.size()];
  else
    Chosen = Smallest;
  const Production &Prod = AG.prod(Chosen);

  // Split the remaining budget between children; surplus only goes to
  // children whose phylum can actually grow (has a non-minimal production),
  // otherwise it would be silently wasted and trees would stay tiny.
  unsigned Remaining = Budget > ProdMinSize[Chosen]
                           ? Budget - ProdMinSize[Chosen]
                           : 0;
  std::vector<unsigned> ChildBudget(Prod.arity());
  std::vector<unsigned> GrowableKids;
  for (unsigned I = 0; I != Prod.arity(); ++I) {
    ChildBudget[I] = MinSize[Prod.Rhs[I]];
    for (ProdId Pr : AG.phylum(Prod.Rhs[I]).Prods)
      if (ProdMinSize[Pr] > MinSize[Prod.Rhs[I]]) {
        GrowableKids.push_back(I);
        break;
      }
  }
  while (Remaining > 0 && !GrowableKids.empty()) {
    unsigned Chunk =
        std::max<unsigned>(1, Remaining / unsigned(GrowableKids.size()));
    ChildBudget[GrowableKids[nextRand() % GrowableKids.size()]] += Chunk;
    Remaining -= std::min(Remaining, Chunk);
  }

  std::vector<std::unique_ptr<TreeNode>> Children;
  for (unsigned I = 0; I != Prod.arity(); ++I)
    Children.push_back(generateNode(T, Prod.Rhs[I], ChildBudget[I]));

  Value Lexeme;
  if (Prod.HasLexeme) {
    if (Prod.StringLexeme) {
      // A small identifier pool keeps lookups/shadowing interesting.
      static const char *const Names[] = {"a", "b", "c", "d", "e",
                                          "f", "g", "h", "i", "j"};
      Lexeme = Value::ofString(Names[nextRand() % 10]);
    } else {
      Lexeme = Value::ofInt(static_cast<int64_t>(nextRand() % 1000));
    }
  }
  return T.make(Chosen, std::move(Children), std::move(Lexeme));
}

Tree TreeGenerator::generate(unsigned TargetSize) {
  Tree T(AG);
  assert(AG.Start != InvalidId && "grammar has no start phylum");
  T.setRoot(generateNode(T, AG.Start, TargetSize));
  return T;
}
