//===- storage/Lifetime.cpp -----------------------------------------------===//

#include "storage/Lifetime.h"

#include <algorithm>
#include <map>
#include <set>

using namespace fnc2;

//===----------------------------------------------------------------------===//
// StorageIdMap
//===----------------------------------------------------------------------===//

StorageIdMap::StorageIdMap(const AttributeGrammar &AG) {
  FirstLocal = static_cast<unsigned>(AG.Attrs.size());
  LocalBase.resize(AG.numProds());
  unsigned Next = FirstLocal;
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    LocalBase[P] = Next;
    Next += static_cast<unsigned>(AG.prod(P).Locals.size());
  }
  NumIds = Next;
}

unsigned StorageIdMap::idOfOcc(const AttributeGrammar &AG, ProdId P,
                               const AttrOcc &O) const {
  (void)AG;
  assert(!O.isLexeme() && "lexemes are not stored");
  if (O.isLocal())
    return idOfLocal(P, O.LocalIndex);
  return idOfAttr(O.Attr);
}

std::string StorageIdMap::name(const AttributeGrammar &AG, unsigned Id) const {
  if (Id < FirstLocal) {
    const Attribute &A = AG.attr(Id);
    return AG.phylum(A.Owner).Name + "." + A.Name;
  }
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    unsigned NumLocals = static_cast<unsigned>(AG.prod(P).Locals.size());
    if (Id >= LocalBase[P] && Id < LocalBase[P] + NumLocals)
      return AG.prod(P).Name + "::" + AG.prod(P).Locals[Id - LocalBase[P]].Name;
  }
  return "<storage " + std::to_string(Id) + ">";
}

//===----------------------------------------------------------------------===//
// Protocol indexing: one entry per (phylum, partition) pair
//===----------------------------------------------------------------------===//

namespace {

/// Flattens (phylum, partition index) pairs to dense protocol ids and holds
/// the per-protocol, per-visit summaries of the grammar of visits.
class VisitGrammar {
public:
  VisitGrammar(const AttributeGrammar &AG, const EvaluationPlan &Plan,
               const StorageIdMap &Ids)
      : AG(AG), Plan(Plan), Ids(Ids) {
    Base.resize(AG.numPhyla());
    unsigned Next = 0;
    for (PhylumId X = 0; X != AG.numPhyla(); ++X) {
      Base[X] = Next;
      Next += std::max<size_t>(1, Plan.Partitions[X].size());
    }
    NumProtocols = Next;
    computeSummaries();
  }

  unsigned protocolOf(PhylumId X, unsigned Part) const {
    return Base[X] + Part;
  }

  /// True iff flat id \p Id may be (re)defined during visit \p V of the
  /// given protocol, including transitively in the visited subtree.
  bool canDefine(unsigned Proto, unsigned V, unsigned Id) const {
    return CanDefine[Proto].count(std::make_pair(V, Id)) != 0;
  }

  /// True iff a node evaluating under the protocol reads its own inherited
  /// attribute \p A during visit \p V.
  bool usesOwnInh(unsigned Proto, unsigned V, AttrId A) const {
    return UsesOwnInh[Proto].count(std::make_pair(V, A)) != 0;
  }

private:
  void computeSummaries();

  const AttributeGrammar &AG;
  const EvaluationPlan &Plan;
  const StorageIdMap &Ids;
  std::vector<unsigned> Base;
  unsigned NumProtocols = 0;
  /// (visit, flat id) pairs per protocol; sets are small in practice.
  std::vector<std::set<std::pair<unsigned, unsigned>>> CanDefine;
  std::vector<std::set<std::pair<unsigned, AttrId>>> UsesOwnInh;
};

} // namespace

void VisitGrammar::computeSummaries() {
  CanDefine.assign(NumProtocols, {});
  UsesOwnInh.assign(NumProtocols, {});

  // Direct reads of the LHS's own inherited attributes, per visit chunk.
  for (const VisitSequence &Seq : Plan.Seqs) {
    unsigned Proto = protocolOf(AG.prod(Seq.Prod).Lhs, Seq.LhsPartition);
    unsigned V = 0;
    for (const VisitInstr &I : Seq.Instrs) {
      if (I.Kind == VisitInstr::Op::Begin)
        V = I.VisitNo;
      if (I.Kind != VisitInstr::Op::Eval)
        continue;
      for (RuleId R : I.Rules)
        for (const AttrOcc &Arg : AG.rule(R).Args)
          if (Arg.isOnSymbol() && Arg.Pos == 0)
            UsesOwnInh[Proto].insert({V, Arg.Attr});
    }
  }

  // Transitive definition summaries: fixpoint over all sequences.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const VisitSequence &Seq : Plan.Seqs) {
      const Production &Pr = AG.prod(Seq.Prod);
      unsigned Proto = protocolOf(Pr.Lhs, Seq.LhsPartition);
      unsigned V = 0;
      for (const VisitInstr &I : Seq.Instrs) {
        switch (I.Kind) {
        case VisitInstr::Op::Begin:
          V = I.VisitNo;
          break;
        case VisitInstr::Op::Eval:
          for (RuleId R : I.Rules)
            Changed |=
                CanDefine[Proto]
                    .insert({V, Ids.idOfOcc(AG, Seq.Prod, AG.rule(R).Target)})
                    .second;
          break;
        case VisitInstr::Op::Visit: {
          unsigned ChildProto = protocolOf(Pr.Rhs[I.Child], I.ChildPartition);
          for (const auto &[W, Id] : CanDefine[ChildProto])
            if (W == I.VisitNo)
              Changed |= CanDefine[Proto].insert({V, Id}).second;
          break;
        }
        case VisitInstr::Op::Leave:
          break;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Interval computation
//===----------------------------------------------------------------------===//

static std::vector<LifetimeInterval>
computeIntervals(const AttributeGrammar &AG, const EvaluationPlan &Plan,
                 const StorageIdMap &Ids, const VisitGrammar &VG) {
  std::vector<LifetimeInterval> Out;

  for (unsigned SeqIdx = 0; SeqIdx != Plan.Seqs.size(); ++SeqIdx) {
    const VisitSequence &Seq = Plan.Seqs[SeqIdx];
    const Production &Pr = AG.prod(Seq.Prod);
    unsigned NumInstrs = static_cast<unsigned>(Seq.Instrs.size());

    auto leaveBetween = [&](unsigned From, unsigned To) {
      for (unsigned P = From + 1; P < To; ++P)
        if (Seq.Instrs[P].Kind == VisitInstr::Op::Leave)
          return true;
      return false;
    };
    auto leaveOfChunk = [&](unsigned Pos) {
      for (unsigned P = Pos; P != NumInstrs; ++P)
        if (Seq.Instrs[P].Kind == VisitInstr::Op::Leave)
          return P;
      return NumInstrs - 1;
    };
    auto lastUseOf = [&](unsigned Pos, unsigned Child, AttrId A) {
      // Last EVAL whose arguments reference occurrence (Child, A).
      unsigned Last = Pos;
      for (unsigned P = Pos + 1; P != NumInstrs; ++P) {
        if (Seq.Instrs[P].Kind != VisitInstr::Op::Eval)
          continue;
        for (RuleId R : Seq.Instrs[P].Rules)
          for (const AttrOcc &Arg : AG.rule(R).Args)
            if (Arg.isOnSymbol() && Arg.Pos == Child && Arg.Attr == A)
              Last = P;
      }
      return Last;
    };
    auto lastLocalUse = [&](unsigned Pos, unsigned LocalIdx) {
      unsigned Last = Pos;
      for (unsigned P = Pos + 1; P != NumInstrs; ++P) {
        if (Seq.Instrs[P].Kind != VisitInstr::Op::Eval)
          continue;
        for (RuleId R : Seq.Instrs[P].Rules)
          for (const AttrOcc &Arg : AG.rule(R).Args)
            if (Arg.isLocal() && Arg.LocalIndex == LocalIdx)
              Last = P;
      }
      return Last;
    };

    for (unsigned Pos = 0; Pos != NumInstrs; ++Pos) {
      const VisitInstr &I = Seq.Instrs[Pos];
      if (I.Kind == VisitInstr::Op::Eval) {
        for (RuleId R : I.Rules) {
          const AttrOcc &T = AG.rule(R).Target;
          LifetimeInterval LI;
          LI.SeqIdx = SeqIdx;
          LI.DefPos = Pos;
          LI.DefRule = R;
          if (T.isLocal()) {
            LI.FlatId = Ids.idOfLocal(Seq.Prod, T.LocalIndex);
            LI.EndPos = lastLocalUse(Pos, T.LocalIndex);
          } else if (T.Pos == 0) {
            // LHS synthesized: live until this visit's LEAVE (the parent's
            // side of the lifetime is tracked at the VISIT that returns it).
            LI.FlatId = Ids.idOfAttr(T.Attr);
            LI.EndPos = leaveOfChunk(Pos);
          } else {
            // Child inherited: live until the last visit of that child that
            // reads it.
            LI.FlatId = Ids.idOfAttr(T.Attr);
            unsigned ChildProto = VG.protocolOf(Pr.Rhs[T.Pos - 1],
                                                Seq.ChildPartition[T.Pos - 1]);
            unsigned Last = Pos;
            for (unsigned P = Pos + 1; P != NumInstrs; ++P) {
              const VisitInstr &VI = Seq.Instrs[P];
              if (VI.Kind == VisitInstr::Op::Visit &&
                  VI.Child == T.Pos - 1 &&
                  VG.usesOwnInh(ChildProto, VI.VisitNo, T.Attr))
                Last = P;
            }
            LI.EndPos = Last;
          }
          LI.CrossesVisit = leaveBetween(LI.DefPos, LI.EndPos);
          Out.push_back(LI);
        }
      } else if (I.Kind == VisitInstr::Op::Visit) {
        // The visit returns the synthesized attributes of the son's block;
        // their parent-side lifetime runs to the last use here.
        PhylumId Child = Pr.Rhs[I.Child];
        const TotallyOrderedPartition &Part =
            Plan.Partitions[Child][I.ChildPartition];
        for (AttrId A : AG.phylum(Child).Attrs) {
          const Attribute &At = AG.attr(A);
          if (!At.isSynthesized() ||
              Part.visitOf(At.IndexInOwner) != I.VisitNo)
            continue;
          LifetimeInterval LI;
          LI.SeqIdx = SeqIdx;
          LI.FlatId = Ids.idOfAttr(A);
          LI.DefPos = Pos;
          LI.DefRule = InvalidId;
          LI.EndPos = lastUseOf(Pos, I.Child + 1, A);
          LI.CrossesVisit = leaveBetween(LI.DefPos, LI.EndPos);
          Out.push_back(LI);
        }
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Classification and grouping
//===----------------------------------------------------------------------===//

namespace {

/// Union-find over flat storage ids.
class Groups {
public:
  explicit Groups(unsigned N) : Parent(N) {
    for (unsigned I = 0; I != N; ++I)
      Parent[I] = I;
  }
  unsigned find(unsigned X) {
    while (Parent[X] != X)
      X = Parent[X] = Parent[Parent[X]];
    return X;
  }
  void merge(unsigned A, unsigned B) { Parent[find(A)] = find(B); }

private:
  std::vector<unsigned> Parent;
};

} // namespace

/// True iff some instruction in [From, To] of \p Seq can (re)define \p Id:
/// either an EVAL targeting another occurrence of the same attribute (rules
/// batched into the defining EVAL count too, hence the rule-based skip) or
/// a VISIT into a subtree that may define it. The VISIT at \p From itself is
/// exempt: defs inside it that precede the instance's creation do not
/// overlap, and ones after it are caught by the child-side interval.
static bool redefinedWithin(const AttributeGrammar &AG,
                            const EvaluationPlan &Plan,
                            const StorageIdMap &Ids, const VisitGrammar &VG,
                            const VisitSequence &Seq, unsigned From,
                            unsigned To, unsigned Id, RuleId SkipRule) {
  (void)Plan;
  const Production &Pr = AG.prod(Seq.Prod);
  for (unsigned P = From; P <= To; ++P) {
    const VisitInstr &I = Seq.Instrs[P];
    if (I.Kind == VisitInstr::Op::Eval) {
      for (RuleId R : I.Rules) {
        if (R == SkipRule)
          continue;
        if (Ids.idOfOcc(AG, Seq.Prod, AG.rule(R).Target) == Id)
          return true;
      }
    } else if (I.Kind == VisitInstr::Op::Visit && P != From) {
      unsigned ChildProto =
          VG.protocolOf(Pr.Rhs[I.Child], I.ChildPartition);
      if (VG.canDefine(ChildProto, I.VisitNo, Id))
        return true;
    }
  }
  return false;
}

/// Checks whether variables \p A and \p B can share one global variable:
/// within every lifetime interval of one, the other may only be defined by
/// a copy rule whose source is the first (then the write is a no-op on the
/// shared cell), and never inside a visited subtree.
static bool varsCompatible(const AttributeGrammar &AG,
                           const EvaluationPlan &Plan, const StorageIdMap &Ids,
                           const VisitGrammar &VG,
                           const std::vector<LifetimeInterval> &Intervals,
                           unsigned A, unsigned B) {
  auto checkDirection = [&](unsigned Live, unsigned Defined) {
    for (const LifetimeInterval &LI : Intervals) {
      if (LI.FlatId != Live)
        continue;
      const VisitSequence &Seq = Plan.Seqs[LI.SeqIdx];
      const Production &Pr = AG.prod(Seq.Prod);
      for (unsigned P = LI.DefPos; P <= LI.EndPos; ++P) {
        const VisitInstr &I = Seq.Instrs[P];
        if (I.Kind == VisitInstr::Op::Visit && P == LI.DefPos)
          continue; // defs preceding the instance's creation do not overlap
        if (I.Kind == VisitInstr::Op::Eval) {
          for (RuleId R : I.Rules) {
            const SemanticRule &Rule = AG.rule(R);
            if (Ids.idOfOcc(AG, Seq.Prod, Rule.Target) != Defined)
              continue;
            bool CopyFromLive =
                Rule.IsCopy && Rule.Args.size() == 1 &&
                !Rule.Args[0].isLexeme() &&
                Ids.idOfOcc(AG, Seq.Prod, Rule.Args[0]) == Live;
            if (!CopyFromLive)
              return false;
          }
        } else if (I.Kind == VisitInstr::Op::Visit) {
          unsigned ChildProto =
              VG.protocolOf(Pr.Rhs[I.Child], I.ChildPartition);
          if (VG.canDefine(ChildProto, I.VisitNo, Defined))
            return false;
        }
      }
    }
    return true;
  };
  return checkDirection(A, B) && checkDirection(B, A);
}

StorageAssignment fnc2::analyzeStorage(const AttributeGrammar &AG,
                                       const EvaluationPlan &Plan) {
  StorageAssignment SA;
  SA.Ids = StorageIdMap(AG);
  unsigned N = SA.Ids.numIds();
  SA.ClassOf.assign(N, StorageClass::TreeCell);
  SA.GroupOf.resize(N);
  SA.CopyEliminated.assign(AG.numRules(), false);

  VisitGrammar VG(AG, Plan, SA.Ids);
  SA.Intervals = computeIntervals(AG, Plan, SA.Ids, VG);

  // Classify: default Variable, demoted to Stack on self-overlap and to
  // TreeCell on visit-crossing lifetimes. Ids with no interval at all are
  // root inputs or dead attributes; they stay in the tree.
  std::vector<bool> HasInterval(N, false), NonTemp(N, false),
      SelfOverlap(N, false);
  for (const LifetimeInterval &LI : SA.Intervals) {
    HasInterval[LI.FlatId] = true;
    if (LI.CrossesVisit)
      NonTemp[LI.FlatId] = true;
    if (redefinedWithin(AG, Plan, SA.Ids, VG, Plan.Seqs[LI.SeqIdx], LI.DefPos,
                        LI.EndPos, LI.FlatId, LI.DefRule))
      SelfOverlap[LI.FlatId] = true;
  }
  for (unsigned Id = 0; Id != N; ++Id) {
    if (!HasInterval[Id] || NonTemp[Id])
      SA.ClassOf[Id] = StorageClass::TreeCell;
    else if (SelfOverlap[Id])
      SA.ClassOf[Id] = StorageClass::Stack;
    else
      SA.ClassOf[Id] = StorageClass::Variable;
  }

  // Grouping: candidate pairs are the endpoints of copy rules, weighted by
  // how many copies the merge would eliminate (the paper's criterion).
  std::map<std::pair<unsigned, unsigned>, unsigned> PairWeight;
  for (RuleId R = 0; R != AG.numRules(); ++R) {
    const SemanticRule &Rule = AG.rule(R);
    if (!Rule.IsCopy || Rule.Args.size() != 1 || Rule.Args[0].isLexeme() ||
        Rule.Target.isLexeme())
      continue;
    ++SA.TotalCopyRules;
    unsigned T = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Target);
    unsigned S = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Args[0]);
    if (T == S)
      continue;
    PairWeight[{std::min(T, S), std::max(T, S)}] += 1;
  }

  std::vector<std::pair<unsigned, std::pair<unsigned, unsigned>>> Candidates;
  for (const auto &[Pair, W] : PairWeight)
    Candidates.push_back({W, Pair});
  std::sort(Candidates.begin(), Candidates.end(),
            [](const auto &X, const auto &Y) {
              if (X.first != Y.first)
                return X.first > Y.first; // heavier pairs first
              return X.second < Y.second; // deterministic tie-break
            });

  Groups G(N);
  // Track which ids each group contains so variable merges can be checked
  // against every member (compatibility is not transitive).
  std::vector<std::vector<unsigned>> Members(N);
  for (unsigned Id = 0; Id != N; ++Id)
    Members[Id] = {Id};

  for (const auto &[W, Pair] : Candidates) {
    auto [A, B] = Pair;
    if (SA.ClassOf[A] != SA.ClassOf[B])
      continue;
    if (SA.ClassOf[A] == StorageClass::TreeCell)
      continue;
    unsigned RA = G.find(A), RB = G.find(B);
    if (RA == RB)
      continue;
    if (SA.ClassOf[A] == StorageClass::Variable) {
      bool Ok = true;
      for (unsigned X : Members[RA])
        for (unsigned Y : Members[RB])
          Ok = Ok && varsCompatible(AG, Plan, SA.Ids, VG, SA.Intervals, X, Y);
      if (!Ok)
        continue;
    }
    // Stack merges share cells only through copies at run time, which is
    // always safe in the indexed-cell model; variable merges passed the
    // interference check above.
    G.merge(RA, RB);
    unsigned Root = G.find(RA);
    std::vector<unsigned> Merged = std::move(Members[RA]);
    Merged.insert(Merged.end(), Members[RB].begin(), Members[RB].end());
    Members[RA].clear();
    Members[RB].clear();
    Members[Root] = std::move(Merged);
  }

  // Final group numbering and statistics.
  std::map<unsigned, unsigned> VarGroupIdx, StackGroupIdx;
  for (unsigned Id = 0; Id != N; ++Id) {
    unsigned Root = G.find(Id);
    switch (SA.ClassOf[Id]) {
    case StorageClass::Variable:
      if (!VarGroupIdx.count(Root))
        VarGroupIdx[Root] = SA.NumVarGroups++;
      SA.GroupOf[Id] = VarGroupIdx[Root];
      break;
    case StorageClass::Stack:
      if (!StackGroupIdx.count(Root))
        StackGroupIdx[Root] = SA.NumStackGroups++;
      SA.GroupOf[Id] = StackGroupIdx[Root];
      break;
    case StorageClass::TreeCell:
      SA.GroupOf[Id] = 0;
      break;
    }
  }

  for (AttrId A = 0; A != AG.Attrs.size(); ++A) {
    switch (SA.ClassOf[A]) {
    case StorageClass::Variable:
      ++SA.NumVariableAttrs;
      break;
    case StorageClass::Stack:
      ++SA.NumStackAttrs;
      break;
    case StorageClass::TreeCell:
      ++SA.NumTreeAttrs;
      break;
    }
  }

  // Copy elimination: a copy whose endpoints share a class and a group is a
  // no-op (same variable) or a shared cell (same stack).
  for (RuleId R = 0; R != AG.numRules(); ++R) {
    const SemanticRule &Rule = AG.rule(R);
    if (!Rule.IsCopy || Rule.Args.size() != 1 || Rule.Args[0].isLexeme())
      continue;
    unsigned T = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Target);
    unsigned S = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Args[0]);
    if (T == S) {
      // Copies between occurrences of the *same* attribute (the broadcast
      // idiom) are eliminated whenever the attribute left the tree: the
      // target shares the source's cell.
      if (SA.ClassOf[T] != StorageClass::TreeCell) {
        SA.CopyEliminated[R] = true;
        ++SA.EliminatedCopyRules;
        ++SA.EliminableCopyRules;
      }
      continue;
    }
    bool SameClass = SA.ClassOf[T] == SA.ClassOf[S] &&
                     SA.ClassOf[T] != StorageClass::TreeCell;
    if (SameClass && SA.GroupOf[T] == SA.GroupOf[S]) {
      SA.CopyEliminated[R] = true;
      ++SA.EliminatedCopyRules;
    }
    // Theoretical upper bound: endpoints out of the tree and, for
    // variables, pairwise compatible.
    if (SameClass &&
        (SA.ClassOf[T] == StorageClass::Stack ||
         varsCompatible(AG, Plan, SA.Ids, VG, SA.Intervals, T, S)))
      ++SA.EliminableCopyRules;
  }

  return SA;
}

double StorageAssignment::pctVariables() const {
  unsigned Total = NumVariableAttrs + NumStackAttrs + NumTreeAttrs;
  return Total == 0 ? 0.0 : 100.0 * NumVariableAttrs / Total;
}
double StorageAssignment::pctStacks() const {
  unsigned Total = NumVariableAttrs + NumStackAttrs + NumTreeAttrs;
  return Total == 0 ? 0.0 : 100.0 * NumStackAttrs / Total;
}
double StorageAssignment::pctTree() const {
  unsigned Total = NumVariableAttrs + NumStackAttrs + NumTreeAttrs;
  return Total == 0 ? 0.0 : 100.0 * NumTreeAttrs / Total;
}
