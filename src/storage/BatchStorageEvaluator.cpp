//===- storage/BatchStorageEvaluator.cpp ----------------------------------===//

#include "storage/BatchStorageEvaluator.h"

#include "support/Trace.h"

using namespace fnc2;

void BatchStorageEvaluator::setRootInherited(AttrId A, Value V) {
  for (auto &[Attr, Val] : RootInh)
    if (Attr == A) {
      Val = std::move(V);
      return;
    }
  RootInh.emplace_back(A, std::move(V));
}

BatchStorageResult BatchStorageEvaluator::evaluate(std::vector<Tree> &Trees) {
  FNC2_SPAN("batch.storage.evaluate");
  BatchStorageResult Result;
  Result.Outcomes.resize(Trees.size());

  std::vector<StorageStats> WorkerStats(Pool.numThreads());

  Pool.parallelFor(Trees.size(), [&](size_t I, unsigned Worker) {
    FNC2_SPAN("batch.storage.tree");
    // A fresh evaluator per tree over the shared compiled state: the
    // assignment's variables and stacks are run-local cell banks, so
    // sharing an instance across concurrent trees would be meaningless as
    // well as racy.
    StorageEvaluator E(Plan, SA, Compiled, CompiledSA);
    E.setMirrorToTree(MirrorToTree);
    for (const auto &[Attr, Val] : RootInh)
      E.setRootInherited(Attr, Val);
    BatchTreeOutcome &Out = Result.Outcomes[I];
    Out.Success = E.evaluate(Trees[I], Out.Diags);
    WorkerStats[Worker].merge(E.stats());
  });

  for (const StorageStats &S : WorkerStats)
    Result.Stats.merge(S);
  for (const BatchTreeOutcome &Out : Result.Outcomes)
    Result.NumSucceeded += Out.Success;
  return Result;
}
