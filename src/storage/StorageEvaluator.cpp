//===- storage/StorageEvaluator.cpp ---------------------------------------===//

#include "storage/StorageEvaluator.h"

#include "eval/Evaluator.h"
#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<StorageStats>> StorageStats::schema() {
  static constexpr CounterField<StorageStats> Fields[] = {
      {"storage.peak_live_cells", &StorageStats::PeakLiveCells,
       MergeKind::Max},
      {"storage.tree_baseline_cells", &StorageStats::TreeBaselineCells},
      {"storage.stack_pushes", &StorageStats::StackPushes},
      {"storage.variable_writes", &StorageStats::VariableWrites},
      {"storage.tree_writes", &StorageStats::TreeWrites},
      {"storage.copies_skipped", &StorageStats::CopiesSkipped},
      {"storage.rules_evaluated", &StorageStats::RulesEvaluated},
  };
  return Fields;
}

//===----------------------------------------------------------------------===//
// CompiledStorage
//===----------------------------------------------------------------------===//

CompiledStorage::CompiledStorage(const CompiledPlan &CP,
                                 const StorageAssignment &SA) {
  const AttributeGrammar &AG = CP.grammar();

  // The Eval-ordered Rules copies share the ById entries' argument ranges,
  // so resolving each rule once (dense by id) fills the whole Args pool.
  Args.resize(CP.Args.size());
  for (const CompiledRule &C : CP.ById) {
    const SemanticRule &SR = AG.rule(C.Orig);
    for (uint16_t I = 0; I != C.NumArgs; ++I) {
      const AttrOcc &O = SR.Args[I];
      if (O.isLexeme())
        continue; // lexemes have no storage; the SlotRef kind short-circuits
      unsigned Id = O.isLocal() ? SA.Ids.idOfLocal(SR.Prod, O.LocalIndex)
                                : SA.Ids.idOfAttr(O.Attr);
      Args[C.FirstArg + I] = {SA.ClassOf[Id], SA.GroupOf[Id]};
    }
  }

  Rules.resize(CP.Rules.size());
  for (size_t I = 0; I != CP.Rules.size(); ++I) {
    const CompiledRule &C = CP.Rules[I];
    const SemanticRule &SR = AG.rule(C.Orig);
    const AttrOcc &T = SR.Target;
    unsigned Id = T.isLocal() ? SA.Ids.idOfLocal(SR.Prod, T.LocalIndex)
                              : SA.Ids.idOfAttr(T.Attr);
    Rules[I] = {SA.ClassOf[Id], SA.GroupOf[Id],
                /*IsCopy=*/bool(SA.CopyEliminated[C.Orig]),
                /*TargetDies=*/T.isLocal() || T.Pos != 0};
  }
}

//===----------------------------------------------------------------------===//
// StorageEvaluator
//===----------------------------------------------------------------------===//

StorageEvaluator::StorageEvaluator(const EvaluationPlan &Plan,
                                   const StorageAssignment &SA)
    : Plan(Plan), SA(SA), OwnedCP(std::make_unique<CompiledPlan>(Plan)),
      CP(OwnedCP.get()), OwnedCS(std::make_unique<CompiledStorage>(*CP, SA)),
      CS(OwnedCS.get()), UseInterp(interpFallbackRequested()) {
  RootInhVals.resize(Plan.AG->Attrs.size());
  RootInhSet.assign(Plan.AG->Attrs.size(), 0);
  ArgBuf.resize(CP->MaxRuleArgs);
}

StorageEvaluator::StorageEvaluator(const EvaluationPlan &Plan,
                                   const StorageAssignment &SA,
                                   const CompiledPlan &Compiled,
                                   const CompiledStorage &CompiledSA)
    : Plan(Plan), SA(SA), CP(&Compiled), CS(&CompiledSA),
      UseInterp(interpFallbackRequested()) {
  assert(&Compiled.plan() == &Plan && "compiled plan from a different plan");
  RootInhVals.resize(Plan.AG->Attrs.size());
  RootInhSet.assign(Plan.AG->Attrs.size(), 0);
  ArgBuf.resize(CP->MaxRuleArgs);
}

void StorageEvaluator::setRootInherited(AttrId A, Value V) {
  assert(A < RootInhVals.size() && "unknown attribute");
  RootInhVals[A] = std::move(V);
  RootInhSet[A] = 1;
}

void StorageEvaluator::noteLiveCells() {
  uint64_t Live = VarsLive + TreeCellsLive;
  for (const StackGroup &G : Stacks)
    Live += G.Cells.size(); // zombies included: they still occupy space
  Stats.PeakLiveCells = std::max(Stats.PeakLiveCells, Live);
}

void StorageEvaluator::shrinkDeadSuffix(StackGroup &G) {
  while (!G.Cells.empty() && G.Dead.back()) {
    G.Cells.pop_back();
    G.Dead.pop_back();
  }
}

// Baseline: a tree-resident evaluator stores one cell per attribute (and
// local) instance. Accumulates across evaluate() calls like every other
// summing counter (it used to be zeroed per run, which under-reported the
// baseline — and inflated reductionFactor() — when one evaluator was
// reused over several trees). The same walk stamps the compiled path's
// per-node cell index arrays.
void StorageEvaluator::countBaseline(TreeNode *Root) {
  WalkBuf.clear();
  WalkBuf.push_back(Root);
  size_t TotalSlots = 0;
  for (size_t I = 0; I != WalkBuf.size(); ++I) {
    TreeNode *N = WalkBuf[I];
    const FrameShape &F = CP->frameOf(N->Prod);
    const size_t NumSlots = size_t(F.NumAttrs) + F.NumLocals;
    Stats.TreeBaselineCells += NumSlots;
    TotalSlots += NumSlots;
    for (auto &C : N->Children)
      WalkBuf.push_back(C.get());
  }
  if (UseInterp)
    return;
  CellIdxArena.assign(TotalSlots, -1);
  int64_t *P = CellIdxArena.data();
  for (TreeNode *N : WalkBuf) {
    const FrameShape &F = CP->frameOf(N->Prod);
    N->CellIdx = P;
    P += size_t(F.NumAttrs) + F.NumLocals;
  }
}

bool StorageEvaluator::installRootInherited(TreeNode *Root,
                                            DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  const PhylumId Start = AG.prod(Root->Prod).Lhs;
  // Root installs never die: the write targets position 0, outside every
  // chunk, so the death list stays empty.
  std::vector<PendingDeath> RootDeaths;
  for (AttrId A : AG.phylum(Start).Attrs) {
    const Attribute &At = AG.attr(A);
    if (!At.isInherited())
      continue;
    if (!RootInhSet[A]) {
      Diags.error("inherited attribute '" + At.Name +
                  "' of the start phylum was not provided");
      return false;
    }
    if (UseInterp) {
      writeOccStored(Root, AttrOcc::onSymbol(0, A), RootInhVals[A],
                     RootDeaths);
    } else {
      SlotRef Ref;
      Ref.Kind = SlotRef::K::Self;
      Ref.Slot = static_cast<uint16_t>(At.IndexInOwner);
      writeSlot(Root, Ref, SA.ClassOf[A], SA.GroupOf[A], /*Dies=*/false,
                RootInhVals[A]);
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Compiled path
//===----------------------------------------------------------------------===//

const Value *StorageEvaluator::readSlot(TreeNode *N, const SlotRef &Ref,
                                        const CompiledStorage::Ref &C) {
  if (Ref.Kind == SlotRef::K::Lexeme)
    return &N->Lexeme;
  switch (C.Class) {
  case StorageClass::Variable:
    assert(VarSet[C.Group] && "variable read before write");
    return &Vars[C.Group];
  case StorageClass::Stack: {
    TreeNode *Site = Ref.Kind == SlotRef::K::Self ? N : N->child(Ref.Child);
    int64_t Idx = Site->CellIdx[Ref.Slot];
    assert(Idx >= 0 && "read before definition");
    StackGroup &G = Stacks[C.Group];
    assert(static_cast<size_t>(Idx) < G.Cells.size() && !G.Dead[Idx] &&
           "stale stack cell");
    return &G.Cells[Idx];
  }
  case StorageClass::TreeCell: {
    TreeNode *Site = Ref.Kind == SlotRef::K::Self ? N : N->child(Ref.Child);
    assert(Site->hasFrame() && Site->slotComputed(Ref.Slot) &&
           "tree-cell read before definition");
    return &Site->Slots[Ref.Slot];
  }
  }
  return nullptr;
}

void StorageEvaluator::mirrorWrite(TreeNode *N, const SlotRef &Ref, Value V) {
  TreeNode *Site = Ref.Kind == SlotRef::K::Self ? N : N->child(Ref.Child);
  CP->ensureFrame(Site);
  Site->Slots[Ref.Slot] = std::move(V);
  Site->setSlotComputed(Ref.Slot);
}

void StorageEvaluator::writeSlot(TreeNode *N, const SlotRef &Ref,
                                 StorageClass Class, uint32_t Group,
                                 bool Dies, Value V) {
  if (MirrorToTree)
    mirrorWrite(N, Ref, V);
  switch (Class) {
  case StorageClass::Variable:
    if (!VarSet[Group]) {
      VarSet[Group] = 1;
      ++VarsLive;
    }
    Vars[Group] = std::move(V);
    ++Stats.VariableWrites;
    break;
  case StorageClass::Stack: {
    StackGroup &G = Stacks[Group];
    G.Cells.push_back(std::move(V));
    G.Dead.push_back(0);
    TreeNode *Site = Ref.Kind == SlotRef::K::Self ? N : N->child(Ref.Child);
    Site->CellIdx[Ref.Slot] = static_cast<int64_t>(G.Cells.size() - 1);
    // LHS-synthesized results outlive this chunk: the parent adopts their
    // cells when the VISIT returns. Everything else dies at our LEAVE.
    if (Dies)
      DeathBuf.push_back({Group, static_cast<unsigned>(G.Cells.size() - 1)});
    ++Stats.StackPushes;
    break;
  }
  case StorageClass::TreeCell:
    if (!MirrorToTree)
      mirrorWrite(N, Ref, std::move(V));
    ++Stats.TreeWrites;
    ++TreeCellsLive;
    break;
  }
  noteLiveCells();
}

bool StorageEvaluator::execCompiledRule(TreeNode *N, uint32_t RI,
                                        size_t DeathBase,
                                        DiagnosticEngine &Diags) {
  const CompiledRule &R = CP->Rules[RI];
  const CompiledStorage::RuleInfo &SR = CS->Rules[RI];

  if (!R.Fn) {
    const AttributeGrammar &AG = *Plan.AG;
    const SemanticRule &Rule = AG.rule(R.Orig);
    Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                "' has no semantic function");
    return false;
  }

  // Eliminated copies: the target shares the source's cell (stacks) or the
  // write is a no-op on the shared variable.
  if (SR.IsCopy) {
    ++Stats.CopiesSkipped;
    FNC2_COUNT("storage.copies_skipped", 1);
    const SlotRef &Src = CP->Args[R.FirstArg];
    if (SR.Class == StorageClass::Stack) {
      TreeNode *SrcSite =
          Src.Kind == SlotRef::K::Self ? N : N->child(Src.Child);
      int64_t Idx = SrcSite->CellIdx[Src.Slot];
      assert(Idx >= 0 && "eliminated copy reads an undefined source");
      // A synthesized result sharing a cell must keep that cell alive past
      // this chunk's LEAVE: cancel any death pending for it here (the
      // parent's adoption then extends the lifetime, exactly the paper's
      // delayed POP).
      if (!SR.TargetDies)
        for (size_t D = DeathBase; D != DeathBuf.size(); ++D)
          if (DeathBuf[D].Group == SR.Group &&
              DeathBuf[D].Index == static_cast<unsigned>(Idx)) {
            DeathBuf.erase(DeathBuf.begin() + static_cast<ptrdiff_t>(D));
            break;
          }
      const SlotRef &T = R.Target;
      TreeNode *TSite = T.Kind == SlotRef::K::Self ? N : N->child(T.Child);
      TSite->CellIdx[T.Slot] = Idx;
    }
    if (MirrorToTree)
      mirrorWrite(N, R.Target, *readSlot(N, Src, CS->Args[R.FirstArg]));
    ++Stats.RulesEvaluated;
    FNC2_COUNT("storage.rules", 1);
    return true;
  }

  Value *Buf = ArgBuf.data();
  for (unsigned I = 0; I != R.NumArgs; ++I)
    Buf[I] = *readSlot(N, CP->Args[R.FirstArg + I], CS->Args[R.FirstArg + I]);
  Value Result = (*R.Fn)(std::span<const Value>(Buf, R.NumArgs));
  writeSlot(N, R.Target, SR.Class, SR.Group, SR.TargetDies,
            std::move(Result));
  ++Stats.RulesEvaluated;
  FNC2_COUNT("storage.rules", 1);
  return true;
}

bool StorageEvaluator::runCompiledVisit(TreeNode *N, const CompiledSeq *Seq,
                                        unsigned VisitNo,
                                        DiagnosticEngine &Diags) {
  FNC2_SPAN("storage.visit");
  assert(VisitNo >= 1 && VisitNo <= Seq->NumVisits && "visit out of range");

  const CompiledPlan &C = *CP;
  // Cells created during this chunk die at its LEAVE (delayed POPs); the
  // chunk's pending deaths are DeathBuf[DeathBase..].
  const size_t DeathBase = DeathBuf.size();
  const CompiledInstr *I =
      &C.Instrs[Seq->FirstInstr + C.BeginOfs[Seq->FirstBegin + VisitNo - 1]];
  for (;; ++I) {
    switch (I->Kind) {
    case CompiledInstr::Op::Eval:
      for (uint32_t K = 0; K != I->B; ++K)
        if (!execCompiledRule(N, I->A + K, DeathBase, Diags))
          return false;
      break;
    case CompiledInstr::Op::Visit: {
      TreeNode *Child = N->child(I->Child);
      Child->PartitionId = I->A;
      const CompiledSeq *ChildSeq = C.seqForNode(Child);
      if (!ChildSeq) {
        Diags.error("no visit sequence for operator '" +
                    Plan.AG->prod(Child->Prod).Name + "' under partition " +
                    std::to_string(Child->PartitionId));
        return false;
      }
      Child->ensureFrame(ChildSeq->Frame.NumAttrs, ChildSeq->Frame.NumLocals);
      // Watermark every stack: cells surviving the child's visit belong to
      // its returned synthesized attributes and die at *this* LEAVE.
      const size_t MarkBase = MarkBuf.size();
      for (const StackGroup &G : Stacks)
        MarkBuf.push_back(G.Cells.size());
      if (!runCompiledVisit(Child, ChildSeq, I->VisitNo, Diags))
        return false;
      for (size_t S = 0; S != Stacks.size(); ++S)
        for (size_t Cell = MarkBuf[MarkBase + S];
             Cell < Stacks[S].Cells.size(); ++Cell)
          if (!Stacks[S].Dead[Cell])
            DeathBuf.push_back(
                {static_cast<unsigned>(S), static_cast<unsigned>(Cell)});
      MarkBuf.resize(MarkBase);
      break;
    }
    case CompiledInstr::Op::Leave:
      assert(I->VisitNo == VisitNo && "mismatched LEAVE");
      for (size_t D = DeathBase; D != DeathBuf.size(); ++D) {
        StackGroup &G = Stacks[DeathBuf[D].Group];
        if (DeathBuf[D].Index < G.Cells.size())
          G.Dead[DeathBuf[D].Index] = 1;
      }
      DeathBuf.resize(DeathBase);
      for (StackGroup &G : Stacks)
        shrinkDeadSuffix(G);
      return true;
    }
  }
}

//===----------------------------------------------------------------------===//
// Interpreted fallback
//===----------------------------------------------------------------------===//

const Value *StorageEvaluator::readOccStored(TreeNode *N, const AttrOcc &O) {
  const AttributeGrammar &AG = *Plan.AG;
  if (O.isLexeme())
    return &N->Lexeme;
  if (O.isLocal()) {
    unsigned Id = SA.Ids.idOfLocal(N->Prod, O.LocalIndex);
    switch (SA.ClassOf[Id]) {
    case StorageClass::Variable:
      assert(VarSet[SA.GroupOf[Id]] && "variable read before write");
      return &Vars[SA.GroupOf[Id]];
    case StorageClass::Stack: {
      auto It = LocalCell.find(N);
      assert(It != LocalCell.end() && "local cell index missing");
      int64_t Idx = It->second[O.LocalIndex];
      assert(Idx >= 0 && "local read before definition");
      StackGroup &G = Stacks[SA.GroupOf[Id]];
      assert(static_cast<size_t>(Idx) < G.Cells.size() && !G.Dead[Idx] &&
             "stale stack cell");
      return &G.Cells[Idx];
    }
    case StorageClass::TreeCell:
      assert(N->hasFrame() && "local read before storage was ensured");
      return &N->Slots[N->FrameAttrs + O.LocalIndex];
    }
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  unsigned Id = SA.Ids.idOfAttr(O.Attr);
  unsigned AttrIdx = AG.attr(O.Attr).IndexInOwner;
  switch (SA.ClassOf[Id]) {
  case StorageClass::Variable:
    assert(VarSet[SA.GroupOf[Id]] && "variable read before write");
    return &Vars[SA.GroupOf[Id]];
  case StorageClass::Stack: {
    auto It = AttrCell.find(Site);
    assert(It != AttrCell.end() && "attribute cell index missing");
    int64_t Idx = It->second[AttrIdx];
    assert(Idx >= 0 && "attribute read before definition");
    StackGroup &G = Stacks[SA.GroupOf[Id]];
    assert(static_cast<size_t>(Idx) < G.Cells.size() && !G.Dead[Idx] &&
           "stale stack cell");
    return &G.Cells[Idx];
  }
  case StorageClass::TreeCell:
    ensureNodeStorage(AG, Site);
    return &Site->Slots[AttrIdx];
  }
  return nullptr;
}

void StorageEvaluator::writeOccStored(TreeNode *N, const AttrOcc &O, Value V,
                                      std::vector<PendingDeath> &Deaths) {
  const AttributeGrammar &AG = *Plan.AG;
  assert(!O.isLexeme() && "lexeme is read-only");

  if (MirrorToTree) {
    ensureNodeStorage(AG, O.isLocal()
                              ? N
                              : (O.Pos == 0 ? N : N->child(O.Pos - 1)));
    writeOcc(AG, N, O, V);
  }

  unsigned Id;
  TreeNode *Site;
  std::vector<int64_t> *Cells;
  unsigned SlotIdx;
  if (O.isLocal()) {
    Id = SA.Ids.idOfLocal(N->Prod, O.LocalIndex);
    Site = N;
    auto &Vec = LocalCell[N];
    if (Vec.size() != AG.prod(N->Prod).Locals.size())
      Vec.assign(AG.prod(N->Prod).Locals.size(), -1);
    Cells = &Vec;
    SlotIdx = O.LocalIndex;
  } else {
    Id = SA.Ids.idOfAttr(O.Attr);
    Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
    auto &Vec = AttrCell[Site];
    unsigned NumAttrs = static_cast<unsigned>(
        AG.phylum(AG.prod(Site->Prod).Lhs).Attrs.size());
    if (Vec.size() != NumAttrs)
      Vec.assign(NumAttrs, -1);
    Cells = &Vec;
    SlotIdx = AG.attr(O.Attr).IndexInOwner;
  }

  switch (SA.ClassOf[Id]) {
  case StorageClass::Variable:
    if (!VarSet[SA.GroupOf[Id]]) {
      VarSet[SA.GroupOf[Id]] = 1;
      ++VarsLive;
    }
    Vars[SA.GroupOf[Id]] = std::move(V);
    ++Stats.VariableWrites;
    break;
  case StorageClass::Stack: {
    StackGroup &G = Stacks[SA.GroupOf[Id]];
    G.Cells.push_back(std::move(V));
    G.Dead.push_back(0);
    (*Cells)[SlotIdx] = static_cast<int64_t>(G.Cells.size() - 1);
    // LHS-synthesized results outlive this chunk: the parent adopts their
    // cells when the VISIT returns. Everything else dies at our LEAVE.
    if (O.isLocal() || O.Pos != 0)
      Deaths.push_back({SA.GroupOf[Id],
                        static_cast<unsigned>(G.Cells.size() - 1)});
    ++Stats.StackPushes;
    break;
  }
  case StorageClass::TreeCell:
    if (!MirrorToTree) {
      ensureNodeStorage(AG, Site);
      writeOcc(AG, N, O, std::move(V));
    }
    ++Stats.TreeWrites;
    ++TreeCellsLive;
    break;
  }
  noteLiveCells();
}

bool StorageEvaluator::execRule(TreeNode *N, RuleId R,
                                std::vector<PendingDeath> &Deaths,
                                DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  const SemanticRule &Rule = AG.rule(R);
  if (!Rule.Fn) {
    Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                "' has no semantic function");
    return false;
  }

  // Eliminated copies: the target shares the source's cell (stacks) or the
  // write is a no-op on the shared variable.
  if (SA.CopyEliminated[R]) {
    ++Stats.CopiesSkipped;
    FNC2_COUNT("storage.copies_skipped", 1);
    const AttrOcc &Src = Rule.Args[0];
    unsigned TId = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Target);
    if (SA.ClassOf[TId] == StorageClass::Stack) {
      // Share the source cell: copy the recorded index.
      TreeNode *SrcSite = Src.isLocal()
                              ? N
                              : (Src.Pos == 0 ? N : N->child(Src.Pos - 1));
      int64_t Idx = Src.isLocal() ? LocalCell[SrcSite][Src.LocalIndex]
                                  : AttrCell[SrcSite][Plan.AG->attr(Src.Attr)
                                                          .IndexInOwner];
      assert(Idx >= 0 && "eliminated copy reads an undefined source");
      const AttrOcc &T = Rule.Target;
      // A synthesized result sharing a cell must keep that cell alive past
      // this chunk's LEAVE: cancel any death pending for it here (the
      // parent's adoption then extends the lifetime, exactly the paper's
      // delayed POP).
      if (!T.isLocal() && T.Pos == 0) {
        unsigned Group = SA.GroupOf[TId];
        for (auto It = Deaths.begin(); It != Deaths.end(); ++It)
          if (It->Group == Group &&
              It->Index == static_cast<unsigned>(Idx)) {
            Deaths.erase(It);
            break;
          }
      }
      TreeNode *TSite =
          T.isLocal() ? N : (T.Pos == 0 ? N : N->child(T.Pos - 1));
      if (T.isLocal()) {
        auto &Vec = LocalCell[TSite];
        if (Vec.size() != AG.prod(TSite->Prod).Locals.size())
          Vec.assign(AG.prod(TSite->Prod).Locals.size(), -1);
        Vec[T.LocalIndex] = Idx;
      } else {
        auto &Vec = AttrCell[TSite];
        unsigned NumAttrs = static_cast<unsigned>(
            AG.phylum(AG.prod(TSite->Prod).Lhs).Attrs.size());
        if (Vec.size() != NumAttrs)
          Vec.assign(NumAttrs, -1);
        Vec[AG.attr(T.Attr).IndexInOwner] = Idx;
      }
    }
    if (MirrorToTree) {
      const Value *V = readOccStored(N, Src);
      writeOcc(AG, N, Rule.Target, *V);
    }
    ++Stats.RulesEvaluated;
    FNC2_COUNT("storage.rules", 1);
    return true;
  }

  Value *Buf = ArgBuf.data();
  const size_t NumArgs = Rule.Args.size();
  for (size_t I = 0; I != NumArgs; ++I) {
    const Value *V = readOccStored(N, Rule.Args[I]);
    if (!V) {
      Diags.error("argument unavailable for rule '" + Rule.FnName + "'");
      return false;
    }
    Buf[I] = *V;
  }
  writeOccStored(N, Rule.Target,
                 Rule.Fn(std::span<const Value>(Buf, NumArgs)), Deaths);
  ++Stats.RulesEvaluated;
  FNC2_COUNT("storage.rules", 1);
  return true;
}

bool StorageEvaluator::runVisit(TreeNode *N, unsigned VisitNo,
                                DiagnosticEngine &Diags) {
  FNC2_SPAN("storage.visit");
  const AttributeGrammar &AG = *Plan.AG;
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for operator '" + AG.prod(N->Prod).Name +
                "' under partition " + std::to_string(N->PartitionId));
    return false;
  }

  // Cells created during this chunk die at its LEAVE (delayed POPs).
  std::vector<PendingDeath> Deaths;

  for (unsigned I = Seq->BeginIndex[VisitNo - 1] + 1;; ++I) {
    const VisitInstr &Instr = Seq->Instrs[I];
    switch (Instr.Kind) {
    case VisitInstr::Op::Eval:
      for (RuleId R : Instr.Rules)
        if (!execRule(N, R, Deaths, Diags))
          return false;
      break;
    case VisitInstr::Op::Visit: {
      TreeNode *Child = N->child(Instr.Child);
      Child->PartitionId = Instr.ChildPartition;
      // Remember how many cells each stack holds: the child's returned
      // synthesized cells (pushed inside) must die at *this* chunk's LEAVE.
      std::vector<size_t> Before(Stacks.size());
      for (size_t S = 0; S != Stacks.size(); ++S)
        Before[S] = Stacks[S].Cells.size();
      if (!runVisit(Child, Instr.VisitNo, Diags))
        return false;
      // Any cell surviving the child's visit belongs to its returned
      // synthesized attributes; adopt them.
      for (size_t S = 0; S != Stacks.size(); ++S)
        for (size_t C = Before[S]; C < Stacks[S].Cells.size(); ++C)
          if (!Stacks[S].Dead[C])
            Deaths.push_back(
                {static_cast<unsigned>(S), static_cast<unsigned>(C)});
      break;
    }
    case VisitInstr::Op::Leave:
      for (const PendingDeath &D : Deaths) {
        StackGroup &G = Stacks[D.Group];
        if (D.Index < G.Cells.size())
          G.Dead[D.Index] = 1;
      }
      for (StackGroup &G : Stacks)
        shrinkDeadSuffix(G);
      return true;
    case VisitInstr::Op::Begin:
      assert(false && "BEGIN inside a visit body");
      return false;
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

bool StorageEvaluator::evaluate(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("storage.tree");
  const AttributeGrammar &AG = *Plan.AG;
  TreeNode *Root = T.root();
  if (!Root) {
    Diags.error("cannot evaluate an empty tree");
    return false;
  }
  T.resetAttributes();
  AttrCell.clear();
  LocalCell.clear();
  Vars.assign(SA.NumVarGroups, Value());
  VarSet.assign(SA.NumVarGroups, 0);
  Stacks.assign(SA.NumStackGroups, StackGroup());
  TreeCellsLive = 0;
  VarsLive = 0;
  DeathBuf.clear();
  MarkBuf.clear();

  countBaseline(Root);

  Root->PartitionId = Plan.RootPartition;
  ensureNodeStorage(AG, Root);

  if (!installRootInherited(Root, Diags))
    return false;

  if (!UseInterp) {
    const CompiledSeq *Seq = CP->seqForNode(Root);
    if (!Seq) {
      Diags.error("no visit sequence for the root operator");
      return false;
    }
    for (unsigned V = 1; V <= Seq->NumVisits; ++V)
      if (!runCompiledVisit(Root, Seq, V, Diags))
        return false;
    return true;
  }

  const VisitSequence *Seq = Plan.find(Root->Prod, Root->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for the root operator");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!runVisit(Root, V, Diags))
      return false;
  return true;
}
