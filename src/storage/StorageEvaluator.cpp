//===- storage/StorageEvaluator.cpp ---------------------------------------===//

#include "storage/StorageEvaluator.h"

#include "eval/Evaluator.h"
#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<StorageStats>> StorageStats::schema() {
  static constexpr CounterField<StorageStats> Fields[] = {
      {"storage.peak_live_cells", &StorageStats::PeakLiveCells,
       MergeKind::Max},
      {"storage.tree_baseline_cells", &StorageStats::TreeBaselineCells},
      {"storage.stack_pushes", &StorageStats::StackPushes},
      {"storage.variable_writes", &StorageStats::VariableWrites},
      {"storage.tree_writes", &StorageStats::TreeWrites},
      {"storage.copies_skipped", &StorageStats::CopiesSkipped},
      {"storage.rules_evaluated", &StorageStats::RulesEvaluated},
  };
  return Fields;
}

void StorageEvaluator::setRootInherited(AttrId A, Value V) {
  for (auto &[Attr, Val] : RootInh)
    if (Attr == A) {
      Val = std::move(V);
      return;
    }
  RootInh.emplace_back(A, std::move(V));
}

void StorageEvaluator::noteLiveCells() {
  uint64_t Live = VarsLive + TreeCellsLive;
  for (const StackGroup &G : Stacks)
    Live += G.Cells.size(); // zombies included: they still occupy space
  Stats.PeakLiveCells = std::max(Stats.PeakLiveCells, Live);
}

void StorageEvaluator::shrinkDeadSuffix(StackGroup &G) {
  while (!G.Cells.empty() && G.Dead.back()) {
    G.Cells.pop_back();
    G.Dead.pop_back();
  }
}

const Value *StorageEvaluator::readOccStored(TreeNode *N, const AttrOcc &O) {
  const AttributeGrammar &AG = *Plan.AG;
  if (O.isLexeme())
    return &N->Lexeme;
  if (O.isLocal()) {
    unsigned Id = SA.Ids.idOfLocal(N->Prod, O.LocalIndex);
    switch (SA.ClassOf[Id]) {
    case StorageClass::Variable:
      assert(VarSet[SA.GroupOf[Id]] && "variable read before write");
      return &Vars[SA.GroupOf[Id]];
    case StorageClass::Stack: {
      auto It = LocalCell.find(N);
      assert(It != LocalCell.end() && "local cell index missing");
      int64_t Idx = It->second[O.LocalIndex];
      assert(Idx >= 0 && "local read before definition");
      StackGroup &G = Stacks[SA.GroupOf[Id]];
      assert(static_cast<size_t>(Idx) < G.Cells.size() && !G.Dead[Idx] &&
             "stale stack cell");
      return &G.Cells[Idx];
    }
    case StorageClass::TreeCell:
      return &N->LocalVals[O.LocalIndex];
    }
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  unsigned Id = SA.Ids.idOfAttr(O.Attr);
  unsigned AttrIdx = AG.attr(O.Attr).IndexInOwner;
  switch (SA.ClassOf[Id]) {
  case StorageClass::Variable:
    assert(VarSet[SA.GroupOf[Id]] && "variable read before write");
    return &Vars[SA.GroupOf[Id]];
  case StorageClass::Stack: {
    auto It = AttrCell.find(Site);
    assert(It != AttrCell.end() && "attribute cell index missing");
    int64_t Idx = It->second[AttrIdx];
    assert(Idx >= 0 && "attribute read before definition");
    StackGroup &G = Stacks[SA.GroupOf[Id]];
    assert(static_cast<size_t>(Idx) < G.Cells.size() && !G.Dead[Idx] &&
           "stale stack cell");
    return &G.Cells[Idx];
  }
  case StorageClass::TreeCell:
    ensureNodeStorage(AG, Site);
    return &Site->AttrVals[AttrIdx];
  }
  return nullptr;
}

void StorageEvaluator::writeOccStored(TreeNode *N, const AttrOcc &O, Value V,
                                      std::vector<PendingDeath> &Deaths) {
  const AttributeGrammar &AG = *Plan.AG;
  assert(!O.isLexeme() && "lexeme is read-only");

  if (MirrorToTree) {
    ensureNodeStorage(AG, O.isLocal()
                              ? N
                              : (O.Pos == 0 ? N : N->child(O.Pos - 1)));
    writeOcc(AG, N, O, V);
  }

  unsigned Id;
  TreeNode *Site;
  std::vector<int64_t> *Cells;
  unsigned SlotIdx;
  if (O.isLocal()) {
    Id = SA.Ids.idOfLocal(N->Prod, O.LocalIndex);
    Site = N;
    auto &Vec = LocalCell[N];
    if (Vec.size() != AG.prod(N->Prod).Locals.size())
      Vec.assign(AG.prod(N->Prod).Locals.size(), -1);
    Cells = &Vec;
    SlotIdx = O.LocalIndex;
  } else {
    Id = SA.Ids.idOfAttr(O.Attr);
    Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
    auto &Vec = AttrCell[Site];
    unsigned NumAttrs = static_cast<unsigned>(
        AG.phylum(AG.prod(Site->Prod).Lhs).Attrs.size());
    if (Vec.size() != NumAttrs)
      Vec.assign(NumAttrs, -1);
    Cells = &Vec;
    SlotIdx = AG.attr(O.Attr).IndexInOwner;
  }

  switch (SA.ClassOf[Id]) {
  case StorageClass::Variable:
    if (!VarSet[SA.GroupOf[Id]]) {
      VarSet[SA.GroupOf[Id]] = 1;
      ++VarsLive;
    }
    Vars[SA.GroupOf[Id]] = std::move(V);
    ++Stats.VariableWrites;
    break;
  case StorageClass::Stack: {
    StackGroup &G = Stacks[SA.GroupOf[Id]];
    G.Cells.push_back(std::move(V));
    G.Dead.push_back(0);
    (*Cells)[SlotIdx] = static_cast<int64_t>(G.Cells.size() - 1);
    // LHS-synthesized results outlive this chunk: the parent adopts their
    // cells when the VISIT returns. Everything else dies at our LEAVE.
    if (O.isLocal() || O.Pos != 0)
      Deaths.push_back({SA.GroupOf[Id],
                        static_cast<unsigned>(G.Cells.size() - 1)});
    ++Stats.StackPushes;
    break;
  }
  case StorageClass::TreeCell:
    if (!MirrorToTree) {
      ensureNodeStorage(AG, Site);
      writeOcc(AG, N, O, std::move(V));
    }
    ++Stats.TreeWrites;
    ++TreeCellsLive;
    break;
  }
  noteLiveCells();
}

bool StorageEvaluator::execRule(TreeNode *N, RuleId R,
                                std::vector<PendingDeath> &Deaths,
                                DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  const SemanticRule &Rule = AG.rule(R);
  if (!Rule.Fn) {
    Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                "' has no semantic function");
    return false;
  }

  // Eliminated copies: the target shares the source's cell (stacks) or the
  // write is a no-op on the shared variable.
  if (SA.CopyEliminated[R]) {
    ++Stats.CopiesSkipped;
    FNC2_COUNT("storage.copies_skipped", 1);
    const AttrOcc &Src = Rule.Args[0];
    unsigned TId = SA.Ids.idOfOcc(AG, Rule.Prod, Rule.Target);
    if (SA.ClassOf[TId] == StorageClass::Stack) {
      // Share the source cell: copy the recorded index.
      TreeNode *SrcSite = Src.isLocal()
                              ? N
                              : (Src.Pos == 0 ? N : N->child(Src.Pos - 1));
      int64_t Idx = Src.isLocal() ? LocalCell[SrcSite][Src.LocalIndex]
                                  : AttrCell[SrcSite][Plan.AG->attr(Src.Attr)
                                                          .IndexInOwner];
      assert(Idx >= 0 && "eliminated copy reads an undefined source");
      const AttrOcc &T = Rule.Target;
      // A synthesized result sharing a cell must keep that cell alive past
      // this chunk's LEAVE: cancel any death pending for it here (the
      // parent's adoption then extends the lifetime, exactly the paper's
      // delayed POP).
      if (!T.isLocal() && T.Pos == 0) {
        unsigned Group = SA.GroupOf[TId];
        for (auto It = Deaths.begin(); It != Deaths.end(); ++It)
          if (It->Group == Group &&
              It->Index == static_cast<unsigned>(Idx)) {
            Deaths.erase(It);
            break;
          }
      }
      TreeNode *TSite =
          T.isLocal() ? N : (T.Pos == 0 ? N : N->child(T.Pos - 1));
      if (T.isLocal()) {
        auto &Vec = LocalCell[TSite];
        if (Vec.size() != AG.prod(TSite->Prod).Locals.size())
          Vec.assign(AG.prod(TSite->Prod).Locals.size(), -1);
        Vec[T.LocalIndex] = Idx;
      } else {
        auto &Vec = AttrCell[TSite];
        unsigned NumAttrs = static_cast<unsigned>(
            AG.phylum(AG.prod(TSite->Prod).Lhs).Attrs.size());
        if (Vec.size() != NumAttrs)
          Vec.assign(NumAttrs, -1);
        Vec[AG.attr(T.Attr).IndexInOwner] = Idx;
      }
    }
    if (MirrorToTree) {
      const Value *V = readOccStored(N, Src);
      writeOcc(AG, N, Rule.Target, *V);
    }
    ++Stats.RulesEvaluated;
    FNC2_COUNT("storage.rules", 1);
    return true;
  }

  std::vector<Value> Args;
  Args.reserve(Rule.Args.size());
  for (const AttrOcc &Arg : Rule.Args) {
    const Value *V = readOccStored(N, Arg);
    if (!V) {
      Diags.error("argument unavailable for rule '" + Rule.FnName + "'");
      return false;
    }
    Args.push_back(*V);
  }
  writeOccStored(N, Rule.Target, Rule.Fn(Args), Deaths);
  ++Stats.RulesEvaluated;
  FNC2_COUNT("storage.rules", 1);
  return true;
}

bool StorageEvaluator::runVisit(TreeNode *N, unsigned VisitNo,
                                DiagnosticEngine &Diags) {
  FNC2_SPAN("storage.visit");
  const AttributeGrammar &AG = *Plan.AG;
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for operator '" + AG.prod(N->Prod).Name +
                "' under partition " + std::to_string(N->PartitionId));
    return false;
  }

  // Cells created during this chunk die at its LEAVE (delayed POPs).
  std::vector<PendingDeath> Deaths;

  for (unsigned I = Seq->BeginIndex[VisitNo - 1] + 1;; ++I) {
    const VisitInstr &Instr = Seq->Instrs[I];
    switch (Instr.Kind) {
    case VisitInstr::Op::Eval:
      for (RuleId R : Instr.Rules)
        if (!execRule(N, R, Deaths, Diags))
          return false;
      break;
    case VisitInstr::Op::Visit: {
      TreeNode *Child = N->child(Instr.Child);
      Child->PartitionId = Instr.ChildPartition;
      // Remember how many cells each stack holds: the child's returned
      // synthesized cells (pushed inside) must die at *this* chunk's LEAVE.
      std::vector<size_t> Before(Stacks.size());
      for (size_t S = 0; S != Stacks.size(); ++S)
        Before[S] = Stacks[S].Cells.size();
      if (!runVisit(Child, Instr.VisitNo, Diags))
        return false;
      // Any cell surviving the child's visit belongs to its returned
      // synthesized attributes; adopt them.
      for (size_t S = 0; S != Stacks.size(); ++S)
        for (size_t C = Before[S]; C < Stacks[S].Cells.size(); ++C)
          if (!Stacks[S].Dead[C])
            Deaths.push_back(
                {static_cast<unsigned>(S), static_cast<unsigned>(C)});
      break;
    }
    case VisitInstr::Op::Leave:
      for (const PendingDeath &D : Deaths) {
        StackGroup &G = Stacks[D.Group];
        if (D.Index < G.Cells.size())
          G.Dead[D.Index] = 1;
      }
      for (StackGroup &G : Stacks)
        shrinkDeadSuffix(G);
      return true;
    case VisitInstr::Op::Begin:
      assert(false && "BEGIN inside a visit body");
      return false;
    }
  }
}

bool StorageEvaluator::evaluate(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("storage.tree");
  const AttributeGrammar &AG = *Plan.AG;
  TreeNode *Root = T.root();
  if (!Root) {
    Diags.error("cannot evaluate an empty tree");
    return false;
  }
  T.resetAttributes();
  AttrCell.clear();
  LocalCell.clear();
  Vars.assign(SA.NumVarGroups, Value());
  VarSet.assign(SA.NumVarGroups, 0);
  Stacks.assign(SA.NumStackGroups, StackGroup());
  TreeCellsLive = 0;
  VarsLive = 0;

  // Baseline: a tree-resident evaluator stores one cell per attribute (and
  // local) instance. Accumulates across evaluate() calls like every other
  // summing counter (it used to be zeroed here, which under-reported the
  // baseline — and inflated reductionFactor() — when one evaluator was
  // reused over several trees).
  std::vector<TreeNode *> Work = {Root};
  while (!Work.empty()) {
    TreeNode *N = Work.back();
    Work.pop_back();
    Stats.TreeBaselineCells +=
        AG.phylum(AG.prod(N->Prod).Lhs).Attrs.size() +
        AG.prod(N->Prod).Locals.size();
    for (auto &C : N->Children)
      Work.push_back(C.get());
  }

  Root->PartitionId = Plan.RootPartition;
  ensureNodeStorage(AG, Root);

  PhylumId Start = AG.prod(Root->Prod).Lhs;
  std::vector<PendingDeath> RootDeaths;
  for (AttrId A : AG.phylum(Start).Attrs) {
    const Attribute &At = AG.attr(A);
    if (!At.isInherited())
      continue;
    bool Provided = false;
    for (auto &[Attr, Val] : RootInh)
      if (Attr == A) {
        writeOccStored(Root, AttrOcc::onSymbol(0, A), Val, RootDeaths);
        Provided = true;
      }
    if (!Provided) {
      Diags.error("inherited attribute '" + At.Name +
                  "' of the start phylum was not provided");
      return false;
    }
  }

  const VisitSequence *Seq = Plan.find(Root->Prod, Root->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for the root operator");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!runVisit(Root, V, Diags))
      return false;
  return true;
}
