//===- storage/BatchStorageEvaluator.h - Batched storage eval ---*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch API of eval/BatchEvaluator.h extended over the storage-
/// optimized evaluator, so the space-optimization ablation also runs
/// batched. The plan and the StorageAssignment are shared read-only; the
/// global variables and stacks the assignment prescribes are *per-worker
/// interpreter state* (one StorageEvaluator instance per tree), since cell
/// contents are meaningful only within one tree's evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_STORAGE_BATCHSTORAGEEVALUATOR_H
#define FNC2_STORAGE_BATCHSTORAGEEVALUATOR_H

#include "eval/BatchEvaluator.h"
#include "storage/StorageEvaluator.h"
#include "support/ThreadPool.h"

namespace fnc2 {

/// The join of one storage-evaluated batch.
struct BatchStorageResult {
  std::deque<BatchTreeOutcome> Outcomes;
  StorageStats Stats;
  unsigned NumSucceeded = 0;

  bool allSucceeded() const { return NumSucceeded == Outcomes.size(); }
};

/// Evaluates batches of disjoint trees under a shared plan + storage
/// assignment.
class BatchStorageEvaluator {
public:
  BatchStorageEvaluator(const EvaluationPlan &Plan,
                        const StorageAssignment &SA, ThreadPool &Pool)
      : Plan(Plan), SA(SA), Pool(Pool), Compiled(Plan),
        CompiledSA(Compiled, SA) {}

  void setRootInherited(AttrId A, Value V);

  /// Mirrors every write into the tree slots (differential testing).
  void setMirrorToTree(bool On) { MirrorToTree = On; }

  BatchStorageResult evaluate(std::vector<Tree> &Trees);

private:
  const EvaluationPlan &Plan;
  const StorageAssignment &SA;
  ThreadPool &Pool;
  /// Compiled once; shared read-only by every worker's evaluator.
  CompiledPlan Compiled;
  CompiledStorage CompiledSA;
  bool MirrorToTree = false;
  std::vector<std::pair<AttrId, Value>> RootInh;
};

} // namespace fnc2

#endif // FNC2_STORAGE_BATCHSTORAGEEVALUATOR_H
