//===- storage/StorageEvaluator.h - Storage-aware interpreter ---*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A visit-sequence interpreter that executes under a StorageAssignment:
/// variable-class attributes live in global variables, stack-class ones in
/// global stacks (cells die at the LEAVE of the visit that created them —
/// the paper's delayed POPs — and dead cells below a surviving one linger
/// until the suffix clears), and only tree-class attributes occupy node
/// slots. Copy rules whose endpoints share a cell are skipped (variables)
/// or share the cell (stacks). The evaluator counts peak live cells so the
/// benches can reproduce the paper's "factor of 4 to 8" storage reduction.
///
/// The simulation records each instance's cell index at its node; real
/// FNC-2 computes below-top access depths statically, which this dynamic
/// bookkeeping generalizes while keeping reads assert-checked.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_STORAGE_STORAGEEVALUATOR_H
#define FNC2_STORAGE_STORAGEEVALUATOR_H

#include "storage/Lifetime.h"
#include "support/Metrics.h"
#include "tree/Tree.h"

#include <unordered_map>

namespace fnc2 {

/// Dynamic storage counters. Reset/merge/export semantics are derived from
/// schema() (support/Metrics.h): every counter sums on merge except
/// PeakLiveCells, whose merge is the maximum — the largest single-tree
/// working set seen by any worker.
struct StorageStats {
  uint64_t PeakLiveCells = 0;   ///< Max simultaneous var+stack+tree cells.
  uint64_t TreeBaselineCells = 0; ///< Instances a tree-resident run stores.
  uint64_t StackPushes = 0;
  uint64_t VariableWrites = 0;
  uint64_t TreeWrites = 0;
  uint64_t CopiesSkipped = 0;
  uint64_t RulesEvaluated = 0;

  double reductionFactor() const {
    return PeakLiveCells == 0
               ? 0.0
               : double(TreeBaselineCells) / double(PeakLiveCells);
  }

  /// Names and merge kinds of every counter above.
  static std::span<const CounterField<StorageStats>> schema();

  void reset() { statsReset(*this); }

  /// Accumulates another worker's counters (batch join).
  void merge(const StorageStats &O) { statsMerge(*this, O); }

  /// Publishes every counter into \p R under its "storage.*" schema name.
  void exportTo(MetricsRegistry &R) const { statsExport(*this, R); }
};

/// Interprets an EvaluationPlan under a StorageAssignment.
class StorageEvaluator {
public:
  StorageEvaluator(const EvaluationPlan &Plan, const StorageAssignment &SA)
      : Plan(Plan), SA(SA) {}

  void setRootInherited(AttrId A, Value V);

  /// When set, every attribute write is mirrored into the tree slots so
  /// tests can compare against the reference evaluator.
  void setMirrorToTree(bool On) { MirrorToTree = On; }

  bool evaluate(Tree &T, DiagnosticEngine &Diags);

  const StorageStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

private:
  struct StackGroup {
    std::vector<Value> Cells;
    std::vector<uint8_t> Dead;
  };
  /// A cell yet to die at some LEAVE: stack group + index (or ~0u for the
  /// degenerate case of tree/var storage, which has no death).
  struct PendingDeath {
    unsigned Group;
    unsigned Index;
  };

  bool runVisit(TreeNode *N, unsigned VisitNo, DiagnosticEngine &Diags);
  bool execRule(TreeNode *N, RuleId R, std::vector<PendingDeath> &Deaths,
                DiagnosticEngine &Diags);
  const Value *readOccStored(TreeNode *N, const AttrOcc &O);
  void writeOccStored(TreeNode *N, const AttrOcc &O, Value V,
                      std::vector<PendingDeath> &Deaths);
  void noteLiveCells();
  void shrinkDeadSuffix(StackGroup &G);

  /// Per-node cell indices for stack-resident attributes and locals.
  std::unordered_map<const TreeNode *, std::vector<int64_t>> AttrCell;
  std::unordered_map<const TreeNode *, std::vector<int64_t>> LocalCell;

  const EvaluationPlan &Plan;
  const StorageAssignment &SA;
  StorageStats Stats;
  bool MirrorToTree = false;
  std::vector<std::pair<AttrId, Value>> RootInh;
  std::vector<Value> Vars;
  std::vector<uint8_t> VarSet;
  std::vector<StackGroup> Stacks;
  uint64_t TreeCellsLive = 0;
  uint64_t VarsLive = 0;
};

} // namespace fnc2

#endif // FNC2_STORAGE_STORAGEEVALUATOR_H
