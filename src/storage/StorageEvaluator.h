//===- storage/StorageEvaluator.h - Storage-aware interpreter ---*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A visit-sequence evaluator that executes under a StorageAssignment:
/// variable-class attributes live in global variables, stack-class ones in
/// global stacks (cells die at the LEAVE of the visit that created them —
/// the paper's delayed POPs — and dead cells below a surviving one linger
/// until the suffix clears), and only tree-class attributes occupy node
/// slots. Copy rules whose endpoints share a cell are skipped (variables)
/// or share the cell (stacks). The evaluator counts peak live cells so the
/// benches can reproduce the paper's "factor of 4 to 8" storage reduction.
///
/// The simulation records each instance's cell index at its node; real
/// FNC-2 computes below-top access depths statically, which this dynamic
/// bookkeeping generalizes while keeping reads assert-checked.
///
/// By default the evaluator runs the CompiledPlan instruction stream with a
/// CompiledStorage side table (classes and groups pre-resolved per rule and
/// argument, cell indices in flat per-node arrays instead of hash maps,
/// reusable death/mark buffers). The original hash-map interpreter is
/// retained behind setUseInterpreted() / FNC2_INTERP_FALLBACK as a
/// differential reference; both produce identical attributions and stats.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_STORAGE_STORAGEEVALUATOR_H
#define FNC2_STORAGE_STORAGEEVALUATOR_H

#include "eval/CompiledPlan.h"
#include "storage/Lifetime.h"
#include "support/Metrics.h"
#include "tree/Tree.h"

#include <unordered_map>

namespace fnc2 {

/// Dynamic storage counters. Reset/merge/export semantics are derived from
/// schema() (support/Metrics.h): every counter sums on merge except
/// PeakLiveCells, whose merge is the maximum — the largest single-tree
/// working set seen by any worker.
struct StorageStats {
  uint64_t PeakLiveCells = 0;   ///< Max simultaneous var+stack+tree cells.
  uint64_t TreeBaselineCells = 0; ///< Instances a tree-resident run stores.
  uint64_t StackPushes = 0;
  uint64_t VariableWrites = 0;
  uint64_t TreeWrites = 0;
  uint64_t CopiesSkipped = 0;
  uint64_t RulesEvaluated = 0;

  double reductionFactor() const {
    return PeakLiveCells == 0
               ? 0.0
               : double(TreeBaselineCells) / double(PeakLiveCells);
  }

  /// Names and merge kinds of every counter above.
  static std::span<const CounterField<StorageStats>> schema();

  void reset() { statsReset(*this); }

  /// Accumulates another worker's counters (batch join).
  void merge(const StorageStats &O) { statsMerge(*this, O); }

  /// Publishes every counter into \p R under its "storage.*" schema name.
  void exportTo(MetricsRegistry &R) const { statsExport(*this, R); }
};

/// Storage classes and groups resolved once per compiled rule/argument,
/// parallel to CompiledPlan::Rules and CompiledPlan::Args (the CompiledRule
/// SlotRefs already carry the site and frame slot; this adds where the
/// value *lives*). Shared read-only across batch workers like the
/// CompiledPlan itself.
struct CompiledStorage {
  struct Ref {
    StorageClass Class = StorageClass::TreeCell;
    uint32_t Group = 0;

    bool operator==(const Ref &) const = default;
  };
  struct RuleInfo {
    StorageClass Class = StorageClass::TreeCell; ///< Target's class.
    uint32_t Group = 0;                          ///< Target's group.
    bool IsCopy = false;     ///< Eliminated by grouping: cell sharing only.
    bool TargetDies = false; ///< Dies at the defining chunk's LEAVE
                             ///< (everything but LHS-synthesized results).

    bool operator==(const RuleInfo &) const = default;
  };
  std::vector<Ref> Args;       ///< Parallel to CompiledPlan::Args.
  std::vector<RuleInfo> Rules; ///< Parallel to CompiledPlan::Rules.

  CompiledStorage(const CompiledPlan &CP, const StorageAssignment &SA);

  bool operator==(const CompiledStorage &) const = default;

private:
  /// The artifact codec (fnc2/ArtifactCache.cpp) reloads the side tables
  /// from a cached artifact instead of re-deriving them.
  friend struct ArtifactCodec;
  friend struct CompiledArtifact;
  CompiledStorage() = default;
};

/// Evaluates an EvaluationPlan under a StorageAssignment.
class StorageEvaluator {
public:
  /// Compiles the plan (and its storage side table) privately.
  StorageEvaluator(const EvaluationPlan &Plan, const StorageAssignment &SA);
  /// Borrows already-compiled state (the batch engine compiles once and
  /// shares it across workers). \p Compiled / \p CompiledSA must outlive
  /// the evaluator and have been compiled from \p Plan / \p SA.
  StorageEvaluator(const EvaluationPlan &Plan, const StorageAssignment &SA,
                   const CompiledPlan &Compiled,
                   const CompiledStorage &CompiledSA);

  /// Slot-indexed by attribute id: O(1).
  void setRootInherited(AttrId A, Value V);

  /// When set, every attribute write is mirrored into the tree slots so
  /// tests can compare against the reference evaluator.
  void setMirrorToTree(bool On) { MirrorToTree = On; }

  bool evaluate(Tree &T, DiagnosticEngine &Diags);

  const StorageStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  /// Selects the interpreted hash-map walk instead of the compiled stream
  /// (both produce identical attributions, stats and traces).
  void setUseInterpreted(bool B) { UseInterp = B; }
  bool usesInterpreted() const { return UseInterp; }

private:
  struct StackGroup {
    std::vector<Value> Cells;
    std::vector<uint8_t> Dead;
  };
  /// A cell yet to die at some LEAVE: stack group + index (or ~0u for the
  /// degenerate case of tree/var storage, which has no death).
  struct PendingDeath {
    unsigned Group;
    unsigned Index;
  };

  bool installRootInherited(TreeNode *Root, DiagnosticEngine &Diags);
  void countBaseline(TreeNode *Root);

  // Compiled path.
  bool runCompiledVisit(TreeNode *N, const CompiledSeq *Seq, unsigned VisitNo,
                        DiagnosticEngine &Diags);
  bool execCompiledRule(TreeNode *N, uint32_t RI, size_t DeathBase,
                        DiagnosticEngine &Diags);
  const Value *readSlot(TreeNode *N, const SlotRef &Ref,
                        const CompiledStorage::Ref &C);
  void writeSlot(TreeNode *N, const SlotRef &Ref, StorageClass Class,
                 uint32_t Group, bool Dies, Value V);
  void mirrorWrite(TreeNode *N, const SlotRef &Ref, Value V);

  // Interpreted fallback.
  bool runVisit(TreeNode *N, unsigned VisitNo, DiagnosticEngine &Diags);
  bool execRule(TreeNode *N, RuleId R, std::vector<PendingDeath> &Deaths,
                DiagnosticEngine &Diags);
  const Value *readOccStored(TreeNode *N, const AttrOcc &O);
  void writeOccStored(TreeNode *N, const AttrOcc &O, Value V,
                      std::vector<PendingDeath> &Deaths);

  void noteLiveCells();
  void shrinkDeadSuffix(StackGroup &G);

  /// Per-node cell indices for stack-resident attributes and locals
  /// (interpreted path only; the compiled path stamps flat per-node arrays
  /// from CellIdxArena instead).
  std::unordered_map<const TreeNode *, std::vector<int64_t>> AttrCell;
  std::unordered_map<const TreeNode *, std::vector<int64_t>> LocalCell;

  const EvaluationPlan &Plan;
  const StorageAssignment &SA;
  std::unique_ptr<const CompiledPlan> OwnedCP;
  const CompiledPlan *CP;
  std::unique_ptr<const CompiledStorage> OwnedCS;
  const CompiledStorage *CS;
  StorageStats Stats;
  bool MirrorToTree = false;
  bool UseInterp;
  /// Root-inherited values indexed by AttrId.
  std::vector<Value> RootInhVals;
  std::vector<uint8_t> RootInhSet;
  std::vector<Value> Vars;
  std::vector<uint8_t> VarSet;
  std::vector<StackGroup> Stacks;
  uint64_t TreeCellsLive = 0;
  uint64_t VarsLive = 0;

  /// Reusable argument buffer; semantic functions see a span into it.
  std::vector<Value> ArgBuf;
  /// Pending deaths of every active chunk, stacked: each compiled visit
  /// records its base index on entry and truncates back at its LEAVE (the
  /// interpreted path allocates a vector per chunk instead).
  std::vector<PendingDeath> DeathBuf;
  /// Per-VISIT stack watermarks, stacked the same way (replaces the
  /// per-VISIT "Before" allocation).
  std::vector<size_t> MarkBuf;
  /// Backing store for the nodes' CellIdx arrays, sized by the baseline
  /// walk; one entry per attribute/local slot, -1 = no cell yet.
  std::vector<int64_t> CellIdxArena;
  std::vector<TreeNode *> WalkBuf;
};

} // namespace fnc2

#endif // FNC2_STORAGE_STORAGEEVALUATOR_H
