//===- storage/Lifetime.h - Attribute lifetime analysis ---------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The space-management analysis (paper section 2.2): the statically-known
/// total evaluation order of visit-sequence evaluators permits a fine static
/// analysis of every attribute instance's lifetime, which decides where the
/// instance lives:
///
///  * a single **global variable** — when no two instances of the attribute
///    are ever live simultaneously;
///  * a **global stack** — for *temporary* attributes (lifetime confined to
///    one visit of the defining production), whose instances nest LIFO; the
///    evaluator may access cells below the top at statically-determined
///    depths and delays POPs to the end of the defining visit;
///  * a **tree cell** — the last resort, for non-temporary attributes.
///
/// On top of the classification, variables and stacks are *grouped*; the
/// grouping criterion is the number of copy rules a merge eliminates
/// (storing source and target in the same cell makes the copy a no-op),
/// subject to an interference check — storing two occurrences in the same
/// variable is incorrect when both are live with different values. Optimal
/// grouping is NP-complete; we use the paper's greedy copy-count heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_STORAGE_LIFETIME_H
#define FNC2_STORAGE_LIFETIME_H

#include "visitseq/VisitSequence.h"

namespace fnc2 {

enum class StorageClass : uint8_t { Variable, Stack, TreeCell };

/// Flat storage ids: phylum attributes keep their AttrId; production locals
/// are appended after them.
class StorageIdMap {
public:
  StorageIdMap() = default;
  explicit StorageIdMap(const AttributeGrammar &AG);

  unsigned numIds() const { return NumIds; }
  unsigned idOfAttr(AttrId A) const { return A; }
  unsigned idOfLocal(ProdId P, unsigned LocalIdx) const {
    return LocalBase[P] + LocalIdx;
  }
  unsigned idOfOcc(const AttributeGrammar &AG, ProdId P,
                   const AttrOcc &O) const;
  bool isLocal(unsigned Id) const { return Id >= FirstLocal; }
  /// Human-readable name of a storage id.
  std::string name(const AttributeGrammar &AG, unsigned Id) const;

  bool operator==(const StorageIdMap &) const = default;

private:
  unsigned NumIds = 0;
  unsigned FirstLocal = 0;
  std::vector<unsigned> LocalBase;
};

/// One static lifetime interval of an attribute within a visit sequence.
struct LifetimeInterval {
  unsigned SeqIdx = 0;   ///< Index into EvaluationPlan::Seqs.
  unsigned FlatId = 0;   ///< Storage id of the attribute.
  unsigned DefPos = 0;   ///< Instruction index where the instance appears.
  unsigned EndPos = 0;   ///< Instruction index of the last use.
  RuleId DefRule = InvalidId; ///< Defining rule (InvalidId for syn returns).
  bool CrossesVisit = false;  ///< Lifetime spans a LEAVE: non-temporary.

  bool operator==(const LifetimeInterval &) const = default;
};

/// The complete storage decision for a grammar + plan.
struct StorageAssignment {
  StorageIdMap Ids;
  std::vector<StorageClass> ClassOf; ///< Indexed by flat storage id.
  std::vector<unsigned> GroupOf;     ///< Var/stack group id per flat id.
  unsigned NumVarGroups = 0;
  unsigned NumStackGroups = 0;

  /// Per flat id, every static lifetime interval (diagnostics/benches).
  std::vector<LifetimeInterval> Intervals;

  /// Copy rules eliminated by grouping (their execution becomes cell
  /// sharing / a no-op).
  std::vector<bool> CopyEliminated; ///< Indexed by RuleId.

  // Statistics for Table 1.
  unsigned NumVariableAttrs = 0; ///< Attributes classed Variable.
  unsigned NumStackAttrs = 0;    ///< Attributes classed Stack.
  unsigned NumTreeAttrs = 0;     ///< Attributes classed TreeCell.
  unsigned TotalCopyRules = 0;
  unsigned EliminatedCopyRules = 0;
  unsigned EliminableCopyRules = 0; ///< Theoretical upper bound.

  bool operator==(const StorageAssignment &) const = default;

  double pctVariables() const;
  double pctStacks() const;
  double pctTree() const;

  StorageClass classOfAttr(AttrId A) const { return ClassOf[A]; }
};

/// Runs the lifetime analysis and grouping over \p Plan.
StorageAssignment analyzeStorage(const AttributeGrammar &AG,
                                 const EvaluationPlan &Plan);

} // namespace fnc2

#endif // FNC2_STORAGE_LIFETIME_H
