//===- analysis/Classify.h - AG class determination -------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generator's test cascade (paper figure 3): SNC first (abort with a
/// trace on failure), then DNC, then OAG(k); the smallest class found is
/// what Table 1 reports per AG. Cascading costs the same as running the OAG
/// test from scratch because each phase reuses the previous phase's
/// relations.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_ANALYSIS_CLASSIFY_H
#define FNC2_ANALYSIS_CLASSIFY_H

#include "analysis/Circularity.h"
#include "analysis/Oag.h"

namespace fnc2 {

enum class AgClass : uint8_t {
  NotSNC, ///< Rejected: not strongly non-circular.
  SNC,    ///< SNC but not DNC: exhaustive evaluation via the transformation.
  DNC,    ///< DNC but not OAG(k) for the tested k.
  OAG,    ///< Ordered with repair budget UsedK.
};

/// Combined result of the cascade.
struct ClassifyResult {
  AgClass Class = AgClass::NotSNC;
  SncResult Snc;
  DncResult Dnc;
  OagResult Oag;
  bool DncRan = false;
  bool OagRan = false;

  bool operator==(const ClassifyResult &) const = default;

  /// "OAG(0)", "OAG(1)", "DNC", "SNC" or "not SNC" — the Table 1 notation.
  std::string className() const;
};

/// Runs the cascade with OAG repair budget \p OagK (the paper performs the
/// OAG(0) test by default but can be directed to test OAG(k) for any k).
/// \p Opts is threaded through all three tests: it selects the worklist
/// engine (default) or the naive reference fixpoint and tunes the gate that
/// lets large grammars run their fixpoint rounds in parallel.
ClassifyResult classifyGrammar(const AttributeGrammar &AG, unsigned OagK = 0,
                               const GfaOptions &Opts = {});

} // namespace fnc2

#endif // FNC2_ANALYSIS_CLASSIFY_H
