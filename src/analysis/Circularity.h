//===- analysis/Circularity.h - SNC / DNC / NC tests ------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The circularity tests of the evaluator generator's cascade (paper
/// section 3.1 and figure 3):
///
///  * SNC (strong / absolute non-circularity, Courcelle & Franchi-
///    Zannettacci [6]): one IO relation per phylum, closed from below; the
///    entry class of the whole system — failing it aborts generation with a
///    circularity trace.
///  * DNC (double non-circularity, File [18]): the IO relations plus OI
///    relations closed from above; required by the start-anywhere
///    (incremental) evaluators and used to speed up the transformation.
///  * Plain NC (Knuth's exponential set-of-graphs test), provided as a
///    baseline for tests and benches on small grammars.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_ANALYSIS_CIRCULARITY_H
#define FNC2_ANALYSIS_CIRCULARITY_H

#include "gfa/GrammarFlow.h"
#include "grammar/AttributeGrammar.h"

namespace fnc2 {

/// A concrete witness of a circularity: the production whose augmented
/// dependency graph is cyclic and the cycle as occurrence ids.
struct CycleWitness {
  ProdId Prod = InvalidId;
  std::vector<OccId> Cycle;

  bool empty() const { return Cycle.empty(); }
  bool operator==(const CycleWitness &) const = default;
};

/// Result of the SNC test.
struct SncResult {
  bool IsSNC = false;
  /// IO(X) for every phylum: the argument selectors closed from below.
  PhylumRelation IO;
  /// Populated when the test fails.
  CycleWitness Witness;
  /// Number of fixpoint sweeps over all productions.
  unsigned Iterations = 0;

  bool operator==(const SncResult &) const = default;
};

/// Runs the SNC test. Requires AG.buildProductionInfo() to have run.
/// \p Opts selects between the worklist engine (default) and the naive
/// reference fixpoint, and tunes the parallel-round gate.
SncResult runSncTest(const AttributeGrammar &AG, const GfaOptions &Opts = {});

/// Result of the DNC test.
struct DncResult {
  bool IsDNC = false;
  /// OI(X) for every phylum: selectors closed from above.
  PhylumRelation OI;
  CycleWitness Witness;
  unsigned Iterations = 0;

  bool operator==(const DncResult &) const = default;
};

/// Runs the DNC test on top of an SNC result (the cascade never runs DNC
/// without SNC having succeeded, matching the paper's phase ordering).
DncResult runDncTest(const AttributeGrammar &AG, const SncResult &Snc,
                     const GfaOptions &Opts = {});

/// Result of the plain (Knuth) non-circularity test.
struct NcResult {
  bool IsNC = false;
  /// True when the test hit its configured budget and gave up; IsNC is then
  /// meaningless. This test is exponential and exists as a baseline only.
  bool GaveUp = false;
  CycleWitness Witness;
  /// Total number of IO graphs materialized (the exponential blow-up axis).
  unsigned GraphCount = 0;
};

/// Runs Knuth's exact non-circularity test, materializing sets of IO graphs
/// per phylum; gives up once more than \p MaxGraphs graphs exist.
NcResult runNcTest(const AttributeGrammar &AG, unsigned MaxGraphs = 4096);

/// Renders the circularity trace for a failed test: the offending production
/// and the cycle through attribute occurrences, with induced edges (those
/// coming from IO/OI selectors rather than semantic rules) annotated. This
/// is the batch analogue of FNC-2's interactive circularity trace [39].
std::string formatCircularityTrace(const AttributeGrammar &AG,
                                   const CycleWitness &Witness,
                                   const PhylumRelation *Below,
                                   const PhylumRelation *Above);

} // namespace fnc2

#endif // FNC2_ANALYSIS_CIRCULARITY_H
