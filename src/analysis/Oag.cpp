//===- analysis/Oag.cpp ---------------------------------------------------===//

#include "analysis/Oag.h"

#include "gfa/FixpointEngine.h"
#include "support/Trace.h"

using namespace fnc2;

/// Computes the IDS fixpoint: the symbol relation is pasted at *every*
/// position (Kastens closes from below and above simultaneously). Returns
/// false (with a witness) if some induced production graph is cyclic. The
/// projections never add diagonal bits, so even a cyclic IDS converges;
/// both formulations run to the fixpoint and then pick the first cyclic
/// production in ProdId order, making the witness independent of the
/// iteration strategy.
static bool computeIds(const AttributeGrammar &AG, const GfaOptions &Opts,
                       PhylumRelation &IDS, CycleWitness &Witness,
                       unsigned &Iterations) {
  AugmentOptions Paste;
  Paste.Below = &IDS;
  Paste.BelowOnLhs = &IDS;

  if (Opts.NaiveFixpoint) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++Iterations;
      FNC2_COUNT("oag.ids_iterations", 1);
      for (ProdId P = 0; P != AG.numProds(); ++P) {
        Digraph G = buildAugmentedGraph(AG, P, Paste);
        BitMatrix Closure = closureOf(G);
        Changed |= projectOntoSymbol(AG, P, 0, Closure, IDS);
        for (unsigned C = 0; C != AG.prod(P).arity(); ++C)
          Changed |= projectOntoSymbol(AG, P, C + 1, Closure, IDS);
      }
    }
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      Digraph G = buildAugmentedGraph(AG, P, Paste);
      std::vector<unsigned> Cycle = G.findCycle();
      if (!Cycle.empty()) {
        Witness.Prod = P;
        Witness.Cycle = std::move(Cycle);
        return false;
      }
    }
    return true;
  }

  GfaFixpoint Engine(AG, Opts);
  Iterations += Engine.run(Paste, GfaProject::All, IDS);
  if (ProdId Bad = Engine.firstCyclicProd(); Bad != InvalidId) {
    Witness.Prod = Bad;
    Witness.Cycle = buildAugmentedGraph(AG, Bad, Paste).findCycle();
    return false;
  }
  return true;
}

/// Builds the completed production graph EDP(p): DP(p) plus the partition
/// order edges at every symbol occurrence.
static Digraph buildEdp(const AttributeGrammar &AG, ProdId P,
                        const std::vector<TotallyOrderedPartition> &Parts) {
  const Production &Pr = AG.prod(P);
  const ProductionInfo &PI = AG.info(P);
  Digraph G(PI.numOccs());
  G.unionEdges(PI.DepGraph);
  auto paste = [&](PhylumId Phy, unsigned Pos) {
    if (AG.phylum(Phy).Attrs.empty())
      return;
    Parts[Phy].addOrderEdges(G, PI.posBase(Pos));
  };
  paste(Pr.Lhs, 0);
  for (unsigned C = 0; C != Pr.arity(); ++C)
    paste(Pr.Rhs[C], C + 1);
  return G;
}

OagResult fnc2::runOagTest(const AttributeGrammar &AG, unsigned K,
                           const GfaOptions &Opts) {
  FNC2_SPAN("oag.test");
  OagResult R;
  R.IDS = PhylumRelation(AG);

  if (!computeIds(AG, Opts, R.IDS, R.Witness, R.Iterations))
    return R;

  // Extra order constraints accumulated by repair rounds; merged into the
  // relation the partitions are peeled from.
  PhylumRelation Extra(AG);

  for (unsigned Round = 0; Round <= K; ++Round) {
    FNC2_COUNT("oag.rounds", 1);
    // Peel one partition per phylum from IDS + Extra.
    PhylumRelation DS = R.IDS;
    bool DsOk = true;
    for (PhylumId X = 0; X != AG.numPhyla(); ++X)
      DS[X].orInPlace(Extra[X]);

    R.Partitions.clear();
    R.Partitions.resize(AG.numPhyla());
    for (PhylumId X = 0; X != AG.numPhyla(); ++X) {
      auto Part = TotallyOrderedPartition::fromRelation(AG, X, DS[X]);
      if (!Part) {
        DsOk = false;
        break;
      }
      R.Partitions[X] = std::move(*Part);
    }
    if (!DsOk)
      return R; // repairs made the symbol relation itself cyclic: reject

    // Check all completed graphs; on the first cycle, harvest exactly one
    // repair constraint. Repairing one conflict per round keeps the process
    // incremental: an aggressive harvest of every conflicting edge can
    // demand both orientations of the same pair at once and reject grammars
    // a single split would have fixed.
    bool AllAcyclic = true;
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      Digraph Edp = buildEdp(AG, P, R.Partitions);
      std::vector<unsigned> Cycle = Edp.findCycle();
      if (Cycle.empty())
        continue;
      AllAcyclic = false;
      R.Witness.Prod = P;
      R.Witness.Cycle = Cycle;
      if (Round == K)
        return R; // budget exhausted

      // Find the first partition-order edge on the cycle (both endpoints on
      // the same symbol occurrence, not a semantic-rule edge) and demand the
      // opposite order next round.
      const ProductionInfo &PI = AG.info(P);
      const Production &Pr = AG.prod(P);
      bool Repaired = false;
      for (size_t I = 0; I != Cycle.size() && !Repaired; ++I) {
        OccId From = Cycle[I];
        OccId To = Cycle[(I + 1) % Cycle.size()];
        const AttrOcc &FO = PI.Occs[From];
        const AttrOcc &TO = PI.Occs[To];
        if (!FO.isOnSymbol() || !TO.isOnSymbol() || FO.Pos != TO.Pos)
          continue;
        if (PI.DepGraph.hasEdge(From, To))
          continue;
        PhylumId X = FO.Pos == 0 ? Pr.Lhs : Pr.Rhs[FO.Pos - 1];
        unsigned A = AG.attr(FO.Attr).IndexInOwner;
        unsigned B = AG.attr(TO.Attr).IndexInOwner;
        // The partition said A before B and the cycle contradicts it; ask
        // for B before A instead.
        Extra[X].set(B, A);
        Repaired = true;
      }
      if (!Repaired)
        return R; // the cycle has no artificial edge: nothing to repair
      break;      // one repair per round
    }
    if (AllAcyclic) {
      R.IsOAG = true;
      R.UsedK = Round;
      R.Witness = CycleWitness();
      return R;
    }
  }
  return R;
}
