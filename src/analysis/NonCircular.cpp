//===- analysis/NonCircular.cpp - Knuth's exact NC test -------------------===//
//
// The exponential set-of-graphs non-circularity test, kept as a baseline:
// it demonstrates why FNC-2 uses the polynomial SNC approximation instead
// (paper section 2.1.1 and the covering work of Lorho & Pair [37]).
//
//===----------------------------------------------------------------------===//

#include "analysis/Circularity.h"

#include <algorithm>

using namespace fnc2;

namespace {

/// The set of realizable IO graphs of one phylum, deduplicated.
struct GraphSet {
  std::vector<BitMatrix> Graphs;

  bool insert(const BitMatrix &M) {
    if (std::find(Graphs.begin(), Graphs.end(), M) != Graphs.end())
      return false;
    Graphs.push_back(M);
    return true;
  }
};

} // namespace

NcResult fnc2::runNcTest(const AttributeGrammar &AG, unsigned MaxGraphs) {
  NcResult R;
  std::vector<GraphSet> Sets(AG.numPhyla());

  auto totalGraphs = [&] {
    unsigned N = 0;
    for (const GraphSet &S : Sets)
      N += static_cast<unsigned>(S.Graphs.size());
    return N;
  };

  // For each production, enumerate every combination of one realizable IO
  // graph per RHS child, close DP(p) with the combination, and project a
  // fresh IO graph for the LHS. A cycle in any realizable combination means
  // the grammar is circular.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      const Production &Pr = AG.prod(P);
      unsigned Arity = Pr.arity();

      // Choice indices per child; children whose set is still empty get the
      // empty graph as their single choice (realizable via not-yet-seen
      // subtrees is pessimistically approximated from below: the fixpoint
      // grows sets monotonically so this converges to the exact result).
      std::vector<unsigned> Choice(Arity, 0);
      auto childGraphCount = [&](unsigned C) -> unsigned {
        return std::max<size_t>(1, Sets[Pr.Rhs[C]].Graphs.size());
      };

      while (true) {
        // Build augmented graph for this combination.
        const ProductionInfo &PI = AG.info(P);
        Digraph G(PI.numOccs());
        G.unionEdges(PI.DepGraph);
        for (unsigned C = 0; C != Arity; ++C) {
          const GraphSet &S = Sets[Pr.Rhs[C]];
          if (S.Graphs.empty())
            continue;
          const BitMatrix &M = S.Graphs[Choice[C]];
          unsigned N = static_cast<unsigned>(AG.phylum(Pr.Rhs[C]).Attrs.size());
          if (N != 0) {
            OccId Base =
                PI.occId(AttrOcc::onSymbol(C + 1,
                                           AG.phylum(Pr.Rhs[C]).Attrs.front()));
            for (unsigned A = 0; A != N; ++A)
              for (unsigned B = 0; B != N; ++B)
                if (M.test(A, B))
                  G.addEdge(Base + A, Base + B);
          }
        }

        std::vector<unsigned> Cycle = G.findCycle();
        if (!Cycle.empty()) {
          R.IsNC = false;
          R.Witness.Prod = P;
          R.Witness.Cycle = std::move(Cycle);
          R.GraphCount = totalGraphs();
          return R;
        }

        // Project the LHS IO graph of this combination.
        BitMatrix Closure = closureOf(G);
        unsigned NL = static_cast<unsigned>(AG.phylum(Pr.Lhs).Attrs.size());
        BitMatrix LhsIO(NL, NL);
        if (NL != 0) {
          OccId Base =
              PI.occId(AttrOcc::onSymbol(0, AG.phylum(Pr.Lhs).Attrs.front()));
          for (unsigned A = 0; A != NL; ++A)
            for (unsigned B = 0; B != NL; ++B)
              if (A != B && Closure.test(Base + A, Base + B))
                LhsIO.set(A, B);
        }
        Changed |= Sets[Pr.Lhs].insert(LhsIO);

        if (totalGraphs() > MaxGraphs) {
          R.GaveUp = true;
          R.GraphCount = totalGraphs();
          return R;
        }

        // Advance the combination odometer.
        unsigned C = 0;
        for (; C != Arity; ++C) {
          if (++Choice[C] < childGraphCount(C))
            break;
          Choice[C] = 0;
        }
        if (C == Arity)
          break;
      }
    }
  }

  R.IsNC = true;
  R.GraphCount = totalGraphs();
  return R;
}

std::string fnc2::formatCircularityTrace(const AttributeGrammar &AG,
                                         const CycleWitness &Witness,
                                         const PhylumRelation *Below,
                                         const PhylumRelation *Above) {
  if (Witness.empty())
    return "no circularity witness\n";
  const ProdId P = Witness.Prod;
  const Production &Pr = AG.prod(P);
  const ProductionInfo &PI = AG.info(P);

  std::string Out;
  Out += "circularity in operator '" + Pr.Name + "' (" +
         AG.phylum(Pr.Lhs).Name + " ->";
  for (PhylumId C : Pr.Rhs)
    Out += " " + AG.phylum(C).Name;
  Out += "):\n";

  auto edgeOrigin = [&](OccId From, OccId To) -> std::string {
    if (PI.DepGraph.hasEdge(From, To)) {
      RuleId R = PI.DefiningRule[To];
      if (R != InvalidId)
        return "semantic rule '" + AG.rule(R).FnName + "'";
      return "semantic rule";
    }
    const AttrOcc &FromOcc = PI.Occs[From];
    const AttrOcc &ToOcc = PI.Occs[To];
    if (FromOcc.isOnSymbol() && ToOcc.isOnSymbol() &&
        FromOcc.Pos == ToOcc.Pos) {
      if (FromOcc.Pos == 0 && Above)
        return "induced from above (OI selector)";
      if (FromOcc.Pos != 0 && Below)
        return "induced from below (IO selector)";
    }
    return "induced dependency";
  };

  for (size_t I = 0; I != Witness.Cycle.size(); ++I) {
    OccId From = Witness.Cycle[I];
    OccId To = Witness.Cycle[(I + 1) % Witness.Cycle.size()];
    Out += "  " + AG.occName(P, PI.Occs[From]) + " -> " +
           AG.occName(P, PI.Occs[To]) + "   [" + edgeOrigin(From, To) + "]\n";
  }
  return Out;
}
