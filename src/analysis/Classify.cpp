//===- analysis/Classify.cpp ----------------------------------------------===//

#include "analysis/Classify.h"

#include "support/Trace.h"

using namespace fnc2;

std::string ClassifyResult::className() const {
  switch (Class) {
  case AgClass::NotSNC:
    return "not SNC";
  case AgClass::SNC:
    return "SNC";
  case AgClass::DNC:
    return "DNC";
  case AgClass::OAG:
    return "OAG(" + std::to_string(Oag.UsedK) + ")";
  }
  return "?";
}

ClassifyResult fnc2::classifyGrammar(const AttributeGrammar &AG, unsigned OagK,
                                     const GfaOptions &Opts) {
  ClassifyResult R;
  {
    FNC2_SPAN("classify.snc");
    R.Snc = runSncTest(AG, Opts);
  }
  if (!R.Snc.IsSNC) {
    R.Class = AgClass::NotSNC;
    return R;
  }
  R.Class = AgClass::SNC;

  {
    FNC2_SPAN("classify.dnc");
    R.Dnc = runDncTest(AG, R.Snc, Opts);
  }
  R.DncRan = true;
  if (!R.Dnc.IsDNC)
    return R;
  R.Class = AgClass::DNC;

  {
    FNC2_SPAN("classify.oag");
    R.Oag = runOagTest(AG, OagK, Opts);
  }
  R.OagRan = true;
  if (R.Oag.IsOAG)
    R.Class = AgClass::OAG;
  return R;
}
