//===- analysis/Oag.h - Kastens' ordered AG test ----------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OAG(k) test. OAG(0) is Kastens' original ordered-AG test [29]: compute
/// induced symbol dependencies (IDS) by a fixpoint over induced production
/// graphs (IDP), peel one totally-ordered partition per phylum, complete the
/// production graphs with the partition orders (EDP) and require acyclicity.
///
/// The OAG(k) hierarchy follows Barbar [3] in spirit: there is an infinity of
/// incomparable OAG(k) classes refining how partition conflicts are resolved.
/// Barbar's report being unobtainable, our OAG(k) runs up to k *repair
/// rounds*: each round extracts partition-order edges participating in EDP
/// cycles, asserts the opposite order into the symbol dependencies, and
/// re-peels. Soundness is unconditional — acceptance always requires every
/// completed graph to be acyclic — and OAG(0) is exactly Kastens' class.
/// (See DESIGN.md, "Substitutions".)
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_ANALYSIS_OAG_H
#define FNC2_ANALYSIS_OAG_H

#include "analysis/Circularity.h"
#include "ordered/Partition.h"

namespace fnc2 {

/// Result of the OAG(k) test.
struct OagResult {
  bool IsOAG = false;
  /// The smallest repair budget 0 <= UsedK <= k that succeeded.
  unsigned UsedK = 0;
  /// Induced dependencies between the attributes of each symbol.
  PhylumRelation IDS;
  /// One totally-ordered partition per phylum (valid when IsOAG).
  std::vector<TotallyOrderedPartition> Partitions;
  /// When the test fails: the production whose completed graph is cyclic,
  /// or the phylum whose dependencies could not be peeled.
  CycleWitness Witness;
  unsigned Iterations = 0;

  bool operator==(const OagResult &) const = default;
};

/// Runs the OAG(k) test with repair budget \p K (default: the paper's
/// default OAG(0)). Requires AG.buildProductionInfo() to have run.
/// \p Opts selects the IDS fixpoint formulation (worklist engine vs naive
/// reference) and tunes the parallel-round gate.
OagResult runOagTest(const AttributeGrammar &AG, unsigned K = 0,
                     const GfaOptions &Opts = {});

} // namespace fnc2

#endif // FNC2_ANALYSIS_OAG_H
