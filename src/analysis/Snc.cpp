//===- analysis/Snc.cpp - Strong non-circularity test ---------------------===//

#include "analysis/Circularity.h"

#include "support/Trace.h"

using namespace fnc2;

SncResult fnc2::runSncTest(const AttributeGrammar &AG) {
  FNC2_SPAN("snc.test");
  SncResult R;
  R.IO = PhylumRelation(AG);

  // Fixpoint: IO(lhs(p)) absorbs the projection of the closed augmented
  // graph DP(p) + IO(children).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Iterations;
    FNC2_COUNT("snc.iterations", 1);
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      AugmentOptions Opts;
      Opts.Below = &R.IO;
      Digraph G = buildAugmentedGraph(AG, P, Opts);
      BitMatrix Closure = closureOf(G);
      Changed |= projectOntoSymbol(AG, P, 0, Closure, R.IO);
    }
  }

  // The grammar is SNC iff every augmented graph is acyclic.
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    AugmentOptions Opts;
    Opts.Below = &R.IO;
    Digraph G = buildAugmentedGraph(AG, P, Opts);
    std::vector<unsigned> Cycle = G.findCycle();
    if (!Cycle.empty()) {
      R.IsSNC = false;
      R.Witness.Prod = P;
      R.Witness.Cycle = std::move(Cycle);
      return R;
    }
  }
  R.IsSNC = true;
  return R;
}

DncResult fnc2::runDncTest(const AttributeGrammar &AG, const SncResult &Snc) {
  FNC2_SPAN("dnc.test");
  DncResult R;
  R.OI = PhylumRelation(AG);
  assert(Snc.IsSNC && "DNC test runs only after a successful SNC test");

  // Fixpoint: OI(child) absorbs the projection of the closed graph
  // DP(p) + IO(children) + OI(lhs) onto that child occurrence.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++R.Iterations;
    FNC2_COUNT("dnc.iterations", 1);
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      AugmentOptions Opts;
      Opts.Below = &Snc.IO;
      Opts.Above = &R.OI;
      Digraph G = buildAugmentedGraph(AG, P, Opts);
      BitMatrix Closure = closureOf(G);
      for (unsigned C = 0; C != AG.prod(P).arity(); ++C)
        Changed |= projectOntoSymbol(AG, P, C + 1, Closure, R.OI);
    }
  }

  // DNC iff every doubly-augmented graph DP(p) + IO(children) + OI(lhs)
  // is acyclic: the selectors are consistent when closed from below and
  // from above, which is what start-anywhere (incremental) evaluation
  // needs. OI is not pasted onto the children here — that would re-inject
  // paths through p's own context and reject realizable grammars (a node
  // has exactly one context).
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    AugmentOptions Opts;
    Opts.Below = &Snc.IO;
    Opts.Above = &R.OI;
    Digraph G = buildAugmentedGraph(AG, P, Opts);
    std::vector<unsigned> Cycle = G.findCycle();
    if (!Cycle.empty()) {
      R.IsDNC = false;
      R.Witness.Prod = P;
      R.Witness.Cycle = std::move(Cycle);
      return R;
    }
  }
  R.IsDNC = true;
  return R;
}
