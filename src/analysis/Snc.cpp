//===- analysis/Snc.cpp - Strong non-circularity test ---------------------===//
//
// Both tests come in two formulations. The default is the worklist engine
// of gfa/FixpointEngine.h: per-production dirty bits, word-parallel paste
// and projection, incrementally re-closed cached closures, and the final
// acyclicity check read straight off those caches (an augmented graph is
// rebuilt only to extract the cycle witness of a failing production). The
// NaiveFixpoint option keeps the textbook formulation — global re-sweeps
// over every production, heap-allocated augmented Digraphs, full Warshall
// closures, a second graph build for the acyclicity check — as the
// reference side of the differential tests and benches.
//
//===----------------------------------------------------------------------===//

#include "analysis/Circularity.h"

#include "gfa/FixpointEngine.h"
#include "support/Trace.h"

using namespace fnc2;

SncResult fnc2::runSncTest(const AttributeGrammar &AG,
                           const GfaOptions &Opts) {
  FNC2_SPAN("snc.test");
  SncResult R;
  R.IO = PhylumRelation(AG);
  AugmentOptions Paste;
  Paste.Below = &R.IO;

  if (Opts.NaiveFixpoint) {
    // Fixpoint: IO(lhs(p)) absorbs the projection of the closed augmented
    // graph DP(p) + IO(children).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++R.Iterations;
      FNC2_COUNT("snc.iterations", 1);
      for (ProdId P = 0; P != AG.numProds(); ++P) {
        Digraph G = buildAugmentedGraph(AG, P, Paste);
        BitMatrix Closure = closureOf(G);
        Changed |= projectOntoSymbol(AG, P, 0, Closure, R.IO);
      }
    }

    // The grammar is SNC iff every augmented graph is acyclic.
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      Digraph G = buildAugmentedGraph(AG, P, Paste);
      std::vector<unsigned> Cycle = G.findCycle();
      if (!Cycle.empty()) {
        R.IsSNC = false;
        R.Witness.Prod = P;
        R.Witness.Cycle = std::move(Cycle);
        return R;
      }
    }
    R.IsSNC = true;
    return R;
  }

  GfaFixpoint Engine(AG, Opts);
  R.Iterations = Engine.run(Paste, GfaProject::Lhs, R.IO);
  if (ProdId Bad = Engine.firstCyclicProd(); Bad != InvalidId) {
    R.IsSNC = false;
    R.Witness.Prod = Bad;
    R.Witness.Cycle = buildAugmentedGraph(AG, Bad, Paste).findCycle();
    return R;
  }
  R.IsSNC = true;
  return R;
}

DncResult fnc2::runDncTest(const AttributeGrammar &AG, const SncResult &Snc,
                           const GfaOptions &Opts) {
  FNC2_SPAN("dnc.test");
  DncResult R;
  R.OI = PhylumRelation(AG);
  assert(Snc.IsSNC && "DNC test runs only after a successful SNC test");
  // The augmented graph is DP(p) + IO(children) + OI(lhs); projecting onto
  // the children closes OI from above. OI is not pasted onto the children —
  // that would re-inject paths through p's own context and reject
  // realizable grammars (a node has exactly one context).
  AugmentOptions Paste;
  Paste.Below = &Snc.IO;
  Paste.Above = &R.OI;

  if (Opts.NaiveFixpoint) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++R.Iterations;
      FNC2_COUNT("dnc.iterations", 1);
      for (ProdId P = 0; P != AG.numProds(); ++P) {
        Digraph G = buildAugmentedGraph(AG, P, Paste);
        BitMatrix Closure = closureOf(G);
        for (unsigned C = 0; C != AG.prod(P).arity(); ++C)
          Changed |= projectOntoSymbol(AG, P, C + 1, Closure, R.OI);
      }
    }

    // DNC iff every doubly-augmented graph is acyclic: the selectors are
    // consistent when closed from below and from above, which is what
    // start-anywhere (incremental) evaluation needs.
    for (ProdId P = 0; P != AG.numProds(); ++P) {
      Digraph G = buildAugmentedGraph(AG, P, Paste);
      std::vector<unsigned> Cycle = G.findCycle();
      if (!Cycle.empty()) {
        R.IsDNC = false;
        R.Witness.Prod = P;
        R.Witness.Cycle = std::move(Cycle);
        return R;
      }
    }
    R.IsDNC = true;
    return R;
  }

  GfaFixpoint Engine(AG, Opts);
  R.Iterations = Engine.run(Paste, GfaProject::Children, R.OI);
  if (ProdId Bad = Engine.firstCyclicProd(); Bad != InvalidId) {
    R.IsDNC = false;
    R.Witness.Prod = Bad;
    R.Witness.Cycle = buildAugmentedGraph(AG, Bad, Paste).findCycle();
    return R;
  }
  R.IsDNC = true;
  return R;
}
