//===- incremental/EditLog.cpp --------------------------------------------===//

#include "incremental/EditLog.h"

#include "fnc2/ArtifactCache.h"
#include "serialize/ArtifactFile.h"

#include <algorithm>

using namespace fnc2;
using serialize::ByteReader;
using serialize::ByteWriter;

//===----------------------------------------------------------------------===//
// Value codec
//===----------------------------------------------------------------------===//

void fnc2::encodeValue(ByteWriter &W, const Value &V) {
  W.u8(static_cast<uint8_t>(V.kind()));
  switch (V.kind()) {
  case Value::Kind::Unit:
    break;
  case Value::Kind::Int:
    W.u64(static_cast<uint64_t>(V.asInt()));
    break;
  case Value::Kind::Bool:
    W.boolean(V.asBool());
    break;
  case Value::Kind::Str:
    W.str(V.asString());
    break;
  case Value::Kind::List: {
    const std::vector<Value> &L = V.asList();
    W.u32(static_cast<uint32_t>(L.size()));
    for (const Value &E : L)
      encodeValue(W, E);
    break;
  }
  case Value::Kind::Map: {
    // Visible bindings only, most recent first: shadowed entries are
    // unobservable through equality/lookup, so dropping them keeps the
    // encoding canonical (live and resumed sessions emit identical bytes).
    std::vector<std::pair<std::string, Value>> Entries = V.mapEntries();
    W.u32(static_cast<uint32_t>(Entries.size()));
    for (const auto &[Key, Bound] : Entries) {
      W.str(Key);
      encodeValue(W, Bound);
    }
    break;
  }
  }
}

namespace {

Value decodeValueDepth(ByteReader &R, unsigned Depth) {
  if (Depth > 64) {
    R.fail("value nesting too deep");
    return Value();
  }
  uint8_t K = R.u8();
  switch (K) {
  case static_cast<uint8_t>(Value::Kind::Unit):
    return Value::unit();
  case static_cast<uint8_t>(Value::Kind::Int):
    return Value::ofInt(static_cast<int64_t>(R.u64()));
  case static_cast<uint8_t>(Value::Kind::Bool):
    return Value::ofBool(R.boolean());
  case static_cast<uint8_t>(Value::Kind::Str):
    return Value::ofString(R.str());
  case static_cast<uint8_t>(Value::Kind::List): {
    uint32_t N = R.count(1);
    std::vector<Value> Elems;
    Elems.reserve(N);
    for (uint32_t I = 0; I != N && R.ok(); ++I)
      Elems.push_back(decodeValueDepth(R, Depth + 1));
    return R.ok() ? Value::ofList(std::move(Elems)) : Value();
  }
  case static_cast<uint8_t>(Value::Kind::Map): {
    uint32_t N = R.count(5); // key length prefix + kind byte at minimum
    std::vector<std::pair<std::string, Value>> Entries;
    Entries.reserve(N);
    for (uint32_t I = 0; I != N && R.ok(); ++I) {
      std::string Key = R.str();
      Entries.emplace_back(std::move(Key), decodeValueDepth(R, Depth + 1));
    }
    if (!R.ok())
      return Value();
    // Entries are most-recent-first; rebuilding oldest-first restores the
    // visible order.
    Value M = Value::emptyMap();
    for (size_t I = Entries.size(); I != 0; --I)
      M = M.mapInsert(Entries[I - 1].first, std::move(Entries[I - 1].second));
    return M;
  }
  default:
    R.fail("value kind byte out of range");
    return Value();
  }
}

} // namespace

Value fnc2::decodeValue(ByteReader &R) { return decodeValueDepth(R, 0); }

//===----------------------------------------------------------------------===//
// Subtree codec and paths
//===----------------------------------------------------------------------===//

namespace {

unsigned subtreeCount(const TreeNode *N) {
  unsigned Count = 0;
  std::vector<const TreeNode *> Stack = {N};
  while (!Stack.empty()) {
    const TreeNode *X = Stack.back();
    Stack.pop_back();
    ++Count;
    for (const std::unique_ptr<TreeNode> &C : X->Children)
      Stack.push_back(C.get());
  }
  return Count;
}

} // namespace

void fnc2::encodeSubtree(ByteWriter &W, const AttributeGrammar &AG,
                         const TreeNode *N) {
  W.u32(subtreeCount(N));
  // Postorder with an explicit stack: deep list-shaped trees must not
  // recurse.
  std::vector<std::pair<const TreeNode *, unsigned>> Stack;
  Stack.emplace_back(N, 0u);
  while (!Stack.empty()) {
    auto &[Node, NextChild] = Stack.back();
    if (NextChild < Node->arity()) {
      const TreeNode *C = Node->child(NextChild++);
      Stack.emplace_back(C, 0u);
      continue;
    }
    W.u32(Node->Prod);
    if (AG.prod(Node->Prod).HasLexeme)
      encodeValue(W, Node->Lexeme);
    Stack.pop_back();
  }
}

std::unique_ptr<TreeNode> fnc2::decodeSubtree(ByteReader &R, Tree &T) {
  const AttributeGrammar &AG = T.grammar();
  uint32_t Count = R.count(4);
  if (!R.ok())
    return nullptr;
  if (Count == 0) {
    R.fail("subtree: empty node count");
    return nullptr;
  }
  std::vector<std::unique_ptr<TreeNode>> Stack;
  for (uint32_t I = 0; I != Count; ++I) {
    uint32_t P = R.u32();
    if (!R.ok())
      return nullptr;
    if (P >= AG.numProds()) {
      R.fail("subtree: production id out of range");
      return nullptr;
    }
    const Production &Prod = AG.prod(P);
    Value Lexeme;
    if (Prod.HasLexeme) {
      Lexeme = decodeValue(R);
      if (!R.ok())
        return nullptr;
      if (Prod.StringLexeme ? !Lexeme.isString() : !Lexeme.isInt()) {
        R.fail("subtree: lexeme shape mismatch for '" + Prod.Name + "'");
        return nullptr;
      }
    }
    const unsigned Arity = Prod.arity();
    if (Stack.size() < Arity) {
      R.fail("subtree: postorder child underflow at '" + Prod.Name + "'");
      return nullptr;
    }
    for (unsigned C = 0; C != Arity; ++C)
      if (AG.prod(Stack[Stack.size() - Arity + C]->Prod).Lhs != Prod.Rhs[C]) {
        R.fail("subtree: child phylum mismatch under '" + Prod.Name + "'");
        return nullptr;
      }
    std::vector<std::unique_ptr<TreeNode>> Kids;
    Kids.reserve(Arity);
    for (unsigned C = 0; C != Arity; ++C)
      Kids.push_back(std::move(Stack[Stack.size() - Arity + C]));
    Stack.resize(Stack.size() - Arity);
    Stack.push_back(T.make(P, std::move(Kids), std::move(Lexeme)));
  }
  if (Stack.size() != 1) {
    R.fail("subtree: postorder leaves " + std::to_string(Stack.size()) +
           " roots");
    return nullptr;
  }
  return std::move(Stack.back());
}

std::vector<uint32_t> fnc2::pathTo(const TreeNode *N) {
  std::vector<uint32_t> Path;
  for (; N->Parent; N = N->Parent)
    Path.push_back(N->IndexInParent);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

TreeNode *fnc2::resolvePath(const Tree &T, std::span<const uint32_t> Path) {
  TreeNode *N = T.root();
  for (uint32_t Step : Path) {
    if (!N || Step >= N->arity())
      return nullptr;
    N = N->child(Step);
  }
  return N;
}

bool fnc2::swapCompatible(const AttributeGrammar &AG, ProdId A, ProdId B) {
  if (A == B || A >= AG.numProds() || B >= AG.numProds())
    return false;
  const Production &PA = AG.prod(A);
  const Production &PB = AG.prod(B);
  return PA.Lhs == PB.Lhs && PA.Rhs == PB.Rhs &&
         PA.HasLexeme == PB.HasLexeme && PA.StringLexeme == PB.StringLexeme;
}

//===----------------------------------------------------------------------===//
// EditLog
//===----------------------------------------------------------------------===//

EditOp EditLog::makeReplace(const AttributeGrammar &AG, const TreeNode *Victim,
                            const TreeNode *Replacement) {
  EditOp Op;
  Op.K = EditOp::Kind::SubtreeReplace;
  Op.Path = pathTo(Victim);
  ByteWriter W;
  encodeSubtree(W, AG, Replacement);
  Op.Subtree = W.take();
  return Op;
}

EditOp EditLog::makeLeafChange(const TreeNode *Victim, Value NewLexeme) {
  EditOp Op;
  Op.K = EditOp::Kind::LeafValueChange;
  Op.Path = pathTo(Victim);
  Op.NewLexeme = std::move(NewLexeme);
  return Op;
}

EditOp EditLog::makeSwap(const TreeNode *Victim, ProdId NewProd) {
  EditOp Op;
  Op.K = EditOp::Kind::ProductionSwap;
  Op.Path = pathTo(Victim);
  Op.NewProd = NewProd;
  return Op;
}

namespace {

/// Rebuilds \p Old under \p NewProd without any evaluator bookkeeping (the
/// structural twin of IncrementalEvaluator::swapProduction).
void structuralSwap(Tree &T, TreeNode *Old, ProdId NewProd) {
  std::vector<std::unique_ptr<TreeNode>> Kids = std::move(Old->Children);
  Old->Children.clear();
  std::unique_ptr<TreeNode> New = T.make(NewProd, std::move(Kids), Old->Lexeme);
  T.replaceSubtree(Old, std::move(New));
}

} // namespace

bool EditLog::apply(size_t I, Tree &T, IncrementalEvaluator *IE,
                    DiagnosticEngine &Diags) const {
  const AttributeGrammar &AG = T.grammar();
  const EditOp &Op = Ops[I];
  auto Fail = [&](const std::string &Why) {
    Diags.error("edit " + std::to_string(I) + ": " + Why);
    return false;
  };
  TreeNode *Victim = resolvePath(T, Op.Path);
  if (!Victim)
    return Fail("path does not resolve in the current tree");

  switch (Op.K) {
  case EditOp::Kind::SubtreeReplace: {
    ByteReader R(Op.Subtree);
    std::unique_ptr<TreeNode> New = decodeSubtree(R, T);
    if (!New || R.remaining() != 0)
      return Fail(R.ok() ? "malformed replacement subtree" : R.error());
    if (AG.prod(New->Prod).Lhs != AG.prod(Victim->Prod).Lhs)
      return Fail("replacement changes the phylum");
    if (IE)
      IE->replaceSubtree(T, Victim, std::move(New));
    else
      T.replaceSubtree(Victim, std::move(New));
    return true;
  }
  case EditOp::Kind::LeafValueChange: {
    const Production &P = AG.prod(Victim->Prod);
    if (!P.HasLexeme)
      return Fail("leaf value change at '" + P.Name + "', which has no lexeme");
    if (P.StringLexeme ? !Op.NewLexeme.isString() : !Op.NewLexeme.isInt())
      return Fail("lexeme shape mismatch for '" + P.Name + "'");
    if (IE)
      IE->changeLeafValue(T, Victim, Op.NewLexeme);
    else
      Victim->Lexeme = Op.NewLexeme;
    return true;
  }
  case EditOp::Kind::ProductionSwap: {
    if (!swapCompatible(AG, Victim->Prod, Op.NewProd))
      return Fail("incompatible production swap at '" +
                  AG.prod(Victim->Prod).Name + "'");
    if (IE)
      IE->swapProduction(T, Victim, Op.NewProd);
    else
      structuralSwap(T, Victim, Op.NewProd);
    return true;
  }
  }
  return Fail("unknown edit kind");
}

void EditLog::encode(ByteWriter &W) const {
  W.u32(static_cast<uint32_t>(Ops.size()));
  for (const EditOp &Op : Ops) {
    W.u8(static_cast<uint8_t>(Op.K));
    W.u32(static_cast<uint32_t>(Op.Path.size()));
    for (uint32_t Step : Op.Path)
      W.u32(Step);
    switch (Op.K) {
    case EditOp::Kind::SubtreeReplace:
      // Self-delimiting (count-prefixed postorder), so no length prefix.
      W.raw(Op.Subtree.data(), Op.Subtree.size());
      break;
    case EditOp::Kind::LeafValueChange:
      encodeValue(W, Op.NewLexeme);
      break;
    case EditOp::Kind::ProductionSwap:
      W.u32(Op.NewProd);
      break;
    }
  }
}

bool EditLog::decode(ByteReader &R, const AttributeGrammar &AG, EditLog &Out) {
  uint32_t N = R.count(2);
  std::vector<EditOp> Ops;
  Ops.reserve(N);
  Tree Scratch(AG); // replacement subtrees decode (and validate) against it
  for (uint32_t I = 0; I != N && R.ok(); ++I) {
    EditOp Op;
    uint8_t K = R.u8();
    if (!R.ok())
      break;
    if (K > static_cast<uint8_t>(EditOp::Kind::ProductionSwap)) {
      R.fail("op kind byte out of range");
      break;
    }
    Op.K = static_cast<EditOp::Kind>(K);
    uint32_t PathLen = R.count(4);
    Op.Path.reserve(PathLen);
    for (uint32_t S = 0; S != PathLen && R.ok(); ++S)
      Op.Path.push_back(R.u32());
    switch (Op.K) {
    case EditOp::Kind::SubtreeReplace: {
      // Decode for validation, then re-encode canonically: the blob is a
      // pure function of the structure, so round trips are byte-stable.
      std::unique_ptr<TreeNode> Node = decodeSubtree(R, Scratch);
      if (!Node)
        break;
      ByteWriter SW;
      encodeSubtree(SW, AG, Node.get());
      Op.Subtree = SW.take();
      break;
    }
    case EditOp::Kind::LeafValueChange:
      Op.NewLexeme = decodeValue(R);
      if (R.ok() && !Op.NewLexeme.isInt() && !Op.NewLexeme.isString())
        R.fail("lexeme value must be an integer or a string");
      break;
    case EditOp::Kind::ProductionSwap:
      Op.NewProd = R.u32();
      if (R.ok() && Op.NewProd >= AG.numProds())
        R.fail("swap production id out of range");
      break;
    }
    Ops.push_back(std::move(Op));
  }
  if (!R.ok())
    return false;
  Out.Ops = std::move(Ops);
  return true;
}

namespace {

constexpr uint32_t SecLogMeta = 1;
constexpr uint32_t SecLogOps = 2;

} // namespace

uint64_t EditLog::fileKey(const AttributeGrammar &AG) {
  // Grammar hash salted with a log tag, so a log file, a session file and a
  // generator artifact for the same grammar can never be confused.
  return ArtifactCache::grammarKey(AG) ^ 0xED17106ED17106EDull;
}

std::vector<uint8_t> EditLog::encodeFile(const AttributeGrammar &AG) const {
  serialize::ArtifactWriter W(fileKey(AG));
  ByteWriter &M = W.section(SecLogMeta);
  M.str(AG.Name);
  M.u32(static_cast<uint32_t>(Ops.size()));
  encode(W.section(SecLogOps));
  return W.finish();
}

bool EditLog::decodeFile(std::span<const uint8_t> Bytes,
                         const AttributeGrammar &AG, EditLog &Out,
                         std::string &Reason) {
  serialize::ArtifactReader File;
  if (!File.open(Bytes, fileKey(AG), Reason))
    return false;
  for (uint32_t Sec : {SecLogMeta, SecLogOps})
    if (!File.hasSection(Sec)) {
      Reason = "log: missing section " + std::to_string(Sec);
      return false;
    }

  ByteReader M = File.section(SecLogMeta);
  std::string Name = M.str();
  uint32_t Count = M.u32();
  if (!M.ok() || M.remaining() != 0) {
    Reason = "log: malformed meta section";
    return false;
  }
  if (Name != AG.Name) {
    Reason = "log: grammar name mismatch ('" + Name + "' vs '" + AG.Name +
             "')";
    return false;
  }

  ByteReader R = File.section(SecLogOps);
  EditLog Scratch;
  if (!decode(R, AG, Scratch)) {
    Reason = "log: " + (R.ok() ? std::string("invalid op stream") : R.error());
    return false;
  }
  if (R.remaining() != 0) {
    Reason = "log: trailing bytes after op stream";
    return false;
  }
  if (Scratch.size() != Count) {
    Reason = "log: op count disagrees with meta";
    return false;
  }
  Out = std::move(Scratch);
  return true;
}
