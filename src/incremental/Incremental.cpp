//===- incremental/Incremental.cpp ----------------------------------------===//

#include "incremental/Incremental.h"

#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<IncrementalStats>> IncrementalStats::schema() {
  static constexpr CounterField<IncrementalStats> Fields[] = {
      {"inc.rules_reevaluated", &IncrementalStats::RulesReevaluated},
      {"inc.rules_skipped", &IncrementalStats::RulesSkipped},
      {"inc.visits_performed", &IncrementalStats::VisitsPerformed},
      {"inc.visits_skipped", &IncrementalStats::VisitsSkipped},
      {"inc.values_unchanged", &IncrementalStats::ValuesUnchanged},
  };
  return Fields;
}

bool IncrementalEvaluator::initial(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("inc.initial");
  Dirty.clear();
  EditSites.clear();
  Changed.clear();
  WriteClock = 0;
  LastWrite.clear();
  RevisitStamp.clear();
  return Exhaustive.evaluate(T, Diags);
}

std::unique_ptr<TreeNode>
IncrementalEvaluator::replaceSubtree(Tree &T, TreeNode *Old,
                                     std::unique_ptr<TreeNode> New) {
  New->PartitionId = Old->PartitionId; // same phylum, same context protocol
  TreeNode *NewRaw = New.get();
  std::unique_ptr<TreeNode> Detached = T.replaceSubtree(Old, std::move(New));
  EditSites.push_back(NewRaw);
  for (const TreeNode *N = NewRaw; N; N = N->Parent)
    Dirty.insert(N);
  return Detached;
}

bool IncrementalEvaluator::isChanged(const TreeNode *Site,
                                     unsigned Idx) const {
  auto It = Changed.find(Site);
  return It != Changed.end() && Idx < It->second.size() && It->second[Idx];
}

void IncrementalEvaluator::markChanged(const TreeNode *Site, unsigned Idx,
                                       unsigned Count) {
  auto &Marks = Changed[Site];
  if (Marks.size() < Count)
    Marks.assign(Count, 0);
  Marks[Idx] = 1;
}

bool IncrementalEvaluator::argChanged(TreeNode *N, const AttrOcc &O) const {
  const AttributeGrammar &AG = *Plan.AG;
  if (O.isLexeme())
    return false;
  if (O.isLocal()) {
    unsigned NumAttrs = static_cast<unsigned>(
        AG.phylum(AG.prod(N->Prod).Lhs).Attrs.size());
    return isChanged(N, NumAttrs + O.LocalIndex);
  }
  const TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  return isChanged(Site, AG.attr(O.Attr).IndexInOwner);
}

bool IncrementalEvaluator::execEvalIncremental(
    TreeNode *N, const std::vector<RuleId> &Rules, DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  for (RuleId R : Rules) {
    const SemanticRule &Rule = AG.rule(R);
    const AttrOcc &T = Rule.Target;
    TreeNode *Site = T.isLocal() || T.Pos == 0 ? N : N->child(T.Pos - 1);
    ensureNodeStorage(AG, N);
    ensureNodeStorage(AG, Site);

    bool TargetComputed =
        T.isLocal() ? (Site->LocalComputed.size() > T.LocalIndex &&
                       Site->LocalComputed[T.LocalIndex])
                    : Site->AttrComputed[AG.attr(T.Attr).IndexInOwner] != 0;

    // Cutoff: nothing relevant changed and the old value exists.
    bool AnyArgChanged = false;
    for (const AttrOcc &Arg : Rule.Args)
      AnyArgChanged |= argChanged(N, Arg);
    if (TargetComputed && !AnyArgChanged) {
      ++Stats.RulesSkipped;
      FNC2_COUNT("inc.rules_skipped", 1);
      continue;
    }

    if (!Rule.Fn) {
      Diags.error("rule for '" + AG.occName(Rule.Prod, T) +
                  "' has no semantic function");
      return false;
    }
    std::vector<Value> Args;
    Args.reserve(Rule.Args.size());
    for (const AttrOcc &Arg : Rule.Args)
      Args.push_back(readOcc(AG, N, Arg));
    Value NewVal = Rule.Fn(Args);
    ++Stats.RulesReevaluated;
    FNC2_COUNT("inc.rules_reevaluated", 1);

    unsigned NumAttrs = static_cast<unsigned>(
        AG.phylum(AG.prod(Site->Prod).Lhs).Attrs.size());
    unsigned Idx;
    const Value *OldVal = nullptr;
    if (T.isLocal()) {
      Idx = NumAttrs + T.LocalIndex;
      if (TargetComputed)
        OldVal = &Site->LocalVals[T.LocalIndex];
    } else {
      Idx = AG.attr(T.Attr).IndexInOwner;
      if (TargetComputed)
        OldVal = &Site->AttrVals[Idx];
    }
    if (OldVal && valueEqual(*OldVal, NewVal)) {
      ++Stats.ValuesUnchanged; // status: unchanged — propagation stops here
      FNC2_COUNT("inc.values_unchanged", 1);
      continue;
    }
    markChanged(Site, Idx,
                NumAttrs + static_cast<unsigned>(
                               AG.prod(Site->Prod).Locals.size()));
    LastWrite[Site] = ++WriteClock;
    writeOcc(AG, N, T, std::move(NewVal));
  }
  return true;
}

bool IncrementalEvaluator::revisit(TreeNode *N, unsigned VisitNo,
                                   DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  ensureNodeStorage(AG, N);
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for operator '" + AG.prod(N->Prod).Name +
                "' during incremental update");
    return false;
  }
  ++Stats.VisitsPerformed;
  FNC2_SPAN("inc.visit");

  for (unsigned I = Seq->BeginIndex[VisitNo - 1] + 1;; ++I) {
    const VisitInstr &Instr = Seq->Instrs[I];
    switch (Instr.Kind) {
    case VisitInstr::Op::Eval:
      if (!execEvalIncremental(N, Instr.Rules, Diags))
        return false;
      break;
    case VisitInstr::Op::Visit: {
      TreeNode *Child = N->child(Instr.Child);
      // Descend only when something can differ below: an edit in the
      // subtree, a not-yet-evaluated (fresh) node, or a changed inherited
      // attribute of the son.
      bool MustDescend = subtreeDirty(Child) || Child->AttrComputed.empty();
      if (!MustDescend)
        for (AttrId A : AG.phylum(AG.prod(Child->Prod).Lhs).Attrs)
          if (AG.attr(A).isInherited() &&
              isChanged(Child, AG.attr(A).IndexInOwner)) {
            MustDescend = true;
            break;
          }
      // Revisit memo: this exact visit already ran this update and no EVAL
      // wrote into the son since (its inherited context is bit-identical),
      // so the descent would recompute everything to the same values. The
      // dirty marks and changed marks that triggered MustDescend persist
      // for the whole update; this is what keeps the start-anywhere climb
      // from redoing the edit region once per ancestor level.
      if (MustDescend && !Child->AttrComputed.empty()) {
        auto It = RevisitStamp.find(Child);
        if (It != RevisitStamp.end() && Instr.VisitNo <= It->second.size()) {
          uint64_t Stamp = It->second[Instr.VisitNo - 1];
          auto LW = LastWrite.find(Child);
          uint64_t Last = LW == LastWrite.end() ? 0 : LW->second;
          if (Stamp != 0 && Last < Stamp)
            MustDescend = false;
        }
      }
      if (MustDescend) {
        Child->PartitionId = Instr.ChildPartition;
        if (!revisit(Child, Instr.VisitNo, Diags))
          return false;
      } else {
        ++Stats.VisitsSkipped;
        FNC2_COUNT("inc.visits_skipped", 1);
      }
      break;
    }
    case VisitInstr::Op::Leave: {
      auto &Stamps = RevisitStamp[N];
      if (Stamps.size() < Seq->NumVisits)
        Stamps.resize(Seq->NumVisits, 0);
      Stamps[VisitNo - 1] = WriteClock + 1; // +1: 0 is "never ran"
      return true;
    }
    case VisitInstr::Op::Begin:
      assert(false && "BEGIN inside a visit body");
      return false;
    }
  }
}

bool IncrementalEvaluator::revisitAll(TreeNode *N, DiagnosticEngine &Diags) {
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence during incremental update");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!revisit(N, V, Diags))
      return false;
  return true;
}

bool IncrementalEvaluator::update(Tree &T, DiagnosticEngine &Diags,
                                  UpdateStrategy Strategy) {
  FNC2_SPAN("inc.update");
  const AttributeGrammar &AG = *Plan.AG;
  Changed.clear();
  WriteClock = 0;
  LastWrite.clear();
  RevisitStamp.clear();
  bool Ok = true;

  if (Strategy == UpdateStrategy::FromRoot || EditSites.empty()) {
    Ok = revisitAll(T.root(), Diags);
  } else {
    // Start-anywhere: begin at each edit's father and climb while the
    // node's synthesized results keep changing.
    for (TreeNode *Edit : EditSites) {
      TreeNode *N = Edit->Parent ? Edit->Parent : Edit;
      while (true) {
        if (!revisitAll(N, Diags)) {
          Ok = false;
          break;
        }
        // Did any synthesized attribute of N change? If not, the context
        // cannot observe the edit: stop climbing.
        bool SynChanged = false;
        for (AttrId A : AG.phylum(AG.prod(N->Prod).Lhs).Attrs)
          if (AG.attr(A).isSynthesized() &&
              isChanged(N, AG.attr(A).IndexInOwner))
            SynChanged = true;
        if (!SynChanged || !N->Parent)
          break;
        N = N->Parent;
      }
      if (!Ok)
        break;
    }
  }

  if (Ok) {
    Dirty.clear();
    EditSites.clear();
  }
  return Ok;
}
