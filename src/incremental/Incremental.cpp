//===- incremental/Incremental.cpp ----------------------------------------===//

#include "incremental/Incremental.h"

#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<IncrementalStats>> IncrementalStats::schema() {
  static constexpr CounterField<IncrementalStats> Fields[] = {
      {"inc.rules_reevaluated", &IncrementalStats::RulesReevaluated},
      {"inc.rules_skipped", &IncrementalStats::RulesSkipped},
      {"inc.visits_performed", &IncrementalStats::VisitsPerformed},
      {"inc.visits_skipped", &IncrementalStats::VisitsSkipped},
      {"inc.values_unchanged", &IncrementalStats::ValuesUnchanged},
  };
  return Fields;
}

bool IncrementalEvaluator::initial(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("inc.initial");
  Dirty.clear();
  EditSites.clear();
  LexemeChanged.clear();
  Changed.clear();
  WriteClock = 0;
  LastWrite.clear();
  RevisitStamp.clear();
  return Exhaustive.evaluate(T, Diags);
}

std::unique_ptr<TreeNode>
IncrementalEvaluator::replaceSubtree(Tree &T, TreeNode *Old,
                                     std::unique_ptr<TreeNode> New) {
  New->PartitionId = Old->PartitionId; // same phylum, same context protocol
  TreeNode *NewRaw = New.get();
  std::unique_ptr<TreeNode> Detached = T.replaceSubtree(Old, std::move(New));
  EditSites.push_back(NewRaw);
  for (const TreeNode *N = NewRaw; N; N = N->Parent)
    Dirty.insert(N);
  return Detached;
}

void IncrementalEvaluator::changeLeafValue(Tree &T, TreeNode *N,
                                           Value NewLexeme) {
  (void)T;
  assert(Plan.AG->prod(N->Prod).HasLexeme && "node has no lexeme slot");
  N->Lexeme = std::move(NewLexeme);
  LexemeChanged.insert(N);
  EditSites.push_back(N);
  for (const TreeNode *A = N; A; A = A->Parent)
    Dirty.insert(A);
}

TreeNode *IncrementalEvaluator::swapProduction(Tree &T, TreeNode *Old,
                                               ProdId NewProd) {
  const AttributeGrammar &AG = *Plan.AG;
  assert(AG.prod(Old->Prod).Lhs == AG.prod(NewProd).Lhs &&
         AG.prod(Old->Prod).Rhs == AG.prod(NewProd).Rhs &&
         "production swap changes the signature");
  std::vector<std::unique_ptr<TreeNode>> Kids = std::move(Old->Children);
  Old->Children.clear();
  std::unique_ptr<TreeNode> New = T.make(NewProd, std::move(Kids), Old->Lexeme);
  New->PartitionId = Old->PartitionId; // same phylum, same context protocol
  TreeNode *NewRaw = New.get();
  T.replaceSubtree(Old, std::move(New));

  // The kept children carry full attribution, but the new production's
  // rules may define their inherited occurrences differently; with the
  // computed bits still set those rules would be skipped as "target
  // computed, arguments unchanged". Clearing the bits forces the rules to
  // run; equality cutoffs then bound the propagation into the children.
  for (const std::unique_ptr<TreeNode> &C : NewRaw->Children) {
    if (!C->hasFrame())
      continue;
    for (const SlotAttr &IA : CP->InhByPhylum[AG.prod(C->Prod).Lhs])
      C->clearSlotComputed(IA.Slot);
  }

  EditSites.push_back(NewRaw);
  for (const TreeNode *A = NewRaw; A; A = A->Parent)
    Dirty.insert(A);
  return NewRaw;
}

bool IncrementalEvaluator::isChanged(const TreeNode *Site,
                                     unsigned Slot) const {
  auto It = Changed.find(Site);
  return It != Changed.end() && Slot < It->second.size() && It->second[Slot];
}

void IncrementalEvaluator::markChanged(const TreeNode *Site, unsigned Slot,
                                       unsigned Count) {
  auto &Marks = Changed[Site];
  if (Marks.size() < Count)
    Marks.assign(Count, 0);
  Marks[Slot] = 1;
}

bool IncrementalEvaluator::argChanged(TreeNode *N, const SlotRef &Ref) const {
  // A lexeme reference always reads the node the rule executes at; it is
  // "changed" exactly when that node's lexeme was edited in place.
  if (Ref.Kind == SlotRef::K::Lexeme)
    return LexemeChanged.count(N) != 0;
  const TreeNode *Site =
      Ref.Kind == SlotRef::K::Self ? N : N->child(Ref.Child);
  return isChanged(Site, Ref.Slot);
}

bool IncrementalEvaluator::execEvalIncremental(TreeNode *N,
                                               uint32_t FirstRule,
                                               uint32_t NumRules,
                                               DiagnosticEngine &Diags) {
  for (uint32_t K = 0; K != NumRules; ++K) {
    const CompiledRule &R = CP->Rules[FirstRule + K];
    const SlotRef &T = R.Target;
    TreeNode *Site = T.Kind == SlotRef::K::Self ? N : N->child(T.Child);
    CP->ensureFrame(Site);

    // The target's slot exists, so ensureFrame allocated a frame.
    bool TargetComputed = Site->slotComputed(T.Slot);

    // Cutoff: nothing relevant changed and the old value exists.
    bool AnyArgChanged = false;
    for (unsigned I = 0; I != R.NumArgs; ++I)
      AnyArgChanged |= argChanged(N, CP->Args[R.FirstArg + I]);
    if (TargetComputed && !AnyArgChanged) {
      ++Stats.RulesSkipped;
      FNC2_COUNT("inc.rules_skipped", 1);
      continue;
    }

    if (!R.Fn) {
      const AttributeGrammar &AG = *Plan.AG;
      const SemanticRule &Rule = AG.rule(R.Orig);
      Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                  "' has no semantic function");
      return false;
    }
    Value *Buf = ArgBuf.data();
    for (unsigned I = 0; I != R.NumArgs; ++I) {
      const SlotRef &Ref = CP->Args[R.FirstArg + I];
      switch (Ref.Kind) {
      case SlotRef::K::Self:
        Buf[I] = N->Slots[Ref.Slot];
        break;
      case SlotRef::K::Child:
        Buf[I] = N->child(Ref.Child)->Slots[Ref.Slot];
        break;
      case SlotRef::K::Lexeme:
        Buf[I] = N->Lexeme;
        break;
      }
    }
    Value NewVal = (*R.Fn)(std::span<const Value>(Buf, R.NumArgs));
    ++Stats.RulesReevaluated;
    FNC2_COUNT("inc.rules_reevaluated", 1);

    if (TargetComputed && valueEqual(Site->Slots[T.Slot], NewVal)) {
      ++Stats.ValuesUnchanged; // status: unchanged — propagation stops here
      FNC2_COUNT("inc.values_unchanged", 1);
      continue;
    }
    const FrameShape &F = CP->frameOf(Site->Prod);
    markChanged(Site, T.Slot, unsigned(F.NumAttrs) + F.NumLocals);
    LastWrite[Site] = ++WriteClock;
    Site->Slots[T.Slot] = std::move(NewVal);
    Site->setSlotComputed(T.Slot);
  }
  return true;
}

bool IncrementalEvaluator::revisit(TreeNode *N, const CompiledSeq *Seq,
                                   unsigned VisitNo,
                                   DiagnosticEngine &Diags) {
  CP->ensureFrame(N);
  ++Stats.VisitsPerformed;
  FNC2_SPAN("inc.visit");

  const CompiledInstr *I =
      &CP->Instrs[Seq->FirstInstr + CP->BeginOfs[Seq->FirstBegin + VisitNo - 1]];
  for (;; ++I) {
    switch (I->Kind) {
    case CompiledInstr::Op::Eval:
      if (!execEvalIncremental(N, I->A, I->B, Diags))
        return false;
      break;
    case CompiledInstr::Op::Visit: {
      TreeNode *Child = N->child(I->Child);
      // Descend only when something can differ below: an edit in the
      // subtree, a not-yet-evaluated (fresh) node, or a changed inherited
      // attribute of the son.
      const bool Fresh = !Child->hasFrame() || Child->FrameAttrs == 0;
      bool MustDescend = subtreeDirty(Child) || Fresh;
      if (!MustDescend) {
        const PhylumId Ph = Plan.AG->prod(Child->Prod).Lhs;
        for (const SlotAttr &IA : CP->InhByPhylum[Ph])
          if (isChanged(Child, IA.Slot)) {
            MustDescend = true;
            break;
          }
      }
      // Revisit memo: this exact visit already ran this update and no EVAL
      // wrote into the son since (its inherited context is bit-identical),
      // so the descent would recompute everything to the same values. The
      // dirty marks and changed marks that triggered MustDescend persist
      // for the whole update; this is what keeps the start-anywhere climb
      // from redoing the edit region once per ancestor level.
      if (MustDescend && !Fresh) {
        auto It = RevisitStamp.find(Child);
        if (It != RevisitStamp.end() && I->VisitNo <= It->second.size()) {
          uint64_t Stamp = It->second[I->VisitNo - 1];
          auto LW = LastWrite.find(Child);
          uint64_t Last = LW == LastWrite.end() ? 0 : LW->second;
          if (Stamp != 0 && Last < Stamp)
            MustDescend = false;
        }
      }
      if (MustDescend) {
        Child->PartitionId = I->A;
        const CompiledSeq *ChildSeq = CP->seqForNode(Child);
        if (!ChildSeq) {
          Diags.error("no visit sequence for operator '" +
                      Plan.AG->prod(Child->Prod).Name +
                      "' during incremental update");
          return false;
        }
        if (!revisit(Child, ChildSeq, I->VisitNo, Diags))
          return false;
      } else {
        ++Stats.VisitsSkipped;
        FNC2_COUNT("inc.visits_skipped", 1);
      }
      break;
    }
    case CompiledInstr::Op::Leave: {
      auto &Stamps = RevisitStamp[N];
      if (Stamps.size() < Seq->NumVisits)
        Stamps.resize(Seq->NumVisits, 0);
      Stamps[VisitNo - 1] = WriteClock + 1; // +1: 0 is "never ran"
      return true;
    }
    }
  }
}

bool IncrementalEvaluator::revisitAll(TreeNode *N, DiagnosticEngine &Diags) {
  const CompiledSeq *Seq = CP->seqForNode(N);
  if (!Seq) {
    Diags.error("no visit sequence during incremental update");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!revisit(N, Seq, V, Diags))
      return false;
  return true;
}

bool IncrementalEvaluator::update(Tree &T, DiagnosticEngine &Diags,
                                  UpdateStrategy Strategy) {
  FNC2_SPAN("inc.update");
  const AttributeGrammar &AG = *Plan.AG;
  Changed.clear();
  WriteClock = 0;
  LastWrite.clear();
  RevisitStamp.clear();
  bool Ok = true;

  if (Strategy == UpdateStrategy::FromRoot || EditSites.empty()) {
    Ok = revisitAll(T.root(), Diags);
  } else {
    // Start-anywhere: begin at each edit's father and climb while the
    // node's synthesized results keep changing.
    for (TreeNode *Edit : EditSites) {
      TreeNode *N = Edit->Parent ? Edit->Parent : Edit;
      while (true) {
        if (!revisitAll(N, Diags)) {
          Ok = false;
          break;
        }
        // Did any synthesized attribute of N change? If not, the context
        // cannot observe the edit: stop climbing.
        bool SynChanged = false;
        for (const SlotAttr &SA : CP->SynByPhylum[AG.prod(N->Prod).Lhs])
          if (isChanged(N, SA.Slot))
            SynChanged = true;
        if (!SynChanged || !N->Parent)
          break;
        N = N->Parent;
      }
      if (!Ok)
        break;
    }
  }

  if (Ok) {
    Dirty.clear();
    EditSites.clear();
    LexemeChanged.clear();
  }
  return Ok;
}
