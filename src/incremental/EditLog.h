//===- incremental/EditLog.h - Replayable tree-edit streams -----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-log subsystem behind editor-style incremental sessions: a
/// compact, append-only, replayable stream of tree edits. Three edit kinds
/// cover what a structure editor produces:
///
///  * SubtreeReplace — a node is replaced by a freshly built subtree of the
///    same phylum (the classic incremental-evaluation edit);
///  * LeafValueChange — a leaf operator's lexeme is changed in place;
///  * ProductionSwap — the operator applied at a node is exchanged for one
///    with the identical signature (same LHS, same RHS phyla, same lexeme
///    shape), keeping the children.
///
/// Edits address nodes by their child-index path from the root, so a log is
/// meaningful only against the tree state its edits were recorded on — each
/// op is generated against, and must be applied to, the tree produced by
/// its predecessors. Replay drives either an IncrementalEvaluator (dirty
/// marks, cutoffs, stats) or the bare tree (structural replay, used when
/// generating scripts without attribution).
///
/// Logs serialize through the serialize/ substrate: a ByteWriter/ByteReader
/// op stream inside the standard artifact container (per-section CRCs),
/// keyed by a hash of the grammar so a log can never be replayed against
/// the wrong language. Every decode validates ids, arities and lexeme
/// shapes against the live grammar; corrupted input is rejected with a
/// reason, never trusted.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_INCREMENTAL_EDITLOG_H
#define FNC2_INCREMENTAL_EDITLOG_H

#include "incremental/Incremental.h"
#include "serialize/Serialize.h"
#include "tree/Tree.h"

namespace fnc2 {

//===----------------------------------------------------------------------===//
// Shared value / subtree codecs (also used by session persistence)
//===----------------------------------------------------------------------===//

/// Encodes a Value structurally: kind byte, then the payload. Maps encode
/// their visible bindings in mapEntries() order (most recent first) and are
/// rebuilt by inserting in reverse, so the visible environment — the only
/// part equality and lookup observe — round-trips exactly.
void encodeValue(serialize::ByteWriter &W, const Value &V);

/// Decodes a Value; latches \p R on malformed kinds or excessive nesting.
Value decodeValue(serialize::ByteReader &R);

/// Encodes the subtree rooted at \p N: a node count, then the nodes in
/// postorder as (production id, lexeme value if the production has one).
/// Arity is implied by the production, so decode rebuilds bottom-up.
void encodeSubtree(serialize::ByteWriter &W, const AttributeGrammar &AG,
                   const TreeNode *N);

/// Decodes a subtree into \p T's arena, validating every production id,
/// child phylum and lexeme shape against T's grammar. Returns null (with
/// \p R latched) on any violation.
std::unique_ptr<TreeNode> decodeSubtree(serialize::ByteReader &R, Tree &T);

/// The child-index path from the root to \p N (empty for the root itself).
std::vector<uint32_t> pathTo(const TreeNode *N);

/// Resolves a child-index path against \p T; null when it falls off the
/// tree.
TreeNode *resolvePath(const Tree &T, std::span<const uint32_t> Path);

//===----------------------------------------------------------------------===//
// EditOp / EditLog
//===----------------------------------------------------------------------===//

/// One recorded edit. The payload member used depends on the kind; the
/// replacement subtree is kept in its structural encoding (the op is a
/// value type independent of any tree's lifetime).
struct EditOp {
  enum class Kind : uint8_t {
    SubtreeReplace = 0,
    LeafValueChange = 1,
    ProductionSwap = 2,
  };

  Kind K = Kind::SubtreeReplace;
  std::vector<uint32_t> Path;   ///< Child indices from the root.
  std::vector<uint8_t> Subtree; ///< SubtreeReplace: encodeSubtree() bytes.
  Value NewLexeme;              ///< LeafValueChange.
  ProdId NewProd = InvalidId;   ///< ProductionSwap.
};

/// True when \p A and \p B are exchangeable by a ProductionSwap: distinct
/// productions with the same LHS, the same RHS phylum vector and the same
/// lexeme declaration.
bool swapCompatible(const AttributeGrammar &AG, ProdId A, ProdId B);

/// An append-only stream of edits over trees of one grammar.
class EditLog {
public:
  size_t size() const { return Ops.size(); }
  bool empty() const { return Ops.empty(); }
  const EditOp &op(size_t I) const { return Ops[I]; }

  /// Appends \p Op; returns its index.
  size_t append(EditOp Op) {
    Ops.push_back(std::move(Op));
    return Ops.size() - 1;
  }

  /// Drops ops from the tail, down to \p NewSize. The one sanctioned use
  /// is rolling back an append whose op apply() then rejected, preserving
  /// the invariant that a session's log holds exactly the applied edits.
  void truncate(size_t NewSize) {
    assert(NewSize <= Ops.size() && "truncate cannot grow a log");
    Ops.resize(NewSize);
  }

  /// Builds a SubtreeReplace op for \p Victim (a node of a live tree) from
  /// \p Replacement, which is encoded into the op and not retained.
  static EditOp makeReplace(const AttributeGrammar &AG, const TreeNode *Victim,
                            const TreeNode *Replacement);
  static EditOp makeLeafChange(const TreeNode *Victim, Value NewLexeme);
  static EditOp makeSwap(const TreeNode *Victim, ProdId NewProd);

  /// Applies op \p I to \p T: through \p IE when non-null (edit recording,
  /// dirty marks — the caller still runs IE->update()), structurally
  /// otherwise. Returns false through \p Diags when the op does not fit the
  /// tree (unresolvable path, phylum mismatch, incompatible swap).
  bool apply(size_t I, Tree &T, IncrementalEvaluator *IE,
             DiagnosticEngine &Diags) const;

  /// Raw op-stream codec (the session file embeds a log as one section).
  void encode(serialize::ByteWriter &W) const;
  static bool decode(serialize::ByteReader &R, const AttributeGrammar &AG,
                     EditLog &Out);

  /// Standalone log file: the artifact container (CRC-stamped sections)
  /// keyed by the grammar hash, so byte flips, truncations and wrong-
  /// grammar loads are all rejected with a reason.
  std::vector<uint8_t> encodeFile(const AttributeGrammar &AG) const;
  static bool decodeFile(std::span<const uint8_t> Bytes,
                         const AttributeGrammar &AG, EditLog &Out,
                         std::string &Reason);

  /// The container key a log file for \p AG carries.
  static uint64_t fileKey(const AttributeGrammar &AG);

private:
  std::vector<EditOp> Ops;
};

} // namespace fnc2

#endif // FNC2_INCREMENTAL_EDITLOG_H
