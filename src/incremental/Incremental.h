//===- incremental/Incremental.h - Incremental evaluation -------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental attribute evaluator (paper section 2.1.2): an exhaustive
/// visit-sequence evaluator extended with *semantic control* that limits
/// reevaluation to affected instances. After one or more edits (subtree
/// replacement, in-place leaf value change, production swap), update()
/// re-runs visit sequences with two cutoffs:
///
///  * an EVAL whose arguments are all unchanged is skipped entirely;
///  * a VISIT descends only into sons whose subtree contains an edit or
///    whose inherited attributes changed;
///
/// and every recomputed value is compared against the stored one (the
/// changed / unchanged / unknown status of [42]), so propagation stops as
/// soon as old and new values agree. The comparison is pluggable — by
/// default structural equality on the persistent value domain.
///
/// Two strategies are provided: FromRoot re-drives the root's visits with
/// cutoffs; StartAnywhere begins at the edit's father and climbs only while
/// synthesized results keep changing, which is what the DNC selectors
/// (closed from below *and* above) license. Multiple subtree replacements
/// accumulate before a single update().
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_INCREMENTAL_INCREMENTAL_H
#define FNC2_INCREMENTAL_INCREMENTAL_H

#include "eval/Evaluator.h"

#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace fnc2 {

/// Counters demonstrating that work is proportional to the affected region.
/// Reset/merge/export semantics are derived from schema()
/// (support/Metrics.h), shared with the other evaluators' stats structs.
struct IncrementalStats {
  uint64_t RulesReevaluated = 0;
  uint64_t RulesSkipped = 0;   ///< EVAL cutoffs (arguments unchanged).
  uint64_t VisitsPerformed = 0;
  uint64_t VisitsSkipped = 0;  ///< VISIT cutoffs (clean son).
  uint64_t ValuesUnchanged = 0; ///< Recomputed but equal: propagation cut.

  /// Names and merge kinds of every counter above.
  static std::span<const CounterField<IncrementalStats>> schema();

  void reset() { statsReset(*this); }

  /// Accumulates another run's counters (e.g. across a sequence of
  /// updates).
  void merge(const IncrementalStats &O) { statsMerge(*this, O); }

  /// Publishes every counter into \p R under its "inc.*" schema name.
  void exportTo(MetricsRegistry &R) const { statsExport(*this, R); }
};

enum class UpdateStrategy : uint8_t { FromRoot, StartAnywhere };

/// Incremental evaluator over tree-resident attributes.
class IncrementalEvaluator {
public:
  /// Compiles the plan privately.
  explicit IncrementalEvaluator(const EvaluationPlan &Plan)
      : Plan(Plan), OwnedCP(std::make_unique<CompiledPlan>(Plan)),
        CP(OwnedCP.get()), Exhaustive(Plan, *CP) {
    ArgBuf.resize(CP->MaxRuleArgs);
  }

  /// Borrows an already-compiled plan: concurrent sessions share one
  /// immutable CompiledPlan and keep only per-session frames and marks.
  /// \p Compiled must outlive the evaluator and stem from \p Plan.
  IncrementalEvaluator(const EvaluationPlan &Plan, const CompiledPlan &Compiled)
      : Plan(Plan), CP(&Compiled), Exhaustive(Plan, Compiled) {
    ArgBuf.resize(CP->MaxRuleArgs);
  }

  void setRootInherited(AttrId A, Value V) {
    Exhaustive.setRootInherited(A, std::move(V));
  }

  /// Overrides the equality used for change cutoff (paper: "the notion of
  /// equality used in this comparison can be adapted to the problem at
  /// hand").
  void setEquality(std::function<bool(const Value &, const Value &)> Eq) {
    Equal = std::move(Eq);
  }

  /// Full initial evaluation.
  bool initial(Tree &T, DiagnosticEngine &Diags);

  /// Replaces the subtree at \p Old by \p New, transferring the evaluation
  /// protocol (partition) and recording the edit site; returns the detached
  /// old subtree. Several edits may precede one update().
  std::unique_ptr<TreeNode> replaceSubtree(Tree &T, TreeNode *Old,
                                           std::unique_ptr<TreeNode> New);

  /// In-place lexeme change of a leaf operator. The lexeme has no changed
  /// mark of its own (it is not an attribute slot), so the node is recorded
  /// in a lexeme-changed set that argChanged() consults — without it the
  /// EVAL cutoff would silently skip every rule reading the new lexeme.
  void changeLeafValue(Tree &T, TreeNode *N, Value NewLexeme);

  /// Swaps the production applied at \p Old for \p NewProd (same LHS, same
  /// RHS phylum signature, same lexeme shape), keeping the children and
  /// their attribution. The kept children's inherited slots are force-
  /// cleared: the new production's rules may define them with different
  /// functions, and their old values being "computed" would otherwise
  /// satisfy the EVAL cutoff. Returns the new node.
  TreeNode *swapProduction(Tree &T, TreeNode *Old, ProdId NewProd);

  /// Re-establishes consistency after the recorded edits.
  bool update(Tree &T, DiagnosticEngine &Diags,
              UpdateStrategy Strategy = UpdateStrategy::StartAnywhere);

  const IncrementalStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

private:
  bool revisitAll(TreeNode *N, DiagnosticEngine &Diags);
  bool revisit(TreeNode *N, const CompiledSeq *Seq, unsigned VisitNo,
               DiagnosticEngine &Diags);
  bool execEvalIncremental(TreeNode *N, uint32_t FirstRule, uint32_t NumRules,
                           DiagnosticEngine &Diags);
  bool isChanged(const TreeNode *Site, unsigned Slot) const;
  void markChanged(const TreeNode *Site, unsigned Slot, unsigned Count);
  /// Change test on a pre-resolved slot reference (frame slot numbering is
  /// identical to the Changed-mark numbering: attributes first, locals
  /// after).
  bool argChanged(TreeNode *N, const SlotRef &Ref) const;
  bool subtreeDirty(const TreeNode *N) const {
    return Dirty.count(N) != 0;
  }
  bool valueEqual(const Value &A, const Value &B) const {
    return Equal ? Equal(A, B) : A.equals(B);
  }

  /// Session persistence serializes the stamp maps below through a
  /// canonical preorder encoding (incremental/Session.cpp).
  friend class IncrementalSession;

  const EvaluationPlan &Plan;
  /// Owned when compiled privately, null when borrowing a shared plan; CP
  /// always points at the plan in use, which the embedded exhaustive
  /// evaluator borrows too, so initial() and update() maintain the same
  /// per-node sequence caches.
  std::unique_ptr<const CompiledPlan> OwnedCP;
  const CompiledPlan *CP;
  Evaluator Exhaustive;
  IncrementalStats Stats;
  std::function<bool(const Value &, const Value &)> Equal;
  /// Reusable argument buffer; semantic functions see a span into it.
  std::vector<Value> ArgBuf;

  /// Nodes whose subtree contains an edit (edit roots and their ancestors).
  std::unordered_set<const TreeNode *> Dirty;
  /// Edit roots recorded since the last update.
  std::vector<TreeNode *> EditSites;
  /// Leaves whose lexeme was changed in place since the last update;
  /// argChanged() reports their lexeme references as changed.
  std::unordered_set<const TreeNode *> LexemeChanged;
  /// Attribute-changed marks for the current update (per node bitset);
  /// locals are tracked after the attributes.
  std::unordered_map<const TreeNode *, std::vector<uint8_t>> Changed;

  /// Per-update revisit memo. The start-anywhere climb re-runs the full
  /// visit protocol at every ancestor; without a memo each level would
  /// re-descend into the (still dirty-marked, still changed-marked) edit
  /// region and redo its rules, making the climb cost O(affected x depth).
  /// WriteClock ticks on every attribute write; LastWrite records the tick
  /// that last wrote into a node; RevisitStamp records, per (node, visit),
  /// the clock at completion (+1, so 0 means "never ran this update"). A
  /// completed visit with no later write into the node would recompute
  /// byte-identical values — the descent is skipped.
  uint64_t WriteClock = 0;
  std::unordered_map<const TreeNode *, uint64_t> LastWrite;
  std::unordered_map<const TreeNode *, std::vector<uint64_t>> RevisitStamp;
};

} // namespace fnc2

#endif // FNC2_INCREMENTAL_INCREMENTAL_H
