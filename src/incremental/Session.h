//===- incremental/Session.h - Persistent incremental sessions --*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Long-lived incremental editing sessions over one grammar: a tree, its
/// full attribution, the incremental evaluator's stamps, and the edit log
/// that produced them, bundled behind a small apply/replay API and
/// serializable as one artifact-container file.
///
/// Sharing contract: every session borrows one immutable CompiledArtifact
/// (plan + compiled instruction streams) obtained from compileArtifact() or
/// the ArtifactCache. The bundle is read-only after construction; all
/// mutable state (tree, frames, dirty marks, stamps, log) is per-session,
/// so any number of sessions may run concurrently on one bundle from
/// different threads with no locking — the multi-session stress test pins
/// this under TSan.
///
/// Persistence contract: a *quiescent* session (no edits pending an
/// update()) serializes to bytes such that encode(live) == encode(resumed)
/// byte-for-byte — resuming from disk is indistinguishable from never
/// having stopped, including the incremental revisit stamps. Saving with
/// edits pending is refused (the dirty sets hold raw node pointers with no
/// meaning on disk); run update() first.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_INCREMENTAL_SESSION_H
#define FNC2_INCREMENTAL_SESSION_H

#include "fnc2/ArtifactCache.h"
#include "incremental/EditLog.h"

namespace fnc2 {

/// One editing session: tree + attribution + stamps + log.
class IncrementalSession {
public:
  /// \p Bundle must stem from a generation over \p AG (asserted); it is
  /// retained, so the caller may drop its reference.
  IncrementalSession(const AttributeGrammar &AG,
                     std::shared_ptr<const CompiledArtifact> Bundle,
                     UpdateStrategy Strategy = UpdateStrategy::StartAnywhere);

  /// Root-inherited attributes must be provided before start() (and are
  /// recorded so a persisted session carries them).
  void setRootInherited(AttrId A, Value V);

  /// Takes ownership of \p T and computes the initial attribution.
  bool start(Tree T, DiagnosticEngine &Diags);

  /// Applies \p Op through the evaluator, appends it to the log, and runs
  /// one update(). False through \p Diags when the op does not fit the
  /// current tree or evaluation fails.
  bool apply(EditOp Op, DiagnosticEngine &Diags);

  /// Replays the ops of \p L this session has not seen yet (from index
  /// log().size() on), one update() per op.
  bool replay(const EditLog &L, DiagnosticEngine &Diags);

  bool started() const { return Started; }
  Tree &tree() { return T; }
  const Tree &tree() const { return T; }
  const EditLog &log() const { return Log; }
  IncrementalEvaluator &evaluator() { return IE; }
  const IncrementalStats &stats() const { return IE.stats(); }
  const AttributeGrammar &grammar() const { return *AG; }
  UpdateStrategy strategy() const { return Strategy; }

  /// FNV-1a over the canonical tree + frame encoding: two sessions agree
  /// exactly when their trees and complete attributions agree. The golden
  /// corpus commits these digests.
  uint64_t attributionDigest() const;

  /// Serializes the session into the artifact container (per-section
  /// CRCs). Refuses — with \p WhyNot — when the session never started or
  /// has edits pending an update().
  bool encode(std::vector<uint8_t> &Out, std::string &WhyNot) const;

  /// Restores a session image into this session (which must be built over
  /// the same grammar and an identically-fingerprinted plan). Fully
  /// validating: the tree, every frame shape, every stamp index is checked
  /// before any state is committed; on failure the session is untouched
  /// and \p Reason says why, section-prefixed.
  bool restore(std::span<const uint8_t> Bytes, std::string &Reason);

  /// The container key a session file for \p AG carries (grammar hash,
  /// session-salted).
  static uint64_t fileKey(const AttributeGrammar &AG);

private:
  void encodeTreeAndFrames(serialize::ByteWriter &TreeW,
                           serialize::ByteWriter &FrameW) const;
  void encodeStamps(serialize::ByteWriter &W) const;

  const AttributeGrammar *AG;
  std::shared_ptr<const CompiledArtifact> Bundle;
  UpdateStrategy Strategy;
  Tree T;
  EditLog Log;
  IncrementalEvaluator IE;
  /// Root-inherited values in the order provided (re-installed on
  /// restore; later bindings for one attribute shadow earlier ones).
  std::vector<std::pair<AttrId, Value>> RootInh;
  bool Started = false;
};

/// Stores session snapshots as files in one directory (shareable with an
/// ArtifactCache directory: a distinct extension and a salted content key
/// keep the file populations disjoint).
class SessionStore {
public:
  explicit SessionStore(std::string Dir) : Dir(std::move(Dir)) {}

  /// "<dir>/<grammar-key-hex>-<name>.fnc2sess".
  std::string pathFor(const AttributeGrammar &AG,
                      const std::string &Name) const;

  /// Atomic store (temp file + rename), matching the artifact cache's
  /// crash-safety discipline.
  bool store(const IncrementalSession &S, const std::string &Name,
             std::string &Reason) const;

  /// Loads and restores into \p S; false with a reason on missing file,
  /// I/O error or any validation failure.
  bool load(IncrementalSession &S, const std::string &Name,
            std::string &Reason) const;

private:
  std::string Dir;
};

} // namespace fnc2

#endif // FNC2_INCREMENTAL_SESSION_H
