//===- incremental/Session.cpp --------------------------------------------===//

#include "incremental/Session.h"

#include "serialize/ArtifactFile.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace fnc2;
using serialize::ByteReader;
using serialize::ByteWriter;

namespace {

constexpr uint32_t SecSessMeta = 1;
constexpr uint32_t SecSessTree = 2;
constexpr uint32_t SecSessFrames = 3;
constexpr uint32_t SecSessStamps = 4;
constexpr uint32_t SecSessLog = 5;

/// Preorder node enumeration — the canonical node numbering every section
/// below indexes by. Iterative (sessions reach 100k nodes).
std::vector<TreeNode *> preorderNodes(TreeNode *Root) {
  std::vector<TreeNode *> Out;
  if (!Root)
    return Out;
  std::vector<TreeNode *> Stack = {Root};
  while (!Stack.empty()) {
    TreeNode *N = Stack.back();
    Stack.pop_back();
    Out.push_back(N);
    for (unsigned I = N->arity(); I != 0; --I)
      Stack.push_back(N->child(I - 1));
  }
  return Out;
}

unsigned bitmapWords(unsigned NumSlots) { return (NumSlots + 63) / 64; }

} // namespace

//===----------------------------------------------------------------------===//
// IncrementalSession: live API
//===----------------------------------------------------------------------===//

IncrementalSession::IncrementalSession(
    const AttributeGrammar &AG, std::shared_ptr<const CompiledArtifact> Bundle,
    UpdateStrategy Strategy)
    : AG(&AG), Bundle(std::move(Bundle)), Strategy(Strategy), T(AG),
      IE(this->Bundle->Plan, this->Bundle->CP) {
  assert(this->Bundle->Plan.AG == &AG &&
         "bundle was generated for a different grammar");
}

void IncrementalSession::setRootInherited(AttrId A, Value V) {
  RootInh.emplace_back(A, V);
  IE.setRootInherited(A, std::move(V));
}

bool IncrementalSession::start(Tree NewT, DiagnosticEngine &Diags) {
  T = std::move(NewT);
  Started = IE.initial(T, Diags);
  return Started;
}

bool IncrementalSession::apply(EditOp Op, DiagnosticEngine &Diags) {
  assert(Started && "apply() before start()");
  size_t I = Log.append(std::move(Op));
  if (!Log.apply(I, T, &IE, Diags)) {
    // A rejected op never touched the tree; keep the log = applied edits.
    Log.truncate(I);
    return false;
  }
  return IE.update(T, Diags, Strategy);
}

bool IncrementalSession::replay(const EditLog &L, DiagnosticEngine &Diags) {
  for (size_t I = Log.size(); I < L.size(); ++I)
    if (!apply(L.op(I), Diags))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Encoding
//===----------------------------------------------------------------------===//

void IncrementalSession::encodeTreeAndFrames(ByteWriter &TreeW,
                                             ByteWriter &FrameW) const {
  encodeSubtree(TreeW, *AG, T.root());
  for (const TreeNode *N : preorderNodes(T.root())) {
    FrameW.u32(N->PartitionId);
    FrameW.boolean(N->hasFrame());
    if (!N->hasFrame())
      continue;
    FrameW.u16(N->FrameAttrs);
    FrameW.u16(N->FrameLocals);
    const unsigned Slots = N->numSlots();
    for (unsigned W = 0; W != bitmapWords(Slots); ++W)
      FrameW.u64(N->ComputedBits[W]);
    for (unsigned S = 0; S != Slots; ++S)
      encodeValue(FrameW, N->Slots[S]);
  }
}

void IncrementalSession::encodeStamps(ByteWriter &W) const {
  // Canonical form: every map keyed ascending by preorder index, so one
  // session state has exactly one encoding (unordered_map iteration order
  // never leaks into the bytes — the bit-identity guarantee depends on it).
  std::unordered_map<const TreeNode *, uint32_t> Index;
  {
    uint32_t I = 0;
    for (const TreeNode *N : preorderNodes(T.root()))
      Index[N] = I++;
  }
  W.u64(IE.WriteClock);

  std::vector<std::pair<uint32_t, uint64_t>> LW;
  for (const auto &[Node, Clock] : IE.LastWrite)
    if (auto It = Index.find(Node); It != Index.end())
      LW.emplace_back(It->second, Clock);
  std::sort(LW.begin(), LW.end());
  W.u32(static_cast<uint32_t>(LW.size()));
  for (const auto &[I, Clock] : LW) {
    W.u32(I);
    W.u64(Clock);
  }

  std::vector<std::pair<uint32_t, const std::vector<uint64_t> *>> RS;
  for (const auto &[Node, Stamps] : IE.RevisitStamp)
    if (auto It = Index.find(Node); It != Index.end())
      RS.emplace_back(It->second, &Stamps);
  std::sort(RS.begin(), RS.end());
  W.u32(static_cast<uint32_t>(RS.size()));
  for (const auto &[I, Stamps] : RS) {
    W.u32(I);
    W.u32(static_cast<uint32_t>(Stamps->size()));
    for (uint64_t S : *Stamps)
      W.u64(S);
  }

  std::vector<std::pair<uint32_t, const std::vector<uint8_t> *>> CH;
  for (const auto &[Node, Marks] : IE.Changed)
    if (auto It = Index.find(Node); It != Index.end())
      CH.emplace_back(It->second, &Marks);
  std::sort(CH.begin(), CH.end());
  W.u32(static_cast<uint32_t>(CH.size()));
  for (const auto &[I, Marks] : CH) {
    W.u32(I);
    W.u32(static_cast<uint32_t>(Marks->size()));
    for (uint8_t M : *Marks)
      W.u8(M);
  }
}

uint64_t IncrementalSession::attributionDigest() const {
  assert(Started && "digest of a session that never started");
  ByteWriter TreeW, FrameW;
  encodeTreeAndFrames(TreeW, FrameW);
  uint64_t H = serialize::fnv1a64(TreeW.bytes());
  return serialize::fnv1a64(FrameW.bytes(), H);
}

uint64_t IncrementalSession::fileKey(const AttributeGrammar &AG) {
  return ArtifactCache::grammarKey(AG) ^ 0x5E5510AA5E5510AAull;
}

bool IncrementalSession::encode(std::vector<uint8_t> &Out,
                                std::string &WhyNot) const {
  if (!Started) {
    WhyNot = "session never started";
    return false;
  }
  if (!IE.EditSites.empty() || !IE.Dirty.empty() || !IE.LexemeChanged.empty()) {
    WhyNot = "edits pending an update(); a session persists only quiescent";
    return false;
  }

  serialize::ArtifactWriter W(fileKey(*AG));
  ByteWriter &M = W.section(SecSessMeta);
  M.str(AG->Name);
  M.u8(static_cast<uint8_t>(Strategy));
  M.u32(T.size());
  M.u64(planFingerprint(Bundle->CP));
  M.u32(static_cast<uint32_t>(RootInh.size()));
  for (const auto &[A, V] : RootInh) {
    M.u32(A);
    encodeValue(M, V);
  }

  // Tree and frames are produced by one walk but land in two sections;
  // encode into locals first — section() references do not survive the
  // next section() call.
  ByteWriter TreeW, FrameW;
  encodeTreeAndFrames(TreeW, FrameW);
  W.section(SecSessTree).raw(TreeW.bytes().data(), TreeW.bytes().size());
  W.section(SecSessFrames).raw(FrameW.bytes().data(), FrameW.bytes().size());
  encodeStamps(W.section(SecSessStamps));
  Log.encode(W.section(SecSessLog));
  Out = W.finish();
  return true;
}

//===----------------------------------------------------------------------===//
// Restore
//===----------------------------------------------------------------------===//

bool IncrementalSession::restore(std::span<const uint8_t> Bytes,
                                 std::string &Reason) {
  serialize::ArtifactReader File;
  if (!File.open(Bytes, fileKey(*AG), Reason))
    return false;
  for (uint32_t Sec :
       {SecSessMeta, SecSessTree, SecSessFrames, SecSessStamps, SecSessLog})
    if (!File.hasSection(Sec)) {
      Reason = "session: missing section " + std::to_string(Sec);
      return false;
    }
  auto Rej = [&Reason](ByteReader &R, const char *Sec, const char *Fallback) {
    Reason = std::string("session ") + Sec + ": " +
             (R.ok() ? Fallback : R.error());
    return false;
  };

  // --- meta ---------------------------------------------------------------
  ByteReader M = File.section(SecSessMeta);
  std::string Name = M.str();
  uint8_t StrategyByte = M.u8();
  uint32_t NodeCount = M.u32();
  uint64_t Fingerprint = M.u64();
  uint32_t NumRootInh = M.count(5);
  std::vector<std::pair<AttrId, Value>> NewRootInh;
  NewRootInh.reserve(NumRootInh);
  for (uint32_t I = 0; I != NumRootInh && M.ok(); ++I) {
    uint32_t A = M.u32();
    if (M.ok() && A >= AG->Attrs.size()) {
      M.fail("root-inherited attribute id out of range");
      break;
    }
    NewRootInh.emplace_back(A, decodeValue(M));
  }
  if (!M.ok() || M.remaining() != 0)
    return Rej(M, "meta", "trailing bytes");
  if (Name != AG->Name) {
    Reason = "session meta: grammar name mismatch ('" + Name + "' vs '" +
             AG->Name + "')";
    return false;
  }
  if (StrategyByte > static_cast<uint8_t>(UpdateStrategy::StartAnywhere)) {
    Reason = "session meta: strategy byte out of range";
    return false;
  }
  if (Fingerprint != planFingerprint(Bundle->CP)) {
    Reason = "session meta: plan fingerprint mismatch (saved under a "
             "different compiled plan)";
    return false;
  }

  // --- tree ---------------------------------------------------------------
  ByteReader TreeR = File.section(SecSessTree);
  Tree Scratch(*AG);
  {
    std::unique_ptr<TreeNode> Root = decodeSubtree(TreeR, Scratch);
    if (!Root || TreeR.remaining() != 0)
      return Rej(TreeR, "tree", "trailing bytes");
    if (AG->prod(Root->Prod).Lhs != AG->Start) {
      Reason = "session tree: root is not of the start phylum";
      return false;
    }
    Scratch.setRoot(std::move(Root));
  }
  std::vector<TreeNode *> Nodes = preorderNodes(Scratch.root());
  if (Nodes.size() != NodeCount) {
    Reason = "session tree: node count disagrees with meta";
    return false;
  }

  // --- frames -------------------------------------------------------------
  ByteReader FrameR = File.section(SecSessFrames);
  const CompiledPlan &CP = Bundle->CP;
  for (TreeNode *N : Nodes) {
    N->PartitionId = FrameR.u32();
    bool HasFrame = FrameR.boolean();
    if (!FrameR.ok())
      break;
    if (!HasFrame)
      continue;
    const FrameShape &Shape = CP.frameOf(N->Prod);
    uint16_t NumAttrs = FrameR.u16();
    uint16_t NumLocals = FrameR.u16();
    if (!FrameR.ok())
      break;
    if (NumAttrs != Shape.NumAttrs || NumLocals != Shape.NumLocals ||
        (NumAttrs | NumLocals) == 0) {
      FrameR.fail("frame shape disagrees with the plan at '" +
                  AG->prod(N->Prod).Name + "'");
      break;
    }
    CP.ensureFrame(N);
    const unsigned Slots = N->numSlots();
    for (unsigned W = 0; W != bitmapWords(Slots); ++W)
      N->ComputedBits[W] = FrameR.u64();
    for (unsigned S = 0; S != Slots && FrameR.ok(); ++S)
      N->Slots[S] = decodeValue(FrameR);
    if (!FrameR.ok())
      break;
  }
  if (!FrameR.ok() || FrameR.remaining() != 0)
    return Rej(FrameR, "frames", "trailing bytes");

  // --- stamps -------------------------------------------------------------
  ByteReader StampR = File.section(SecSessStamps);
  uint64_t NewClock = StampR.u64();
  std::unordered_map<const TreeNode *, uint64_t> NewLastWrite;
  std::unordered_map<const TreeNode *, std::vector<uint64_t>> NewRevisit;
  std::unordered_map<const TreeNode *, std::vector<uint8_t>> NewChanged;
  {
    uint32_t N = StampR.count(12);
    int64_t Prev = -1;
    for (uint32_t I = 0; I != N && StampR.ok(); ++I) {
      uint32_t Idx = StampR.u32();
      uint64_t Clock = StampR.u64();
      if (!StampR.ok())
        break;
      if (Idx >= Nodes.size() || int64_t(Idx) <= Prev) {
        StampR.fail("last-write entry out of order or out of range");
        break;
      }
      Prev = Idx;
      NewLastWrite[Nodes[Idx]] = Clock;
    }
  }
  {
    uint32_t N = StampR.count(8);
    int64_t Prev = -1;
    for (uint32_t I = 0; I != N && StampR.ok(); ++I) {
      uint32_t Idx = StampR.u32();
      uint32_t Len = StampR.count(8);
      if (!StampR.ok())
        break;
      if (Idx >= Nodes.size() || int64_t(Idx) <= Prev || Len > 64) {
        StampR.fail("revisit-stamp entry out of order or out of range");
        break;
      }
      Prev = Idx;
      std::vector<uint64_t> Stamps(Len);
      for (uint32_t S = 0; S != Len; ++S)
        Stamps[S] = StampR.u64();
      NewRevisit[Nodes[Idx]] = std::move(Stamps);
    }
  }
  {
    uint32_t N = StampR.count(8);
    int64_t Prev = -1;
    for (uint32_t I = 0; I != N && StampR.ok(); ++I) {
      uint32_t Idx = StampR.u32();
      uint32_t Len = StampR.count(1);
      if (!StampR.ok())
        break;
      if (Idx >= Nodes.size() || int64_t(Idx) <= Prev) {
        StampR.fail("changed-marks entry out of order or out of range");
        break;
      }
      const FrameShape &Shape = CP.frameOf(Nodes[Idx]->Prod);
      if (Len != unsigned(Shape.NumAttrs) + Shape.NumLocals) {
        StampR.fail("changed-marks length disagrees with the frame shape");
        break;
      }
      Prev = Idx;
      std::vector<uint8_t> Marks(Len);
      for (uint32_t S = 0; S != Len && StampR.ok(); ++S) {
        Marks[S] = StampR.u8();
        if (Marks[S] > 1)
          StampR.fail("changed mark byte out of range");
      }
      NewChanged[Nodes[Idx]] = std::move(Marks);
    }
  }
  if (!StampR.ok() || StampR.remaining() != 0)
    return Rej(StampR, "stamps", "trailing bytes");

  // --- log ----------------------------------------------------------------
  ByteReader LogR = File.section(SecSessLog);
  EditLog NewLog;
  if (!EditLog::decode(LogR, *AG, NewLog) || LogR.remaining() != 0)
    return Rej(LogR, "log", "trailing bytes");

  // --- commit (nothing above mutated the session) -------------------------
  T = std::move(Scratch);
  Strategy = static_cast<UpdateStrategy>(StrategyByte);
  Log = std::move(NewLog);
  RootInh = std::move(NewRootInh);
  for (const auto &[A, V] : RootInh)
    IE.setRootInherited(A, V);
  IE.Dirty.clear();
  IE.EditSites.clear();
  IE.LexemeChanged.clear();
  IE.WriteClock = NewClock;
  IE.LastWrite = std::move(NewLastWrite);
  IE.RevisitStamp = std::move(NewRevisit);
  IE.Changed = std::move(NewChanged);
  Started = true;
  return true;
}

//===----------------------------------------------------------------------===//
// SessionStore
//===----------------------------------------------------------------------===//

std::string SessionStore::pathFor(const AttributeGrammar &AG,
                                  const std::string &Name) const {
  char Hex[17];
  std::snprintf(Hex, sizeof(Hex), "%016llx",
                static_cast<unsigned long long>(
                    IncrementalSession::fileKey(AG)));
  return Dir + "/" + Hex + "-" + Name + ".fnc2sess";
}

bool SessionStore::store(const IncrementalSession &S, const std::string &Name,
                         std::string &Reason) const {
  std::vector<uint8_t> Bytes;
  if (!S.encode(Bytes, Reason))
    return false;

  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  const std::string Path = pathFor(S.grammar(), Name);
  static std::atomic<uint64_t> Counter{0};
  const std::string Tmp =
      Path + ".tmp." + std::to_string(static_cast<unsigned long>(::getpid())) +
      "." + std::to_string(Counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Reason = "cannot open temp file for writing";
      return false;
    }
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good()) {
      Reason = "short write";
      Out.close();
      std::filesystem::remove(Tmp, Ec);
      return false;
    }
  }
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    Reason = "rename failed: " + Ec.message();
    std::filesystem::remove(Tmp, Ec);
    return false;
  }
  return true;
}

bool SessionStore::load(IncrementalSession &S, const std::string &Name,
                        std::string &Reason) const {
  const std::string Path = pathFor(S.grammar(), Name);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Reason = "no session file at " + Path;
    return false;
  }
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  if (!In.good() && !In.eof()) {
    Reason = "read error";
    return false;
  }
  return S.restore(Bytes, Reason);
}
