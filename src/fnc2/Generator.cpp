//===- fnc2/Generator.cpp -------------------------------------------------===//

#include "fnc2/Generator.h"

#include "fnc2/ArtifactCache.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace fnc2;

/// The cascade proper (figure 3), cache-oblivious.
static GeneratedEvaluator runCascade(const AttributeGrammar &AG,
                                     DiagnosticEngine &Diags,
                                     const GeneratorOptions &Opts) {
  GeneratedEvaluator G;
  Timer Phase;

  // Phase 1: SNC test; abort with the circularity trace on failure.
  {
    FNC2_SPAN("generate.snc");
    G.Classes.Snc = runSncTest(AG, Opts.Gfa);
  }
  G.Times.Snc = Phase.seconds();
  if (!G.Classes.Snc.IsSNC) {
    G.Classes.Class = AgClass::NotSNC;
    G.Trace = formatCircularityTrace(AG, G.Classes.Snc.Witness,
                                     &G.Classes.Snc.IO, nullptr);
    Diags.error("grammar '" + AG.Name +
                "' is not strongly non-circular:\n" + G.Trace);
    return G;
  }
  G.Classes.Class = AgClass::SNC;

  // Phase 2: DNC test.
  Phase.reset();
  {
    FNC2_SPAN("generate.dnc");
    G.Classes.Dnc = runDncTest(AG, G.Classes.Snc, Opts.Gfa);
  }
  G.Classes.DncRan = true;
  G.Times.Dnc = Phase.seconds();
  if (G.Classes.Dnc.IsDNC)
    G.Classes.Class = AgClass::DNC;

  // Phase 3: OAG(k) test, only when DNC succeeded (figure 3's cascade).
  if (G.Classes.Dnc.IsDNC) {
    Phase.reset();
    {
      FNC2_SPAN("generate.oag");
      G.Classes.Oag = runOagTest(AG, Opts.OagK, Opts.Gfa);
    }
    G.Classes.OagRan = true;
    G.Times.Oag = Phase.seconds();
    if (G.Classes.Oag.IsOAG)
      G.Classes.Class = AgClass::OAG;
  }

  // Phase 4: total orders — either directly from the OAG partitions or via
  // the SNC-to-l-ordered transformation.
  Phase.reset();
  {
    FNC2_SPAN("generate.transform");
    if (G.Classes.Class == AgClass::OAG) {
      G.Transform = uniformInstances(AG, G.Classes.Oag.Partitions);
    } else {
      G.Transform = sncToLOrdered(AG, G.Classes.Snc, Opts.Reuse);
    }
  }
  G.Times.Transform = Phase.seconds();
  if (!G.Transform.Success) {
    Diags.error("transformation failed for grammar '" + AG.Name +
                "': " + G.Transform.FailureReason);
    return G;
  }

  // Phase 5: visit sequences.
  Phase.reset();
  {
    FNC2_SPAN("generate.visitseq");
    if (!buildVisitSequences(AG, G.Transform, G.Plan, Diags))
      return G;
  }
  G.Times.VisitSeq = Phase.seconds();

  // Phase 6: space optimization (memory map).
  if (Opts.SpaceOptimize) {
    Phase.reset();
    FNC2_SPAN("generate.storage");
    G.Storage = analyzeStorage(AG, G.Plan);
    G.Times.Storage = Phase.seconds();
  }

  G.Success = true;
  return G;
}

GeneratedEvaluator fnc2::generateEvaluator(const AttributeGrammar &AG,
                                           DiagnosticEngine &Diags,
                                           GeneratorOptions Opts) {
  FNC2_SPAN("generate");
  if (Opts.CacheDir.empty())
    return runCascade(AG, Diags, Opts);

  ArtifactCache Cache(Opts.CacheDir);
  {
    FNC2_SPAN("cache.load");
    GeneratedEvaluator Cached;
    std::string Reason;
    switch (Cache.load(AG, Opts, Cached, Reason)) {
    case CacheLookup::Hit:
      FNC2_COUNT("generator.cache.hit", 1);
      return Cached;
    case CacheLookup::Reject:
      // A bad file falls through to regeneration, which overwrites it.
      FNC2_COUNT("generator.cache.reject", 1);
      Diags.note("rejecting cached artifact for '" + AG.Name +
                 "': " + Reason);
      break;
    case CacheLookup::Miss:
      FNC2_COUNT("generator.cache.miss", 1);
      break;
    }
  }

  GeneratedEvaluator G = runCascade(AG, Diags, Opts);
  if (G.Success) {
    FNC2_SPAN("cache.store");
    if (Cache.store(AG, Opts, G))
      FNC2_COUNT("generator.cache.store", 1);
    else
      FNC2_COUNT("generator.cache.store_failure", 1);
  }
  return G;
}

Table1Row GeneratedEvaluator::statsRow(const AttributeGrammar &AG) const {
  Table1Row Row;
  Row.Name = AG.Name;
  Row.Phyla = AG.numPhyla();
  Row.Operators = AG.numProds();
  Row.OccAttrs = AG.numAttrOccurrences();
  Row.SemRules = AG.numRules();
  Row.ClassName = Classes.className();
  Row.PctVars = Storage.pctVariables();
  Row.PctStacks = Storage.pctStacks();
  Row.PctNonTemp = Storage.pctTree();
  Row.NumVariables = Storage.NumVarGroups;
  Row.NumStacks = Storage.NumStackGroups;
  Row.PctElimOfCopy =
      Storage.TotalCopyRules == 0
          ? 0.0
          : 100.0 * Storage.EliminatedCopyRules / Storage.TotalCopyRules;
  Row.PctElimOfPoss =
      Storage.EliminableCopyRules == 0
          ? 0.0
          : 100.0 * Storage.EliminatedCopyRules / Storage.EliminableCopyRules;
  Row.AvgPartitions = Transform.AvgPartitionsPerPhylum;
  Row.MaxPartitions = Transform.MaxPartitionsPerPhylum;
  Row.TimeSec = Times.total();
  return Row;
}
