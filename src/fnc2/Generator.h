//===- fnc2/Generator.h - The evaluator generator ---------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluator generator (paper section 3.1 and figure 3), the engine of
/// the system: from an abstract AG it runs the cascade
///
///   SNC test -> DNC test -> OAG(k) test -> (on OAG failure) SNC-to-l-
///   ordered transformation -> visit-sequence generation -> space
///   optimization
///
/// and produces an abstract evaluator: visit sequences, memory map and
/// statistics. A failed SNC test aborts with a circularity trace. The DNC
/// phase both enables incremental evaluation and, when OAG fails, seeds the
/// transformation (cascading costs the same as running the OAG test from
/// scratch because each phase extends the previous one's relations).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_FNC2_GENERATOR_H
#define FNC2_FNC2_GENERATOR_H

#include "analysis/Classify.h"
#include "ordered/Transform.h"
#include "storage/Lifetime.h"
#include "visitseq/VisitSequence.h"

namespace fnc2 {

struct GeneratorOptions {
  /// Repair budget for the OAG test (paper default: OAG(0); AG 7 was found
  /// OAG(1) by trial and error).
  unsigned OagK = 0;
  /// Partition-reuse discipline of the transformation.
  ReuseMode Reuse = ReuseMode::LongInclusion;
  /// Run the space optimizer (off reproduces the development mode that
  /// skips memory mapping).
  bool SpaceOptimize = true;
  /// Fixpoint formulation and parallel-round gate for the three class tests.
  GfaOptions Gfa;
};

/// Wall-clock seconds per generator phase (figure 3's boxes).
struct GeneratorPhaseTimes {
  double Snc = 0, Dnc = 0, Oag = 0, Transform = 0, VisitSeq = 0, Storage = 0;
  double total() const {
    return Snc + Dnc + Oag + Transform + VisitSeq + Storage;
  }
};

/// One row of the paper's Table 1.
struct Table1Row {
  std::string Name;
  unsigned Phyla = 0;
  unsigned Operators = 0;
  unsigned OccAttrs = 0;
  unsigned SemRules = 0;
  std::string ClassName;
  double PctVars = 0, PctStacks = 0, PctNonTemp = 0;
  unsigned NumVariables = 0;
  unsigned NumStacks = 0;
  double PctElimOfCopy = 0; ///< eliminated / all copy rules.
  double PctElimOfPoss = 0; ///< eliminated / theoretically eliminable.
  double AvgPartitions = 0;
  unsigned MaxPartitions = 0;
  double TimeSec = 0;
};

/// The abstract evaluator plus everything the statistics report needs.
struct GeneratedEvaluator {
  bool Success = false;
  ClassifyResult Classes;
  TransformResult Transform;
  EvaluationPlan Plan;
  StorageAssignment Storage;
  GeneratorPhaseTimes Times;
  /// Circularity trace when the SNC test rejected the grammar.
  std::string Trace;

  Table1Row statsRow(const AttributeGrammar &AG) const;
};

/// Runs the full generator over \p AG (which must be finalized). Reports
/// failures through \p Diags; on SNC failure the trace is also attached.
GeneratedEvaluator generateEvaluator(const AttributeGrammar &AG,
                                     DiagnosticEngine &Diags,
                                     GeneratorOptions Opts = {});

} // namespace fnc2

#endif // FNC2_FNC2_GENERATOR_H
