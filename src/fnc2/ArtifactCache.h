//===- fnc2/ArtifactCache.h - Persistent generator artifacts ----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistent generator-artifact cache: the warm-start analogue of
/// FNC-2's mkfnc2 driver (paper section 3.1), which only re-runs generator
/// phases whose inputs changed. The whole front half of the system — the
/// SNC/DNC/OAG cascade, the transformation, visit-sequence generation, the
/// space optimization, and the compiled instruction streams derived from
/// them — is a pure function of the abstract grammar and the generator
/// options, so its output is serialized once (content-addressed by a hash
/// of both) and reloaded on every later process start.
///
/// Trust model: a cached artifact is advisory, never authoritative. Loads
/// validate the container (magic, format version, content key, section
/// CRCs; see serialize/ArtifactFile.h) and then every semantic invariant a
/// decoder relies on (ids in range, parallel arrays of equal length, slot
/// tables sized to the live grammar). Anything that fails is a clean
/// rejection with a reason — the generator falls back to the cascade and
/// overwrites the bad file. Stores are atomic (temp file + rename), so a
/// reader never observes a half-written artifact even under concurrent
/// writers racing on one cache directory.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_FNC2_ARTIFACTCACHE_H
#define FNC2_FNC2_ARTIFACTCACHE_H

#include "eval/CompiledPlan.h"
#include "fnc2/Generator.h"
#include "storage/StorageEvaluator.h"

namespace fnc2 {

/// The compiled image of a generated evaluator, anchored to its own copy of
/// the evaluation plan so the bundle stays self-contained when the owning
/// GeneratedEvaluator is moved or copied. Heap-allocated and immutable
/// behind a shared_ptr; CP.plan() is this bundle's Plan member.
struct CompiledArtifact {
  EvaluationPlan Plan;
  CompiledPlan CP;
  CompiledStorage CS;
  /// False when the artifact was generated with SpaceOptimize off: CS is
  /// then empty and storage-aware engines cannot borrow it.
  bool HasStorage = false;

private:
  friend struct ArtifactCodec;
  CompiledArtifact() = default;
};

/// Counters one cache instance accumulated (also emitted as
/// generator.cache.* trace counters by the generator integration).
struct ArtifactCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;   ///< No artifact file existed for the key.
  uint64_t Rejects = 0;  ///< A file existed but failed validation.
  uint64_t Stores = 0;
  uint64_t StoreFailures = 0;
};

/// Outcome of one cache lookup.
enum class CacheLookup : uint8_t { Hit, Miss, Reject };

/// A content-addressed artifact store in one directory (created on first
/// store). Instances are cheap to construct and keep no open handles; all
/// coordination is through the filesystem's atomic rename.
class ArtifactCache {
public:
  explicit ArtifactCache(std::string Dir) : Dir(std::move(Dir)) {}

  /// The stable content hash keying artifacts: a canonical encoding of the
  /// grammar's full structure (phyla, attributes, productions, rules with
  /// function names and flags) and of every output-affecting generator
  /// option. GfaOptions are excluded — both fixpoint formulations produce
  /// identical results (pinned by CascadeDifferentialTest).
  static uint64_t artifactKey(const AttributeGrammar &AG,
                              const GeneratorOptions &Opts);

  /// Hash of the grammar's canonical encoding alone, with no generator
  /// options mixed in. Edit logs and persisted incremental sessions key
  /// their containers off this (salted per file kind), so they bind to the
  /// language rather than to one generator configuration.
  static uint64_t grammarKey(const AttributeGrammar &AG);

  /// Path the artifact for \p Key lives at inside this cache.
  std::string pathFor(uint64_t Key) const;

  /// Tries to load the artifact for (AG, Opts) into \p G. On Hit, G is a
  /// complete successful GeneratedEvaluator (verdicts, transform, plan,
  /// storage, compiled bundle) bound to \p AG, with FromCache set and
  /// zeroed phase times. On Miss/Reject, G is untouched and \p Reason says
  /// why (empty on a plain miss).
  CacheLookup load(const AttributeGrammar &AG, const GeneratorOptions &Opts,
                   GeneratedEvaluator &G, std::string &Reason);

  /// Serializes \p G (which must be a successful generation for \p AG) and
  /// atomically installs it for (AG, Opts). Returns false on I/O failure;
  /// never throws. Fills G.Compiled with the bundle it serialized when the
  /// caller has not already built one.
  bool store(const AttributeGrammar &AG, const GeneratorOptions &Opts,
             GeneratedEvaluator &G);

  /// Serializes \p G exactly as store() would, without touching the disk
  /// (the golden-artifact test and the fuzzers build images in memory).
  static std::vector<uint8_t> encode(const AttributeGrammar &AG,
                                     const GeneratorOptions &Opts,
                                     const GeneratedEvaluator &G);

  /// Decodes \p Bytes against the live grammar, with full validation.
  /// Returns false with a reason on any rejection.
  static bool decode(std::span<const uint8_t> Bytes,
                     const AttributeGrammar &AG, const GeneratorOptions &Opts,
                     GeneratedEvaluator &G, std::string &Reason);

  const ArtifactCacheStats &stats() const { return Stats; }

private:
  std::string Dir;
  ArtifactCacheStats Stats;
};

/// Builds (or reuses) the shared compiled bundle for a successful
/// generation without touching the disk: returns G.Compiled when the
/// generator or a cache store already produced one, otherwise compiles a
/// fresh self-contained bundle from G's plan (and storage layout when
/// \p WithStorage). This is how concurrent incremental sessions obtain the
/// one immutable CompiledPlan they all borrow.
std::shared_ptr<const CompiledArtifact>
compileArtifact(const GeneratedEvaluator &G, bool WithStorage = true);

} // namespace fnc2

#endif // FNC2_FNC2_ARTIFACTCACHE_H
