//===- ordered/Partition.h - Totally-ordered attribute partitions -*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Totally-ordered partitions of a phylum's attributes: the alternating
/// inherited/synthesized blocks that define the visit protocol of a phylum
/// (paper section 2.1.1). Kastens' OAG test computes one per phylum; the
/// SNC-to-l-ordered transformation computes sets of them and tries to keep
/// those sets small via long inclusion.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_ORDERED_PARTITION_H
#define FNC2_ORDERED_PARTITION_H

#include "grammar/AttributeGrammar.h"
#include "support/BitMatrix.h"
#include "support/Digraph.h"

#include <optional>

namespace fnc2 {

/// One block of a totally-ordered partition; attributes are identified by
/// their local index within the owning phylum and kept sorted.
struct POBlock {
  AttrKind Kind = AttrKind::Inherited;
  std::vector<unsigned> Attrs;

  bool operator==(const POBlock &O) const {
    return Kind == O.Kind && Attrs == O.Attrs;
  }
};

/// A totally-ordered partition of the attributes of one phylum. Invariants:
/// no empty blocks; adjacent blocks alternate kinds. Visit v consists of the
/// inherited block (if any) immediately preceding the v-th synthesized block
/// plus that synthesized block; a trailing inherited block forms a final
/// visit that returns nothing.
class TotallyOrderedPartition {
public:
  std::vector<POBlock> Blocks;

  /// Builds a partition from a linear order of attribute local indices by
  /// grouping maximal same-kind runs.
  static TotallyOrderedPartition
  fromLinear(const AttributeGrammar &AG, PhylumId P,
             const std::vector<unsigned> &Order);

  /// Builds a partition by peeling a dependency relation DS (entry (a, b)
  /// meaning a before b) from the last block backwards, synthesized last.
  /// Returns std::nullopt when DS is cyclic.
  static std::optional<TotallyOrderedPartition>
  fromRelation(const AttributeGrammar &AG, PhylumId P, const BitMatrix &DS);

  bool operator==(const TotallyOrderedPartition &O) const {
    return Blocks == O.Blocks;
  }

  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }

  /// Number of visits this protocol requires (>= 1 even for attribute-less
  /// phyla, which still get one structural visit).
  unsigned numVisits() const;

  /// 1-based visit number during which attribute \p AttrLocalIdx is made
  /// available (inherited: passed down at BEGIN; synthesized: computed).
  unsigned visitOf(unsigned AttrLocalIdx) const;

  /// 0-based block index of an attribute; asserts if absent.
  unsigned blockOf(unsigned AttrLocalIdx) const;

  /// Adds the between-block order edges to \p G: every attribute of block i
  /// precedes every attribute of block i+1 (transitively a total order of
  /// blocks). \p Base is the occurrence id of the phylum's first attribute.
  void addOrderEdges(Digraph &G, OccId Base) const;

  /// Human-readable rendering, e.g. "[inh: env | syn: type | syn: code]".
  std::string str(const AttributeGrammar &AG, PhylumId P) const;
};

} // namespace fnc2

#endif // FNC2_ORDERED_PARTITION_H
