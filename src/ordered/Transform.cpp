//===- ordered/Transform.cpp ----------------------------------------------===//

#include "ordered/Transform.h"

#include "support/Trace.h"

#include <algorithm>
#include <deque>

using namespace fnc2;

const TransformInstance *TransformResult::findInstance(ProdId P,
                                                       unsigned LhsPart) const {
  for (const TransformInstance &I : Instances[P])
    if (I.LhsPart == LhsPart)
      return &I;
  return nullptr;
}

namespace {

/// Shared helpers over one grammar + IO relations.
class Transformer {
public:
  Transformer(const AttributeGrammar &AG, const SncResult &Snc, ReuseMode Mode)
      : AG(AG), Snc(Snc), Mode(Mode) {}

  /// Warm-start candidates tried (and registered on first use) before any
  /// fresh partition is derived; this implements the paper's retroactive
  /// replacement: re-running with the previous run's partitions, finest
  /// first, lets a finer partition discovered late replace coarser ones in
  /// the productions that generated them.
  std::vector<std::vector<TotallyOrderedPartition>> WarmStart;

  TransformResult run();

private:
  /// Occurrence id of the first attribute of the symbol at \p Pos, or
  /// InvalidId when the symbol has no attributes.
  OccId symbolBase(ProdId P, unsigned Pos) const {
    const Production &Pr = AG.prod(P);
    PhylumId Phy = Pos == 0 ? Pr.Lhs : Pr.Rhs[Pos - 1];
    if (AG.phylum(Phy).Attrs.empty())
      return InvalidId;
    return AG.info(P).occId(
        AttrOcc::onSymbol(Pos, AG.phylum(Phy).Attrs.front()));
  }

  /// Topological order preferring inherited attributes early and
  /// synthesized ones late; this canonicalization keeps induced partitions
  /// coarse and deterministic.
  std::optional<std::vector<OccId>> linearize(ProdId P,
                                              const Digraph &G) const {
    const ProductionInfo &PI = AG.info(P);
    auto Priority = [&](unsigned N) -> uint64_t {
      const AttrOcc &O = PI.Occs[N];
      if (!O.isOnSymbol())
        return 1; // locals/lexeme: neutral
      return AG.attr(O.Attr).isSynthesized() ? 2 : 0;
    };
    auto Order = G.topologicalOrder(Priority);
    if (!Order)
      return std::nullopt;
    return std::vector<OccId>(Order->begin(), Order->end());
  }

  /// Extracts the induced partition of the symbol at \p Pos from a linear
  /// occurrence order.
  TotallyOrderedPartition inducedPartition(ProdId P, unsigned Pos,
                                           const std::vector<OccId> &L) const {
    const ProductionInfo &PI = AG.info(P);
    const Production &Pr = AG.prod(P);
    PhylumId Phy = Pos == 0 ? Pr.Lhs : Pr.Rhs[Pos - 1];
    std::vector<unsigned> AttrOrder;
    for (OccId O : L) {
      const AttrOcc &Occ = PI.Occs[O];
      if (Occ.isOnSymbol() && Occ.Pos == Pos)
        AttrOrder.push_back(AG.attr(Occ.Attr).IndexInOwner);
    }
    return TotallyOrderedPartition::fromLinear(AG, Phy, AttrOrder);
  }

  /// Registers \p Part for phylum \p X (unless an equal one exists) and
  /// enqueues the productions of X for the new partition. Returns its index.
  unsigned registerPartition(PhylumId X, TotallyOrderedPartition Part) {
    auto &Parts = Result.Partitions[X];
    for (unsigned I = 0; I != Parts.size(); ++I)
      if (Parts[I] == Part)
        return I;
    Parts.push_back(std::move(Part));
    unsigned Idx = static_cast<unsigned>(Parts.size() - 1);
    for (ProdId P : AG.phylum(X).Prods)
      Work.push_back({P, Idx});
    return Idx;
  }

  /// Processes one (production, LHS partition) pair; returns false on an
  /// unexpected cycle (non-SNC input or internal inconsistency).
  bool processPair(ProdId P, unsigned LhsPartIdx);

  const AttributeGrammar &AG;
  const SncResult &Snc;
  ReuseMode Mode;
  TransformResult Result;
  std::deque<std::pair<ProdId, unsigned>> Work;
};

} // namespace

bool Transformer::processPair(ProdId P, unsigned LhsPartIdx) {
  if (Result.findInstance(P, LhsPartIdx))
    return true;
  const Production &Pr = AG.prod(P);
  ++Result.Iterations;

  // Base graph: DP(p) + IO on children + LHS partition order.
  AugmentOptions Opts;
  Opts.Below = &Snc.IO;
  Digraph G = buildAugmentedGraph(AG, P, Opts);
  if (OccId Base = symbolBase(P, 0); Base != InvalidId)
    Result.Partitions[Pr.Lhs][LhsPartIdx].addOrderEdges(G, Base);
  if (G.hasCycle()) {
    Result.FailureReason = "augmented graph of operator '" + Pr.Name +
                           "' became cyclic under the LHS partition";
    return false;
  }

  TransformInstance Inst;
  Inst.LhsPart = LhsPartIdx;
  Inst.ChildPart.assign(Pr.arity(), InvalidId);

  // Long inclusion: greedily bend the order to fit existing partitions,
  // child by child, committing constraints as we go. Warm-start candidates
  // from a previous run are tried after the already-registered ones and
  // registered on first successful use.
  if (Mode == ReuseMode::LongInclusion) {
    for (unsigned C = 0; C != Pr.arity(); ++C) {
      PhylumId Child = Pr.Rhs[C];
      OccId Base = symbolBase(P, C + 1);
      if (Base == InvalidId) {
        // Attribute-less phylum: its single (empty) partition always fits.
        Inst.ChildPart[C] = registerPartition(Child, TotallyOrderedPartition());
        continue;
      }
      auto tryPartition = [&](const TotallyOrderedPartition &Part) {
        Digraph Tentative = G;
        Part.addOrderEdges(Tentative, Base);
        if (Tentative.hasCycle())
          return false;
        G = std::move(Tentative);
        return true;
      };
      for (unsigned I = 0;
           I != Result.Partitions[Child].size() &&
           Inst.ChildPart[C] == InvalidId;
           ++I)
        if (tryPartition(Result.Partitions[Child][I]))
          Inst.ChildPart[C] = I;
      if (Inst.ChildPart[C] == InvalidId && Child < WarmStart.size())
        for (const TotallyOrderedPartition &Cand : WarmStart[Child])
          if (tryPartition(Cand)) {
            Inst.ChildPart[C] = registerPartition(Child, Cand);
            break;
          }
    }
  } else {
    for (unsigned C = 0; C != Pr.arity(); ++C)
      if (symbolBase(P, C + 1) == InvalidId)
        Inst.ChildPart[C] =
            registerPartition(Pr.Rhs[C], TotallyOrderedPartition());
  }

  // Linearize once with all committed constraints; derive partitions for
  // the still-unresolved children from the induced orders.
  auto L = linearize(P, G);
  if (!L) {
    Result.FailureReason =
        "no linear order for operator '" + Pr.Name + "'";
    return false;
  }
  for (unsigned C = 0; C != Pr.arity(); ++C) {
    if (Inst.ChildPart[C] != InvalidId)
      continue;
    TotallyOrderedPartition Induced = inducedPartition(P, C + 1, *L);
    Inst.ChildPart[C] = registerPartition(Pr.Rhs[C], std::move(Induced));
  }
  Inst.Linear = std::move(*L);
  Result.Instances[P].push_back(std::move(Inst));
  return true;
}

TransformResult Transformer::run() {
  Result.Partitions.resize(AG.numPhyla());
  Result.Instances.resize(AG.numProds());

  // Seed: the start phylum's partition is a linear extension of IO(start)
  // with inherited attributes pulled early.
  PhylumId Start = AG.Start;
  unsigned N = static_cast<unsigned>(AG.phylum(Start).Attrs.size());
  Digraph StartG(N);
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (A != B && Snc.IO[Start].test(A, B))
        StartG.addEdge(A, B);
  auto Priority = [&](unsigned A) -> uint64_t {
    return AG.attr(AG.phylum(Start).Attrs[A]).isSynthesized() ? 1 : 0;
  };
  auto StartOrder = StartG.topologicalOrder(Priority);
  if (!StartOrder) {
    Result.FailureReason = "IO relation of the start phylum is cyclic";
    return std::move(Result);
  }
  Result.RootPartition = registerPartition(
      Start, TotallyOrderedPartition::fromLinear(AG, Start, *StartOrder));

  while (!Work.empty()) {
    auto [P, Idx] = Work.front();
    Work.pop_front();
    if (!processPair(P, Idx))
      return std::move(Result);
  }

  // Statistics.
  unsigned Phyla = 0;
  for (PhylumId X = 0; X != AG.numPhyla(); ++X) {
    unsigned K = static_cast<unsigned>(Result.Partitions[X].size());
    Result.TotalPartitions += K;
    Result.MaxPartitionsPerPhylum =
        std::max(Result.MaxPartitionsPerPhylum, K);
    if (K != 0)
      ++Phyla;
  }
  Result.AvgPartitionsPerPhylum =
      Phyla == 0 ? 0.0 : double(Result.TotalPartitions) / Phyla;
  for (const auto &Insts : Result.Instances)
    Result.NumInstances += static_cast<unsigned>(Insts.size());
  Result.Success = true;
  return std::move(Result);
}

TransformResult fnc2::sncToLOrdered(const AttributeGrammar &AG,
                                    const SncResult &Snc, ReuseMode Mode) {
  FNC2_SPAN("transform.snc_to_lordered");
  assert(Snc.IsSNC && "transformation requires a strongly non-circular AG");
  Transformer First(AG, Snc, Mode);
  TransformResult Best = First.run();
  if (Mode != ReuseMode::LongInclusion || !Best.Success)
    return Best;

  // Retroactive replacement (paper section 2.1.1): re-run with the previous
  // run's partitions as warm-start candidates, finest (most blocks) first —
  // a replacing partition must have at least as many sets as the replaced
  // one — until the total partition count stops shrinking.
  for (unsigned Round = 0; Round != 4; ++Round) {
    FNC2_COUNT("transform.retro_rounds", 1);
    Transformer Next(AG, Snc, Mode);
    Next.WarmStart = Best.Partitions;
    for (auto &Cands : Next.WarmStart)
      std::stable_sort(Cands.begin(), Cands.end(),
                       [](const TotallyOrderedPartition &A,
                          const TotallyOrderedPartition &B) {
                         return A.numBlocks() > B.numBlocks();
                       });
    TransformResult R = Next.run();
    R.Iterations += Best.Iterations;
    if (!R.Success || R.TotalPartitions >= Best.TotalPartitions)
      break;
    Best = std::move(R);
  }
  return Best;
}

TransformResult
fnc2::uniformInstances(const AttributeGrammar &AG,
                       const std::vector<TotallyOrderedPartition> &Parts) {
  FNC2_SPAN("transform.uniform_instances");
  TransformResult R;
  R.Partitions.resize(AG.numPhyla());
  R.Instances.resize(AG.numProds());
  for (PhylumId X = 0; X != AG.numPhyla(); ++X)
    R.Partitions[X].push_back(Parts[X]);
  R.RootPartition = 0;

  for (ProdId P = 0; P != AG.numProds(); ++P) {
    const Production &Pr = AG.prod(P);
    const ProductionInfo &PI = AG.info(P);
    Digraph G(PI.numOccs());
    G.unionEdges(PI.DepGraph);
    auto paste = [&](PhylumId Phy, unsigned Pos) {
      if (AG.phylum(Phy).Attrs.empty())
        return;
      OccId Base =
          PI.occId(AttrOcc::onSymbol(Pos, AG.phylum(Phy).Attrs.front()));
      Parts[Phy].addOrderEdges(G, Base);
    };
    paste(Pr.Lhs, 0);
    for (unsigned C = 0; C != Pr.arity(); ++C)
      paste(Pr.Rhs[C], C + 1);

    auto Priority = [&](unsigned Node) -> uint64_t {
      const AttrOcc &O = PI.Occs[Node];
      if (!O.isOnSymbol())
        return 1;
      return AG.attr(O.Attr).isSynthesized() ? 2 : 0;
    };
    auto Order = G.topologicalOrder(Priority);
    if (!Order) {
      R.FailureReason = "completed graph of operator '" + Pr.Name +
                        "' is cyclic (not an ordered assignment)";
      return R;
    }
    TransformInstance Inst;
    Inst.LhsPart = 0;
    Inst.ChildPart.assign(Pr.arity(), 0);
    Inst.Linear.assign(Order->begin(), Order->end());
    R.Instances[P].push_back(std::move(Inst));
    ++R.NumInstances;
  }
  R.TotalPartitions = AG.numPhyla();
  R.AvgPartitionsPerPhylum = 1.0;
  R.MaxPartitionsPerPhylum = 1;
  R.Success = true;
  return R;
}
