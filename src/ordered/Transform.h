//===- ordered/Transform.h - SNC to l-ordered transformation ----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SNC-to-l-ordered transformation (paper section 2.1.1, after
/// Engelfriet & File [11] and Riis-Nielson [45]): a top-down fixpoint
/// computing, for each phylum, a set of totally-ordered partitions of its
/// attributes, and for each (production, LHS partition) pair the induced
/// partitions of the RHS phyla plus a linear evaluation order from which a
/// visit sequence can be generated. The transformed grammar is never built
/// explicitly; VISIT instructions carry the partition to use on the visited
/// node.
///
/// Two partition-reuse disciplines are provided:
///  * Equality — the classical transformation: a newly induced partition is
///    shared only with an identical existing one (can proliferate
///    exponentially);
///  * LongInclusion — the paper's contribution [40]: before deriving a fresh
///    partition for a RHS occurrence, try to *bend the topological order* so
///    that an existing partition of that phylum fits the local dependencies
///    (and, greedily, the partitions already committed for the other RHS
///    occurrences — the paper's polynomial-but-not-strictly-necessary
///    condition). On practical grammars this collapses the partition count
///    to about one per phylum.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_ORDERED_TRANSFORM_H
#define FNC2_ORDERED_TRANSFORM_H

#include "analysis/Circularity.h"
#include "ordered/Partition.h"

namespace fnc2 {

enum class ReuseMode : uint8_t { Equality, LongInclusion };

/// One visit-sequence source: a production together with a choice of LHS
/// partition, the committed RHS partitions and a compatible linear order of
/// all occurrences.
struct TransformInstance {
  unsigned LhsPart = 0;
  std::vector<unsigned> ChildPart;
  std::vector<OccId> Linear;

  bool operator==(const TransformInstance &) const = default;
};

/// Output of the transformation (also produced, trivially, from an OAG
/// result so the visit-sequence generator has a single input format).
struct TransformResult {
  bool Success = false;
  std::string FailureReason;

  /// Partition sets per phylum; indices are the partition ids VISIT carries.
  std::vector<std::vector<TotallyOrderedPartition>> Partitions;
  /// Instances per production, one per explored LHS partition.
  std::vector<std::vector<TransformInstance>> Instances;
  /// Index (within Partitions[Start]) of the partition evaluation starts
  /// from at the root.
  unsigned RootPartition = 0;

  // Statistics reported by Table 1 / Figure 1 benches.
  unsigned TotalPartitions = 0;
  double AvgPartitionsPerPhylum = 0.0;
  unsigned MaxPartitionsPerPhylum = 0;
  unsigned NumInstances = 0;
  unsigned Iterations = 0;

  bool operator==(const TransformResult &) const = default;

  /// Looks up the instance of \p P with LHS partition \p LhsPart; returns
  /// nullptr when the pair was never explored.
  const TransformInstance *findInstance(ProdId P, unsigned LhsPart) const;
};

/// Runs the transformation over a strongly non-circular grammar.
TransformResult sncToLOrdered(const AttributeGrammar &AG, const SncResult &Snc,
                              ReuseMode Mode = ReuseMode::LongInclusion);

/// Wraps an OAG partition assignment (exactly one partition per phylum) in
/// the TransformResult format: one instance per production, every partition
/// index 0, linear orders taken from the completed production graphs.
TransformResult
uniformInstances(const AttributeGrammar &AG,
                 const std::vector<TotallyOrderedPartition> &Parts);

} // namespace fnc2

#endif // FNC2_ORDERED_TRANSFORM_H
