//===- ordered/Partition.cpp ----------------------------------------------===//

#include "ordered/Partition.h"

#include <algorithm>

using namespace fnc2;

static AttrKind kindOfLocal(const AttributeGrammar &AG, PhylumId P,
                            unsigned LocalIdx) {
  return AG.attr(AG.phylum(P).Attrs[LocalIdx]).Kind;
}

TotallyOrderedPartition
TotallyOrderedPartition::fromLinear(const AttributeGrammar &AG, PhylumId P,
                                    const std::vector<unsigned> &Order) {
  TotallyOrderedPartition Part;
  for (unsigned A : Order) {
    AttrKind K = kindOfLocal(AG, P, A);
    if (Part.Blocks.empty() || Part.Blocks.back().Kind != K)
      Part.Blocks.push_back(POBlock{K, {}});
    Part.Blocks.back().Attrs.push_back(A);
  }
  for (POBlock &B : Part.Blocks)
    std::sort(B.Attrs.begin(), B.Attrs.end());
  return Part;
}

std::optional<TotallyOrderedPartition>
TotallyOrderedPartition::fromRelation(const AttributeGrammar &AG, PhylumId P,
                                      const BitMatrix &DS) {
  unsigned N = static_cast<unsigned>(AG.phylum(P).Attrs.size());
  std::vector<bool> Assigned(N, false);
  unsigned NumAssigned = 0;

  auto canPeel = [&](unsigned A) {
    // A can be placed in the current last block when everything it precedes
    // is already assigned.
    for (unsigned B = 0; B != N; ++B)
      if (!Assigned[B] && B != A && DS.test(A, B))
        return false;
    return true;
  };

  // Peel from the last block backwards, starting with synthesized.
  std::vector<POBlock> Reversed;
  AttrKind Want = AttrKind::Synthesized;
  unsigned EmptyRounds = 0;
  while (NumAssigned != N) {
    POBlock Block;
    Block.Kind = Want;
    for (unsigned A = 0; A != N; ++A)
      if (!Assigned[A] && kindOfLocal(AG, P, A) == Want && canPeel(A))
        Block.Attrs.push_back(A);
    if (Block.Attrs.empty()) {
      if (++EmptyRounds == 2)
        return std::nullopt; // neither kind can make progress: DS is cyclic
    } else {
      EmptyRounds = 0;
      for (unsigned A : Block.Attrs) {
        Assigned[A] = true;
        ++NumAssigned;
      }
      Reversed.push_back(std::move(Block));
    }
    Want = Want == AttrKind::Synthesized ? AttrKind::Inherited
                                         : AttrKind::Synthesized;
  }

  TotallyOrderedPartition Part;
  for (auto It = Reversed.rbegin(); It != Reversed.rend(); ++It) {
    if (!Part.Blocks.empty() && Part.Blocks.back().Kind == It->Kind) {
      // Merge same-kind neighbours produced by empty alternation rounds.
      auto &Dst = Part.Blocks.back().Attrs;
      Dst.insert(Dst.end(), It->Attrs.begin(), It->Attrs.end());
      std::sort(Dst.begin(), Dst.end());
    } else {
      Part.Blocks.push_back(*It);
    }
  }
  return Part;
}

unsigned TotallyOrderedPartition::numVisits() const {
  unsigned Syn = 0;
  for (const POBlock &B : Blocks)
    if (B.Kind == AttrKind::Synthesized)
      ++Syn;
  bool TrailingInh =
      !Blocks.empty() && Blocks.back().Kind == AttrKind::Inherited;
  unsigned V = Syn + (TrailingInh ? 1 : 0);
  return V == 0 ? 1 : V;
}

unsigned TotallyOrderedPartition::visitOf(unsigned AttrLocalIdx) const {
  unsigned Visit = 1;
  for (const POBlock &B : Blocks) {
    bool Contains = std::find(B.Attrs.begin(), B.Attrs.end(), AttrLocalIdx) !=
                    B.Attrs.end();
    if (Contains)
      return Visit;
    if (B.Kind == AttrKind::Synthesized)
      ++Visit;
  }
  assert(false && "attribute not in partition");
  return 1;
}

unsigned TotallyOrderedPartition::blockOf(unsigned AttrLocalIdx) const {
  for (unsigned I = 0; I != Blocks.size(); ++I)
    if (std::find(Blocks[I].Attrs.begin(), Blocks[I].Attrs.end(),
                  AttrLocalIdx) != Blocks[I].Attrs.end())
      return I;
  assert(false && "attribute not in partition");
  return 0;
}

void TotallyOrderedPartition::addOrderEdges(Digraph &G, OccId Base) const {
  for (size_t I = 0; I + 1 < Blocks.size(); ++I)
    for (unsigned A : Blocks[I].Attrs)
      for (unsigned B : Blocks[I + 1].Attrs)
        G.addEdge(Base + A, Base + B);
}

std::string TotallyOrderedPartition::str(const AttributeGrammar &AG,
                                         PhylumId P) const {
  std::string Out = "[";
  for (size_t I = 0; I != Blocks.size(); ++I) {
    if (I)
      Out += " | ";
    Out += Blocks[I].Kind == AttrKind::Inherited ? "inh:" : "syn:";
    for (unsigned A : Blocks[I].Attrs) {
      Out += ' ';
      Out += AG.attr(AG.phylum(P).Attrs[A]).Name;
    }
  }
  Out += "]";
  return Out;
}
