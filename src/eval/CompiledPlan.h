//===- eval/CompiledPlan.h - Flat compiled evaluation plans -----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The plan compiler: lowers an EvaluationPlan's interpreted VisitSequence
/// objects into flat, cache-friendly instruction streams. The paper's claim
/// (sections 3.2, 4) is that visit-sequence evaluators are efficient because
/// the sequences compile to tight code; this is the runtime analogue for our
/// interpreting engines.
///
/// Per (production, LHS partition) the compiler emits one contiguous run of
/// CompiledInstr: BEGINs are dissolved into per-visit start offsets, EVAL
/// rule sets become contiguous ranges of CompiledRule with every argument
/// and target pre-resolved to a frame slot (no AG.attr()/occName lookups at
/// eval time), and VISITs carry the son partition inline. Sequence lookup is
/// a dense (production x partition) table plus a per-node cache, so
/// Plan.find() leaves the hot loop entirely.
///
/// One CompiledPlan is immutable after construction and is shared by every
/// engine — the batch evaluators compile once and hand the same plan to all
/// workers.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_EVAL_COMPILEDPLAN_H
#define FNC2_EVAL_COMPILEDPLAN_H

#include "tree/Tree.h"
#include "visitseq/VisitSequence.h"

namespace fnc2 {

/// Serializer/deserializer of compiled plans (fnc2/ArtifactCache.cpp); the
/// only code allowed to materialize a CompiledPlan from anything but a
/// live EvaluationPlan.
struct ArtifactCodec;
struct CompiledArtifact;

/// Where a compiled rule argument is read from (or a target written to): a
/// frame slot of the node itself, a frame slot of one of its children, or
/// the node's lexeme.
struct SlotRef {
  enum class K : uint8_t { Self, Child, Lexeme };
  K Kind = K::Self;
  uint8_t Child = 0; ///< 0-based son index, valid for K::Child.
  uint16_t Slot = 0; ///< Frame slot (attribute slots first, locals after).

  bool operator==(const SlotRef &) const = default;
};

/// One semantic rule with pre-resolved argument and target slots.
struct CompiledRule {
  const SemanticFn *Fn = nullptr; ///< Null when the rule lacks a function.
  uint32_t FirstArg = 0;          ///< Into CompiledPlan::Args.
  uint16_t NumArgs = 0;
  bool IsCopy = false;
  SlotRef Target; ///< Never K::Lexeme.
  RuleId Orig = InvalidId;

  /// Fn compares by address: two compilations (or one compilation and one
  /// cache reload) against the same live grammar resolve a rule to the same
  /// SemanticFn object.
  bool operator==(const CompiledRule &) const = default;
};

/// One flat instruction. BEGIN is compiled away: each visit's body starts at
/// the offset the owning sequence records and runs to its Leave.
struct CompiledInstr {
  enum class Op : uint8_t { Eval, Visit, Leave };
  Op Kind = Op::Leave;
  uint8_t Child = 0;    ///< Visit: 0-based son index.
  uint16_t VisitNo = 0; ///< Visit: the son's visit number; Leave: own.
  uint32_t A = 0;       ///< Eval: first index into Rules; Visit: son partition.
  uint32_t B = 0;       ///< Eval: number of rules.

  bool operator==(const CompiledInstr &) const = default;
};

/// Frame geometry of nodes applying one production.
struct FrameShape {
  uint16_t NumAttrs = 0;
  uint16_t NumLocals = 0;

  bool operator==(const FrameShape &) const = default;
};

/// The compiled form of one (production, LHS partition) visit sequence.
struct CompiledSeq {
  ProdId Prod = InvalidId;
  unsigned Partition = 0;
  unsigned NumVisits = 0;
  uint32_t FirstInstr = 0; ///< Into CompiledPlan::Instrs.
  uint32_t FirstBegin = 0; ///< Into CompiledPlan::BeginOfs, NumVisits entries.
  FrameShape Frame;        ///< == Frames[Prod], duplicated for locality.

  bool operator==(const CompiledSeq &) const = default;
};

/// An attribute paired with its frame slot (phylum-indexed helper lists).
struct SlotAttr {
  AttrId Attr = InvalidId;
  uint16_t Slot = 0;

  bool operator==(const SlotAttr &) const = default;
};

/// Immutable compiled image of an EvaluationPlan. Construction resolves
/// every occurrence to a slot once; evaluation touches only the flat pools.
class CompiledPlan {
public:
  explicit CompiledPlan(const EvaluationPlan &Plan);

  const EvaluationPlan &plan() const { return *Src; }
  const AttributeGrammar &grammar() const { return *Src->AG; }

  /// Dense (production, partition) sequence lookup.
  const CompiledSeq *seqFor(ProdId P, unsigned Part) const {
    if (Part >= MaxPartition)
      return nullptr;
    int32_t I = SeqTable[size_t(P) * MaxPartition + Part];
    return I < 0 ? nullptr : &Seqs[static_cast<size_t>(I)];
  }

  /// Cached per-node lookup. Caches are nulled by Tree::resetAttributes(),
  /// and within one evaluation only a single plan touches the tree, so a
  /// non-null cache with a matching partition is this plan's.
  const CompiledSeq *seqForNode(TreeNode *N) const {
    if (const auto *S = static_cast<const CompiledSeq *>(N->SeqCache);
        S && S->Partition == N->PartitionId) {
      assert(S->Prod == N->Prod && "sequence cache crossed productions");
      return S;
    }
    const CompiledSeq *S = seqFor(N->Prod, N->PartitionId);
    N->SeqCache = S;
    return S;
  }

  const FrameShape &frameOf(ProdId P) const { return Frames[P]; }
  void ensureFrame(TreeNode *N) const {
    const FrameShape &S = Frames[N->Prod];
    N->ensureFrame(S.NumAttrs, S.NumLocals);
  }

  //===--- flat pools, read-only for the engines --------------------------===//

  std::vector<CompiledInstr> Instrs;
  /// Per-visit body start offsets, relative to the owning seq's FirstInstr.
  std::vector<uint32_t> BeginOfs;
  /// Eval-ordered rule pool: each Eval instruction's rules are contiguous.
  std::vector<CompiledRule> Rules;
  /// By RuleId, for engines that look rules up via DefiningRule.
  std::vector<CompiledRule> ById;
  std::vector<SlotRef> Args;
  std::vector<CompiledSeq> Seqs;
  /// [Prod * MaxPartition + Part] -> index into Seqs, -1 when absent.
  std::vector<int32_t> SeqTable;
  unsigned MaxPartition = 0;
  std::vector<FrameShape> Frames; ///< By ProdId.
  unsigned MaxRuleArgs = 0;       ///< Widest argument list, sizes ArgBufs.

  /// Inherited / synthesized attributes of each phylum with their slots (in
  /// phylum attribute-list order), for root-inherited installation and the
  /// incremental evaluator's changed-attribute scans.
  std::vector<std::vector<SlotAttr>> InhByPhylum;
  std::vector<std::vector<SlotAttr>> SynByPhylum;

private:
  /// The artifact codec rebuilds the pools from a deserialized image and
  /// rebinds Src to the reloaded plan; nothing else may bypass the
  /// compiling constructor.
  friend struct ArtifactCodec;
  friend struct CompiledArtifact;
  CompiledPlan() = default;

  const EvaluationPlan *Src = nullptr;
};

/// A stable structural fingerprint of a compiled plan: an FNV-1a hash over
/// the flat pools (instruction stream, rule targets and argument slots,
/// sequence table geometry, frame shapes). Two plans that could disagree on
/// a single frame layout or instruction hash differently, so persisted
/// incremental sessions — whose frame snapshots are only meaningful under
/// the exact plan that produced them — record it and reject resumption
/// under any other plan. Semantic function pointers are excluded: they are
/// process-local and identical plans reloaded from the artifact cache must
/// fingerprint identically.
uint64_t planFingerprint(const CompiledPlan &CP);

/// True when FNC2_INTERP_FALLBACK is set (non-empty, not "0") in the
/// environment: engines that keep an interpreted VisitSequence walk default
/// to it instead of the compiled stream. Differential safety net.
bool interpFallbackRequested();

} // namespace fnc2

#endif // FNC2_EVAL_COMPILEDPLAN_H
