//===- eval/BatchEvaluator.cpp --------------------------------------------===//

#include "eval/BatchEvaluator.h"

#include "support/Trace.h"

using namespace fnc2;

void BatchEvaluator::setRootInherited(AttrId A, Value V) {
  for (auto &[Attr, Val] : RootInh)
    if (Attr == A) {
      Val = std::move(V);
      return;
    }
  RootInh.emplace_back(A, std::move(V));
}

BatchResult BatchEvaluator::evaluate(std::vector<Tree> &Trees) {
  FNC2_SPAN("batch.evaluate");
  BatchResult Result;
  Result.Outcomes.resize(Trees.size());

  // One stats accumulator per worker; merged after the join so the hot loop
  // never contends.
  std::vector<EvalStats> WorkerStats(Pool.numThreads());

  Pool.parallelFor(Trees.size(), [&](size_t I, unsigned Worker) {
    // Each worker's trace events land in that thread's own buffer; the
    // spans nested under this one reconstruct the per-worker timeline.
    FNC2_SPAN("batch.tree");
    // A fresh evaluator per tree over the shared compiled plan: it is a few
    // references plus buffers, and it keeps tree failures fully isolated.
    Evaluator E(Plan, Compiled);
    for (const auto &[Attr, Val] : RootInh)
      E.setRootInherited(Attr, Val);
    BatchTreeOutcome &Out = Result.Outcomes[I];
    Out.Success = E.evaluate(Trees[I], Out.Diags);
    WorkerStats[Worker].merge(E.stats());
  });

  for (const EvalStats &S : WorkerStats)
    Result.Stats.merge(S);
  for (const BatchTreeOutcome &Out : Result.Outcomes)
    Result.NumSucceeded += Out.Success;
  return Result;
}
