//===- eval/CompiledPlan.cpp ----------------------------------------------===//

#include "eval/CompiledPlan.h"

#include <algorithm>
#include <cstdlib>

using namespace fnc2;

bool fnc2::interpFallbackRequested() {
  static const bool Requested = [] {
    const char *Env = std::getenv("FNC2_INTERP_FALLBACK");
    return Env && *Env && std::string_view(Env) != "0";
  }();
  return Requested;
}

uint64_t fnc2::planFingerprint(const CompiledPlan &CP) {
  // FNV-1a, inlined so the eval layer does not depend on serialize/.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned I = 0; I != 8; ++I) {
      H ^= (V >> (8 * I)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  auto MixRef = [&Mix](const SlotRef &R) {
    Mix(static_cast<uint64_t>(R.Kind) | (uint64_t(R.Child) << 8) |
        (uint64_t(R.Slot) << 16));
  };
  Mix(CP.Instrs.size());
  for (const CompiledInstr &I : CP.Instrs) {
    Mix(static_cast<uint64_t>(I.Kind) | (uint64_t(I.Child) << 8) |
        (uint64_t(I.VisitNo) << 16));
    Mix(uint64_t(I.A) | (uint64_t(I.B) << 32));
  }
  Mix(CP.BeginOfs.size());
  for (uint32_t O : CP.BeginOfs)
    Mix(O);
  Mix(CP.Rules.size());
  for (const CompiledRule &R : CP.Rules) {
    Mix(uint64_t(R.FirstArg) | (uint64_t(R.NumArgs) << 32) |
        (uint64_t(R.IsCopy) << 48));
    Mix(R.Orig);
    MixRef(R.Target);
  }
  Mix(CP.Args.size());
  for (const SlotRef &R : CP.Args)
    MixRef(R);
  Mix(CP.Seqs.size());
  for (const CompiledSeq &S : CP.Seqs) {
    Mix(uint64_t(S.Prod) | (uint64_t(S.Partition) << 32));
    Mix(uint64_t(S.NumVisits) | (uint64_t(S.FirstInstr) << 16) |
        (uint64_t(S.FirstBegin) << 48));
  }
  Mix(CP.MaxPartition);
  Mix(CP.Frames.size());
  for (const FrameShape &F : CP.Frames)
    Mix(uint64_t(F.NumAttrs) | (uint64_t(F.NumLocals) << 16));
  return H;
}

namespace {

/// Resolves one occurrence of \p Prod to its frame slot. Locals live behind
/// the self node's attribute slots.
SlotRef refOf(const AttributeGrammar &AG, const FrameShape &Shape,
              const AttrOcc &O) {
  SlotRef R;
  if (O.isLexeme()) {
    R.Kind = SlotRef::K::Lexeme;
    return R;
  }
  if (O.isLocal()) {
    R.Kind = SlotRef::K::Self;
    R.Slot = static_cast<uint16_t>(Shape.NumAttrs + O.LocalIndex);
    return R;
  }
  const unsigned Idx = AG.attr(O.Attr).IndexInOwner;
  if (O.Pos == 0) {
    R.Kind = SlotRef::K::Self;
    R.Slot = static_cast<uint16_t>(Idx);
    return R;
  }
  R.Kind = SlotRef::K::Child;
  R.Child = static_cast<uint8_t>(O.Pos - 1);
  R.Slot = static_cast<uint16_t>(Idx);
  return R;
}

} // namespace

CompiledPlan::CompiledPlan(const EvaluationPlan &Plan) : Src(&Plan) {
  const AttributeGrammar &AG = *Plan.AG;

  // Frame geometry per production.
  Frames.resize(AG.Prods.size());
  for (ProdId P = 0; P != AG.Prods.size(); ++P) {
    const Production &Pr = AG.Prods[P];
    Frames[P].NumAttrs =
        static_cast<uint16_t>(AG.phylum(Pr.Lhs).Attrs.size());
    Frames[P].NumLocals = static_cast<uint16_t>(Pr.Locals.size());
  }

  // Rules, dense by id: every occurrence resolved to a slot once.
  ById.resize(AG.Rules.size());
  for (RuleId R = 0; R != AG.Rules.size(); ++R) {
    const SemanticRule &SR = AG.Rules[R];
    const FrameShape &Shape = Frames[SR.Prod];
    CompiledRule &C = ById[R];
    C.Fn = SR.Fn ? &SR.Fn : nullptr;
    C.IsCopy = SR.IsCopy;
    C.Orig = R;
    C.FirstArg = static_cast<uint32_t>(Args.size());
    C.NumArgs = static_cast<uint16_t>(SR.Args.size());
    MaxRuleArgs = std::max<unsigned>(MaxRuleArgs, C.NumArgs);
    for (const AttrOcc &O : SR.Args)
      Args.push_back(refOf(AG, Shape, O));
    C.Target = refOf(AG, Shape, SR.Target);
    assert(C.Target.Kind != SlotRef::K::Lexeme && "lexeme is read-only");
  }

  // Dense sequence table.
  for (const VisitSequence &S : Plan.Seqs)
    MaxPartition = std::max(MaxPartition, S.LhsPartition + 1);
  SeqTable.assign(AG.Prods.size() * size_t(MaxPartition), -1);
  Seqs.reserve(Plan.Seqs.size());

  for (const VisitSequence &S : Plan.Seqs) {
    CompiledSeq CS;
    CS.Prod = S.Prod;
    CS.Partition = S.LhsPartition;
    CS.NumVisits = S.NumVisits;
    CS.FirstInstr = static_cast<uint32_t>(Instrs.size());
    CS.FirstBegin = static_cast<uint32_t>(BeginOfs.size());
    CS.Frame = Frames[S.Prod];
    for (const VisitInstr &VI : S.Instrs) {
      CompiledInstr I;
      switch (VI.Kind) {
      case VisitInstr::Op::Begin:
        // Dissolved: record where this visit's body starts.
        BeginOfs.push_back(static_cast<uint32_t>(Instrs.size()) -
                           CS.FirstInstr);
        continue;
      case VisitInstr::Op::Eval:
        I.Kind = CompiledInstr::Op::Eval;
        I.A = static_cast<uint32_t>(Rules.size());
        I.B = static_cast<uint32_t>(VI.Rules.size());
        for (RuleId R : VI.Rules)
          Rules.push_back(ById[R]);
        break;
      case VisitInstr::Op::Visit:
        I.Kind = CompiledInstr::Op::Visit;
        I.Child = static_cast<uint8_t>(VI.Child);
        I.VisitNo = static_cast<uint16_t>(VI.VisitNo);
        I.A = VI.ChildPartition;
        break;
      case VisitInstr::Op::Leave:
        I.Kind = CompiledInstr::Op::Leave;
        I.VisitNo = static_cast<uint16_t>(VI.VisitNo);
        break;
      }
      Instrs.push_back(I);
    }
    assert(BeginOfs.size() - CS.FirstBegin == S.NumVisits &&
           "one BEGIN per visit");
    SeqTable[size_t(S.Prod) * MaxPartition + S.LhsPartition] =
        static_cast<int32_t>(Seqs.size());
    Seqs.push_back(CS);
  }

  // Per-phylum attribute slot lists, in attribute-list order (which the
  // root-inherited error reporting relies on).
  InhByPhylum.resize(AG.Phyla.size());
  SynByPhylum.resize(AG.Phyla.size());
  for (PhylumId Ph = 0; Ph != AG.Phyla.size(); ++Ph)
    for (AttrId A : AG.Phyla[Ph].Attrs) {
      const Attribute &At = AG.attr(A);
      SlotAttr SA{A, static_cast<uint16_t>(At.IndexInOwner)};
      (At.isInherited() ? InhByPhylum : SynByPhylum)[Ph].push_back(SA);
    }
}
