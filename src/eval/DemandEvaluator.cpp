//===- eval/DemandEvaluator.cpp -------------------------------------------===//

#include "eval/DemandEvaluator.h"

#include "support/Trace.h"

#include <algorithm>

using namespace fnc2;

void DemandEvaluator::setRootInherited(AttrId A, Value V) {
  for (auto &[Attr, Val] : RootInh)
    if (Attr == A) {
      Val = std::move(V);
      return;
    }
  RootInh.emplace_back(A, std::move(V));
}

bool DemandEvaluator::runRule(TreeNode *N, RuleId R, DiagnosticEngine &Diags) {
  const SemanticRule &Rule = AG.rule(R);
  if (!Rule.Fn) {
    Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                "' has no semantic function");
    return false;
  }
  // Force every argument before filling the shared buffer: forcing can
  // recurse into runRule, reading cannot.
  for (const AttrOcc &Arg : Rule.Args)
    if (!forceOcc(N, Arg, Diags))
      return false;
  Value *Buf = ArgBuf.data();
  const size_t NumArgs = Rule.Args.size();
  for (size_t I = 0; I != NumArgs; ++I)
    Buf[I] = readOcc(AG, N, Rule.Args[I]);
  writeOcc(AG, N, Rule.Target,
           Rule.Fn(std::span<const Value>(Buf, NumArgs)));
  ++Stats.RulesEvaluated;
  FNC2_COUNT("demand.rules", 1);
  return true;
}

bool DemandEvaluator::forceOcc(TreeNode *N, const AttrOcc &O,
                               DiagnosticEngine &Diags) {
  ++Stats.InstructionsExecuted; // scheduling overhead: one dispatch per access
  FNC2_COUNT("demand.forces", 1);
  if (O.isLexeme())
    return true;
  ensureNodeStorage(AG, N);
  if (O.isLocal()) {
    if (N->localComputed(O.LocalIndex))
      return true;
    RuleId R = AG.info(N->Prod).DefiningRule[AG.info(N->Prod).occId(O)];
    if (R == InvalidId) {
      Diags.error("local attribute without a defining rule");
      return false;
    }
    return runRule(N, R, Diags);
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  return force(Site, O.Attr, Diags);
}

bool DemandEvaluator::force(TreeNode *N, AttrId A, DiagnosticEngine &Diags) {
  const Attribute &At = AG.attr(A);
  unsigned Idx = At.IndexInOwner;
  ensureNodeStorage(AG, N);
  if (N->attrComputed(Idx))
    return true;

  auto Key = std::make_pair(static_cast<const TreeNode *>(N), Idx);
  if (std::find(InProgress.begin(), InProgress.end(), Key) !=
      InProgress.end()) {
    Diags.error("circular attribute dependency at run time on attribute '" +
                At.Name + "'");
    return false;
  }
  InProgress.push_back(Key);
  bool Ok = false;

  if (At.isSynthesized()) {
    // Defined by a rule of this node's production.
    const ProductionInfo &PI = AG.info(N->Prod);
    RuleId R = PI.DefiningRule[PI.occId(AttrOcc::onSymbol(0, A))];
    if (R == InvalidId)
      Diags.error("synthesized attribute '" + At.Name +
                  "' has no defining rule in operator '" +
                  AG.prod(N->Prod).Name + "'");
    else
      Ok = runRule(N, R, Diags);
  } else if (N->Parent) {
    // Defined by a rule of the parent's production.
    TreeNode *Par = N->Parent;
    const ProductionInfo &PI = AG.info(Par->Prod);
    RuleId R =
        PI.DefiningRule[PI.occId(AttrOcc::onSymbol(N->IndexInParent + 1, A))];
    if (R == InvalidId)
      Diags.error("inherited attribute '" + At.Name +
                  "' has no defining rule in operator '" +
                  AG.prod(Par->Prod).Name + "'");
    else
      Ok = runRule(Par, R, Diags);
  } else {
    // Root: externally provided.
    for (auto &[Attr, Val] : RootInh)
      if (Attr == A) {
        N->Slots[Idx] = Val;
        N->setSlotComputed(Idx);
        Ok = true;
      }
    if (!Ok)
      Diags.error("inherited attribute '" + At.Name +
                  "' of the root was not provided");
  }

  InProgress.pop_back();
  return Ok && N->attrComputed(Idx);
}

static bool forceSubtree(DemandEvaluator &E, const AttributeGrammar &AG,
                         TreeNode *N, DiagnosticEngine &Diags) {
  for (AttrId A : AG.phylum(AG.prod(N->Prod).Lhs).Attrs)
    if (!E.force(N, A, Diags))
      return false;
  for (auto &C : N->Children)
    if (!forceSubtree(E, AG, C.get(), Diags))
      return false;
  return true;
}

bool DemandEvaluator::evaluateAll(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("demand.tree");
  if (!T.root()) {
    Diags.error("cannot evaluate an empty tree");
    return false;
  }
  T.resetAttributes();
  return forceSubtree(*this, AG, T.root(), Diags);
}
