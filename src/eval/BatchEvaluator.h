//===- eval/BatchEvaluator.h - Parallel batch evaluation --------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel batch engine: evaluates a vector of independent attributed
/// trees concurrently against one shared immutable EvaluationPlan (see the
/// immutability contract in visitseq/VisitSequence.h). Each tree gets its
/// own DiagnosticEngine so a failing tree cannot poison the batch, and each
/// worker accumulates its own EvalStats, merged on join. The trees must be
/// pairwise disjoint (no shared nodes); beyond that no coordination is
/// needed because evaluation only writes tree-resident state.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_EVAL_BATCHEVALUATOR_H
#define FNC2_EVAL_BATCHEVALUATOR_H

#include "eval/Evaluator.h"
#include "support/ThreadPool.h"

#include <deque>

namespace fnc2 {

/// Per-tree outcome of a batch run. Lives in a deque because the engine
/// (and its embedded mutex) is not movable.
struct BatchTreeOutcome {
  bool Success = false;
  DiagnosticEngine Diags;
};

/// The join of one batch: per-tree outcomes plus merged dynamic counters.
struct BatchResult {
  std::deque<BatchTreeOutcome> Outcomes;
  EvalStats Stats;
  unsigned NumSucceeded = 0;

  bool allSucceeded() const { return NumSucceeded == Outcomes.size(); }
};

/// Evaluates batches of trees of one grammar over a shared plan.
class BatchEvaluator {
public:
  BatchEvaluator(const EvaluationPlan &Plan, ThreadPool &Pool)
      : Plan(Plan), Pool(Pool), Compiled(Plan) {}

  /// Root inherited attributes applied to every tree of the batch.
  void setRootInherited(AttrId A, Value V);

  /// Evaluates every tree of \p Trees (which must be pairwise disjoint),
  /// distributing them over the pool. Trees carry their attribute values on
  /// return exactly as under the sequential Evaluator; outcome I describes
  /// Trees[I].
  BatchResult evaluate(std::vector<Tree> &Trees);

private:
  const EvaluationPlan &Plan;
  ThreadPool &Pool;
  /// Compiled once; shared read-only by every worker's evaluator.
  CompiledPlan Compiled;
  std::vector<std::pair<AttrId, Value>> RootInh;
};

} // namespace fnc2

#endif // FNC2_EVAL_BATCHEVALUATOR_H
