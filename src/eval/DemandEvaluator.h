//===- eval/DemandEvaluator.h - Dynamic-scheduling baseline -----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A demand-driven (dynamically scheduled) evaluator: the design FNC-2
/// explicitly ruled out for its generated evaluators (paper section 2.1.1:
/// "the requirement to generate efficient evaluators ruled out methods based
/// on dynamic scheduling"). It memoizes attribute instances and recursively
/// forces dependencies at run time, paying scheduling overhead per access.
/// The ablation bench compares it against the visit-sequence interpreter.
/// It also serves as the development-mode evaluator usable right after the
/// SNC test, before any total order exists.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_EVAL_DEMANDEVALUATOR_H
#define FNC2_EVAL_DEMANDEVALUATOR_H

#include "eval/Evaluator.h"
#include "tree/Tree.h"

#include <algorithm>

namespace fnc2 {

/// Evaluates attributes on demand with memoization and run-time cycle
/// detection (so it handles any non-circular AG, even outside SNC).
class DemandEvaluator {
public:
  explicit DemandEvaluator(const AttributeGrammar &AG) : AG(AG) {
    size_t MaxArgs = 0;
    for (const SemanticRule &R : AG.Rules)
      MaxArgs = std::max(MaxArgs, R.Args.size());
    ArgBuf.resize(MaxArgs);
  }

  void setRootInherited(AttrId A, Value V);

  /// Forces every attribute instance of \p T. Returns false on run-time
  /// circularity, missing rules or missing root attributes.
  bool evaluateAll(Tree &T, DiagnosticEngine &Diags);

  /// Forces a single attribute instance; the entry point for sparse
  /// (non-exhaustive) queries.
  bool force(TreeNode *N, AttrId A, DiagnosticEngine &Diags);

  const EvalStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

private:
  bool forceOcc(TreeNode *N, const AttrOcc &O, DiagnosticEngine &Diags);
  bool runRule(TreeNode *N, RuleId R, DiagnosticEngine &Diags);

  const AttributeGrammar &AG;
  EvalStats Stats;
  std::vector<std::pair<AttrId, Value>> RootInh;
  /// In-progress markers for cycle detection: (node, attr index) pairs.
  std::vector<std::pair<const TreeNode *, unsigned>> InProgress;
  /// Reusable argument buffer (filled only after all forces complete, so
  /// nested rule evaluations never clobber it).
  std::vector<Value> ArgBuf;
};

} // namespace fnc2

#endif // FNC2_EVAL_DEMANDEVALUATOR_H
