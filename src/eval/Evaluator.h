//===- eval/Evaluator.h - Exhaustive visit-sequence interpreter -*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exhaustive evaluator: a visit-sequence interpreter over attributed
/// trees (paper section 2.1.1). On VISIT i,j it fetches the applied
/// production at the j-th son, searches BEGIN i in the corresponding
/// sequence (for the partition the VISIT carries) and executes until the
/// matching LEAVE. Attributes are tree-resident in this evaluator; the
/// storage-optimized variant lives in src/storage.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_EVAL_EVALUATOR_H
#define FNC2_EVAL_EVALUATOR_H

#include "support/Metrics.h"
#include "tree/Tree.h"
#include "visitseq/VisitSequence.h"

namespace fnc2 {

/// Dynamic counters the benches report. Reset/merge/export semantics are
/// derived from schema() (support/Metrics.h), shared with the other
/// evaluators' stats structs.
struct EvalStats {
  uint64_t RulesEvaluated = 0;
  uint64_t VisitsPerformed = 0;
  uint64_t InstructionsExecuted = 0;

  /// Names and merge kinds of every counter above.
  static std::span<const CounterField<EvalStats>> schema();

  void reset() { statsReset(*this); }

  /// Accumulates another worker's counters (batch join).
  void merge(const EvalStats &O) { statsMerge(*this, O); }

  /// Publishes every counter into \p R under its "eval.*" schema name.
  void exportTo(MetricsRegistry &R) const { statsExport(*this, R); }
};

/// Interprets an EvaluationPlan over trees of its grammar.
class Evaluator {
public:
  explicit Evaluator(const EvaluationPlan &Plan) : Plan(Plan) {}

  /// Provides the value of an inherited attribute of the start phylum;
  /// required before evaluate() when the start phylum has inherited
  /// attributes.
  void setRootInherited(AttrId A, Value V);

  /// Evaluates every attribute instance of \p T. Returns false (with
  /// diagnostics) on missing sequences, missing semantic functions or
  /// unset root attributes. On success all node attribute slots are filled.
  bool evaluate(Tree &T, DiagnosticEngine &Diags);

  const EvalStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

private:
  bool runVisit(TreeNode *N, unsigned VisitNo, DiagnosticEngine &Diags);
  bool execEval(TreeNode *N, const std::vector<RuleId> &Rules,
                DiagnosticEngine &Diags);

  const EvaluationPlan &Plan;
  EvalStats Stats;
  std::vector<std::pair<AttrId, Value>> RootInh;
};

/// Makes sure a node's attribute/local slots exist (lazily sized from the
/// grammar). Shared with the incremental evaluator.
void ensureNodeStorage(const AttributeGrammar &AG, TreeNode *N);

/// Reads an attribute value from tree-resident storage, asserting it has
/// been computed. \p N is the node the occurrence's production applies to.
const Value &readOcc(const AttributeGrammar &AG, TreeNode *N,
                     const AttrOcc &O);

/// Writes an attribute value into tree-resident storage.
void writeOcc(const AttributeGrammar &AG, TreeNode *N, const AttrOcc &O,
              Value V);

} // namespace fnc2

#endif // FNC2_EVAL_EVALUATOR_H
