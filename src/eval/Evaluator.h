//===- eval/Evaluator.h - Exhaustive visit-sequence evaluator ---*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The exhaustive evaluator (paper section 2.1.1). On VISIT i,j it fetches
/// the applied production at the j-th son and executes that son's sequence
/// body for visit i until the matching LEAVE. Attributes are tree-resident
/// (frame slots) in this evaluator; the storage-optimized variant lives in
/// src/storage.
///
/// By default the evaluator runs the CompiledPlan instruction stream (flat
/// opcodes, pre-resolved slots, reusable argument buffer). The original
/// VisitSequence interpreter is retained behind setUseInterpreted() /
/// FNC2_INTERP_FALLBACK as a differential reference.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_EVAL_EVALUATOR_H
#define FNC2_EVAL_EVALUATOR_H

#include "eval/CompiledPlan.h"
#include "support/Metrics.h"
#include "tree/Tree.h"
#include "visitseq/VisitSequence.h"

namespace fnc2 {

/// Dynamic counters the benches report. Reset/merge/export semantics are
/// derived from schema() (support/Metrics.h), shared with the other
/// evaluators' stats structs.
struct EvalStats {
  uint64_t RulesEvaluated = 0;
  uint64_t VisitsPerformed = 0;
  uint64_t InstructionsExecuted = 0;

  /// Names and merge kinds of every counter above.
  static std::span<const CounterField<EvalStats>> schema();

  void reset() { statsReset(*this); }

  /// Accumulates another worker's counters (batch join).
  void merge(const EvalStats &O) { statsMerge(*this, O); }

  /// Publishes every counter into \p R under its "eval.*" schema name.
  void exportTo(MetricsRegistry &R) const { statsExport(*this, R); }
};

/// Evaluates an EvaluationPlan over trees of its grammar.
class Evaluator {
public:
  /// Compiles the plan privately.
  explicit Evaluator(const EvaluationPlan &Plan);
  /// Borrows an already-compiled plan (the batch engines compile once and
  /// share it across workers). \p Compiled must outlive the evaluator and
  /// have been compiled from \p Plan.
  Evaluator(const EvaluationPlan &Plan, const CompiledPlan &Compiled);

  /// Provides the value of an inherited attribute of the start phylum;
  /// required before evaluate() when the start phylum has inherited
  /// attributes. Slot-indexed by attribute id: O(1).
  void setRootInherited(AttrId A, Value V);

  /// Evaluates every attribute instance of \p T. Returns false (with
  /// diagnostics) on missing sequences, missing semantic functions or
  /// unset root attributes. On success all node attribute slots are filled.
  bool evaluate(Tree &T, DiagnosticEngine &Diags);

  const EvalStats &stats() const { return Stats; }
  void resetStats() { Stats.reset(); }

  /// Selects the interpreted VisitSequence walk instead of the compiled
  /// stream (both produce identical attributions, stats and traces).
  void setUseInterpreted(bool B) { UseInterp = B; }
  bool usesInterpreted() const { return UseInterp; }

  const CompiledPlan &compiled() const { return *CP; }

private:
  bool installRootInherited(TreeNode *Root, DiagnosticEngine &Diags);

  // Compiled path.
  bool runCompiledVisit(TreeNode *N, const CompiledSeq *Seq, unsigned VisitNo,
                        DiagnosticEngine &Diags);
  bool execCompiledRule(TreeNode *N, const CompiledRule &R,
                        DiagnosticEngine &Diags);

  // Interpreted fallback.
  bool runVisit(TreeNode *N, unsigned VisitNo, DiagnosticEngine &Diags);
  bool execEval(TreeNode *N, const std::vector<RuleId> &Rules,
                DiagnosticEngine &Diags);

  const EvaluationPlan &Plan;
  std::unique_ptr<const CompiledPlan> OwnedCP;
  const CompiledPlan *CP;
  EvalStats Stats;
  /// Root-inherited values indexed by AttrId (resolved to slots at compile
  /// time; see CompiledPlan::InhByPhylum).
  std::vector<Value> RootInhVals;
  std::vector<uint8_t> RootInhSet;
  /// Reusable argument buffer; semantic functions see a span into it.
  std::vector<Value> ArgBuf;
  bool UseInterp;
};

/// Makes sure a node's attribute frame exists (lazily sized from the
/// grammar). Shared with the demand and incremental evaluators.
void ensureNodeStorage(const AttributeGrammar &AG, TreeNode *N);

/// Reads an attribute value from tree-resident storage, asserting that the
/// site's frame exists and the value has been computed (the frame is
/// guaranteed by the visit prologue / preceding writes, so no re-check on
/// every read). \p N is the node the occurrence's production applies to.
const Value &readOcc(const AttributeGrammar &AG, TreeNode *N,
                     const AttrOcc &O);

/// Writes an attribute value into tree-resident storage.
void writeOcc(const AttributeGrammar &AG, TreeNode *N, const AttrOcc &O,
              Value V);

} // namespace fnc2

#endif // FNC2_EVAL_EVALUATOR_H
