//===- eval/Evaluator.cpp -------------------------------------------------===//

#include "eval/Evaluator.h"

#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<EvalStats>> EvalStats::schema() {
  static constexpr CounterField<EvalStats> Fields[] = {
      {"eval.rules_evaluated", &EvalStats::RulesEvaluated},
      {"eval.visits_performed", &EvalStats::VisitsPerformed},
      {"eval.instructions_executed", &EvalStats::InstructionsExecuted},
  };
  return Fields;
}

void fnc2::ensureNodeStorage(const AttributeGrammar &AG, TreeNode *N) {
  const Production &Pr = AG.prod(N->Prod);
  unsigned NumAttrs = static_cast<unsigned>(AG.phylum(Pr.Lhs).Attrs.size());
  if (N->AttrVals.size() != NumAttrs) {
    N->AttrVals.assign(NumAttrs, Value());
    N->AttrComputed.assign(NumAttrs, 0);
  }
  unsigned NumLocals = static_cast<unsigned>(Pr.Locals.size());
  if (N->LocalVals.size() != NumLocals) {
    N->LocalVals.assign(NumLocals, Value());
    N->LocalComputed.assign(NumLocals, 0);
  }
}

const Value &fnc2::readOcc(const AttributeGrammar &AG, TreeNode *N,
                           const AttrOcc &O) {
  if (O.isLexeme())
    return N->Lexeme;
  if (O.isLocal()) {
    assert(N->LocalComputed[O.LocalIndex] && "local read before definition");
    return N->LocalVals[O.LocalIndex];
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  unsigned Idx = AG.attr(O.Attr).IndexInOwner;
  ensureNodeStorage(AG, Site);
  assert(Site->AttrComputed[Idx] && "attribute read before definition");
  return Site->AttrVals[Idx];
}

void fnc2::writeOcc(const AttributeGrammar &AG, TreeNode *N, const AttrOcc &O,
                    Value V) {
  assert(!O.isLexeme() && "lexeme is read-only");
  if (O.isLocal()) {
    N->LocalVals[O.LocalIndex] = std::move(V);
    N->LocalComputed[O.LocalIndex] = 1;
    return;
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  ensureNodeStorage(AG, Site);
  unsigned Idx = AG.attr(O.Attr).IndexInOwner;
  Site->AttrVals[Idx] = std::move(V);
  Site->AttrComputed[Idx] = 1;
}

void Evaluator::setRootInherited(AttrId A, Value V) {
  for (auto &[Attr, Val] : RootInh)
    if (Attr == A) {
      Val = std::move(V);
      return;
    }
  RootInh.emplace_back(A, std::move(V));
}

bool Evaluator::execEval(TreeNode *N, const std::vector<RuleId> &Rules,
                         DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  for (RuleId R : Rules) {
    const SemanticRule &Rule = AG.rule(R);
    if (!Rule.Fn) {
      Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                  "' in operator '" + AG.prod(Rule.Prod).Name +
                  "' has no semantic function");
      return false;
    }
    std::vector<Value> Args;
    Args.reserve(Rule.Args.size());
    for (const AttrOcc &Arg : Rule.Args)
      Args.push_back(readOcc(AG, N, Arg));
    writeOcc(AG, N, Rule.Target, Rule.Fn(Args));
    ++Stats.RulesEvaluated;
  }
  FNC2_COUNT("eval.rules", Rules.size());
  return true;
}

bool Evaluator::runVisit(TreeNode *N, unsigned VisitNo,
                         DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  ensureNodeStorage(AG, N);
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for operator '" + AG.prod(N->Prod).Name +
                "' under partition " + std::to_string(N->PartitionId));
    return false;
  }
  assert(VisitNo >= 1 && VisitNo <= Seq->NumVisits && "visit out of range");
  ++Stats.VisitsPerformed;
  FNC2_SPAN("eval.visit");

  for (unsigned I = Seq->BeginIndex[VisitNo - 1] + 1;; ++I) {
    assert(I < Seq->Instrs.size() && "ran past the end of a visit sequence");
    const VisitInstr &Instr = Seq->Instrs[I];
    ++Stats.InstructionsExecuted;
    switch (Instr.Kind) {
    case VisitInstr::Op::Eval:
      if (!execEval(N, Instr.Rules, Diags))
        return false;
      break;
    case VisitInstr::Op::Visit: {
      TreeNode *Child = N->child(Instr.Child);
      Child->PartitionId = Instr.ChildPartition;
      if (!runVisit(Child, Instr.VisitNo, Diags))
        return false;
      break;
    }
    case VisitInstr::Op::Leave:
      assert(Instr.VisitNo == VisitNo && "mismatched LEAVE");
      return true;
    case VisitInstr::Op::Begin:
      assert(false && "BEGIN inside a visit body");
      return false;
    }
  }
}

bool Evaluator::evaluate(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("eval.tree");
  const AttributeGrammar &AG = *Plan.AG;
  TreeNode *Root = T.root();
  if (!Root) {
    Diags.error("cannot evaluate an empty tree");
    return false;
  }
  T.resetAttributes();
  ensureNodeStorage(AG, Root);
  Root->PartitionId = Plan.RootPartition;

  // Install the externally provided inherited attributes of the root.
  PhylumId Start = AG.prod(Root->Prod).Lhs;
  for (AttrId A : AG.phylum(Start).Attrs) {
    const Attribute &At = AG.attr(A);
    if (!At.isInherited())
      continue;
    bool Provided = false;
    for (auto &[Attr, Val] : RootInh)
      if (Attr == A) {
        Root->AttrVals[At.IndexInOwner] = Val;
        Root->AttrComputed[At.IndexInOwner] = 1;
        Provided = true;
      }
    if (!Provided) {
      Diags.error("inherited attribute '" + At.Name +
                  "' of the start phylum was not provided");
      return false;
    }
  }

  const VisitSequence *Seq = Plan.find(Root->Prod, Root->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for the root operator");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!runVisit(Root, V, Diags))
      return false;
  return true;
}
