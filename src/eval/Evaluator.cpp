//===- eval/Evaluator.cpp -------------------------------------------------===//

#include "eval/Evaluator.h"

#include "support/Trace.h"

using namespace fnc2;

std::span<const CounterField<EvalStats>> EvalStats::schema() {
  static constexpr CounterField<EvalStats> Fields[] = {
      {"eval.rules_evaluated", &EvalStats::RulesEvaluated},
      {"eval.visits_performed", &EvalStats::VisitsPerformed},
      {"eval.instructions_executed", &EvalStats::InstructionsExecuted},
  };
  return Fields;
}

void fnc2::ensureNodeStorage(const AttributeGrammar &AG, TreeNode *N) {
  if (N->hasFrame())
    return;
  const Production &Pr = AG.prod(N->Prod);
  N->ensureFrame(static_cast<unsigned>(AG.phylum(Pr.Lhs).Attrs.size()),
                 static_cast<unsigned>(Pr.Locals.size()));
}

const Value &fnc2::readOcc(const AttributeGrammar &AG, TreeNode *N,
                           const AttrOcc &O) {
  if (O.isLexeme())
    return N->Lexeme;
  if (O.isLocal()) {
    const unsigned Slot = N->FrameAttrs + O.LocalIndex;
    assert(N->slotComputed(Slot) && "local read before definition");
    return N->Slots[Slot];
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  const unsigned Idx = AG.attr(O.Attr).IndexInOwner;
  // The frame is guaranteed: self frames are ensured by the visit prologue,
  // child frames by the inherited-attribute writes / visits that precede
  // any read in a well-formed sequence.
  assert(Site->hasFrame() && "attribute read before storage was ensured");
  assert(Site->slotComputed(Idx) && "attribute read before definition");
  return Site->Slots[Idx];
}

void fnc2::writeOcc(const AttributeGrammar &AG, TreeNode *N, const AttrOcc &O,
                    Value V) {
  assert(!O.isLexeme() && "lexeme is read-only");
  if (O.isLocal()) {
    const unsigned Slot = N->FrameAttrs + O.LocalIndex;
    N->Slots[Slot] = std::move(V);
    N->setSlotComputed(Slot);
    return;
  }
  TreeNode *Site = O.Pos == 0 ? N : N->child(O.Pos - 1);
  ensureNodeStorage(AG, Site);
  const unsigned Idx = AG.attr(O.Attr).IndexInOwner;
  Site->Slots[Idx] = std::move(V);
  Site->setSlotComputed(Idx);
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

Evaluator::Evaluator(const EvaluationPlan &Plan)
    : Plan(Plan), OwnedCP(std::make_unique<CompiledPlan>(Plan)),
      CP(OwnedCP.get()), UseInterp(interpFallbackRequested()) {
  RootInhVals.resize(Plan.AG->Attrs.size());
  RootInhSet.assign(Plan.AG->Attrs.size(), 0);
  ArgBuf.resize(CP->MaxRuleArgs);
}

Evaluator::Evaluator(const EvaluationPlan &Plan, const CompiledPlan &Compiled)
    : Plan(Plan), CP(&Compiled), UseInterp(interpFallbackRequested()) {
  assert(&Compiled.plan() == &Plan && "compiled plan from a different plan");
  RootInhVals.resize(Plan.AG->Attrs.size());
  RootInhSet.assign(Plan.AG->Attrs.size(), 0);
  ArgBuf.resize(CP->MaxRuleArgs);
}

void Evaluator::setRootInherited(AttrId A, Value V) {
  assert(A < RootInhVals.size() && "unknown attribute");
  RootInhVals[A] = std::move(V);
  RootInhSet[A] = 1;
}

bool Evaluator::installRootInherited(TreeNode *Root, DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  const PhylumId Start = AG.prod(Root->Prod).Lhs;
  for (const SlotAttr &IA : CP->InhByPhylum[Start]) {
    if (!RootInhSet[IA.Attr]) {
      Diags.error("inherited attribute '" + AG.attr(IA.Attr).Name +
                  "' of the start phylum was not provided");
      return false;
    }
    Root->Slots[IA.Slot] = RootInhVals[IA.Attr];
    Root->setSlotComputed(IA.Slot);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Compiled path
//===----------------------------------------------------------------------===//

bool Evaluator::execCompiledRule(TreeNode *N, const CompiledRule &R,
                                 DiagnosticEngine &Diags) {
  if (!R.Fn) {
    const AttributeGrammar &AG = *Plan.AG;
    const SemanticRule &SR = AG.rule(R.Orig);
    Diags.error("rule for '" + AG.occName(SR.Prod, SR.Target) +
                "' in operator '" + AG.prod(SR.Prod).Name +
                "' has no semantic function");
    return false;
  }

  const SlotRef *A = &CP->Args[R.FirstArg];
  Value *Buf = ArgBuf.data();
  for (unsigned I = 0; I != R.NumArgs; ++I) {
    const SlotRef &Ref = A[I];
    switch (Ref.Kind) {
    case SlotRef::K::Self:
      assert(N->slotComputed(Ref.Slot) && "read before definition");
      Buf[I] = N->Slots[Ref.Slot];
      break;
    case SlotRef::K::Child: {
      TreeNode *C = N->child(Ref.Child);
      assert(C->hasFrame() && C->slotComputed(Ref.Slot) &&
             "child read before definition");
      Buf[I] = C->Slots[Ref.Slot];
      break;
    }
    case SlotRef::K::Lexeme:
      Buf[I] = N->Lexeme;
      break;
    }
  }

  Value Result = (*R.Fn)(std::span<const Value>(Buf, R.NumArgs));

  const SlotRef &T = R.Target;
  if (T.Kind == SlotRef::K::Self) {
    N->Slots[T.Slot] = std::move(Result);
    N->setSlotComputed(T.Slot);
  } else {
    TreeNode *C = N->child(T.Child);
    CP->ensureFrame(C);
    C->Slots[T.Slot] = std::move(Result);
    C->setSlotComputed(T.Slot);
  }
  return true;
}

bool Evaluator::runCompiledVisit(TreeNode *N, const CompiledSeq *Seq,
                                 unsigned VisitNo, DiagnosticEngine &Diags) {
  assert(VisitNo >= 1 && VisitNo <= Seq->NumVisits && "visit out of range");
  ++Stats.VisitsPerformed;
  FNC2_SPAN("eval.visit");

  const CompiledPlan &C = *CP;
  const CompiledInstr *I =
      &C.Instrs[Seq->FirstInstr + C.BeginOfs[Seq->FirstBegin + VisitNo - 1]];
  for (;; ++I) {
    ++Stats.InstructionsExecuted;
    switch (I->Kind) {
    case CompiledInstr::Op::Eval: {
      const CompiledRule *R = &C.Rules[I->A];
      for (uint32_t K = 0; K != I->B; ++K)
        if (!execCompiledRule(N, R[K], Diags))
          return false;
      Stats.RulesEvaluated += I->B;
      FNC2_COUNT("eval.rules", I->B);
      break;
    }
    case CompiledInstr::Op::Visit: {
      TreeNode *Child = N->child(I->Child);
      Child->PartitionId = I->A;
      const CompiledSeq *CS = C.seqForNode(Child);
      if (!CS) {
        Diags.error("no visit sequence for operator '" +
                    Plan.AG->prod(Child->Prod).Name + "' under partition " +
                    std::to_string(Child->PartitionId));
        return false;
      }
      Child->ensureFrame(CS->Frame.NumAttrs, CS->Frame.NumLocals);
      if (!runCompiledVisit(Child, CS, I->VisitNo, Diags))
        return false;
      break;
    }
    case CompiledInstr::Op::Leave:
      assert(I->VisitNo == VisitNo && "mismatched LEAVE");
      return true;
    }
  }
}

//===----------------------------------------------------------------------===//
// Interpreted fallback
//===----------------------------------------------------------------------===//

bool Evaluator::execEval(TreeNode *N, const std::vector<RuleId> &Rules,
                         DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  for (RuleId R : Rules) {
    const SemanticRule &Rule = AG.rule(R);
    if (!Rule.Fn) {
      Diags.error("rule for '" + AG.occName(Rule.Prod, Rule.Target) +
                  "' in operator '" + AG.prod(Rule.Prod).Name +
                  "' has no semantic function");
      return false;
    }
    Value *Buf = ArgBuf.data();
    size_t NumArgs = Rule.Args.size();
    for (size_t I = 0; I != NumArgs; ++I)
      Buf[I] = readOcc(AG, N, Rule.Args[I]);
    writeOcc(AG, N, Rule.Target,
             Rule.Fn(std::span<const Value>(Buf, NumArgs)));
    ++Stats.RulesEvaluated;
  }
  FNC2_COUNT("eval.rules", Rules.size());
  return true;
}

bool Evaluator::runVisit(TreeNode *N, unsigned VisitNo,
                         DiagnosticEngine &Diags) {
  const AttributeGrammar &AG = *Plan.AG;
  ensureNodeStorage(AG, N);
  const VisitSequence *Seq = Plan.find(N->Prod, N->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for operator '" + AG.prod(N->Prod).Name +
                "' under partition " + std::to_string(N->PartitionId));
    return false;
  }
  assert(VisitNo >= 1 && VisitNo <= Seq->NumVisits && "visit out of range");
  ++Stats.VisitsPerformed;
  FNC2_SPAN("eval.visit");

  for (unsigned I = Seq->BeginIndex[VisitNo - 1] + 1;; ++I) {
    assert(I < Seq->Instrs.size() && "ran past the end of a visit sequence");
    const VisitInstr &Instr = Seq->Instrs[I];
    ++Stats.InstructionsExecuted;
    switch (Instr.Kind) {
    case VisitInstr::Op::Eval:
      if (!execEval(N, Instr.Rules, Diags))
        return false;
      break;
    case VisitInstr::Op::Visit: {
      TreeNode *Child = N->child(Instr.Child);
      Child->PartitionId = Instr.ChildPartition;
      if (!runVisit(Child, Instr.VisitNo, Diags))
        return false;
      break;
    }
    case VisitInstr::Op::Leave:
      assert(Instr.VisitNo == VisitNo && "mismatched LEAVE");
      return true;
    case VisitInstr::Op::Begin:
      assert(false && "BEGIN inside a visit body");
      return false;
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

bool Evaluator::evaluate(Tree &T, DiagnosticEngine &Diags) {
  FNC2_SPAN("eval.tree");
  TreeNode *Root = T.root();
  if (!Root) {
    Diags.error("cannot evaluate an empty tree");
    return false;
  }
  T.resetAttributes();
  CP->ensureFrame(Root);
  Root->PartitionId = Plan.RootPartition;

  if (!installRootInherited(Root, Diags))
    return false;

  if (!UseInterp) {
    const CompiledSeq *Seq = CP->seqForNode(Root);
    if (!Seq) {
      Diags.error("no visit sequence for the root operator");
      return false;
    }
    for (unsigned V = 1; V <= Seq->NumVisits; ++V)
      if (!runCompiledVisit(Root, Seq, V, Diags))
        return false;
    return true;
  }

  const VisitSequence *Seq = Plan.find(Root->Prod, Root->PartitionId);
  if (!Seq) {
    Diags.error("no visit sequence for the root operator");
    return false;
  }
  for (unsigned V = 1; V <= Seq->NumVisits; ++V)
    if (!runVisit(Root, V, Diags))
      return false;
  return true;
}
