//===- serialize/ArtifactFile.h - Versioned sectioned container -*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk container of cached generator artifacts: a fixed header
/// (magic, format version, content key), a section table, and contiguous
/// per-section payloads each stamped with a CRC-32.
///
///   offset 0   8 bytes   magic "FNC2ART\n"
///          8   u32       format version (kFormatVersion)
///         12   u64       content key (hash of grammar + options)
///         20   u32       section count N
///         24   u32       CRC-32 of the section table bytes
///         28   N x 24    table: { u32 id, u64 offset, u64 size, u32 crc }
///        ...             payloads, contiguous in table order
///
/// Every byte of a file is covered by some check: the header fields are
/// validated against expected values, the table by its CRC and by the
/// contiguity equation (each payload starts where the previous one ended
/// and the last one ends exactly at end-of-file), and the payloads by their
/// per-section CRCs. ArtifactReader::open therefore rejects — with a
/// reason, never a crash — any truncation, any single-byte flip, any
/// version bump and any wrong-key file.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SERIALIZE_ARTIFACTFILE_H
#define FNC2_SERIALIZE_ARTIFACTFILE_H

#include "serialize/Serialize.h"

namespace fnc2::serialize {

/// Bumped on every change to the artifact byte layout (container or section
/// encodings). A version mismatch is a clean cache miss, never an attempt
/// to decode; the golden-artifact test fails loudly when the layout changes
/// without a bump.
inline constexpr uint32_t kFormatVersion = 1;

/// The 8-byte magic at offset 0.
inline constexpr char kMagic[8] = {'F', 'N', 'C', '2', 'A', 'R', 'T', '\n'};

/// Builds an artifact file in memory: fill sections in order, then finish().
class ArtifactWriter {
public:
  explicit ArtifactWriter(uint64_t Key, uint32_t Version = kFormatVersion)
      : Key(Key), Version(Version) {}

  /// Opens a new section; returns the writer for its payload. Ids must be
  /// unique; sections are laid out in creation order.
  ByteWriter &section(uint32_t Id) {
    Sections.emplace_back(Id, ByteWriter());
    return Sections.back().second;
  }

  /// Assembles header + table + payloads. Deterministic for deterministic
  /// payloads (the golden test relies on byte-stable output).
  std::vector<uint8_t> finish() const;

private:
  uint64_t Key;
  uint32_t Version;
  std::vector<std::pair<uint32_t, ByteWriter>> Sections;
};

/// Read-side view of an artifact file. open() performs the full container
/// validation up front (header, table, contiguity, every section CRC);
/// section() then hands out bounds-checked readers over verified payloads.
class ArtifactReader {
public:
  /// Validates \p File against the expected version and content key.
  /// Returns false with a human-readable \p Reason on any mismatch or
  /// corruption; the reader is unusable in that case.
  bool open(std::span<const uint8_t> File, uint64_t ExpectKey,
            std::string &Reason, uint32_t ExpectVersion = kFormatVersion);

  bool hasSection(uint32_t Id) const {
    for (const Entry &E : Table)
      if (E.Id == Id)
        return true;
    return false;
  }

  /// Reader over the payload of section \p Id; a reader over the empty span
  /// (whose first read fails cleanly) when the section is absent.
  ByteReader section(uint32_t Id) const {
    for (const Entry &E : Table)
      if (E.Id == Id)
        return ByteReader(File.subspan(E.Offset, E.Size));
    return ByteReader({});
  }

  uint64_t key() const { return Key; }

private:
  struct Entry {
    uint32_t Id = 0;
    size_t Offset = 0;
    size_t Size = 0;
  };

  std::span<const uint8_t> File;
  std::vector<Entry> Table;
  uint64_t Key = 0;
};

} // namespace fnc2::serialize

#endif // FNC2_SERIALIZE_ARTIFACTFILE_H
