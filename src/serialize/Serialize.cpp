//===- serialize/Serialize.cpp --------------------------------------------===//

#include "serialize/Serialize.h"

#include <array>

using namespace fnc2;

namespace {

std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> T{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t C = I;
    for (int K = 0; K != 8; ++K)
      C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
    T[I] = C;
  }
  return T;
}

} // namespace

uint32_t serialize::crc32(std::span<const uint8_t> Data, uint32_t Seed) {
  static const std::array<uint32_t, 256> Table = makeCrcTable();
  uint32_t C = Seed ^ 0xFFFFFFFFu;
  for (uint8_t B : Data)
    C = Table[(C ^ B) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

uint64_t serialize::fnv1a64(std::span<const uint8_t> Data, uint64_t Seed) {
  uint64_t H = Seed;
  for (uint8_t B : Data) {
    H ^= B;
    H *= 0x100000001b3ull;
  }
  return H;
}
