//===- serialize/Serialize.h - Bounds-checked binary encoding --*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level substrate of the persistent artifact cache (the mkfnc2
/// analogue of paper section 3.1: the generator cascade only re-runs when
/// its inputs changed). Two halves:
///
///  * ByteWriter / ByteReader — little-endian primitive encoding. The
///    reader is *total*: every read is bounds-checked, a failed read poisons
///    the reader (ok() turns false, subsequent reads return zero values) and
///    records a reason. Decoders written against it can never crash or read
///    out of bounds on corrupted input, only reject it.
///  * crc32 / fnv1a64 — the integrity check stamped per section of an
///    artifact file, and the stable content hash keying artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SERIALIZE_SERIALIZE_H
#define FNC2_SERIALIZE_SERIALIZE_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fnc2::serialize {

/// CRC-32 (IEEE 802.3 polynomial, reflected). crc32 of "123456789" is
/// 0xCBF43926. Detects every single-bit and single-byte corruption of a
/// section payload, which is what the corruption-injection suite pins.
uint32_t crc32(std::span<const uint8_t> Data, uint32_t Seed = 0);

/// FNV-1a 64-bit over a byte string: the stable content hash used as the
/// artifact cache key (hash of the canonical grammar + options encoding).
uint64_t fnv1a64(std::span<const uint8_t> Data,
                 uint64_t Seed = 0xcbf29ce484222325ull);

/// Append-only little-endian encoder. All multi-byte values are written
/// LSB-first regardless of host order, so artifact bytes are identical
/// across builds — the golden-artifact test commits them.
class ByteWriter {
public:
  void u8(uint8_t V) { Buf.push_back(V); }
  void u16(uint16_t V) { le(V, 2); }
  void u32(uint32_t V) { le(V, 4); }
  void u64(uint64_t V) { le(V, 8); }
  void boolean(bool V) { u8(V ? 1 : 0); }
  /// Doubles travel as their IEEE-754 bit pattern.
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, 8);
    u64(Bits);
  }
  /// u32 length prefix + raw bytes.
  void str(std::string_view S) {
    u32(static_cast<uint32_t>(S.size()));
    raw(S.data(), S.size());
  }
  void raw(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Len);
  }

  size_t size() const { return Buf.size(); }
  std::span<const uint8_t> bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  void le(uint64_t V, unsigned Bytes) {
    for (unsigned I = 0; I != Bytes; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }

  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian decoder over a borrowed byte span. The
/// first failed read latches ok() to false with a reason; every later read
/// returns a zero value without touching memory, so a decoder can run to
/// completion on arbitrary garbage and check ok() once at the end (it must
/// still validate semantic invariants — ids in range, sizes consistent —
/// before using the result).
class ByteReader {
public:
  explicit ByteReader(std::span<const uint8_t> Data) : Data(Data) {}

  bool ok() const { return !Failed; }
  const std::string &error() const { return Err; }
  size_t remaining() const { return Failed ? 0 : Data.size() - Pos; }

  /// Latches the failure state (also used by decoders to report semantic
  /// validation failures through the same channel).
  void fail(std::string Why) {
    if (!Failed) {
      Failed = true;
      Err = std::move(Why);
    }
  }

  uint8_t u8() { return static_cast<uint8_t>(le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(le(4)); }
  uint64_t u64() { return le(8); }
  bool boolean() {
    uint8_t V = u8();
    if (V > 1)
      fail("boolean byte out of range");
    return V == 1;
  }
  double f64() {
    uint64_t Bits = le(8);
    double V;
    std::memcpy(&V, &Bits, 8);
    return V;
  }
  std::string str() {
    uint32_t Len = u32();
    if (Len > remaining()) {
      fail("string length exceeds remaining bytes");
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Data.data() + Pos), Len);
    Pos += Len;
    return S;
  }

  /// Reads a u32 element count for a sequence whose elements occupy at
  /// least \p MinElemBytes each; fails (and returns 0) when the count could
  /// not possibly fit in the remaining bytes. This is the guard that stops
  /// a corrupted length from driving a multi-gigabyte allocation.
  uint32_t count(size_t MinElemBytes = 1) {
    uint32_t N = u32();
    if (Failed)
      return 0;
    if (MinElemBytes != 0 && N > remaining() / MinElemBytes) {
      fail("sequence count exceeds remaining bytes");
      return 0;
    }
    return N;
  }

private:
  uint64_t le(unsigned Bytes) {
    if (Failed)
      return 0;
    if (Data.size() - Pos < Bytes) {
      fail("read past end of buffer");
      return 0;
    }
    uint64_t V = 0;
    for (unsigned I = 0; I != Bytes; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += Bytes;
    return V;
  }

  std::span<const uint8_t> Data;
  size_t Pos = 0;
  bool Failed = false;
  std::string Err;
};

} // namespace fnc2::serialize

#endif // FNC2_SERIALIZE_SERIALIZE_H
