//===- serialize/ArtifactFile.cpp -----------------------------------------===//

#include "serialize/ArtifactFile.h"

using namespace fnc2;
using namespace fnc2::serialize;

namespace {

constexpr size_t kHeaderSize = 8 + 4 + 8 + 4 + 4;
constexpr size_t kEntrySize = 4 + 8 + 8 + 4;

} // namespace

std::vector<uint8_t> ArtifactWriter::finish() const {
  // Table first (its CRC goes into the header).
  ByteWriter Table;
  uint64_t Offset = kHeaderSize + Sections.size() * kEntrySize;
  for (const auto &[Id, Body] : Sections) {
    Table.u32(Id);
    Table.u64(Offset);
    Table.u64(Body.size());
    Table.u32(crc32(Body.bytes()));
    Offset += Body.size();
  }

  ByteWriter Out;
  Out.raw(kMagic, sizeof(kMagic));
  Out.u32(Version);
  Out.u64(Key);
  Out.u32(static_cast<uint32_t>(Sections.size()));
  Out.u32(crc32(Table.bytes()));
  Out.raw(Table.bytes().data(), Table.size());
  for (const auto &[Id, Body] : Sections)
    Out.raw(Body.bytes().data(), Body.size());
  return Out.take();
}

bool ArtifactReader::open(std::span<const uint8_t> Bytes, uint64_t ExpectKey,
                          std::string &Reason, uint32_t ExpectVersion) {
  File = Bytes;
  Table.clear();

  ByteReader R(Bytes);
  if (Bytes.size() < kHeaderSize) {
    Reason = "file shorter than header";
    return false;
  }
  char Magic[8];
  for (char &C : Magic)
    C = static_cast<char>(R.u8());
  if (std::memcmp(Magic, kMagic, sizeof(kMagic)) != 0) {
    Reason = "bad magic";
    return false;
  }
  uint32_t Version = R.u32();
  if (Version != ExpectVersion) {
    Reason = "format version " + std::to_string(Version) + " != expected " +
             std::to_string(ExpectVersion);
    return false;
  }
  Key = R.u64();
  if (Key != ExpectKey) {
    Reason = "content key mismatch (stale or foreign artifact)";
    return false;
  }
  uint32_t NumSections = R.u32();
  uint32_t TableCrc = R.u32();
  if (NumSections > (Bytes.size() - kHeaderSize) / kEntrySize) {
    Reason = "section table exceeds file size";
    return false;
  }
  std::span<const uint8_t> TableBytes =
      Bytes.subspan(kHeaderSize, size_t(NumSections) * kEntrySize);
  if (crc32(TableBytes) != TableCrc) {
    Reason = "section table checksum mismatch";
    return false;
  }

  // Contiguity: payloads tile the file exactly from the end of the table to
  // end-of-file, so any truncation or size/offset flip breaks the equation.
  uint64_t Cursor = kHeaderSize + size_t(NumSections) * kEntrySize;
  ByteReader T(TableBytes);
  for (uint32_t I = 0; I != NumSections; ++I) {
    Entry E;
    E.Id = T.u32();
    E.Offset = T.u64();
    E.Size = T.u64();
    uint32_t Crc = T.u32();
    if (E.Offset != Cursor || E.Size > Bytes.size() - E.Offset) {
      Reason = "section " + std::to_string(E.Id) + " not contiguous";
      return false;
    }
    for (const Entry &Prev : Table)
      if (Prev.Id == E.Id) {
        Reason = "duplicate section id " + std::to_string(E.Id);
        return false;
      }
    if (crc32(Bytes.subspan(E.Offset, E.Size)) != Crc) {
      Reason = "section " + std::to_string(E.Id) + " checksum mismatch";
      return false;
    }
    Cursor = E.Offset + E.Size;
    Table.push_back(E);
  }
  if (Cursor != Bytes.size()) {
    Reason = "trailing bytes after last section";
    return false;
  }
  return true;
}
