//===- gfa/FixpointEngine.h - Worklist GFA fixpoint engine ------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared engine behind the SNC, DNC and OAG-IDS fixpoints. The textbook
/// formulation re-sweeps every production each iteration, rebuilding its
/// augmented dependency graph on the heap, re-running a full Warshall
/// closure and projecting bit by bit. This engine replaces all of that with:
///
///  * worklist rounds — a phylum -> productions incidence map (built once on
///    the AttributeGrammar) dirties exactly the productions incident to a
///    phylum whose relation changed in the previous round;
///  * word-parallel dense kernels — each production's occurrence matrix is
///    built directly from the precomputed DP BitMatrix, relations are pasted
///    and projected 64 bits per operation via BitMatrix::orRowSpan;
///  * incremental closures — each production caches its occurrence matrix
///    and its transitive closure across rounds; a re-processed production
///    only propagates the edges that are new since its last closure
///    (BitMatrix::closeWithEdge), falling back to a closure-seeded Warshall
///    when a round adds many edges at once;
///  * gated parallelism — the independent closure steps of one round fan
///    across a support/ThreadPool with a deterministic merge of projections
///    (order-independent ORs into the target PhylumRelation), but only once
///    the round's pending work passes the GfaOptions::ParallelMinWork
///    grammar-size gate.
///
/// Chaotic-iteration of a monotone operator over a finite lattice converges
/// to the unique least fixpoint regardless of processing order, so the
/// relations this engine computes are bit-identical to the naive sweep's
/// (pinned by the differential tests in tests/AnalysisTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_GFA_FIXPOINTENGINE_H
#define FNC2_GFA_FIXPOINTENGINE_H

#include "gfa/GrammarFlow.h"

#include <memory>
#include <utility>
#include <vector>

namespace fnc2 {

class ThreadPool;

/// Which occurrence blocks of the closed production graph are projected
/// back into the target relation each round: the LHS block (SNC), the child
/// blocks (DNC), or every block (OAG's IDS).
enum class GfaProject : uint8_t { Lhs, Children, All };

/// One fixpoint run over a grammar. The caches live as long as the engine,
/// so a test can run the fixpoint and then read the final closures for its
/// acyclicity check without rebuilding a single augmented graph.
class GfaFixpoint {
public:
  GfaFixpoint(const AttributeGrammar &AG, const GfaOptions &Opts);
  ~GfaFixpoint();

  /// Runs the worklist fixpoint to convergence: every production starts
  /// dirty; each round re-pastes \p Paste onto the dirty productions'
  /// cached occurrence matrices, re-closes them incrementally, and merges
  /// the \p Kind projections into \p Target, dirtying the productions
  /// incident to any phylum whose relation grew. \p Target must be one of
  /// the relations \p Paste points at (that feedback is what makes it a
  /// fixpoint). Returns the number of rounds.
  unsigned run(const AugmentOptions &Paste, GfaProject Kind,
               PhylumRelation &Target);

  /// The cached closure of production \p P's augmented graph; consistent
  /// with the final relations once run() returned.
  const BitMatrix &closure(ProdId P) const { return Closures[P]; }

  /// First production (in ProdId order) whose closed augmented graph
  /// contains a cycle, or InvalidId when all are acyclic. This is the
  /// SNC/DNC/IDS acyclicity check, straight off the cached closures.
  ProdId firstCyclicProd() const;

private:
  /// Rebuilds production \p P's occurrence matrix (pasting \p Paste
  /// word-parallel), collects the edges new since its cached closure, and
  /// re-closes. \p ColBuf is the calling worker's scratch for newly-set
  /// column indices.
  void processProd(ProdId P, const AugmentOptions &Paste,
                   std::vector<unsigned> &ColBuf);

  /// Applies the grammar-size gate to one round's pending closure work;
  /// lazily spins the pool up on the first round big enough to need it.
  bool gateParallel(uint64_t WorkBits, size_t DirtyCount);

  const AttributeGrammar &AG;
  GfaOptions Opts;

  /// Per-production buffers, reused across rounds: the occurrence matrix,
  /// its transitive closure, and the new-edge list of the current round.
  std::vector<BitMatrix> OccMats;
  std::vector<BitMatrix> Closures;
  std::vector<std::vector<std::pair<unsigned, unsigned>>> NewEdgeBufs;
  std::vector<char> HasCache;

  std::unique_ptr<ThreadPool> Pool;
  /// Per-worker scratch for orRowSpanCollect (index 0 doubles as the
  /// sequential path's scratch).
  std::vector<std::vector<unsigned>> ColBufs;
};

} // namespace fnc2

#endif // FNC2_GFA_FIXPOINTENGINE_H
