//===- gfa/GrammarFlow.cpp ------------------------------------------------===//

#include "gfa/GrammarFlow.h"

#include "support/Trace.h"

using namespace fnc2;

PhylumRelation::PhylumRelation(const AttributeGrammar &AG) {
  Rels.reserve(AG.numPhyla());
  for (PhylumId P = 0; P != AG.numPhyla(); ++P) {
    unsigned N = static_cast<unsigned>(AG.phylum(P).Attrs.size());
    Rels.emplace_back(N, N);
  }
}

unsigned PhylumRelation::totalPairs() const {
  unsigned N = 0;
  for (const BitMatrix &M : Rels)
    N += M.count();
  return N;
}

/// Pastes relation \p Rel of phylum \p Phy onto the occurrence block starting
/// at \p Base (the attributes of one symbol occurrence, in owner order).
static void pasteRelation(Digraph &G, const AttributeGrammar &AG, PhylumId Phy,
                          OccId Base, const BitMatrix &Rel) {
  unsigned N = static_cast<unsigned>(AG.phylum(Phy).Attrs.size());
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (Rel.test(A, B))
        G.addEdge(Base + A, Base + B);
}

/// Returns the dense occurrence id of the first attribute of the symbol at
/// position \p Pos within production \p P, precomputed per position by
/// AttributeGrammar::buildProductionInfo().
static OccId symbolBase(const AttributeGrammar &AG, ProdId P, unsigned Pos) {
  return AG.info(P).posBase(Pos);
}

Digraph fnc2::buildAugmentedGraph(const AttributeGrammar &AG, ProdId P,
                                  const AugmentOptions &Opts) {
  FNC2_COUNT("gfa.graphs_built", 1);
  const Production &Pr = AG.prod(P);
  const ProductionInfo &PI = AG.info(P);
  Digraph G(PI.numOccs());
  G.unionEdges(PI.DepGraph);

  if (Opts.Below)
    for (unsigned C = 0; C != Pr.arity(); ++C)
      pasteRelation(G, AG, Pr.Rhs[C], symbolBase(AG, P, C + 1),
                    (*Opts.Below)[Pr.Rhs[C]]);
  if (Opts.Above)
    pasteRelation(G, AG, Pr.Lhs, symbolBase(AG, P, 0), (*Opts.Above)[Pr.Lhs]);
  if (Opts.BelowOnLhs)
    pasteRelation(G, AG, Pr.Lhs, symbolBase(AG, P, 0),
                  (*Opts.BelowOnLhs)[Pr.Lhs]);
  return G;
}

BitMatrix fnc2::closureOf(const Digraph &G) {
  FNC2_COUNT("gfa.closures", 1);
  unsigned N = G.size();
  BitMatrix M(N, N);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned T : G.successors(I))
      M.set(I, T);
  M.transitiveClosure();
  return M;
}

bool fnc2::projectOntoSymbol(const AttributeGrammar &AG, ProdId P,
                             unsigned Pos, const BitMatrix &Closure,
                             PhylumRelation &Into) {
  const Production &Pr = AG.prod(P);
  PhylumId Phy = Pos == 0 ? Pr.Lhs : Pr.Rhs[Pos - 1];
  OccId Base = symbolBase(AG, P, Pos);
  unsigned N = static_cast<unsigned>(AG.phylum(Phy).Attrs.size());
  bool Changed = false;
  BitMatrix &Rel = Into[Phy];
  for (unsigned A = 0; A != N; ++A)
    for (unsigned B = 0; B != N; ++B)
      if (A != B && Closure.test(Base + A, Base + B))
        Changed |= Rel.set(A, B);
  return Changed;
}
