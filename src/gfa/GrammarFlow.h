//===- gfa/GrammarFlow.h - Grammar flow analysis engine ---------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Grammar Flow Analysis substrate (Möncke [38], with the improvements
/// of Jourdan & Parigot [26] in spirit): all circularity tests and the
/// ordered-partition computations are worklist fixpoints that propagate
/// per-phylum attribute relations through production dependency graphs.
/// This module provides the shared machinery: per-phylum relations, the
/// construction of augmented production graphs (DP(p) plus relations pasted
/// onto symbol occurrences), closure, and projection back onto phyla.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_GFA_GRAMMARFLOW_H
#define FNC2_GFA_GRAMMARFLOW_H

#include "grammar/AttributeGrammar.h"
#include "support/BitMatrix.h"
#include "support/Digraph.h"

namespace fnc2 {

/// One binary relation over the attributes of every phylum; entry (X, a, b)
/// reads "a must be available before b" (b transitively depends on a),
/// with a and b indexed by their position in the phylum's attribute list.
class PhylumRelation {
public:
  PhylumRelation() = default;
  explicit PhylumRelation(const AttributeGrammar &AG);

  BitMatrix &operator[](PhylumId P) { return Rels[P]; }
  const BitMatrix &operator[](PhylumId P) const { return Rels[P]; }

  /// Total number of related pairs across all phyla.
  unsigned totalPairs() const;

  bool operator==(const PhylumRelation &Other) const {
    return Rels == Other.Rels;
  }

private:
  std::vector<BitMatrix> Rels;
};

/// Tuning knobs for the GFA fixpoints (SNC/DNC/OAG-IDS). The defaults give
/// the optimized engine: worklist rounds over dirty productions, dense
/// word-parallel occurrence matrices, incrementally re-closed from cached
/// closures, with the per-production closure+project work of one round
/// fanned across a thread pool once a grammar is big enough to pay for it.
struct GfaOptions {
  /// Reference path: the textbook fixpoint (global re-sweeps over every
  /// production, heap-allocated augmented Digraphs, full Warshall closures,
  /// bit-at-a-time projection). Kept for differential tests and as the
  /// before-side of bench/generator_scaling.
  bool NaiveFixpoint = false;
  /// Worker threads for the parallel rounds; 0 = one per hardware thread,
  /// 1 = always sequential.
  unsigned Threads = 0;
  /// Grammar-size scaling gate: a round fans out only when its pending
  /// closure work (sum over dirty productions of numOccs^2 bit cells)
  /// reaches this threshold. Small grammars never pay thread start-up or
  /// hand-off costs; set to 0 to force the parallel path in tests.
  uint64_t ParallelMinWork = 1u << 18;
};

/// Options selecting which relations get pasted onto which occurrences when
/// building an augmented production graph.
struct AugmentOptions {
  /// Relation pasted onto every RHS child occurrence ("from below", the IO
  /// graphs / argument selectors).
  const PhylumRelation *Below = nullptr;
  /// Relation pasted onto the LHS occurrence ("from above", the OI closure
  /// used by the DNC test).
  const PhylumRelation *Above = nullptr;
  /// Relation additionally pasted onto the LHS (used by Kastens' IDP
  /// computation where the symbol relation applies at every position).
  const PhylumRelation *BelowOnLhs = nullptr;
};

/// Builds DP(p) augmented with the requested relations. Node ids match the
/// production's dense occurrence ids.
Digraph buildAugmentedGraph(const AttributeGrammar &AG, ProdId P,
                            const AugmentOptions &Opts);

/// Computes the transitive closure of \p G as an occurrence BitMatrix.
BitMatrix closureOf(const Digraph &G);

/// Projects the closed occurrence relation \p Closure of production \p P
/// onto the attributes of the symbol at \p Pos (0 = LHS) and ors the result
/// into \p Into's relation for that phylum. Returns true iff bits changed.
bool projectOntoSymbol(const AttributeGrammar &AG, ProdId P, unsigned Pos,
                       const BitMatrix &Closure, PhylumRelation &Into);

} // namespace fnc2

#endif // FNC2_GFA_GRAMMARFLOW_H
