//===- gfa/FixpointEngine.cpp ---------------------------------------------===//

#include "gfa/FixpointEngine.h"

#include "support/ThreadPool.h"
#include "support/Trace.h"

#include <algorithm>
#include <numeric>

using namespace fnc2;

GfaFixpoint::GfaFixpoint(const AttributeGrammar &AG, const GfaOptions &Opts)
    : AG(AG), Opts(Opts), OccMats(AG.numProds()), Closures(AG.numProds()),
      NewEdgeBufs(AG.numProds()), HasCache(AG.numProds(), 0), ColBufs(1) {}

GfaFixpoint::~GfaFixpoint() = default;

bool GfaFixpoint::gateParallel(uint64_t WorkBits, size_t DirtyCount) {
  if (Opts.Threads == 1 || DirtyCount < 2 || WorkBits < Opts.ParallelMinWork)
    return false;
  // The size gate passed; whether the round actually fans out still depends
  // on the machine (a one-core pool keeps it sequential).
  FNC2_COUNT("gfa.gate_rounds", 1);
  if (!Pool) {
    Pool = std::make_unique<ThreadPool>(Opts.Threads);
    ColBufs.resize(std::max(1u, Pool->numThreads()));
  }
  return Pool->numThreads() > 1;
}

void GfaFixpoint::processProd(ProdId P, const AugmentOptions &Paste,
                              std::vector<unsigned> &ColBuf) {
  const ProductionInfo &PI = AG.info(P);
  const Production &Pr = AG.prod(P);
  unsigned N = PI.numOccs();
  BitMatrix &M = OccMats[P];
  auto &NewEdges = NewEdgeBufs[P];
  NewEdges.clear();
  const bool Fresh = !HasCache[P];
  if (Fresh)
    M = PI.DepMatrix;

  // Paste each requested relation onto its occurrence block, 64 bits per
  // OR. Relations only grow, so the cached matrix absorbs the new bits in
  // place; on a revisit the newly-set bits are exactly the edges the cached
  // closure is missing.
  auto paste = [&](const PhylumRelation &Rel, PhylumId Phy, unsigned Pos) {
    unsigned K = static_cast<unsigned>(AG.phylum(Phy).Attrs.size());
    OccId Base = PI.posBase(Pos);
    const BitMatrix &R = Rel[Phy];
    for (unsigned A = 0; A != K; ++A) {
      if (Fresh) {
        M.orRowSpan(Base + A, Base, R, A, 0, K);
      } else {
        ColBuf.clear();
        if (M.orRowSpanCollect(Base + A, Base, R, A, 0, K, ColBuf))
          for (unsigned Col : ColBuf)
            NewEdges.emplace_back(Base + A, Col);
      }
    }
  };
  if (Paste.Below)
    for (unsigned C = 0; C != Pr.arity(); ++C)
      paste(*Paste.Below, Pr.Rhs[C], C + 1);
  if (Paste.Above)
    paste(*Paste.Above, Pr.Lhs, 0);
  if (Paste.BelowOnLhs)
    paste(*Paste.BelowOnLhs, Pr.Lhs, 0);

  if (!Fresh && NewEdges.empty())
    return; // Nothing the cached closure doesn't already cover.

  BitMatrix &C = Closures[P];
  FNC2_COUNT("gfa.closures", 1);
  if (Fresh) {
    C = M;
    C.transitiveClosure();
    HasCache[P] = 1;
    return;
  }
  FNC2_COUNT("gfa.closure_reuse", 1);
  if (NewEdges.size() >= N) {
    // Many new edges at once: one Warshall pass seeded from the cached
    // closure beats per-edge propagation.
    C.orInPlace(M);
    C.transitiveClosure();
    return;
  }
  for (auto [From, To] : NewEdges)
    C.closeWithEdge(From, To);
}

unsigned GfaFixpoint::run(const AugmentOptions &Paste, GfaProject Kind,
                          PhylumRelation &Target) {
  FNC2_SPAN("gfa.fixpoint");
  const unsigned NumProds = AG.numProds();
  const bool TargetBelow = Paste.Below == &Target;
  const bool TargetOnLhs =
      Paste.Above == &Target || Paste.BelowOnLhs == &Target;

  std::vector<ProdId> Dirty(NumProds);
  std::iota(Dirty.begin(), Dirty.end(), 0);
  std::vector<char> InDirty(NumProds, 1);
  std::vector<char> PhyChanged(AG.numPhyla(), 0);
  std::vector<ProdId> Next;
  unsigned Rounds = 0;

  while (!Dirty.empty()) {
    ++Rounds;
    FNC2_COUNT("gfa.rounds", 1);
    FNC2_COUNT("gfa.worklist_hits", Dirty.size());
    FNC2_COUNT("gfa.worklist_skips", NumProds - Dirty.size());

    // Stage 1: rebuild + re-close every dirty production. The tasks are
    // independent (each touches only its own cached matrices), so the round
    // fans out once the grammar-size gate passes.
    uint64_t WorkBits = 0;
    for (ProdId P : Dirty) {
      uint64_t N = AG.info(P).numOccs();
      WorkBits += N * N;
    }
    if (gateParallel(WorkBits, Dirty.size())) {
      FNC2_COUNT("gfa.parallel_rounds", 1);
      Pool->parallelFor(Dirty.size(), [&](size_t I, unsigned Worker) {
        processProd(Dirty[I], Paste, ColBufs[Worker]);
      });
    } else {
      for (ProdId P : Dirty)
        processProd(P, Paste, ColBufs[0]);
    }

    // Stage 2: merge the projections into the target relation. Sequential
    // and in ascending ProdId order; ORs commute, so the merged relation is
    // independent of the stage-1 execution order — this is the determinism
    // argument for the parallel rounds.
    std::fill(PhyChanged.begin(), PhyChanged.end(), 0);
    auto projectPos = [&](ProdId P, unsigned Pos) {
      const Production &Pr = AG.prod(P);
      PhylumId Phy = Pos == 0 ? Pr.Lhs : Pr.Rhs[Pos - 1];
      unsigned K = static_cast<unsigned>(AG.phylum(Phy).Attrs.size());
      if (K == 0)
        return;
      OccId Base = AG.info(P).posBase(Pos);
      const BitMatrix &C = Closures[P];
      BitMatrix &Rel = Target[Phy];
      bool Changed = false;
      for (unsigned A = 0; A != K; ++A)
        Changed |= Rel.orRowSpan(A, 0, C, Base + A, Base, K, /*Skip=*/A);
      if (Changed)
        PhyChanged[Phy] = 1;
    };
    for (ProdId P : Dirty) {
      if (Kind != GfaProject::Children)
        projectPos(P, 0);
      if (Kind != GfaProject::Lhs)
        for (unsigned C = 0; C != AG.prod(P).arity(); ++C)
          projectPos(P, C + 1);
    }

    // Stage 3: dirty exactly the productions that read a grown relation —
    // through the paste slot(s) that alias the target.
    Next.clear();
    std::fill(InDirty.begin(), InDirty.end(), 0);
    auto mark = [&](ProdId P) {
      if (!InDirty[P]) {
        InDirty[P] = 1;
        Next.push_back(P);
      }
    };
    for (PhylumId X = 0; X != AG.numPhyla(); ++X) {
      if (!PhyChanged[X])
        continue;
      if (TargetBelow)
        for (ProdId P : AG.rhsProds(X))
          mark(P);
      if (TargetOnLhs)
        for (ProdId P : AG.phylum(X).Prods)
          mark(P);
    }
    std::sort(Next.begin(), Next.end());
    Dirty.swap(Next);
  }
  return Rounds;
}

ProdId GfaFixpoint::firstCyclicProd() const {
  for (ProdId P = 0; P != AG.numProds(); ++P)
    if (HasCache[P] && Closures[P].hasReflexiveBit())
      return P;
  return InvalidId;
}
