//===- codegen/CEmitter.h - Translation to C --------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The translator to C (paper section 3.2): emits a self-contained C source
/// implementing a generated evaluator — a small value runtime, the
/// constants and functions of the molga modules (the "non-AG parts",
/// workload AG 7's job), per-rule semantic functions, abstract tree
/// constructors (workload AG 3's job), and the visit sequences as static
/// tables driven by an embedded interpreter. The original translators were
/// admittedly naive (no garbage collector); ours leaks likewise, on
/// purpose, to stay close to the paper's C backend.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_CODEGEN_CEMITTER_H
#define FNC2_CODEGEN_CEMITTER_H

#include "fnc2/Generator.h"
#include "olga/Driver.h"

namespace fnc2 {

struct CEmitStats {
  unsigned Functions = 0;
  unsigned Rules = 0;
  unsigned Constructors = 0;
  unsigned VisitSequences = 0;
  unsigned Lines = 0;
};

/// Emits C for one lowered grammar plus its program (functions/constants)
/// and generated evaluator. Returns the C source text.
std::string emitC(const olga::LoweredGrammar &LG,
                  const GeneratedEvaluator &GE, CEmitStats &Stats,
                  DiagnosticEngine &Diags);

/// Emits only the non-AG parts (constants and functions of every module in
/// the program) — the paper's AG 7 workload.
std::string emitCFunctions(const olga::Program &Prog, CEmitStats &Stats,
                           DiagnosticEngine &Diags);

} // namespace fnc2

#endif // FNC2_CODEGEN_CEMITTER_H
