//===- tools/Companion.h - asx / ppat / mkfnc2 analogues --------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The companion processors of paper section 3.3:
///
///  * **asx** analyses attributed abstract syntax descriptions — here,
///    well-definedness checking of a tree signature (phyla/operators
///    without semantic rules) and a signature printer;
///  * **ppat** generates unparsers for attributed abstract trees from
///    per-operator templates; operators without a user template fall back
///    to a generic tree-language-independent rendering (figure 4's split
///    between the generated part and the reusable part);
///  * **mkfnc2** automates application construction — here, the module
///    dependency graph over a molga compilation unit with cycle detection
///    and a topological build order.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_TOOLS_COMPANION_H
#define FNC2_TOOLS_COMPANION_H

#include "olga/Ast.h"
#include "tree/Tree.h"

#include <map>

namespace fnc2 {

//===----------------------------------------------------------------------===//
// asx
//===----------------------------------------------------------------------===//

/// Statistics of an attributed abstract syntax description.
struct AsxReport {
  bool WellDefined = false;
  unsigned Phyla = 0;
  unsigned Operators = 0;
  unsigned LeafOperators = 0;
  unsigned MaxArity = 0;
};

/// Checks the tree-signature part of \p AG (the asx job): every phylum
/// productive, everything reachable, arities consistent. Rule-level
/// well-definedness is the front-end's business and not re-checked here.
AsxReport checkAbstractSyntax(const AttributeGrammar &AG,
                              DiagnosticEngine &Diags);

/// Renders the signature in asx-like notation.
std::string printAbstractSyntax(const AttributeGrammar &AG);

//===----------------------------------------------------------------------===//
// ppat
//===----------------------------------------------------------------------===//

/// One piece of an unparse template.
struct UnparsePiece {
  enum class Kind : uint8_t { Text, Child, Lexeme };
  Kind K = Kind::Text;
  std::string Text;
  unsigned Child = 0;

  static UnparsePiece text(std::string S) {
    UnparsePiece P;
    P.K = Kind::Text;
    P.Text = std::move(S);
    return P;
  }
  static UnparsePiece child(unsigned C) {
    UnparsePiece P;
    P.K = Kind::Child;
    P.Child = C;
    return P;
  }
  static UnparsePiece lexeme() {
    UnparsePiece P;
    P.K = Kind::Lexeme;
    return P;
  }
};

/// An unparser generated from per-operator templates.
class Unparser {
public:
  explicit Unparser(const AttributeGrammar &AG) : AG(&AG) {}

  /// Installs the user template for one operator (the tree-language-
  /// dependent part).
  void setTemplate(ProdId P, std::vector<UnparsePiece> Pieces) {
    Templates[P] = std::move(Pieces);
  }

  /// Renders a subtree; operators without a template use the generic
  /// Name(child,...) fallback.
  std::string unparse(const TreeNode *N) const;

  /// How many operators have user templates vs. rely on the fallback.
  unsigned numUserTemplates() const {
    return static_cast<unsigned>(Templates.size());
  }
  unsigned numFallbackOperators() const {
    return AG->numProds() - numUserTemplates();
  }

private:
  const AttributeGrammar *AG;
  std::map<ProdId, std::vector<UnparsePiece>> Templates;
};

//===----------------------------------------------------------------------===//
// mkfnc2
//===----------------------------------------------------------------------===//

/// The module dependency graph of a compilation unit.
struct ModuleDepGraph {
  std::vector<std::string> Units; ///< Modules then grammars.
  /// Edges importer -> imported, as indices into Units.
  std::vector<std::pair<unsigned, unsigned>> Edges;
  bool HasCycle = false;
  /// Valid build order when acyclic (dependencies first).
  std::vector<std::string> BuildOrder;
  /// A cycle witness when cyclic.
  std::vector<std::string> Cycle;
};

/// Builds the dependency graph of \p Unit (the mkfnc2 job). Unknown imports
/// are reported through \p Diags.
ModuleDepGraph buildModuleDepGraph(const olga::CompilationUnit &Unit,
                                   DiagnosticEngine &Diags);

} // namespace fnc2

#endif // FNC2_TOOLS_COMPANION_H
