//===- tools/Companion.cpp ------------------------------------------------===//

#include "tools/Companion.h"

#include <algorithm>

using namespace fnc2;

//===----------------------------------------------------------------------===//
// asx
//===----------------------------------------------------------------------===//

AsxReport fnc2::checkAbstractSyntax(const AttributeGrammar &AG,
                                    DiagnosticEngine &Diags) {
  AsxReport R;
  R.Phyla = AG.numPhyla();
  R.Operators = AG.numProds();
  unsigned Before = Diags.errorCount();

  std::vector<bool> HasOp(AG.numPhyla(), false);
  for (const Production &P : AG.Prods) {
    HasOp[P.Lhs] = true;
    R.MaxArity = std::max(R.MaxArity, P.arity());
    if (P.arity() == 0)
      ++R.LeafOperators;
  }
  for (PhylumId X = 0; X != AG.numPhyla(); ++X)
    if (!HasOp[X])
      Diags.error("asx: phylum '" + AG.phylum(X).Name +
                  "' has no operator (no finite tree exists)");

  // Productivity: a phylum is productive when some operator's sons are all
  // productive; fixpoint.
  std::vector<bool> Productive(AG.numPhyla(), false);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Production &P : AG.Prods) {
      if (Productive[P.Lhs])
        continue;
      bool Ok = true;
      for (PhylumId C : P.Rhs)
        Ok &= Productive[C];
      if (Ok) {
        Productive[P.Lhs] = true;
        Changed = true;
      }
    }
  }
  for (PhylumId X = 0; X != AG.numPhyla(); ++X)
    if (HasOp[X] && !Productive[X])
      Diags.error("asx: phylum '" + AG.phylum(X).Name +
                  "' is unproductive (every operator recurses)");

  if (AG.Start != InvalidId) {
    std::vector<bool> Reach(AG.numPhyla(), false);
    std::vector<PhylumId> Work = {AG.Start};
    Reach[AG.Start] = true;
    while (!Work.empty()) {
      PhylumId X = Work.back();
      Work.pop_back();
      for (ProdId P : AG.phylum(X).Prods)
        for (PhylumId C : AG.prod(P).Rhs)
          if (!Reach[C]) {
            Reach[C] = true;
            Work.push_back(C);
          }
    }
    for (PhylumId X = 0; X != AG.numPhyla(); ++X)
      if (!Reach[X])
        Diags.warning("asx: phylum '" + AG.phylum(X).Name +
                      "' is unreachable from the root phylum");
  }

  R.WellDefined = Diags.errorCount() == Before;
  return R;
}

std::string fnc2::printAbstractSyntax(const AttributeGrammar &AG) {
  std::string Out = "abstract syntax " + AG.Name + "\n";
  for (PhylumId X = 0; X != AG.numPhyla(); ++X) {
    Out += AG.phylum(X).Name;
    Out += X == AG.Start ? " (root) ::=" : " ::=";
    bool First = true;
    for (ProdId P : AG.phylum(X).Prods) {
      const Production &Pr = AG.prod(P);
      Out += First ? " " : " | ";
      First = false;
      Out += Pr.Name;
      if (Pr.arity() != 0 || Pr.HasLexeme) {
        Out += "(";
        for (unsigned C = 0; C != Pr.arity(); ++C) {
          if (C)
            Out += ", ";
          Out += AG.phylum(Pr.Rhs[C]).Name;
        }
        if (Pr.HasLexeme)
          Out += std::string(Pr.arity() ? ", " : "") +
                 (Pr.StringLexeme ? "STRING" : "INT");
        Out += ")";
      }
    }
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ppat
//===----------------------------------------------------------------------===//

std::string Unparser::unparse(const TreeNode *N) const {
  auto It = Templates.find(N->Prod);
  if (It == Templates.end()) {
    // Generic fallback: the tree-language-independent part.
    const Production &Pr = AG->prod(N->Prod);
    std::string Out = Pr.Name;
    if (Pr.HasLexeme)
      Out += "<" + (N->Lexeme.isString() ? N->Lexeme.asString()
                                         : N->Lexeme.str()) + ">";
    if (N->arity() != 0) {
      Out += "(";
      for (unsigned C = 0; C != N->arity(); ++C) {
        if (C)
          Out += ", ";
        Out += unparse(N->child(C));
      }
      Out += ")";
    }
    return Out;
  }
  std::string Out;
  for (const UnparsePiece &P : It->second) {
    switch (P.K) {
    case UnparsePiece::Kind::Text:
      Out += P.Text;
      break;
    case UnparsePiece::Kind::Child:
      if (P.Child < N->arity())
        Out += unparse(N->child(P.Child));
      break;
    case UnparsePiece::Kind::Lexeme:
      Out += N->Lexeme.isString() ? N->Lexeme.asString() : N->Lexeme.str();
      break;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// mkfnc2
//===----------------------------------------------------------------------===//

ModuleDepGraph fnc2::buildModuleDepGraph(const olga::CompilationUnit &Unit,
                                         DiagnosticEngine &Diags) {
  ModuleDepGraph G;
  std::map<std::string, unsigned> Index;
  auto addUnit = [&](const std::string &Name) {
    if (Index.count(Name))
      return;
    Index[Name] = static_cast<unsigned>(G.Units.size());
    G.Units.push_back(Name);
  };
  for (const olga::ModuleDecl &M : Unit.Modules)
    addUnit(M.Name);
  for (const olga::GrammarDecl &Gr : Unit.Grammars)
    addUnit(Gr.Name);

  auto addEdges = [&](const std::string &From,
                      const std::vector<std::string> &Imports,
                      SourceLoc Loc) {
    for (const std::string &To : Imports) {
      auto It = Index.find(To);
      if (It == Index.end()) {
        Diags.error("mkfnc2: '" + From + "' imports unknown unit '" + To +
                        "'",
                    Loc);
        continue;
      }
      G.Edges.emplace_back(Index[From], It->second);
    }
  };
  for (const olga::ModuleDecl &M : Unit.Modules)
    addEdges(M.Name, M.Imports, M.Loc);
  for (const olga::GrammarDecl &Gr : Unit.Grammars)
    addEdges(Gr.Name, Gr.Imports, Gr.Loc);

  // Topological order with dependencies first (edges point importer ->
  // imported, so we order by reversed edges).
  Digraph D(static_cast<unsigned>(G.Units.size()));
  for (auto &[From, To] : G.Edges)
    D.addEdge(To, From);
  auto Order = D.topologicalOrder();
  if (Order) {
    for (unsigned U : *Order)
      G.BuildOrder.push_back(G.Units[U]);
  } else {
    G.HasCycle = true;
    for (unsigned U : D.findCycle())
      G.Cycle.push_back(G.Units[U]);
    Diags.error("mkfnc2: cyclic imports detected");
  }
  return G;
}
