//===- value/Value.h - Attribute value domain -------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value domain attributes range over: unit, integers, booleans,
/// strings, immutable lists and persistent maps (assoc environments used as
/// symbol tables). Maps share structure on extension, which is what makes the
/// incremental evaluator's old/new comparison affordable (paper section
/// 2.1.2: the notion of equality used in the comparison is adaptable; we
/// default to structural equality).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_VALUE_VALUE_H
#define FNC2_VALUE_VALUE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace fnc2 {

class Value;

/// Persistent association environment: extension chains a new binding in
/// front of the parent, so symbol tables built during evaluation share tails.
struct EnvNode {
  std::string Key;
  std::shared_ptr<Value> Bound;
  std::shared_ptr<const EnvNode> Parent;
};

/// A dynamically-typed attribute value.
class Value {
public:
  enum class Kind : uint8_t { Unit, Int, Bool, Str, List, Map };

  Value() : TheKind(Kind::Unit) {}

  static Value unit() { return Value(); }
  static Value ofInt(int64_t V);
  static Value ofBool(bool V);
  static Value ofString(std::string V);
  static Value ofList(std::vector<Value> Elems);
  static Value emptyMap();

  Kind kind() const { return TheKind; }
  bool isUnit() const { return TheKind == Kind::Unit; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isString() const { return TheKind == Kind::Str; }
  bool isList() const { return TheKind == Kind::List; }
  bool isMap() const { return TheKind == Kind::Map; }

  /// Accessors assert on kind mismatch (programmatic error).
  int64_t asInt() const;
  bool asBool() const;
  const std::string &asString() const;
  const std::vector<Value> &asList() const;

  /// Returns a map extended with Key -> V (shares structure with this map).
  Value mapInsert(const std::string &Key, Value V) const;
  /// Looks up Key; returns nullptr when absent.
  const Value *mapLookup(const std::string &Key) const;
  /// Number of visible (non-shadowed) bindings.
  unsigned mapSize() const;
  /// Visible bindings, most recently inserted first, shadowed ones skipped.
  std::vector<std::pair<std::string, Value>> mapEntries() const;

  /// Returns a list with \p V appended (copies; lists are immutable values).
  Value listAppend(Value V) const;
  /// Concatenation of two lists.
  static Value listConcat(const Value &A, const Value &B);

  /// Structural equality; maps compare by visible bindings.
  bool equals(const Value &Other) const;
  bool operator==(const Value &Other) const { return equals(Other); }

  /// Human-readable rendering (lists as [..], maps as {k=v, ..}).
  std::string str() const;

  /// A stable structural hash, consistent with equals().
  size_t hash() const;

private:
  Kind TheKind;
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::shared_ptr<const std::string> StrVal;
  std::shared_ptr<const std::vector<Value>> ListVal;
  std::shared_ptr<const EnvNode> MapVal;
};

/// Signature of a semantic function: strict, pure, takes argument values in
/// rule order and returns the defined occurrence's value.
using SemanticFn = std::function<Value(const std::vector<Value> &)>;

} // namespace fnc2

#endif // FNC2_VALUE_VALUE_H
