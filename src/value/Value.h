//===- value/Value.h - Attribute value domain -------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic value domain attributes range over: unit, integers, booleans,
/// strings, immutable lists and persistent maps (assoc environments used as
/// symbol tables). Maps share structure on extension, which is what makes the
/// incremental evaluator's old/new comparison affordable (paper section
/// 2.1.2: the notion of equality used in the comparison is adaptable; we
/// default to structural equality).
///
/// Strings are interned in a global sharded pool, so string values and map
/// keys compare by pointer first: two equal strings built through ofString()
/// share one heap object, which turns the incremental cutoff's equality test
/// and mapLookup chains into pointer comparisons. A Value is three words:
/// kind, an integer payload, and one shared_ptr that carries the string /
/// list / map representation depending on the kind.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_VALUE_VALUE_H
#define FNC2_VALUE_VALUE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fnc2 {

struct EnvNode;

/// Interns \p S in the process-wide pool: equal contents yield the same
/// pointer for the lifetime of the process. Thread-safe (sharded locks); the
/// pool only grows, which is the usual compiler-style interning trade.
std::shared_ptr<const std::string> internString(std::string S);

/// A dynamically-typed attribute value.
class Value {
public:
  enum class Kind : uint8_t { Unit, Int, Bool, Str, List, Map };

  Value() : TheKind(Kind::Unit) {}

  static Value unit() { return Value(); }
  static Value ofInt(int64_t V);
  static Value ofBool(bool V);
  static Value ofString(std::string V);
  static Value ofList(std::vector<Value> Elems);
  static Value emptyMap();

  Kind kind() const { return TheKind; }
  bool isUnit() const { return TheKind == Kind::Unit; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isBool() const { return TheKind == Kind::Bool; }
  bool isString() const { return TheKind == Kind::Str; }
  bool isList() const { return TheKind == Kind::List; }
  bool isMap() const { return TheKind == Kind::Map; }

  /// Accessors assert on kind mismatch (programmatic error).
  int64_t asInt() const {
    assert(isInt() && "value is not an integer");
    return IntVal;
  }
  bool asBool() const {
    assert(isBool() && "value is not a boolean");
    return IntVal != 0;
  }
  const std::string &asString() const;
  const std::vector<Value> &asList() const;

  /// Returns a map extended with Key -> V (shares structure with this map).
  Value mapInsert(const std::string &Key, Value V) const;
  /// Looks up Key; returns nullptr when absent.
  const Value *mapLookup(const std::string &Key) const;
  /// Number of visible (non-shadowed) bindings.
  unsigned mapSize() const;
  /// Visible bindings, most recently inserted first, shadowed ones skipped.
  std::vector<std::pair<std::string, Value>> mapEntries() const;

  /// Returns a list with \p V appended (copies; lists are immutable values).
  Value listAppend(Value V) const &;
  /// Rvalue builder path: when this value is the sole owner of its element
  /// vector the append mutates in place, so `L = std::move(L).listAppend(V)`
  /// builds an N-element list in amortized O(N) instead of O(N^2).
  Value listAppend(Value V) &&;
  /// Concatenation of two lists.
  static Value listConcat(const Value &A, const Value &B);

  /// Structural equality; maps compare by visible bindings. Strings and
  /// shared representations short-circuit on pointer identity.
  bool equals(const Value &Other) const;
  bool operator==(const Value &Other) const { return equals(Other); }

  /// Human-readable rendering (lists as [..], maps as {k=v, ..}).
  std::string str() const;

  /// A stable structural hash, consistent with equals().
  size_t hash() const;

  /// The heap representation's identity, for tests of interning / sharing.
  /// Null for Unit/Int/Bool and the empty map.
  const void *identity() const { return Ref.get(); }

private:
  const std::string *strPtr() const {
    return static_cast<const std::string *>(Ref.get());
  }
  const std::vector<Value> *listPtr() const {
    return static_cast<const std::vector<Value> *>(Ref.get());
  }
  const EnvNode *mapPtr() const {
    return static_cast<const EnvNode *>(Ref.get());
  }

  Kind TheKind;
  int64_t IntVal = 0; ///< Int payload; Bool packs here as 0/1.
  /// Str: interned std::string; List: std::vector<Value> (allocated
  /// non-const so the unique-owner append path may extend it); Map: EnvNode
  /// chain head, null for the empty map.
  std::shared_ptr<const void> Ref;
};

/// Persistent association environment: extension chains a new binding in
/// front of the parent, so symbol tables built during evaluation share tails.
/// Keys are interned, so lookup compares pointers, not characters.
struct EnvNode {
  std::shared_ptr<const std::string> Key;
  Value Bound;
  std::shared_ptr<const EnvNode> Parent;
};

/// Signature of a semantic function: strict, pure, takes argument values in
/// rule order and returns the defined occurrence's value. The span points
/// into the evaluator's reusable argument buffer and is only valid for the
/// duration of the call.
using SemanticFn = std::function<Value(std::span<const Value>)>;

} // namespace fnc2

#endif // FNC2_VALUE_VALUE_H
