//===- value/Value.cpp ----------------------------------------------------===//

#include "value/Value.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace fnc2;

Value Value::ofInt(int64_t V) {
  Value R;
  R.TheKind = Kind::Int;
  R.IntVal = V;
  return R;
}

Value Value::ofBool(bool V) {
  Value R;
  R.TheKind = Kind::Bool;
  R.BoolVal = V;
  return R;
}

Value Value::ofString(std::string V) {
  Value R;
  R.TheKind = Kind::Str;
  R.StrVal = std::make_shared<const std::string>(std::move(V));
  return R;
}

Value Value::ofList(std::vector<Value> Elems) {
  Value R;
  R.TheKind = Kind::List;
  R.ListVal = std::make_shared<const std::vector<Value>>(std::move(Elems));
  return R;
}

Value Value::emptyMap() {
  Value R;
  R.TheKind = Kind::Map;
  return R;
}

int64_t Value::asInt() const {
  assert(isInt() && "value is not an integer");
  return IntVal;
}

bool Value::asBool() const {
  assert(isBool() && "value is not a boolean");
  return BoolVal;
}

const std::string &Value::asString() const {
  assert(isString() && "value is not a string");
  return *StrVal;
}

const std::vector<Value> &Value::asList() const {
  assert(isList() && "value is not a list");
  return *ListVal;
}

Value Value::mapInsert(const std::string &Key, Value V) const {
  assert(isMap() && "value is not a map");
  auto Node = std::make_shared<EnvNode>();
  Node->Key = Key;
  Node->Bound = std::make_shared<Value>(std::move(V));
  Node->Parent = MapVal;
  Value R;
  R.TheKind = Kind::Map;
  R.MapVal = std::move(Node);
  return R;
}

const Value *Value::mapLookup(const std::string &Key) const {
  assert(isMap() && "value is not a map");
  for (const EnvNode *N = MapVal.get(); N; N = N->Parent.get())
    if (N->Key == Key)
      return N->Bound.get();
  return nullptr;
}

unsigned Value::mapSize() const {
  return static_cast<unsigned>(mapEntries().size());
}

std::vector<std::pair<std::string, Value>> Value::mapEntries() const {
  assert(isMap() && "value is not a map");
  std::vector<std::pair<std::string, Value>> Out;
  std::set<std::string> Seen;
  for (const EnvNode *N = MapVal.get(); N; N = N->Parent.get())
    if (Seen.insert(N->Key).second)
      Out.emplace_back(N->Key, *N->Bound);
  return Out;
}

Value Value::listAppend(Value V) const {
  assert(isList() && "value is not a list");
  std::vector<Value> Elems = *ListVal;
  Elems.push_back(std::move(V));
  return ofList(std::move(Elems));
}

Value Value::listConcat(const Value &A, const Value &B) {
  std::vector<Value> Elems = A.asList();
  const auto &BE = B.asList();
  Elems.insert(Elems.end(), BE.begin(), BE.end());
  return ofList(std::move(Elems));
}

bool Value::equals(const Value &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Unit:
    return true;
  case Kind::Int:
    return IntVal == Other.IntVal;
  case Kind::Bool:
    return BoolVal == Other.BoolVal;
  case Kind::Str:
    return *StrVal == *Other.StrVal;
  case Kind::List: {
    if (ListVal == Other.ListVal)
      return true;
    const auto &A = *ListVal, &B = *Other.ListVal;
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, E = A.size(); I != E; ++I)
      if (!A[I].equals(B[I]))
        return false;
    return true;
  }
  case Kind::Map: {
    if (MapVal == Other.MapVal)
      return true;
    auto A = mapEntries(), B = Other.mapEntries();
    if (A.size() != B.size())
      return false;
    auto ByKey = [](const auto &X, const auto &Y) { return X.first < Y.first; };
    std::sort(A.begin(), A.end(), ByKey);
    std::sort(B.begin(), B.end(), ByKey);
    for (size_t I = 0, E = A.size(); I != E; ++I)
      if (A[I].first != B[I].first || !A[I].second.equals(B[I].second))
        return false;
    return true;
  }
  }
  return false;
}

std::string Value::str() const {
  switch (TheKind) {
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Bool:
    return BoolVal ? "true" : "false";
  case Kind::Str:
    return "\"" + *StrVal + "\"";
  case Kind::List: {
    std::string Out = "[";
    for (size_t I = 0, E = ListVal->size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += (*ListVal)[I].str();
    }
    Out += "]";
    return Out;
  }
  case Kind::Map: {
    auto Entries = mapEntries();
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    std::string Out = "{";
    for (size_t I = 0, E = Entries.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += Entries[I].first;
      Out += "=";
      Out += Entries[I].second.str();
    }
    Out += "}";
    return Out;
  }
  }
  return "<?>";
}

static size_t hashCombine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t Value::hash() const {
  size_t H = static_cast<size_t>(TheKind);
  switch (TheKind) {
  case Kind::Unit:
    break;
  case Kind::Int:
    H = hashCombine(H, std::hash<int64_t>()(IntVal));
    break;
  case Kind::Bool:
    H = hashCombine(H, BoolVal ? 1 : 2);
    break;
  case Kind::Str:
    H = hashCombine(H, std::hash<std::string>()(*StrVal));
    break;
  case Kind::List:
    for (const Value &E : *ListVal)
      H = hashCombine(H, E.hash());
    break;
  case Kind::Map: {
    auto Entries = mapEntries();
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[K, V] : Entries) {
      H = hashCombine(H, std::hash<std::string>()(K));
      H = hashCombine(H, V.hash());
    }
    break;
  }
  }
  return H;
}
