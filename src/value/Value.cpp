//===- value/Value.cpp ----------------------------------------------------===//

#include "value/Value.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <mutex>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

using namespace fnc2;

//===----------------------------------------------------------------------===//
// String interning
//===----------------------------------------------------------------------===//

namespace {

/// One lock + table per shard; sharding keeps the batch engines' worker
/// threads from serializing on a single pool mutex. The string_view keys
/// point into the shared_ptr-owned strings, which are never erased, so the
/// views stay valid for the life of the pool.
struct InternShard {
  std::mutex M;
  std::unordered_map<std::string_view, std::shared_ptr<const std::string>>
      Table;
};

constexpr size_t NumInternShards = 16;

std::array<InternShard, NumInternShards> &internShards() {
  static std::array<InternShard, NumInternShards> Shards;
  return Shards;
}

} // namespace

std::shared_ptr<const std::string> fnc2::internString(std::string S) {
  const size_t H = std::hash<std::string_view>()(S);
  InternShard &Shard = internShards()[H % NumInternShards];
  std::lock_guard<std::mutex> Lock(Shard.M);
  auto It = Shard.Table.find(std::string_view(S));
  if (It != Shard.Table.end())
    return It->second;
  auto Interned = std::make_shared<const std::string>(std::move(S));
  Shard.Table.emplace(std::string_view(*Interned), Interned);
  return Interned;
}

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

Value Value::ofInt(int64_t V) {
  Value R;
  R.TheKind = Kind::Int;
  R.IntVal = V;
  return R;
}

Value Value::ofBool(bool V) {
  Value R;
  R.TheKind = Kind::Bool;
  R.IntVal = V ? 1 : 0;
  return R;
}

Value Value::ofString(std::string V) {
  Value R;
  R.TheKind = Kind::Str;
  R.Ref = internString(std::move(V));
  return R;
}

Value Value::ofList(std::vector<Value> Elems) {
  Value R;
  R.TheKind = Kind::List;
  // Allocated non-const: the sole-owner listAppend path extends it in place.
  R.Ref = std::make_shared<std::vector<Value>>(std::move(Elems));
  return R;
}

Value Value::emptyMap() {
  Value R;
  R.TheKind = Kind::Map;
  return R;
}

const std::string &Value::asString() const {
  assert(isString() && "value is not a string");
  return *strPtr();
}

const std::vector<Value> &Value::asList() const {
  assert(isList() && "value is not a list");
  return *listPtr();
}

//===----------------------------------------------------------------------===//
// Maps
//===----------------------------------------------------------------------===//

Value Value::mapInsert(const std::string &Key, Value V) const {
  assert(isMap() && "value is not a map");
  auto Node = std::make_shared<EnvNode>();
  Node->Key = internString(Key);
  Node->Bound = std::move(V);
  Node->Parent = std::static_pointer_cast<const EnvNode>(Ref);
  Value R;
  R.TheKind = Kind::Map;
  R.Ref = std::move(Node);
  return R;
}

const Value *Value::mapLookup(const std::string &Key) const {
  assert(isMap() && "value is not a map");
  if (!Ref)
    return nullptr;
  // Every key in the chain is interned, so one intern of the probe key turns
  // the walk into pure pointer comparisons.
  const std::shared_ptr<const std::string> K = internString(Key);
  for (const EnvNode *N = mapPtr(); N; N = N->Parent.get())
    if (N->Key == K)
      return &N->Bound;
  return nullptr;
}

unsigned Value::mapSize() const {
  return static_cast<unsigned>(mapEntries().size());
}

std::vector<std::pair<std::string, Value>> Value::mapEntries() const {
  assert(isMap() && "value is not a map");
  std::vector<std::pair<std::string, Value>> Out;
  // Interning makes content-dedup a pointer-dedup.
  std::unordered_set<const std::string *> Seen;
  for (const EnvNode *N = mapPtr(); N; N = N->Parent.get())
    if (Seen.insert(N->Key.get()).second)
      Out.emplace_back(*N->Key, N->Bound);
  return Out;
}

//===----------------------------------------------------------------------===//
// Lists
//===----------------------------------------------------------------------===//

Value Value::listAppend(Value V) const & {
  assert(isList() && "value is not a list");
  std::vector<Value> Elems = *listPtr();
  Elems.push_back(std::move(V));
  return ofList(std::move(Elems));
}

Value Value::listAppend(Value V) && {
  assert(isList() && "value is not a list");
  if (Ref && Ref.use_count() == 1) {
    // Sole owner: extend the vector in place (it was allocated non-const in
    // ofList) and hand the ownership to the result.
    auto *Vec = static_cast<std::vector<Value> *>(const_cast<void *>(Ref.get()));
    Vec->push_back(std::move(V));
    Value R;
    R.TheKind = Kind::List;
    R.Ref = std::move(Ref);
    TheKind = Kind::Unit;
    return R;
  }
  return static_cast<const Value &>(*this).listAppend(std::move(V));
}

Value Value::listConcat(const Value &A, const Value &B) {
  std::vector<Value> Elems = A.asList();
  const auto &BE = B.asList();
  Elems.insert(Elems.end(), BE.begin(), BE.end());
  return ofList(std::move(Elems));
}

//===----------------------------------------------------------------------===//
// Equality / rendering / hashing
//===----------------------------------------------------------------------===//

bool Value::equals(const Value &Other) const {
  if (TheKind != Other.TheKind)
    return false;
  switch (TheKind) {
  case Kind::Unit:
    return true;
  case Kind::Int:
  case Kind::Bool:
    return IntVal == Other.IntVal;
  case Kind::Str:
    // Interned: equal contents share one object. The content fallback keeps
    // equality total even for strings from a hypothetical second pool.
    return Ref == Other.Ref || *strPtr() == *Other.strPtr();
  case Kind::List: {
    if (Ref == Other.Ref)
      return true;
    const auto &A = *listPtr(), &B = *Other.listPtr();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, E = A.size(); I != E; ++I)
      if (!A[I].equals(B[I]))
        return false;
    return true;
  }
  case Kind::Map: {
    if (Ref == Other.Ref)
      return true;
    auto A = mapEntries(), B = Other.mapEntries();
    if (A.size() != B.size())
      return false;
    auto ByKey = [](const auto &X, const auto &Y) { return X.first < Y.first; };
    std::sort(A.begin(), A.end(), ByKey);
    std::sort(B.begin(), B.end(), ByKey);
    for (size_t I = 0, E = A.size(); I != E; ++I)
      if (A[I].first != B[I].first || !A[I].second.equals(B[I].second))
        return false;
    return true;
  }
  }
  return false;
}

std::string Value::str() const {
  switch (TheKind) {
  case Kind::Unit:
    return "()";
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Bool:
    return IntVal ? "true" : "false";
  case Kind::Str:
    return "\"" + *strPtr() + "\"";
  case Kind::List: {
    std::string Out = "[";
    const auto &Elems = *listPtr();
    for (size_t I = 0, E = Elems.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += Elems[I].str();
    }
    Out += "]";
    return Out;
  }
  case Kind::Map: {
    auto Entries = mapEntries();
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    std::string Out = "{";
    for (size_t I = 0, E = Entries.size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += Entries[I].first;
      Out += "=";
      Out += Entries[I].second.str();
    }
    Out += "}";
    return Out;
  }
  }
  return "<?>";
}

static size_t hashCombine(size_t Seed, size_t V) {
  return Seed ^ (V + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t Value::hash() const {
  size_t H = static_cast<size_t>(TheKind);
  switch (TheKind) {
  case Kind::Unit:
    break;
  case Kind::Int:
    H = hashCombine(H, std::hash<int64_t>()(IntVal));
    break;
  case Kind::Bool:
    H = hashCombine(H, IntVal ? 1 : 2);
    break;
  case Kind::Str:
    // Content hash, so it stays consistent with the content fallback in
    // equals() regardless of interning.
    H = hashCombine(H, std::hash<std::string>()(*strPtr()));
    break;
  case Kind::List:
    for (const Value &E : *listPtr())
      H = hashCombine(H, E.hash());
    break;
  case Kind::Map: {
    auto Entries = mapEntries();
    std::sort(Entries.begin(), Entries.end(),
              [](const auto &A, const auto &B) { return A.first < B.first; });
    for (const auto &[K, V] : Entries) {
      H = hashCombine(H, std::hash<std::string>()(K));
      H = hashCombine(H, V.hash());
    }
    break;
  }
  }
  return H;
}
