//===- olga/Ast.h - molga abstract syntax -----------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of molga compilation units: modules (types, constants,
/// functions) and grammars (phyla, attributes, operators, rule blocks).
/// Expressions are shared between function bodies and semantic rules.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_AST_H
#define FNC2_OLGA_AST_H

#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace fnc2::olga {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

enum class TypeKind : uint8_t { Int, Bool, String, Map, List, Unit, Any,
                                Error };

/// Resolved molga type (after alias expansion). Any unifies with every type
/// (used by the polymorphic builtins, e.g. the payload of insert/lookup).
struct Type {
  TypeKind Kind = TypeKind::Error;

  bool operator==(const Type &O) const { return Kind == O.Kind; }
  std::string str() const;

  /// Unification with Any-absorption; Error absorbs everything silently so
  /// one mistake does not cascade.
  bool compatible(const Type &O) const {
    return Kind == O.Kind || Kind == TypeKind::Any || O.Kind == TypeKind::Any ||
           Kind == TypeKind::Error || O.Kind == TypeKind::Error;
  }

  static Type intTy() { return {TypeKind::Int}; }
  static Type boolTy() { return {TypeKind::Bool}; }
  static Type stringTy() { return {TypeKind::String}; }
  static Type mapTy() { return {TypeKind::Map}; }
  static Type listTy() { return {TypeKind::List}; }
  static Type unitTy() { return {TypeKind::Unit}; }
  static Type anyTy() { return {TypeKind::Any}; }
  static Type errorTy() { return {TypeKind::Error}; }
};

/// A syntactic type reference (builtin name or alias), resolved by sema.
struct TypeRef {
  std::string Name;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  StringLit,
  ListLit,   ///< Children are the elements.
  Name,      ///< Unqualified: local attribute, let binding, param, const.
  AttrRef,   ///< Qualified: Base.Member (child or LHS attribute).
  Lexeme,    ///< The operator's lexical value.
  Unary,     ///< Op: "-" or "not".
  Binary,    ///< Op: + - * / % ^ = <> < <= > >= and or.
  If,        ///< Children: cond, then, else.
  Let,       ///< Name binds Children[0] within Children[1].
  Call,      ///< Name is the callee; Children are arguments.
  Match,     ///< Children[0] is the scrutinee; arms in MatchArms.
};

struct MatchArm {
  /// Pattern: an integer/bool/string literal, a binding name, or "_".
  enum class PatKind : uint8_t { IntPat, BoolPat, StringPat, Bind, Wild };
  PatKind Kind = PatKind::Wild;
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::string Text; ///< String pattern or binding name.
  ExprPtr Body;
  SourceLoc Loc;
};

struct Expr {
  ExprKind Kind = ExprKind::IntLit;
  SourceLoc Loc;
  int64_t IntValue = 0;
  bool BoolValue = false;
  std::string Name;   ///< Name/base identifier/callee/operator spelling.
  std::string Member; ///< AttrRef member.
  std::vector<ExprPtr> Children;
  std::vector<MatchArm> Arms;

  /// Filled in by sema.
  Type Ty = Type::errorTy();

  /// Filled in by lowering: for AttrRef/Lexeme/local-attribute Name nodes
  /// inside semantic rules, the index of the occurrence in the rule's
  /// argument list; -1 elsewhere.
  int ArgIndex = -1;
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct FunDecl {
  std::string Name;
  std::vector<std::pair<std::string, TypeRef>> Params;
  TypeRef ReturnType;
  ExprPtr Body;
  SourceLoc Loc;

  /// Set by the optimizer's tail-recursion analysis.
  bool TailRecursive = false;
};

struct ConstDecl {
  std::string Name;
  TypeRef DeclType;
  ExprPtr Value;
  SourceLoc Loc;
};

struct TypeAlias {
  std::string Name;
  TypeRef Aliased;
  SourceLoc Loc;
};

struct ModuleDecl {
  std::string Name;
  std::vector<std::string> Imports;
  std::vector<TypeAlias> Types;
  std::vector<ConstDecl> Consts;
  std::vector<FunDecl> Funs;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Grammar declarations
//===----------------------------------------------------------------------===//

struct PhylumDecl {
  std::string Name;
  bool IsRoot = false;
  SourceLoc Loc;
};

struct AttrDecl {
  std::string Phylum;
  bool Inherited = false;
  std::string Name;
  TypeRef DeclType;
  SourceLoc Loc;
};

struct OperatorDecl {
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Children; ///< (var, phylum)
  std::string LhsPhylum;
  bool HasLexeme = false;
  TypeRef LexemeType; ///< int or string.
  SourceLoc Loc;
};

struct RuleStmt {
  /// Target: Base.Attr or a local name (Base empty).
  std::string Base;
  std::string Attr;
  bool IsLocalDecl = false;
  TypeRef LocalType; ///< For local declarations.
  ExprPtr Value;
  SourceLoc Loc;
};

struct RuleBlock {
  std::string Operator;
  std::vector<RuleStmt> Stmts;
  SourceLoc Loc;
};

struct GrammarDecl {
  std::string Name;
  std::vector<std::string> Imports;
  std::vector<PhylumDecl> Phyla;
  std::vector<AttrDecl> Attrs;
  std::vector<OperatorDecl> Operators;
  std::vector<RuleBlock> Rules;
  SourceLoc Loc;
};

/// One parsed compilation unit: any mix of modules and grammars.
struct CompilationUnit {
  std::vector<ModuleDecl> Modules;
  std::vector<GrammarDecl> Grammars;
};

} // namespace fnc2::olga

#endif // FNC2_OLGA_AST_H
