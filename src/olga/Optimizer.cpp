//===- olga/Optimizer.cpp -------------------------------------------------===//

#include "olga/Optimizer.h"

#include "olga/ExprEval.h"

#include <algorithm>

using namespace fnc2;
using namespace fnc2::olga;

static bool isLiteral(const Expr &E) {
  return E.Kind == ExprKind::IntLit || E.Kind == ExprKind::BoolLit ||
         E.Kind == ExprKind::StringLit;
}

static Value literalValue(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLit:
    return Value::ofInt(E.IntValue);
  case ExprKind::BoolLit:
    return Value::ofBool(E.BoolValue);
  case ExprKind::StringLit:
    return Value::ofString(E.Name);
  default:
    return Value();
  }
}

static void makeLiteral(Expr &E, const Value &V) {
  E.Children.clear();
  E.Arms.clear();
  E.Member.clear();
  E.ArgIndex = -1;
  if (V.isInt()) {
    E.Kind = ExprKind::IntLit;
    E.IntValue = V.asInt();
  } else if (V.isBool()) {
    E.Kind = ExprKind::BoolLit;
    E.BoolValue = V.asBool();
  } else if (V.isString()) {
    E.Kind = ExprKind::StringLit;
    E.Name = V.asString();
  }
}

bool olga::foldConstants(Expr &E, const Program &Prog, unsigned &Folded) {
  for (ExprPtr &C : E.Children)
    foldConstants(*C, Prog, Folded);
  for (MatchArm &Arm : E.Arms)
    foldConstants(*Arm.Body, Prog, Folded);

  switch (E.Kind) {
  case ExprKind::Unary:
  case ExprKind::Binary: {
    for (const ExprPtr &C : E.Children)
      if (!isLiteral(*C))
        return isLiteral(E);
    // Evaluate the pure operator on literal operands; the throwaway
    // diagnostics absorb division-by-zero (left unfolded).
    DiagnosticEngine Scratch;
    EvalContext Ctx;
    Ctx.Prog = &Prog;
    Value V = evalExpr(E, Ctx, Scratch);
    if (Scratch.hasErrors() || V.isUnit())
      return false;
    makeLiteral(E, V);
    ++Folded;
    return true;
  }
  case ExprKind::If: {
    if (E.Children[0]->Kind != ExprKind::BoolLit)
      return false;
    // Select the taken branch in place.
    ExprPtr Taken = std::move(E.Children[E.Children[0]->BoolValue ? 1 : 2]);
    E = std::move(*Taken);
    ++Folded;
    return isLiteral(E);
  }
  case ExprKind::Call: {
    for (const ExprPtr &C : E.Children)
      if (!isLiteral(*C))
        return false;
    std::vector<Value> Args;
    for (const ExprPtr &C : E.Children)
      Args.push_back(literalValue(*C));
    Value Result;
    if (!applyBuiltin(E.Name, Args, Result) || Result.isUnit())
      return false;
    makeLiteral(E, Result);
    ++Folded;
    return true;
  }
  default:
    return isLiteral(E);
  }
}

/// Sorts literal int/string arms ascending (catch-all arms stay at the end,
/// in order) so dispatch can binary-search; duplicate literals keep their
/// first occurrence, preserving semantics.
static bool compileMatch(Expr &E) {
  if (E.Kind != ExprKind::Match || E.Arms.size() < 3)
    return false;
  // Only literal arms (plus trailing catch-alls) are sortable.
  size_t FirstCatchAll = E.Arms.size();
  for (size_t I = 0; I != E.Arms.size(); ++I) {
    bool CatchAll = E.Arms[I].Kind == MatchArm::PatKind::Bind ||
                    E.Arms[I].Kind == MatchArm::PatKind::Wild;
    if (CatchAll) {
      FirstCatchAll = I;
      break;
    }
  }
  if (FirstCatchAll < 2)
    return false;
  auto Begin = E.Arms.begin();
  auto End = E.Arms.begin() + static_cast<long>(FirstCatchAll);
  bool AllInt = std::all_of(Begin, End, [](const MatchArm &A) {
    return A.Kind == MatchArm::PatKind::IntPat;
  });
  bool AllString = std::all_of(Begin, End, [](const MatchArm &A) {
    return A.Kind == MatchArm::PatKind::StringPat;
  });
  if (!AllInt && !AllString)
    return false;
  // Duplicates would change which arm fires after sorting: bail out.
  for (auto I = Begin; I != End; ++I)
    for (auto J = I + 1; J != End; ++J)
      if ((AllInt && I->IntValue == J->IntValue) ||
          (AllString && I->Text == J->Text))
        return false;
  std::stable_sort(Begin, End, [&](const MatchArm &A, const MatchArm &B) {
    return AllInt ? A.IntValue < B.IntValue : A.Text < B.Text;
  });
  return true;
}

static void compileMatchesRec(Expr &E, unsigned &Compiled) {
  if (compileMatch(E))
    ++Compiled;
  for (ExprPtr &C : E.Children)
    compileMatchesRec(*C, Compiled);
  for (MatchArm &Arm : E.Arms)
    compileMatchesRec(*Arm.Body, Compiled);
}

/// Collects whether all self-calls of \p Fun within \p E are confined to
/// tail position. \p Tail says whether E itself is in tail position.
static void scanTailCalls(const Expr &E, const std::string &Fun, bool Tail,
                          bool &SawSelfCall, bool &SawNonTail) {
  switch (E.Kind) {
  case ExprKind::Call:
    if (E.Name == Fun) {
      SawSelfCall = true;
      if (!Tail)
        SawNonTail = true;
    }
    for (const ExprPtr &C : E.Children)
      scanTailCalls(*C, Fun, false, SawSelfCall, SawNonTail);
    return;
  case ExprKind::If:
    scanTailCalls(*E.Children[0], Fun, false, SawSelfCall, SawNonTail);
    scanTailCalls(*E.Children[1], Fun, Tail, SawSelfCall, SawNonTail);
    scanTailCalls(*E.Children[2], Fun, Tail, SawSelfCall, SawNonTail);
    return;
  case ExprKind::Let:
    scanTailCalls(*E.Children[0], Fun, false, SawSelfCall, SawNonTail);
    scanTailCalls(*E.Children[1], Fun, Tail, SawSelfCall, SawNonTail);
    return;
  case ExprKind::Match:
    scanTailCalls(*E.Children[0], Fun, false, SawSelfCall, SawNonTail);
    for (const MatchArm &Arm : E.Arms)
      scanTailCalls(*Arm.Body, Fun, Tail, SawSelfCall, SawNonTail);
    return;
  default:
    for (const ExprPtr &C : E.Children)
      scanTailCalls(*C, Fun, false, SawSelfCall, SawNonTail);
    return;
  }
}

bool olga::isTailRecursive(const FunDecl &F) {
  bool SawSelfCall = false, SawNonTail = false;
  scanTailCalls(*F.Body, F.Name, /*Tail=*/true, SawSelfCall, SawNonTail);
  return SawSelfCall && !SawNonTail;
}

OptimizerStats olga::optimizeProgram(Program &Prog) {
  OptimizerStats Stats;
  auto runOnExpr = [&](Expr &E) {
    foldConstants(E, Prog, Stats.ConstantsFolded);
    compileMatchesRec(E, Stats.MatchesCompiled);
  };

  for (ModuleDecl &M : Prog.Unit.Modules) {
    for (FunDecl &F : M.Funs) {
      runOnExpr(*F.Body);
      ++Stats.FunsAnalyzed;
      F.TailRecursive = isTailRecursive(F);
      Stats.TailRecursiveFuns += F.TailRecursive;
    }
    for (ConstDecl &C : M.Consts)
      runOnExpr(*C.Value);
  }
  for (GrammarDecl &G : Prog.Unit.Grammars)
    for (RuleBlock &B : G.Rules)
      for (RuleStmt &S : B.Stmts)
        runOnExpr(*S.Value);
  return Stats;
}
