//===- olga/Sema.h - molga type checking ------------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "typing" phase of Tables 2 and 3: strong type checking of modules
/// and grammars (with local inference for lets and match bindings), import
/// resolution, and the structural part of AG well-definedness (declared
/// phyla/attributes/operators, rule targets are output occurrences). The
/// dependency part of well-definedness — every output defined exactly once
/// — is checked after lowering by the AG core.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_SEMA_H
#define FNC2_OLGA_SEMA_H

#include "olga/Ast.h"
#include "value/Value.h"

#include <map>
#include <memory>

namespace fnc2::olga {

/// Signature of a builtin or user function.
struct FunSig {
  std::vector<Type> Params;
  Type Result = Type::errorTy();
  /// For polymorphic builtins: the result type is the type of this
  /// parameter (e.g. lookup's default); -1 otherwise.
  int ResultFromParam = -1;
  const FunDecl *Decl = nullptr; ///< Null for builtins.
  std::string Module;            ///< Defining module (empty for builtins).
};

/// The checked program: ASTs plus the symbol tables sema built. Lowered
/// semantic functions keep a shared_ptr to this, so expression nodes stay
/// alive as long as any generated evaluator does.
struct Program {
  CompilationUnit Unit;
  /// All functions by name (builtins excluded).
  std::map<std::string, FunSig> Funs;
  /// Constant values, evaluated at check time.
  std::map<std::string, std::pair<Type, Value>> Consts;
  /// Type aliases, fully resolved.
  std::map<std::string, Type> Aliases;
  /// Per grammar: the transitively imported module names.
  std::map<std::string, std::vector<std::string>> GrammarImports;
};

/// The builtin function table (shared with codegen).
const std::map<std::string, FunSig> &builtinFunctions();

/// Resolves a syntactic type reference against builtins and aliases.
Type resolveType(const TypeRef &Ref, const std::map<std::string, Type> &Aliases,
                 DiagnosticEngine &Diags);

/// Type-checks \p Unit; returns the checked program (never null; inspect
/// \p Diags for errors).
std::shared_ptr<Program> checkUnit(CompilationUnit Unit,
                                   DiagnosticEngine &Diags);

} // namespace fnc2::olga

#endif // FNC2_OLGA_SEMA_H
