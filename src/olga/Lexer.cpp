//===- olga/Lexer.cpp -----------------------------------------------------===//

#include "olga/Lexer.h"

#include <cctype>
#include <map>

using namespace fnc2;
using namespace fnc2::olga;

static const std::map<std::string, TokKind> &keywordTable() {
  static const std::map<std::string, TokKind> Table = {
      {"module", TokKind::KwModule},     {"end", TokKind::KwEnd},
      {"import", TokKind::KwImport},     {"type", TokKind::KwType},
      {"fun", TokKind::KwFun},           {"const", TokKind::KwConst},
      {"grammar", TokKind::KwGrammar},   {"phylum", TokKind::KwPhylum},
      {"root", TokKind::KwRoot},         {"attr", TokKind::KwAttr},
      {"inh", TokKind::KwInh},           {"syn", TokKind::KwSyn},
      {"operator", TokKind::KwOperator}, {"lexeme", TokKind::KwLexeme},
      {"rules", TokKind::KwRules},       {"for", TokKind::KwFor},
      {"local", TokKind::KwLocal},       {"if", TokKind::KwIf},
      {"then", TokKind::KwThen},         {"else", TokKind::KwElse},
      {"let", TokKind::KwLet},           {"in", TokKind::KwIn},
      {"match", TokKind::KwMatch},       {"with", TokKind::KwWith},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"and", TokKind::KwAnd},           {"or", TokKind::KwOr},
      {"not", TokKind::KwNot},
  };
  return Table;
}

std::vector<Token> olga::tokenize(const std::string &Source,
                                  DiagnosticEngine &Diags) {
  std::vector<Token> Out;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  auto advance = [&]() {
    if (Pos < Source.size() && Source[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  };
  auto peek = [&](size_t Ahead = 0) -> char {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  };
  auto emit = [&](TokKind Kind, SourceLoc Loc, std::string Text = "",
                  int64_t IntValue = 0) {
    Out.push_back(Token{Kind, std::move(Text), IntValue, Loc});
  };

  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    // Comments: "--" to end of line.
    if (C == '-' && peek(1) == '-') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    SourceLoc Loc{Line, Col};
    if (std::isalpha(static_cast<unsigned char>(C))) {
      std::string Word;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        Word += peek();
        advance();
      }
      auto It = keywordTable().find(Word);
      if (It != keywordTable().end())
        emit(It->second, Loc, Word);
      else
        emit(TokKind::Ident, Loc, Word);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        V = V * 10 + (peek() - '0');
        advance();
      }
      emit(TokKind::IntLit, Loc, "", V);
      continue;
    }
    if (C == '"') {
      advance();
      std::string S;
      bool Closed = false;
      while (Pos < Source.size()) {
        char D = peek();
        if (D == '"') {
          advance();
          Closed = true;
          break;
        }
        if (D == '\\') {
          advance();
          char E = peek();
          S += E == 'n' ? '\n' : E == 't' ? '\t' : E;
          advance();
          continue;
        }
        S += D;
        advance();
      }
      if (!Closed)
        Diags.error("unterminated string literal", Loc);
      emit(TokKind::StringLit, Loc, std::move(S));
      continue;
    }
    auto two = [&](char Second, TokKind Twice, TokKind Once) {
      advance();
      if (peek() == Second) {
        advance();
        emit(Twice, Loc);
      } else {
        emit(Once, Loc);
      }
    };
    switch (C) {
    case '(': advance(); emit(TokKind::LParen, Loc); break;
    case ')': advance(); emit(TokKind::RParen, Loc); break;
    case '[': advance(); emit(TokKind::LBracket, Loc); break;
    case ']': advance(); emit(TokKind::RBracket, Loc); break;
    case ',': advance(); emit(TokKind::Comma, Loc); break;
    case '.': advance(); emit(TokKind::Dot, Loc); break;
    case '|': advance(); emit(TokKind::Pipe, Loc); break;
    case '+': advance(); emit(TokKind::Plus, Loc); break;
    case '*': advance(); emit(TokKind::Star, Loc); break;
    case '/': advance(); emit(TokKind::Slash, Loc); break;
    case '%': advance(); emit(TokKind::Percent, Loc); break;
    case '^': advance(); emit(TokKind::Caret, Loc); break;
    case '=': advance(); emit(TokKind::Equal, Loc); break;
    case '_': advance(); emit(TokKind::Underscore, Loc); break;
    case ':': two('=', TokKind::Assign, TokKind::Colon); break;
    case '>': two('=', TokKind::GreaterEq, TokKind::Greater); break;
    case '<':
      advance();
      if (peek() == '=') {
        advance();
        emit(TokKind::LessEq, Loc);
      } else if (peek() == '>') {
        advance();
        emit(TokKind::NotEqual, Loc);
      } else {
        emit(TokKind::Less, Loc);
      }
      break;
    case '-':
      advance();
      if (peek() == '>') {
        advance();
        emit(TokKind::Arrow, Loc);
      } else {
        emit(TokKind::Minus, Loc);
      }
      break;
    default:
      Diags.error(std::string("unexpected character '") + C + "'", Loc);
      advance();
      break;
    }
  }
  Out.push_back(Token{TokKind::Eof, "", 0, SourceLoc{Line, Col}});
  return Out;
}

std::string olga::tokKindName(TokKind Kind) {
  switch (Kind) {
  case TokKind::Eof: return "end of input";
  case TokKind::Ident: return "identifier";
  case TokKind::IntLit: return "integer literal";
  case TokKind::StringLit: return "string literal";
  case TokKind::KwModule: return "'module'";
  case TokKind::KwEnd: return "'end'";
  case TokKind::KwImport: return "'import'";
  case TokKind::KwType: return "'type'";
  case TokKind::KwFun: return "'fun'";
  case TokKind::KwConst: return "'const'";
  case TokKind::KwGrammar: return "'grammar'";
  case TokKind::KwPhylum: return "'phylum'";
  case TokKind::KwRoot: return "'root'";
  case TokKind::KwAttr: return "'attr'";
  case TokKind::KwInh: return "'inh'";
  case TokKind::KwSyn: return "'syn'";
  case TokKind::KwOperator: return "'operator'";
  case TokKind::KwLexeme: return "'lexeme'";
  case TokKind::KwRules: return "'rules'";
  case TokKind::KwFor: return "'for'";
  case TokKind::KwLocal: return "'local'";
  case TokKind::KwIf: return "'if'";
  case TokKind::KwThen: return "'then'";
  case TokKind::KwElse: return "'else'";
  case TokKind::KwLet: return "'let'";
  case TokKind::KwIn: return "'in'";
  case TokKind::KwMatch: return "'match'";
  case TokKind::KwWith: return "'with'";
  case TokKind::KwTrue: return "'true'";
  case TokKind::KwFalse: return "'false'";
  case TokKind::KwAnd: return "'and'";
  case TokKind::KwOr: return "'or'";
  case TokKind::KwNot: return "'not'";
  case TokKind::LParen: return "'('";
  case TokKind::RParen: return "')'";
  case TokKind::LBracket: return "'['";
  case TokKind::RBracket: return "']'";
  case TokKind::Comma: return "','";
  case TokKind::Colon: return "':'";
  case TokKind::Dot: return "'.'";
  case TokKind::Pipe: return "'|'";
  case TokKind::Arrow: return "'->'";
  case TokKind::Assign: return "':='";
  case TokKind::Plus: return "'+'";
  case TokKind::Minus: return "'-'";
  case TokKind::Star: return "'*'";
  case TokKind::Slash: return "'/'";
  case TokKind::Percent: return "'%'";
  case TokKind::Caret: return "'^'";
  case TokKind::Equal: return "'='";
  case TokKind::NotEqual: return "'<>'";
  case TokKind::Less: return "'<'";
  case TokKind::LessEq: return "'<='";
  case TokKind::Greater: return "'>'";
  case TokKind::GreaterEq: return "'>='";
  case TokKind::Underscore: return "'_'";
  }
  return "?";
}
