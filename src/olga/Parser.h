//===- olga/Parser.h - molga parser -----------------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for molga compilation units. This is the
/// "input" phase of Tables 2 and 3 together with the lexer.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_PARSER_H
#define FNC2_OLGA_PARSER_H

#include "olga/Ast.h"
#include "olga/Lexer.h"

namespace fnc2::olga {

/// Parses \p Source into a compilation unit; errors go to \p Diags. The
/// returned unit holds whatever parsed successfully.
CompilationUnit parseUnit(const std::string &Source, DiagnosticEngine &Diags);

} // namespace fnc2::olga

#endif // FNC2_OLGA_PARSER_H
