//===- olga/Driver.h - molga front-end driver -------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The molga front-end pipeline: input (scan, parse), typing (checking +
/// abstract-AG construction), optimization. Phase timings follow the
/// columns of the paper's Tables 2 and 3 ("input", "typing"); translation
/// to C is a separate component (src/codegen).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_DRIVER_H
#define FNC2_OLGA_DRIVER_H

#include "olga/Lower.h"
#include "olga/Optimizer.h"

namespace fnc2::olga {

/// Per-phase wall-clock seconds, Tables 2/3 style.
struct CompilePhases {
  double InputSec = 0;  ///< Scanning, parsing, tree construction.
  double TypingSec = 0; ///< Type/well-definedness check + abstract AG.
};

struct CompileResult {
  bool Success = false;
  std::shared_ptr<Program> Prog;
  std::vector<LoweredGrammar> Grammars;
  OptimizerStats Optimizer;
  CompilePhases Phases;
  unsigned Lines = 0;

  /// Grammar lookup by name; nullptr when absent.
  const LoweredGrammar *grammar(const std::string &Name) const {
    for (const LoweredGrammar &G : Grammars)
      if (G.AG.Name == Name)
        return &G;
    return nullptr;
  }
};

/// Runs the full front-end over one source text. \p Optimize controls the
/// common optimizer pass between checking and lowering.
CompileResult compileMolga(const std::string &Source, DiagnosticEngine &Diags,
                           bool Optimize = true);

} // namespace fnc2::olga

#endif // FNC2_OLGA_DRIVER_H
