//===- olga/Sema.cpp ------------------------------------------------------===//

#include "olga/Sema.h"

#include "olga/ExprEval.h"

#include <algorithm>
#include <set>

using namespace fnc2;
using namespace fnc2::olga;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Int: return "int";
  case TypeKind::Bool: return "bool";
  case TypeKind::String: return "string";
  case TypeKind::Map: return "map";
  case TypeKind::List: return "list";
  case TypeKind::Unit: return "unit";
  case TypeKind::Any: return "any";
  case TypeKind::Error: return "<error>";
  }
  return "?";
}

const std::map<std::string, FunSig> &olga::builtinFunctions() {
  static const std::map<std::string, FunSig> Builtins = [] {
    std::map<std::string, FunSig> B;
    auto sig = [](std::vector<Type> Params, Type Result,
                  int ResultFromParam = -1) {
      FunSig S;
      S.Params = std::move(Params);
      S.Result = Result;
      S.ResultFromParam = ResultFromParam;
      return S;
    };
    B["emptymap"] = sig({}, Type::mapTy());
    B["insert"] = sig({Type::mapTy(), Type::stringTy(), Type::anyTy()},
                      Type::mapTy());
    B["lookup"] = sig({Type::mapTy(), Type::stringTy(), Type::anyTy()},
                      Type::anyTy(), /*ResultFromParam=*/2);
    B["haskey"] = sig({Type::mapTy(), Type::stringTy()}, Type::boolTy());
    B["mapsize"] = sig({Type::mapTy()}, Type::intTy());
    B["min"] = sig({Type::intTy(), Type::intTy()}, Type::intTy());
    B["max"] = sig({Type::intTy(), Type::intTy()}, Type::intTy());
    B["len"] = sig({Type::listTy()}, Type::intTy());
    B["append"] = sig({Type::listTy(), Type::anyTy()}, Type::listTy());
    B["concat"] = sig({Type::listTy(), Type::listTy()}, Type::listTy());
    B["get"] = sig({Type::listTy(), Type::intTy(), Type::anyTy()},
                   Type::anyTy(), /*ResultFromParam=*/2);
    B["tostr"] = sig({Type::intTy()}, Type::stringTy());
    B["strlen"] = sig({Type::stringTy()}, Type::intTy());
    return B;
  }();
  return Builtins;
}

Type olga::resolveType(const TypeRef &Ref,
                       const std::map<std::string, Type> &Aliases,
                       DiagnosticEngine &Diags) {
  if (Ref.Name == "int")
    return Type::intTy();
  if (Ref.Name == "bool")
    return Type::boolTy();
  if (Ref.Name == "string")
    return Type::stringTy();
  if (Ref.Name == "map")
    return Type::mapTy();
  if (Ref.Name == "list")
    return Type::listTy();
  if (Ref.Name == "unit")
    return Type::unitTy();
  auto It = Aliases.find(Ref.Name);
  if (It != Aliases.end())
    return It->second;
  Diags.error("unknown type '" + Ref.Name + "'", Ref.Loc);
  return Type::errorTy();
}

namespace {

/// The rule-body context: which operator we are inside and which local
/// attributes are in scope.
struct RuleCtx {
  const GrammarDecl *G = nullptr;
  const OperatorDecl *Op = nullptr;
  std::map<std::string, Type> Locals;
  const std::set<std::string> *VisibleModules = nullptr;
};

class Checker {
public:
  Checker(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  void run();

  Type checkExpr(Expr &E, std::vector<std::pair<std::string, Type>> &Scope,
                 const RuleCtx *RC);

private:
  Type attrType(const GrammarDecl &G, const std::string &Phylum,
                const std::string &Attr, bool *IsInherited = nullptr) {
    for (const AttrDecl &A : G.Attrs)
      if (A.Phylum == Phylum && A.Name == Attr) {
        if (IsInherited)
          *IsInherited = A.Inherited;
        return resolveType(A.DeclType, Prog.Aliases, Diags);
      }
    return Type::errorTy();
  }

  void checkGrammar(GrammarDecl &G);
  void checkRuleBlock(const GrammarDecl &G, RuleBlock &Block,
                      const std::set<std::string> &Visible);

  Program &Prog;
  DiagnosticEngine &Diags;
};

} // namespace

Type Checker::checkExpr(Expr &E,
                        std::vector<std::pair<std::string, Type>> &Scope,
                        const RuleCtx *RC) {
  auto setTy = [&](Type T) {
    E.Ty = T;
    return T;
  };

  switch (E.Kind) {
  case ExprKind::IntLit:
    return setTy(Type::intTy());
  case ExprKind::BoolLit:
    return setTy(Type::boolTy());
  case ExprKind::StringLit:
    return setTy(Type::stringTy());
  case ExprKind::ListLit: {
    for (ExprPtr &C : E.Children)
      checkExpr(*C, Scope, RC);
    return setTy(Type::listTy());
  }
  case ExprKind::Lexeme: {
    if (!RC || !RC->Op) {
      Diags.error("'lexeme' outside a semantic rule", E.Loc);
      return setTy(Type::errorTy());
    }
    if (!RC->Op->HasLexeme) {
      Diags.error("operator '" + RC->Op->Name + "' has no lexeme", E.Loc);
      return setTy(Type::errorTy());
    }
    return setTy(resolveType(RC->Op->LexemeType, Prog.Aliases, Diags));
  }
  case ExprKind::AttrRef: {
    if (!RC || !RC->Op) {
      Diags.error("attribute reference outside a semantic rule", E.Loc);
      return setTy(Type::errorTy());
    }
    std::string Phylum;
    for (const auto &[Var, Phy] : RC->Op->Children)
      if (Var == E.Name)
        Phylum = Phy;
    if (Phylum.empty() && E.Name == RC->Op->LhsPhylum)
      Phylum = RC->Op->LhsPhylum;
    if (Phylum.empty()) {
      Diags.error("'" + E.Name + "' names neither a son of operator '" +
                      RC->Op->Name + "' nor its result phylum",
                  E.Loc);
      return setTy(Type::errorTy());
    }
    Type T = attrType(*RC->G, Phylum, E.Member);
    if (T == Type::errorTy())
      Diags.error("phylum '" + Phylum + "' has no attribute '" + E.Member +
                      "'",
                  E.Loc);
    return setTy(T);
  }
  case ExprKind::Name: {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
      if (It->first == E.Name)
        return setTy(It->second);
    if (RC) {
      auto It = RC->Locals.find(E.Name);
      if (It != RC->Locals.end())
        return setTy(It->second);
    }
    auto CIt = Prog.Consts.find(E.Name);
    if (CIt != Prog.Consts.end())
      return setTy(CIt->second.first);
    Diags.error("unknown name '" + E.Name + "'", E.Loc);
    return setTy(Type::errorTy());
  }
  case ExprKind::Unary: {
    Type T = checkExpr(*E.Children[0], Scope, RC);
    if (E.Name == "-") {
      if (!T.compatible(Type::intTy()))
        Diags.error("unary '-' needs an integer", E.Loc);
      return setTy(Type::intTy());
    }
    if (!T.compatible(Type::boolTy()))
      Diags.error("'not' needs a boolean", E.Loc);
    return setTy(Type::boolTy());
  }
  case ExprKind::Binary: {
    Type L = checkExpr(*E.Children[0], Scope, RC);
    Type R = checkExpr(*E.Children[1], Scope, RC);
    const std::string &Op = E.Name;
    if (Op == "and" || Op == "or") {
      if (!L.compatible(Type::boolTy()) || !R.compatible(Type::boolTy()))
        Diags.error("'" + Op + "' needs boolean operands", E.Loc);
      return setTy(Type::boolTy());
    }
    if (Op == "=" || Op == "<>") {
      if (!L.compatible(R))
        Diags.error("comparison of incompatible types " + L.str() + " and " +
                        R.str(),
                    E.Loc);
      return setTy(Type::boolTy());
    }
    if (Op == "<" || Op == "<=" || Op == ">" || Op == ">=") {
      bool Ok = (L.compatible(Type::intTy()) && R.compatible(Type::intTy())) ||
                (L.compatible(Type::stringTy()) &&
                 R.compatible(Type::stringTy()));
      if (!Ok)
        Diags.error("ordering comparison needs two integers or two strings",
                    E.Loc);
      return setTy(Type::boolTy());
    }
    if (Op == "^") {
      if (!L.compatible(Type::stringTy()) || !R.compatible(Type::stringTy()))
        Diags.error("'^' concatenates strings", E.Loc);
      return setTy(Type::stringTy());
    }
    if (!L.compatible(Type::intTy()) || !R.compatible(Type::intTy()))
      Diags.error("arithmetic '" + Op + "' needs integer operands", E.Loc);
    return setTy(Type::intTy());
  }
  case ExprKind::If: {
    Type C = checkExpr(*E.Children[0], Scope, RC);
    if (!C.compatible(Type::boolTy()))
      Diags.error("condition must be boolean", E.Children[0]->Loc);
    Type T = checkExpr(*E.Children[1], Scope, RC);
    Type F = checkExpr(*E.Children[2], Scope, RC);
    if (!T.compatible(F))
      Diags.error("branches have incompatible types " + T.str() + " and " +
                      F.str(),
                  E.Loc);
    return setTy(T.Kind == TypeKind::Any ? F : T);
  }
  case ExprKind::Let: {
    Type Bound = checkExpr(*E.Children[0], Scope, RC);
    Scope.emplace_back(E.Name, Bound);
    Type Body = checkExpr(*E.Children[1], Scope, RC);
    Scope.pop_back();
    return setTy(Body);
  }
  case ExprKind::Call: {
    std::vector<Type> ArgTypes;
    for (ExprPtr &C : E.Children)
      ArgTypes.push_back(checkExpr(*C, Scope, RC));

    const FunSig *Sig = nullptr;
    auto BIt = builtinFunctions().find(E.Name);
    if (BIt != builtinFunctions().end()) {
      Sig = &BIt->second;
    } else {
      auto FIt = Prog.Funs.find(E.Name);
      if (FIt != Prog.Funs.end()) {
        Sig = &FIt->second;
        if (RC && RC->VisibleModules && !Sig->Module.empty() &&
            !RC->VisibleModules->count(Sig->Module))
          Diags.error("function '" + E.Name + "' is defined in module '" +
                          Sig->Module + "', which this grammar does not import",
                      E.Loc);
      }
    }
    if (!Sig) {
      Diags.error("call to unknown function '" + E.Name + "'", E.Loc);
      return setTy(Type::errorTy());
    }
    if (Sig->Params.size() != ArgTypes.size()) {
      Diags.error("'" + E.Name + "' expects " +
                      std::to_string(Sig->Params.size()) + " arguments, got " +
                      std::to_string(ArgTypes.size()),
                  E.Loc);
      return setTy(Sig->Result);
    }
    for (size_t I = 0; I != ArgTypes.size(); ++I)
      if (!Sig->Params[I].compatible(ArgTypes[I]))
        Diags.error("argument " + std::to_string(I + 1) + " of '" + E.Name +
                        "' has type " + ArgTypes[I].str() + ", expected " +
                        Sig->Params[I].str(),
                    E.Children[I]->Loc);
    if (Sig->ResultFromParam >= 0 &&
        static_cast<size_t>(Sig->ResultFromParam) < ArgTypes.size())
      return setTy(ArgTypes[Sig->ResultFromParam]);
    return setTy(Sig->Result);
  }
  case ExprKind::Match: {
    Type Scrut = checkExpr(*E.Children[0], Scope, RC);
    Type Result = Type::anyTy();
    bool SawCatchAll = false;
    for (MatchArm &Arm : E.Arms) {
      Type PatTy = Type::anyTy();
      switch (Arm.Kind) {
      case MatchArm::PatKind::IntPat:
        PatTy = Type::intTy();
        break;
      case MatchArm::PatKind::BoolPat:
        PatTy = Type::boolTy();
        break;
      case MatchArm::PatKind::StringPat:
        PatTy = Type::stringTy();
        break;
      case MatchArm::PatKind::Bind:
      case MatchArm::PatKind::Wild:
        SawCatchAll = true;
        break;
      }
      if (!PatTy.compatible(Scrut))
        Diags.error("pattern type " + PatTy.str() +
                        " does not match scrutinee type " + Scrut.str(),
                    Arm.Loc);
      Type BodyTy;
      if (Arm.Kind == MatchArm::PatKind::Bind) {
        Scope.emplace_back(Arm.Text, Scrut);
        BodyTy = checkExpr(*Arm.Body, Scope, RC);
        Scope.pop_back();
      } else {
        BodyTy = checkExpr(*Arm.Body, Scope, RC);
      }
      if (!Result.compatible(BodyTy))
        Diags.error("match arms have incompatible types", Arm.Loc);
      if (Result.Kind == TypeKind::Any)
        Result = BodyTy;
    }
    if (!SawCatchAll)
      Diags.warning("match without a catch-all arm may fail at run time",
                    E.Loc);
    return setTy(Result);
  }
  }
  return setTy(Type::errorTy());
}

void Checker::run() {
  std::set<std::string> ModuleNames;
  for (const ModuleDecl &M : Prog.Unit.Modules)
    if (!ModuleNames.insert(M.Name).second)
      Diags.error("duplicate module '" + M.Name + "'", M.Loc);

  // Aliases first (they may be used by everything else).
  for (const ModuleDecl &M : Prog.Unit.Modules)
    for (const TypeAlias &A : M.Types) {
      if (Prog.Aliases.count(A.Name)) {
        Diags.error("duplicate type alias '" + A.Name + "'", A.Loc);
        continue;
      }
      Prog.Aliases[A.Name] = resolveType(A.Aliased, Prog.Aliases, Diags);
    }

  // Function signatures.
  for (const ModuleDecl &M : Prog.Unit.Modules) {
    for (const std::string &Imp : M.Imports)
      if (!ModuleNames.count(Imp))
        Diags.error("module '" + M.Name + "' imports unknown module '" + Imp +
                        "'",
                    M.Loc);
    for (const FunDecl &F : M.Funs) {
      if (Prog.Funs.count(F.Name) || builtinFunctions().count(F.Name)) {
        Diags.error("duplicate function '" + F.Name + "'", F.Loc);
        continue;
      }
      FunSig Sig;
      for (const auto &[PName, PType] : F.Params)
        Sig.Params.push_back(resolveType(PType, Prog.Aliases, Diags));
      Sig.Result = resolveType(F.ReturnType, Prog.Aliases, Diags);
      Sig.Decl = &F;
      Sig.Module = M.Name;
      Prog.Funs[F.Name] = std::move(Sig);
    }
  }

  // Constants: checked and evaluated in declaration order.
  for (ModuleDecl &M : Prog.Unit.Modules) {
    for (ConstDecl &C : M.Consts) {
      if (Prog.Consts.count(C.Name)) {
        Diags.error("duplicate constant '" + C.Name + "'", C.Loc);
        continue;
      }
      std::vector<std::pair<std::string, Type>> Scope;
      Type Declared = resolveType(C.DeclType, Prog.Aliases, Diags);
      Type Actual = checkExpr(*C.Value, Scope, nullptr);
      if (!Declared.compatible(Actual))
        Diags.error("constant '" + C.Name + "' declared " + Declared.str() +
                        " but its value has type " + Actual.str(),
                    C.Loc);
      EvalContext Ctx;
      Ctx.Prog = &Prog;
      Prog.Consts[C.Name] = {Declared, evalExpr(*C.Value, Ctx, Diags)};
    }
  }

  // Function bodies.
  for (ModuleDecl &M : Prog.Unit.Modules) {
    for (FunDecl &F : M.Funs) {
      std::vector<std::pair<std::string, Type>> Scope;
      for (const auto &[PName, PType] : F.Params)
        Scope.emplace_back(PName, resolveType(PType, Prog.Aliases, Diags));
      Type Body = checkExpr(*F.Body, Scope, nullptr);
      Type Declared = resolveType(F.ReturnType, Prog.Aliases, Diags);
      if (!Declared.compatible(Body))
        Diags.error("function '" + F.Name + "' declared to return " +
                        Declared.str() + " but its body has type " +
                        Body.str(),
                    F.Loc);
    }
  }

  // Grammars.
  for (GrammarDecl &G : Prog.Unit.Grammars) {
    // Transitive import closure.
    std::set<std::string> Visible;
    std::vector<std::string> Work = G.Imports;
    while (!Work.empty()) {
      std::string M = Work.back();
      Work.pop_back();
      if (!ModuleNames.count(M)) {
        Diags.error("grammar '" + G.Name + "' imports unknown module '" + M +
                        "'",
                    G.Loc);
        continue;
      }
      if (!Visible.insert(M).second)
        continue;
      for (const ModuleDecl &MD : Prog.Unit.Modules)
        if (MD.Name == M)
          for (const std::string &Sub : MD.Imports)
            Work.push_back(Sub);
    }
    Prog.GrammarImports[G.Name] =
        std::vector<std::string>(Visible.begin(), Visible.end());
    checkGrammar(G);
  }
}

void Checker::checkGrammar(GrammarDecl &G) {
  std::set<std::string> PhylumNames;
  unsigned Roots = 0;
  for (const PhylumDecl &P : G.Phyla) {
    if (!PhylumNames.insert(P.Name).second)
      Diags.error("duplicate phylum '" + P.Name + "'", P.Loc);
    Roots += P.IsRoot;
  }
  if (Roots != 1)
    Diags.error("grammar '" + G.Name + "' must declare exactly one root "
                "phylum (found " + std::to_string(Roots) + ")",
                G.Loc);

  std::set<std::pair<std::string, std::string>> AttrNames;
  for (const AttrDecl &A : G.Attrs) {
    if (!PhylumNames.count(A.Phylum))
      Diags.error("attribute on unknown phylum '" + A.Phylum + "'", A.Loc);
    if (!AttrNames.insert({A.Phylum, A.Name}).second)
      Diags.error("duplicate attribute '" + A.Name + "' on phylum '" +
                      A.Phylum + "'",
                  A.Loc);
    resolveType(A.DeclType, Prog.Aliases, Diags);
  }

  std::set<std::string> OpNames;
  for (const OperatorDecl &Op : G.Operators) {
    if (!OpNames.insert(Op.Name).second)
      Diags.error("duplicate operator '" + Op.Name + "'", Op.Loc);
    if (!PhylumNames.count(Op.LhsPhylum))
      Diags.error("operator '" + Op.Name + "' produces unknown phylum '" +
                      Op.LhsPhylum + "'",
                  Op.Loc);
    std::set<std::string> ChildNames;
    for (const auto &[Var, Phy] : Op.Children) {
      if (!ChildNames.insert(Var).second)
        Diags.error("duplicate son name '" + Var + "' in operator '" +
                        Op.Name + "'",
                    Op.Loc);
      if (!PhylumNames.count(Phy))
        Diags.error("operator '" + Op.Name + "' uses unknown phylum '" + Phy +
                        "'",
                    Op.Loc);
    }
    if (Op.HasLexeme) {
      Type T = resolveType(Op.LexemeType, Prog.Aliases, Diags);
      if (!(T == Type::intTy()) && !(T == Type::stringTy()))
        Diags.error("lexeme type must be int or string", Op.Loc);
    }
  }

  const std::set<std::string> Visible(
      Prog.GrammarImports[G.Name].begin(), Prog.GrammarImports[G.Name].end());
  for (RuleBlock &Block : G.Rules)
    checkRuleBlock(G, Block, Visible);
}

void Checker::checkRuleBlock(const GrammarDecl &G, RuleBlock &Block,
                             const std::set<std::string> &Visible) {
  const OperatorDecl *Op = nullptr;
  for (const OperatorDecl &O : G.Operators)
    if (O.Name == Block.Operator)
      Op = &O;
  if (!Op) {
    Diags.error("rules for unknown operator '" + Block.Operator + "'",
                Block.Loc);
    return;
  }

  RuleCtx RC;
  RC.G = &G;
  RC.Op = Op;
  RC.VisibleModules = &Visible;

  for (RuleStmt &S : Block.Stmts) {
    if (S.IsLocalDecl) {
      if (RC.Locals.count(S.Attr)) {
        Diags.error("duplicate local attribute '" + S.Attr + "'", S.Loc);
        continue;
      }
      Type Declared = resolveType(S.LocalType, Prog.Aliases, Diags);
      RC.Locals[S.Attr] = Declared;
      std::vector<std::pair<std::string, Type>> Scope;
      Type Actual = checkExpr(*S.Value, Scope, &RC);
      if (!Declared.compatible(Actual))
        Diags.error("local attribute '" + S.Attr + "' declared " +
                        Declared.str() + " but defined with type " +
                        Actual.str(),
                    S.Loc);
      continue;
    }

    Type TargetTy = Type::errorTy();
    if (S.Base.empty()) {
      Diags.error("assignment to undeclared local '" + S.Attr +
                      "' (declare it with 'local')",
                  S.Loc);
    } else {
      std::string Phylum;
      bool IsLhs = false;
      for (const auto &[Var, Phy] : Op->Children)
        if (Var == S.Base)
          Phylum = Phy;
      if (Phylum.empty() && S.Base == Op->LhsPhylum) {
        Phylum = Op->LhsPhylum;
        IsLhs = true;
      }
      if (Phylum.empty()) {
        Diags.error("'" + S.Base + "' names neither a son of operator '" +
                        Op->Name + "' nor its result phylum",
                    S.Loc);
      } else {
        bool Inherited = false;
        TargetTy = attrType(G, Phylum, S.Attr, &Inherited);
        if (TargetTy == Type::errorTy()) {
          Diags.error("phylum '" + Phylum + "' has no attribute '" + S.Attr +
                          "'",
                      S.Loc);
        } else if (IsLhs && Inherited) {
          Diags.error("cannot define inherited attribute '" + S.Attr +
                          "' of the result phylum (it is an input)",
                      S.Loc);
        } else if (!IsLhs && !Inherited) {
          Diags.error("cannot define synthesized attribute '" + S.Attr +
                          "' of son '" + S.Base + "' (it is an input)",
                      S.Loc);
        }
      }
    }

    std::vector<std::pair<std::string, Type>> Scope;
    Type ValueTy = checkExpr(*S.Value, Scope, &RC);
    if (!(TargetTy == Type::errorTy()) && !TargetTy.compatible(ValueTy))
      Diags.error("rule defines '" + S.Attr + "' of type " + TargetTy.str() +
                      " with a value of type " + ValueTy.str(),
                  S.Loc);
  }
}

std::shared_ptr<Program> olga::checkUnit(CompilationUnit Unit,
                                         DiagnosticEngine &Diags) {
  auto Prog = std::make_shared<Program>();
  Prog->Unit = std::move(Unit);
  Checker C(*Prog, Diags);
  C.run();
  return Prog;
}
