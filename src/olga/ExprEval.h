//===- olga/ExprEval.h - molga expression interpreter -----------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strict interpreter for checked molga expressions. Semantic rules lowered
/// from a grammar evaluate through this (the occurrence arguments arrive in
/// the ArgIndex slots); constant declarations and tests use it directly.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_EXPREVAL_H
#define FNC2_OLGA_EXPREVAL_H

#include "olga/Sema.h"

namespace fnc2::olga {

/// Evaluation context: named bindings (parameters, lets, match binds,
/// constants) plus the occurrence argument vector for rule bodies.
struct EvalContext {
  const Program *Prog = nullptr;
  std::span<const Value> OccArgs;
  std::vector<std::pair<std::string, Value>> Bindings;
  /// Recursion fuel; hitting zero reports an error (molga is applicative,
  /// runaway recursion is a specification bug).
  unsigned Fuel = 1u << 20;

  const Value *lookup(const std::string &Name) const {
    for (auto It = Bindings.rbegin(); It != Bindings.rend(); ++It)
      if (It->first == Name)
        return &It->second;
    return nullptr;
  }
};

/// Evaluates \p E under \p Ctx. On a runtime error (which type checking
/// should preclude) reports through \p Diags and returns unit.
Value evalExpr(const Expr &E, EvalContext &Ctx, DiagnosticEngine &Diags);

/// Applies a named builtin to argument values (shared with the constant
/// folder); returns false if the name/arity is not a builtin.
bool applyBuiltin(const std::string &Name, std::span<const Value> Args,
                  Value &Result);

} // namespace fnc2::olga

#endif // FNC2_OLGA_EXPREVAL_H
