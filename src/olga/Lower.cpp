//===- olga/Lower.cpp -----------------------------------------------------===//

#include "olga/Lower.h"

#include "grammar/GrammarBuilder.h"
#include "olga/ExprEval.h"

#include <map>
#include <set>

using namespace fnc2;
using namespace fnc2::olga;

namespace {

/// Lowers one grammar declaration.
class GrammarLowerer {
public:
  GrammarLowerer(GrammarDecl &G, std::shared_ptr<Program> Prog,
                 DiagnosticEngine &Diags)
      : G(G), Prog(std::move(Prog)), Diags(Diags), Builder(G.Name) {}

  LoweredGrammar run();

private:
  /// Resolves an occurrence reference (base.attr / lexeme / local name)
  /// within \p Op to an AttrOcc; returns false when it is not one.
  bool resolveOcc(const OperatorDecl &Op, ProdId P, Expr &E,
                  const std::map<std::string, AttrOcc> &Locals, AttrOcc &Out);

  /// Walks \p E, assigns ArgIndex to every occurrence reference, and
  /// appends the distinct occurrences to \p Args. \p Bound tracks names
  /// shadowed by lets and match bindings.
  void collectArgs(const OperatorDecl &Op, ProdId P, Expr &E,
                   const std::map<std::string, AttrOcc> &Locals,
                   std::vector<std::string> &Bound,
                   std::vector<AttrOcc> &Args);

  GrammarDecl &G;
  std::shared_ptr<Program> Prog;
  DiagnosticEngine &Diags;
  GrammarBuilder Builder;
  std::shared_ptr<DiagnosticEngine> RuntimeDiags =
      std::make_shared<DiagnosticEngine>();
};

} // namespace

bool GrammarLowerer::resolveOcc(const OperatorDecl &Op, ProdId P, Expr &E,
                                const std::map<std::string, AttrOcc> &Locals,
                                AttrOcc &Out) {
  AttributeGrammar &AG = Builder.grammar();
  if (E.Kind == ExprKind::Lexeme) {
    Out = AttrOcc::lexeme();
    return true;
  }
  if (E.Kind == ExprKind::AttrRef) {
    unsigned Pos = ~0u;
    std::string Phylum;
    for (unsigned C = 0; C != Op.Children.size(); ++C)
      if (Op.Children[C].first == E.Name) {
        Pos = C + 1;
        Phylum = Op.Children[C].second;
      }
    if (Pos == ~0u && E.Name == Op.LhsPhylum) {
      Pos = 0;
      Phylum = Op.LhsPhylum;
    }
    if (Pos == ~0u)
      return false; // sema reported already
    PhylumId Phy = AG.findPhylum(Phylum);
    AttrId A = Phy == InvalidId ? InvalidId : AG.findAttr(Phy, E.Member);
    if (A == InvalidId)
      return false;
    Out = AttrOcc::onSymbol(Pos, A);
    return true;
  }
  if (E.Kind == ExprKind::Name) {
    auto It = Locals.find(E.Name);
    if (It == Locals.end())
      return false;
    (void)P;
    Out = It->second;
    return true;
  }
  return false;
}

void GrammarLowerer::collectArgs(const OperatorDecl &Op, ProdId P, Expr &E,
                                 const std::map<std::string, AttrOcc> &Locals,
                                 std::vector<std::string> &Bound,
                                 std::vector<AttrOcc> &Args) {
  auto isBound = [&](const std::string &Name) {
    for (const std::string &B : Bound)
      if (B == Name)
        return true;
    return false;
  };

  if (E.Kind == ExprKind::Name && isBound(E.Name))
    return; // let/match binding or parameter: not an occurrence
  AttrOcc Occ;
  if (resolveOcc(Op, P, E, Locals, Occ)) {
    for (size_t I = 0; I != Args.size(); ++I)
      if (Args[I] == Occ) {
        E.ArgIndex = static_cast<int>(I);
        return;
      }
    E.ArgIndex = static_cast<int>(Args.size());
    Args.push_back(Occ);
    return;
  }

  switch (E.Kind) {
  case ExprKind::Let:
    collectArgs(Op, P, *E.Children[0], Locals, Bound, Args);
    Bound.push_back(E.Name);
    collectArgs(Op, P, *E.Children[1], Locals, Bound, Args);
    Bound.pop_back();
    return;
  case ExprKind::Match:
    collectArgs(Op, P, *E.Children[0], Locals, Bound, Args);
    for (MatchArm &Arm : E.Arms) {
      if (Arm.Kind == MatchArm::PatKind::Bind) {
        Bound.push_back(Arm.Text);
        collectArgs(Op, P, *Arm.Body, Locals, Bound, Args);
        Bound.pop_back();
      } else {
        collectArgs(Op, P, *Arm.Body, Locals, Bound, Args);
      }
    }
    return;
  default:
    for (ExprPtr &C : E.Children)
      collectArgs(Op, P, *C, Locals, Bound, Args);
    return;
  }
}

LoweredGrammar GrammarLowerer::run() {
  // Phyla and attributes.
  PhylumId Root = InvalidId;
  for (const PhylumDecl &P : G.Phyla) {
    PhylumId Id = Builder.phylum(P.Name);
    if (P.IsRoot)
      Root = Id;
  }
  for (const AttrDecl &A : G.Attrs) {
    PhylumId Phy = Builder.grammar().findPhylum(A.Phylum);
    if (Phy == InvalidId)
      continue;
    Type T = resolveType(A.DeclType, Prog->Aliases, Diags);
    if (A.Inherited)
      Builder.inherited(Phy, A.Name, T.str());
    else
      Builder.synthesized(Phy, A.Name, T.str());
  }

  // Operators.
  std::map<std::string, ProdId> Prods;
  std::map<std::string, const OperatorDecl *> OpDecls;
  for (const OperatorDecl &Op : G.Operators) {
    PhylumId Lhs = Builder.grammar().findPhylum(Op.LhsPhylum);
    if (Lhs == InvalidId)
      continue;
    std::vector<PhylumId> Rhs;
    bool Ok = true;
    for (const auto &[Var, Phy] : Op.Children) {
      PhylumId Id = Builder.grammar().findPhylum(Phy);
      if (Id == InvalidId)
        Ok = false;
      else
        Rhs.push_back(Id);
    }
    if (!Ok)
      continue;
    bool StringLexeme = Op.HasLexeme && Op.LexemeType.Name == "string";
    Prods[Op.Name] =
        Builder.production(Op.Name, Lhs, std::move(Rhs), Op.HasLexeme,
                           StringLexeme);
    OpDecls[Op.Name] = &Op;
  }

  // Rules. Locals accumulate per operator across its blocks.
  std::map<std::string, std::map<std::string, AttrOcc>> LocalsOf;
  for (RuleBlock &Block : G.Rules) {
    auto PIt = Prods.find(Block.Operator);
    if (PIt == Prods.end())
      continue;
    ProdId P = PIt->second;
    const OperatorDecl &Op = *OpDecls[Block.Operator];
    auto &Locals = LocalsOf[Block.Operator];

    // Two passes: declare locals first so rules may reference them in any
    // textual order, then lower the defining expressions.
    for (const RuleStmt &S : Block.Stmts)
      if (S.IsLocalDecl && !Locals.count(S.Attr))
        Locals[S.Attr] = Builder.local(
            P, S.Attr, resolveType(S.LocalType, Prog->Aliases, Diags).str());

    for (RuleStmt &S : Block.Stmts) {
      AttrOcc Target;
      if (S.IsLocalDecl || S.Base.empty()) {
        auto LIt = Locals.find(S.Attr);
        if (LIt == Locals.end())
          continue; // sema reported
        Target = LIt->second;
      } else {
        Expr Ref;
        Ref.Kind = ExprKind::AttrRef;
        Ref.Name = S.Base;
        Ref.Member = S.Attr;
        std::map<std::string, AttrOcc> NoLocals;
        if (!resolveOcc(Op, P, Ref, NoLocals, Target))
          continue; // sema reported
      }

      std::vector<AttrOcc> Args;
      std::vector<std::string> Bound;
      Expr &Body = *S.Value;
      collectArgs(Op, P, Body, Locals, Bound, Args);

      // Copy rules: the body is exactly one occurrence reference.
      bool IsBareOcc = Body.ArgIndex == 0 && Args.size() == 1 &&
                       (Body.Kind == ExprKind::AttrRef ||
                        Body.Kind == ExprKind::Name) &&
                       !Args[0].isLexeme();
      std::string FnName = Body.Kind == ExprKind::Call ? Body.Name
                           : IsBareOcc                 ? "copy"
                           : Body.Children.empty() && Body.Arms.empty()
                               ? "const"
                               : "<expr>";

      auto ProgRef = Prog;
      auto RuntimeRef = RuntimeDiags;
      const Expr *BodyPtr = &Body;
      SemanticFn Fn = [ProgRef, RuntimeRef,
                       BodyPtr](std::span<const Value> OccArgs) {
        EvalContext Ctx;
        Ctx.Prog = ProgRef.get();
        Ctx.OccArgs = OccArgs;
        return evalExpr(*BodyPtr, Ctx, *RuntimeRef);
      };

      if (IsBareOcc) {
        RuleId R = Builder.rule(P, Target, std::move(Args), "copy",
                                std::move(Fn));
        Builder.grammar().Rules[R].IsCopy = true;
      } else {
        Builder.rule(P, Target, std::move(Args), FnName, std::move(Fn));
      }
    }
  }

  if (Root != InvalidId)
    Builder.setStart(Root);

  LoweredGrammar Out;
  Out.Prog = Prog;
  Out.RuntimeDiags = RuntimeDiags;
  Out.AG = Builder.finalize(Diags);
  return Out;
}

std::vector<LoweredGrammar>
olga::lowerProgram(std::shared_ptr<Program> Prog, DiagnosticEngine &Diags) {
  std::vector<LoweredGrammar> Out;
  for (GrammarDecl &G : Prog->Unit.Grammars) {
    GrammarLowerer L(G, Prog, Diags);
    Out.push_back(L.run());
  }
  return Out;
}
