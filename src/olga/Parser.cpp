//===- olga/Parser.cpp ----------------------------------------------------===//

#include "olga/Parser.h"

using namespace fnc2;
using namespace fnc2::olga;

namespace {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  CompilationUnit parse() {
    CompilationUnit Unit;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwModule)) {
        Unit.Modules.push_back(parseModule());
      } else if (at(TokKind::KwGrammar)) {
        Unit.Grammars.push_back(parseGrammar());
      } else {
        error("expected 'module' or 'grammar'");
        sync({TokKind::KwModule, TokKind::KwGrammar});
        if (at(TokKind::Eof))
          break;
      }
    }
    return Unit;
  }

private:
  //===-- token plumbing --------------------------------------------------===//
  const Token &peek(unsigned Ahead = 0) const {
    size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
    return Tokens[I];
  }
  bool at(TokKind K) const { return peek().Kind == K; }
  Token consume() { return Tokens[std::min(Pos++, Tokens.size() - 1)]; }
  bool accept(TokKind K) {
    if (!at(K))
      return false;
    consume();
    return true;
  }
  Token expect(TokKind K, const char *Context) {
    if (at(K))
      return consume();
    error(std::string("expected ") + tokKindName(K) + " " + Context +
          ", found " + tokKindName(peek().Kind));
    return Token{K, "", 0, peek().Loc};
  }
  void error(const std::string &Msg) { Diags.error(Msg, peek().Loc); }
  void sync(std::initializer_list<TokKind> Until) {
    while (!at(TokKind::Eof)) {
      for (TokKind K : Until)
        if (at(K))
          return;
      consume();
    }
  }

  //===-- shared pieces ---------------------------------------------------===//
  TypeRef parseTypeRef() {
    Token T = consume();
    switch (T.Kind) {
    case TokKind::Ident:
      return {T.Text, T.Loc};
    default:
      // Builtin type names lex as identifiers except when they collide with
      // keywords; none do, so anything else is an error.
      Diags.error("expected a type name", T.Loc);
      return {"<error>", T.Loc};
    }
  }

  std::vector<std::string> parseImports() {
    std::vector<std::string> Imports;
    while (accept(TokKind::KwImport)) {
      Imports.push_back(expect(TokKind::Ident, "after 'import'").Text);
      while (accept(TokKind::Comma))
        Imports.push_back(expect(TokKind::Ident, "in import list").Text);
    }
    return Imports;
  }

  //===-- modules ---------------------------------------------------------===//
  ModuleDecl parseModule() {
    ModuleDecl M;
    M.Loc = peek().Loc;
    expect(TokKind::KwModule, "at module start");
    M.Name = expect(TokKind::Ident, "after 'module'").Text;
    M.Imports = parseImports();
    while (!at(TokKind::KwEnd) && !at(TokKind::Eof)) {
      if (at(TokKind::KwType)) {
        TypeAlias A;
        A.Loc = consume().Loc;
        A.Name = expect(TokKind::Ident, "after 'type'").Text;
        expect(TokKind::Equal, "in type alias");
        A.Aliased = parseTypeRef();
        M.Types.push_back(std::move(A));
      } else if (at(TokKind::KwConst)) {
        ConstDecl C;
        C.Loc = consume().Loc;
        C.Name = expect(TokKind::Ident, "after 'const'").Text;
        expect(TokKind::Colon, "in constant declaration");
        C.DeclType = parseTypeRef();
        expect(TokKind::Equal, "in constant declaration");
        C.Value = parseExpr();
        M.Consts.push_back(std::move(C));
      } else if (at(TokKind::KwFun)) {
        M.Funs.push_back(parseFun());
      } else {
        error("expected 'type', 'const', 'fun' or 'end' in module");
        sync({TokKind::KwType, TokKind::KwConst, TokKind::KwFun,
              TokKind::KwEnd});
      }
    }
    expect(TokKind::KwEnd, "closing the module");
    return M;
  }

  FunDecl parseFun() {
    FunDecl F;
    F.Loc = peek().Loc;
    expect(TokKind::KwFun, "at function start");
    F.Name = expect(TokKind::Ident, "after 'fun'").Text;
    expect(TokKind::LParen, "in function signature");
    if (!at(TokKind::RParen)) {
      do {
        std::string P = expect(TokKind::Ident, "as parameter name").Text;
        expect(TokKind::Colon, "after parameter name");
        F.Params.emplace_back(P, parseTypeRef());
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "closing the parameter list");
    expect(TokKind::Colon, "before the return type");
    F.ReturnType = parseTypeRef();
    expect(TokKind::Equal, "before the function body");
    F.Body = parseExpr();
    return F;
  }

  //===-- grammars ----------------------------------------------------------//
  GrammarDecl parseGrammar() {
    GrammarDecl G;
    G.Loc = peek().Loc;
    expect(TokKind::KwGrammar, "at grammar start");
    G.Name = expect(TokKind::Ident, "after 'grammar'").Text;
    G.Imports = parseImports();
    while (!at(TokKind::KwEnd) && !at(TokKind::Eof)) {
      if (at(TokKind::KwPhylum)) {
        PhylumDecl P;
        P.Loc = consume().Loc;
        P.Name = expect(TokKind::Ident, "after 'phylum'").Text;
        P.IsRoot = accept(TokKind::KwRoot);
        G.Phyla.push_back(std::move(P));
      } else if (at(TokKind::KwAttr)) {
        AttrDecl A;
        A.Loc = consume().Loc;
        A.Phylum = expect(TokKind::Ident, "after 'attr'").Text;
        if (accept(TokKind::KwInh))
          A.Inherited = true;
        else if (accept(TokKind::KwSyn))
          A.Inherited = false;
        else
          error("expected 'inh' or 'syn' in attribute declaration");
        A.Name = expect(TokKind::Ident, "as attribute name").Text;
        expect(TokKind::Colon, "before the attribute type");
        A.DeclType = parseTypeRef();
        G.Attrs.push_back(std::move(A));
      } else if (at(TokKind::KwOperator)) {
        G.Operators.push_back(parseOperator());
      } else if (at(TokKind::KwRules)) {
        G.Rules.push_back(parseRuleBlock());
      } else {
        error("expected 'phylum', 'attr', 'operator', 'rules' or 'end'");
        sync({TokKind::KwPhylum, TokKind::KwAttr, TokKind::KwOperator,
              TokKind::KwRules, TokKind::KwEnd});
      }
    }
    expect(TokKind::KwEnd, "closing the grammar");
    return G;
  }

  OperatorDecl parseOperator() {
    OperatorDecl Op;
    Op.Loc = peek().Loc;
    expect(TokKind::KwOperator, "at operator start");
    Op.Name = expect(TokKind::Ident, "after 'operator'").Text;
    expect(TokKind::LParen, "in operator signature");
    if (!at(TokKind::RParen)) {
      do {
        std::string Var = expect(TokKind::Ident, "as child name").Text;
        expect(TokKind::Colon, "after child name");
        std::string Phy = expect(TokKind::Ident, "as child phylum").Text;
        Op.Children.emplace_back(Var, Phy);
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "closing the child list");
    expect(TokKind::Arrow, "before the result phylum");
    Op.LhsPhylum = expect(TokKind::Ident, "as result phylum").Text;
    if (accept(TokKind::KwLexeme)) {
      Op.HasLexeme = true;
      Op.LexemeType = parseTypeRef();
    }
    return Op;
  }

  RuleBlock parseRuleBlock() {
    RuleBlock B;
    B.Loc = peek().Loc;
    expect(TokKind::KwRules, "at rule block start");
    expect(TokKind::KwFor, "after 'rules'");
    B.Operator = expect(TokKind::Ident, "as operator name").Text;
    while (!at(TokKind::KwEnd) && !at(TokKind::Eof)) {
      RuleStmt S;
      S.Loc = peek().Loc;
      if (accept(TokKind::KwLocal)) {
        S.IsLocalDecl = true;
        S.Attr = expect(TokKind::Ident, "as local attribute name").Text;
        expect(TokKind::Colon, "before the local attribute type");
        S.LocalType = parseTypeRef();
        expect(TokKind::Assign, "in local attribute definition");
        S.Value = parseExpr();
      } else if (at(TokKind::Ident)) {
        std::string First = consume().Text;
        if (accept(TokKind::Dot)) {
          S.Base = First;
          S.Attr = expect(TokKind::Ident, "as attribute name").Text;
        } else {
          S.Attr = First; // bare local attribute target
        }
        expect(TokKind::Assign, "in semantic rule");
        S.Value = parseExpr();
      } else {
        error("expected a semantic rule or 'end'");
        sync({TokKind::KwEnd, TokKind::KwLocal, TokKind::Ident});
        continue;
      }
      B.Stmts.push_back(std::move(S));
    }
    expect(TokKind::KwEnd, "closing the rule block");
    return B;
  }

  //===-- expressions -------------------------------------------------------//
  ExprPtr mk(ExprKind K) {
    auto E = std::make_unique<Expr>();
    E->Kind = K;
    E->Loc = peek().Loc;
    return E;
  }

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (at(TokKind::KwOr)) {
      auto E = mk(ExprKind::Binary);
      consume();
      E->Name = "or";
      E->Children.push_back(std::move(L));
      E->Children.push_back(parseAnd());
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseCmp();
    while (at(TokKind::KwAnd)) {
      auto E = mk(ExprKind::Binary);
      consume();
      E->Name = "and";
      E->Children.push_back(std::move(L));
      E->Children.push_back(parseCmp());
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseCmp() {
    ExprPtr L = parseAdd();
    const char *Op = nullptr;
    switch (peek().Kind) {
    case TokKind::Equal: Op = "="; break;
    case TokKind::NotEqual: Op = "<>"; break;
    case TokKind::Less: Op = "<"; break;
    case TokKind::LessEq: Op = "<="; break;
    case TokKind::Greater: Op = ">"; break;
    case TokKind::GreaterEq: Op = ">="; break;
    default: return L;
    }
    auto E = mk(ExprKind::Binary);
    consume();
    E->Name = Op;
    E->Children.push_back(std::move(L));
    E->Children.push_back(parseAdd());
    return E;
  }

  ExprPtr parseAdd() {
    ExprPtr L = parseMul();
    while (at(TokKind::Plus) || at(TokKind::Minus) || at(TokKind::Caret)) {
      auto E = mk(ExprKind::Binary);
      E->Name = at(TokKind::Plus) ? "+" : at(TokKind::Minus) ? "-" : "^";
      consume();
      E->Children.push_back(std::move(L));
      E->Children.push_back(parseMul());
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseMul() {
    ExprPtr L = parseUnary();
    while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
      auto E = mk(ExprKind::Binary);
      E->Name = at(TokKind::Star) ? "*" : at(TokKind::Slash) ? "/" : "%";
      consume();
      E->Children.push_back(std::move(L));
      E->Children.push_back(parseUnary());
      L = std::move(E);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (at(TokKind::Minus) || at(TokKind::KwNot)) {
      auto E = mk(ExprKind::Unary);
      E->Name = at(TokKind::Minus) ? "-" : "not";
      consume();
      E->Children.push_back(parseUnary());
      return E;
    }
    return parsePostfix();
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parsePrimary();
    while (at(TokKind::Dot) && E->Kind == ExprKind::Name &&
           E->Children.empty()) {
      consume();
      auto Ref = mk(ExprKind::AttrRef);
      Ref->Name = E->Name;
      Ref->Member = expect(TokKind::Ident, "as attribute name").Text;
      Ref->Loc = E->Loc;
      E = std::move(Ref);
    }
    return E;
  }

  ExprPtr parsePrimary() {
    switch (peek().Kind) {
    case TokKind::IntLit: {
      auto E = mk(ExprKind::IntLit);
      E->IntValue = consume().IntValue;
      return E;
    }
    case TokKind::StringLit: {
      auto E = mk(ExprKind::StringLit);
      E->Name = consume().Text;
      return E;
    }
    case TokKind::KwTrue:
    case TokKind::KwFalse: {
      auto E = mk(ExprKind::BoolLit);
      E->BoolValue = consume().Kind == TokKind::KwTrue;
      return E;
    }
    case TokKind::KwLexeme: {
      auto E = mk(ExprKind::Lexeme);
      consume();
      return E;
    }
    case TokKind::LParen: {
      consume();
      ExprPtr E = parseExpr();
      expect(TokKind::RParen, "closing the parenthesis");
      return E;
    }
    case TokKind::LBracket: {
      auto E = mk(ExprKind::ListLit);
      consume();
      if (!at(TokKind::RBracket)) {
        do
          E->Children.push_back(parseExpr());
        while (accept(TokKind::Comma));
      }
      expect(TokKind::RBracket, "closing the list literal");
      return E;
    }
    case TokKind::KwIf: {
      auto E = mk(ExprKind::If);
      consume();
      E->Children.push_back(parseExpr());
      expect(TokKind::KwThen, "in conditional");
      E->Children.push_back(parseExpr());
      expect(TokKind::KwElse, "in conditional");
      E->Children.push_back(parseExpr());
      return E;
    }
    case TokKind::KwLet: {
      auto E = mk(ExprKind::Let);
      consume();
      E->Name = expect(TokKind::Ident, "after 'let'").Text;
      expect(TokKind::Equal, "in let binding");
      E->Children.push_back(parseExpr());
      expect(TokKind::KwIn, "in let binding");
      E->Children.push_back(parseExpr());
      return E;
    }
    case TokKind::KwMatch:
      return parseMatch();
    case TokKind::Ident: {
      auto E = mk(ExprKind::Name);
      E->Name = consume().Text;
      if (accept(TokKind::LParen)) {
        E->Kind = ExprKind::Call;
        if (!at(TokKind::RParen)) {
          do
            E->Children.push_back(parseExpr());
          while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "closing the call");
      }
      return E;
    }
    default:
      error("expected an expression, found " + tokKindName(peek().Kind));
      consume();
      return mk(ExprKind::IntLit);
    }
  }

  ExprPtr parseMatch() {
    auto E = mk(ExprKind::Match);
    expect(TokKind::KwMatch, "at match start");
    E->Children.push_back(parseExpr());
    expect(TokKind::KwWith, "after the scrutinee");
    while (accept(TokKind::Pipe)) {
      MatchArm Arm;
      Arm.Loc = peek().Loc;
      switch (peek().Kind) {
      case TokKind::IntLit:
        Arm.Kind = MatchArm::PatKind::IntPat;
        Arm.IntValue = consume().IntValue;
        break;
      case TokKind::Minus:
        consume();
        Arm.Kind = MatchArm::PatKind::IntPat;
        Arm.IntValue = -expect(TokKind::IntLit, "after '-'").IntValue;
        break;
      case TokKind::StringLit:
        Arm.Kind = MatchArm::PatKind::StringPat;
        Arm.Text = consume().Text;
        break;
      case TokKind::KwTrue:
      case TokKind::KwFalse:
        Arm.Kind = MatchArm::PatKind::BoolPat;
        Arm.BoolValue = consume().Kind == TokKind::KwTrue;
        break;
      case TokKind::Underscore:
        consume();
        Arm.Kind = MatchArm::PatKind::Wild;
        break;
      case TokKind::Ident:
        Arm.Kind = MatchArm::PatKind::Bind;
        Arm.Text = consume().Text;
        break;
      default:
        error("expected a pattern");
        consume();
        break;
      }
      expect(TokKind::Arrow, "after the pattern");
      Arm.Body = parseExpr();
      E->Arms.push_back(std::move(Arm));
    }
    expect(TokKind::KwEnd, "closing the match");
    if (E->Arms.empty())
      error("match expression has no arms");
    return E;
  }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

CompilationUnit olga::parseUnit(const std::string &Source,
                                DiagnosticEngine &Diags) {
  Parser P(tokenize(Source, Diags), Diags);
  return P.parse();
}
