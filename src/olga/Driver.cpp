//===- olga/Driver.cpp ----------------------------------------------------===//

#include "olga/Driver.h"

#include "olga/Parser.h"
#include "support/Timer.h"

#include <algorithm>

using namespace fnc2;
using namespace fnc2::olga;

CompileResult olga::compileMolga(const std::string &Source,
                                 DiagnosticEngine &Diags, bool Optimize) {
  CompileResult R;
  R.Lines = static_cast<unsigned>(
      std::count(Source.begin(), Source.end(), '\n') + 1);

  Timer Phase;
  CompilationUnit Unit = parseUnit(Source, Diags);
  R.Phases.InputSec = Phase.seconds();
  if (Diags.hasErrors())
    return R;

  Phase.reset();
  R.Prog = checkUnit(std::move(Unit), Diags);
  if (Diags.hasErrors()) {
    R.Phases.TypingSec = Phase.seconds();
    return R;
  }
  if (Optimize)
    R.Optimizer = optimizeProgram(*R.Prog);
  R.Grammars = lowerProgram(R.Prog, Diags);
  R.Phases.TypingSec = Phase.seconds();
  R.Success = !Diags.hasErrors();
  return R;
}
