//===- olga/Lower.h - molga to abstract AG lowering -------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a checked molga grammar to the abstract AG the evaluator
/// generator consumes: phyla, operators, attributes, local attributes and
/// semantic rules whose functions interpret the checked expression ASTs.
/// This is the molga front-end's contribution of the "abstract AG (syntax
/// and local dependencies)" of paper section 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_LOWER_H
#define FNC2_OLGA_LOWER_H

#include "grammar/AttributeGrammar.h"
#include "olga/Sema.h"

namespace fnc2::olga {

/// A lowered grammar: the abstract AG plus the objects its semantic
/// functions close over.
struct LoweredGrammar {
  AttributeGrammar AG;
  /// Keeps the expression ASTs alive for the closures.
  std::shared_ptr<Program> Prog;
  /// Collects runtime errors raised inside semantic functions (division by
  /// zero, non-exhaustive matches); empty after a clean evaluation.
  std::shared_ptr<DiagnosticEngine> RuntimeDiags;
};

/// Lowers every grammar of the checked program. Front-end errors are
/// reported through \p Diags; grammars that fail well-formedness are still
/// returned (with their diagnostics) so callers can inspect them.
std::vector<LoweredGrammar> lowerProgram(std::shared_ptr<Program> Prog,
                                         DiagnosticEngine &Diags);

} // namespace fnc2::olga

#endif // FNC2_OLGA_LOWER_H
