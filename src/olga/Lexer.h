//===- olga/Lexer.h - molga tokenizer ---------------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for molga, our OLGA-style AG-description language (paper
/// section 2.4): strongly typed, purely applicative, block-structured, with
/// declaration/definition modules and grammars as compilation units.
/// Comments run from "--" to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_LEXER_H
#define FNC2_OLGA_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fnc2::olga {

enum class TokKind : uint8_t {
  Eof,
  Ident,
  IntLit,
  StringLit,
  // Keywords.
  KwModule,
  KwEnd,
  KwImport,
  KwType,
  KwFun,
  KwConst,
  KwGrammar,
  KwPhylum,
  KwRoot,
  KwAttr,
  KwInh,
  KwSyn,
  KwOperator,
  KwLexeme,
  KwRules,
  KwFor,
  KwLocal,
  KwIf,
  KwThen,
  KwElse,
  KwLet,
  KwIn,
  KwMatch,
  KwWith,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  KwNot,
  // Punctuation / operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Dot,
  Pipe,
  Arrow,     // ->
  Assign,    // :=
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Caret,     // string concatenation
  Equal,
  NotEqual,  // <>
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Underscore,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   ///< Identifier or string contents.
  int64_t IntValue = 0;
  SourceLoc Loc;
};

/// Tokenizes \p Source; lexical errors are reported through \p Diags and
/// yield an Eof-terminated partial stream.
std::vector<Token> tokenize(const std::string &Source,
                            DiagnosticEngine &Diags);

/// Token spelling for diagnostics.
std::string tokKindName(TokKind Kind);

} // namespace fnc2::olga

#endif // FNC2_OLGA_LEXER_H
