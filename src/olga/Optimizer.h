//===- olga/Optimizer.h - molga optimizer -----------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common optimizer that precedes the translators (paper section 3.2):
/// constant folding, deterministic decision trees for the pattern-matching
/// construct (literal match arms get sorted so dispatch can binary-search),
/// and tail-recursion detection (workload AG 6's job: "the test for
/// tail-recursive functions in an OLGA specification").
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_OLGA_OPTIMIZER_H
#define FNC2_OLGA_OPTIMIZER_H

#include "olga/Sema.h"

namespace fnc2::olga {

struct OptimizerStats {
  unsigned ConstantsFolded = 0;
  unsigned MatchesCompiled = 0;  ///< Matches rewritten into decision trees.
  unsigned FunsAnalyzed = 0;
  unsigned TailRecursiveFuns = 0;
};

/// Folds constants in \p E in place; returns true when E became a literal.
bool foldConstants(Expr &E, const Program &Prog, unsigned &Folded);

/// True iff every self-call of \p F is in tail position and at least one
/// exists.
bool isTailRecursive(const FunDecl &F);

/// Runs all passes over every function body and semantic rule.
OptimizerStats optimizeProgram(Program &Prog);

} // namespace fnc2::olga

#endif // FNC2_OLGA_OPTIMIZER_H
