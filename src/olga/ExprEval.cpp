//===- olga/ExprEval.cpp --------------------------------------------------===//

#include "olga/ExprEval.h"

#include <cassert>

using namespace fnc2;
using namespace fnc2::olga;

bool olga::applyBuiltin(const std::string &Name, std::span<const Value> Args,
                        Value &Result) {
  auto IsInts = [&](unsigned N) {
    if (Args.size() != N)
      return false;
    for (const Value &V : Args)
      if (!V.isInt())
        return false;
    return true;
  };

  if (Name == "emptymap" && Args.empty()) {
    Result = Value::emptyMap();
    return true;
  }
  if (Name == "insert" && Args.size() == 3 && Args[0].isMap() &&
      Args[1].isString()) {
    Result = Args[0].mapInsert(Args[1].asString(), Args[2]);
    return true;
  }
  if (Name == "lookup" && Args.size() == 3 && Args[0].isMap() &&
      Args[1].isString()) {
    const Value *Found = Args[0].mapLookup(Args[1].asString());
    Result = Found ? *Found : Args[2];
    return true;
  }
  if (Name == "haskey" && Args.size() == 2 && Args[0].isMap() &&
      Args[1].isString()) {
    Result = Value::ofBool(Args[0].mapLookup(Args[1].asString()) != nullptr);
    return true;
  }
  if (Name == "mapsize" && Args.size() == 1 && Args[0].isMap()) {
    Result = Value::ofInt(Args[0].mapSize());
    return true;
  }
  if (Name == "min" && IsInts(2)) {
    Result = Value::ofInt(std::min(Args[0].asInt(), Args[1].asInt()));
    return true;
  }
  if (Name == "max" && IsInts(2)) {
    Result = Value::ofInt(std::max(Args[0].asInt(), Args[1].asInt()));
    return true;
  }
  if (Name == "len" && Args.size() == 1 && Args[0].isList()) {
    Result = Value::ofInt(static_cast<int64_t>(Args[0].asList().size()));
    return true;
  }
  if (Name == "append" && Args.size() == 2 && Args[0].isList()) {
    Result = Args[0].listAppend(Args[1]);
    return true;
  }
  if (Name == "concat" && Args.size() == 2 && Args[0].isList() &&
      Args[1].isList()) {
    Result = Value::listConcat(Args[0], Args[1]);
    return true;
  }
  if (Name == "get" && Args.size() == 3 && Args[0].isList() &&
      Args[1].isInt()) {
    const auto &L = Args[0].asList();
    int64_t I = Args[1].asInt();
    Result = (I >= 0 && static_cast<size_t>(I) < L.size())
                 ? L[static_cast<size_t>(I)]
                 : Args[2];
    return true;
  }
  if (Name == "tostr" && Args.size() == 1 && Args[0].isInt()) {
    Result = Value::ofString(std::to_string(Args[0].asInt()));
    return true;
  }
  if (Name == "strlen" && Args.size() == 1 && Args[0].isString()) {
    Result = Value::ofInt(static_cast<int64_t>(Args[0].asString().size()));
    return true;
  }
  return false;
}

static Value evalBinary(const std::string &Op, const Value &L, const Value &R,
                        const SourceLoc &Loc, DiagnosticEngine &Diags) {
  if (Op == "=")
    return Value::ofBool(L.equals(R));
  if (Op == "<>")
    return Value::ofBool(!L.equals(R));
  if (Op == "^" && L.isString() && R.isString())
    return Value::ofString(L.asString() + R.asString());
  if (L.isInt() && R.isInt()) {
    int64_t A = L.asInt(), B = R.asInt();
    if (Op == "+")
      return Value::ofInt(A + B);
    if (Op == "-")
      return Value::ofInt(A - B);
    if (Op == "*")
      return Value::ofInt(A * B);
    if (Op == "/") {
      if (B == 0) {
        Diags.error("division by zero", Loc);
        return Value::ofInt(0);
      }
      return Value::ofInt(A / B);
    }
    if (Op == "%") {
      if (B == 0) {
        Diags.error("modulo by zero", Loc);
        return Value::ofInt(0);
      }
      return Value::ofInt(A % B);
    }
    if (Op == "<")
      return Value::ofBool(A < B);
    if (Op == "<=")
      return Value::ofBool(A <= B);
    if (Op == ">")
      return Value::ofBool(A > B);
    if (Op == ">=")
      return Value::ofBool(A >= B);
  }
  if (L.isString() && R.isString()) {
    const std::string &A = L.asString(), &B = R.asString();
    if (Op == "<")
      return Value::ofBool(A < B);
    if (Op == "<=")
      return Value::ofBool(A <= B);
    if (Op == ">")
      return Value::ofBool(A > B);
    if (Op == ">=")
      return Value::ofBool(A >= B);
  }
  Diags.error("operator '" + Op + "' applied to incompatible values", Loc);
  return Value();
}

Value olga::evalExpr(const Expr &E, EvalContext &Ctx,
                     DiagnosticEngine &Diags) {
  if (Ctx.Fuel == 0) {
    Diags.error("evaluation fuel exhausted (runaway recursion?)", E.Loc);
    return Value();
  }
  --Ctx.Fuel;

  switch (E.Kind) {
  case ExprKind::IntLit:
    return Value::ofInt(E.IntValue);
  case ExprKind::BoolLit:
    return Value::ofBool(E.BoolValue);
  case ExprKind::StringLit:
    return Value::ofString(E.Name);
  case ExprKind::ListLit: {
    std::vector<Value> Elems;
    Elems.reserve(E.Children.size());
    for (const ExprPtr &C : E.Children)
      Elems.push_back(evalExpr(*C, Ctx, Diags));
    return Value::ofList(std::move(Elems));
  }
  case ExprKind::Lexeme:
  case ExprKind::AttrRef: {
    assert(E.ArgIndex >= 0 &&
           static_cast<size_t>(E.ArgIndex) < Ctx.OccArgs.size() &&
           "unlowered occurrence access");
    return Ctx.OccArgs[E.ArgIndex];
  }
  case ExprKind::Name: {
    if (const Value *Bound = Ctx.lookup(E.Name))
      return *Bound;
    if (E.ArgIndex >= 0 &&
        static_cast<size_t>(E.ArgIndex) < Ctx.OccArgs.size())
      return Ctx.OccArgs[E.ArgIndex]; // local attribute occurrence
    if (Ctx.Prog) {
      auto It = Ctx.Prog->Consts.find(E.Name);
      if (It != Ctx.Prog->Consts.end())
        return It->second.second;
    }
    Diags.error("unbound name '" + E.Name + "' at run time", E.Loc);
    return Value();
  }
  case ExprKind::Unary: {
    Value V = evalExpr(*E.Children[0], Ctx, Diags);
    if (E.Name == "-" && V.isInt())
      return Value::ofInt(-V.asInt());
    if (E.Name == "not" && V.isBool())
      return Value::ofBool(!V.asBool());
    Diags.error("unary '" + E.Name + "' applied to incompatible value",
                E.Loc);
    return Value();
  }
  case ExprKind::Binary: {
    // Short-circuit the boolean connectives.
    if (E.Name == "and" || E.Name == "or") {
      Value L = evalExpr(*E.Children[0], Ctx, Diags);
      if (!L.isBool()) {
        Diags.error("'" + E.Name + "' needs boolean operands", E.Loc);
        return Value();
      }
      if (E.Name == "and" && !L.asBool())
        return Value::ofBool(false);
      if (E.Name == "or" && L.asBool())
        return Value::ofBool(true);
      return evalExpr(*E.Children[1], Ctx, Diags);
    }
    Value L = evalExpr(*E.Children[0], Ctx, Diags);
    Value R = evalExpr(*E.Children[1], Ctx, Diags);
    return evalBinary(E.Name, L, R, E.Loc, Diags);
  }
  case ExprKind::If: {
    Value C = evalExpr(*E.Children[0], Ctx, Diags);
    if (!C.isBool()) {
      Diags.error("condition is not boolean", E.Loc);
      return Value();
    }
    return evalExpr(*E.Children[C.asBool() ? 1 : 2], Ctx, Diags);
  }
  case ExprKind::Let: {
    Value Bound = evalExpr(*E.Children[0], Ctx, Diags);
    Ctx.Bindings.emplace_back(E.Name, std::move(Bound));
    Value Result = evalExpr(*E.Children[1], Ctx, Diags);
    Ctx.Bindings.pop_back();
    return Result;
  }
  case ExprKind::Call: {
    std::vector<Value> Args;
    Args.reserve(E.Children.size());
    for (const ExprPtr &C : E.Children)
      Args.push_back(evalExpr(*C, Ctx, Diags));
    Value Result;
    if (applyBuiltin(E.Name, Args, Result))
      return Result;
    if (Ctx.Prog) {
      auto It = Ctx.Prog->Funs.find(E.Name);
      if (It != Ctx.Prog->Funs.end() && It->second.Decl) {
        const FunDecl &F = *It->second.Decl;
        if (F.Params.size() != Args.size()) {
          Diags.error("call to '" + E.Name + "' with wrong arity", E.Loc);
          return Value();
        }
        // Fresh frame: functions only see their parameters and constants.
        EvalContext Callee;
        Callee.Prog = Ctx.Prog;
        Callee.Fuel = Ctx.Fuel;
        for (size_t I = 0; I != Args.size(); ++I)
          Callee.Bindings.emplace_back(F.Params[I].first,
                                       std::move(Args[I]));
        Value Result2 = evalExpr(*F.Body, Callee, Diags);
        Ctx.Fuel = Callee.Fuel;
        return Result2;
      }
    }
    Diags.error("call to unknown function '" + E.Name + "'", E.Loc);
    return Value();
  }
  case ExprKind::Match: {
    Value Scrut = evalExpr(*E.Children[0], Ctx, Diags);
    for (const MatchArm &Arm : E.Arms) {
      bool Hit = false;
      switch (Arm.Kind) {
      case MatchArm::PatKind::IntPat:
        Hit = Scrut.isInt() && Scrut.asInt() == Arm.IntValue;
        break;
      case MatchArm::PatKind::BoolPat:
        Hit = Scrut.isBool() && Scrut.asBool() == Arm.BoolValue;
        break;
      case MatchArm::PatKind::StringPat:
        Hit = Scrut.isString() && Scrut.asString() == Arm.Text;
        break;
      case MatchArm::PatKind::Bind:
      case MatchArm::PatKind::Wild:
        Hit = true;
        break;
      }
      if (!Hit)
        continue;
      if (Arm.Kind == MatchArm::PatKind::Bind) {
        Ctx.Bindings.emplace_back(Arm.Text, Scrut);
        Value Result = evalExpr(*Arm.Body, Ctx, Diags);
        Ctx.Bindings.pop_back();
        return Result;
      }
      return evalExpr(*Arm.Body, Ctx, Diags);
    }
    Diags.error("non-exhaustive match at run time", E.Loc);
    return Value();
  }
  }
  return Value();
}
