//===- workloads/MiniPascal.cpp -------------------------------------------===//

#include "workloads/MiniPascal.h"

#include "grammar/GrammarBuilder.h"

#include <cctype>

using namespace fnc2;
using namespace fnc2::workloads;

static AttrOcc occ(unsigned Pos, AttrId A) { return AttrOcc::onSymbol(Pos, A); }

// Type codes in the env and on expressions.
static constexpr int64_t TyInt = 0;
static constexpr int64_t TyBool = 1;
static constexpr int64_t TyErr = 2;

//===----------------------------------------------------------------------===//
// Value helpers shared by the semantic rules
//===----------------------------------------------------------------------===//

static Value emptyCode() { return Value::ofList({}); }
static Value instr(const std::string &S) {
  return Value::ofList({Value::ofString(S)});
}
static Value cat(const Value &A, const Value &B) {
  return Value::listConcat(A, B);
}
static Value labInstr(const char *Op, int64_t L) {
  return instr(std::string(Op) + " L" + std::to_string(L));
}

AttributeGrammar workloads::miniPascal(DiagnosticEngine &Diags) {
  GrammarBuilder B("mini-pascal");

  PhylumId Prog = B.phylum("Prog");
  PhylumId DeclList = B.phylum("DeclList");
  PhylumId Decl = B.phylum("Decl");
  PhylumId StmtList = B.phylum("StmtList");
  PhylumId Stmt = B.phylum("Stmt");
  PhylumId Expr = B.phylum("Expr");

  AttrId PCode = B.synthesized(Prog, "code", "list");
  AttrId PErrs = B.synthesized(Prog, "errs", "int");
  AttrId DLEnv = B.inherited(DeclList, "env", "map");
  AttrId DLOut = B.synthesized(DeclList, "envout", "map");
  AttrId DLErrs = B.synthesized(DeclList, "errs", "int");
  AttrId DEnv = B.inherited(Decl, "env", "map");
  AttrId DOut = B.synthesized(Decl, "envout", "map");
  AttrId DErrs = B.synthesized(Decl, "errs", "int");
  AttrId SLEnv = B.inherited(StmtList, "env", "map");
  AttrId SLLab = B.inherited(StmtList, "lab", "int");
  AttrId SLLabOut = B.synthesized(StmtList, "labout", "int");
  AttrId SLCode = B.synthesized(StmtList, "code", "list");
  AttrId SLErrs = B.synthesized(StmtList, "errs", "int");
  AttrId SEnv = B.inherited(Stmt, "env", "map");
  AttrId SLab = B.inherited(Stmt, "lab", "int");
  AttrId SLabOut = B.synthesized(Stmt, "labout", "int");
  AttrId SCode = B.synthesized(Stmt, "code", "list");
  AttrId SErrs = B.synthesized(Stmt, "errs", "int");
  AttrId EEnv = B.inherited(Expr, "env", "map");
  AttrId ETy = B.synthesized(Expr, "ty", "int");
  AttrId ECode = B.synthesized(Expr, "code", "list");
  AttrId EErrs = B.synthesized(Expr, "errs", "int");

  auto sum2 = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + A[1].asInt());
  };
  auto sum3 = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + A[1].asInt() + A[2].asInt());
  };

  // Program(d: DeclList, s: StmtList) -> Prog
  ProdId Program = B.production("Program", Prog, {DeclList, StmtList});
  B.rule(Program, occ(1, DLEnv), {}, "emptyEnv",
         [](std::span<const Value> ) { return Value::emptyMap(); });
  B.copy(Program, occ(2, SLEnv), occ(1, DLOut));
  B.constant(Program, occ(2, SLLab), Value::ofInt(0), "zero");
  B.rule(Program, occ(0, PCode), {occ(2, SLCode)}, "sealCode",
         [](std::span<const Value> A) { return cat(A[0], instr("HLT")); });
  B.rule(Program, occ(0, PErrs), {occ(1, DLErrs), occ(2, SLErrs)}, "add",
         sum2);

  // DeclNil -> DeclList
  ProdId DeclNil = B.production("DeclNil", DeclList, {});
  B.copy(DeclNil, occ(0, DLOut), occ(0, DLEnv));
  B.constant(DeclNil, occ(0, DLErrs), Value::ofInt(0), "zero");

  // DeclCons(d: Decl, rest: DeclList) -> DeclList
  ProdId DeclCons = B.production("DeclCons", DeclList, {Decl, DeclList});
  B.copy(DeclCons, occ(1, DEnv), occ(0, DLEnv));
  B.copy(DeclCons, occ(2, DLEnv), occ(1, DOut));
  B.copy(DeclCons, occ(0, DLOut), occ(2, DLOut));
  B.rule(DeclCons, occ(0, DLErrs), {occ(1, DErrs), occ(2, DLErrs)}, "add",
         sum2);

  // VarInt<name> / VarBool<name> -> Decl
  auto makeVarDecl = [&](const char *Name, int64_t Ty) {
    ProdId P = B.production(Name, Decl, {}, /*HasLexeme=*/true,
                            /*StringLexeme=*/true);
    B.rule(P, occ(0, DOut), {occ(0, DEnv), AttrOcc::lexeme()}, "declare",
           [Ty](std::span<const Value> A) {
             return A[0].mapInsert(A[1].asString(), Value::ofInt(Ty));
           });
    B.rule(P, occ(0, DErrs), {occ(0, DEnv), AttrOcc::lexeme()}, "redecl",
           [](std::span<const Value> A) {
             return Value::ofInt(A[0].mapLookup(A[1].asString()) ? 1 : 0);
           });
  };
  makeVarDecl("VarInt", TyInt);
  makeVarDecl("VarBool", TyBool);

  // StmtNil -> StmtList
  ProdId StmtNil = B.production("StmtNil", StmtList, {});
  B.copy(StmtNil, occ(0, SLLabOut), occ(0, SLLab));
  B.constant(StmtNil, occ(0, SLCode), emptyCode(), "nil");
  B.constant(StmtNil, occ(0, SLErrs), Value::ofInt(0), "zero");

  // StmtCons(s: Stmt, rest: StmtList) -> StmtList
  ProdId StmtCons = B.production("StmtCons", StmtList, {Stmt, StmtList});
  B.copy(StmtCons, occ(1, SLab), occ(0, SLLab));
  B.copy(StmtCons, occ(2, SLLab), occ(1, SLabOut));
  B.copy(StmtCons, occ(0, SLLabOut), occ(2, SLLabOut));
  B.rule(StmtCons, occ(0, SLCode), {occ(1, SCode), occ(2, SLCode)}, "cat",
         [](std::span<const Value> A) { return cat(A[0], A[1]); });
  B.rule(StmtCons, occ(0, SLErrs), {occ(1, SErrs), occ(2, SLErrs)}, "add",
         sum2);

  // Assign<name>(e: Expr) -> Stmt
  ProdId Assign = B.production("Assign", Stmt, {Expr}, /*HasLexeme=*/true,
                               /*StringLexeme=*/true);
  B.copy(Assign, occ(0, SLabOut), occ(0, SLab));
  B.rule(Assign, occ(0, SCode), {occ(1, ECode), AttrOcc::lexeme()}, "store",
         [](std::span<const Value> A) {
           return cat(A[0], instr("STO " + A[1].asString()));
         });
  B.rule(Assign, occ(0, SErrs),
         {occ(1, EErrs), occ(0, SEnv), AttrOcc::lexeme(), occ(1, ETy)},
         "checkAssign", [](std::span<const Value> A) {
           int64_t Errs = A[0].asInt();
           const Value *Declared = A[1].mapLookup(A[2].asString());
           int64_t Ty = A[3].asInt();
           if (!Declared)
             return Value::ofInt(Errs + 1);
           if (Ty != TyErr && Declared->asInt() != Ty)
             return Value::ofInt(Errs + 1);
           return Value::ofInt(Errs);
         });

  // IfStmt(e: Expr, then: StmtList, els: StmtList) -> Stmt
  ProdId IfStmt = B.production("IfStmt", Stmt, {Expr, StmtList, StmtList});
  B.rule(IfStmt, occ(2, SLLab), {occ(0, SLab)}, "plus2",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + 2);
         });
  B.copy(IfStmt, occ(3, SLLab), occ(2, SLLabOut));
  B.copy(IfStmt, occ(0, SLabOut), occ(3, SLLabOut));
  B.rule(IfStmt, occ(0, SCode),
         {occ(1, ECode), occ(2, SLCode), occ(3, SLCode), occ(0, SLab)},
         "ifCode", [](std::span<const Value> A) {
           int64_t L1 = A[3].asInt(), L2 = A[3].asInt() + 1;
           Value C = A[0];
           C = cat(C, labInstr("JPC", L1));
           C = cat(C, A[1]);
           C = cat(C, labInstr("JMP", L2));
           C = cat(C, labInstr("LAB", L1));
           C = cat(C, A[2]);
           C = cat(C, labInstr("LAB", L2));
           return C;
         });
  B.rule(IfStmt, occ(0, SErrs),
         {occ(1, EErrs), occ(2, SLErrs), occ(3, SLErrs), occ(1, ETy)},
         "checkCond", [](std::span<const Value> A) {
           int64_t E = A[0].asInt() + A[1].asInt() + A[2].asInt();
           return Value::ofInt(E + (A[3].asInt() == TyBool ? 0 : 1));
         });

  // WhileStmt(e: Expr, body: StmtList) -> Stmt
  ProdId WhileStmt = B.production("WhileStmt", Stmt, {Expr, StmtList});
  B.rule(WhileStmt, occ(2, SLLab), {occ(0, SLab)}, "plus2",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + 2);
         });
  B.copy(WhileStmt, occ(0, SLabOut), occ(2, SLLabOut));
  B.rule(WhileStmt, occ(0, SCode),
         {occ(1, ECode), occ(2, SLCode), occ(0, SLab)}, "whileCode",
         [](std::span<const Value> A) {
           int64_t L1 = A[2].asInt(), L2 = A[2].asInt() + 1;
           Value C = labInstr("LAB", L1);
           C = cat(C, A[0]);
           C = cat(C, labInstr("JPC", L2));
           C = cat(C, A[1]);
           C = cat(C, labInstr("JMP", L1));
           C = cat(C, labInstr("LAB", L2));
           return C;
         });
  B.rule(WhileStmt, occ(0, SErrs),
         {occ(1, EErrs), occ(2, SLErrs), occ(1, ETy)}, "checkCond",
         [](std::span<const Value> A) {
           int64_t E = A[0].asInt() + A[1].asInt();
           return Value::ofInt(E + (A[2].asInt() == TyBool ? 0 : 1));
         });

  // Write(e: Expr) -> Stmt
  ProdId Write = B.production("Write", Stmt, {Expr});
  B.copy(Write, occ(0, SLabOut), occ(0, SLab));
  B.rule(Write, occ(0, SCode), {occ(1, ECode)}, "writeCode",
         [](std::span<const Value> A) { return cat(A[0], instr("WRI")); });
  B.copy(Write, occ(0, SErrs), occ(1, EErrs));

  // Expressions.
  ProdId Num = B.production("Num", Expr, {}, /*HasLexeme=*/true);
  B.constant(Num, occ(0, ETy), Value::ofInt(TyInt), "tyInt");
  B.rule(Num, occ(0, ECode), {AttrOcc::lexeme()}, "lit",
         [](std::span<const Value> A) {
           return instr("LIT " + std::to_string(A[0].asInt()));
         });
  B.constant(Num, occ(0, EErrs), Value::ofInt(0), "zero");

  auto makeBoolLit = [&](const char *Name, int64_t V) {
    ProdId P = B.production(Name, Expr, {});
    B.constant(P, occ(0, ETy), Value::ofInt(TyBool), "tyBool");
    B.constant(P, occ(0, ECode), instr("LIT " + std::to_string(V)), "lit");
    B.constant(P, occ(0, EErrs), Value::ofInt(0), "zero");
  };
  makeBoolLit("TrueLit", 1);
  makeBoolLit("FalseLit", 0);

  ProdId Ident = B.production("Ident", Expr, {}, /*HasLexeme=*/true,
                              /*StringLexeme=*/true);
  B.rule(Ident, occ(0, ETy), {occ(0, EEnv), AttrOcc::lexeme()}, "identTy",
         [](std::span<const Value> A) {
           const Value *Found = A[0].mapLookup(A[1].asString());
           return Found ? *Found : Value::ofInt(TyErr);
         });
  B.rule(Ident, occ(0, ECode), {AttrOcc::lexeme()}, "load",
         [](std::span<const Value> A) {
           return instr("LOD " + A[0].asString());
         });
  B.rule(Ident, occ(0, EErrs), {occ(0, EEnv), AttrOcc::lexeme()}, "declared",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].mapLookup(A[1].asString()) ? 0 : 1);
         });

  auto makeArith = [&](const char *Name, const char *OpCode) {
    ProdId P = B.production(Name, Expr, {Expr, Expr});
    B.rule(P, occ(0, ETy), {occ(1, ETy), occ(2, ETy)}, "arithTy",
           [](std::span<const Value> A) {
             bool Ok = A[0].asInt() == TyInt && A[1].asInt() == TyInt;
             return Value::ofInt(Ok ? TyInt : TyErr);
           });
    std::string Instr = OpCode;
    B.rule(P, occ(0, ECode), {occ(1, ECode), occ(2, ECode)}, "arithCode",
           [Instr](std::span<const Value> A) {
             return cat(cat(A[0], A[1]), instr(Instr));
           });
    B.rule(P, occ(0, EErrs), {occ(1, EErrs), occ(2, EErrs), occ(1, ETy),
                              occ(2, ETy)},
           "arithErrs", [](std::span<const Value> A) {
             bool Ok = A[2].asInt() == TyInt && A[3].asInt() == TyInt;
             return Value::ofInt(A[0].asInt() + A[1].asInt() + (Ok ? 0 : 1));
           });
  };
  makeArith("Add", "ADD");
  makeArith("Sub", "SUB");
  makeArith("Mul", "MUL");

  // Less: int x int -> bool. Eq: same non-error types -> bool.
  ProdId Less = B.production("Less", Expr, {Expr, Expr});
  B.rule(Less, occ(0, ETy), {occ(1, ETy), occ(2, ETy)}, "lessTy",
         [](std::span<const Value> A) {
           bool Ok = A[0].asInt() == TyInt && A[1].asInt() == TyInt;
           return Value::ofInt(Ok ? TyBool : TyErr);
         });
  B.rule(Less, occ(0, ECode), {occ(1, ECode), occ(2, ECode)}, "lessCode",
         [](std::span<const Value> A) {
           return cat(cat(A[0], A[1]), instr("LES"));
         });
  B.rule(Less, occ(0, EErrs),
         {occ(1, EErrs), occ(2, EErrs), occ(1, ETy), occ(2, ETy)}, "lessErrs",
         [](std::span<const Value> A) {
           bool Ok = A[2].asInt() == TyInt && A[3].asInt() == TyInt;
           return Value::ofInt(A[0].asInt() + A[1].asInt() + (Ok ? 0 : 1));
         });

  ProdId Eq = B.production("Eq", Expr, {Expr, Expr});
  B.rule(Eq, occ(0, ETy), {occ(1, ETy), occ(2, ETy)}, "eqTy",
         [](std::span<const Value> A) {
           bool Ok = A[0].asInt() == A[1].asInt() && A[0].asInt() != TyErr;
           return Value::ofInt(Ok ? TyBool : TyErr);
         });
  B.rule(Eq, occ(0, ECode), {occ(1, ECode), occ(2, ECode)}, "eqCode",
         [](std::span<const Value> A) {
           return cat(cat(A[0], A[1]), instr("EQU"));
         });
  B.rule(Eq, occ(0, EErrs),
         {occ(1, EErrs), occ(2, EErrs), occ(1, ETy), occ(2, ETy)}, "eqErrs",
         [](std::span<const Value> A) {
           bool Ok = A[2].asInt() == A[3].asInt() && A[2].asInt() != TyErr;
           return Value::ofInt(A[0].asInt() + A[1].asInt() + (Ok ? 0 : 1));
         });

  B.setStart(Prog);
  return B.finalize(Diags);
}

//===----------------------------------------------------------------------===//
// Hand-written equivalent
//===----------------------------------------------------------------------===//

namespace {

/// The baseline compiler a careful human would write: direct recursion,
/// mutable environment and label counter, string vector code buffer.
class HandCompiler {
public:
  explicit HandCompiler(const AttributeGrammar &AG) : AG(AG) {}

  PCodeResult run(const TreeNode *Root) {
    const TreeNode *Decls = Root->child(0);
    const TreeNode *Stmts = Root->child(1);
    compileDecls(Decls);
    Lab = 0;
    compileStmts(Stmts);
    Code.push_back("HLT");
    return {std::move(Code), Errors};
  }

private:
  const std::string &opName(const TreeNode *N) const {
    return AG.prod(N->Prod).Name;
  }

  void compileDecls(const TreeNode *N) {
    const std::string &Op = opName(N);
    if (Op == "DeclNil")
      return;
    // DeclCons(decl, rest)
    const TreeNode *D = N->child(0);
    const std::string &DOp = opName(D);
    const std::string &Name = D->Lexeme.asString();
    int64_t Ty = DOp == "VarInt" ? TyInt : TyBool;
    if (Env.mapLookup(Name))
      ++Errors;
    Env = Env.mapInsert(Name, Value::ofInt(Ty));
    compileDecls(N->child(1));
  }

  void compileStmts(const TreeNode *N) {
    if (opName(N) == "StmtNil")
      return;
    compileStmt(N->child(0));
    compileStmts(N->child(1));
  }

  void compileStmt(const TreeNode *N) {
    const std::string &Op = opName(N);
    if (Op == "Assign") {
      int64_t Ty = compileExpr(N->child(0));
      const std::string &Name = N->Lexeme.asString();
      const Value *Declared = Env.mapLookup(Name);
      if (!Declared)
        ++Errors;
      else if (Ty != TyErr && Declared->asInt() != Ty)
        ++Errors;
      Code.push_back("STO " + Name);
      return;
    }
    if (Op == "IfStmt") {
      int64_t L1 = Lab, L2 = Lab + 1;
      Lab += 2;
      int64_t Ty = compileExpr(N->child(0));
      if (Ty != TyBool)
        ++Errors;
      Code.push_back("JPC L" + std::to_string(L1));
      compileStmts(N->child(1));
      Code.push_back("JMP L" + std::to_string(L2));
      Code.push_back("LAB L" + std::to_string(L1));
      compileStmts(N->child(2));
      Code.push_back("LAB L" + std::to_string(L2));
      return;
    }
    if (Op == "WhileStmt") {
      int64_t L1 = Lab, L2 = Lab + 1;
      Lab += 2;
      Code.push_back("LAB L" + std::to_string(L1));
      int64_t Ty = compileExpr(N->child(0));
      if (Ty != TyBool)
        ++Errors;
      Code.push_back("JPC L" + std::to_string(L2));
      compileStmts(N->child(1));
      Code.push_back("JMP L" + std::to_string(L1));
      Code.push_back("LAB L" + std::to_string(L2));
      return;
    }
    // Write
    compileExpr(N->child(0));
    Code.push_back("WRI");
  }

  int64_t compileExpr(const TreeNode *N) {
    const std::string &Op = opName(N);
    if (Op == "Num") {
      Code.push_back("LIT " + std::to_string(N->Lexeme.asInt()));
      return TyInt;
    }
    if (Op == "TrueLit") {
      Code.push_back("LIT 1");
      return TyBool;
    }
    if (Op == "FalseLit") {
      Code.push_back("LIT 0");
      return TyBool;
    }
    if (Op == "Ident") {
      const std::string &Name = N->Lexeme.asString();
      const Value *Found = Env.mapLookup(Name);
      if (!Found)
        ++Errors;
      Code.push_back("LOD " + Name);
      return Found ? Found->asInt() : TyErr;
    }
    int64_t L = compileExpr(N->child(0));
    int64_t R = compileExpr(N->child(1));
    if (Op == "Add" || Op == "Sub" || Op == "Mul") {
      bool Ok = L == TyInt && R == TyInt;
      if (!Ok)
        ++Errors;
      Code.push_back(Op == "Add" ? "ADD" : Op == "Sub" ? "SUB" : "MUL");
      return Ok ? TyInt : TyErr;
    }
    if (Op == "Less") {
      bool Ok = L == TyInt && R == TyInt;
      if (!Ok)
        ++Errors;
      Code.push_back("LES");
      return Ok ? TyBool : TyErr;
    }
    // Eq
    bool Ok = L == R && L != TyErr;
    if (!Ok)
      ++Errors;
    Code.push_back("EQU");
    return Ok ? TyBool : TyErr;
  }

  const AttributeGrammar &AG;
  Value Env = Value::emptyMap();
  std::vector<std::string> Code;
  int64_t Errors = 0;
  int64_t Lab = 0;
};

} // namespace

PCodeResult workloads::compileMiniPascalByHand(const AttributeGrammar &AG,
                                               const TreeNode *Root) {
  HandCompiler HC(AG);
  return HC.run(Root);
}

namespace {

/// The hand-written compiler over the semantic rules' own data structures:
/// persistent environment maps and immutable code lists, concatenated as
/// the rules concatenate them. The per-node logic mirrors the AG exactly.
class HandCompilerSameData {
public:
  explicit HandCompilerSameData(const AttributeGrammar &AG) : AG(AG) {}

  PCodeResult run(const TreeNode *Root) {
    Value Env = Value::emptyMap();
    int64_t Errors = 0;
    declList(Root->child(0), Env, Errors);
    int64_t Lab = 0;
    Value Code = stmtList(Root->child(1), Env, Lab, Errors);
    Code = cat(Code, instr("HLT"));
    PCodeResult R;
    for (const Value &I : Code.asList())
      R.Code.push_back(I.asString());
    R.Errors = Errors;
    return R;
  }

private:
  const std::string &opName(const TreeNode *N) const {
    return AG.prod(N->Prod).Name;
  }

  void declList(const TreeNode *N, Value &Env, int64_t &Errors) {
    if (opName(N) == "DeclNil")
      return;
    const TreeNode *D = N->child(0);
    const std::string &Name = D->Lexeme.asString();
    if (Env.mapLookup(Name))
      ++Errors;
    Env = Env.mapInsert(
        Name, Value::ofInt(opName(D) == "VarInt" ? TyInt : TyBool));
    declList(N->child(1), Env, Errors);
  }

  Value stmtList(const TreeNode *N, const Value &Env, int64_t &Lab,
                 int64_t &Errors) {
    if (opName(N) == "StmtNil")
      return emptyCode();
    Value Head = stmt(N->child(0), Env, Lab, Errors);
    return cat(Head, stmtList(N->child(1), Env, Lab, Errors));
  }

  Value stmt(const TreeNode *N, const Value &Env, int64_t &Lab,
             int64_t &Errors) {
    const std::string &Op = opName(N);
    if (Op == "Assign") {
      int64_t Ty;
      Value Code = expr(N->child(0), Env, Ty, Errors);
      const std::string &Name = N->Lexeme.asString();
      const Value *Declared = Env.mapLookup(Name);
      if (!Declared || (Ty != TyErr && Declared->asInt() != Ty))
        ++Errors;
      return cat(Code, instr("STO " + Name));
    }
    if (Op == "IfStmt") {
      int64_t L1 = Lab, L2 = Lab + 1;
      Lab += 2;
      int64_t Ty;
      Value Code = expr(N->child(0), Env, Ty, Errors);
      if (Ty != TyBool)
        ++Errors;
      Code = cat(Code, labInstr("JPC", L1));
      Code = cat(Code, stmtList(N->child(1), Env, Lab, Errors));
      Code = cat(Code, labInstr("JMP", L2));
      Code = cat(Code, labInstr("LAB", L1));
      Code = cat(Code, stmtList(N->child(2), Env, Lab, Errors));
      return cat(Code, labInstr("LAB", L2));
    }
    if (Op == "WhileStmt") {
      int64_t L1 = Lab, L2 = Lab + 1;
      Lab += 2;
      int64_t Ty;
      Value Cond = expr(N->child(0), Env, Ty, Errors);
      if (Ty != TyBool)
        ++Errors;
      Value Code = cat(labInstr("LAB", L1), Cond);
      Code = cat(Code, labInstr("JPC", L2));
      Code = cat(Code, stmtList(N->child(1), Env, Lab, Errors));
      Code = cat(Code, labInstr("JMP", L1));
      return cat(Code, labInstr("LAB", L2));
    }
    int64_t Ty;
    Value Code = expr(N->child(0), Env, Ty, Errors);
    return cat(Code, instr("WRI"));
  }

  Value expr(const TreeNode *N, const Value &Env, int64_t &Ty,
             int64_t &Errors) {
    const std::string &Op = opName(N);
    if (Op == "Num") {
      Ty = TyInt;
      return instr("LIT " + std::to_string(N->Lexeme.asInt()));
    }
    if (Op == "TrueLit") {
      Ty = TyBool;
      return instr("LIT 1");
    }
    if (Op == "FalseLit") {
      Ty = TyBool;
      return instr("LIT 0");
    }
    if (Op == "Ident") {
      const std::string &Name = N->Lexeme.asString();
      const Value *Found = Env.mapLookup(Name);
      if (!Found)
        ++Errors;
      Ty = Found ? Found->asInt() : TyErr;
      return instr("LOD " + Name);
    }
    int64_t LT, RT;
    Value Code = cat(expr(N->child(0), Env, LT, Errors),
                     expr(N->child(1), Env, RT, Errors));
    if (Op == "Add" || Op == "Sub" || Op == "Mul") {
      bool Ok = LT == TyInt && RT == TyInt;
      if (!Ok)
        ++Errors;
      Ty = Ok ? TyInt : TyErr;
      return cat(Code,
                 instr(Op == "Add" ? "ADD" : Op == "Sub" ? "SUB" : "MUL"));
    }
    if (Op == "Less") {
      bool Ok = LT == TyInt && RT == TyInt;
      if (!Ok)
        ++Errors;
      Ty = Ok ? TyBool : TyErr;
      return cat(Code, instr("LES"));
    }
    bool Ok = LT == RT && LT != TyErr;
    if (!Ok)
      ++Errors;
    Ty = Ok ? TyBool : TyErr;
    return cat(Code, instr("EQU"));
  }

  const AttributeGrammar &AG;
};

} // namespace

PCodeResult
workloads::compileMiniPascalByHandSameData(const AttributeGrammar &AG,
                                           const TreeNode *Root) {
  HandCompilerSameData HC(AG);
  return HC.run(Root);
}

PCodeResult workloads::pcodeFromTree(const AttributeGrammar &AG,
                                     const Tree &T) {
  PCodeResult R;
  PhylumId Prog = AG.findPhylum("Prog");
  AttrId Code = AG.findAttr(Prog, "code");
  AttrId Errs = AG.findAttr(Prog, "errs");
  const Value &CodeV = T.root()->attrVal(AG.attr(Code).IndexInOwner);
  for (const Value &I : CodeV.asList())
    R.Code.push_back(I.asString());
  R.Errors = T.root()->attrVal(AG.attr(Errs).IndexInOwner).asInt();
  return R;
}

//===----------------------------------------------------------------------===//
// Source parser
//===----------------------------------------------------------------------===//

namespace {

class PascalParser {
public:
  PascalParser(const AttributeGrammar &AG, const std::string &Src,
               DiagnosticEngine &Diags, Tree &T)
      : AG(AG), Src(Src), Diags(Diags), T(T) {}

  std::unique_ptr<TreeNode> parseProgram() {
    auto Decls = parseDecls();
    expectWord("begin");
    auto Stmts = parseStmts();
    expectWord("end");
    if (!Ok)
      return nullptr;
    std::vector<std::unique_ptr<TreeNode>> Kids;
    Kids.push_back(std::move(Decls));
    Kids.push_back(std::move(Stmts));
    return T.make(AG.findProd("Program"), std::move(Kids));
  }

  bool ok() const { return Ok; }

private:
  void skip() {
    while (Pos < Src.size() &&
           std::isspace(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
  }
  std::string peekWord() {
    skip();
    size_t P = Pos;
    std::string W;
    while (P < Src.size() &&
           (std::isalnum(static_cast<unsigned char>(Src[P])) ||
            Src[P] == '_'))
      W += Src[P++];
    return W;
  }
  std::string takeWord() {
    std::string W = peekWord();
    Pos += W.size();
    return W;
  }
  bool acceptWord(const std::string &W) {
    if (peekWord() != W)
      return false;
    takeWord();
    return true;
  }
  void expectWord(const std::string &W) {
    if (!acceptWord(W))
      fail("expected '" + W + "'");
  }
  bool acceptChar(char C) {
    skip();
    if (Pos < Src.size() && Src[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }
  void expectChar(char C) {
    if (!acceptChar(C))
      fail(std::string("expected '") + C + "'");
  }
  void fail(const std::string &Msg) {
    if (Ok)
      Diags.error("mini-pascal: " + Msg + " at offset " +
                  std::to_string(Pos));
    Ok = false;
  }
  std::unique_ptr<TreeNode> leafS(const char *Op, const std::string &Lex) {
    return T.makeLeaf(AG.findProd(Op), Value::ofString(Lex));
  }
  std::unique_ptr<TreeNode> node(const char *Op,
                                 std::vector<std::unique_ptr<TreeNode>> Kids,
                                 Value Lex = Value()) {
    return T.make(AG.findProd(Op), std::move(Kids), std::move(Lex));
  }

  std::unique_ptr<TreeNode> parseDecls() {
    if (peekWord() != "var" || !Ok)
      return node("DeclNil", {});
    takeWord();
    std::string Name = takeWord();
    expectChar(':');
    std::string Ty = takeWord();
    expectChar(';');
    auto D = leafS(Ty == "bool" ? "VarBool" : "VarInt", Name);
    auto Rest = parseDecls();
    std::vector<std::unique_ptr<TreeNode>> Kids;
    Kids.push_back(std::move(D));
    Kids.push_back(std::move(Rest));
    return node("DeclCons", std::move(Kids));
  }

  std::unique_ptr<TreeNode> parseStmts() {
    std::string W = peekWord();
    if (W == "end" || W.empty() || !Ok)
      return node("StmtNil", {});
    auto S = parseStmt();
    expectChar(';');
    if (!Ok || !S)
      return node("StmtNil", {});
    auto Rest = parseStmts();
    std::vector<std::unique_ptr<TreeNode>> Kids;
    Kids.push_back(std::move(S));
    Kids.push_back(std::move(Rest));
    return node("StmtCons", std::move(Kids));
  }

  std::unique_ptr<TreeNode> parseBlock() {
    expectWord("begin");
    auto S = parseStmts();
    expectWord("end");
    return S;
  }

  std::unique_ptr<TreeNode> parseStmt() {
    std::string W = peekWord();
    if (W == "if") {
      takeWord();
      auto Cond = parseExpr();
      expectWord("then");
      auto Then = parseBlock();
      std::unique_ptr<TreeNode> Else;
      if (acceptWord("else"))
        Else = parseBlock();
      else
        Else = node("StmtNil", {});
      if (!Ok)
        return nullptr;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(Cond));
      Kids.push_back(std::move(Then));
      Kids.push_back(std::move(Else));
      return node("IfStmt", std::move(Kids));
    }
    if (W == "while") {
      takeWord();
      auto Cond = parseExpr();
      expectWord("do");
      auto Body = parseBlock();
      if (!Ok)
        return nullptr;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(Cond));
      Kids.push_back(std::move(Body));
      return node("WhileStmt", std::move(Kids));
    }
    if (W == "write") {
      takeWord();
      auto E = parseExpr();
      if (!Ok)
        return nullptr;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(E));
      return node("Write", std::move(Kids));
    }
    // assignment: name := expr
    std::string Name = takeWord();
    if (Name.empty()) {
      fail("expected a statement");
      return nullptr;
    }
    skip();
    if (!(acceptChar(':') && acceptChar('='))) {
      fail("expected ':='");
      return nullptr;
    }
    auto E = parseExpr();
    if (!Ok)
      return nullptr;
    std::vector<std::unique_ptr<TreeNode>> Kids;
    Kids.push_back(std::move(E));
    return node("Assign", std::move(Kids), Value::ofString(Name));
  }

  std::unique_ptr<TreeNode> parseExpr() {
    auto L = parseAdd();
    skip();
    if (Pos < Src.size() && (Src[Pos] == '<' || Src[Pos] == '=')) {
      char Op = Src[Pos++];
      auto R = parseAdd();
      if (!Ok || !L || !R)
        return L;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(L));
      Kids.push_back(std::move(R));
      return node(Op == '<' ? "Less" : "Eq", std::move(Kids));
    }
    return L;
  }

  std::unique_ptr<TreeNode> parseAdd() {
    auto L = parseMul();
    while (Ok) {
      skip();
      if (Pos >= Src.size() || (Src[Pos] != '+' && Src[Pos] != '-'))
        break;
      char Op = Src[Pos++];
      auto R = parseMul();
      if (!L || !R)
        break;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(L));
      Kids.push_back(std::move(R));
      L = node(Op == '+' ? "Add" : "Sub", std::move(Kids));
    }
    return L;
  }

  std::unique_ptr<TreeNode> parseMul() {
    auto L = parsePrim();
    while (Ok) {
      skip();
      if (Pos >= Src.size() || Src[Pos] != '*')
        break;
      ++Pos;
      auto R = parsePrim();
      if (!L || !R)
        break;
      std::vector<std::unique_ptr<TreeNode>> Kids;
      Kids.push_back(std::move(L));
      Kids.push_back(std::move(R));
      L = node("Mul", std::move(Kids));
    }
    return L;
  }

  std::unique_ptr<TreeNode> parsePrim() {
    skip();
    if (acceptChar('(')) {
      auto E = parseExpr();
      expectChar(')');
      return E;
    }
    if (Pos < Src.size() &&
        std::isdigit(static_cast<unsigned char>(Src[Pos]))) {
      int64_t V = 0;
      while (Pos < Src.size() &&
             std::isdigit(static_cast<unsigned char>(Src[Pos])))
        V = V * 10 + (Src[Pos++] - '0');
      return T.makeLeaf(AG.findProd("Num"), Value::ofInt(V));
    }
    std::string W = takeWord();
    if (W == "true")
      return node("TrueLit", {});
    if (W == "false")
      return node("FalseLit", {});
    if (W.empty()) {
      fail("expected an expression");
      return nullptr;
    }
    return leafS("Ident", W);
  }

  const AttributeGrammar &AG;
  const std::string &Src;
  DiagnosticEngine &Diags;
  Tree &T;
  size_t Pos = 0;
  bool Ok = true;
};

} // namespace

Tree workloads::parseMiniPascal(const AttributeGrammar &AG,
                                const std::string &Source,
                                DiagnosticEngine &Diags) {
  Tree T(AG);
  PascalParser P(AG, Source, Diags, T);
  auto Root = P.parseProgram();
  if (Root && P.ok())
    T.setRoot(std::move(Root));
  return T;
}

//===----------------------------------------------------------------------===//
// Source generator
//===----------------------------------------------------------------------===//

std::string workloads::generateMiniPascalSource(unsigned TargetStatements,
                                                uint64_t Seed) {
  uint64_t State = Seed ? Seed : 1;
  auto rnd = [&]() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  };

  unsigned NumVars = 3 + rnd() % 5;
  std::vector<std::string> IntVars, BoolVars;
  std::string Out;
  for (unsigned I = 0; I != NumVars; ++I) {
    std::string Name = "v" + std::to_string(I);
    bool IsBool = rnd() % 4 == 0;
    Out += "var " + Name + ": " + (IsBool ? "bool" : "int") + ";\n";
    (IsBool ? BoolVars : IntVars).push_back(Name);
  }
  if (IntVars.empty()) {
    Out += "var vx: int;\n";
    IntVars.push_back("vx");
  }

  auto intExpr = [&](auto &&Self, unsigned Depth) -> std::string {
    if (Depth == 0 || rnd() % 3 == 0)
      return rnd() % 2 ? IntVars[rnd() % IntVars.size()]
                       : std::to_string(rnd() % 100);
    const char *Ops[] = {" + ", " - ", " * "};
    return "(" + Self(Self, Depth - 1) + Ops[rnd() % 3] +
           Self(Self, Depth - 1) + ")";
  };
  auto boolExpr = [&](unsigned Depth) {
    return intExpr(intExpr, Depth) + " < " + intExpr(intExpr, Depth);
  };

  unsigned Remaining = TargetStatements;
  auto stmts = [&](auto &&Self, unsigned Depth, unsigned Budget)
      -> std::string {
    std::string S;
    while (Budget > 0 && Remaining > 0) {
      unsigned Kind = rnd() % 8;
      if (Kind < 4 || Depth == 0) {
        S += IntVars[rnd() % IntVars.size()] + " := " +
             intExpr(intExpr, 2) + ";\n";
        --Budget;
        --Remaining;
      } else if (Kind < 6) {
        --Remaining;
        unsigned Inner = std::min(Budget, 3u);
        S += "if " + boolExpr(1) + " then begin\n" +
             Self(Self, Depth - 1, Inner) + "end else begin\n" +
             Self(Self, Depth - 1, Inner) + "end;\n";
        Budget = Budget > Inner ? Budget - Inner : 0;
      } else if (Kind == 6) {
        --Remaining;
        unsigned Inner = std::min(Budget, 3u);
        S += "while " + boolExpr(1) + " do begin\n" +
             Self(Self, Depth - 1, Inner) + "end;\n";
        Budget = Budget > Inner ? Budget - Inner : 0;
      } else {
        S += "write " + intExpr(intExpr, 2) + ";\n";
        --Budget;
        --Remaining;
      }
    }
    return S;
  };

  Out += "begin\n";
  Out += stmts(stmts, 3, TargetStatements);
  Out += "end\n";
  return Out;
}
