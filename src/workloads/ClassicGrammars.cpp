//===- workloads/ClassicGrammars.cpp --------------------------------------===//

#include "workloads/ClassicGrammars.h"

#include "grammar/GrammarBuilder.h"

#include <algorithm>

using namespace fnc2;

/// Shorthand for occurrence construction.
static AttrOcc occ(unsigned Pos, AttrId A) { return AttrOcc::onSymbol(Pos, A); }

AttributeGrammar workloads::deskCalculator(DiagnosticEngine &Diags) {
  GrammarBuilder B("desk-calc");
  PhylumId Prog = B.phylum("Prog");
  PhylumId Exp = B.phylum("Exp");
  AttrId Result = B.synthesized(Prog, "result", "int");
  AttrId Env = B.inherited(Exp, "env", "map");
  AttrId Val = B.synthesized(Exp, "val", "int");

  auto binOp = [](auto Op) {
    return [Op](std::span<const Value> A) {
      return Value::ofInt(Op(A[0].asInt(), A[1].asInt()));
    };
  };

  // Calc(Exp) -> Prog
  ProdId Calc = B.production("Calc", Prog, {Exp});
  B.rule(Calc, occ(1, Env), {}, "emptyEnv",
         [](std::span<const Value> ) { return Value::emptyMap(); });
  B.copy(Calc, occ(0, Result), occ(1, Val));

  // Num<int> -> Exp
  ProdId Num = B.production("Num", Exp, {}, /*HasLexeme=*/true);
  B.rule(Num, occ(0, Val), {AttrOcc::lexeme()}, "lexVal",
         [](std::span<const Value> A) { return A[0]; });

  // Var<"name"> -> Exp
  ProdId Var = B.production("Var", Exp, {}, /*HasLexeme=*/true,
                            /*StringLexeme=*/true);
  B.rule(Var, occ(0, Val), {occ(0, Env), AttrOcc::lexeme()}, "lookup",
         [](std::span<const Value> A) {
           const Value *V = A[0].mapLookup(A[1].asString());
           return V ? *V : Value::ofInt(0);
         });

  // Add/Sub/Mul(Exp, Exp) -> Exp; environments auto-copied.
  ProdId Add = B.production("Add", Exp, {Exp, Exp});
  B.rule(Add, occ(0, Val), {occ(1, Val), occ(2, Val)}, "add",
         binOp([](int64_t X, int64_t Y) { return X + Y; }));
  ProdId Sub = B.production("Sub", Exp, {Exp, Exp});
  B.rule(Sub, occ(0, Val), {occ(1, Val), occ(2, Val)}, "sub",
         binOp([](int64_t X, int64_t Y) { return X - Y; }));
  ProdId Mul = B.production("Mul", Exp, {Exp, Exp});
  B.rule(Mul, occ(0, Val), {occ(1, Val), occ(2, Val)}, "mul",
         binOp([](int64_t X, int64_t Y) { return X * Y; }));

  // Let<"name">(bound, body) -> Exp
  ProdId Let = B.production("Let", Exp, {Exp, Exp}, /*HasLexeme=*/true,
                            /*StringLexeme=*/true);
  B.copy(Let, occ(1, Env), occ(0, Env));
  B.rule(Let, occ(2, Env), {occ(0, Env), AttrOcc::lexeme(), occ(1, Val)},
         "bind", [](std::span<const Value> A) {
           return A[0].mapInsert(A[1].asString(), A[2]);
         });
  B.copy(Let, occ(0, Val), occ(2, Val));

  B.setStart(Prog);
  return B.finalize(Diags);
}

AttributeGrammar workloads::binaryNumbers(DiagnosticEngine &Diags) {
  // Values are fixed-point in 1/1024 units so the fractional part stays
  // integral: bit at scale s contributes 2^(10+s), -10 <= s.
  GrammarBuilder B("binary-numbers");
  PhylumId Num = B.phylum("Num");
  PhylumId List = B.phylum("List");
  PhylumId Bit = B.phylum("Bit");
  AttrId NVal = B.synthesized(Num, "val", "int");
  AttrId LScale = B.inherited(List, "scale", "int");
  AttrId LVal = B.synthesized(List, "val", "int");
  AttrId LLen = B.synthesized(List, "len", "int");
  AttrId BScale = B.inherited(Bit, "scale", "int");
  AttrId BVal = B.synthesized(Bit, "val", "int");

  // Integer(List) -> Num
  ProdId Integer = B.production("Integer", Num, {List});
  B.constant(Integer, occ(1, LScale), Value::ofInt(0), "zeroScale");
  B.copy(Integer, occ(0, NVal), occ(1, LVal));

  // Fraction(List, List) -> Num; the fraction's scale is minus its own
  // length — the dependency that makes this grammar need two visits.
  ProdId Fraction = B.production("Fraction", Num, {List, List});
  B.constant(Fraction, occ(1, LScale), Value::ofInt(0), "zeroScale");
  B.rule(Fraction, occ(2, LScale), {occ(2, LLen)}, "negate",
         [](std::span<const Value> A) {
           return Value::ofInt(-A[0].asInt());
         });
  B.rule(Fraction, occ(0, NVal), {occ(1, LVal), occ(2, LVal)}, "add",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + A[1].asInt());
         });

  // Single(Bit) -> List
  ProdId Single = B.production("Single", List, {Bit});
  B.copy(Single, occ(1, BScale), occ(0, LScale));
  B.copy(Single, occ(0, LVal), occ(1, BVal));
  B.constant(Single, occ(0, LLen), Value::ofInt(1), "one");

  // Pair(List, Bit) -> List
  ProdId Pair = B.production("Pair", List, {List, Bit});
  B.rule(Pair, occ(1, LScale), {occ(0, LScale)}, "inc",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + 1);
         });
  B.copy(Pair, occ(2, BScale), occ(0, LScale));
  B.rule(Pair, occ(0, LVal), {occ(1, LVal), occ(2, BVal)}, "add",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + A[1].asInt());
         });
  B.rule(Pair, occ(0, LLen), {occ(1, LLen)}, "inc",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + 1);
         });

  // Zero / One -> Bit
  ProdId Zero = B.production("Zero", Bit, {});
  B.constant(Zero, occ(0, BVal), Value::ofInt(0), "zero");
  ProdId One = B.production("One", Bit, {});
  B.rule(One, occ(0, BVal), {occ(0, BScale)}, "pow2",
         [](std::span<const Value> A) {
           int64_t S = A[0].asInt() + 10;
           assert(S >= 0 && S < 62 && "scale out of fixed-point range");
           return Value::ofInt(int64_t(1) << S);
         });

  B.setStart(Num);
  return B.finalize(Diags);
}

AttributeGrammar workloads::repmin(DiagnosticEngine &Diags) {
  GrammarBuilder B("repmin");
  PhylumId Root = B.phylum("Root");
  PhylumId T = B.phylum("T");
  AttrId Rep = B.synthesized(Root, "rep", "string");
  AttrId GMin = B.inherited(T, "gmin", "int");
  AttrId Min = B.synthesized(T, "min", "int");
  AttrId TRep = B.synthesized(T, "rep", "string");

  ProdId Top = B.production("Top", Root, {T});
  B.copy(Top, occ(1, GMin), occ(1, Min)); // broadcast the subtree minimum
  B.copy(Top, occ(0, Rep), occ(1, TRep));

  ProdId Leaf = B.production("Leaf", T, {}, /*HasLexeme=*/true);
  B.rule(Leaf, occ(0, Min), {AttrOcc::lexeme()}, "lexVal",
         [](std::span<const Value> A) { return A[0]; });
  B.rule(Leaf, occ(0, TRep), {occ(0, GMin)}, "show",
         [](std::span<const Value> A) {
           return Value::ofString(std::to_string(A[0].asInt()));
         });

  ProdId Fork = B.production("Fork", T, {T, T});
  B.rule(Fork, occ(0, Min), {occ(1, Min), occ(2, Min)}, "min",
         [](std::span<const Value> A) {
           return Value::ofInt(std::min(A[0].asInt(), A[1].asInt()));
         });
  B.rule(Fork, occ(0, TRep), {occ(1, TRep), occ(2, TRep)}, "fork",
         [](std::span<const Value> A) {
           return Value::ofString("(" + A[0].asString() + "," +
                                  A[1].asString() + ")");
         });

  B.setStart(Root);
  return B.finalize(Diags);
}

AttributeGrammar workloads::circularGrammar(DiagnosticEngine &Diags) {
  // h = u(s) in the context while s = f(h) below: a genuine cycle.
  GrammarBuilder B("circular");
  PhylumId Root = B.phylum("Root");
  PhylumId X = B.phylum("X");
  AttrId Out = B.synthesized(Root, "out", "int");
  AttrId H = B.inherited(X, "h", "int");
  AttrId S = B.synthesized(X, "s", "int");

  ProdId Top = B.production("Top", Root, {X});
  B.copy(Top, occ(1, H), occ(1, S));
  B.copy(Top, occ(0, Out), occ(1, S));

  ProdId Leaf = B.production("Leaf", X, {});
  B.rule(Leaf, occ(0, S), {occ(0, H)}, "f",
         [](std::span<const Value> A) { return A[0]; });

  B.setStart(Root);
  return B.finalize(Diags);
}

AttributeGrammar workloads::twoContextGrammar(DiagnosticEngine &Diags) {
  // X: inh h1 h2, syn s1 s2; the leaf pairs (h1,s1) and (h2,s2). Context A
  // computes h2 from s1 (order h1 s1 h2 s2); context B computes h1 from s2
  // (order h2 s2 h1 s1). Each context is fine (SNC) but their OI union is
  // cyclic with the leaf dependencies, so the grammar is not DNC and the
  // transformation must keep two partitions for X.
  GrammarBuilder B("two-context");
  PhylumId Root = B.phylum("Root");
  PhylumId W = B.phylum("W");
  PhylumId X = B.phylum("X");
  AttrId Out = B.synthesized(Root, "out", "int");
  AttrId WOut = B.synthesized(W, "out", "int");
  AttrId H1 = B.inherited(X, "h1", "int");
  AttrId H2 = B.inherited(X, "h2", "int");
  AttrId S1 = B.synthesized(X, "s1", "int");
  AttrId S2 = B.synthesized(X, "s2", "int");

  ProdId Top = B.production("Top", Root, {W});
  B.copy(Top, occ(0, Out), occ(1, WOut));

  auto inc = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + 1);
  };

  ProdId CtxA = B.production("CtxA", W, {X});
  B.constant(CtxA, occ(1, H1), Value::ofInt(100), "c100");
  B.rule(CtxA, occ(1, H2), {occ(1, S1)}, "inc", inc);
  B.copy(CtxA, occ(0, WOut), occ(1, S2));

  ProdId CtxB = B.production("CtxB", W, {X});
  B.constant(CtxB, occ(1, H2), Value::ofInt(200), "c200");
  B.rule(CtxB, occ(1, H1), {occ(1, S2)}, "inc", inc);
  B.copy(CtxB, occ(0, WOut), occ(1, S1));

  ProdId Leaf = B.production("LeafX", X, {});
  B.rule(Leaf, occ(0, S1), {occ(0, H1)}, "inc", inc);
  B.rule(Leaf, occ(0, S2), {occ(0, H2)}, "inc", inc);

  B.setStart(Root);
  return B.finalize(Diags);
}

/// Builds one "sibling conflict" production Name : Root -> X X between the
/// attribute pairs (HA, SA) and (HB, SB): the left son's SA output feeds the
/// right son's HA input, while the right son's SB output feeds back into the
/// left son's HB input. Both pairs grouped into one visit deadlocks; any
/// partition that splits pair A from pair B (in either order) works.
static void siblingConflict(GrammarBuilder &B, const std::string &Name,
                            PhylumId Root, PhylumId X, AttrId Out, AttrId HA,
                            AttrId SA, AttrId HB, AttrId SB) {
  auto inc = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + 1);
  };
  ProdId P = B.production(Name, Root, {X, X});
  B.constant(P, occ(1, HA), Value::ofInt(10), "c10");
  B.rule(P, occ(2, HA), {occ(1, SA)}, "inc", inc);
  B.constant(P, occ(2, HB), Value::ofInt(20), "c20");
  B.rule(P, occ(1, HB), {occ(2, SB)}, "inc", inc);
  B.rule(P, occ(0, Out), {occ(1, SB), occ(2, SA)}, "add",
         [](std::span<const Value> A) {
           return Value::ofInt(A[0].asInt() + A[1].asInt());
         });
}

/// Adds a constant-zero rule for every child inherited occurrence that no
/// explicit rule defines (the sibling-conflict builders only wire the pairs
/// they are about).
static void fillMissingChildInherited(GrammarBuilder &B) {
  AttributeGrammar &AG = B.grammar();
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    unsigned Arity = AG.prod(P).arity();
    for (unsigned C = 0; C != Arity; ++C) {
      PhylumId Child = AG.prod(P).Rhs[C];
      for (AttrId A : AG.Phyla[Child].Attrs) {
        if (!AG.attr(A).isInherited())
          continue;
        AttrOcc O = occ(C + 1, A);
        bool Defined = false;
        for (RuleId R : AG.Prods[P].Rules)
          if (AG.rule(R).Target == O)
            Defined = true;
        if (!Defined)
          B.constant(P, O, Value::ofInt(0), "zero");
      }
    }
  }
}

AttributeGrammar workloads::dncNotOagGrammar(DiagnosticEngine &Diags) {
  // Three independent attribute pairs on X and a triangle of sibling
  // conflicts between them: every pairwise grouping deadlocks some
  // production, so Kastens' grouped peel fails and each OAG repair round
  // can split only one pairing — the grammar is beyond OAG(0) and OAG(1)
  // (it lands in OAG(k) only for larger repair budgets). The DNC selectors
  // keep the sons' contexts apart, so the class row is "DNC", like the
  // paper's AG 5 under the default OAG(0) test.
  GrammarBuilder B("dnc-not-oag");
  PhylumId Root = B.phylum("Root");
  PhylumId X = B.phylum("X");
  AttrId Out = B.synthesized(Root, "out", "int");
  AttrId H1 = B.inherited(X, "h1", "int");
  AttrId H2 = B.inherited(X, "h2", "int");
  AttrId H3 = B.inherited(X, "h3", "int");
  AttrId S1 = B.synthesized(X, "s1", "int");
  AttrId S2 = B.synthesized(X, "s2", "int");
  AttrId S3 = B.synthesized(X, "s3", "int");

  siblingConflict(B, "Conflict12", Root, X, Out, H1, S1, H2, S2);
  siblingConflict(B, "Conflict23", Root, X, Out, H2, S2, H3, S3);
  siblingConflict(B, "Conflict31", Root, X, Out, H3, S3, H1, S1);

  auto inc = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + 1);
  };
  ProdId Leaf = B.production("LeafX", X, {});
  B.rule(Leaf, occ(0, S1), {occ(0, H1)}, "inc", inc);
  B.rule(Leaf, occ(0, S2), {occ(0, H2)}, "inc", inc);
  B.rule(Leaf, occ(0, S3), {occ(0, H3)}, "inc", inc);

  fillMissingChildInherited(B);
  B.setStart(Root);
  return B.finalize(Diags);
}

AttributeGrammar workloads::oag1Grammar(DiagnosticEngine &Diags) {
  // One sibling conflict between two independent pairs of X: the grouped
  // peel [h1 h2 | s1 s2] deadlocks the Conflict production (Kastens' EDP is
  // cyclic), so the grammar is not OAG(0); a single repair round splits the
  // partition into [h2 | s2 | h1 | s1] and every completed graph becomes
  // acyclic: OAG(1). This plays the role of the paper's AG 7, which was
  // found to be OAG(1) by trial and error.
  GrammarBuilder B("oag1");
  PhylumId Root = B.phylum("Root");
  PhylumId X = B.phylum("X");
  AttrId Out = B.synthesized(Root, "out", "int");
  AttrId H1 = B.inherited(X, "h1", "int");
  AttrId H2 = B.inherited(X, "h2", "int");
  AttrId S1 = B.synthesized(X, "s1", "int");
  AttrId S2 = B.synthesized(X, "s2", "int");

  siblingConflict(B, "Conflict", Root, X, Out, H1, S1, H2, S2);

  auto inc = [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + 1);
  };
  ProdId Leaf = B.production("LeafX", X, {});
  B.rule(Leaf, occ(0, S1), {occ(0, H1)}, "inc", inc);
  B.rule(Leaf, occ(0, S2), {occ(0, H2)}, "inc", inc);

  B.setStart(Root);
  return B.finalize(Diags);
}
