//===- workloads/EditScriptGen.cpp ----------------------------------------===//

#include "workloads/EditScriptGen.h"

#include "support/Diagnostics.h"

using namespace fnc2;

EditScriptGen::EditScriptGen(const AttributeGrammar &AG,
                             EditScriptOptions Opts)
    : AG(AG), Opts(Opts), State(Opts.Seed ? Opts.Seed : 0x9e3779b97f4a7c15ULL),
      Gen(AG, Opts.Seed ^ 0xA5A5A5A5A5A5A5A5ULL) {
  SwapAlts.resize(AG.numProds());
  for (ProdId A = 0; A != AG.numProds(); ++A)
    for (ProdId B = 0; B != AG.numProds(); ++B)
      if (swapCompatible(AG, A, B))
        SwapAlts[A].push_back(B);
}

uint64_t EditScriptGen::nextRand() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1DULL;
}

EditOp EditScriptGen::next(Tree &T) {
  // One iterative postorder pass: subtree sizes plus the candidate victim
  // lists of every edit kind. Walk order is deterministic, so candidate
  // indices (and therefore the whole script) depend only on the seed.
  std::vector<std::pair<TreeNode *, unsigned>> Work = {{T.root(), 0u}};
  std::vector<TreeNode *> Replaceable, Leaves, Swappable;
  std::unordered_map<const TreeNode *, unsigned> Size;
  while (!Work.empty()) {
    auto &[N, Next] = Work.back();
    if (Next < N->arity()) {
      Work.emplace_back(N->child(Next++), 0u);
      continue;
    }
    unsigned S = 1;
    for (unsigned I = 0; I != N->arity(); ++I)
      S += Size[N->child(I)];
    Size[N] = S;
    if (N->Parent && S <= Opts.MaxVictimSize)
      Replaceable.push_back(N);
    if (AG.prod(N->Prod).HasLexeme)
      Leaves.push_back(N);
    if (!SwapAlts[N->Prod].empty())
      Swappable.push_back(N);
    Work.pop_back();
  }

  // Weighted kind choice among the kinds that actually have candidates.
  unsigned WR = Replaceable.empty() ? 0 : Opts.ReplaceWeight;
  unsigned WL = Leaves.empty() ? 0 : Opts.LeafWeight;
  unsigned WS = Swappable.empty() ? 0 : Opts.SwapWeight;
  assert(WR + WL + WS != 0 && "tree admits no edits at all");
  uint64_t Pick = nextRand() % (WR + WL + WS);

  if (Pick < WR) {
    TreeNode *Victim = Replaceable[nextRand() % Replaceable.size()];
    // Grow a fresh local replacement of the same phylum, sized like the
    // victim give or take (1..MaxVictimSize keeps the edit region bounded).
    unsigned Budget = 1 + unsigned(nextRand() % Opts.MaxVictimSize);
    std::unique_ptr<TreeNode> Replacement =
        Gen.generateNode(T, AG.prod(Victim->Prod).Lhs, Budget);
    return EditLog::makeReplace(AG, Victim, Replacement.get());
  }
  if (Pick < WR + WL) {
    TreeNode *Victim = Leaves[nextRand() % Leaves.size()];
    Value NewLexeme;
    if (AG.prod(Victim->Prod).StringLexeme) {
      // Same identifier pool as TreeGenerator, so edited trees stay in
      // the workloads' name distribution.
      static const char *const Names[] = {"a", "b", "c", "d", "e",
                                          "f", "g", "h", "i", "j"};
      NewLexeme = Value::ofString(Names[nextRand() % 10]);
    } else {
      NewLexeme = Value::ofInt(static_cast<int64_t>(nextRand() % 1000));
    }
    return EditLog::makeLeafChange(Victim, std::move(NewLexeme));
  }
  TreeNode *Victim = Swappable[nextRand() % Swappable.size()];
  const std::vector<ProdId> &Alts = SwapAlts[Victim->Prod];
  return EditLog::makeSwap(Victim, Alts[nextRand() % Alts.size()]);
}

EditLog EditScriptGen::generate(Tree &T, unsigned NumEdits) {
  EditLog Log;
  DiagnosticEngine Diags;
  for (unsigned I = 0; I != NumEdits; ++I) {
    size_t Idx = Log.append(next(T));
    bool Ok = Log.apply(Idx, T, nullptr, Diags);
    (void)Ok;
    assert(Ok && "generated op failed to apply structurally");
  }
  return Log;
}
