//===- workloads/SpecGen.h - Synthetic molga specifications -----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generation of well-typed molga sources. The paper's
/// evaluation runs the system on its own bootstrapped sources (Tables 1-3);
/// those no longer exist, so this generator synthesizes specifications with
/// controlled size (line count, phylum/operator/attribute counts) and
/// controlled AG class: the grammar skeleton is OAG(0) by construction, and
/// the Shape option injects the sibling-conflict patterns that demote the
/// class to OAG(1) or DNC (see workloads/ClassicGrammars.h).
///
/// systemAgSuite() instantiates the seven analogues of the paper's AGs 1-7:
/// module-dependency construction (mkfnc2), asx well-definedness, tree-
/// constructor translation and typing (aic), molga type-checking (the
/// largest, class DNC), the tail-recursion test, and the C translation of
/// non-AG parts (class OAG(1), "found by trial and error").
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_WORKLOADS_SPECGEN_H
#define FNC2_WORKLOADS_SPECGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace fnc2::workloads {

struct SpecGenOptions {
  std::string Name = "Gen";
  unsigned Phyla = 8;            ///< Nonterminals besides the root.
  unsigned OperatorsPerPhylum = 3;
  unsigned AttrPairs = 1;        ///< Inherited/synthesized pairs per phylum.
  unsigned Funs = 6;             ///< Library functions in the module.
  enum class Shape : uint8_t { Oag0, Oag1, Dnc } ClassShape = Shape::Oag0;
  uint64_t Seed = 1;
};

/// Generates a self-contained compilation unit (one module + one grammar).
std::string generateMolgaSpec(const SpecGenOptions &Opts);

/// Generates a pure module (Table 3's C/F rows) with \p Funs functions of
/// mixed shapes (arithmetic, conditionals, matches, recursion).
std::string generateMolgaModule(const std::string &Name, unsigned Funs,
                                uint64_t Seed);

/// One of the seven system-AG analogues.
struct SystemAg {
  std::string Name;     ///< e.g. "AG1-moddep".
  std::string Role;     ///< What the paper's AG did.
  std::string Source;   ///< molga text.
  unsigned OagK = 0;    ///< Repair budget the generator should use.
};

/// The Table 1 workload suite (AG1..AG7).
std::vector<SystemAg> systemAgSuite();

} // namespace fnc2::workloads

#endif // FNC2_WORKLOADS_SPECGEN_H
