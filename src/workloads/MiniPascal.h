//===- workloads/MiniPascal.h - Pascal-to-P-code workload -------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compiler from a Pascal-like language to P-code, specified as an
/// attribute grammar — the paper's flagship external application ("a
/// compiler from full ISO Pascal to P-code") scaled to a representative
/// subset: declarations with redeclaration checking, typed expressions,
/// assignments, conditionals and loops with label threading (an inherited/
/// synthesized counter pair), and code emission as string lists.
///
/// A hand-written recursive compiler over the same trees accompanies the AG
/// so the benches can reproduce section 4.2's generated-vs-hand-written
/// comparison; both must produce identical code.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_WORKLOADS_MINIPASCAL_H
#define FNC2_WORKLOADS_MINIPASCAL_H

#include "grammar/AttributeGrammar.h"
#include "tree/Tree.h"

namespace fnc2::workloads {

/// Builds the mini-Pascal attribute grammar (start phylum "Prog";
/// synthesized "code" — a list of P-code instruction strings — and "errs",
/// the static-error count).
AttributeGrammar miniPascal(DiagnosticEngine &Diags);

/// Result of compiling a mini-Pascal tree.
struct PCodeResult {
  std::vector<std::string> Code;
  int64_t Errors = 0;
};

/// The hand-written equivalent of the AG: one recursive pass for
/// declarations, one for statements. Used as the baseline of the
/// generated-vs-hand-written bench.
PCodeResult compileMiniPascalByHand(const AttributeGrammar &AG,
                                    const TreeNode *Root);

/// The same hand-written compiler but over the *same basic data structures*
/// as the semantic rules (persistent Value lists and maps) — the paper's
/// stated comparison basis for evaluator efficiency. Produces identical
/// code to the other two.
PCodeResult compileMiniPascalByHandSameData(const AttributeGrammar &AG,
                                            const TreeNode *Root);

/// Extracts the PCodeResult from an evaluated tree (root attrs).
PCodeResult pcodeFromTree(const AttributeGrammar &AG, const Tree &T);

/// Parses mini-Pascal source text into a tree over \p AG. Syntax:
///
///   var x: int; var f: bool;
///   begin
///     x := 1 + 2;
///     if x < 10 then begin write x; end else begin x := 0; end;
///     while x < 5 do begin x := x + 1; end;
///   end
///
Tree parseMiniPascal(const AttributeGrammar &AG, const std::string &Source,
                     DiagnosticEngine &Diags);

/// Generates a random well-formed mini-Pascal source of roughly
/// \p TargetStatements statements (deterministic in the seed).
std::string generateMiniPascalSource(unsigned TargetStatements,
                                     uint64_t Seed);

} // namespace fnc2::workloads

#endif // FNC2_WORKLOADS_MINIPASCAL_H
