//===- workloads/EditScriptGen.h - Random edit-session generator *- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generation of long editor-style sessions over any grammar: a
/// stream of EditOps (subtree replacements, in-place leaf value changes,
/// production swaps) each built against the tree state its predecessors
/// produced, exactly as EditLog replay expects. Fully deterministic in the
/// seed — the same seed over the same starting tree yields a byte-identical
/// log, which the determinism test and the golden corpus pin.
///
/// Edits are local by construction (replaced subtrees are bounded by
/// MaxVictimSize), so a session's affected regions stay small relative to
/// the tree and the proportional-work assertions have teeth at 100k nodes.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_WORKLOADS_EDITSCRIPTGEN_H
#define FNC2_WORKLOADS_EDITSCRIPTGEN_H

#include "incremental/EditLog.h"
#include "tree/TreeGen.h"

namespace fnc2 {

struct EditScriptOptions {
  uint64_t Seed = 1;
  /// Upper bound on the node count of a replaced subtree and of the
  /// replacement grown for it — the knob that keeps edits local.
  unsigned MaxVictimSize = 24;
  /// Relative frequencies of the three edit kinds (a kind with no
  /// candidates in the current tree cedes its turns to the others).
  unsigned ReplaceWeight = 6;
  unsigned LeafWeight = 3;
  unsigned SwapWeight = 1;
};

/// Generates randomized edit scripts; one instance drives one session.
class EditScriptGen {
public:
  explicit EditScriptGen(const AttributeGrammar &AG,
                         EditScriptOptions Opts = {});

  /// Builds the next op against the current state of \p T without applying
  /// it (replacement subtrees are grown in \p T's arena and then encoded
  /// into the op, not attached).
  EditOp next(Tree &T);

  /// Generates \p NumEdits ops, applying each structurally to \p T as it
  /// goes (no attribution), and returns the log. \p T afterwards is the
  /// final tree of the session — the state a replay from the original tree
  /// must reproduce.
  EditLog generate(Tree &T, unsigned NumEdits);

private:
  uint64_t nextRand();

  const AttributeGrammar &AG;
  EditScriptOptions Opts;
  uint64_t State;
  TreeGenerator Gen;
  /// Per production: the distinct productions a ProductionSwap may
  /// exchange it for (same LHS, RHS and lexeme shape).
  std::vector<std::vector<ProdId>> SwapAlts;
};

} // namespace fnc2

#endif // FNC2_WORKLOADS_EDITSCRIPTGEN_H
