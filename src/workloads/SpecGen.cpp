//===- workloads/SpecGen.cpp ----------------------------------------------===//

#include "workloads/SpecGen.h"

using namespace fnc2;
using namespace fnc2::workloads;

namespace {

/// Small deterministic PRNG (xorshift64*).
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 1) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545F4914F6CDD1DULL;
  }
  unsigned below(unsigned N) { return static_cast<unsigned>(next() % N); }

private:
  uint64_t State;
};

} // namespace

std::string workloads::generateMolgaModule(const std::string &Name,
                                           unsigned Funs, uint64_t Seed) {
  Rng R(Seed);
  std::string Out = "-- generated module (" + std::to_string(Funs) +
                    " functions, seed " + std::to_string(Seed) + ")\n";
  Out += "module " + Name + "\n";
  Out += "  const base_" + Name + " : int = " + std::to_string(R.below(97)) +
         "\n";
  for (unsigned I = 0; I != Funs; ++I) {
    std::string F = Name + "_f" + std::to_string(I);
    switch (I % 5) {
    case 0:
      Out += "  fun " + F + "(x: int): int = x * " +
             std::to_string(1 + R.below(9)) + " + " +
             std::to_string(R.below(50)) + "\n";
      break;
    case 1:
      Out += "  fun " + F + "(x: int, y: int): int = if x < y then x + " +
             std::to_string(R.below(10)) + " else y - " +
             std::to_string(R.below(10)) + "\n";
      break;
    case 2:
      Out += "  fun " + F + "(n: int): int = match n % 4 with\n";
      Out += "    | 0 -> n + " + std::to_string(R.below(20)) + "\n";
      Out += "    | 1 -> n * 2\n";
      Out += "    | 2 -> " + std::to_string(R.below(100)) + "\n";
      Out += "    | _ -> n\n    end\n";
      break;
    case 3:
      // Tail-recursive accumulator loop.
      Out += "  fun " + F + "(n: int, acc: int): int =\n";
      Out += "    if n <= 0 then acc else " + F + "(n - 1, acc + n)\n";
      break;
    case 4:
      // Calls an earlier function for inter-procedural typing work.
      if (I >= 5) {
        Out += "  fun " + F + "(x: int): int = " + Name + "_f" +
               std::to_string(I - 5) + "(x) + base_" + Name + "\n";
      } else {
        Out += "  fun " + F + "(x: int): int = max(x, base_" + Name + ")\n";
      }
      break;
    }
  }
  Out += "end\n";
  return Out;
}

std::string workloads::generateMolgaSpec(const SpecGenOptions &Opts) {
  Rng R(Opts.Seed);
  unsigned Pairs = Opts.AttrPairs;
  if (Opts.ClassShape == SpecGenOptions::Shape::Oag1 && Pairs < 2)
    Pairs = 2;
  if (Opts.ClassShape == SpecGenOptions::Shape::Dnc && Pairs < 3)
    Pairs = 3;

  std::string Lib = Opts.Name + "Lib";
  std::string Out = generateMolgaModule(Lib, Opts.Funs, Opts.Seed ^ 0x5bd1);
  Out += "\n";
  Out += "grammar " + Opts.Name + "\n";
  Out += "  import " + Lib + "\n";
  Out += "  phylum Root root\n";
  for (unsigned P = 1; P <= Opts.Phyla; ++P)
    Out += "  phylum P" + std::to_string(P) + "\n";
  Out += "  attr Root syn out : int\n";
  for (unsigned P = 1; P <= Opts.Phyla; ++P)
    for (unsigned K = 1; K <= Pairs; ++K) {
      Out += "  attr P" + std::to_string(P) + " inh h" + std::to_string(K) +
             " : int\n";
      Out += "  attr P" + std::to_string(P) + " syn s" + std::to_string(K) +
             " : int\n";
    }

  // Root operator: seed every inherited attribute, collect s1.
  Out += "  operator Top(c: P1) -> Root\n";
  Out += "  rules for Top\n";
  for (unsigned K = 1; K <= Pairs; ++K)
    Out += "    c.h" + std::to_string(K) + " := " + std::to_string(K) + "\n";
  Out += "    Root.out := c.s1\n";
  Out += "  end\n";

  // Class-shape injection: sibling conflicts on the root over a dedicated
  // phylum CX that only has a leaf operator, so the repair that splits its
  // partition does not cascade into the main phyla (mirroring the classic
  // grammars of workloads/ClassicGrammars.h).
  if (Opts.ClassShape != SpecGenOptions::Shape::Oag0) {
    Out += "  phylum CX\n";
    for (unsigned K = 1; K <= Pairs; ++K) {
      Out += "  attr CX inh ch" + std::to_string(K) + " : int\n";
      Out += "  attr CX syn cs" + std::to_string(K) + " : int\n";
    }
    Out += "  operator LeafCX() -> CX\n";
    Out += "  rules for LeafCX\n";
    for (unsigned K = 1; K <= Pairs; ++K)
      Out += "    CX.cs" + std::to_string(K) + " := CX.ch" +
             std::to_string(K) + " + 1\n";
    Out += "  end\n";

    auto conflict = [&](const std::string &OpName, unsigned A, unsigned B) {
      Out += "  operator " + OpName + "(a: CX, b: CX) -> Root\n";
      Out += "  rules for " + OpName + "\n";
      Out += "    a.ch" + std::to_string(A) + " := 10\n";
      Out += "    b.ch" + std::to_string(A) + " := " + Lib + "_f0(a.cs" +
             std::to_string(A) + ")\n";
      Out += "    b.ch" + std::to_string(B) + " := 20\n";
      Out += "    a.ch" + std::to_string(B) + " := " + Lib + "_f0(b.cs" +
             std::to_string(B) + ")\n";
      for (unsigned K = 1; K <= Pairs; ++K)
        if (K != A && K != B) {
          Out += "    a.ch" + std::to_string(K) + " := 0\n";
          Out += "    b.ch" + std::to_string(K) + " := 0\n";
        }
      Out += "    Root.out := a.cs" + std::to_string(B) + " + b.cs" +
             std::to_string(A) + "\n";
      Out += "  end\n";
    };
    if (Opts.ClassShape == SpecGenOptions::Shape::Oag1) {
      conflict("Conflict12", 1, 2);
    } else {
      conflict("Conflict12", 1, 2);
      conflict("Conflict23", 2, 3);
      conflict("Conflict31", 3, 1);
    }
  }

  // Per phylum: one leaf plus internal operators; inherited attributes
  // broadcast via automatic copy rules, synthesized ones combine the sons.
  for (unsigned P = 1; P <= Opts.Phyla; ++P) {
    std::string Py = "P" + std::to_string(P);
    Out += "  operator Leaf" + std::to_string(P) + "() -> " + Py +
           " lexeme int\n";
    Out += "  rules for Leaf" + std::to_string(P) + "\n";
    for (unsigned K = 1; K <= Pairs; ++K) {
      // Only the 1-argument library shapes (templates 0 and 2) are safe to
      // call here.
      unsigned FnIdx = (Opts.Funs >= 3 && R.below(2) == 1) ? 2 : 0;
      Out += "    " + Py + ".s" + std::to_string(K) + " := " + Lib + "_f" +
             std::to_string(FnIdx) + "(" + Py + ".h" + std::to_string(K) +
             ") + lexeme\n";
    }
    Out += "  end\n";

    for (unsigned O = 1; O < Opts.OperatorsPerPhylum; ++O) {
      unsigned Arity = 1 + R.below(2);
      std::string OpName = "Op" + std::to_string(P) + "_" + std::to_string(O);
      Out += "  operator " + OpName + "(";
      std::vector<unsigned> Kids;
      for (unsigned C = 0; C != Arity; ++C) {
        unsigned Child = 1 + R.below(Opts.Phyla);
        Kids.push_back(Child);
        if (C)
          Out += ", ";
        Out += "k" + std::to_string(C) + ": P" + std::to_string(Child);
      }
      Out += ") -> " + Py + "\n";
      Out += "  rules for " + OpName + "\n";
      for (unsigned K = 1; K <= Pairs; ++K) {
        // Synthesized: combine the sons' pair-K results with our own input.
        Out += "    " + Py + ".s" + std::to_string(K) + " := (";
        for (unsigned C = 0; C != Arity; ++C) {
          if (C)
            Out += " + ";
          Out += "k" + std::to_string(C) + ".s" + std::to_string(K);
        }
        Out += ") % 1000003 + " + Py + ".h" + std::to_string(K) + "\n";
      }
      Out += "  end\n";
    }
  }
  Out += "end\n";
  return Out;
}

std::vector<SystemAg> workloads::systemAgSuite() {
  std::vector<SystemAg> Suite;
  auto add = [&](const char *Name, const char *Role, SpecGenOptions Opts,
                 unsigned OagK) {
    SystemAg Ag;
    Ag.Name = Name;
    Ag.Role = Role;
    Opts.Name = std::string(Name).substr(0, 3) + "g"; // short grammar name
    // Make the grammar name a legal identifier distinct per AG.
    Opts.Name = "G";
    Opts.Name += Name[2];
    Ag.Source = generateMolgaSpec(Opts);
    Ag.OagK = OagK;
    Suite.push_back(std::move(Ag));
  };

  SpecGenOptions O;

  O = SpecGenOptions();
  O.Phyla = 7;
  O.OperatorsPerPhylum = 3;
  O.AttrPairs = 1;
  O.Funs = 5;
  O.Seed = 101;
  add("AG1", "module dependency graph construction (mkfnc2)", O, 0);

  O = SpecGenOptions();
  O.Phyla = 12;
  O.OperatorsPerPhylum = 3;
  O.AttrPairs = 2;
  O.Funs = 6;
  O.Seed = 202;
  add("AG2", "well-definedness test of an asx specification", O, 0);

  O = SpecGenOptions();
  O.Phyla = 18;
  O.OperatorsPerPhylum = 4;
  O.AttrPairs = 2;
  O.Funs = 8;
  O.Seed = 303;
  add("AG3", "translation to C of the tree-construction part of aic", O, 0);

  O = SpecGenOptions();
  O.Phyla = 22;
  O.OperatorsPerPhylum = 4;
  O.AttrPairs = 2;
  O.Funs = 10;
  O.Seed = 404;
  add("AG4", "type-checking of the tree-construction part of aic", O, 0);

  O = SpecGenOptions();
  O.Phyla = 60;
  O.OperatorsPerPhylum = 5;
  O.AttrPairs = 3;
  O.Funs = 16;
  O.ClassShape = SpecGenOptions::Shape::Dnc;
  O.Seed = 505;
  add("AG5", "type-checking and well-definedness of molga (largest)", O, 0);

  O = SpecGenOptions();
  O.Phyla = 12;
  O.OperatorsPerPhylum = 4;
  O.AttrPairs = 1;
  O.Funs = 10;
  O.Seed = 606;
  add("AG6", "tail-recursion test for molga functions", O, 0);

  O = SpecGenOptions();
  O.Phyla = 26;
  O.OperatorsPerPhylum = 4;
  O.AttrPairs = 2;
  O.Funs = 12;
  O.ClassShape = SpecGenOptions::Shape::Oag1;
  O.Seed = 707;
  add("AG7", "translation to C of the non-AG parts of molga", O, 1);

  return Suite;
}
