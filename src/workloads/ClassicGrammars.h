//===- workloads/ClassicGrammars.h - Canonical test grammars ----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, fully-executable attribute grammars with known classes, used by
/// the unit tests, the examples and the benches:
///
///  * deskCalculator  — let-expressions over integer arithmetic with
///                      environment maps; OAG(0), one visit per phylum.
///  * binaryNumbers   — Knuth's seminal example [34] with the fractional
///                      part, which makes the scale of the fraction list
///                      depend on its own length: two visits.
///  * repmin          — the classic two-pass min-broadcast grammar.
///  * circularGrammar — genuinely circular: rejected by the SNC test.
///  * twoContextGrammar — SNC but not DNC: two contexts demand opposite
///                      evaluation orders, so the phylum needs two
///                      totally-ordered partitions (exercises the
///                      partition-carrying VISIT mechanism).
///  * dncNotOagGrammar — DNC but well beyond OAG(0): a triangle of sibling
///                      conflicts between three independent attribute pairs
///                      of one phylum. Kastens' grouped partition deadlocks
///                      every conflict production; each repair round can
///                      split only one pairing. Plays the paper's AG 5
///                      (class row "DNC" under the default OAG(0) test).
///  * oag1Grammar     — not OAG(0) but OAG(1): a single sibling conflict;
///                      one repair round splits the grouped partition (the
///                      paper's AG 7, found OAG(1) by trial and error).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_WORKLOADS_CLASSICGRAMMARS_H
#define FNC2_WORKLOADS_CLASSICGRAMMARS_H

#include "grammar/AttributeGrammar.h"

namespace fnc2::workloads {

AttributeGrammar deskCalculator(DiagnosticEngine &Diags);
AttributeGrammar binaryNumbers(DiagnosticEngine &Diags);
AttributeGrammar repmin(DiagnosticEngine &Diags);
AttributeGrammar circularGrammar(DiagnosticEngine &Diags);
AttributeGrammar twoContextGrammar(DiagnosticEngine &Diags);
AttributeGrammar dncNotOagGrammar(DiagnosticEngine &Diags);
AttributeGrammar oag1Grammar(DiagnosticEngine &Diags);

} // namespace fnc2::workloads

#endif // FNC2_WORKLOADS_CLASSICGRAMMARS_H
