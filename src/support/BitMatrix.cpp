//===- support/BitMatrix.cpp ----------------------------------------------===//

#include "support/BitMatrix.h"

#include <bit>

using namespace fnc2;

/// Shared core of the two span-OR entry points: applies the source span to
/// the destination row word by word, calling \p OnNew(Word, NewBits) for
/// every destination word that gained bits.
template <typename OnNewFn>
static bool orRowSpanImpl(BitMatrix &M, unsigned Dst, unsigned DstCol,
                          const BitMatrix &Other, unsigned Src,
                          unsigned SrcCol, unsigned Len, unsigned Skip,
                          OnNewFn &&OnNew) {
  if (Len == 0)
    return false;
  bool Changed = false;
  unsigned FirstW = DstCol / 64, LastW = (DstCol + Len - 1) / 64;
  for (unsigned W = FirstW; W <= LastW; ++W) {
    // Destination bits of word W covered by the span.
    unsigned Lo = W == FirstW ? DstCol : W * 64;
    unsigned Hi = W == LastW ? DstCol + Len : (W + 1) * 64;
    uint64_t Bits = Other.extractBits(Src, SrcCol + (Lo - DstCol), Hi - Lo)
                    << (Lo - W * 64);
    if (Skip != BitMatrix::NoSkip) {
      unsigned SkipAbs = DstCol + Skip;
      if (SkipAbs >= W * 64 && SkipAbs < (W + 1) * 64)
        Bits &= ~(uint64_t(1) << (SkipAbs % 64));
    }
    uint64_t New = Bits & ~M.rowWord(Dst, W);
    if (New != 0) {
      M.rowWord(Dst, W) |= New;
      Changed = true;
      OnNew(W, New);
    }
  }
  return Changed;
}

bool BitMatrix::orRowSpan(unsigned Dst, unsigned DstCol,
                          const BitMatrix &Other, unsigned Src,
                          unsigned SrcCol, unsigned Len, unsigned Skip) {
  assert(Dst < NumRows && DstCol + Len <= NumCols && "dst span out of range");
  return orRowSpanImpl(*this, Dst, DstCol, Other, Src, SrcCol, Len, Skip,
                       [](unsigned, uint64_t) {});
}

bool BitMatrix::orRowSpanCollect(unsigned Dst, unsigned DstCol,
                                 const BitMatrix &Other, unsigned Src,
                                 unsigned SrcCol, unsigned Len,
                                 std::vector<unsigned> &NewCols,
                                 unsigned Skip) {
  assert(Dst < NumRows && DstCol + Len <= NumCols && "dst span out of range");
  return orRowSpanImpl(*this, Dst, DstCol, Other, Src, SrcCol, Len, Skip,
                       [&](unsigned W, uint64_t New) {
                         while (New != 0) {
                           unsigned B = std::countr_zero(New);
                           NewCols.push_back(W * 64 + B);
                           New &= New - 1;
                         }
                       });
}

void BitMatrix::closeWithEdge(unsigned From, unsigned To) {
  assert(NumRows == NumCols && "closure needs a square matrix");
  if (test(From, To))
    return;
  // Every row that reaches From (plus From itself) now reaches To and
  // everything To reaches. Row To may itself grow mid-loop when the new
  // edge closes a cycle; absorbing the grown row is still within the
  // closure, and the To column bit is set unconditionally.
  for (unsigned I = 0; I != NumRows; ++I)
    if (I == From || test(I, From)) {
      orRow(I, *this, To);
      set(I, To);
    }
}

void BitMatrix::transitiveClosure() {
  assert(NumRows == NumCols && "closure needs a square matrix");
  // Warshall's algorithm with word-parallel row union: if (I, K) is set,
  // row I absorbs row K.
  for (unsigned K = 0; K != NumRows; ++K)
    for (unsigned I = 0; I != NumRows; ++I)
      if (test(I, K))
        orRow(I, *this, K);
}

bool BitMatrix::hasReflexiveBit() const {
  assert(NumRows == NumCols && "diagonal needs a square matrix");
  for (unsigned I = 0; I != NumRows; ++I)
    if (test(I, I))
      return true;
  return false;
}

unsigned BitMatrix::count() const {
  unsigned N = 0;
  for (uint64_t W : Words)
    N += std::popcount(W);
  return N;
}
