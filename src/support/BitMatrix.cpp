//===- support/BitMatrix.cpp ----------------------------------------------===//

#include "support/BitMatrix.h"

#include <bit>

using namespace fnc2;

void BitMatrix::transitiveClosure() {
  assert(NumRows == NumCols && "closure needs a square matrix");
  // Warshall's algorithm with word-parallel row union: if (I, K) is set,
  // row I absorbs row K.
  for (unsigned K = 0; K != NumRows; ++K)
    for (unsigned I = 0; I != NumRows; ++I)
      if (test(I, K))
        orRow(I, *this, K);
}

bool BitMatrix::hasReflexiveBit() const {
  assert(NumRows == NumCols && "diagonal needs a square matrix");
  for (unsigned I = 0; I != NumRows; ++I)
    if (test(I, I))
      return true;
  return false;
}

unsigned BitMatrix::count() const {
  unsigned N = 0;
  for (uint64_t W : Words)
    N += std::popcount(W);
  return N;
}
