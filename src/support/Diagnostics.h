//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection shared by the molga front-end, the AG well-formedness
/// checks and the evaluator generator. Library code never throws: fallible
/// entry points take a DiagnosticEngine and report through it.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_DIAGNOSTICS_H
#define FNC2_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace fnc2 {

/// A position in some source text; Line/Column are 1-based, 0 means unknown.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

enum class DiagSeverity : uint8_t { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics; owned by the driver, passed by reference into
/// every fallible analysis.
class DiagnosticEngine {
public:
  void error(const std::string &Message, SourceLoc Loc = {}) {
    Diags.push_back({DiagSeverity::Error, Loc, Message});
    ++NumErrors;
  }
  void warning(const std::string &Message, SourceLoc Loc = {}) {
    Diags.push_back({DiagSeverity::Warning, Loc, Message});
  }
  void note(const std::string &Message, SourceLoc Loc = {}) {
    Diags.push_back({DiagSeverity::Note, Loc, Message});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Concatenates all diagnostics, one per line (handy in test failures).
  std::string dump() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_DIAGNOSTICS_H
