//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic collection shared by the molga front-end, the AG well-formedness
/// checks and the evaluator generator. Library code never throws: fallible
/// entry points take a DiagnosticEngine and report through it.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_DIAGNOSTICS_H
#define FNC2_SUPPORT_DIAGNOSTICS_H

#include <mutex>
#include <string>
#include <vector>

namespace fnc2 {

/// A position in some source text; Line/Column are 1-based, 0 means unknown.
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

enum class DiagSeverity : uint8_t { Note, Warning, Error };

/// One reported problem.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics; owned by the driver, passed by reference into
/// every fallible analysis.
///
/// Reporting is internally synchronized: semantic functions lowered from
/// molga capture a *shared* runtime engine inside the evaluation plan, so
/// when the batch engine evaluates trees of one plan on several threads,
/// concurrent error() calls must not race. Snapshot readers (dump(),
/// hasErrors(), errorCount()) take the same lock; diagnostics() returns a
/// reference and is only safe once reporting has quiesced (after a batch
/// join or on a single thread).
class DiagnosticEngine {
public:
  void error(const std::string &Message, SourceLoc Loc = {}) {
    std::lock_guard<std::mutex> Lock(Mu);
    Diags.push_back({DiagSeverity::Error, Loc, Message});
    ++NumErrors;
  }
  void warning(const std::string &Message, SourceLoc Loc = {}) {
    std::lock_guard<std::mutex> Lock(Mu);
    Diags.push_back({DiagSeverity::Warning, Loc, Message});
  }
  void note(const std::string &Message, SourceLoc Loc = {}) {
    std::lock_guard<std::mutex> Lock(Mu);
    Diags.push_back({DiagSeverity::Note, Loc, Message});
  }

  bool hasErrors() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return NumErrors != 0;
  }
  unsigned errorCount() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return NumErrors;
  }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Concatenates all diagnostics, one per line (handy in test failures).
  std::string dump() const;

  void clear() {
    std::lock_guard<std::mutex> Lock(Mu);
    Diags.clear();
    NumErrors = 0;
  }

private:
  mutable std::mutex Mu;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_DIAGNOSTICS_H
