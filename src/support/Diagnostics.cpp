//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace fnc2;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Column);
}

std::string Diagnostic::str() const {
  const char *Tag = Severity == DiagSeverity::Error     ? "error"
                    : Severity == DiagSeverity::Warning ? "warning"
                                                        : "note";
  std::string Out;
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Tag;
  Out += ": ";
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::dump() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
