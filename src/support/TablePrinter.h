//===- support/TablePrinter.h - Aligned text tables -------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formats rows of strings into an aligned plain-text table. The benches use
/// it to print the paper's Tables 1-4 with our measured values.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_TABLEPRINTER_H
#define FNC2_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace fnc2 {

/// Column-aligned table with a header row; render with str().
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends a data row; it may be shorter than the header (missing cells
  /// render empty).
  void addRow(std::vector<std::string> Row);

  /// Renders the table, header first, columns separated by two spaces, with
  /// a dashed rule under the header. Numeric-looking cells right-align.
  std::string str() const;

  /// Helper: formats a double with \p Precision fractional digits.
  static std::string num(double Value, int Precision = 2);
  /// Helper: formats a percentage (0..100 scale) with one fractional digit.
  static std::string pct(double Value);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_TABLEPRINTER_H
