//===- support/Digraph.h - Small dense directed graph -----------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directed graph over dense node ids 0..N-1 with adjacency lists, used for
/// production dependency graphs, augmented graphs during the SNC-to-l-ordered
/// transformation and visit-sequence linearization. Provides topological
/// sorting (with a priority tie-break hook) and cycle-witness extraction for
/// the circularity trace.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_DIGRAPH_H
#define FNC2_SUPPORT_DIGRAPH_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace fnc2 {

/// Directed graph over dense node indices with duplicate-free edge insertion.
class Digraph {
public:
  Digraph() = default;
  explicit Digraph(unsigned NumNodes) : Succs(NumNodes), Preds(NumNodes) {}

  unsigned size() const { return static_cast<unsigned>(Succs.size()); }

  /// Appends a fresh node and returns its index.
  unsigned addNode() {
    Succs.emplace_back();
    Preds.emplace_back();
    return size() - 1;
  }

  /// Adds edge From -> To if not already present; returns true if inserted.
  bool addEdge(unsigned From, unsigned To);

  bool hasEdge(unsigned From, unsigned To) const;

  const std::vector<unsigned> &successors(unsigned N) const {
    return Succs[N];
  }
  const std::vector<unsigned> &predecessors(unsigned N) const {
    return Preds[N];
  }

  unsigned numEdges() const;

  /// Merges all edges of \p Other (same node set) into this graph.
  void unionEdges(const Digraph &Other);

  /// Returns a topological order of all nodes, or std::nullopt if the graph
  /// is cyclic. When several nodes are ready, the one minimizing \p Priority
  /// is picked first; by default the smallest index wins, which keeps the
  /// order deterministic.
  std::optional<std::vector<unsigned>> topologicalOrder(
      const std::function<uint64_t(unsigned)> &Priority = nullptr) const;

  /// Returns true iff the graph contains a directed cycle.
  bool hasCycle() const { return !topologicalOrder().has_value(); }

  /// Returns the nodes of some directed cycle, in order (the edge from the
  /// last node back to the first closes the cycle); empty if acyclic.
  std::vector<unsigned> findCycle() const;

  /// Returns true iff \p To is reachable from \p From along >= 1 edge.
  bool reaches(unsigned From, unsigned To) const;

private:
  std::vector<std::vector<unsigned>> Succs;
  std::vector<std::vector<unsigned>> Preds;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_DIGRAPH_H
