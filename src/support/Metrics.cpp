//===- support/Metrics.cpp - Unified counter schema & registry -----------===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include <cstdio>

namespace fnc2 {

MetricsRegistry::Entry *MetricsRegistry::find(std::string_view Name) {
  for (Entry &E : Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

void MetricsRegistry::add(std::string_view Name, uint64_t V, MergeKind Merge) {
  if (Entry *E = find(Name)) {
    E->Value = E->Merge == MergeKind::Sum ? E->Value + V
                                          : std::max(E->Value, V);
    return;
  }
  Entries.push_back(Entry{std::string(Name), V, Merge});
}

uint64_t MetricsRegistry::value(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return E.Value;
  return 0;
}

bool MetricsRegistry::contains(std::string_view Name) const {
  for (const Entry &E : Entries)
    if (E.Name == Name)
      return true;
  return false;
}

void MetricsRegistry::merge(const MetricsRegistry &O) {
  for (const Entry &E : O.Entries)
    add(E.Name, E.Value, E.Merge);
}

void MetricsRegistry::reset() {
  for (Entry &E : Entries)
    E.Value = 0;
}

std::string MetricsRegistry::json() const {
  std::string Out = "{";
  bool First = true;
  for (const Entry &E : Entries) {
    if (!First)
      Out += ", ";
    First = false;
    Out += '"';
    Out += jsonEscape(E.Name);
    Out += "\": ";
    char Buf[24];
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(E.Value));
    Out += Buf;
  }
  Out += "}";
  return Out;
}

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace fnc2
