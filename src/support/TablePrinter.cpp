//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

using namespace fnc2;

TablePrinter::TablePrinter(std::vector<std::string> Hdr)
    : Header(std::move(Hdr)) {}

void TablePrinter::addRow(std::vector<std::string> Row) {
  Rows.push_back(std::move(Row));
}

static bool looksNumeric(const std::string &S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!std::isdigit(static_cast<unsigned char>(C)) && C != '.' && C != '-' &&
        C != '%' && C != '+')
      return false;
  return true;
}

std::string TablePrinter::str() const {
  size_t NumCols = Header.size();
  std::vector<size_t> Widths(NumCols, 0);
  for (size_t C = 0; C != NumCols; ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size() && C != NumCols; ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto emitRow = [&](const std::vector<std::string> &Row, std::string &Out) {
    for (size_t C = 0; C != NumCols; ++C) {
      const std::string Cell = C < Row.size() ? Row[C] : "";
      size_t Pad = Widths[C] - Cell.size();
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
      if (C + 1 != NumCols)
        Out += "  ";
    }
    // Trim trailing spaces for tidy output.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  emitRow(Header, Out);
  size_t RuleWidth = 0;
  for (size_t C = 0; C != NumCols; ++C)
    RuleWidth += Widths[C] + (C + 1 != NumCols ? 2 : 0);
  Out.append(RuleWidth, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    emitRow(Row, Out);
  return Out;
}

std::string TablePrinter::num(double Value, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, Value);
  return Buf;
}

std::string TablePrinter::pct(double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Value);
  return Buf;
}
