//===- support/Metrics.h - Unified counter schema & registry ----*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics substrate of the observability layer. Two pieces:
///
///  * CounterField schemas: every evaluator stats struct (EvalStats,
///    IncrementalStats, StorageStats) publishes a schema() listing its
///    counters with a name and a merge kind, and derives reset(), merge()
///    and registry export from it. One implementation of those semantics
///    replaces the three hand-rolled ones, whose behaviour used to drift
///    (IncrementalStats had no merge at all; totals add on join while
///    peaks take the maximum).
///
///  * MetricsRegistry: a flat, insertion-ordered bag of named counters —
///    the common landing zone for stats exports and trace counters, and
///    the source of the flat metrics JSON exporter.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_METRICS_H
#define FNC2_SUPPORT_METRICS_H

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fnc2 {

/// How a counter combines when two accumulators join (batch workers, or
/// one evaluator reused over several trees): totals add, peaks keep the
/// largest single observation.
enum class MergeKind : uint8_t { Sum, Max };

/// Schema entry describing one named counter field of a stats struct \p S.
template <typename S> struct CounterField {
  const char *Name;
  uint64_t S::*Member;
  MergeKind Merge = MergeKind::Sum;
};

/// Zeroes every schema counter of \p Stats.
template <typename S> void statsReset(S &Stats) {
  for (const CounterField<S> &F : S::schema())
    Stats.*(F.Member) = 0;
}

/// Accumulates \p From into \p Into field-wise under the schema merge
/// kinds.
template <typename S> void statsMerge(S &Into, const S &From) {
  for (const CounterField<S> &F : S::schema()) {
    uint64_t V = From.*(F.Member);
    uint64_t &D = Into.*(F.Member);
    D = F.Merge == MergeKind::Sum ? D + V : std::max(D, V);
  }
}

/// A flat registry of named counters. Not synchronized: accumulate one per
/// thread (or per worker) and merge() after the join, exactly like the
/// stats structs themselves.
class MetricsRegistry {
public:
  struct Entry {
    std::string Name;
    uint64_t Value = 0;
    MergeKind Merge = MergeKind::Sum;
  };

  /// Combines \p V into counter \p Name (created on first use); Sum
  /// counters add, Max counters keep the larger value.
  void add(std::string_view Name, uint64_t V,
           MergeKind Merge = MergeKind::Sum);

  /// Value of \p Name, or 0 when the counter was never touched.
  uint64_t value(std::string_view Name) const;
  bool contains(std::string_view Name) const;

  /// Joins another registry entry-wise under each entry's merge kind.
  void merge(const MetricsRegistry &O);

  /// Zeroes every value but keeps the names (a schema-preserving reset).
  void reset();
  void clear() { Entries.clear(); }

  size_t size() const { return Entries.size(); }
  const std::vector<Entry> &entries() const { return Entries; }

  /// Flat JSON object {"name": value, ...} in insertion order.
  std::string json() const;

private:
  Entry *find(std::string_view Name);

  std::vector<Entry> Entries;
};

/// Exports every schema counter of \p Stats into \p R under its schema
/// name (merging with whatever the registry already holds).
template <typename S> void statsExport(const S &Stats, MetricsRegistry &R) {
  for (const CounterField<S> &F : S::schema())
    R.add(F.Name, Stats.*(F.Member), F.Merge);
}

/// Escapes \p S for inclusion inside a JSON string literal.
std::string jsonEscape(std::string_view S);

} // namespace fnc2

#endif // FNC2_SUPPORT_METRICS_H
