//===- support/Timer.h - Wall-clock stopwatch -------------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny steady-clock stopwatch used by the generator statistics (Table 1's
/// "time" column) and the evaluation benches (Tables 2/3 phase timings).
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_TIMER_H
#define FNC2_SUPPORT_TIMER_H

#include <chrono>

namespace fnc2 {

/// Starts at construction; elapsed times are cumulative wall-clock seconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_TIMER_H
