//===- support/ThreadPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A work-stealing thread pool for the batch evaluation engine. Each worker
/// owns a deque: it pushes and pops its own work at the back (LIFO, cache
/// warm) and steals from the front of a victim's deque (FIFO, oldest task)
/// when its own runs dry. Tasks here are coarse — one attributed tree per
/// task — so per-deque mutexes cost nothing measurable and keep the pool
/// trivially ThreadSanitizer-clean; the classic lock-free Chase–Lev deque
/// would buy latency the workload cannot observe.
///
/// The pool is task-parallel only: tasks must not block on other tasks.
/// parallelFor() is the bulk entry point the evaluators use; the calling
/// thread participates as worker 0, so a pool constructed with N threads
/// applies exactly N workers (N-1 spawned + the caller), and a pool of one
/// thread degenerates to a plain sequential loop with no synchronization
/// beyond one atomic.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_THREADPOOL_H
#define FNC2_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fnc2 {

/// A fixed-size work-stealing pool. Construction spawns the workers;
/// destruction joins them. One pool can serve many parallelFor() batches,
/// but batches must not be issued concurrently from several threads.
class ThreadPool {
public:
  /// \p NumThreads is the total worker count including the calling thread;
  /// 0 means one worker per hardware thread.
  explicit ThreadPool(unsigned NumThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned numThreads() const { return NumWorkers; }

  /// Runs Body(Index, Worker) for every Index in [0, N), distributed over
  /// the workers; Worker is in [0, numThreads()) and identifies the worker
  /// executing that index (stable within one body invocation, so it can
  /// index per-worker accumulators). Blocks until every index has run.
  /// Exceptions must not escape Body.
  void parallelFor(size_t N,
                   const std::function<void(size_t, unsigned)> &Body);

private:
  struct Batch;

  /// One worker's deque; owned work is pushed/popped at the back, thieves
  /// take from the front.
  struct WorkerQueue {
    std::mutex Mu;
    std::deque<size_t> Indices;
  };

  void workerLoop(unsigned Worker);
  /// Runs batch indices as worker \p Worker until the batch is drained.
  void drainBatch(Batch &B, unsigned Worker);
  bool popLocal(WorkerQueue &Q, size_t &Index);
  bool steal(unsigned Thief, size_t &Index);

  unsigned NumWorkers;
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Threads;

  /// Batch hand-off: the submitting thread installs the live batch, wakes
  /// the spawned workers, helps drain it, then waits for quiescence.
  std::mutex BatchMu;
  std::condition_variable BatchCv;   ///< Workers wait here for a batch.
  std::condition_variable DoneCv;    ///< Submitter waits here for the join.
  Batch *Live = nullptr;
  uint64_t BatchSeq = 0;
  /// Spawned workers currently inside the live batch (guarded by BatchMu);
  /// the submitter must not retire the batch while any remain.
  unsigned ActiveRunners = 0;
  bool ShuttingDown = false;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_THREADPOOL_H
