//===- support/Digraph.cpp ------------------------------------------------===//

#include "support/Digraph.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace fnc2;

bool Digraph::addEdge(unsigned From, unsigned To) {
  assert(From < size() && To < size() && "node index out of range");
  auto &S = Succs[From];
  if (std::find(S.begin(), S.end(), To) != S.end())
    return false;
  S.push_back(To);
  Preds[To].push_back(From);
  return true;
}

bool Digraph::hasEdge(unsigned From, unsigned To) const {
  const auto &S = Succs[From];
  return std::find(S.begin(), S.end(), To) != S.end();
}

unsigned Digraph::numEdges() const {
  unsigned N = 0;
  for (const auto &S : Succs)
    N += static_cast<unsigned>(S.size());
  return N;
}

void Digraph::unionEdges(const Digraph &Other) {
  assert(size() == Other.size() && "node count mismatch");
  for (unsigned N = 0, E = size(); N != E; ++N)
    for (unsigned T : Other.Succs[N])
      addEdge(N, T);
}

std::optional<std::vector<unsigned>> Digraph::topologicalOrder(
    const std::function<uint64_t(unsigned)> &Priority) const {
  unsigned N = size();
  std::vector<unsigned> InDegree(N, 0);
  for (unsigned I = 0; I != N; ++I)
    for (unsigned T : Succs[I])
      ++InDegree[T];

  auto Prio = [&](unsigned Node) -> uint64_t {
    return Priority ? Priority(Node) : Node;
  };
  // Min-heap on (priority, node) so equal priorities break by index and the
  // order stays deterministic.
  using Entry = std::pair<uint64_t, unsigned>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> Ready;
  for (unsigned I = 0; I != N; ++I)
    if (InDegree[I] == 0)
      Ready.push({Prio(I), I});

  std::vector<unsigned> Order;
  Order.reserve(N);
  while (!Ready.empty()) {
    unsigned Node = Ready.top().second;
    Ready.pop();
    Order.push_back(Node);
    for (unsigned T : Succs[Node])
      if (--InDegree[T] == 0)
        Ready.push({Prio(T), T});
  }
  if (Order.size() != N)
    return std::nullopt;
  return Order;
}

std::vector<unsigned> Digraph::findCycle() const {
  enum Color : uint8_t { White, Grey, Black };
  unsigned N = size();
  std::vector<Color> Colors(N, White);
  std::vector<unsigned> Parent(N, ~0u);

  // Iterative DFS that records the grey path; the first back edge found
  // yields a concrete cycle witness for diagnostics.
  for (unsigned Root = 0; Root != N; ++Root) {
    if (Colors[Root] != White)
      continue;
    std::vector<std::pair<unsigned, size_t>> Stack;
    Stack.push_back({Root, 0});
    Colors[Root] = Grey;
    while (!Stack.empty()) {
      auto &[Node, NextIdx] = Stack.back();
      if (NextIdx < Succs[Node].size()) {
        unsigned T = Succs[Node][NextIdx++];
        if (Colors[T] == Grey) {
          // Found a back edge Node -> T: reconstruct the grey path T..Node.
          std::vector<unsigned> Cycle;
          size_t Start = 0;
          for (size_t I = 0; I != Stack.size(); ++I)
            if (Stack[I].first == T)
              Start = I;
          for (size_t I = Start; I != Stack.size(); ++I)
            Cycle.push_back(Stack[I].first);
          return Cycle;
        }
        if (Colors[T] == White) {
          Colors[T] = Grey;
          Stack.push_back({T, 0});
        }
      } else {
        Colors[Node] = Black;
        Stack.pop_back();
      }
    }
  }
  return {};
}

bool Digraph::reaches(unsigned From, unsigned To) const {
  std::vector<bool> Seen(size(), false);
  std::vector<unsigned> Work = {From};
  Seen[From] = true;
  while (!Work.empty()) {
    unsigned N = Work.back();
    Work.pop_back();
    for (unsigned T : Succs[N]) {
      if (T == To)
        return true;
      if (!Seen[T]) {
        Seen[T] = true;
        Work.push_back(T);
      }
    }
  }
  return false;
}
