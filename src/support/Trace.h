//===- support/Trace.h - Structured tracing (spans + counters) --*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead structured tracing for the whole pipeline. The generator
/// cascade, the GFA fixpoints and every evaluator are instrumented with the
/// three macros at the bottom of this file:
///
///   FNC2_SPAN("eval.visit");          // scoped begin/end pair (RAII)
///   FNC2_COUNT("inc.rules_skipped", 1);  // monotone counter increment
///   FNC2_INSTANT("eval.EVAL", NRules);   // point event with a value
///
/// Collection model: tracing is off (a single relaxed atomic load per site)
/// until a TraceCollector is installed. Each emitting thread then appends to
/// its own buffer — no locks or shared cache lines on the hot path — and the
/// collector stitches the buffers together at export time. Exporters:
///
///   * chromeJson()  — Chrome trace_event JSON, loadable in chrome://tracing
///                     or Perfetto.
///   * summary()     — a timestamp- and thread-id-free textual rendering of
///                     the span/counter sequence; byte-stable across runs on
///                     a single thread, which is what the golden-trace tests
///                     pin down.
///   * countersTo()  — folds every counter/instant into a MetricsRegistry.
///
/// Threading contract: install() and uninstall() must only be called while
/// no instrumented code is executing (the batch engines' parallelFor joins
/// give the needed happens-before). Threads may come and go freely while a
/// collector is installed; per-thread buffers are owned by the collector and
/// outlive the threads. Stale thread_local buffer caches are invalidated by
/// a global epoch, never dereferenced.
///
/// Compile-out: configure with -DFNC2_TRACE=OFF and every macro expands to
/// nothing; no trace symbol is referenced from the instrumented code.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_TRACE_H
#define FNC2_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fnc2 {
namespace trace {

/// One trace record. Name points at a string literal from an emitting site
/// (never owned); Ticks is a raw timestamp (TSC on x86, monotonic-clock
/// nanoseconds elsewhere) converted to nanoseconds at export time using the
/// calibration the collector takes at install/uninstall; Tid is a small
/// dense id assigned per emitting thread in buffer registration order.
struct TraceEvent {
  enum class Phase : uint8_t { Begin, End, Counter, Instant };

  const char *Name;
  Phase Ph;
  uint32_t Tid;
  uint64_t Ticks;
  uint64_t Value;
};

/// Collects events from any number of threads while installed. Create one,
/// install() it around the region of interest, uninstall(), then export.
class TraceCollector {
public:
  TraceCollector() = default;
  ~TraceCollector();
  TraceCollector(const TraceCollector &) = delete;
  TraceCollector &operator=(const TraceCollector &) = delete;

  /// Makes this the process-wide active collector. Only one collector may
  /// be installed at a time; install() while another is active replaces it.
  /// Must be called from a quiescent point (no instrumented code running).
  void install();

  /// Detaches the collector; subsequent emissions are dropped at the
  /// enabled() check. Same quiescence requirement as install(). The
  /// collected events remain available for export. Safe to call when not
  /// installed.
  void uninstall();

  bool installed() const;

  /// All events, grouped by thread (buffer registration order) and
  /// time-ordered within each thread. Call after uninstall().
  std::vector<TraceEvent> events() const;

  /// Number of per-thread buffers that registered (i.e. distinct threads
  /// that emitted at least one event).
  size_t threadCount() const;

  /// Deterministic textual rendering: one line per event, two-space
  /// indentation per open span, no timestamps or thread ids. Buffers of
  /// different threads are rendered one after the other under a
  /// "-- thread N --" header (omitted when only one thread emitted).
  ///
  ///   > classify.snc        span begin
  ///   < classify.snc        span end
  ///   # snc.iterations +2   counter increment
  ///   ! eval.EVAL 3         instant with value
  std::string summary() const;

  /// Chrome trace_event JSON: {"traceEvents": [...]}. Spans become B/E
  /// pairs, counters become C events, instants become i events; pid is
  /// always 1 and tid is the dense per-thread id.
  std::string chromeJson() const;

  /// Folds every Counter event (summed per name) and Instant event
  /// (counted per name, summed value under "<name>.total") into \p R.
  void countersTo(MetricsRegistry &R) const;

  /// Total number of collected events.
  size_t eventCount() const;

  // Implementation detail, public for the emitting fast path.
  struct ThreadBuf {
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
  };

  /// Registers (or retrieves) the calling thread's buffer. Internal — used
  /// by the emission fast path via detail::currentBuf().
  ThreadBuf *bufForCurrentThread();

private:
  /// Converts a raw event timestamp to monotonic-clock nanoseconds using
  /// the install/uninstall calibration pair.
  uint64_t ticksToNs(uint64_t Ticks) const;

  mutable std::mutex Mu;
  std::vector<std::unique_ptr<ThreadBuf>> Bufs;

  // Tick<->ns calibration: sampled at install(), finalized at uninstall().
  uint64_t CalTicks0 = 0;
  uint64_t CalNs0 = 0;
  double NsPerTick = 1.0;
};

/// True iff a collector is installed. One relaxed atomic load; this is the
/// whole cost of an emission site while tracing is off.
bool enabled();

namespace detail {

/// The installed collector, or nullptr.
extern std::atomic<TraceCollector *> GCollector;

/// Bumped on every install/uninstall; invalidates thread_local buffer
/// caches so a stale pointer is never dereferenced.
extern std::atomic<uint64_t> GEpoch;

/// Monotonic-clock nanoseconds.
uint64_t nowNs();

/// Raw timestamp for the emission hot path: the TSC on x86 (a handful of
/// cycles, converted to ns at export via the collector's calibration), the
/// monotonic clock elsewhere.
inline uint64_t nowTicks() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return nowNs();
#endif
}

/// The calling thread's buffer in the installed collector, or nullptr when
/// tracing is off. Registers the thread on first use per install epoch.
TraceCollector::ThreadBuf *currentBuf();

inline void emit(const char *Name, TraceEvent::Phase Ph, uint64_t Value) {
  TraceCollector::ThreadBuf *B = currentBuf();
  if (!B)
    return;
  B->Events.push_back(TraceEvent{Name, Ph, B->Tid, nowTicks(), Value});
}

} // namespace detail

/// Emits a Counter event (a named monotone increment).
inline void count(const char *Name, uint64_t Delta) {
  if (enabled())
    detail::emit(Name, TraceEvent::Phase::Counter, Delta);
}

/// Emits an Instant event (a point-in-time observation with a value).
inline void instant(const char *Name, uint64_t Value) {
  if (enabled())
    detail::emit(Name, TraceEvent::Phase::Instant, Value);
}

/// RAII span. Captures enabledness at construction so a span that started
/// while tracing was on always closes its Begin even if uninstall() raced
/// — which the quiescence contract forbids anyway, but cheap to be safe.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name) : Name(Name), Live(enabled()) {
    if (Live)
      detail::emit(Name, TraceEvent::Phase::Begin, 0);
  }
  ~ScopedSpan() {
    if (Live)
      detail::emit(Name, TraceEvent::Phase::End, 0);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  const char *Name;
  bool Live;
};

} // namespace trace
} // namespace fnc2

/// FNC2_TRACE_ENABLED defaults to 1; the FNC2_TRACE=OFF CMake option defines
/// it to 0, compiling every site out entirely.
#ifndef FNC2_TRACE_ENABLED
#define FNC2_TRACE_ENABLED 1
#endif

#if FNC2_TRACE_ENABLED

#define FNC2_TRACE_CONCAT_IMPL(A, B) A##B
#define FNC2_TRACE_CONCAT(A, B) FNC2_TRACE_CONCAT_IMPL(A, B)

/// Opens a span covering the rest of the enclosing scope.
#define FNC2_SPAN(NAME)                                                        \
  ::fnc2::trace::ScopedSpan FNC2_TRACE_CONCAT(Fnc2Span_, __LINE__)(NAME)

/// Increments counter NAME by DELTA.
#define FNC2_COUNT(NAME, DELTA) ::fnc2::trace::count(NAME, (DELTA))

/// Records an instant event NAME carrying VALUE.
#define FNC2_INSTANT(NAME, VALUE) ::fnc2::trace::instant(NAME, (VALUE))

#else

#define FNC2_SPAN(NAME) ((void)0)
#define FNC2_COUNT(NAME, DELTA) ((void)0)
#define FNC2_INSTANT(NAME, VALUE) ((void)0)

#endif // FNC2_TRACE_ENABLED

#endif // FNC2_SUPPORT_TRACE_H
