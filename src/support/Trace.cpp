//===- support/Trace.cpp - Structured tracing implementation -------------===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include <chrono>
#include <cstdio>

namespace fnc2 {
namespace trace {

namespace detail {

std::atomic<TraceCollector *> GCollector{nullptr};
std::atomic<uint64_t> GEpoch{0};

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {
/// Per-thread cache of the registered buffer, keyed by install epoch. A
/// changed epoch means the cached pointer may belong to a dead collector;
/// it is then discarded without being touched.
struct BufCache {
  uint64_t Epoch = 0;
  TraceCollector::ThreadBuf *Buf = nullptr;
};
thread_local BufCache TLCache;
} // namespace

TraceCollector::ThreadBuf *currentBuf() {
  // Steady-state fast path: one epoch load and a compare. The collector
  // pointer is only consulted on an epoch change (install/uninstall happen
  // at quiescent points, so a matching epoch proves the cache is current).
  uint64_t E = GEpoch.load(std::memory_order_acquire);
  if (TLCache.Epoch == E)
    return TLCache.Buf;
  TraceCollector *C = GCollector.load(std::memory_order_acquire);
  TLCache.Buf = C ? C->bufForCurrentThread() : nullptr;
  TLCache.Epoch = E;
  return TLCache.Buf;
}

} // namespace detail

bool enabled() {
  return detail::GCollector.load(std::memory_order_relaxed) != nullptr;
}

TraceCollector::~TraceCollector() { uninstall(); }

void TraceCollector::install() {
  CalTicks0 = detail::nowTicks();
  CalNs0 = detail::nowNs();
  detail::GCollector.store(this, std::memory_order_release);
  detail::GEpoch.fetch_add(1, std::memory_order_acq_rel);
}

void TraceCollector::uninstall() {
  TraceCollector *Expected = this;
  if (detail::GCollector.compare_exchange_strong(Expected, nullptr,
                                                 std::memory_order_acq_rel)) {
    detail::GEpoch.fetch_add(1, std::memory_order_acq_rel);
    uint64_t DTicks = detail::nowTicks() - CalTicks0;
    uint64_t DNs = detail::nowNs() - CalNs0;
    NsPerTick = DTicks ? static_cast<double>(DNs) / DTicks : 1.0;
  }
}

uint64_t TraceCollector::ticksToNs(uint64_t Ticks) const {
  return CalNs0 +
         static_cast<uint64_t>((Ticks - CalTicks0) * NsPerTick);
}

bool TraceCollector::installed() const {
  return detail::GCollector.load(std::memory_order_acquire) == this;
}

TraceCollector::ThreadBuf *TraceCollector::bufForCurrentThread() {
  std::lock_guard<std::mutex> Lock(Mu);
  Bufs.push_back(std::make_unique<ThreadBuf>());
  Bufs.back()->Tid = static_cast<uint32_t>(Bufs.size() - 1);
  Bufs.back()->Events.reserve(4096); // keep early growth off the hot path
  return Bufs.back().get();
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<TraceEvent> Out;
  size_t N = 0;
  for (const auto &B : Bufs)
    N += B->Events.size();
  Out.reserve(N);
  for (const auto &B : Bufs)
    Out.insert(Out.end(), B->Events.begin(), B->Events.end());
  return Out;
}

size_t TraceCollector::threadCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Bufs.size();
}

size_t TraceCollector::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  size_t N = 0;
  for (const auto &B : Bufs)
    N += B->Events.size();
  return N;
}

std::string TraceCollector::summary() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  char Buf[64];
  for (const auto &B : Bufs) {
    if (Bufs.size() > 1) {
      std::snprintf(Buf, sizeof(Buf), "-- thread %u --\n", B->Tid);
      Out += Buf;
    }
    int Depth = 0;
    for (const TraceEvent &E : B->Events) {
      if (E.Ph == TraceEvent::Phase::End && Depth > 0)
        --Depth;
      for (int I = 0; I < Depth; ++I)
        Out += "  ";
      switch (E.Ph) {
      case TraceEvent::Phase::Begin:
        Out += "> ";
        Out += E.Name;
        ++Depth;
        break;
      case TraceEvent::Phase::End:
        Out += "< ";
        Out += E.Name;
        break;
      case TraceEvent::Phase::Counter:
        std::snprintf(Buf, sizeof(Buf), "# %s +%llu", E.Name,
                      static_cast<unsigned long long>(E.Value));
        Out += Buf;
        break;
      case TraceEvent::Phase::Instant:
        std::snprintf(Buf, sizeof(Buf), "! %s %llu", E.Name,
                      static_cast<unsigned long long>(E.Value));
        Out += Buf;
        break;
      }
      Out += '\n';
    }
  }
  return Out;
}

std::string TraceCollector::chromeJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"traceEvents\": [\n";
  char Buf[128];
  bool First = true;
  for (const auto &B : Bufs) {
    for (const TraceEvent &E : B->Events) {
      if (!First)
        Out += ",\n";
      First = false;
      // trace_event timestamps are microseconds; keep sub-us resolution
      // with a fractional part.
      double Us = static_cast<double>(ticksToNs(E.Ticks)) / 1000.0;
      const char *Ph = "i";
      switch (E.Ph) {
      case TraceEvent::Phase::Begin:
        Ph = "B";
        break;
      case TraceEvent::Phase::End:
        Ph = "E";
        break;
      case TraceEvent::Phase::Counter:
        Ph = "C";
        break;
      case TraceEvent::Phase::Instant:
        Ph = "i";
        break;
      }
      Out += "{\"name\": \"";
      Out += jsonEscape(E.Name);
      Out += "\", \"ph\": \"";
      Out += Ph;
      std::snprintf(Buf, sizeof(Buf),
                    "\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u", Us, E.Tid);
      Out += Buf;
      if (E.Ph == TraceEvent::Phase::Counter) {
        std::snprintf(Buf, sizeof(Buf), ", \"args\": {\"value\": %llu}",
                      static_cast<unsigned long long>(E.Value));
        Out += Buf;
      } else if (E.Ph == TraceEvent::Phase::Instant) {
        std::snprintf(Buf, sizeof(Buf),
                      ", \"s\": \"t\", \"args\": {\"value\": %llu}",
                      static_cast<unsigned long long>(E.Value));
        Out += Buf;
      }
      Out += "}";
    }
  }
  Out += "\n]}\n";
  return Out;
}

void TraceCollector::countersTo(MetricsRegistry &R) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &B : Bufs) {
    for (const TraceEvent &E : B->Events) {
      if (E.Ph == TraceEvent::Phase::Counter) {
        R.add(E.Name, E.Value);
      } else if (E.Ph == TraceEvent::Phase::Instant) {
        R.add(E.Name, 1);
        R.add(std::string(E.Name) + ".total", E.Value);
      }
    }
  }
}

} // namespace trace
} // namespace fnc2
