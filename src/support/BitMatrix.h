//===- support/BitMatrix.h - Dense boolean matrix ---------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system
// (Jourdan, Parigot, Julié, Durin, Le Bellec; PLDI 1990).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense rectangular bit matrix with word-parallel row operations, used to
/// represent dependency relations between attributes (IO/OI graphs) and for
/// Warshall-style transitive closure inside the grammar flow analyses.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_BITMATRIX_H
#define FNC2_SUPPORT_BITMATRIX_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fnc2 {

/// Dense R x C boolean matrix stored row-major in 64-bit words.
class BitMatrix {
public:
  /// Sentinel for orRowSpan's skip parameter: no bit is skipped.
  static constexpr unsigned NoSkip = ~0u;

  BitMatrix() = default;

  /// Creates an all-zero matrix with \p Rows rows and \p Cols columns.
  BitMatrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), WordsPerRow((Cols + 63) / 64),
        Words(static_cast<size_t>(Rows) * WordsPerRow, 0) {}

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  bool test(unsigned R, unsigned C) const {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    return (word(R, C / 64) >> (C % 64)) & 1;
  }

  /// Sets bit (R, C); returns true iff the bit was previously clear.
  bool set(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    uint64_t &W = word(R, C / 64);
    uint64_t Mask = uint64_t(1) << (C % 64);
    bool WasClear = !(W & Mask);
    W |= Mask;
    return WasClear;
  }

  void reset(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    word(R, C / 64) &= ~(uint64_t(1) << (C % 64));
  }

  /// Ors row \p Src of \p Other into row \p Dst of this matrix; returns true
  /// iff any bit changed. Both matrices must have the same column count.
  bool orRow(unsigned Dst, const BitMatrix &Other, unsigned Src) {
    assert(NumCols == Other.NumCols && "column count mismatch");
    bool Changed = false;
    for (unsigned W = 0; W != WordsPerRow; ++W) {
      uint64_t Old = word(Dst, W);
      uint64_t New = Old | Other.word(Src, W);
      if (New != Old) {
        word(Dst, W) = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Reads \p Len (1..64) bits of row \p R starting at column \p Col into
  /// the low bits of one word. The span may straddle a word boundary.
  uint64_t extractBits(unsigned R, unsigned Col, unsigned Len) const {
    assert(Len >= 1 && Len <= 64 && Col + Len <= NumCols && "bad bit span");
    unsigned W = Col / 64, Off = Col % 64;
    uint64_t Bits = word(R, W) >> Off;
    if (Off != 0 && W + 1 < WordsPerRow)
      Bits |= word(R, W + 1) << (64 - Off);
    if (Len < 64)
      Bits &= (uint64_t(1) << Len) - 1;
    return Bits;
  }

  /// Shifted-block row OR: ors \p Len bits of row \p Src of \p Other
  /// starting at column \p SrcCol into row \p Dst of this matrix starting
  /// at column \p DstCol, 64 bits per operation regardless of alignment.
  /// The destination bit at relative index \p Skip (if any) is left
  /// untouched. Returns true iff any destination bit changed.
  bool orRowSpan(unsigned Dst, unsigned DstCol, const BitMatrix &Other,
                 unsigned Src, unsigned SrcCol, unsigned Len,
                 unsigned Skip = NoSkip);

  /// Like orRowSpan, additionally appending the absolute destination column
  /// of every newly-set bit to \p NewCols (in ascending order).
  bool orRowSpanCollect(unsigned Dst, unsigned DstCol, const BitMatrix &Other,
                        unsigned Src, unsigned SrcCol, unsigned Len,
                        std::vector<unsigned> &NewCols,
                        unsigned Skip = NoSkip);

  /// Given a transitively closed square matrix, inserts edge
  /// (\p From, \p To) and restores closure: every row reaching \p From
  /// absorbs row \p To. O(rows) word-parallel row ORs instead of a full
  /// Warshall pass, which is what lets the GFA fixpoints re-close a cached
  /// closure after a handful of new edges.
  void closeWithEdge(unsigned From, unsigned To);

  /// Ors \p Other into this matrix element-wise; returns true iff changed.
  bool orInPlace(const BitMatrix &Other) {
    assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
           "shape mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      if (New != Words[I]) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Replaces this (square) matrix with its transitive closure.
  void transitiveClosure();

  /// Returns true if any diagonal bit of a square matrix is set, i.e. the
  /// relation (after closure) contains a cycle.
  bool hasReflexiveBit() const;

  bool operator==(const BitMatrix &Other) const {
    return NumRows == Other.NumRows && NumCols == Other.NumCols &&
           Words == Other.Words;
  }

  /// Number of set bits in the whole matrix.
  unsigned count() const;

  /// Direct access to word \p W of row \p R (for the word-parallel span
  /// primitives; bit i of the word is column W*64+i).
  uint64_t &rowWord(unsigned R, unsigned W) { return word(R, W); }
  uint64_t rowWord(unsigned R, unsigned W) const { return word(R, W); }

private:
  uint64_t &word(unsigned R, unsigned W) {
    return Words[static_cast<size_t>(R) * WordsPerRow + W];
  }
  const uint64_t &word(unsigned R, unsigned W) const {
    return Words[static_cast<size_t>(R) * WordsPerRow + W];
  }

  unsigned NumRows = 0;
  unsigned NumCols = 0;
  unsigned WordsPerRow = 0;
  std::vector<uint64_t> Words;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_BITMATRIX_H
