//===- support/BitMatrix.h - Dense boolean matrix ---------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system
// (Jourdan, Parigot, Julié, Durin, Le Bellec; PLDI 1990).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense rectangular bit matrix with word-parallel row operations, used to
/// represent dependency relations between attributes (IO/OI graphs) and for
/// Warshall-style transitive closure inside the grammar flow analyses.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_SUPPORT_BITMATRIX_H
#define FNC2_SUPPORT_BITMATRIX_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fnc2 {

/// Dense R x C boolean matrix stored row-major in 64-bit words.
class BitMatrix {
public:
  BitMatrix() = default;

  /// Creates an all-zero matrix with \p Rows rows and \p Cols columns.
  BitMatrix(unsigned Rows, unsigned Cols)
      : NumRows(Rows), NumCols(Cols), WordsPerRow((Cols + 63) / 64),
        Words(static_cast<size_t>(Rows) * WordsPerRow, 0) {}

  unsigned rows() const { return NumRows; }
  unsigned cols() const { return NumCols; }

  bool test(unsigned R, unsigned C) const {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    return (word(R, C / 64) >> (C % 64)) & 1;
  }

  /// Sets bit (R, C); returns true iff the bit was previously clear.
  bool set(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    uint64_t &W = word(R, C / 64);
    uint64_t Mask = uint64_t(1) << (C % 64);
    bool WasClear = !(W & Mask);
    W |= Mask;
    return WasClear;
  }

  void reset(unsigned R, unsigned C) {
    assert(R < NumRows && C < NumCols && "bit index out of range");
    word(R, C / 64) &= ~(uint64_t(1) << (C % 64));
  }

  /// Ors row \p Src of \p Other into row \p Dst of this matrix; returns true
  /// iff any bit changed. Both matrices must have the same column count.
  bool orRow(unsigned Dst, const BitMatrix &Other, unsigned Src) {
    assert(NumCols == Other.NumCols && "column count mismatch");
    bool Changed = false;
    for (unsigned W = 0; W != WordsPerRow; ++W) {
      uint64_t Old = word(Dst, W);
      uint64_t New = Old | Other.word(Src, W);
      if (New != Old) {
        word(Dst, W) = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Ors \p Other into this matrix element-wise; returns true iff changed.
  bool orInPlace(const BitMatrix &Other) {
    assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
           "shape mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] | Other.Words[I];
      if (New != Words[I]) {
        Words[I] = New;
        Changed = true;
      }
    }
    return Changed;
  }

  /// Replaces this (square) matrix with its transitive closure.
  void transitiveClosure();

  /// Returns true if any diagonal bit of a square matrix is set, i.e. the
  /// relation (after closure) contains a cycle.
  bool hasReflexiveBit() const;

  bool operator==(const BitMatrix &Other) const {
    return NumRows == Other.NumRows && NumCols == Other.NumCols &&
           Words == Other.Words;
  }

  /// Number of set bits in the whole matrix.
  unsigned count() const;

private:
  uint64_t &word(unsigned R, unsigned W) {
    return Words[static_cast<size_t>(R) * WordsPerRow + W];
  }
  const uint64_t &word(unsigned R, unsigned W) const {
    return Words[static_cast<size_t>(R) * WordsPerRow + W];
  }

  unsigned NumRows = 0;
  unsigned NumCols = 0;
  unsigned WordsPerRow = 0;
  std::vector<uint64_t> Words;
};

} // namespace fnc2

#endif // FNC2_SUPPORT_BITMATRIX_H
