//===- support/ThreadPool.cpp ---------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>

using namespace fnc2;

/// One parallelFor() invocation in flight.
struct ThreadPool::Batch {
  const std::function<void(size_t, unsigned)> *Body = nullptr;
  std::atomic<size_t> Remaining{0};
};

ThreadPool::ThreadPool(unsigned NumThreads) {
  if (NumThreads == 0)
    NumThreads = std::max(1u, std::thread::hardware_concurrency());
  NumWorkers = NumThreads;
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  // Worker 0 is the thread that calls parallelFor(); spawn the rest.
  Threads.reserve(NumWorkers - 1);
  for (unsigned I = 1; I != NumWorkers; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(BatchMu);
    ShuttingDown = true;
  }
  BatchCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

bool ThreadPool::popLocal(WorkerQueue &Q, size_t &Index) {
  std::lock_guard<std::mutex> Lock(Q.Mu);
  if (Q.Indices.empty())
    return false;
  Index = Q.Indices.back();
  Q.Indices.pop_back();
  return true;
}

bool ThreadPool::steal(unsigned Thief, size_t &Index) {
  for (unsigned Step = 1; Step != NumWorkers; ++Step) {
    WorkerQueue &Victim = *Queues[(Thief + Step) % NumWorkers];
    std::lock_guard<std::mutex> Lock(Victim.Mu);
    if (!Victim.Indices.empty()) {
      Index = Victim.Indices.front();
      Victim.Indices.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::drainBatch(Batch &B, unsigned Worker) {
  while (B.Remaining.load(std::memory_order_acquire) != 0) {
    size_t Index;
    if (popLocal(*Queues[Worker], Index) || steal(Worker, Index)) {
      (*B.Body)(Index, Worker);
      if (B.Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Last index done: retire the batch and release the submitter.
        std::lock_guard<std::mutex> Lock(BatchMu);
        Live = nullptr;
        DoneCv.notify_all();
      }
    } else {
      // Every deque is empty but sibling workers still run stolen indices;
      // the tail is at most one coarse task long, so yielding beats a
      // condition-variable round-trip here.
      std::this_thread::yield();
    }
  }
}

void ThreadPool::workerLoop(unsigned Worker) {
  uint64_t SeenSeq = 0;
  for (;;) {
    Batch *B = nullptr;
    {
      std::unique_lock<std::mutex> Lock(BatchMu);
      BatchCv.wait(Lock, [&] {
        return ShuttingDown || (Live != nullptr && BatchSeq != SeenSeq);
      });
      if (ShuttingDown)
        return;
      SeenSeq = BatchSeq;
      B = Live;
      // Registered under the lock, so the submitter cannot destroy the
      // batch while this worker still dereferences it.
      ++ActiveRunners;
    }
    drainBatch(*B, Worker);
    {
      std::lock_guard<std::mutex> Lock(BatchMu);
      if (--ActiveRunners == 0 && Live == nullptr)
        DoneCv.notify_all();
    }
  }
}

void ThreadPool::parallelFor(
    size_t N, const std::function<void(size_t, unsigned)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers == 1 || N == 1) {
    for (size_t I = 0; I != N; ++I)
      Body(I, 0);
    return;
  }

  Batch B;
  B.Body = &Body;
  B.Remaining.store(N, std::memory_order_relaxed);

  // Deal indices round-robin so every worker starts with local work; the
  // deques are untouched between batches, no draining contention yet.
  for (unsigned W = 0; W != NumWorkers; ++W) {
    std::lock_guard<std::mutex> Lock(Queues[W]->Mu);
    assert(Queues[W]->Indices.empty() && "stale work between batches");
    for (size_t I = W; I < N; I += NumWorkers)
      Queues[W]->Indices.push_back(I);
  }

  {
    std::lock_guard<std::mutex> Lock(BatchMu);
    assert(Live == nullptr && "parallelFor is not reentrant");
    Live = &B;
    ++BatchSeq;
  }
  BatchCv.notify_all();

  // The submitting thread is worker 0. The wait below covers both the last
  // index retiring (Live cleared) and every spawned worker having left the
  // batch, after which the stack-allocated Batch can safely die.
  drainBatch(B, 0);

  std::unique_lock<std::mutex> Lock(BatchMu);
  DoneCv.wait(Lock, [&] { return Live == nullptr && ActiveRunners == 0; });
}
