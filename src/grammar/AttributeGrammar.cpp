//===- grammar/AttributeGrammar.cpp ---------------------------------------===//

#include "grammar/AttributeGrammar.h"

#include <algorithm>

using namespace fnc2;

unsigned AttributeGrammar::numAttrOccurrences() const {
  unsigned N = 0;
  for (const Phylum &P : Phyla)
    N += static_cast<unsigned>(P.Attrs.size());
  return N;
}

PhylumId AttributeGrammar::findPhylum(const std::string &PName) const {
  for (PhylumId I = 0, E = numPhyla(); I != E; ++I)
    if (Phyla[I].Name == PName)
      return I;
  return InvalidId;
}

AttrId AttributeGrammar::findAttr(PhylumId P, const std::string &AName) const {
  for (AttrId A : Phyla[P].Attrs)
    if (Attrs[A].Name == AName)
      return A;
  return InvalidId;
}

ProdId AttributeGrammar::findProd(const std::string &PName) const {
  for (ProdId I = 0, E = numProds(); I != E; ++I)
    if (Prods[I].Name == PName)
      return I;
  return InvalidId;
}

bool AttributeGrammar::isOutputOcc(ProdId P, const AttrOcc &O) const {
  if (O.isLocal())
    return true;
  if (O.isLexeme())
    return false;
  const Attribute &A = attr(O.Attr);
  if (O.Pos == 0)
    return A.isSynthesized();
  return A.isInherited();
}

void AttributeGrammar::buildProductionInfo() {
  ProdInfo.clear();
  ProdInfo.resize(Prods.size());
  for (ProdId P = 0, E = numProds(); P != E; ++P) {
    const Production &Pr = Prods[P];
    ProductionInfo &PI = ProdInfo[P];

    auto addOcc = [&](const AttrOcc &O) {
      PI.OccIndex.emplace(O, static_cast<OccId>(PI.Occs.size()));
      PI.Occs.push_back(O);
    };
    PI.PosBase.push_back(0);
    for (AttrId A : Phyla[Pr.Lhs].Attrs)
      addOcc(AttrOcc::onSymbol(0, A));
    for (unsigned C = 0; C != Pr.arity(); ++C) {
      PI.PosBase.push_back(static_cast<OccId>(PI.Occs.size()));
      for (AttrId A : Phyla[Pr.Rhs[C]].Attrs)
        addOcc(AttrOcc::onSymbol(C + 1, A));
    }
    for (unsigned L = 0; L != Pr.Locals.size(); ++L)
      addOcc(AttrOcc::local(L));
    if (Pr.HasLexeme)
      addOcc(AttrOcc::lexeme());

    PI.DepGraph = Digraph(PI.numOccs());
    PI.DefiningRule.assign(PI.numOccs(), InvalidId);
    for (RuleId R : Pr.Rules) {
      const SemanticRule &Rule = Rules[R];
      auto TargetIt = PI.OccIndex.find(Rule.Target);
      if (TargetIt == PI.OccIndex.end())
        continue; // Reported by checkWellFormed.
      if (PI.DefiningRule[TargetIt->second] == InvalidId)
        PI.DefiningRule[TargetIt->second] = R;
      for (const AttrOcc &Arg : Rule.Args) {
        auto ArgIt = PI.OccIndex.find(Arg);
        if (ArgIt == PI.OccIndex.end())
          continue;
        PI.DepGraph.addEdge(ArgIt->second, TargetIt->second);
      }
    }

    PI.DepMatrix = BitMatrix(PI.numOccs(), PI.numOccs());
    for (OccId O = 0; O != PI.numOccs(); ++O)
      for (unsigned T : PI.DepGraph.successors(O))
        PI.DepMatrix.set(O, T);
  }

  // Phylum -> production incidence for the worklist fixpoints.
  RhsProds.assign(numPhyla(), {});
  IncidentProds.assign(numPhyla(), {});
  for (ProdId P = 0, E = numProds(); P != E; ++P) {
    const Production &Pr = Prods[P];
    auto addOnce = [P](std::vector<ProdId> &List) {
      if (List.empty() || List.back() != P)
        List.push_back(P);
    };
    addOnce(IncidentProds[Pr.Lhs]);
    for (PhylumId C : Pr.Rhs) {
      addOnce(RhsProds[C]);
      addOnce(IncidentProds[C]);
    }
  }
}

bool AttributeGrammar::checkWellFormed(DiagnosticEngine &Diags) const {
  assert(ProdInfo.size() == Prods.size() &&
         "call buildProductionInfo() before checkWellFormed()");
  unsigned Before = Diags.errorCount();

  if (Start == InvalidId)
    Diags.error("grammar '" + Name + "' has no start phylum");

  // Every phylum must have at least one production (productivity at the
  // operator level) so trees can exist.
  std::vector<bool> HasProd(numPhyla(), false);
  for (const Production &Pr : Prods)
    HasProd[Pr.Lhs] = true;
  for (PhylumId P = 0; P != numPhyla(); ++P)
    if (!HasProd[P])
      Diags.error("phylum '" + Phyla[P].Name + "' has no operator");

  // Reachability from the start phylum.
  if (Start != InvalidId) {
    std::vector<bool> Reach(numPhyla(), false);
    std::vector<PhylumId> Work = {Start};
    Reach[Start] = true;
    while (!Work.empty()) {
      PhylumId P = Work.back();
      Work.pop_back();
      for (ProdId Pr : Phyla[P].Prods)
        for (PhylumId C : Prods[Pr].Rhs)
          if (!Reach[C]) {
            Reach[C] = true;
            Work.push_back(C);
          }
    }
    for (PhylumId P = 0; P != numPhyla(); ++P)
      if (!Reach[P])
        Diags.warning("phylum '" + Phyla[P].Name +
                      "' is unreachable from the start phylum");
  }

  for (ProdId P = 0; P != numProds(); ++P) {
    const Production &Pr = Prods[P];
    const ProductionInfo &PI = ProdInfo[P];

    // Rule sanity: targets must be output occurrences, defined exactly once;
    // arguments must name existing occurrences.
    std::vector<unsigned> DefCount(PI.numOccs(), 0);
    for (RuleId R : Pr.Rules) {
      const SemanticRule &Rule = Rules[R];
      auto TIt = PI.OccIndex.find(Rule.Target);
      if (TIt == PI.OccIndex.end()) {
        Diags.error("operator '" + Pr.Name +
                    "': rule defines unknown occurrence");
        continue;
      }
      if (!isOutputOcc(P, Rule.Target))
        Diags.error("operator '" + Pr.Name + "': rule defines input occurrence '" +
                    occName(P, Rule.Target) + "'");
      ++DefCount[TIt->second];
      for (const AttrOcc &Arg : Rule.Args)
        if (PI.OccIndex.find(Arg) == PI.OccIndex.end())
          Diags.error("operator '" + Pr.Name +
                      "': rule argument names unknown occurrence");
    }
    for (OccId O = 0; O != PI.numOccs(); ++O) {
      const AttrOcc &Occ = PI.Occs[O];
      bool IsOutput = isOutputOcc(P, Occ);
      if (IsOutput && DefCount[O] == 0)
        Diags.error("operator '" + Pr.Name + "': occurrence '" +
                    occName(P, Occ) + "' has no defining rule");
      if (DefCount[O] > 1)
        Diags.error("operator '" + Pr.Name + "': occurrence '" +
                    occName(P, Occ) + "' is defined " +
                    std::to_string(DefCount[O]) + " times");
    }
  }
  return Diags.errorCount() == Before;
}

std::string AttributeGrammar::occName(ProdId P, const AttrOcc &O) const {
  const Production &Pr = prod(P);
  if (O.isLexeme())
    return "<lexeme>";
  if (O.isLocal())
    return "local " + Pr.Locals[O.LocalIndex].Name;
  const Attribute &A = attr(O.Attr);
  const std::string &Sym = Phyla[occPhylum(P, O)].Name;
  if (O.Pos == 0)
    return Sym + "$0." + A.Name;
  return Sym + "$" + std::to_string(O.Pos) + "." + A.Name;
}

std::string AttributeGrammar::dump() const {
  std::string Out = "grammar " + Name + "\n";
  for (PhylumId P = 0; P != numPhyla(); ++P) {
    Out += "phylum " + Phyla[P].Name;
    if (P == Start)
      Out += " (start)";
    Out += "\n";
    for (AttrId A : Phyla[P].Attrs) {
      const Attribute &At = Attrs[A];
      Out += std::string("  ") +
             (At.isInherited() ? "inh " : "syn ") + At.Name;
      if (!At.TypeName.empty())
        Out += " : " + At.TypeName;
      Out += "\n";
    }
  }
  for (ProdId P = 0; P != numProds(); ++P) {
    const Production &Pr = Prods[P];
    Out += "operator " + Pr.Name + " : " + Phyla[Pr.Lhs].Name + " ->";
    for (PhylumId C : Pr.Rhs)
      Out += " " + Phyla[C].Name;
    if (Pr.HasLexeme)
      Out += " <lexeme>";
    Out += "\n";
    for (RuleId R : Pr.Rules) {
      const SemanticRule &Rule = Rules[R];
      Out += "  " + occName(P, Rule.Target) + " := " +
             (Rule.FnName.empty() ? "<fn>" : Rule.FnName) + "(";
      for (size_t I = 0; I != Rule.Args.size(); ++I) {
        if (I)
          Out += ", ";
        Out += occName(P, Rule.Args[I]);
      }
      Out += ")";
      if (Rule.IsAutoGenerated)
        Out += "  -- auto";
      Out += "\n";
    }
  }
  return Out;
}
