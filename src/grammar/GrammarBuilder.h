//===- grammar/GrammarBuilder.h - Fluent AG construction --------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic construction of attribute grammars. Workload AGs and tests
/// use this API directly; the molga front-end lowers parsed specifications
/// through it as well.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_GRAMMAR_GRAMMARBUILDER_H
#define FNC2_GRAMMAR_GRAMMARBUILDER_H

#include "grammar/AttributeGrammar.h"

namespace fnc2 {

/// Options controlling GrammarBuilder::finalize().
struct FinalizeOptions {
  /// Run the automatic copy-rule pass before well-formedness checking
  /// (paper section 2.4: "most copy rules can be automatically generated
  /// and need not be specified explicitly").
  bool AutoCopy = true;
  /// Run the well-formedness check; disable only for deliberately broken
  /// grammars in tests.
  bool CheckWellFormed = true;
};

/// Builds an AttributeGrammar incrementally. All ids returned are valid for
/// the grammar produced by finalize().
class GrammarBuilder {
public:
  explicit GrammarBuilder(std::string Name);

  /// Declares (or returns the existing) phylum named \p Name.
  PhylumId phylum(const std::string &Name);

  AttrId inherited(PhylumId P, const std::string &Name,
                   const std::string &TypeName = "");
  AttrId synthesized(PhylumId P, const std::string &Name,
                     const std::string &TypeName = "");

  /// Declares an operator \p Name : Lhs -> Rhs. \p StringLexeme marks the
  /// lexeme as an identifier rather than an integer (for generators).
  ProdId production(const std::string &Name, PhylumId Lhs,
                    std::vector<PhylumId> Rhs, bool HasLexeme = false,
                    bool StringLexeme = false);

  /// Declares a production-local attribute; returns its occurrence.
  AttrOcc local(ProdId P, const std::string &Name,
                const std::string &TypeName = "");

  /// Shorthand occurrence constructors.
  static AttrOcc occ(unsigned Pos, AttrId A) {
    return AttrOcc::onSymbol(Pos, A);
  }

  /// Adds a general semantic rule Target := FnName(Args...).
  RuleId rule(ProdId P, AttrOcc Target, std::vector<AttrOcc> Args,
              std::string FnName, SemanticFn Fn = nullptr);

  /// Adds an explicit copy rule Target := Source.
  RuleId copy(ProdId P, AttrOcc Target, AttrOcc Source);

  /// Adds a constant rule Target := value.
  RuleId constant(ProdId P, AttrOcc Target, Value V,
                  std::string FnName = "const");

  void setStart(PhylumId P) { AG.Start = P; }

  /// Access to the grammar under construction (tests use this to create
  /// deliberately malformed grammars).
  AttributeGrammar &grammar() { return AG; }

  /// Runs auto-copy (optional), builds occurrence tables and validates.
  /// Returns the finished grammar; on errors the grammar is still returned
  /// (its state is consistent) and \p Diags carries the problems.
  AttributeGrammar finalize(DiagnosticEngine &Diags,
                            FinalizeOptions Opts = {});

private:
  AttributeGrammar AG;
};

/// The automatic copy-rule pass: for every undefined output occurrence, if a
/// unique same-named, same-typed source is available, synthesizes a copy
/// rule. Inherited child occurrences copy from the LHS occurrence of the
/// same attribute name; missing synthesized LHS occurrences copy from the
/// unique child that offers a synthesized attribute of that name. Returns
/// the number of rules generated.
unsigned generateCopyRules(AttributeGrammar &AG);

} // namespace fnc2

#endif // FNC2_GRAMMAR_GRAMMARBUILDER_H
