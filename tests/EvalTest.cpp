//===- tests/EvalTest.cpp - evaluator end-to-end tests --------------------===//

#include "analysis/Classify.h"
#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "grammar/GrammarBuilder.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

/// Builds an evaluation plan for \p AG via the full cascade: OAG partitions
/// when ordered, otherwise the SNC-to-l-ordered transformation.
static EvaluationPlan planFor(const AttributeGrammar &AG,
                              ReuseMode Mode = ReuseMode::LongInclusion) {
  SncResult Snc = runSncTest(AG);
  EXPECT_TRUE(Snc.IsSNC) << AG.Name;
  OagResult Oag = runOagTest(AG, 1);
  TransformResult TR = Oag.IsOAG ? uniformInstances(AG, Oag.Partitions)
                                 : sncToLOrdered(AG, Snc, Mode);
  EXPECT_TRUE(TR.Success) << TR.FailureReason;
  EvaluationPlan Plan;
  DiagnosticEngine D;
  EXPECT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  return Plan;
}

static Value rootAttr(const AttributeGrammar &AG, const Tree &T,
                      const std::string &Name) {
  PhylumId Start = AG.prod(T.root()->Prod).Lhs;
  AttrId A = AG.findAttr(Start, Name);
  EXPECT_NE(A, InvalidId);
  return T.root()->attrVal(AG.attr(A).IndexInOwner);
}

TEST(EvalTest, DeskCalculatorArithmetic) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);

  struct Case {
    const char *Term;
    int64_t Expected;
  } Cases[] = {
      {"Calc(Num<42>)", 42},
      {"Calc(Add(Num<1>,Num<2>))", 3},
      {"Calc(Sub(Num<10>,Num<4>))", 6},
      {"Calc(Mul(Add(Num<1>,Num<2>),Num<5>))", 15},
      {"Calc(Let<\"x\">(Num<7>,Add(Var<\"x\">,Var<\"x\">)))", 14},
      {"Calc(Let<\"x\">(Num<2>,Let<\"y\">(Num<3>,Mul(Var<\"x\">,Var<\"y\">))))",
       6},
      {"Calc(Let<\"x\">(Num<1>,Let<\"x\">(Num<2>,Var<\"x\">)))", 2},
      {"Calc(Var<\"undefined\">)", 0},
  };
  for (const auto &C : Cases) {
    DiagnosticEngine D;
    Tree T = readTerm(AG, C.Term, D);
    ASSERT_FALSE(D.hasErrors()) << C.Term << ": " << D.dump();
    ASSERT_TRUE(E.evaluate(T, D)) << C.Term << ": " << D.dump();
    EXPECT_EQ(rootAttr(AG, T, "result").asInt(), C.Expected) << C.Term;
  }
}

TEST(EvalTest, BinaryNumbersIntegerPart) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  // 1101 = 13; values are in 1/1024 fixed point.
  Tree T = readTerm(
      AG, "Integer(Pair(Pair(Pair(Single(One),One),Zero),One))", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "val").asInt(), 13 * 1024);
}

TEST(EvalTest, BinaryNumbersFraction) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  // 1.11 = 1 + 1/2 + 1/4 = 1.75 => 1792/1024.
  Tree T = readTerm(AG, "Fraction(Single(One),Pair(Single(One),One))", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "val").asInt(), 1024 + 512 + 256);
}

TEST(EvalTest, RepminBroadcast) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::repmin(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Top(Fork(Fork(Leaf<5>,Leaf<2>),Leaf<9>))", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "rep").asString(), "((2,2),2)");
}

TEST(EvalTest, TwoContextGrammarUsesPartitionCarryingVisits) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  // Not DNC/OAG: must go through the transformation with 2 partitions.
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC);
  TransformResult TR = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
  ASSERT_TRUE(TR.Success) << TR.FailureReason;
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  Evaluator E(Plan);

  // CtxA: h1=100, s1=h1+1=101, h2=s1+1=102, s2=h2+1=103, out=s2.
  Tree TA = readTerm(AG, "Top(CtxA(LeafX))", D);
  ASSERT_TRUE(E.evaluate(TA, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, TA, "out").asInt(), 103);

  // CtxB: h2=200, s2=201, h1=202, s1=203, out=s1.
  Tree TB = readTerm(AG, "Top(CtxB(LeafX))", D);
  ASSERT_TRUE(E.evaluate(TB, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, TB, "out").asInt(), 203);
}

TEST(EvalTest, DncNotOagGrammarEvaluates) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::dncNotOagGrammar(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult TR = sncToLOrdered(AG, Snc);
  ASSERT_TRUE(TR.Success) << TR.FailureReason;
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  Evaluator E(Plan);
  // Conflict12(LeafX, LeafX): left h1=10 -> s1=11; right h1=s1+1=12 ->
  // s1=13; right h2=20 -> s2=21; left h2=s2+1=22 -> s2=23;
  // out = left.s2 + right.s1 = 23 + 13 = 36.
  Tree T = readTerm(AG, "Conflict12(LeafX,LeafX)", D);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "out").asInt(), 36);
}

TEST(EvalTest, Oag1GrammarEvaluates) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::oag1Grammar(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  // Same dataflow as the Conflict12 case of the triangle grammar.
  Tree T = readTerm(AG, "Conflict(LeafX,LeafX)", D);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "out").asInt(), 36);
}

TEST(EvalTest, StatsCountRulesAndVisits) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Num<2>))", D);
  ASSERT_TRUE(E.evaluate(T, D));
  EXPECT_GT(E.stats().RulesEvaluated, 0u);
  EXPECT_EQ(E.stats().VisitsPerformed, 4u) << "one visit per node";
  E.resetStats();
  EXPECT_EQ(E.stats().RulesEvaluated, 0u);
}

TEST(EvalTest, StatsExportToMetricsRegistry) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Mul(Num<3>,Num<4>))", D);
  ASSERT_TRUE(E.evaluate(T, D));

  MetricsRegistry R;
  E.stats().exportTo(R);
  EXPECT_EQ(R.value("eval.rules_evaluated"), E.stats().RulesEvaluated);
  EXPECT_EQ(R.value("eval.visits_performed"), E.stats().VisitsPerformed);
  EXPECT_EQ(R.value("eval.instructions_executed"),
            E.stats().InstructionsExecuted);
  EXPECT_EQ(R.size(), EvalStats::schema().size());

  // Exporting again merges (all EvalStats counters are sums).
  E.stats().exportTo(R);
  EXPECT_EQ(R.value("eval.rules_evaluated"), 2 * E.stats().RulesEvaluated);
}

// A memoizing demand evaluator computes each instance at most once, so on
// the same tree it can never run more rule applications than the
// exhaustive evaluator (which computes each instance exactly once).
TEST(EvalTest, DemandEvaluatesNoMoreRulesThanExhaustive) {
  for (int GrammarIdx = 0; GrammarIdx != 3; ++GrammarIdx) {
    DiagnosticEngine Diags;
    AttributeGrammar AG = GrammarIdx == 0   ? workloads::deskCalculator(Diags)
                          : GrammarIdx == 1 ? workloads::binaryNumbers(Diags)
                                            : workloads::repmin(Diags);
    EvaluationPlan Plan = planFor(AG);
    TreeGenerator Gen(AG, 41 + GrammarIdx);
    Tree T = Gen.generate(200);
    Tree T2(AG);
    T2.setRoot(T.clone(T.root()));

    Evaluator E(Plan);
    DemandEvaluator DE(AG);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
    ASSERT_TRUE(DE.evaluateAll(T2, D)) << D.dump();
    EXPECT_LE(DE.stats().RulesEvaluated, E.stats().RulesEvaluated) << AG.Name;
    EXPECT_GT(DE.stats().RulesEvaluated, 0u) << AG.Name;
  }
}

TEST(EvalTest, MissingRootInheritedReported) {
  DiagnosticEngine Diags;
  GrammarBuilder B("needs-input");
  PhylumId X = B.phylum("X");
  AttrId H = B.inherited(X, "h", "int");
  AttrId S = B.synthesized(X, "s", "int");
  ProdId Leaf = B.production("Leaf", X, {});
  B.copy(Leaf, AttrOcc::onSymbol(0, S), AttrOcc::onSymbol(0, H));
  B.setStart(X);
  AttributeGrammar AG = B.finalize(Diags);
  ASSERT_FALSE(Diags.hasErrors());

  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Leaf", D);
  EXPECT_FALSE(E.evaluate(T, D));
  EXPECT_NE(D.dump().find("was not provided"), std::string::npos);

  // Providing the value makes it work.
  DiagnosticEngine D2;
  E.setRootInherited(H, Value::ofInt(11));
  ASSERT_TRUE(E.evaluate(T, D2)) << D2.dump();
  EXPECT_EQ(rootAttr(AG, T, "s").asInt(), 11);
}

TEST(EvalTest, DemandEvaluatorAgreesWithVisitSequences) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DemandEvaluator DE(AG);

  TreeGenerator Gen(AG, 99);
  for (unsigned Round = 0; Round != 5; ++Round) {
    Tree T1 = Gen.generate(50 + Round * 37);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(T1, D)) << D.dump();
    Value Static = rootAttr(AG, T1, "result");
    ASSERT_TRUE(DE.evaluateAll(T1, D)) << D.dump();
    Value Demand = rootAttr(AG, T1, "result");
    EXPECT_TRUE(Static.equals(Demand)) << writeTerm(AG, T1.root());
  }
}

TEST(EvalTest, DemandEvaluatorAgreesOnTwoVisitGrammar) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::repmin(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DemandEvaluator DE(AG);
  TreeGenerator Gen(AG, 5);
  for (unsigned Round = 0; Round != 5; ++Round) {
    Tree T = Gen.generate(80);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
    Value A = rootAttr(AG, T, "rep");
    ASSERT_TRUE(DE.evaluateAll(T, D)) << D.dump();
    EXPECT_TRUE(A.equals(rootAttr(AG, T, "rep")));
  }
}

TEST(EvalTest, DemandEvaluatorDetectsRuntimeCycle) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::circularGrammar(Diags);
  DemandEvaluator DE(AG);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Top(Leaf)", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_FALSE(DE.evaluateAll(T, D));
  EXPECT_NE(D.dump().find("circular"), std::string::npos);
}

TEST(EvalTest, ExhaustiveEvaluationFillsEveryInstance) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  TreeGenerator Gen(AG, 17);
  Tree T = Gen.generate(120);
  DiagnosticEngine D;
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();

  // Every attribute instance of every node must be computed.
  std::vector<TreeNode *> Stack = {T.root()};
  while (!Stack.empty()) {
    TreeNode *N = Stack.back();
    Stack.pop_back();
    unsigned NumAttrs = AG.phylum(AG.prod(N->Prod).Lhs).Attrs.size();
    ASSERT_EQ(unsigned(N->FrameAttrs), NumAttrs);
    for (unsigned I = 0; I != NumAttrs; ++I)
      EXPECT_TRUE(N->attrComputed(I)) << "uncomputed attribute instance";
    for (auto &C : N->Children)
      Stack.push_back(C.get());
  }
}

// Property sweep: visit-sequence evaluation and demand evaluation agree on
// random trees across grammars and seeds.
class EvalAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(EvalAgreementTest, StaticAndDemandAgree) {
  auto [GrammarIdx, Seed] = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = GrammarIdx == 0   ? workloads::deskCalculator(Diags)
                        : GrammarIdx == 1 ? workloads::binaryNumbers(Diags)
                                          : workloads::repmin(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EvaluationPlan Plan = planFor(AG);
  Evaluator E(Plan);
  DemandEvaluator DE(AG);

  TreeGenerator Gen(AG, Seed);
  Tree T = Gen.generate(60 + Seed * 13 % 100);
  DiagnosticEngine D;
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  PhylumId Start = AG.prod(T.root()->Prod).Lhs;
  std::vector<Value> StaticVals(T.root()->Slots,
                                T.root()->Slots + T.root()->FrameAttrs);
  ASSERT_TRUE(DE.evaluateAll(T, D)) << D.dump();
  for (unsigned I = 0; I != AG.phylum(Start).Attrs.size(); ++I)
    EXPECT_TRUE(StaticVals[I].equals(T.root()->attrVal(I)));
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, EvalAgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u)));

} // namespace
