//===- tests/FuzzSpecTest.cpp - seeded generator-cascade fuzzing ----------===//
//
// Seeded, deterministic fuzzing of the whole pipeline: SpecGen synthesizes
// well-typed molga sources across a sweep of seeds, sizes and class shapes
// (Oag0/Oag1/Dnc); each spec runs the front-end, the full generator cascade
// and an end-to-end evaluation. Well-formed specs must produce no
// diagnostics, the class assignment must be stable run-to-run, and nothing
// may crash. Sizes are chosen to keep the whole suite well under ten
// seconds.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "olga/Driver.h"
#include "tree/TreeGen.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

struct FuzzCase {
  workloads::SpecGenOptions::Shape Shape;
  uint64_t Seed;
  unsigned Phyla;
  unsigned Ops;
  unsigned Pairs;
};

const char *shapeName(workloads::SpecGenOptions::Shape S) {
  switch (S) {
  case workloads::SpecGenOptions::Shape::Oag0:
    return "Oag0";
  case workloads::SpecGenOptions::Shape::Oag1:
    return "Oag1";
  case workloads::SpecGenOptions::Shape::Dnc:
    return "Dnc";
  }
  return "?";
}

class FuzzSpecTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzSpecTest, CascadeIsCleanAndDeterministic) {
  const FuzzCase &C = GetParam();
  workloads::SpecGenOptions Opts;
  Opts.Name = "Fuzz";
  Opts.Phyla = C.Phyla;
  Opts.OperatorsPerPhylum = C.Ops;
  Opts.AttrPairs = C.Pairs;
  Opts.Funs = 4;
  Opts.ClassShape = C.Shape;
  Opts.Seed = C.Seed;

  std::string Src = workloads::generateMolgaSpec(Opts);
  ASSERT_FALSE(Src.empty());
  // Determinism of the generator itself.
  EXPECT_EQ(Src, workloads::generateMolgaSpec(Opts));

  DiagnosticEngine Diags;
  olga::CompileResult Compile = olga::compileMolga(Src, Diags);
  ASSERT_TRUE(Compile.Success) << Diags.dump();
  EXPECT_FALSE(Diags.hasErrors()) << Diags.dump();
  ASSERT_EQ(Compile.Grammars.size(), 1u);
  const AttributeGrammar &AG = Compile.Grammars[0].AG;

  // The generator cascade succeeds without diagnostics; the sibling
  // conflicts injected for Oag1/Dnc shapes need the matching repair budget.
  unsigned OagK = C.Shape == workloads::SpecGenOptions::Shape::Oag0 ? 0 : 1;
  DiagnosticEngine GD;
  GeneratorOptions GOpts;
  GOpts.OagK = OagK;
  GeneratedEvaluator GE = generateEvaluator(AG, GD, GOpts);
  ASSERT_TRUE(GE.Success) << GD.dump();
  EXPECT_FALSE(GD.hasErrors()) << GD.dump();

  // Stable class assignment: the cascade re-run assigns the same class.
  DiagnosticEngine GD2;
  GeneratedEvaluator GE2 = generateEvaluator(AG, GD2, GOpts);
  ASSERT_TRUE(GE2.Success) << GD2.dump();
  EXPECT_EQ(GE.Classes.className(), GE2.Classes.className())
      << shapeName(C.Shape) << " seed " << C.Seed;
  EXPECT_EQ(GE.Plan.numSequences(), GE2.Plan.numSequences());

  // The shape controls the class: the Oag0 skeleton is ordered without
  // repairs; the injected conflicts demote exactly as designed.
  if (C.Shape == workloads::SpecGenOptions::Shape::Oag0)
    EXPECT_EQ(GE.Classes.className(), "OAG(0)") << Src;

  // End-to-end: a generated tree evaluates cleanly.
  TreeGenerator Gen(AG, C.Seed * 7919 + 13);
  Tree T = Gen.generate(120);
  Evaluator E(GE.Plan);
  DiagnosticEngine ED;
  ASSERT_TRUE(E.evaluate(T, ED)) << ED.dump();
  EXPECT_FALSE(ED.hasErrors()) << ED.dump();
  EXPECT_FALSE(Compile.Grammars[0].RuntimeDiags->hasErrors())
      << Compile.Grammars[0].RuntimeDiags->dump();
}

std::vector<FuzzCase> sweep() {
  std::vector<FuzzCase> Cases;
  using Shape = workloads::SpecGenOptions::Shape;
  for (Shape S : {Shape::Oag0, Shape::Oag1, Shape::Dnc})
    for (uint64_t Seed : {1u, 2u, 3u, 5u, 8u})
      Cases.push_back({S, Seed, unsigned(4 + Seed % 4), 3,
                       unsigned(1 + Seed % 2)});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSpecTest, ::testing::ValuesIn(sweep()),
                         [](const ::testing::TestParamInfo<FuzzCase> &I) {
                           return std::string(shapeName(I.param.Shape)) +
                                  "_seed" + std::to_string(I.param.Seed);
                         });

} // namespace
