//===- tests/SystemTest.cpp - pipeline, workloads, tools, codegen ---------===//

#include "codegen/CEmitter.h"
#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "grammar/GrammarBuilder.h"
#include "olga/Parser.h"
#include "olga/Driver.h"
#include "tools/Companion.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace fnc2;

namespace {

//===----------------------------------------------------------------------===//
// Generator pipeline
//===----------------------------------------------------------------------===//

TEST(GeneratorTest, FullCascadeOnClassicGrammars) {
  DiagnosticEngine Diags;
  struct Case {
    AttributeGrammar AG;
    const char *Class;
  } Cases[] = {
      {workloads::deskCalculator(Diags), "OAG(0)"},
      {workloads::binaryNumbers(Diags), "OAG(0)"},
      {workloads::repmin(Diags), "OAG(0)"},
      {workloads::twoContextGrammar(Diags), "SNC"},
      {workloads::dncNotOagGrammar(Diags), "DNC"},
  };
  ASSERT_FALSE(Diags.hasErrors());
  for (auto &C : Cases) {
    DiagnosticEngine D;
    GeneratedEvaluator GE = generateEvaluator(C.AG, D);
    ASSERT_TRUE(GE.Success) << C.AG.Name << ": " << D.dump();
    EXPECT_EQ(GE.Classes.className(), C.Class) << C.AG.Name;
    EXPECT_GT(GE.Plan.numSequences(), 0u) << C.AG.Name;
    Table1Row Row = GE.statsRow(C.AG);
    EXPECT_EQ(Row.Phyla, C.AG.numPhyla());
    EXPECT_EQ(Row.Operators, C.AG.numProds());
    EXPECT_NEAR(Row.PctVars + Row.PctStacks + Row.PctNonTemp, 100.0, 1e-6);
  }
}

TEST(GeneratorTest, RejectsCircularWithTrace) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::circularGrammar(Diags);
  DiagnosticEngine D;
  GeneratedEvaluator GE = generateEvaluator(AG, D);
  EXPECT_FALSE(GE.Success);
  EXPECT_TRUE(D.hasErrors());
  EXPECT_NE(GE.Trace.find("circularity in operator"), std::string::npos);
}

TEST(GeneratorTest, OagKOptionChangesClass) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::oag1Grammar(Diags);
  DiagnosticEngine D;
  GeneratorOptions Opts;
  Opts.OagK = 0;
  EXPECT_EQ(generateEvaluator(AG, D, Opts).Classes.className(), "DNC");
  Opts.OagK = 1;
  DiagnosticEngine D2;
  EXPECT_EQ(generateEvaluator(AG, D2, Opts).Classes.className(), "OAG(1)");
}

//===----------------------------------------------------------------------===//
// Mini-Pascal
//===----------------------------------------------------------------------===//

class MiniPascalTest : public ::testing::Test {
protected:
  void SetUp() override {
    AG = workloads::miniPascal(Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
    DiagnosticEngine D;
    GE = generateEvaluator(AG, D);
    ASSERT_TRUE(GE.Success) << D.dump();
  }
  DiagnosticEngine Diags;
  AttributeGrammar AG{};
  GeneratedEvaluator GE;
};

TEST_F(MiniPascalTest, IsOrdered) {
  EXPECT_EQ(GE.Classes.className(), "OAG(0)");
}

TEST_F(MiniPascalTest, CompilesStraightLineProgram) {
  DiagnosticEngine D;
  Tree T = workloads::parseMiniPascal(
      AG, "var x: int; begin x := 1 + 2 * 3; write x; end", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_NE(T.root(), nullptr);
  Evaluator E(GE.Plan);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  workloads::PCodeResult R = workloads::pcodeFromTree(AG, T);
  EXPECT_EQ(R.Errors, 0);
  std::vector<std::string> Expected = {"LIT 1", "LIT 2", "LIT 3", "MUL",
                                       "ADD",   "STO x", "LOD x", "WRI",
                                       "HLT"};
  EXPECT_EQ(R.Code, Expected);
}

TEST_F(MiniPascalTest, LabelsThreadThroughControlFlow) {
  DiagnosticEngine D;
  Tree T = workloads::parseMiniPascal(AG,
                                      "var x: int; begin "
                                      "if x < 1 then begin x := 1; end "
                                      "else begin x := 2; end; "
                                      "while x < 5 do begin x := x + 1; end; "
                                      "end",
                                      D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  Evaluator E(GE.Plan);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  workloads::PCodeResult R = workloads::pcodeFromTree(AG, T);
  EXPECT_EQ(R.Errors, 0);
  // The if uses L0/L1, the while L2/L3: labels never collide.
  std::string Joined;
  for (const std::string &I : R.Code)
    Joined += I + ";";
  EXPECT_NE(Joined.find("JPC L0"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("JMP L1"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("LAB L2"), std::string::npos) << Joined;
  EXPECT_NE(Joined.find("JPC L3"), std::string::npos) << Joined;
}

TEST_F(MiniPascalTest, CountsStaticErrors) {
  struct Case {
    const char *Src;
    int64_t Errors;
  } Cases[] = {
      {"var x: int; begin x := 1; end", 0},
      {"begin x := 1; end", 1},                       // undeclared
      {"var x: int; var x: int; begin end", 1},       // redeclaration
      {"var b: bool; begin b := 1; end", 1},          // type mismatch
      {"var x: int; begin if x then begin end; end", 1}, // non-bool cond
      {"var x: int; begin while x + true < 2 do begin end; end", 3},
  };
  Evaluator E(GE.Plan);
  for (const auto &C : Cases) {
    DiagnosticEngine D;
    Tree T = workloads::parseMiniPascal(AG, C.Src, D);
    ASSERT_FALSE(D.hasErrors()) << C.Src << ": " << D.dump();
    ASSERT_TRUE(E.evaluate(T, D)) << C.Src << ": " << D.dump();
    EXPECT_EQ(workloads::pcodeFromTree(AG, T).Errors, C.Errors) << C.Src;
  }
}

class MiniPascalAgreement : public ::testing::TestWithParam<unsigned> {};

TEST_P(MiniPascalAgreement, GeneratedMatchesHandWritten) {
  unsigned Seed = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  Evaluator E(GE.Plan);

  std::string Src = workloads::generateMiniPascalSource(20 + Seed * 7, Seed);
  DiagnosticEngine D;
  Tree T = workloads::parseMiniPascal(AG, Src, D);
  ASSERT_FALSE(D.hasErrors()) << Src << "\n" << D.dump();
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  workloads::PCodeResult ByAg = workloads::pcodeFromTree(AG, T);
  workloads::PCodeResult ByHand =
      workloads::compileMiniPascalByHand(AG, T.root());
  EXPECT_EQ(ByAg.Code, ByHand.Code);
  EXPECT_EQ(ByAg.Errors, ByHand.Errors);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniPascalAgreement,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

//===----------------------------------------------------------------------===//
// SpecGen + the system suite
//===----------------------------------------------------------------------===//

TEST(SpecGenTest, GeneratedModulesCompile) {
  for (uint64_t Seed : {1u, 9u, 42u}) {
    std::string Src = workloads::generateMolgaModule("Mx", 12, Seed);
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Src, D);
    EXPECT_TRUE(R.Success) << Src << "\n" << D.dump();
    EXPECT_GT(R.Optimizer.TailRecursiveFuns, 0u);
  }
}

TEST(SpecGenTest, GeneratedSpecsCompileAndEvaluate) {
  workloads::SpecGenOptions Opts;
  Opts.Name = "Gx";
  Opts.Phyla = 6;
  Opts.AttrPairs = 2;
  Opts.Seed = 7;
  std::string Src = workloads::generateMolgaSpec(Opts);
  DiagnosticEngine D;
  olga::CompileResult R = olga::compileMolga(Src, D);
  ASSERT_TRUE(R.Success) << Src << "\n" << D.dump();
  const olga::LoweredGrammar &LG = R.Grammars[0];

  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(LG.AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  EXPECT_EQ(GE.Classes.className(), "OAG(0)");

  Evaluator E(GE.Plan);
  TreeGenerator Gen(LG.AG, 3);
  Tree T = Gen.generate(200);
  DiagnosticEngine TD;
  ASSERT_TRUE(E.evaluate(T, TD)) << TD.dump();
  EXPECT_FALSE(LG.RuntimeDiags->hasErrors()) << LG.RuntimeDiags->dump();
}

TEST(SpecGenTest, ShapeControlsClass) {
  workloads::SpecGenOptions Opts;
  Opts.Name = "Gs";
  Opts.Phyla = 4;
  Opts.Seed = 11;

  Opts.ClassShape = workloads::SpecGenOptions::Shape::Oag1;
  DiagnosticEngine D1;
  olga::CompileResult R1 = olga::compileMolga(generateMolgaSpec(Opts), D1);
  ASSERT_TRUE(R1.Success) << D1.dump();
  DiagnosticEngine G1;
  GeneratorOptions GO;
  GO.OagK = 1;
  EXPECT_EQ(generateEvaluator(R1.Grammars[0].AG, G1, GO).Classes.className(),
            "OAG(1)");

  Opts.ClassShape = workloads::SpecGenOptions::Shape::Dnc;
  DiagnosticEngine D2;
  olga::CompileResult R2 = olga::compileMolga(generateMolgaSpec(Opts), D2);
  ASSERT_TRUE(R2.Success) << D2.dump();
  DiagnosticEngine G2;
  EXPECT_EQ(generateEvaluator(R2.Grammars[0].AG, G2).Classes.className(),
            "DNC");
}

TEST(SystemSuiteTest, AllSevenAgsGenerateWithExpectedClasses) {
  auto Suite = workloads::systemAgSuite();
  ASSERT_EQ(Suite.size(), 7u);
  const char *ExpectedClass[] = {"OAG(0)", "OAG(0)", "OAG(0)", "OAG(0)",
                                 "DNC",    "OAG(0)", "OAG(1)"};
  for (size_t I = 0; I != Suite.size(); ++I) {
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Suite[I].Source, D);
    ASSERT_TRUE(R.Success) << Suite[I].Name << ": " << D.dump();
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Suite[I].OagK;
    GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Suite[I].Name << ": " << GD.dump();
    EXPECT_EQ(GE.Classes.className(), ExpectedClass[I]) << Suite[I].Name;
  }
}

//===----------------------------------------------------------------------===//
// Companion processors
//===----------------------------------------------------------------------===//

TEST(AsxTest, ReportsMiniPascalSignature) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  DiagnosticEngine D;
  AsxReport R = checkAbstractSyntax(AG, D);
  EXPECT_TRUE(R.WellDefined) << D.dump();
  EXPECT_EQ(R.Phyla, AG.numPhyla());
  EXPECT_GT(R.LeafOperators, 0u);
  EXPECT_EQ(R.MaxArity, 3u); // IfStmt
  std::string Sig = printAbstractSyntax(AG);
  EXPECT_NE(Sig.find("Prog (root)"), std::string::npos);
  EXPECT_NE(Sig.find("IfStmt(Expr, StmtList, StmtList)"), std::string::npos);
}

TEST(AsxTest, DetectsUnproductivePhylum) {
  GrammarBuilder B("bad");
  PhylumId X = B.phylum("X");
  PhylumId Y = B.phylum("Y");
  B.production("Loop", Y, {Y}); // Y only recurses: unproductive
  B.production("LeafX", X, {});
  B.setStart(X);
  DiagnosticEngine Diags;
  AttributeGrammar AG =
      B.finalize(Diags, {/*AutoCopy=*/false, /*CheckWellFormed=*/false});
  DiagnosticEngine D;
  AsxReport R = checkAbstractSyntax(AG, D);
  EXPECT_FALSE(R.WellDefined);
  EXPECT_NE(D.dump().find("unproductive"), std::string::npos);
}

TEST(PpatTest, UnparsesWithTemplatesAndFallback) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Mul(Num<2>,Var<\"x\">)))", D);
  ASSERT_FALSE(D.hasErrors());

  Unparser U(AG);
  U.setTemplate(AG.findProd("Add"),
                {UnparsePiece::text("("), UnparsePiece::child(0),
                 UnparsePiece::text(" + "), UnparsePiece::child(1),
                 UnparsePiece::text(")")});
  U.setTemplate(AG.findProd("Mul"),
                {UnparsePiece::child(0), UnparsePiece::text("*"),
                 UnparsePiece::child(1)});
  U.setTemplate(AG.findProd("Num"), {UnparsePiece::lexeme()});
  U.setTemplate(AG.findProd("Var"), {UnparsePiece::lexeme()});
  // Calc stays on the generic fallback.
  EXPECT_EQ(U.unparse(T.root()), "Calc((1 + 2*x))");
  EXPECT_EQ(U.numUserTemplates(), 4u);
  EXPECT_EQ(U.numFallbackOperators(), AG.numProds() - 4);
}

TEST(MkFnc2Test, BuildOrderAndCycles) {
  DiagnosticEngine D;
  olga::CompilationUnit U = olga::parseUnit(
      "module A end module B import A end grammar G import B end", D);
  ASSERT_FALSE(D.hasErrors());
  DiagnosticEngine D2;
  ModuleDepGraph G = buildModuleDepGraph(U, D2);
  ASSERT_FALSE(G.HasCycle) << D2.dump();
  ASSERT_EQ(G.BuildOrder.size(), 3u);
  // Dependencies come first.
  auto pos = [&](const std::string &N) {
    for (size_t I = 0; I != G.BuildOrder.size(); ++I)
      if (G.BuildOrder[I] == N)
        return I;
    return size_t(99);
  };
  EXPECT_LT(pos("A"), pos("B"));
  EXPECT_LT(pos("B"), pos("G"));

  DiagnosticEngine D3;
  olga::CompilationUnit U2 = olga::parseUnit(
      "module A import B end module B import A end", D3);
  DiagnosticEngine D4;
  ModuleDepGraph G2 = buildModuleDepGraph(U2, D4);
  EXPECT_TRUE(G2.HasCycle);
  EXPECT_FALSE(G2.Cycle.empty());
  EXPECT_TRUE(D4.hasErrors());
}

TEST(MkFnc2Test, UnknownImportReported) {
  DiagnosticEngine D;
  olga::CompilationUnit U = olga::parseUnit("module A import Ghost end", D);
  DiagnosticEngine D2;
  buildModuleDepGraph(U, D2);
  EXPECT_TRUE(D2.hasErrors());
  EXPECT_NE(D2.dump().find("unknown unit 'Ghost'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Translation to C
//===----------------------------------------------------------------------===//

static const char *TinyCalcSource = R"molga(
module CLib
  fun double(x: int): int = x + x
  fun pick(n: int): int = match n with | 0 -> 1 | 1 -> 10 | 2 -> 100
                          | _ -> 0 end
end
grammar CG
  import CLib
  phylum A root
  attr A syn s : int
  operator Leaf() -> A lexeme int
  operator Pair(l: A, r: A) -> A
  rules for Leaf
    A.s := double(lexeme) + pick(lexeme)
  end
  rules for Pair
    A.s := l.s + r.s
  end
end
)molga";

TEST(CEmitterTest, EmitsCompleteTranslationUnit) {
  DiagnosticEngine D;
  olga::CompileResult R = olga::compileMolga(TinyCalcSource, D);
  ASSERT_TRUE(R.Success) << D.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  CEmitStats Stats;
  DiagnosticEngine ED;
  std::string C = emitC(R.Grammars[0], GE, Stats, ED);
  EXPECT_FALSE(ED.hasErrors()) << ED.dump();
  EXPECT_GT(Stats.Lines, 100u);
  EXPECT_EQ(Stats.Functions, 2u);
  EXPECT_EQ(Stats.Constructors, 2u);
  EXPECT_EQ(Stats.VisitSequences, GE.Plan.numSequences());
  EXPECT_NE(C.find("molga_double"), std::string::npos);
  EXPECT_NE(C.find("switch"), std::string::npos)
      << "the compiled match emits a decision-tree switch";
  EXPECT_NE(C.find("mk_Pair"), std::string::npos);
  EXPECT_NE(C.find("fnc_find_seq"), std::string::npos);

  // Structural sanity: balanced braces.
  long Balance = 0;
  for (char Ch : C) {
    Balance += Ch == '{';
    Balance -= Ch == '}';
  }
  EXPECT_EQ(Balance, 0);
}

TEST(CEmitterTest, EmittedCodeCompilesWithSystemCompiler) {
  DiagnosticEngine D;
  olga::CompileResult R = olga::compileMolga(TinyCalcSource, D);
  ASSERT_TRUE(R.Success) << D.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD);
  ASSERT_TRUE(GE.Success);
  CEmitStats Stats;
  DiagnosticEngine ED;
  std::string C = emitC(R.Grammars[0], GE, Stats, ED);

  if (std::system("command -v cc > /dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system C compiler available";
  std::string Path = ::testing::TempDir() + "/fnc2_emitted.c";
  std::ofstream(Path) << C;
  std::string Cmd = "cc -std=c99 -Wall -Wno-unused-function -c " + Path +
                    " -o " + Path + ".o 2> " + Path + ".log";
  int Rc = std::system(Cmd.c_str());
  if (Rc != 0) {
    std::ifstream Log(Path + ".log");
    std::string Err((std::istreambuf_iterator<char>(Log)),
                    std::istreambuf_iterator<char>());
    FAIL() << "emitted C failed to compile:\n" << Err;
  }
}

TEST(CEmitterTest, EmitCFunctionsOnly) {
  DiagnosticEngine D;
  olga::CompileResult R = olga::compileMolga(
      "module M const k : int = 3 fun f(x: int): int = x * k end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  CEmitStats Stats;
  DiagnosticEngine ED;
  std::string C = emitCFunctions(*R.Prog, Stats, ED);
  EXPECT_EQ(Stats.Functions, 1u);
  EXPECT_NE(C.find("molga_const_k"), std::string::npos);
  EXPECT_NE(C.find("molga_f"), std::string::npos);
}

} // namespace
