//===- tests/ArtifactCacheTest.cpp - persistent artifact cache ------------===//
//
// The artifact cache's three promises, each pinned here:
//
//  * Fidelity — a stored-then-loaded artifact is indistinguishable from the
//    generation it came from: every verdict, visit sequence, compiled
//    stream and storage table compares equal, re-encoding is byte-exact,
//    and all six evaluator engines attribute trees identically from the
//    loaded plan (round-trip differential over the classics and the seeded
//    SpecGen system sweep).
//  * Robustness — corrupted files (byte flips, truncations at every length
//    including all section boundaries, version bumps, stale keys) are
//    rejected with a diagnostic, never crash, and fall back to
//    regeneration. Runs under ASan/UBSan in CI.
//  * Atomicity — writers racing on one cache directory through the
//    temp-file + rename protocol leave exactly one valid artifact and
//    never make a reader observe a torn file. Runs under TSan in CI.
//
// The golden test additionally pins the on-disk byte layout: any layout
// change must bump serialize::kFormatVersion and regenerate the golden
// (FNC2_UPDATE_GOLDENS=1).
//
//===----------------------------------------------------------------------===//

#include "FamilyCheck.h"
#include "olga/Driver.h"
#include "serialize/ArtifactFile.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <thread>

using namespace fnc2;
using namespace fnc2::testutil;

namespace {

namespace fs = std::filesystem;

/// A fresh per-test cache directory under the gtest temp dir.
std::string freshCacheDir(const std::string &Tag) {
  std::string Dir = ::testing::TempDir() + "fnc2-artifact-" + Tag;
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  return Dir;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In.good()) << Path;
  return {std::istreambuf_iterator<char>(In), std::istreambuf_iterator<char>()};
}

void writeFile(const std::string &Path, std::span<const uint8_t> Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Asserts the loaded evaluator \p Got is structurally identical to the
/// fresh generation \p Ref, layer by layer.
void expectSameGeneration(const GeneratedEvaluator &Ref,
                          const GeneratedEvaluator &Got) {
  ASSERT_TRUE(Got.Success);
  EXPECT_TRUE(Got.FromCache);
  EXPECT_TRUE(Ref.Classes == Got.Classes) << "analysis verdicts drifted";
  EXPECT_TRUE(Ref.Transform == Got.Transform) << "transform drifted";
  EXPECT_TRUE(Ref.Plan == Got.Plan) << "evaluation plan drifted";
  EXPECT_TRUE(Ref.Storage == Got.Storage) << "storage assignment drifted";

  // The deserialized compiled image equals a private compilation from the
  // same plan, pool by pool (CompiledRule::Fn compares by address — both
  // sides resolve into the same live grammar).
  ASSERT_TRUE(Got.Compiled != nullptr);
  const CompiledPlan &CP = Got.Compiled->CP;
  CompiledPlan Fresh(Ref.Plan);
  EXPECT_TRUE(CP.Instrs == Fresh.Instrs);
  EXPECT_TRUE(CP.BeginOfs == Fresh.BeginOfs);
  EXPECT_TRUE(CP.Rules == Fresh.Rules);
  EXPECT_TRUE(CP.ById == Fresh.ById);
  EXPECT_TRUE(CP.Args == Fresh.Args);
  EXPECT_TRUE(CP.Seqs == Fresh.Seqs);
  EXPECT_TRUE(CP.SeqTable == Fresh.SeqTable);
  EXPECT_EQ(CP.MaxPartition, Fresh.MaxPartition);
  EXPECT_TRUE(CP.Frames == Fresh.Frames);
  EXPECT_EQ(CP.MaxRuleArgs, Fresh.MaxRuleArgs);
  EXPECT_TRUE(CP.InhByPhylum == Fresh.InhByPhylum);
  EXPECT_TRUE(CP.SynByPhylum == Fresh.SynByPhylum);
  if (Got.Compiled->HasStorage) {
    CompiledStorage FreshCS(Fresh, Ref.Storage);
    EXPECT_TRUE(Got.Compiled->CS == FreshCS);
  }
}

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

struct ClassicCase {
  const char *Name;
  GrammarFactory Make;
  unsigned TreeSize;
};

class ArtifactRoundTripTest : public ::testing::TestWithParam<ClassicCase> {};

// generate -> encode -> decode: verdicts, sequences, streams and storage
// equal; re-encoding the loaded artifact is byte-exact; all six engines
// attribute identically from the loaded plan (including ones borrowing the
// deserialized compiled image).
TEST_P(ArtifactRoundTripTest, LoadedArtifactMatchesGeneration) {
  const ClassicCase &C = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = C.Make(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  Opts.OagK = 1;
  GeneratedEvaluator Ref = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(Ref.Success) << GD.dump();

  std::vector<uint8_t> Bytes = ArtifactCache::encode(AG, Opts, Ref);
  GeneratedEvaluator Got;
  std::string Reason;
  ASSERT_TRUE(ArtifactCache::decode(Bytes, AG, Opts, Got, Reason)) << Reason;
  expectSameGeneration(Ref, Got);

  EXPECT_EQ(ArtifactCache::encode(AG, Opts, Got), Bytes)
      << "re-encoding a loaded artifact must be byte-exact";

  runFamily(AG, Got, 4, C.TreeSize, 11);
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, ArtifactRoundTripTest,
    ::testing::Values(ClassicCase{"desk", workloads::deskCalculator, 120},
                      ClassicCase{"binary", workloads::binaryNumbers, 120},
                      ClassicCase{"repmin", workloads::repmin, 120},
                      ClassicCase{"twoctx", workloads::twoContextGrammar, 20},
                      ClassicCase{"dnc", workloads::dncNotOagGrammar, 40},
                      ClassicCase{"oag1", workloads::oag1Grammar, 40}),
    [](const ::testing::TestParamInfo<ClassicCase> &I) {
      return I.param.Name;
    });

// The seeded SpecGen system sweep: molga-compiled grammars round-trip too.
TEST(ArtifactCacheTest, SpecGenSweepRoundTrips) {
  for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    DiagnosticEngine Diags;
    olga::CompileResult C = olga::compileMolga(Ag.Source, Diags);
    ASSERT_TRUE(C.Success) << Ag.Name << ": " << Diags.dump();
    const AttributeGrammar &AG = C.Grammars[0].AG;
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator Ref = generateEvaluator(AG, GD, Opts);
    ASSERT_TRUE(Ref.Success) << Ag.Name << ": " << GD.dump();

    std::vector<uint8_t> Bytes = ArtifactCache::encode(AG, Opts, Ref);
    GeneratedEvaluator Got;
    std::string Reason;
    ASSERT_TRUE(ArtifactCache::decode(Bytes, AG, Opts, Got, Reason))
        << Ag.Name << ": " << Reason;
    expectSameGeneration(Ref, Got);
    EXPECT_EQ(ArtifactCache::encode(AG, Opts, Got), Bytes) << Ag.Name;
    runFamily(AG, Got, 2, 120, 23);
  }
}

// SpaceOptimize=false artifacts carry no storage sections and still load.
TEST(ArtifactCacheTest, RoundTripsWithoutSpaceOptimization) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  Opts.SpaceOptimize = false;
  GeneratedEvaluator Ref = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(Ref.Success) << GD.dump();

  std::vector<uint8_t> Bytes = ArtifactCache::encode(AG, Opts, Ref);
  GeneratedEvaluator Got;
  std::string Reason;
  ASSERT_TRUE(ArtifactCache::decode(Bytes, AG, Opts, Got, Reason)) << Reason;
  ASSERT_TRUE(Got.Compiled != nullptr);
  EXPECT_FALSE(Got.Compiled->HasStorage);
  EXPECT_TRUE(Ref.Plan == Got.Plan);
}

//===----------------------------------------------------------------------===//
// The generator integration: miss -> store -> hit through the filesystem.
//===----------------------------------------------------------------------===//

TEST(ArtifactCacheTest, GeneratorMissStoreHitFlow) {
  const std::string Dir = freshCacheDir("flow");
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());

  GeneratorOptions Opts;
  Opts.CacheDir = Dir;
  DiagnosticEngine D1;
  GeneratedEvaluator Cold = generateEvaluator(AG, D1, Opts);
  ASSERT_TRUE(Cold.Success) << D1.dump();
  EXPECT_FALSE(Cold.FromCache);
  EXPECT_TRUE(Cold.Compiled != nullptr)
      << "storing populates the compiled bundle";

  DiagnosticEngine D2;
  GeneratedEvaluator Warm = generateEvaluator(AG, D2, Opts);
  ASSERT_TRUE(Warm.Success) << D2.dump();
  EXPECT_TRUE(Warm.FromCache);
  EXPECT_TRUE(Cold.Plan == Warm.Plan);
  EXPECT_TRUE(Cold.Classes == Warm.Classes);
  EXPECT_TRUE(Cold.Storage == Warm.Storage);
  // Loaded evaluators report zero phase times: nothing was computed.
  EXPECT_EQ(Warm.Times.total(), 0.0);

  // The warm evaluator is fully usable.
  runFamily(AG, Warm, 3, 100, 11);
}

TEST(ArtifactCacheTest, KeySeparatesGrammarsAndOptions) {
  DiagnosticEngine Diags;
  AttributeGrammar Desk = workloads::deskCalculator(Diags);
  AttributeGrammar Repmin = workloads::repmin(Diags);
  ASSERT_FALSE(Diags.hasErrors());

  GeneratorOptions A;
  EXPECT_NE(ArtifactCache::artifactKey(Desk, A),
            ArtifactCache::artifactKey(Repmin, A));

  GeneratorOptions B = A;
  B.SpaceOptimize = false;
  EXPECT_NE(ArtifactCache::artifactKey(Desk, A),
            ArtifactCache::artifactKey(Desk, B));
  GeneratorOptions C = A;
  C.OagK = 3;
  EXPECT_NE(ArtifactCache::artifactKey(Desk, A),
            ArtifactCache::artifactKey(Desk, C));

  // GFA tuning does not affect generator output and must not split the key.
  GeneratorOptions D = A;
  D.Gfa.NaiveFixpoint = true;
  D.Gfa.Threads = 7;
  EXPECT_EQ(ArtifactCache::artifactKey(Desk, A),
            ArtifactCache::artifactKey(Desk, D));
  // Neither does the cache directory itself.
  GeneratorOptions E = A;
  E.CacheDir = "/somewhere/else";
  EXPECT_EQ(ArtifactCache::artifactKey(Desk, A),
            ArtifactCache::artifactKey(Desk, E));
}

// A grammar edit changes the key: the stale artifact is simply never
// consulted (a miss, not a reject), the mkfnc2 invalidation discipline.
TEST(ArtifactCacheTest, GrammarEditInvalidates) {
  const std::string Dir = freshCacheDir("invalidate");
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());

  GeneratorOptions Opts;
  Opts.CacheDir = Dir;
  DiagnosticEngine D1;
  ASSERT_TRUE(generateEvaluator(AG, D1, Opts).Success);

  // Rename a semantic function: content hash moves.
  AttributeGrammar Edited = AG;
  ASSERT_FALSE(Edited.Rules.empty());
  Edited.Rules[0].FnName += "_v2";
  ArtifactCache Cache(Dir);
  EXPECT_NE(ArtifactCache::artifactKey(AG, Opts),
            ArtifactCache::artifactKey(Edited, Opts));
  GeneratedEvaluator G;
  std::string Reason;
  EXPECT_EQ(Cache.load(Edited, Opts, G, Reason), CacheLookup::Miss);
}

//===----------------------------------------------------------------------===//
// Corruption injection: every mutilation is a clean reject + regeneration.
//===----------------------------------------------------------------------===//

class ArtifactCorruptionTest : public ::testing::Test {
protected:
  void SetUp() override {
    DiagnosticEngine Diags;
    AG = workloads::deskCalculator(Diags);
    ASSERT_FALSE(Diags.hasErrors());
    DiagnosticEngine GD;
    Ref = generateEvaluator(AG, GD, Opts);
    ASSERT_TRUE(Ref.Success) << GD.dump();
    Bytes = ArtifactCache::encode(AG, Opts, Ref);
    ASSERT_FALSE(Bytes.empty());
  }

  /// The corrupted image must be rejected with a diagnostic and must leave
  /// the output evaluator untouched.
  void expectReject(std::span<const uint8_t> Bad, const std::string &What) {
    GeneratedEvaluator G;
    std::string Reason;
    EXPECT_FALSE(ArtifactCache::decode(Bad, AG, Opts, G, Reason)) << What;
    EXPECT_FALSE(Reason.empty()) << What;
    EXPECT_FALSE(G.Success) << What << ": rejected decode wrote output";
  }

  AttributeGrammar AG;
  GeneratorOptions Opts;
  GeneratedEvaluator Ref;
  std::vector<uint8_t> Bytes;
};

TEST_F(ArtifactCorruptionTest, EveryByteFlipRejected) {
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0xA5;
    expectReject(Bad, "flip at byte " + std::to_string(I));
  }
}

TEST_F(ArtifactCorruptionTest, EveryTruncationRejected) {
  // Every prefix, which subsumes truncation at every section boundary.
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    expectReject(std::span(Bytes).first(Len),
                 "truncation to " + std::to_string(Len));
}

TEST_F(ArtifactCorruptionTest, SectionBoundaryTruncationsRejected) {
  // Parse the table to name the exact payload boundaries, and check the
  // cut at each one (the off-by-one the contiguity equation exists for).
  ASSERT_GE(Bytes.size(), 28u);
  auto U32 = [&](size_t O) {
    return uint32_t(Bytes[O]) | uint32_t(Bytes[O + 1]) << 8 |
           uint32_t(Bytes[O + 2]) << 16 | uint32_t(Bytes[O + 3]) << 24;
  };
  auto U64 = [&](size_t O) {
    return uint64_t(U32(O)) | uint64_t(U32(O + 4)) << 32;
  };
  uint32_t N = U32(20);
  ASSERT_GE(N, 5u) << "expected at least the five mandatory sections";
  for (uint32_t I = 0; I != N; ++I) {
    size_t Entry = 28 + size_t(I) * 24;
    uint64_t Offset = U64(Entry + 4), Size = U64(Entry + 12);
    ASSERT_LE(Offset + Size, Bytes.size());
    expectReject(std::span(Bytes).first(Offset),
                 "cut at start of section " + std::to_string(U32(Entry)));
    expectReject(std::span(Bytes).first(Offset + Size - 1),
                 "cut one byte short of section " + std::to_string(U32(Entry)));
  }
}

TEST_F(ArtifactCorruptionTest, VersionBumpRejected) {
  // A future format version must be a clean miss even with valid CRCs:
  // rebuild the container at version+1 around the original sections.
  serialize::ArtifactReader R;
  std::string Reason;
  ASSERT_TRUE(R.open(Bytes, ArtifactCache::artifactKey(AG, Opts), Reason));
  serialize::ArtifactWriter W(ArtifactCache::artifactKey(AG, Opts),
                              serialize::kFormatVersion + 1);
  for (uint32_t Id = 1; Id <= 7; ++Id)
    if (R.hasSection(Id)) {
      serialize::ByteReader S = R.section(Id);
      serialize::ByteWriter &Out = W.section(Id);
      while (S.remaining())
        Out.u8(S.u8());
    }
  std::vector<uint8_t> Bumped = W.finish();
  GeneratedEvaluator G;
  std::string Why;
  EXPECT_FALSE(ArtifactCache::decode(Bumped, AG, Opts, G, Why));
  EXPECT_NE(Why.find("version"), std::string::npos) << Why;
}

TEST_F(ArtifactCorruptionTest, StaleKeyRejectedThroughCache) {
  // Plant the desk artifact at repmin's path: the key check refuses it,
  // and regeneration overwrites the impostor.
  const std::string Dir = freshCacheDir("stale");
  DiagnosticEngine Diags;
  AttributeGrammar Repmin = workloads::repmin(Diags);
  ASSERT_FALSE(Diags.hasErrors());

  ArtifactCache Cache(Dir);
  writeFile(Cache.pathFor(ArtifactCache::artifactKey(Repmin, Opts)), Bytes);

  GeneratedEvaluator G;
  std::string Reason;
  EXPECT_EQ(Cache.load(Repmin, Opts, G, Reason), CacheLookup::Reject);
  EXPECT_FALSE(Reason.empty());
  EXPECT_EQ(Cache.stats().Rejects, 1u);

  // The generator path recovers by regenerating and overwriting.
  GeneratorOptions WithDir = Opts;
  WithDir.CacheDir = Dir;
  DiagnosticEngine GD;
  GeneratedEvaluator Regen = generateEvaluator(Repmin, GD, WithDir);
  ASSERT_TRUE(Regen.Success) << GD.dump();
  EXPECT_FALSE(Regen.FromCache);
  GeneratedEvaluator Fixed;
  EXPECT_EQ(Cache.load(Repmin, WithDir, Fixed, Reason), CacheLookup::Hit)
      << Reason;
}

TEST_F(ArtifactCorruptionTest, SeededRandomCorruptionFuzz) {
  uint64_t State = 0x853C49E6748FEA9Bull;
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  for (int Round = 0; Round != 300; ++Round) {
    std::vector<uint8_t> Bad = Bytes;
    switch (Next() % 3) {
    case 0: { // scattered flips
      unsigned Flips = 1 + Next() % 16;
      for (unsigned I = 0; I != Flips; ++I)
        Bad[Next() % Bad.size()] ^= static_cast<uint8_t>(1 + Next() % 255);
      break;
    }
    case 1: // truncate
      Bad.resize(Next() % Bad.size());
      break;
    default: { // splice a garbage run
      size_t At = Next() % Bad.size();
      size_t Len = std::min<size_t>(1 + Next() % 64, Bad.size() - At);
      for (size_t I = 0; I != Len; ++I)
        Bad[At + I] = static_cast<uint8_t>(Next());
      break;
    }
    }
    if (Bad == Bytes)
      continue;
    expectReject(Bad, "fuzz round " + std::to_string(Round));
  }
}

//===----------------------------------------------------------------------===//
// Golden artifact: the committed byte image of the desk calculator.
//===----------------------------------------------------------------------===//

// Byte-stable serialization is what makes the cache shareable across builds
// and the corruption tests meaningful. This golden fails whenever the
// artifact layout changes; the required response is bumping
// serialize::kFormatVersion and regenerating (FNC2_UPDATE_GOLDENS=1).
TEST(ArtifactGoldenTest, DeskArtifactMatchesCommittedBytes) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(GE.Success) << GD.dump();

  std::vector<uint8_t> Bytes = ArtifactCache::encode(AG, Opts, GE);
  // Two encodings in one process agree (no wall-clock, no pointers leak in).
  EXPECT_EQ(ArtifactCache::encode(AG, Opts, GE), Bytes);

  const std::string Path =
      std::string(FNC2_GOLDEN_DIR) + "/artifact_desk.golden";
  if (std::getenv("FNC2_UPDATE_GOLDENS")) {
    writeFile(Path, Bytes);
    return;
  }
  std::vector<uint8_t> Golden = readFile(Path);
  ASSERT_FALSE(Golden.empty())
      << "missing golden " << Path << " (regenerate with FNC2_UPDATE_GOLDENS=1)";
  EXPECT_TRUE(Golden == Bytes)
      << "artifact bytes drifted from " << Path
      << " — bump serialize::kFormatVersion and regenerate with "
         "FNC2_UPDATE_GOLDENS=1";
  // And the committed image still decodes against today's grammar.
  GeneratedEvaluator G;
  std::string Reason;
  EXPECT_TRUE(ArtifactCache::decode(Golden, AG, Opts, G, Reason)) << Reason;
}

//===----------------------------------------------------------------------===//
// Concurrency: racing store+load through the atomic rename protocol.
//===----------------------------------------------------------------------===//

TEST(ArtifactConcurrencyTest, RacingStoreLoadLeavesOneValidArtifact) {
  const std::string Dir = freshCacheDir("race");
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  GeneratorOptions Opts;
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(GE.Success) << GD.dump();

  constexpr unsigned Threads = 4, Rounds = 8;
  std::atomic<unsigned> BadLoads{0}, GoodLoads{0}, Stores{0};
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&] {
      ArtifactCache Cache(Dir);
      for (unsigned I = 0; I != Rounds; ++I) {
        DiagnosticEngine D;
        GeneratedEvaluator Mine = generateEvaluator(AG, D, Opts);
        if (Cache.store(AG, Opts, Mine))
          Stores.fetch_add(1);
        GeneratedEvaluator Loaded;
        std::string Reason;
        // After our own store an artifact for the key exists; every racer
        // writes identical content, so the only acceptable outcome is Hit —
        // a Reject would mean a torn read, a Miss a vanished file.
        if (Cache.load(AG, Opts, Loaded, Reason) == CacheLookup::Hit &&
            Loaded.Plan == Mine.Plan)
          GoodLoads.fetch_add(1);
        else
          BadLoads.fetch_add(1);
      }
    });
  for (std::thread &T : Pool)
    T.join();

  EXPECT_EQ(BadLoads.load(), 0u);
  EXPECT_EQ(GoodLoads.load(), Threads * Rounds);
  EXPECT_EQ(Stores.load(), Threads * Rounds);

  // Exactly one artifact file remains, no temp droppings, and it loads.
  unsigned Artifacts = 0, Others = 0;
  for (const auto &E : fs::directory_iterator(Dir))
    (E.path().extension() == ".fnc2art" ? Artifacts : Others) += 1;
  EXPECT_EQ(Artifacts, 1u);
  EXPECT_EQ(Others, 0u) << "temp files leaked";
  ArtifactCache Cache(Dir);
  GeneratedEvaluator Final;
  std::string Reason;
  EXPECT_EQ(Cache.load(AG, Opts, Final, Reason), CacheLookup::Hit) << Reason;
  runFamily(AG, Final, 2, 80, 5);
}

} // namespace
