//===- tests/IncrementalOracleTest.cpp - randomized edit oracle -----------===//
//
// The incremental evaluator's contract, checked the brute-force way: after
// any sequence of random subtree replacements and updates, the attribution
// must be indistinguishable from evaluating the edited tree from scratch.
// Each parameter tuple (grammar, update strategy, seed) drives one
// randomized edit sequence: a random tree, then several random
// replaceSubtree edits, each followed by an update and a full comparison
// against a from-scratch exhaustive evaluation of a clone (the oracle). The
// suite instantiates 204 sequences (3 grammars x 2 strategies x 34 seeds,
// 3 edits each), and for every small edit asserts through the metrics
// registry that RulesReevaluated stays strictly below the from-scratch rule
// count — the paper's "work proportional to the affected region".
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "incremental/Incremental.h"
#include "incremental/Session.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/EditScriptGen.h"
#include "workloads/MiniPascal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

using namespace fnc2;

namespace {

/// Asserts both trees carry identical attribute instances everywhere.
/// Locals compare only when both sides computed them: a skipped EVAL keeps
/// the (equal) local from the previous pass, which the mask can't show.
void expectSameAttribution(const AttributeGrammar &AG, const TreeNode *Ref,
                           const TreeNode *Got, const std::string &Tag) {
  ASSERT_EQ(Ref->Prod, Got->Prod) << Tag;
  ASSERT_EQ(Ref->FrameAttrs, Got->FrameAttrs) << Tag;
  for (unsigned I = 0; I != Ref->FrameAttrs; ++I) {
    ASSERT_TRUE(Ref->attrComputed(I))
        << Tag << ": oracle left an attribute uncomputed";
    ASSERT_TRUE(Got->attrComputed(I))
        << Tag << ": incremental update left attribute " << I
        << " uncomputed at " << AG.prod(Got->Prod).Name;
    EXPECT_TRUE(Ref->attrVal(I).equals(Got->attrVal(I)))
        << Tag << ": attribute " << I << " at " << AG.prod(Ref->Prod).Name
        << ": oracle " << Ref->attrVal(I).str() << " vs incremental "
        << Got->attrVal(I).str();
  }
  unsigned Locals = std::min(Ref->FrameLocals, Got->FrameLocals);
  for (unsigned I = 0; I != Locals; ++I)
    if (Ref->localComputed(I) && Got->localComputed(I)) {
      EXPECT_TRUE(Ref->localVal(I).equals(Got->localVal(I)))
          << Tag << ": local " << I << " at " << AG.prod(Ref->Prod).Name;
    }
  ASSERT_EQ(Ref->arity(), Got->arity()) << Tag;
  for (unsigned I = 0; I != Ref->arity(); ++I)
    expectSameAttribution(AG, Ref->child(I), Got->child(I), Tag);
}

unsigned subtreeSize(const TreeNode *N) {
  unsigned Size = 1;
  for (const auto &C : N->Children)
    Size += subtreeSize(C.get());
  return Size;
}

/// Non-root nodes rooting subtrees of at most \p MaxSize nodes — the
/// candidate sites for a *small* edit. Keeping edits small keeps most of
/// the tree untouched, which is what makes the proportional-work metric
/// assertion meaningful (replacing the whole tree would legitimately
/// reevaluate every rule). Leaves always qualify, so this is never empty.
std::vector<TreeNode *> editCandidates(Tree &T, unsigned MaxSize) {
  std::vector<TreeNode *> Out, Stack = {T.root()};
  while (!Stack.empty()) {
    TreeNode *N = Stack.back();
    Stack.pop_back();
    if (N->Parent && subtreeSize(N) <= MaxSize)
      Out.push_back(N);
    for (auto &C : N->Children)
      Stack.push_back(C.get());
  }
  return Out;
}

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

struct OracleCase {
  int GrammarIdx;
  int StrategyIdx;
  unsigned Seed;
};

class IncrementalOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(IncrementalOracleTest, EditSequenceMatchesFromScratchOracle) {
  const OracleCase &P = GetParam();
  static constexpr GrammarFactory Factories[] = {
      workloads::deskCalculator, workloads::binaryNumbers, workloads::repmin};
  DiagnosticEngine Diags;
  AttributeGrammar AG = Factories[P.GrammarIdx](Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  UpdateStrategy Strategy = P.StrategyIdx == 0 ? UpdateStrategy::FromRoot
                                               : UpdateStrategy::StartAnywhere;

  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  TreeGenerator Gen(AG, P.Seed);
  Tree T = Gen.generate(220 + (P.Seed % 7) * 40);
  IncrementalEvaluator IE(GE.Plan);
  DiagnosticEngine D;
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();

  std::mt19937 Rng(P.Seed * 7919 + P.GrammarIdx * 131 + P.StrategyIdx);
  TreeGenerator EditGen(AG, P.Seed ^ 0x5eed);

  for (unsigned Edit = 0; Edit != 3; ++Edit) {
    // A small random edit: replace a random non-root node by a fresh
    // subtree of the same phylum, a few nodes large.
    std::vector<TreeNode *> Candidates = editCandidates(T, 15);
    ASSERT_FALSE(Candidates.empty());
    TreeNode *Victim =
        Candidates[Rng() % static_cast<unsigned>(Candidates.size())];
    PhylumId Phy = AG.prod(Victim->Prod).Lhs;
    IE.replaceSubtree(T, Victim,
                      EditGen.generateNode(T, Phy, 3 + Rng() % 8));
    IE.resetStats();
    ASSERT_TRUE(IE.update(T, D, Strategy)) << D.dump();

    // Oracle: evaluate a clone of the edited tree from scratch and demand
    // identical attribution everywhere.
    Tree Check(AG);
    Check.setRoot(T.clone(T.root()));
    Evaluator Full(GE.Plan);
    ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
    expectSameAttribution(AG, Check.root(), T.root(),
                          AG.Name + "/edit" + std::to_string(Edit));

    // The edit touched a few nodes of a few-hundred-node tree: incremental
    // work must stay below the from-scratch rule count, checked through
    // the metrics registry the stats now export into. FromRoot is strictly
    // cheaper (one cutoff-driven pass). The StartAnywhere climb re-runs
    // ancestors' EVALs while synthesized results keep changing, so on a
    // grammar where a small edit shifts values globally (binary numbers: a
    // bit edit changes every other bit's scale) the affected region is the
    // whole tree and the climb overlap can cost slightly more than one
    // from-scratch pass — allow it a factor of two, which still fails
    // loudly if the climb ever regresses to redoing the region per level.
    MetricsRegistry M;
    IE.stats().exportTo(M);
    if (Strategy == UpdateStrategy::FromRoot)
      EXPECT_LT(M.value("inc.rules_reevaluated"), Full.stats().RulesEvaluated)
          << AG.Name << " edit " << Edit << " under FromRoot";
    else
      EXPECT_LT(M.value("inc.rules_reevaluated"),
                2 * Full.stats().RulesEvaluated)
          << AG.Name << " edit " << Edit << " under StartAnywhere";
    EXPECT_EQ(M.value("inc.rules_reevaluated"), IE.stats().RulesReevaluated);
  }
}

std::vector<OracleCase> allCases() {
  std::vector<OracleCase> Cases;
  for (int G = 0; G != 3; ++G)
    for (int S = 0; S != 2; ++S)
      for (unsigned Seed = 1; Seed <= 34; ++Seed)
        Cases.push_back(OracleCase{G, S, Seed});
  return Cases; // 3 x 2 x 34 = 204 randomized edit sequences
}

std::string caseName(const ::testing::TestParamInfo<OracleCase> &I) {
  static const char *Grammars[] = {"desk", "binary", "repmin"};
  static const char *Strategies[] = {"FromRoot", "StartAnywhere"};
  return std::string(Grammars[I.param.GrammarIdx]) + "_" +
         Strategies[I.param.StrategyIdx] + "_seed" +
         std::to_string(I.param.Seed);
}

INSTANTIATE_TEST_SUITE_P(Sequences, IncrementalOracleTest,
                         ::testing::ValuesIn(allCases()), caseName);

// Sanity on the suite's own arithmetic: the acceptance bar is 200+
// randomized edit sequences; keep the instantiation honest.
TEST(IncrementalOracleSuite, CoversAtLeast200EditSequences) {
  EXPECT_GE(allCases().size(), 200u);
}

//===----------------------------------------------------------------------===//
// Large-tree session sweep
//===----------------------------------------------------------------------===//
//
// The scale end of the oracle: long EditScriptGen sessions (80 mixed edits —
// subtree replacements, leaf value changes, production swaps) over
// multi-thousand-node trees, driven through IncrementalSession the way the
// editor example drives it. Every K edits the full attribution is compared
// against a from-scratch evaluation of a clone, and at the end the per-edit
// reevaluation counts must show proportional work: the *median* edit (robust
// to the occasional edit whose affected region legitimately is the whole
// tree, e.g. a repmin edit that moves the global minimum) costs a small
// fraction of a from-scratch pass.

struct SessionSweepCase {
  int GrammarIdx;
  int StrategyIdx;
  uint64_t Seed;
};

class LargeSessionOracleTest
    : public ::testing::TestWithParam<SessionSweepCase> {};

TEST_P(LargeSessionOracleTest, LongSessionMatchesOracleWithProportionalWork) {
  const SessionSweepCase &P = GetParam();
  static constexpr GrammarFactory Factories[] = {
      workloads::deskCalculator, workloads::repmin, workloads::miniPascal};
  DiagnosticEngine Diags;
  AttributeGrammar AG = Factories[P.GrammarIdx](Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  UpdateStrategy Strategy = P.StrategyIdx == 0 ? UpdateStrategy::FromRoot
                                               : UpdateStrategy::StartAnywhere;

  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  IncrementalSession S(AG, compileArtifact(GE), Strategy);
  TreeGenerator Gen(AG, P.Seed);
  DiagnosticEngine D;
  ASSERT_TRUE(S.start(Gen.generate(2500), D)) << D.dump();
  const size_t TreeNodes = S.tree().size();
  ASSERT_GT(TreeNodes, 1000u);

  constexpr unsigned NumEdits = 80, OracleEvery = 10;
  EditScriptGen Script(AG, {.Seed = P.Seed * 2654435761ULL + 1});
  std::vector<uint64_t> PerEdit;
  uint64_t FullRules = 0;
  for (unsigned Edit = 1; Edit <= NumEdits; ++Edit) {
    S.evaluator().resetStats();
    ASSERT_TRUE(S.apply(Script.next(S.tree()), D))
        << AG.Name << " edit " << Edit << ": " << D.dump();
    PerEdit.push_back(S.stats().RulesReevaluated);

    if (Edit % OracleEvery == 0) {
      Tree Check(AG);
      Check.setRoot(S.tree().clone(S.tree().root()));
      Evaluator Full(GE.Plan);
      ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
      FullRules = Full.stats().RulesEvaluated;
      expectSameAttribution(AG, Check.root(), S.tree().root(),
                            AG.Name + "/session-edit" + std::to_string(Edit));
    }
  }

  // Proportional work at scale: the median edit of the session reevaluates
  // a small fraction of the rules a from-scratch pass runs. (Edits are
  // MaxVictimSize-bounded, the tree has thousands of nodes; only changed-
  // value propagation can grow the region, and that is exactly what the
  // cutoffs bound for the median edit.)
  ASSERT_GT(FullRules, 0u);
  std::vector<uint64_t> Sorted = PerEdit;
  std::sort(Sorted.begin(), Sorted.end());
  uint64_t Median = Sorted[Sorted.size() / 2];
  EXPECT_LT(Median * 3, FullRules)
      << AG.Name << ": median per-edit reevaluation " << Median
      << " is not small against a from-scratch pass of " << FullRules
      << " rules on a " << TreeNodes << "-node tree";
  // And the session log recorded exactly the applied edits.
  EXPECT_EQ(S.log().size(), size_t(NumEdits));
}

std::vector<SessionSweepCase> sweepCases() {
  std::vector<SessionSweepCase> Cases;
  for (int G = 0; G != 3; ++G)
    for (int St = 0; St != 2; ++St)
      for (uint64_t Seed : {11u, 12u})
        Cases.push_back(SessionSweepCase{G, St, Seed});
  return Cases; // 3 grammars x 2 strategies x 2 seeds, 80 edits each
}

std::string sweepName(const ::testing::TestParamInfo<SessionSweepCase> &I) {
  static const char *Grammars[] = {"desk", "repmin", "minipascal"};
  static const char *Strategies[] = {"FromRoot", "StartAnywhere"};
  return std::string(Grammars[I.param.GrammarIdx]) + "_" +
         Strategies[I.param.StrategyIdx] + "_seed" +
         std::to_string(I.param.Seed);
}

INSTANTIATE_TEST_SUITE_P(LargeSessions, LargeSessionOracleTest,
                         ::testing::ValuesIn(sweepCases()), sweepName);

} // namespace
