//===- tests/IntegrationTest.cpp - whole-system cross checks --------------===//
//
// End-to-end properties across the whole pipeline:
//
//  * every evaluator (visit-sequence, demand-driven, storage-optimized,
//    incremental-after-initial) computes identical attributions on random
//    trees over every system-suite grammar;
//  * incremental fuzzing on mini-Pascal: random edit sequences keep the
//    incremental attribution equal to a from-scratch evaluation;
//  * the emitted C for every suite grammar is structurally sound;
//  * term I/O round-trips over random trees of every workload grammar.
//
//===----------------------------------------------------------------------===//

#include "codegen/CEmitter.h"
#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "incremental/Incremental.h"
#include "olga/Driver.h"
#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

/// Snapshot of every attribute instance in a tree.
static std::vector<std::pair<const TreeNode *, std::vector<Value>>>
snapshot(const Tree &T) {
  std::vector<std::pair<const TreeNode *, std::vector<Value>>> Out;
  std::vector<const TreeNode *> Work = {T.root()};
  while (!Work.empty()) {
    const TreeNode *N = Work.back();
    Work.pop_back();
    Out.emplace_back(N, std::vector<Value>(N->Slots, N->Slots + N->FrameAttrs));
    for (const auto &C : N->Children)
      Work.push_back(C.get());
  }
  return Out;
}

static void expectSameAttribution(
    const AttributeGrammar &AG,
    const std::vector<std::pair<const TreeNode *, std::vector<Value>>> &A,
    const Tree &T, const char *What) {
  auto B = snapshot(T);
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].first, B[I].first) << What;
    ASSERT_EQ(A[I].second.size(), B[I].second.size()) << What;
    for (size_t J = 0; J != A[I].second.size(); ++J)
      EXPECT_TRUE(A[I].second[J].equals(B[I].second[J]))
          << What << ": " << AG.prod(A[I].first->Prod).Name << " attr " << J;
  }
}

class SuiteAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SuiteAgreement, AllEvaluatorsAgreeOnSuiteGrammar) {
  int Index = GetParam();
  auto Suite = workloads::systemAgSuite();
  ASSERT_LT(static_cast<size_t>(Index), Suite.size());
  DiagnosticEngine Diags;
  olga::CompileResult R = olga::compileMolga(Suite[Index].Source, Diags);
  ASSERT_TRUE(R.Success) << Diags.dump();
  const AttributeGrammar &AG = R.Grammars[0].AG;
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  Opts.OagK = Suite[Index].OagK;
  GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(GE.Success) << GD.dump();

  TreeGenerator Gen(AG, 17 + Index);
  Tree T = Gen.generate(600);
  ASSERT_GT(T.size(), 10u);

  // Reference: visit-sequence evaluator.
  Evaluator E(GE.Plan);
  DiagnosticEngine D;
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  auto Ref = snapshot(T);

  // Demand-driven.
  DemandEvaluator DE(AG);
  ASSERT_TRUE(DE.evaluateAll(T, D)) << D.dump();
  expectSameAttribution(AG, Ref, T, "demand-driven");

  // Storage-optimized (mirrored into the tree for comparison).
  StorageEvaluator SE(GE.Plan, GE.Storage);
  SE.setMirrorToTree(true);
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  expectSameAttribution(AG, Ref, T, "storage-optimized");

  // Incremental initial run.
  IncrementalEvaluator IE(GE.Plan);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  expectSameAttribution(AG, Ref, T, "incremental-initial");

  // No semantic-rule runtime errors anywhere.
  EXPECT_FALSE(R.Grammars[0].RuntimeDiags->hasErrors())
      << R.Grammars[0].RuntimeDiags->dump();
}

INSTANTIATE_TEST_SUITE_P(SystemSuite, SuiteAgreement,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6));

TEST(IncrementalFuzz, MiniPascalRandomEditSequences) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  for (uint64_t Seed : {3u, 14u, 159u}) {
    std::string Src = workloads::generateMiniPascalSource(60, Seed);
    DiagnosticEngine D;
    Tree T = workloads::parseMiniPascal(AG, Src, D);
    ASSERT_FALSE(D.hasErrors()) << D.dump();
    IncrementalEvaluator IE(GE.Plan);
    ASSERT_TRUE(IE.initial(T, D)) << D.dump();

    TreeGenerator EditGen(AG, Seed * 7919);
    Evaluator Full(GE.Plan);
    for (unsigned Edit = 0; Edit != 10; ++Edit) {
      // Walk to a random Expr node and replace it by a fresh random one.
      TreeNode *N = T.root();
      for (unsigned Hop = 0; Hop != 30; ++Hop) {
        if (N->arity() == 0)
          break;
        TreeNode *Next = N->child((Seed + Edit + Hop) % N->arity());
        N = Next;
        if (AG.phylum(AG.prod(N->Prod).Lhs).Name == "Expr" &&
            (Edit + Hop) % 3 == 0)
          break;
      }
      if (AG.phylum(AG.prod(N->Prod).Lhs).Name != "Expr" || !N->Parent)
        continue;
      auto Fresh =
          EditGen.generateNode(T, AG.prod(N->Prod).Lhs, 6 + Edit % 9);
      IE.replaceSubtree(T, N, std::move(Fresh));
      UpdateStrategy Strategy = Edit % 2 ? UpdateStrategy::FromRoot
                                         : UpdateStrategy::StartAnywhere;
      ASSERT_TRUE(IE.update(T, D, Strategy)) << D.dump();

      // Cross-check against a from-scratch evaluation of a clone.
      Tree Check(AG);
      Check.setRoot(T.clone(T.root()));
      ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
      workloads::PCodeResult Inc = workloads::pcodeFromTree(AG, T);
      workloads::PCodeResult Scratch = workloads::pcodeFromTree(AG, Check);
      ASSERT_EQ(Inc.Code, Scratch.Code) << "seed " << Seed << " edit "
                                        << Edit;
      ASSERT_EQ(Inc.Errors, Scratch.Errors);
    }
  }
}

TEST(EmittedCIntegrity, SuiteGrammarsEmitBalancedC) {
  auto Suite = workloads::systemAgSuite();
  for (const workloads::SystemAg &Ag : Suite) {
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Ag.Source, D);
    ASSERT_TRUE(R.Success) << Ag.Name;
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Ag.Name;
    CEmitStats Stats;
    DiagnosticEngine ED;
    std::string C = emitC(R.Grammars[0], GE, Stats, ED);
    EXPECT_FALSE(ED.hasErrors()) << Ag.Name << ": " << ED.dump();
    long Balance = 0, Parens = 0;
    for (char Ch : C) {
      Balance += Ch == '{';
      Balance -= Ch == '}';
      Parens += Ch == '(';
      Parens -= Ch == ')';
    }
    EXPECT_EQ(Balance, 0) << Ag.Name;
    EXPECT_EQ(Parens, 0) << Ag.Name;
    EXPECT_EQ(Stats.Rules, R.Grammars[0].AG.numRules()) << Ag.Name;
    EXPECT_EQ(Stats.VisitSequences, GE.Plan.numSequences()) << Ag.Name;
  }
}

TEST(TermRoundTrip, RandomTreesOverWorkloadGrammars) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {
      workloads::deskCalculator(Diags), workloads::binaryNumbers(Diags),
      workloads::repmin(Diags), workloads::miniPascal(Diags)};
  ASSERT_FALSE(Diags.hasErrors());
  for (const AttributeGrammar &AG : Gs) {
    for (uint64_t Seed : {1u, 2u, 3u}) {
      TreeGenerator Gen(AG, Seed);
      Tree T = Gen.generate(120);
      std::string Text = writeTerm(AG, T.root());
      DiagnosticEngine D;
      Tree Back = readTerm(AG, Text, D);
      ASSERT_FALSE(D.hasErrors()) << AG.Name << ": " << D.dump();
      EXPECT_EQ(writeTerm(AG, Back.root()), Text) << AG.Name;
      DiagnosticEngine VD;
      EXPECT_TRUE(Back.validate(VD)) << VD.dump();
    }
  }
}

TEST(StorageOnSuite, OptimizedRunsMatchReferenceRootOutputs) {
  auto Suite = workloads::systemAgSuite();
  for (const workloads::SystemAg &Ag : Suite) {
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Ag.Source, D);
    ASSERT_TRUE(R.Success) << Ag.Name;
    const AttributeGrammar &AG = R.Grammars[0].AG;
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Ag.Name;

    TreeGenerator Gen(AG, 31);
    Tree T = Gen.generate(400);
    Evaluator E(GE.Plan);
    DiagnosticEngine ED;
    ASSERT_TRUE(E.evaluate(T, ED)) << Ag.Name << ": " << ED.dump();
    PhylumId Root = AG.prod(T.root()->Prod).Lhs;
    AttrId Out = AG.findAttr(Root, "out");
    ASSERT_NE(Out, InvalidId);
    Value Ref = T.root()->attrVal(AG.attr(Out).IndexInOwner);

    StorageEvaluator SE(GE.Plan, GE.Storage);
    SE.setMirrorToTree(true);
    ASSERT_TRUE(SE.evaluate(T, ED)) << Ag.Name << ": " << ED.dump();
    EXPECT_TRUE(Ref.equals(T.root()->attrVal(AG.attr(Out).IndexInOwner)))
        << Ag.Name;
    EXPECT_GT(SE.stats().reductionFactor(), 1.0) << Ag.Name;
  }
}

} // namespace
