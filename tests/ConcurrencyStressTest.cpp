//===- tests/ConcurrencyStressTest.cpp - shared-plan race gate ------------===//
//
// Stresses the parallel batch engine's sharing contract: one immutable
// EvaluationPlan evaluated from many threads over disjoint trees, repeatedly.
// Built under -DFNC2_SANITIZE=thread (see ci.sh) this is the race gate for
// the shared read path — plan tables, semantic function closures, the
// molga runtime-diagnostics engine — and for the ThreadPool itself.
//
//===----------------------------------------------------------------------===//

#include "eval/BatchEvaluator.h"
#include "fnc2/Generator.h"
#include "grammar/GrammarBuilder.h"
#include "olga/Driver.h"
#include "storage/BatchStorageEvaluator.h"
#include "support/ThreadPool.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

using namespace fnc2;

namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool Pool(8);
  EXPECT_EQ(Pool.numThreads(), 8u);
  constexpr size_t N = 10000;
  std::vector<std::atomic<unsigned>> Hits(N);
  Pool.parallelFor(N, [&](size_t I, unsigned Worker) {
    EXPECT_LT(Worker, Pool.numThreads());
    Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t I = 0; I != N; ++I)
    EXPECT_EQ(Hits[I].load(), 1u) << I;
}

TEST(ThreadPoolTest, ReusableAcrossBatchesOfAnySize) {
  ThreadPool Pool(4);
  for (size_t N : {0u, 1u, 2u, 7u, 64u, 255u}) {
    std::atomic<size_t> Sum{0};
    Pool.parallelFor(N, [&](size_t I, unsigned) {
      Sum.fetch_add(I + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(Sum.load(), N * (N + 1) / 2) << N;
  }
}

TEST(ThreadPoolTest, SingleThreadPoolDegeneratesToSequential) {
  ThreadPool Pool(1);
  std::vector<size_t> Order;
  Pool.parallelFor(16, [&](size_t I, unsigned Worker) {
    EXPECT_EQ(Worker, 0u);
    Order.push_back(I); // no lock needed: sequential by contract
  });
  ASSERT_EQ(Order.size(), 16u);
  for (size_t I = 0; I != 16; ++I)
    EXPECT_EQ(Order[I], I);
}

/// Shared fixture: plan + storage for the desk calculator and for a
/// molga-compiled spec (the latter routes every semantic function through
/// the shared Program and runtime-diagnostics engine).
struct SharedPlanCase {
  AttributeGrammar AG;
  GeneratedEvaluator GE;
  olga::CompileResult Compile; // keeps molga Program alive
};

SharedPlanCase deskCase() {
  SharedPlanCase C;
  DiagnosticEngine Diags;
  C.AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  C.GE = generateEvaluator(C.AG, GD);
  EXPECT_TRUE(C.GE.Success) << GD.dump();
  return C;
}

SharedPlanCase molgaCase() {
  SharedPlanCase C;
  workloads::SpecGenOptions Opts;
  Opts.Name = "Stress";
  Opts.Phyla = 5;
  Opts.AttrPairs = 2;
  Opts.Seed = 42;
  DiagnosticEngine Diags;
  C.Compile = olga::compileMolga(workloads::generateMolgaSpec(Opts), Diags);
  EXPECT_TRUE(C.Compile.Success) << Diags.dump();
  C.AG = C.Compile.Grammars[0].AG;
  DiagnosticEngine GD;
  C.GE = generateEvaluator(C.AG, GD);
  EXPECT_TRUE(C.GE.Success) << GD.dump();
  return C;
}

/// Evaluates disjoint trees of one shared plan from raw threads, each thread
/// its own interpreter, many rounds; verifies against a sequential
/// reference computed up front.
void stressSharedPlan(const SharedPlanCase &C, unsigned NumThreads,
                      unsigned Rounds) {
  const unsigned TreesPerThread = 4;
  TreeGenerator Gen(C.AG, 3);

  // Per thread, its own source trees and their reference root values.
  struct ThreadWork {
    std::vector<Tree> Trees;
    std::vector<std::vector<Value>> RefRootVals;
  };
  std::vector<ThreadWork> Work(NumThreads);
  for (ThreadWork &W : Work)
    for (unsigned I = 0; I != TreesPerThread; ++I) {
      Tree T = Gen.generate(80 + 17 * I);
      Evaluator E(C.GE.Plan);
      DiagnosticEngine D;
      ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
      const TreeNode *Root = T.root();
      W.RefRootVals.emplace_back(Root->Slots, Root->Slots + Root->FrameAttrs);
      W.Trees.push_back(std::move(T));
    }

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned TI = 0; TI != NumThreads; ++TI)
    Threads.emplace_back([&, TI] {
      ThreadWork &W = Work[TI];
      for (unsigned R = 0; R != Rounds; ++R)
        for (unsigned I = 0; I != TreesPerThread; ++I) {
          Evaluator E(C.GE.Plan);
          DiagnosticEngine D;
          if (!E.evaluate(W.Trees[I], D)) {
            ++Failures;
            continue;
          }
          for (unsigned A = 0; A != W.RefRootVals[I].size(); ++A)
            if (!W.RefRootVals[I][A].equals(W.Trees[I].root()->attrVal(A)))
              ++Failures;
        }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0u);
}

TEST(ConcurrencyStressTest, ManyThreadsShareOneDeskPlan) {
  stressSharedPlan(deskCase(), 8, 12);
}

TEST(ConcurrencyStressTest, ManyThreadsShareOneMolgaPlan) {
  // Semantic functions here all route through the shared Program and the
  // shared runtime DiagnosticEngine — the audited mutation points.
  stressSharedPlan(molgaCase(), 8, 8);
}

TEST(ConcurrencyStressTest, BatchEvaluatorRepeatedOverSharedPlan) {
  SharedPlanCase C = molgaCase();
  ThreadPool Pool(8);
  BatchEvaluator BE(C.GE.Plan, Pool);

  TreeGenerator Gen(C.AG, 9);
  std::vector<Tree> Trees;
  std::vector<Value> RefOut;
  for (unsigned I = 0; I != 32; ++I) {
    Tree T = Gen.generate(60 + 5 * I);
    Evaluator E(C.GE.Plan);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
    RefOut.push_back(T.root()->attrVal(0));
    T.resetAttributes();
    Trees.push_back(std::move(T));
  }

  for (unsigned Round = 0; Round != 6; ++Round) {
    BatchResult R = BE.evaluate(Trees);
    ASSERT_TRUE(R.allSucceeded());
    ASSERT_EQ(R.Outcomes.size(), Trees.size());
    EXPECT_GT(R.Stats.RulesEvaluated, 0u);
    for (unsigned I = 0; I != Trees.size(); ++I)
      EXPECT_TRUE(RefOut[I].equals(Trees[I].root()->attrVal(0))) << I;
  }
}

TEST(ConcurrencyStressTest, BatchStorageEvaluatorRepeatedOverSharedPlan) {
  SharedPlanCase C = deskCase();
  ThreadPool Pool(8);
  BatchStorageEvaluator BSE(C.GE.Plan, C.GE.Storage, Pool);
  BSE.setMirrorToTree(true);

  TreeGenerator Gen(C.AG, 21);
  std::vector<Tree> Trees;
  for (unsigned I = 0; I != 24; ++I)
    Trees.push_back(Gen.generate(70 + 9 * I));

  for (unsigned Round = 0; Round != 6; ++Round) {
    BatchStorageResult R = BSE.evaluate(Trees);
    ASSERT_TRUE(R.allSucceeded());
    EXPECT_GT(R.Stats.RulesEvaluated, 0u);
    EXPECT_GT(R.Stats.PeakLiveCells, 0u);
  }
}

TEST(ConcurrencyStressTest, SharedDiagnosticEngineIsSynchronized) {
  // molga-lowered semantic functions report runtime errors through one
  // engine shared by every thread evaluating the plan; hammer that exact
  // pattern directly so TSan gates the engine's internal locking.
  DiagnosticEngine Shared;
  ThreadPool Pool(8);
  Pool.parallelFor(512, [&](size_t I, unsigned) {
    Shared.error("runtime error " + std::to_string(I));
    Shared.warning("warning " + std::to_string(I));
    if (I % 16 == 0)
      (void)Shared.dump();
    (void)Shared.hasErrors();
  });
  EXPECT_EQ(Shared.errorCount(), 512u);
  EXPECT_EQ(Shared.diagnostics().size(), 1024u);
}

TEST(ConcurrencyStressTest, FailingTreesCannotPoisonTheBatch) {
  // A grammar whose start phylum demands an inherited attribute: without it
  // every tree fails, each with its own diagnostics; providing it flips the
  // whole batch to success. Exercises the per-tree DiagnosticEngine path
  // concurrently.
  DiagnosticEngine Diags;
  GrammarBuilder B("needs-input");
  PhylumId X = B.phylum("X");
  AttrId H = B.inherited(X, "h", "int");
  AttrId S = B.synthesized(X, "s", "int");
  ProdId Leaf = B.production("Leaf", X, {});
  B.copy(Leaf, AttrOcc::onSymbol(0, S), AttrOcc::onSymbol(0, H));
  B.setStart(X);
  AttributeGrammar AG = B.finalize(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  ThreadPool Pool(8);
  BatchEvaluator BE(GE.Plan, Pool);
  std::vector<Tree> Trees;
  for (unsigned I = 0; I != 16; ++I) {
    DiagnosticEngine D;
    Trees.push_back(readTerm(AG, "Leaf", D));
  }

  BatchResult Fail = BE.evaluate(Trees);
  EXPECT_EQ(Fail.NumSucceeded, 0u);
  for (const BatchTreeOutcome &Out : Fail.Outcomes) {
    EXPECT_FALSE(Out.Success);
    EXPECT_NE(Out.Diags.dump().find("was not provided"), std::string::npos);
  }

  BE.setRootInherited(H, Value::ofInt(5));
  BatchResult Ok = BE.evaluate(Trees);
  EXPECT_TRUE(Ok.allSucceeded());
  for (const Tree &T : Trees)
    EXPECT_EQ(T.root()->attrVal(AG.attr(S).IndexInOwner).asInt(), 5);
}

} // namespace
