//===- tests/SerializeTest.cpp - byte codec + artifact container ----------===//
//
// Unit tests for the serialization substrate: primitive round trips, the
// CRC-32 / FNV-1a known-answer tests, the total (never-crashing) reader
// contract, and the artifact container's validation — exhaustively, every
// single-byte flip and every truncation of a well-formed file must be
// rejected with a reason.
//
//===----------------------------------------------------------------------===//

#include "serialize/ArtifactFile.h"
#include "serialize/Serialize.h"

#include <gtest/gtest.h>

using namespace fnc2::serialize;

namespace {

TEST(Serialize, Crc32KnownAnswer) {
  const char *S = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const uint8_t *>(S), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Serialize, Fnv1a64KnownAnswer) {
  // FNV-1a 64 of the empty string is the offset basis; "a" is the published
  // vector 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64({}), 0xcbf29ce484222325ull);
  const uint8_t A[] = {'a'};
  EXPECT_EQ(fnv1a64(A), 0xaf63dc4c8601ec8cull);
}

TEST(Serialize, PrimitiveRoundTrip) {
  ByteWriter W;
  W.u8(0xAB);
  W.u16(0xBEEF);
  W.u32(0xDEADBEEF);
  W.u64(0x0123456789ABCDEFull);
  W.boolean(true);
  W.boolean(false);
  W.f64(-1234.5625);
  W.str("hello fnc2");
  W.str("");

  ByteReader R(W.bytes());
  EXPECT_EQ(R.u8(), 0xAB);
  EXPECT_EQ(R.u16(), 0xBEEF);
  EXPECT_EQ(R.u32(), 0xDEADBEEFu);
  EXPECT_EQ(R.u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(R.boolean());
  EXPECT_FALSE(R.boolean());
  EXPECT_EQ(R.f64(), -1234.5625);
  EXPECT_EQ(R.str(), "hello fnc2");
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.ok());
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(Serialize, LittleEndianLayoutIsStable) {
  // The golden-artifact test commits raw bytes; pin the byte order here so a
  // layout regression fails fast with a readable message.
  ByteWriter W;
  W.u32(0x01020304);
  ASSERT_EQ(W.size(), 4u);
  EXPECT_EQ(W.bytes()[0], 0x04);
  EXPECT_EQ(W.bytes()[3], 0x01);
}

TEST(Serialize, ReaderLatchesOnOverrun) {
  ByteWriter W;
  W.u16(7);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.u32(), 0u); // needs 4 bytes, only 2 remain
  EXPECT_FALSE(R.ok());
  EXPECT_FALSE(R.error().empty());
  // Latched: everything after the failure reads as zero, no crash.
  EXPECT_EQ(R.u64(), 0u);
  EXPECT_EQ(R.str(), "");
  EXPECT_EQ(R.remaining(), 0u);
}

TEST(Serialize, ReaderRejectsBadBoolean) {
  ByteWriter W;
  W.u8(2);
  ByteReader R(W.bytes());
  R.boolean();
  EXPECT_FALSE(R.ok());
}

TEST(Serialize, ReaderRejectsHugeStringLength) {
  ByteWriter W;
  W.u32(0xFFFFFFFF);
  W.u8('x');
  ByteReader R(W.bytes());
  EXPECT_EQ(R.str(), "");
  EXPECT_FALSE(R.ok());
}

TEST(Serialize, CountGuardsAgainstAllocationBombs) {
  // A corrupted element count larger than the remaining payload must fail
  // instead of driving a multi-gigabyte resize in the decoder.
  ByteWriter W;
  W.u32(1u << 30);
  W.u32(42);
  ByteReader R(W.bytes());
  EXPECT_EQ(R.count(4), 0u);
  EXPECT_FALSE(R.ok());

  ByteWriter W2;
  W2.u32(3);
  W2.u32(1);
  W2.u32(2);
  W2.u32(3);
  ByteReader R2(W2.bytes());
  EXPECT_EQ(R2.count(4), 3u);
  EXPECT_TRUE(R2.ok());
}

std::vector<uint8_t> makeFile(uint64_t Key = 0x1122334455667788ull) {
  ArtifactWriter W(Key);
  ByteWriter &A = W.section(1);
  A.u32(0xAAAAAAAA);
  A.str("section one");
  ByteWriter &B = W.section(2);
  B.u64(0xBBBBBBBBBBBBBBBBull);
  ByteWriter &C = W.section(7);
  C.u8(0xCC);
  return W.finish();
}

TEST(ArtifactFile, RoundTrip) {
  std::vector<uint8_t> F = makeFile();
  ArtifactReader R;
  std::string Reason;
  ASSERT_TRUE(R.open(F, 0x1122334455667788ull, Reason)) << Reason;
  EXPECT_EQ(R.key(), 0x1122334455667788ull);
  EXPECT_TRUE(R.hasSection(1));
  EXPECT_TRUE(R.hasSection(2));
  EXPECT_TRUE(R.hasSection(7));
  EXPECT_FALSE(R.hasSection(3));

  ByteReader S1 = R.section(1);
  EXPECT_EQ(S1.u32(), 0xAAAAAAAAu);
  EXPECT_EQ(S1.str(), "section one");
  EXPECT_TRUE(S1.ok());
  ByteReader S2 = R.section(2);
  EXPECT_EQ(S2.u64(), 0xBBBBBBBBBBBBBBBBull);
  ByteReader S7 = R.section(7);
  EXPECT_EQ(S7.u8(), 0xCC);

  // Absent section: an empty reader whose first read fails cleanly.
  ByteReader S3 = R.section(3);
  EXPECT_EQ(S3.u8(), 0u);
  EXPECT_FALSE(S3.ok());
}

TEST(ArtifactFile, DeterministicBytes) {
  EXPECT_EQ(makeFile(), makeFile());
}

TEST(ArtifactFile, RejectsWrongKey) {
  std::vector<uint8_t> F = makeFile();
  ArtifactReader R;
  std::string Reason;
  EXPECT_FALSE(R.open(F, 0xDEADull, Reason));
  EXPECT_FALSE(Reason.empty());
}

TEST(ArtifactFile, RejectsWrongVersion) {
  ArtifactWriter W(1, kFormatVersion + 1);
  W.section(1).u8(0);
  std::vector<uint8_t> F = W.finish();
  ArtifactReader R;
  std::string Reason;
  EXPECT_FALSE(R.open(F, 1, Reason));
  EXPECT_NE(Reason.find("version"), std::string::npos) << Reason;
}

TEST(ArtifactFile, RejectsBadMagic) {
  std::vector<uint8_t> F = makeFile();
  F[0] ^= 0xFF;
  ArtifactReader R;
  std::string Reason;
  EXPECT_FALSE(R.open(F, 0x1122334455667788ull, Reason));
}

TEST(ArtifactFile, RejectsTrailingGarbage) {
  std::vector<uint8_t> F = makeFile();
  F.push_back(0x00);
  ArtifactReader R;
  std::string Reason;
  EXPECT_FALSE(R.open(F, 0x1122334455667788ull, Reason));
  EXPECT_NE(Reason.find("trailing"), std::string::npos) << Reason;
}

TEST(ArtifactFile, RejectsEmptyAndTinyFiles) {
  ArtifactReader R;
  std::string Reason;
  EXPECT_FALSE(R.open({}, 0, Reason));
  std::vector<uint8_t> Tiny = {'F', 'N', 'C'};
  EXPECT_FALSE(R.open(Tiny, 0, Reason));
}

// Exhaustive single-byte-flip sweep: the header is checked field by field,
// the table by its CRC, the payloads by their CRCs, and the layout by the
// contiguity equation — so EVERY byte of the file is load-bearing and every
// possible one-byte corruption must be rejected.
TEST(ArtifactFile, EveryByteFlipIsRejected) {
  const std::vector<uint8_t> F = makeFile();
  for (size_t I = 0; I != F.size(); ++I) {
    std::vector<uint8_t> Bad = F;
    Bad[I] ^= 0x5A;
    ArtifactReader R;
    std::string Reason;
    EXPECT_FALSE(R.open(Bad, 0x1122334455667788ull, Reason))
        << "flip at byte " << I << " was accepted";
    EXPECT_FALSE(Reason.empty()) << "flip at byte " << I;
  }
}

// Exhaustive truncation sweep: every proper prefix must be rejected.
TEST(ArtifactFile, EveryTruncationIsRejected) {
  const std::vector<uint8_t> F = makeFile();
  for (size_t Len = 0; Len != F.size(); ++Len) {
    std::vector<uint8_t> Bad(F.begin(), F.begin() + Len);
    ArtifactReader R;
    std::string Reason;
    EXPECT_FALSE(R.open(Bad, 0x1122334455667788ull, Reason))
        << "truncation to " << Len << " bytes was accepted";
  }
}

// Seeded random multi-byte corruption: never accepted, never crashes.
TEST(ArtifactFile, RandomCorruptionFuzz) {
  const std::vector<uint8_t> F = makeFile();
  uint64_t State = 0x9E3779B97F4A7C15ull;
  auto Next = [&State] {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  };
  for (int Round = 0; Round != 2000; ++Round) {
    std::vector<uint8_t> Bad = F;
    unsigned Flips = 1 + Next() % 8;
    for (unsigned I = 0; I != Flips; ++I)
      Bad[Next() % Bad.size()] ^= static_cast<uint8_t>(1 + Next() % 255);
    ArtifactReader R;
    std::string Reason;
    if (Bad == F)
      continue; // flips can cancel; identical bytes must load
    EXPECT_FALSE(R.open(Bad, 0x1122334455667788ull, Reason))
        << "round " << Round;
  }
}

TEST(ArtifactFile, EmptyFileNoSections) {
  ArtifactWriter W(5);
  std::vector<uint8_t> F = W.finish();
  ArtifactReader R;
  std::string Reason;
  ASSERT_TRUE(R.open(F, 5, Reason)) << Reason;
  EXPECT_FALSE(R.hasSection(1));
}

} // namespace
