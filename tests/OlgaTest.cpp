//===- tests/OlgaTest.cpp - molga front-end tests -------------------------===//

#include "fnc2/Generator.h"
#include "eval/Evaluator.h"
#include "olga/Driver.h"
#include "olga/ExprEval.h"
#include "olga/Parser.h"
#include "tree/Tree.h"

#include <gtest/gtest.h>

using namespace fnc2;
using namespace fnc2::olga;

namespace {

/// A complete calculator specification used by several tests.
const char *CalcSource = R"molga(
module Lib
  type env = map
  const zero : int = 0
  fun bind(e: env, n: string, v: int): env = insert(e, n, v)
  fun find(e: env, n: string): int = lookup(e, n, zero)
end

grammar Calc
  import Lib
  phylum Prog root
  phylum Exp
  attr Prog syn result : int
  attr Exp inh env : map
  attr Exp syn val : int

  operator Top(e: Exp) -> Prog
  operator Num() -> Exp lexeme int
  operator Var() -> Exp lexeme string
  operator Add(l: Exp, r: Exp) -> Exp
  operator Mul(l: Exp, r: Exp) -> Exp
  operator Let(b: Exp, body: Exp) -> Exp lexeme string

  rules for Top
    e.env := emptymap()
    Prog.result := e.val
  end
  rules for Num
    Exp.val := lexeme
  end
  rules for Var
    Exp.val := find(Exp.env, lexeme)
  end
  rules for Add
    Exp.val := l.val + r.val
  end
  rules for Mul
    Exp.val := l.val * r.val
  end
  rules for Let
    body.env := bind(Exp.env, lexeme, b.val)
    Exp.val := body.val
  end
end
)molga";

TEST(LexerTest, TokenizesBasics) {
  DiagnosticEngine D;
  auto Toks = tokenize("fun f(x: int): int = x + 1 -- comment\n", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  EXPECT_EQ(Toks[0].Kind, TokKind::KwFun);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "f");
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
  // The comment disappears entirely.
  for (const Token &T : Toks)
    EXPECT_NE(T.Text, "comment");
}

TEST(LexerTest, MultiCharOperators) {
  DiagnosticEngine D;
  auto Toks = tokenize(":= -> <> <= >= < > =", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(Toks[0].Kind, TokKind::Assign);
  EXPECT_EQ(Toks[1].Kind, TokKind::Arrow);
  EXPECT_EQ(Toks[2].Kind, TokKind::NotEqual);
  EXPECT_EQ(Toks[3].Kind, TokKind::LessEq);
  EXPECT_EQ(Toks[4].Kind, TokKind::GreaterEq);
  EXPECT_EQ(Toks[5].Kind, TokKind::Less);
  EXPECT_EQ(Toks[6].Kind, TokKind::Greater);
  EXPECT_EQ(Toks[7].Kind, TokKind::Equal);
}

TEST(LexerTest, StringEscapesAndErrors) {
  DiagnosticEngine D;
  auto Toks = tokenize("\"a\\nb\"", D);
  ASSERT_FALSE(D.hasErrors());
  EXPECT_EQ(Toks[0].Text, "a\nb");

  DiagnosticEngine D2;
  tokenize("\"unterminated", D2);
  EXPECT_TRUE(D2.hasErrors());

  DiagnosticEngine D3;
  tokenize("@", D3);
  EXPECT_TRUE(D3.hasErrors());
}

TEST(LexerTest, TracksLocations) {
  DiagnosticEngine D;
  auto Toks = tokenize("a\n  b", D);
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Column, 3u);
}

TEST(ParserTest, ParsesCalcUnit) {
  DiagnosticEngine D;
  CompilationUnit Unit = parseUnit(CalcSource, D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_EQ(Unit.Modules.size(), 1u);
  ASSERT_EQ(Unit.Grammars.size(), 1u);
  EXPECT_EQ(Unit.Modules[0].Funs.size(), 2u);
  EXPECT_EQ(Unit.Modules[0].Consts.size(), 1u);
  EXPECT_EQ(Unit.Grammars[0].Operators.size(), 6u);
  EXPECT_EQ(Unit.Grammars[0].Rules.size(), 6u);
  EXPECT_TRUE(Unit.Grammars[0].Phyla[0].IsRoot);
}

TEST(ParserTest, ExpressionPrecedence) {
  DiagnosticEngine D;
  CompilationUnit U =
      parseUnit("module M fun f(x: int): int = 1 + x * 2 end", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  const Expr &Body = *U.Modules[0].Funs[0].Body;
  ASSERT_EQ(Body.Kind, ExprKind::Binary);
  EXPECT_EQ(Body.Name, "+");
  EXPECT_EQ(Body.Children[1]->Kind, ExprKind::Binary);
  EXPECT_EQ(Body.Children[1]->Name, "*");
}

TEST(ParserTest, MatchAndLet) {
  DiagnosticEngine D;
  CompilationUnit U = parseUnit(
      "module M fun f(x: int): int = let y = x + 1 in "
      "match y with | 0 -> 10 | 1 -> 11 | n -> n end end", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  const Expr &Body = *U.Modules[0].Funs[0].Body;
  ASSERT_EQ(Body.Kind, ExprKind::Let);
  ASSERT_EQ(Body.Children[1]->Kind, ExprKind::Match);
  EXPECT_EQ(Body.Children[1]->Arms.size(), 3u);
  EXPECT_EQ(Body.Children[1]->Arms[2].Kind, MatchArm::PatKind::Bind);
}

TEST(ParserTest, ReportsSyntaxErrors) {
  const char *Broken[] = {
      "module",                       // missing name
      "grammar G phylum end",         // missing phylum name
      "module M fun f() = 1 end",     // missing return type
      "module M fun f(): int = end",  // missing body
      "grammar G rules for end end",  // missing operator name
  };
  for (const char *Src : Broken) {
    DiagnosticEngine D;
    parseUnit(Src, D);
    EXPECT_TRUE(D.hasErrors()) << Src;
  }
}

TEST(SemaTest, ChecksCalc) {
  DiagnosticEngine D;
  auto Prog = checkUnit(parseUnit(CalcSource, D), D);
  EXPECT_FALSE(D.hasErrors()) << D.dump();
  EXPECT_TRUE(Prog->Funs.count("bind"));
  EXPECT_TRUE(Prog->Consts.count("zero"));
  EXPECT_EQ(Prog->Consts.at("zero").second.asInt(), 0);
  EXPECT_TRUE(Prog->Aliases.count("env"));
}

TEST(SemaTest, TypeErrors) {
  struct Case {
    const char *Source;
    const char *Expected;
  } Cases[] = {
      {"module M fun f(): int = true end", "declared to return int"},
      {"module M fun f(): int = 1 + \"a\" end", "integer operands"},
      {"module M fun f(): bool = 1 and true end", "boolean operands"},
      {"module M fun f(): int = g(1) end", "unknown function"},
      {"module M fun f(x: int): int = if x then 1 else 2 end",
       "condition must be boolean"},
      {"module M fun f(): int = if true then 1 else \"a\" end",
       "incompatible types"},
      {"module M fun f(): int = y end", "unknown name"},
      {"module M fun f(): int = min(1) end", "expects 2 arguments"},
      {"module M fun f(): string = lookup(emptymap(), \"k\", 7) end",
       "declared to return string"},
      {"module M import Nowhere end", "unknown module"},
      {"module M fun f(): int = 1 end module M2 fun f(): int = 2 end",
       "duplicate function"},
  };
  for (const auto &C : Cases) {
    DiagnosticEngine D;
    checkUnit(parseUnit(C.Source, D), D);
    EXPECT_TRUE(D.hasErrors()) << C.Source;
    EXPECT_NE(D.dump().find(C.Expected), std::string::npos)
        << C.Source << "\n" << D.dump();
  }
}

TEST(SemaTest, GrammarErrors) {
  struct Case {
    const char *Source;
    const char *Expected;
  } Cases[] = {
      {"grammar G phylum A root phylum A operator L() -> A end",
       "duplicate phylum"},
      {"grammar G phylum A operator L() -> A end", "exactly one root"},
      {"grammar G phylum A root attr B syn x : int operator L() -> A end",
       "unknown phylum"},
      {"grammar G phylum A root operator L() -> B end",
       "produces unknown phylum"},
      {"grammar G phylum A root attr A syn s : int operator L() -> A "
       "rules for L A.s := lexeme end end",
       "has no lexeme"},
      {"grammar G phylum A root attr A inh h : int operator L() -> A "
       "rules for L A.h := 1 end end",
       "cannot define inherited"},
      {"grammar G phylum A root attr A syn s : int "
       "operator W(c: A) -> A operator L() -> A "
       "rules for W c.s := 1 end rules for L A.s := 1 end end",
       "cannot define synthesized"},
      {"grammar G phylum A root attr A syn s : int operator L() -> A "
       "rules for L A.s := A.nope end end",
       "no attribute 'nope'"},
      {"grammar G phylum A root attr A syn s : bool operator L() -> A "
       "rules for L A.s := 3 end end",
       "with a value of type int"},
      {"grammar G phylum A root attr A syn s : int operator L() -> A "
       "rules for L t := 3 end end",
       "undeclared local"},
  };
  for (const auto &C : Cases) {
    DiagnosticEngine D;
    checkUnit(parseUnit(C.Source, D), D);
    EXPECT_TRUE(D.hasErrors()) << C.Source;
    EXPECT_NE(D.dump().find(C.Expected), std::string::npos)
        << C.Source << "\n" << D.dump();
  }
}

TEST(SemaTest, ImportVisibilityEnforced) {
  const char *Src = R"molga(
module Hidden fun secret(): int = 42 end
grammar G
  phylum A root
  attr A syn s : int
  operator L() -> A
  rules for L A.s := secret() end
end
)molga";
  DiagnosticEngine D;
  checkUnit(parseUnit(Src, D), D);
  EXPECT_TRUE(D.hasErrors());
  EXPECT_NE(D.dump().find("does not import"), std::string::npos) << D.dump();
}

TEST(DriverTest, EndToEndCalcEvaluation) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(CalcSource, D);
  ASSERT_TRUE(R.Success) << D.dump();
  ASSERT_EQ(R.Grammars.size(), 1u);
  const LoweredGrammar &LG = *R.grammar("Calc");

  // The lowered grammar goes through the full generator and evaluates.
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(LG.AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  EXPECT_EQ(GE.Classes.className(), "OAG(0)");

  Evaluator E(GE.Plan);
  DiagnosticEngine TD;
  Tree T = readTerm(
      LG.AG, "Top(Let<\"x\">(Num<6>,Mul(Var<\"x\">,Add(Var<\"x\">,Num<1>))))",
      TD);
  ASSERT_FALSE(TD.hasErrors()) << TD.dump();
  ASSERT_TRUE(E.evaluate(T, TD)) << TD.dump();
  PhylumId Prog = LG.AG.findPhylum("Prog");
  AttrId Result = LG.AG.findAttr(Prog, "result");
  EXPECT_EQ(T.root()->attrVal(LG.AG.attr(Result).IndexInOwner).asInt(),
            6 * (6 + 1));
  EXPECT_FALSE(LG.RuntimeDiags->hasErrors()) << LG.RuntimeDiags->dump();
}

TEST(DriverTest, AutoCopyGeneratesEnvBroadcast) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(CalcSource, D);
  ASSERT_TRUE(R.Success) << D.dump();
  const AttributeGrammar &AG = R.Grammars[0].AG;
  unsigned AutoCopies = 0;
  for (const SemanticRule &Rule : AG.Rules)
    AutoCopies += Rule.IsAutoGenerated;
  // Add/Mul sons and Let's bound son get their env by auto-copy.
  EXPECT_GE(AutoCopies, 5u);
}

TEST(DriverTest, LocalAttributesLowerAndEvaluate) {
  const char *Src = R"molga(
grammar L
  phylum A root
  attr A syn s : int
  operator Leaf() -> A lexeme int
  rules for Leaf
    local twice : int := lexeme + lexeme
    A.s := twice * 3
  end
end
)molga";
  DiagnosticEngine D;
  CompileResult R = compileMolga(Src, D);
  ASSERT_TRUE(R.Success) << D.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  Evaluator E(GE.Plan);
  DiagnosticEngine TD;
  Tree T = readTerm(R.Grammars[0].AG, "Leaf<7>", TD);
  ASSERT_TRUE(E.evaluate(T, TD)) << TD.dump();
  EXPECT_EQ(T.root()->attrVal(0).asInt(), (7 + 7) * 3);
}

TEST(DriverTest, MatchEvaluates) {
  const char *Src = R"molga(
grammar M
  phylum A root
  attr A syn s : string
  operator Leaf() -> A lexeme int
  rules for Leaf
    A.s := match lexeme with
           | 0 -> "zero"
           | 1 -> "one"
           | 2 -> "two"
           | n -> "many(" ^ tostr(n) ^ ")"
           end
  end
end
)molga";
  DiagnosticEngine D;
  CompileResult R = compileMolga(Src, D);
  ASSERT_TRUE(R.Success) << D.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  Evaluator E(GE.Plan);

  struct Case {
    int Lex;
    const char *Expected;
  } Cases[] = {{0, "zero"}, {1, "one"}, {2, "two"}, {9, "many(9)"}};
  for (const auto &C : Cases) {
    DiagnosticEngine TD;
    Tree T = readTerm(R.Grammars[0].AG,
                      "Leaf<" + std::to_string(C.Lex) + ">", TD);
    ASSERT_TRUE(E.evaluate(T, TD)) << TD.dump();
    EXPECT_EQ(T.root()->attrVal(0).asString(), C.Expected);
  }
}

TEST(OptimizerTest, FoldsConstants) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(
      "module M fun f(): int = 2 * 3 + 4 fun g(): bool = not true end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  EXPECT_GE(R.Optimizer.ConstantsFolded, 2u);
  // f's body is now a literal 10.
  const Expr &Body = *R.Prog->Unit.Modules[0].Funs[0].Body;
  EXPECT_EQ(Body.Kind, ExprKind::IntLit);
  EXPECT_EQ(Body.IntValue, 10);
}

TEST(OptimizerTest, FoldsIfWithConstantCondition) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(
      "module M fun f(x: int): int = if 1 < 2 then x else x * 100 end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  const Expr &Body = *R.Prog->Unit.Modules[0].Funs[0].Body;
  EXPECT_EQ(Body.Kind, ExprKind::Name) << "if-folding selected the branch";
}

TEST(OptimizerTest, DetectsTailRecursion) {
  const char *Src = R"molga(
module M
  fun countdown(n: int, acc: int): int =
    if n <= 0 then acc else countdown(n - 1, acc + n)
  fun slowsum(n: int): int =
    if n <= 0 then 0 else n + slowsum(n - 1)
  fun plain(x: int): int = x + 1
end
)molga";
  DiagnosticEngine D;
  CompileResult R = compileMolga(Src, D);
  ASSERT_TRUE(R.Success) << D.dump();
  EXPECT_EQ(R.Optimizer.FunsAnalyzed, 3u);
  EXPECT_EQ(R.Optimizer.TailRecursiveFuns, 1u);
  EXPECT_TRUE(R.Prog->Unit.Modules[0].Funs[0].TailRecursive);
  EXPECT_FALSE(R.Prog->Unit.Modules[0].Funs[1].TailRecursive);
  EXPECT_FALSE(R.Prog->Unit.Modules[0].Funs[2].TailRecursive);
}

TEST(OptimizerTest, CompilesLiteralMatches) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(
      "module M fun f(x: int): int = match x with | 5 -> 50 | 1 -> 10 "
      "| 3 -> 30 | _ -> 0 end end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  EXPECT_EQ(R.Optimizer.MatchesCompiled, 1u);
  // Arms got sorted for binary-search dispatch.
  const Expr &Body = *R.Prog->Unit.Modules[0].Funs[0].Body;
  ASSERT_EQ(Body.Kind, ExprKind::Match);
  EXPECT_EQ(Body.Arms[0].IntValue, 1);
  EXPECT_EQ(Body.Arms[1].IntValue, 3);
  EXPECT_EQ(Body.Arms[2].IntValue, 5);
  EXPECT_EQ(Body.Arms[3].Kind, MatchArm::PatKind::Wild);
}

TEST(ExprEvalTest, RecursiveFunctions) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(
      "module M fun fib(n: int): int = "
      "if n < 2 then n else fib(n - 1) + fib(n - 2) end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  EvalContext Ctx;
  Ctx.Prog = R.Prog.get();
  Expr Call;
  Call.Kind = ExprKind::Call;
  Call.Name = "fib";
  auto Arg = std::make_unique<Expr>();
  Arg->Kind = ExprKind::IntLit;
  Arg->IntValue = 12;
  Call.Children.push_back(std::move(Arg));
  DiagnosticEngine ED;
  Value V = evalExpr(Call, Ctx, ED);
  ASSERT_FALSE(ED.hasErrors()) << ED.dump();
  EXPECT_EQ(V.asInt(), 144);
}

TEST(ExprEvalTest, FuelStopsRunawayRecursion) {
  DiagnosticEngine D;
  CompileResult R = compileMolga(
      "module M fun loop(n: int): int = loop(n + 1) end", D);
  ASSERT_TRUE(R.Success) << D.dump();
  EvalContext Ctx;
  Ctx.Prog = R.Prog.get();
  Ctx.Fuel = 10000;
  Expr Call;
  Call.Kind = ExprKind::Call;
  Call.Name = "loop";
  auto Arg = std::make_unique<Expr>();
  Arg->Kind = ExprKind::IntLit;
  Call.Children.push_back(std::move(Arg));
  DiagnosticEngine ED;
  evalExpr(Call, Ctx, ED);
  EXPECT_TRUE(ED.hasErrors());
  EXPECT_NE(ED.dump().find("fuel"), std::string::npos);
}

TEST(DriverTest, WellDefinednessCaught) {
  // val of Add's result is never defined: the AG core reports it during
  // lowering (molga's well-definedness check).
  const char *Src = R"molga(
grammar G
  phylum A root
  attr A syn s : int
  operator Leaf() -> A lexeme int
  operator Pair(l: A, r: A) -> A
  rules for Leaf
    A.s := lexeme
  end
end
)molga";
  DiagnosticEngine D;
  CompileResult R = compileMolga(Src, D);
  EXPECT_FALSE(R.Success);
  EXPECT_NE(D.dump().find("no defining rule"), std::string::npos) << D.dump();
}

} // namespace
