//===- tests/FamilyCheck.h - shared evaluator-family checkers ---*- C++ -*-===//
//
// The cross-engine differential machinery shared by DifferentialTest (fresh
// generations) and ArtifactCacheTest (deserialized generations): clone
// helpers, the structural attribution comparator, and runFamily(), which
// drives all six engines — exhaustive compiled + interpreted, demand,
// storage compiled + interpreted, batch, batch-storage — over generated
// trees and cross-checks every one against the sequential exhaustive
// evaluator.
//
//===----------------------------------------------------------------------===//

#ifndef FNC2_TESTS_FAMILYCHECK_H
#define FNC2_TESTS_FAMILYCHECK_H

#include "eval/BatchEvaluator.h"
#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "fnc2/ArtifactCache.h"
#include "fnc2/Generator.h"
#include "storage/BatchStorageEvaluator.h"
#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"

#include <gtest/gtest.h>

namespace fnc2::testutil {

/// Clones \p T into a fresh tree with pristine attribute state.
inline Tree cloneTree(const AttributeGrammar &AG, const Tree &T) {
  Tree C(AG);
  C.setRoot(T.clone(T.root()));
  return C;
}

/// Applies a fixed value for every inherited attribute of the start phylum
/// through \p Set, so grammars whose roots demand context still evaluate.
template <typename EvalT>
void provideRootInherited(const AttributeGrammar &AG, EvalT &E) {
  for (AttrId A : AG.phylum(AG.Start).Attrs)
    if (AG.attr(A).isInherited())
      E.setRootInherited(A, Value::ofInt(7));
}

/// Asserts both trees carry identical attribute instances: same computed
/// masks, structurally equal values; locals compare when both sides did
/// compute them (the variants differ in whether locals survive).
inline void expectSameAttribution(const AttributeGrammar &AG,
                                  const TreeNode *Ref, const TreeNode *Got,
                                  const std::string &Tag) {
  ASSERT_EQ(Ref->Prod, Got->Prod) << Tag;
  ASSERT_EQ(Ref->FrameAttrs, Got->FrameAttrs)
      << Tag << ": attribute slot count at " << AG.prod(Ref->Prod).Name;
  for (unsigned I = 0; I != Ref->FrameAttrs; ++I) {
    EXPECT_EQ(Ref->attrComputed(I), Got->attrComputed(I))
        << Tag << ": computed mask " << I << " at " << AG.prod(Ref->Prod).Name;
    if (Ref->attrComputed(I) && Got->attrComputed(I)) {
      EXPECT_TRUE(Ref->attrVal(I).equals(Got->attrVal(I)))
          << Tag << ": attribute " << I << " at " << AG.prod(Ref->Prod).Name
          << ": " << Ref->attrVal(I).str() << " vs " << Got->attrVal(I).str();
    }
  }
  unsigned Locals = std::min(Ref->FrameLocals, Got->FrameLocals);
  for (unsigned I = 0; I != Locals; ++I)
    if (Ref->localComputed(I) && Got->localComputed(I)) {
      EXPECT_TRUE(Ref->localVal(I).equals(Got->localVal(I)))
          << Tag << ": local " << I << " at " << AG.prod(Ref->Prod).Name;
    }
  ASSERT_EQ(Ref->arity(), Got->arity()) << Tag;
  for (unsigned I = 0; I != Ref->arity(); ++I)
    expectSameAttribution(AG, Ref->child(I), Got->child(I), Tag);
}

/// Runs the whole family over \p NumTrees generated trees of \p AG and
/// cross-checks every variant against the sequential exhaustive evaluator.
/// When \p GE carries a compiled artifact bundle (cache hit or store), the
/// exhaustive and storage engines additionally run borrowing its
/// CompiledPlan/CompiledStorage — the deserialized instruction streams must
/// attribute identically to privately compiled ones.
inline void runFamily(const AttributeGrammar &AG, const GeneratedEvaluator &GE,
                      unsigned NumTrees, unsigned TreeSize, uint64_t Seed) {
  ASSERT_TRUE(GE.Success) << AG.Name;
  TreeGenerator Gen(AG, Seed);

  std::vector<Tree> Sources;
  for (unsigned I = 0; I != NumTrees; ++I)
    Sources.push_back(Gen.generate(TreeSize + 31 * I));

  // Reference: the sequential exhaustive evaluator. SeqTotal accumulates
  // the whole family's per-tree counters for the merge checks below.
  std::vector<Tree> Reference;
  std::vector<EvalStats> RefStats;
  EvalStats SeqTotal;
  for (const Tree &T : Sources) {
    Tree R = cloneTree(AG, T);
    Evaluator E(GE.Plan);
    provideRootInherited(AG, E);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(R, D)) << AG.Name << ": " << D.dump();
    SeqTotal.merge(E.stats());
    RefStats.push_back(E.stats());
    Reference.push_back(std::move(R));
  }

  // Demand-driven evaluation agrees, and — computing each needed instance
  // exactly once while skipping unneeded locals — never runs more rules
  // than the exhaustive evaluator.
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    DemandEvaluator DE(AG);
    provideRootInherited(AG, DE);
    DiagnosticEngine D;
    ASSERT_TRUE(DE.evaluateAll(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/demand");
    EXPECT_LE(DE.stats().RulesEvaluated, RefStats[I].RulesEvaluated)
        << AG.Name << "/demand tree " << I;
  }

  // Storage-optimized evaluation agrees (mirroring writes into the tree).
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    StorageEvaluator SE(GE.Plan, GE.Storage);
    SE.setMirrorToTree(true);
    provideRootInherited(AG, SE);
    DiagnosticEngine D;
    ASSERT_TRUE(SE.evaluate(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/storage");
    EXPECT_EQ(SE.stats().RulesEvaluated, RefStats[I].RulesEvaluated)
        << AG.Name << "/storage tree " << I
        << ": same plan, same tree, same rule executions";
  }

  // The interpreted VisitSequence walk (the FNC2_INTERP_FALLBACK path) must
  // match the compiled instruction stream attribution-for-attribution and
  // counter-for-counter: they are two executions of the same plan.
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    Evaluator E(GE.Plan);
    E.setUseInterpreted(true);
    provideRootInherited(AG, E);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/interp");
    EXPECT_EQ(E.stats().RulesEvaluated, RefStats[I].RulesEvaluated)
        << AG.Name << "/interp tree " << I;
    EXPECT_EQ(E.stats().VisitsPerformed, RefStats[I].VisitsPerformed)
        << AG.Name << "/interp tree " << I;
  }

  // Same check for the storage evaluator's interpreted fallback.
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    StorageEvaluator SE(GE.Plan, GE.Storage);
    SE.setUseInterpreted(true);
    SE.setMirrorToTree(true);
    provideRootInherited(AG, SE);
    DiagnosticEngine D;
    ASSERT_TRUE(SE.evaluate(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/storage-interp");
    EXPECT_EQ(SE.stats().RulesEvaluated, RefStats[I].RulesEvaluated)
        << AG.Name << "/storage-interp tree " << I;
  }

  // Engines borrowing the artifact bundle's deserialized compiled state.
  if (GE.Compiled) {
    const CompiledArtifact &A = *GE.Compiled;
    for (unsigned I = 0; I != NumTrees; ++I) {
      Tree T = cloneTree(AG, Sources[I]);
      Evaluator E(A.Plan, A.CP);
      provideRootInherited(AG, E);
      DiagnosticEngine D;
      ASSERT_TRUE(E.evaluate(T, D)) << AG.Name << ": " << D.dump();
      expectSameAttribution(AG, Reference[I].root(), T.root(),
                            AG.Name + "/artifact-borrowed");
      EXPECT_EQ(E.stats().RulesEvaluated, RefStats[I].RulesEvaluated)
          << AG.Name << "/artifact-borrowed tree " << I;
    }
    if (A.HasStorage)
      for (unsigned I = 0; I != NumTrees; ++I) {
        Tree T = cloneTree(AG, Sources[I]);
        StorageEvaluator SE(A.Plan, GE.Storage, A.CP, A.CS);
        SE.setMirrorToTree(true);
        provideRootInherited(AG, SE);
        DiagnosticEngine D;
        ASSERT_TRUE(SE.evaluate(T, D)) << AG.Name << ": " << D.dump();
        expectSameAttribution(AG, Reference[I].root(), T.root(),
                              AG.Name + "/artifact-borrowed-storage");
      }
  }

  // The batch engine at 4 threads matches the sequential evaluator on every
  // tree, and so does the batched storage evaluator.
  ThreadPool Pool(4);
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchEvaluator BE(GE.Plan, Pool);
    provideRootInherited(AG, BE);
    BatchResult R = BE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded())
        << AG.Name << ": " << R.Outcomes[0].Diags.dump();
    for (unsigned I = 0; I != NumTrees; ++I)
      expectSameAttribution(AG, Reference[I].root(), Batch[I].root(),
                            AG.Name + "/batch");
    // Worker stats merged on join must equal the sequential totals: same
    // trees, same plan, no work lost or double-counted across workers.
    EXPECT_EQ(R.Stats.RulesEvaluated, SeqTotal.RulesEvaluated) << AG.Name;
    EXPECT_EQ(R.Stats.VisitsPerformed, SeqTotal.VisitsPerformed) << AG.Name;
    EXPECT_EQ(R.Stats.InstructionsExecuted, SeqTotal.InstructionsExecuted)
        << AG.Name;
  }
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchStorageEvaluator BSE(GE.Plan, GE.Storage, Pool);
    BSE.setMirrorToTree(true);
    provideRootInherited(AG, BSE);
    BatchStorageResult R = BSE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded())
        << AG.Name << ": " << R.Outcomes[0].Diags.dump();
    for (unsigned I = 0; I != NumTrees; ++I)
      expectSameAttribution(AG, Reference[I].root(), Batch[I].root(),
                            AG.Name + "/batch-storage");
  }
}

} // namespace fnc2::testutil

#endif // FNC2_TESTS_FAMILYCHECK_H
