//===- tests/SupportTest.cpp - support layer unit tests -------------------===//

#include "support/BitMatrix.h"
#include "support/Diagnostics.h"
#include "support/Digraph.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

TEST(BitMatrixTest, SetTestReset) {
  BitMatrix M(3, 70); // spans multiple words per row
  EXPECT_FALSE(M.test(0, 0));
  EXPECT_TRUE(M.set(0, 0));
  EXPECT_FALSE(M.set(0, 0)) << "second set reports no change";
  EXPECT_TRUE(M.test(0, 0));
  EXPECT_TRUE(M.set(2, 69));
  EXPECT_TRUE(M.test(2, 69));
  M.reset(2, 69);
  EXPECT_FALSE(M.test(2, 69));
  EXPECT_EQ(M.count(), 1u);
}

TEST(BitMatrixTest, OrRowDetectsChange) {
  BitMatrix A(2, 10), B(2, 10);
  B.set(1, 3);
  B.set(1, 9);
  EXPECT_TRUE(A.orRow(0, B, 1));
  EXPECT_TRUE(A.test(0, 3));
  EXPECT_TRUE(A.test(0, 9));
  EXPECT_FALSE(A.orRow(0, B, 1)) << "idempotent";
}

TEST(BitMatrixTest, TransitiveClosureChain) {
  BitMatrix M(4, 4);
  M.set(0, 1);
  M.set(1, 2);
  M.set(2, 3);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 3));
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 0));
  EXPECT_FALSE(M.hasReflexiveBit());
}

TEST(BitMatrixTest, TransitiveClosureCycle) {
  BitMatrix M(3, 3);
  M.set(0, 1);
  M.set(1, 0);
  M.transitiveClosure();
  EXPECT_TRUE(M.hasReflexiveBit());
}

TEST(BitMatrixTest, ExtractBitsStraddlesWordBoundary) {
  BitMatrix M(1, 130);
  M.set(0, 62);
  M.set(0, 63);
  M.set(0, 64);
  M.set(0, 129);
  EXPECT_EQ(M.extractBits(0, 62, 3), uint64_t(0b111));
  EXPECT_EQ(M.extractBits(0, 63, 2), uint64_t(0b11));
  EXPECT_EQ(M.extractBits(0, 64, 1), uint64_t(1));
  EXPECT_EQ(M.extractBits(0, 65, 64), uint64_t(0)) << "span [65,129) misses 129";
  EXPECT_EQ(M.extractBits(0, 66, 64), uint64_t(1) << 63) << "129 at rel 63";
  EXPECT_EQ(M.extractBits(0, 0, 64), uint64_t(3) << 62);
  EXPECT_EQ(M.extractBits(0, 129, 1), uint64_t(1));
}

/// Reference implementation of orRowSpan: one bit at a time.
static bool orRowSpanPerBit(BitMatrix &Dst, unsigned DstRow, unsigned DstCol,
                            const BitMatrix &Src, unsigned SrcRow,
                            unsigned SrcCol, unsigned Len, unsigned Skip) {
  bool Changed = false;
  for (unsigned I = 0; I != Len; ++I) {
    if (I == Skip)
      continue;
    if (Src.test(SrcRow, SrcCol + I) && !Dst.test(DstRow, DstCol + I)) {
      Dst.set(DstRow, DstCol + I);
      Changed = true;
    }
  }
  return Changed;
}

TEST(BitMatrixTest, OrRowSpanMatchesPerBitReference) {
  // Exercise every interesting (mis)alignment, including spans that straddle
  // one or two word boundaries, against the naive per-bit loop.
  const unsigned Cols = 200;
  uint64_t Rng = 12345;
  auto nextBit = [&Rng] {
    Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
    return (Rng >> 33) & 1;
  };
  for (unsigned SrcCol : {0u, 1u, 63u, 64u, 65u, 127u}) {
    for (unsigned DstCol : {0u, 1u, 63u, 64u, 65u}) {
      for (unsigned Len : {1u, 2u, 63u, 64u, 65u, 70u}) {
        BitMatrix Src(2, Cols), Fast(2, Cols), Slow(2, Cols);
        for (unsigned C = 0; C != Cols; ++C) {
          if (nextBit())
            Src.set(1, C);
          if (nextBit()) {
            Fast.set(0, C);
            Slow.set(0, C);
          }
        }
        bool A = Fast.orRowSpan(0, DstCol, Src, 1, SrcCol, Len);
        bool B = orRowSpanPerBit(Slow, 0, DstCol, Src, 1, SrcCol, Len,
                                 BitMatrix::NoSkip);
        EXPECT_EQ(A, B) << "changed flag, src=" << SrcCol << " dst=" << DstCol
                        << " len=" << Len;
        EXPECT_TRUE(Fast == Slow)
            << "bits, src=" << SrcCol << " dst=" << DstCol << " len=" << Len;
      }
    }
  }
}

TEST(BitMatrixTest, OrRowSpanSkipProtectsOneBit) {
  BitMatrix Src(1, 128), Dst(1, 128);
  for (unsigned C = 60; C != 70; ++C)
    Src.set(0, C);
  // Skip is relative to DstCol: dest column 65 + 2 = 67 stays clear.
  EXPECT_TRUE(Dst.orRowSpan(0, 65, Src, 0, 60, 10, /*Skip=*/2));
  for (unsigned I = 0; I != 10; ++I)
    EXPECT_EQ(Dst.test(0, 65 + I), I != 2) << "relative bit " << I;
  // A span whose only fresh bit is the skipped one reports no change.
  BitMatrix One(1, 128), Tgt(1, 128);
  One.set(0, 5);
  EXPECT_FALSE(Tgt.orRowSpan(0, 0, One, 0, 0, 10, /*Skip=*/5));
  EXPECT_FALSE(Tgt.test(0, 5));
}

TEST(BitMatrixTest, OrRowSpanCollectReportsNewColumns) {
  BitMatrix Src(1, 140), Dst(1, 140);
  Src.set(0, 0);
  Src.set(0, 63);
  Src.set(0, 64);
  Src.set(0, 90);
  Dst.set(0, 70 + 63); // already set: must not be reported again
  std::vector<unsigned> NewCols;
  // Copy the span [0,100) of Src to dest columns [70,170)... but keep the
  // matrix 140 wide: use Len=70 so the span fits.
  EXPECT_TRUE(Dst.orRowSpanCollect(0, 70, Src, 0, 0, 70, NewCols));
  EXPECT_EQ(NewCols, (std::vector<unsigned>{70, 70 + 64}));
  NewCols.clear();
  EXPECT_FALSE(Dst.orRowSpanCollect(0, 70, Src, 0, 0, 70, NewCols))
      << "idempotent";
  EXPECT_TRUE(NewCols.empty());
}

TEST(BitMatrixTest, CloseWithEdgeMatchesFullWarshall) {
  // Random closed DAG; adding any edge and re-closing incrementally must
  // match orInPlace + full Warshall.
  const unsigned N = 21; // not a multiple of 64: tail-word masking in play
  uint64_t Rng = 99;
  auto next = [&Rng] {
    Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
    return Rng >> 33;
  };
  BitMatrix Base(N, N);
  for (unsigned I = 0; I != 60; ++I) {
    unsigned R = next() % N, C = next() % N;
    Base.set(R, C);
  }
  Base.transitiveClosure();
  for (unsigned Trial = 0; Trial != 40; ++Trial) {
    unsigned From = next() % N, To = next() % N;
    BitMatrix Inc = Base;
    Inc.closeWithEdge(From, To);
    BitMatrix Ref = Base;
    Ref.set(From, To);
    Ref.transitiveClosure();
    EXPECT_TRUE(Inc == Ref) << "edge " << From << "->" << To;
  }
}

TEST(DigraphTest, TopologicalOrderRespectsEdges) {
  Digraph G(4);
  G.addEdge(2, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 3);
  auto Order = G.topologicalOrder();
  ASSERT_TRUE(Order.has_value());
  std::vector<unsigned> Pos(4);
  for (unsigned I = 0; I != 4; ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[2], Pos[0]);
  EXPECT_LT(Pos[0], Pos[1]);
  EXPECT_LT(Pos[1], Pos[3]);
}

TEST(DigraphTest, TopologicalOrderFailsOnCycle) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  EXPECT_FALSE(G.topologicalOrder().has_value());
  EXPECT_TRUE(G.hasCycle());
}

TEST(DigraphTest, TopologicalPriorityBreaksTies) {
  Digraph G(3); // no edges: priority decides fully
  auto Order = G.topologicalOrder(
      [](unsigned N) -> uint64_t { return 2 - N; });
  ASSERT_TRUE(Order.has_value());
  EXPECT_EQ((*Order)[0], 2u);
  EXPECT_EQ((*Order)[2], 0u);
}

TEST(DigraphTest, FindCycleReturnsWitness) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1); // cycle 1-2-3
  auto Cycle = G.findCycle();
  ASSERT_EQ(Cycle.size(), 3u);
  // Each consecutive pair (and the wrap-around) must be a real edge.
  for (size_t I = 0; I != Cycle.size(); ++I)
    EXPECT_TRUE(G.hasEdge(Cycle[I], Cycle[(I + 1) % Cycle.size()]));
}

TEST(DigraphTest, FindCycleEmptyOnDag) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  EXPECT_TRUE(G.findCycle().empty());
}

TEST(DigraphTest, DuplicateEdgesIgnored) {
  Digraph G(2);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(DigraphTest, Reaches) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.reaches(0, 2));
  EXPECT_FALSE(G.reaches(2, 0));
  EXPECT_FALSE(G.reaches(0, 3));
}

TEST(DigraphTest, UnionEdges) {
  Digraph A(3), B(3);
  A.addEdge(0, 1);
  B.addEdge(1, 2);
  A.unionEdges(B);
  EXPECT_TRUE(A.hasEdge(0, 1));
  EXPECT_TRUE(A.hasEdge(1, 2));
}

TEST(DiagnosticsTest, CountsAndDump) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning("watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error("boom", SourceLoc{3, 7});
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Dump = D.dump();
  EXPECT_NE(Dump.find("warning: watch out"), std::string::npos);
  EXPECT_NE(Dump.find("3:7: error: boom"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "count"});
  T.addRow({"alpha", "3"});
  T.addRow({"b", "12345"});
  std::string S = T.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("12345"), std::string::npos);
  // Numeric cells right-align: "3" should be preceded by spaces up to width 5.
  EXPECT_NE(S.find("    3"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::pct(12.34), "12.3%");
}

TEST(MetricsRegistryTest, AddMergesByKind) {
  MetricsRegistry R;
  R.add("total", 3);
  R.add("total", 4);
  EXPECT_EQ(R.value("total"), 7u) << "Sum counters add";
  R.add("peak", 9, MergeKind::Max);
  R.add("peak", 5, MergeKind::Max);
  R.add("peak", 11, MergeKind::Max);
  EXPECT_EQ(R.value("peak"), 11u) << "Max counters keep the largest";
  EXPECT_EQ(R.value("never"), 0u);
  EXPECT_TRUE(R.contains("total"));
  EXPECT_FALSE(R.contains("never"));
}

TEST(MetricsRegistryTest, MergeAndResetPreserveSchema) {
  MetricsRegistry A, B;
  A.add("x", 1);
  A.add("p", 4, MergeKind::Max);
  B.add("x", 2);
  B.add("p", 9, MergeKind::Max);
  B.add("only_b", 5);
  A.merge(B);
  EXPECT_EQ(A.value("x"), 3u);
  EXPECT_EQ(A.value("p"), 9u);
  EXPECT_EQ(A.value("only_b"), 5u);

  A.reset();
  EXPECT_EQ(A.value("x"), 0u);
  EXPECT_TRUE(A.contains("x")) << "reset keeps names, zeroes values";
  A.clear();
  EXPECT_FALSE(A.contains("x"));
}

TEST(MetricsRegistryTest, JsonIsFlatAndInsertionOrdered) {
  MetricsRegistry R;
  R.add("b.second", 2);
  R.add("a.first", 1);
  std::string J = R.json();
  EXPECT_EQ(J, "{\"b.second\": 2, \"a.first\": 1}");
  EXPECT_EQ(MetricsRegistry().json(), "{}");
}

TEST(MetricsRegistryTest, JsonEscapesNames) {
  MetricsRegistry R;
  R.add("quote\"and\\slash", 1);
  EXPECT_EQ(R.json(), "{\"quote\\\"and\\\\slash\": 1}");
  EXPECT_EQ(jsonEscape("tab\tnewline\n"), "tab\\tnewline\\n");
}

// The schema machinery itself, on a local struct: reset zeroes every
// field, merge follows the per-field kind, export lands under the schema
// names.
struct TestStats {
  uint64_t Total = 0;
  uint64_t Peak = 0;

  static std::span<const CounterField<TestStats>> schema() {
    static constexpr CounterField<TestStats> Fields[] = {
        {"test.total", &TestStats::Total},
        {"test.peak", &TestStats::Peak, MergeKind::Max},
    };
    return Fields;
  }
};

TEST(MetricsRegistryTest, SchemaDrivenStatsHelpers) {
  TestStats A{10, 5}, B{3, 8};
  statsMerge(A, B);
  EXPECT_EQ(A.Total, 13u);
  EXPECT_EQ(A.Peak, 8u);

  MetricsRegistry R;
  statsExport(A, R);
  EXPECT_EQ(R.value("test.total"), 13u);
  EXPECT_EQ(R.value("test.peak"), 8u);

  statsReset(A);
  EXPECT_EQ(A.Total, 0u);
  EXPECT_EQ(A.Peak, 0u);
}

} // namespace
