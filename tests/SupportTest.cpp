//===- tests/SupportTest.cpp - support layer unit tests -------------------===//

#include "support/BitMatrix.h"
#include "support/Diagnostics.h"
#include "support/Digraph.h"
#include "support/Metrics.h"
#include "support/TablePrinter.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

TEST(BitMatrixTest, SetTestReset) {
  BitMatrix M(3, 70); // spans multiple words per row
  EXPECT_FALSE(M.test(0, 0));
  EXPECT_TRUE(M.set(0, 0));
  EXPECT_FALSE(M.set(0, 0)) << "second set reports no change";
  EXPECT_TRUE(M.test(0, 0));
  EXPECT_TRUE(M.set(2, 69));
  EXPECT_TRUE(M.test(2, 69));
  M.reset(2, 69);
  EXPECT_FALSE(M.test(2, 69));
  EXPECT_EQ(M.count(), 1u);
}

TEST(BitMatrixTest, OrRowDetectsChange) {
  BitMatrix A(2, 10), B(2, 10);
  B.set(1, 3);
  B.set(1, 9);
  EXPECT_TRUE(A.orRow(0, B, 1));
  EXPECT_TRUE(A.test(0, 3));
  EXPECT_TRUE(A.test(0, 9));
  EXPECT_FALSE(A.orRow(0, B, 1)) << "idempotent";
}

TEST(BitMatrixTest, TransitiveClosureChain) {
  BitMatrix M(4, 4);
  M.set(0, 1);
  M.set(1, 2);
  M.set(2, 3);
  M.transitiveClosure();
  EXPECT_TRUE(M.test(0, 3));
  EXPECT_TRUE(M.test(0, 2));
  EXPECT_TRUE(M.test(1, 3));
  EXPECT_FALSE(M.test(3, 0));
  EXPECT_FALSE(M.hasReflexiveBit());
}

TEST(BitMatrixTest, TransitiveClosureCycle) {
  BitMatrix M(3, 3);
  M.set(0, 1);
  M.set(1, 0);
  M.transitiveClosure();
  EXPECT_TRUE(M.hasReflexiveBit());
}

TEST(DigraphTest, TopologicalOrderRespectsEdges) {
  Digraph G(4);
  G.addEdge(2, 0);
  G.addEdge(0, 1);
  G.addEdge(1, 3);
  auto Order = G.topologicalOrder();
  ASSERT_TRUE(Order.has_value());
  std::vector<unsigned> Pos(4);
  for (unsigned I = 0; I != 4; ++I)
    Pos[(*Order)[I]] = I;
  EXPECT_LT(Pos[2], Pos[0]);
  EXPECT_LT(Pos[0], Pos[1]);
  EXPECT_LT(Pos[1], Pos[3]);
}

TEST(DigraphTest, TopologicalOrderFailsOnCycle) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 0);
  EXPECT_FALSE(G.topologicalOrder().has_value());
  EXPECT_TRUE(G.hasCycle());
}

TEST(DigraphTest, TopologicalPriorityBreaksTies) {
  Digraph G(3); // no edges: priority decides fully
  auto Order = G.topologicalOrder(
      [](unsigned N) -> uint64_t { return 2 - N; });
  ASSERT_TRUE(Order.has_value());
  EXPECT_EQ((*Order)[0], 2u);
  EXPECT_EQ((*Order)[2], 0u);
}

TEST(DigraphTest, FindCycleReturnsWitness) {
  Digraph G(5);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 1); // cycle 1-2-3
  auto Cycle = G.findCycle();
  ASSERT_EQ(Cycle.size(), 3u);
  // Each consecutive pair (and the wrap-around) must be a real edge.
  for (size_t I = 0; I != Cycle.size(); ++I)
    EXPECT_TRUE(G.hasEdge(Cycle[I], Cycle[(I + 1) % Cycle.size()]));
}

TEST(DigraphTest, FindCycleEmptyOnDag) {
  Digraph G(3);
  G.addEdge(0, 1);
  G.addEdge(0, 2);
  EXPECT_TRUE(G.findCycle().empty());
}

TEST(DigraphTest, DuplicateEdgesIgnored) {
  Digraph G(2);
  EXPECT_TRUE(G.addEdge(0, 1));
  EXPECT_FALSE(G.addEdge(0, 1));
  EXPECT_EQ(G.numEdges(), 1u);
}

TEST(DigraphTest, Reaches) {
  Digraph G(4);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  EXPECT_TRUE(G.reaches(0, 2));
  EXPECT_FALSE(G.reaches(2, 0));
  EXPECT_FALSE(G.reaches(0, 3));
}

TEST(DigraphTest, UnionEdges) {
  Digraph A(3), B(3);
  A.addEdge(0, 1);
  B.addEdge(1, 2);
  A.unionEdges(B);
  EXPECT_TRUE(A.hasEdge(0, 1));
  EXPECT_TRUE(A.hasEdge(1, 2));
}

TEST(DiagnosticsTest, CountsAndDump) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning("watch out");
  EXPECT_FALSE(D.hasErrors());
  D.error("boom", SourceLoc{3, 7});
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  std::string Dump = D.dump();
  EXPECT_NE(Dump.find("warning: watch out"), std::string::npos);
  EXPECT_NE(Dump.find("3:7: error: boom"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter T({"name", "count"});
  T.addRow({"alpha", "3"});
  T.addRow({"b", "12345"});
  std::string S = T.str();
  EXPECT_NE(S.find("name"), std::string::npos);
  EXPECT_NE(S.find("12345"), std::string::npos);
  // Numeric cells right-align: "3" should be preceded by spaces up to width 5.
  EXPECT_NE(S.find("    3"), std::string::npos);
}

TEST(TablePrinterTest, NumberFormatting) {
  EXPECT_EQ(TablePrinter::num(1.234, 2), "1.23");
  EXPECT_EQ(TablePrinter::pct(12.34), "12.3%");
}

TEST(MetricsRegistryTest, AddMergesByKind) {
  MetricsRegistry R;
  R.add("total", 3);
  R.add("total", 4);
  EXPECT_EQ(R.value("total"), 7u) << "Sum counters add";
  R.add("peak", 9, MergeKind::Max);
  R.add("peak", 5, MergeKind::Max);
  R.add("peak", 11, MergeKind::Max);
  EXPECT_EQ(R.value("peak"), 11u) << "Max counters keep the largest";
  EXPECT_EQ(R.value("never"), 0u);
  EXPECT_TRUE(R.contains("total"));
  EXPECT_FALSE(R.contains("never"));
}

TEST(MetricsRegistryTest, MergeAndResetPreserveSchema) {
  MetricsRegistry A, B;
  A.add("x", 1);
  A.add("p", 4, MergeKind::Max);
  B.add("x", 2);
  B.add("p", 9, MergeKind::Max);
  B.add("only_b", 5);
  A.merge(B);
  EXPECT_EQ(A.value("x"), 3u);
  EXPECT_EQ(A.value("p"), 9u);
  EXPECT_EQ(A.value("only_b"), 5u);

  A.reset();
  EXPECT_EQ(A.value("x"), 0u);
  EXPECT_TRUE(A.contains("x")) << "reset keeps names, zeroes values";
  A.clear();
  EXPECT_FALSE(A.contains("x"));
}

TEST(MetricsRegistryTest, JsonIsFlatAndInsertionOrdered) {
  MetricsRegistry R;
  R.add("b.second", 2);
  R.add("a.first", 1);
  std::string J = R.json();
  EXPECT_EQ(J, "{\"b.second\": 2, \"a.first\": 1}");
  EXPECT_EQ(MetricsRegistry().json(), "{}");
}

TEST(MetricsRegistryTest, JsonEscapesNames) {
  MetricsRegistry R;
  R.add("quote\"and\\slash", 1);
  EXPECT_EQ(R.json(), "{\"quote\\\"and\\\\slash\": 1}");
  EXPECT_EQ(jsonEscape("tab\tnewline\n"), "tab\\tnewline\\n");
}

// The schema machinery itself, on a local struct: reset zeroes every
// field, merge follows the per-field kind, export lands under the schema
// names.
struct TestStats {
  uint64_t Total = 0;
  uint64_t Peak = 0;

  static std::span<const CounterField<TestStats>> schema() {
    static constexpr CounterField<TestStats> Fields[] = {
        {"test.total", &TestStats::Total},
        {"test.peak", &TestStats::Peak, MergeKind::Max},
    };
    return Fields;
  }
};

TEST(MetricsRegistryTest, SchemaDrivenStatsHelpers) {
  TestStats A{10, 5}, B{3, 8};
  statsMerge(A, B);
  EXPECT_EQ(A.Total, 13u);
  EXPECT_EQ(A.Peak, 8u);

  MetricsRegistry R;
  statsExport(A, R);
  EXPECT_EQ(R.value("test.total"), 13u);
  EXPECT_EQ(R.value("test.peak"), 8u);

  statsReset(A);
  EXPECT_EQ(A.Total, 0u);
  EXPECT_EQ(A.Peak, 0u);
}

} // namespace
