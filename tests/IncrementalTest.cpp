//===- tests/IncrementalTest.cpp - incremental evaluation tests -----------===//

#include "analysis/Classify.h"
#include "incremental/Incremental.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

static EvaluationPlan planFor(const AttributeGrammar &AG) {
  SncResult Snc = runSncTest(AG);
  EXPECT_TRUE(Snc.IsSNC) << AG.Name;
  OagResult Oag = runOagTest(AG, 1);
  TransformResult TR = Oag.IsOAG ? uniformInstances(AG, Oag.Partitions)
                                 : sncToLOrdered(AG, Snc);
  EXPECT_TRUE(TR.Success) << TR.FailureReason;
  EvaluationPlan Plan;
  DiagnosticEngine D;
  EXPECT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  return Plan;
}

static Value rootAttr(const AttributeGrammar &AG, const Tree &T,
                      const std::string &Name) {
  PhylumId Start = AG.prod(T.root()->Prod).Lhs;
  AttrId A = AG.findAttr(Start, Name);
  EXPECT_NE(A, InvalidId);
  return T.root()->attrVal(AG.attr(A).IndexInOwner);
}

TEST(IncrementalTest, SimpleEditPropagates) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);

  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Num<2>))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 3);

  // Replace Num<2> by Num<40>.
  TreeNode *Old = T.root()->child(0)->child(1);
  IE.replaceSubtree(T, Old, T.makeLeaf(AG.findProd("Num"), Value::ofInt(40)));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 41);
}

TEST(IncrementalTest, EqualValueCutsPropagation) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);

  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Add(Num<2>,Num<0>)))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();

  // Replace Num<2> by Sub(Num<5>,Num<3>): same value 2, so the root rule
  // must never be recomputed.
  TreeNode *Old = T.root()->child(0)->child(1)->child(0);
  DiagnosticEngine D2;
  Tree Template = readTerm(AG, "Calc(Sub(Num<5>,Num<3>))", D2);
  IE.replaceSubtree(T, Old, T.clone(Template.root()->child(0)));
  IE.resetStats();
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 3);
  EXPECT_GT(IE.stats().ValuesUnchanged, 0u)
      << "the replacement computes the same value";
}

TEST(IncrementalTest, TwoVisitGrammarEdit) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::repmin(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);

  DiagnosticEngine D;
  Tree T = readTerm(AG, "Top(Fork(Leaf<5>,Fork(Leaf<7>,Leaf<9>)))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "rep").asString(), "(5,(5,5))");

  // Lower the global minimum: every leaf's rep changes.
  TreeNode *Old = T.root()->child(0)->child(1)->child(0); // Leaf<7>
  IE.replaceSubtree(T, Old, T.makeLeaf(AG.findProd("Leaf"), Value::ofInt(1)));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "rep").asString(), "(1,(1,1))");

  // Raise it again so the minimum moves back to another leaf.
  TreeNode *Old2 = T.root()->child(0)->child(1)->child(0);
  IE.replaceSubtree(T, Old2, T.makeLeaf(AG.findProd("Leaf"), Value::ofInt(8)));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "rep").asString(), "(5,(5,5))");
}

TEST(IncrementalTest, MultipleEditsBeforeUpdate) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);

  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Mul(Num<2>,Num<3>)))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 7);

  ProdId Num = AG.findProd("Num");
  IE.replaceSubtree(T, T.root()->child(0)->child(0),
                    T.makeLeaf(Num, Value::ofInt(10)));
  IE.replaceSubtree(T, T.root()->child(0)->child(1)->child(1),
                    T.makeLeaf(Num, Value::ofInt(4)));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 18);
}

TEST(IncrementalTest, StrategiesAgree) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);

  TreeGenerator Gen(AG, 21);
  for (unsigned Round = 0; Round != 6; ++Round) {
    Tree T1 = Gen.generate(150);
    DiagnosticEngine D;
    Tree T2(AG);
    T2.setRoot(T1.clone(T1.root()));

    IncrementalEvaluator A(Plan), B(Plan);
    ASSERT_TRUE(A.initial(T1, D)) << D.dump();
    ASSERT_TRUE(B.initial(T2, D)) << D.dump();

    // Same random edit in both trees.
    auto pickNode = [&](Tree &T, unsigned Hops) {
      TreeNode *N = T.root();
      while (Hops-- && N->arity() != 0)
        N = N->child(Hops % N->arity());
      return N;
    };
    unsigned Hops = 2 + Round;
    TreeNode *E1 = pickNode(T1, Hops);
    TreeNode *E2 = pickNode(T2, Hops);
    ASSERT_EQ(writeTerm(AG, E1), writeTerm(AG, E2));
    ProdId Num = AG.findProd("Num");
    A.replaceSubtree(T1, E1, T1.makeLeaf(Num, Value::ofInt(777)));
    B.replaceSubtree(T2, E2, T2.makeLeaf(Num, Value::ofInt(777)));

    ASSERT_TRUE(A.update(T1, D, UpdateStrategy::StartAnywhere)) << D.dump();
    ASSERT_TRUE(B.update(T2, D, UpdateStrategy::FromRoot)) << D.dump();
    EXPECT_TRUE(rootAttr(AG, T1, "result")
                    .equals(rootAttr(AG, T2, "result")));
  }
}

TEST(IncrementalTest, AgreesWithFullReevaluation) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  Evaluator Full(Plan);
  IncrementalEvaluator IE(Plan);

  TreeGenerator Gen(AG, 5);
  Tree T = Gen.generate(300);
  DiagnosticEngine D;
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();

  // A sequence of random edits, each followed by an incremental update and
  // a from-scratch check on a cloned tree.
  TreeGenerator EditGen(AG, 77);
  for (unsigned Edit = 0; Edit != 8; ++Edit) {
    // Pick a random Exp node (walk down a few steps).
    TreeNode *N = T.root()->child(0);
    for (unsigned Hop = 0; Hop != Edit % 5 && N->arity() != 0; ++Hop)
      N = N->child((Edit + Hop) % N->arity());
    PhylumId Phy = AG.prod(N->Prod).Lhs;
    auto Fresh = EditGen.generateNode(T, Phy, 10 + Edit * 3);
    IE.replaceSubtree(T, N, std::move(Fresh));
    ASSERT_TRUE(IE.update(T, D)) << D.dump();
    Value Incremental = rootAttr(AG, T, "result");

    Tree Check(AG);
    Check.setRoot(T.clone(T.root()));
    ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
    EXPECT_TRUE(Incremental.equals(rootAttr(AG, Check, "result")))
        << "edit " << Edit;
  }
}

TEST(IncrementalTest, WorkProportionalToAffectedRegion) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);

  TreeGenerator Gen(AG, 9);
  Tree T = Gen.generate(4000);
  unsigned TreeSize = T.size();
  DiagnosticEngine D;
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();

  // Edit a deep leaf-ish node.
  TreeNode *N = T.root()->child(0);
  while (N->arity() != 0)
    N = N->child(N->arity() - 1);
  TreeNode *Parent = N->Parent;
  unsigned Idx = N->IndexInParent;
  IE.replaceSubtree(T, Parent->child(Idx),
                    T.makeLeaf(AG.findProd("Num"), Value::ofInt(123456)));
  IE.resetStats();
  ASSERT_TRUE(IE.update(T, D)) << D.dump();

  const IncrementalStats &S = IE.stats();
  EXPECT_LT(S.RulesReevaluated, TreeSize / 4)
      << "incremental work must be far below tree size " << TreeSize;
  EXPECT_GT(S.VisitsSkipped + S.RulesSkipped, 0u);
}

TEST(IncrementalTest, CustomEqualityWidensCutoff) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  IncrementalEvaluator IE(Plan);
  // Application-specific comparison: integers equal modulo 100 (e.g. only
  // the order of magnitude matters downstream).
  IE.setEquality([](const Value &A, const Value &B) {
    if (A.isInt() && B.isInt())
      return A.asInt() % 100 == B.asInt() % 100;
    return A.equals(B);
  });

  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<7>,Num<1>))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  IE.replaceSubtree(T, T.root()->child(0)->child(0),
                    T.makeLeaf(AG.findProd("Num"), Value::ofInt(107)));
  IE.resetStats();
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  // 107 ~ 7 under the custom equality: the sum is never recomputed.
  EXPECT_EQ(rootAttr(AG, T, "result").asInt(), 8);
  EXPECT_GT(IE.stats().ValuesUnchanged, 0u);
}

TEST(IncrementalTest, EditOnMultiPartitionGrammar) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult TR = sncToLOrdered(AG, Snc);
  ASSERT_TRUE(TR.Success);
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  IncrementalEvaluator IE(Plan);

  Tree T = readTerm(AG, "Top(CtxA(LeafX))", D);
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "out").asInt(), 103);

  // Replace the leaf: partitions must carry over to the fresh node.
  IE.replaceSubtree(T, T.root()->child(0)->child(0),
                    T.makeLeaf(AG.findProd("LeafX"), Value()));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  EXPECT_EQ(rootAttr(AG, T, "out").asInt(), 103);
}

} // namespace
