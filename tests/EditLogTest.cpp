//===- tests/EditLogTest.cpp - edit logs and persistent sessions ----------===//
//
// The edit-log subsystem's contract, layer by layer:
//
//  * Codecs — values and subtrees round-trip byte-exactly; malformed
//    streams (bad ids, postorder underflow, lexeme shape mismatches) are
//    rejected with a reason, never crash.
//  * Determinism — the same seed over the same starting tree yields a
//    byte-identical log, and replaying it reproduces the same final
//    attribution as a from-scratch evaluation of the final tree.
//  * Persistence — a quiescent session saved to disk and resumed is
//    bit-identical to the uninterrupted live session (same serialized
//    image, same attribution digest), and stays bit-identical when both
//    keep editing. Checked across the classics, the SpecGen system suite
//    and a seeded fuzz harness.
//  * Robustness — every byte flip and every truncation of a persisted log
//    or session is rejected with a section-prefixed reason (SerializeTest
//    conventions; runs under ASan/UBSan in CI).
//  * Sharing — many sessions over one immutable CompiledArtifact run
//    concurrently with per-session state only (runs under TSan in CI).
//  * Corpus — golden edit logs plus final-attribution digests are
//    committed under tests/goldens/ and regenerable with
//    FNC2_UPDATE_GOLDENS=1.
//
//===----------------------------------------------------------------------===//

#include "FamilyCheck.h"
#include "incremental/Session.h"
#include "olga/Driver.h"
#include "support/ThreadPool.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/EditScriptGen.h"
#include "workloads/MiniPascal.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace fnc2;
using namespace fnc2::testutil;
using serialize::ByteReader;
using serialize::ByteWriter;

namespace {

namespace fs = std::filesystem;

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

std::vector<uint8_t> readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  return {std::istreambuf_iterator<char>(In), std::istreambuf_iterator<char>()};
}

void writeFileBytes(const std::string &Path, std::span<const uint8_t> Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(Out.good()) << Path;
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

/// Builds a started session over a fresh generation of \p AG: shared
/// bundle, deterministic starting tree.
struct SessionRig {
  AttributeGrammar AG;
  GeneratedEvaluator GE;
  std::shared_ptr<const CompiledArtifact> Bundle;

  explicit SessionRig(GrammarFactory Make) {
    DiagnosticEngine Diags;
    AG = Make(Diags);
    EXPECT_FALSE(Diags.hasErrors()) << Diags.dump();
    DiagnosticEngine GD;
    GE = generateEvaluator(AG, GD);
    EXPECT_TRUE(GE.Success) << GD.dump();
    Bundle = compileArtifact(GE);
  }

  Tree startTree(uint64_t Seed, unsigned Size) {
    TreeGenerator Gen(AG, Seed);
    return Gen.generate(Size);
  }

  std::unique_ptr<IncrementalSession>
  freshSession(UpdateStrategy S = UpdateStrategy::StartAnywhere) {
    return std::make_unique<IncrementalSession>(AG, Bundle, S);
  }
};

//===----------------------------------------------------------------------===//
// Value codec
//===----------------------------------------------------------------------===//

TEST(ValueCodec, RoundTripsAllKinds) {
  Value Map = Value::emptyMap()
                  .mapInsert("x", Value::ofInt(1))
                  .mapInsert("y", Value::ofString("s"))
                  .mapInsert("x", Value::ofInt(2)); // shadows the first x
  std::vector<Value> Cases = {
      Value::unit(),
      Value::ofInt(0),
      Value::ofInt(-123456789),
      Value::ofBool(true),
      Value::ofBool(false),
      Value::ofString(""),
      Value::ofString("hello world"),
      Value::ofList({}),
      Value::ofList({Value::ofInt(1), Value::ofString("a"),
                     Value::ofList({Value::ofBool(false)})}),
      Value::emptyMap(),
      Map,
      Value::ofList({Map, Map}),
  };
  for (const Value &V : Cases) {
    ByteWriter W;
    encodeValue(W, V);
    ByteReader R(W.bytes());
    Value Back = decodeValue(R);
    ASSERT_TRUE(R.ok()) << R.error() << " for " << V.str();
    EXPECT_EQ(R.remaining(), 0u);
    EXPECT_TRUE(V.equals(Back)) << V.str() << " vs " << Back.str();
    // Canonical: re-encoding the decoded value is byte-exact.
    ByteWriter W2;
    encodeValue(W2, Back);
    EXPECT_TRUE(W.bytes().size() == W2.bytes().size() &&
                std::equal(W.bytes().begin(), W.bytes().end(),
                           W2.bytes().begin()))
        << V.str();
  }
}

TEST(ValueCodec, RejectsGarbage) {
  {
    ByteWriter W;
    W.u8(99); // no such kind
    ByteReader R(W.bytes());
    decodeValue(R);
    EXPECT_FALSE(R.ok());
  }
  {
    // Nesting bomb: a chain of single-element lists far past the guard.
    ByteWriter W;
    for (int I = 0; I != 200; ++I) {
      W.u8(static_cast<uint8_t>(Value::Kind::List));
      W.u32(1);
    }
    W.u8(static_cast<uint8_t>(Value::Kind::Unit));
    ByteReader R(W.bytes());
    decodeValue(R);
    EXPECT_FALSE(R.ok());
    EXPECT_NE(R.error().find("nesting"), std::string::npos) << R.error();
  }
}

//===----------------------------------------------------------------------===//
// Subtree codec
//===----------------------------------------------------------------------===//

TEST(SubtreeCodec, RoundTripsRandomSubtrees) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {workloads::deskCalculator(Diags),
                           workloads::repmin(Diags),
                           workloads::miniPascal(Diags)};
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  for (const AttributeGrammar &AG : Gs) {
    for (uint64_t Seed : {1u, 5u, 23u}) {
      TreeGenerator Gen(AG, Seed);
      Tree T = Gen.generate(150);
      ByteWriter W;
      encodeSubtree(W, AG, T.root());
      Tree Into(AG);
      ByteReader R(W.bytes());
      std::unique_ptr<TreeNode> Back = decodeSubtree(R, Into);
      ASSERT_TRUE(Back) << AG.Name << ": " << R.error();
      EXPECT_EQ(R.remaining(), 0u);
      EXPECT_EQ(writeTerm(AG, T.root()), writeTerm(AG, Back.get()))
          << AG.Name << " seed " << Seed;
      ByteWriter W2;
      encodeSubtree(W2, AG, Back.get());
      EXPECT_TRUE(W.bytes().size() == W2.bytes().size() &&
                  std::equal(W.bytes().begin(), W.bytes().end(),
                             W2.bytes().begin()))
          << AG.Name << " seed " << Seed;
    }
  }
}

TEST(SubtreeCodec, RejectsMalformedStreams) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  ProdId Leaf = InvalidId, Inner = InvalidId;
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    const Production &Pr = AG.prod(P);
    if (Pr.arity() == 0 && !Pr.HasLexeme && Leaf == InvalidId)
      Leaf = P;
    if (Pr.arity() >= 1 && !Pr.HasLexeme && Inner == InvalidId)
      Inner = P;
  }
  auto expectRejected = [&AG](const ByteWriter &W, const char *Tag) {
    Tree Into(AG);
    ByteReader R(W.bytes());
    std::unique_ptr<TreeNode> N = decodeSubtree(R, Into);
    EXPECT_TRUE(!N || R.remaining() != 0) << Tag;
    if (!N) {
      EXPECT_FALSE(R.ok()) << Tag << ": rejection must latch a reason";
    }
  };
  {
    ByteWriter W;
    W.u32(0); // empty node count
    expectRejected(W, "empty");
  }
  {
    ByteWriter W;
    W.u32(1);
    W.u32(AG.numProds() + 7); // production id out of range
    expectRejected(W, "bad-prod");
  }
  if (Inner != InvalidId) {
    ByteWriter W;
    W.u32(1);
    W.u32(Inner); // postorder underflow: no children on the stack
    expectRejected(W, "underflow");
  }
  if (Leaf != InvalidId) {
    ByteWriter W;
    W.u32(2);
    W.u32(Leaf);
    W.u32(Leaf); // two roots left standing
    expectRejected(W, "two-roots");
  }
}

//===----------------------------------------------------------------------===//
// Replay determinism
//===----------------------------------------------------------------------===//

TEST(EditLogDeterminism, SameSeedYieldsByteIdenticalLogs) {
  SessionRig Rig(workloads::deskCalculator);
  std::vector<uint8_t> First;
  for (int Round = 0; Round != 2; ++Round) {
    Tree T = Rig.startTree(11, 300);
    EditScriptOptions Opts;
    Opts.Seed = 77;
    EditScriptGen Gen(Rig.AG, Opts);
    EditLog Log = Gen.generate(T, 120);
    EXPECT_EQ(Log.size(), 120u);
    std::vector<uint8_t> Bytes = Log.encodeFile(Rig.AG);
    if (Round == 0)
      First = std::move(Bytes);
    else
      EXPECT_EQ(First, Bytes) << "same seed, same start tree, different log";
  }
  // A different seed diverges (scripts are not degenerate).
  Tree T = Rig.startTree(11, 300);
  EditScriptOptions Opts;
  Opts.Seed = 78;
  EditScriptGen Gen(Rig.AG, Opts);
  EXPECT_NE(First, Gen.generate(T, 120).encodeFile(Rig.AG));
}

TEST(EditLogDeterminism, ReplayMatchesFromScratchOracle) {
  for (GrammarFactory Make :
       {workloads::deskCalculator, workloads::repmin, workloads::miniPascal}) {
    SessionRig Rig(Make);
    // Generate the script structurally against a copy of the start tree...
    Tree Final = Rig.startTree(3, 400);
    EditScriptOptions Opts;
    Opts.Seed = 5;
    EditScriptGen Gen(Rig.AG, Opts);
    EditLog Log = Gen.generate(Final, 60);

    // ...then replay it through a live session from the same start tree.
    auto S = Rig.freshSession();
    DiagnosticEngine D;
    ASSERT_TRUE(S->start(Rig.startTree(3, 400), D)) << D.dump();
    ASSERT_TRUE(S->replay(Log, D)) << Rig.AG.Name << ": " << D.dump();
    EXPECT_EQ(S->log().size(), 60u);

    // The session's tree is the generator's final tree...
    EXPECT_EQ(writeTerm(Rig.AG, Final.root()),
              writeTerm(Rig.AG, S->tree().root()));
    // ...and its attribution equals a from-scratch evaluation of it.
    Tree Check = cloneTree(Rig.AG, S->tree());
    Evaluator Full(Rig.GE.Plan);
    ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
    expectSameAttribution(Rig.AG, Check.root(), S->tree().root(),
                          Rig.AG.Name + "/replayed");
  }
}

//===----------------------------------------------------------------------===//
// Log file round trip + corruption injection
//===----------------------------------------------------------------------===//

TEST(EditLogRoundTrip, FileRoundTripsByteExact) {
  SessionRig Rig(workloads::repmin);
  Tree T = Rig.startTree(9, 250);
  EditScriptOptions Opts;
  Opts.Seed = 13;
  EditScriptGen Gen(Rig.AG, Opts);
  EditLog Log = Gen.generate(T, 80);
  std::vector<uint8_t> Bytes = Log.encodeFile(Rig.AG);

  EditLog Back;
  std::string Reason;
  ASSERT_TRUE(EditLog::decodeFile(Bytes, Rig.AG, Back, Reason)) << Reason;
  ASSERT_EQ(Back.size(), Log.size());
  EXPECT_EQ(Back.encodeFile(Rig.AG), Bytes);
}

TEST(EditLogRoundTrip, WrongGrammarRejected) {
  DiagnosticEngine Diags;
  AttributeGrammar Desk = workloads::deskCalculator(Diags);
  AttributeGrammar Rep = workloads::repmin(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  TreeGenerator Gen(Desk, 2);
  Tree T = Gen.generate(120);
  EditScriptGen SG(Desk, {.Seed = 4});
  std::vector<uint8_t> Bytes = SG.generate(T, 10).encodeFile(Desk);

  EditLog Back;
  std::string Reason;
  EXPECT_FALSE(EditLog::decodeFile(Bytes, Rep, Back, Reason));
  EXPECT_FALSE(Reason.empty());
}

TEST(EditLogCorruption, EveryByteFlipAndTruncationRejected) {
  SessionRig Rig(workloads::deskCalculator);
  Tree T = Rig.startTree(21, 60);
  EditScriptGen Gen(Rig.AG, {.Seed = 6});
  std::vector<uint8_t> Bytes = Gen.generate(T, 6).encodeFile(Rig.AG);
  ASSERT_FALSE(Bytes.empty());

  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x5A;
    EditLog Out;
    std::string Reason;
    EXPECT_FALSE(EditLog::decodeFile(Bad, Rig.AG, Out, Reason))
        << "flip at byte " << I << " accepted";
    EXPECT_FALSE(Reason.empty()) << "flip at byte " << I;
  }
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Bad(Bytes.begin(), Bytes.begin() + Len);
    EditLog Out;
    std::string Reason;
    EXPECT_FALSE(EditLog::decodeFile(Bad, Rig.AG, Out, Reason))
        << "truncation to " << Len << " bytes accepted";
  }
}

//===----------------------------------------------------------------------===//
// Session persistence: bit-identical resume
//===----------------------------------------------------------------------===//

/// Drives \p Live and \p Resumed through the same \p Extra ops and demands
/// byte-identical serialized images (tree, frames, stamps, log) after each.
void expectLockstep(SessionRig &Rig, IncrementalSession &Live,
                    IncrementalSession &Resumed, const EditLog &Extra) {
  DiagnosticEngine D;
  for (size_t I = 0; I != Extra.size(); ++I) {
    ASSERT_TRUE(Live.apply(Extra.op(I), D)) << D.dump();
    ASSERT_TRUE(Resumed.apply(Extra.op(I), D)) << D.dump();
    EXPECT_EQ(Live.attributionDigest(), Resumed.attributionDigest())
        << Rig.AG.Name << " diverged at continued edit " << I;
  }
  std::vector<uint8_t> A, B;
  std::string Why;
  ASSERT_TRUE(Live.encode(A, Why)) << Why;
  ASSERT_TRUE(Resumed.encode(B, Why)) << Why;
  EXPECT_EQ(A, B) << Rig.AG.Name
                  << ": resumed session drifted from the live one";
}

TEST(SessionPersistence, ResumeIsBitIdenticalAndStaysSo) {
  for (GrammarFactory Make : {workloads::deskCalculator, workloads::repmin,
                              workloads::miniPascal}) {
    SessionRig Rig(Make);
    auto Live = Rig.freshSession();
    DiagnosticEngine D;
    ASSERT_TRUE(Live->start(Rig.startTree(8, 800), D)) << D.dump();
    EditScriptGen Gen(Rig.AG, {.Seed = 31});
    for (unsigned I = 0; I != 40; ++I)
      ASSERT_TRUE(Live->apply(Gen.next(Live->tree()), D)) << D.dump();

    std::vector<uint8_t> Saved;
    std::string Why;
    ASSERT_TRUE(Live->encode(Saved, Why)) << Why;

    auto Resumed = Rig.freshSession();
    std::string Reason;
    ASSERT_TRUE(Resumed->restore(Saved, Reason)) << Rig.AG.Name << ": "
                                                 << Reason;
    // Bit-identical now: same digest, same serialized image.
    EXPECT_EQ(Live->attributionDigest(), Resumed->attributionDigest());
    std::vector<uint8_t> Resaved;
    ASSERT_TRUE(Resumed->encode(Resaved, Why)) << Why;
    EXPECT_EQ(Saved, Resaved);
    EXPECT_EQ(Resumed->log().size(), 40u);

    // And still bit-identical after both keep editing: build the
    // continuation script against a structural copy of the shared state.
    Tree Copy = cloneTree(Rig.AG, Live->tree());
    EditScriptGen Cont(Rig.AG, {.Seed = 97});
    EditLog Extra = Cont.generate(Copy, 15);
    expectLockstep(Rig, *Live, *Resumed, Extra);
  }
}

TEST(SessionPersistence, RefusesToSaveMidEdit) {
  SessionRig Rig(workloads::deskCalculator);
  auto S = Rig.freshSession();
  DiagnosticEngine D;
  std::vector<uint8_t> Bytes;
  std::string Why;
  EXPECT_FALSE(S->encode(Bytes, Why)); // never started
  EXPECT_FALSE(Why.empty());

  ASSERT_TRUE(S->start(Rig.startTree(1, 100), D)) << D.dump();
  // Record an edit but skip the update: the session is not quiescent.
  EditScriptGen Gen(Rig.AG, {.Seed = 2});
  EditOp Op = Gen.next(S->tree());
  ASSERT_TRUE(S->log().empty());
  size_t Idx = const_cast<EditLog &>(S->log()).append(Op); // test-only poke
  ASSERT_TRUE(S->log().apply(Idx, S->tree(), &S->evaluator(), D)) << D.dump();
  EXPECT_FALSE(S->encode(Bytes, Why));
  EXPECT_NE(Why.find("pending"), std::string::npos) << Why;
  // After the update it saves again.
  ASSERT_TRUE(S->evaluator().update(S->tree(), D)) << D.dump();
  EXPECT_TRUE(S->encode(Bytes, Why)) << Why;
}

TEST(SessionPersistence, SpecGenSweepRoundTripsBitIdentically) {
  auto Suite = workloads::systemAgSuite();
  ASSERT_GE(Suite.size(), 7u);
  // Two ends of the class spectrum: OAG(0) module-dependency and the
  // OAG(1) C-translation analogue.
  for (size_t Idx : {size_t(0), Suite.size() - 1}) {
    const workloads::SystemAg &Ag = Suite[Idx];
    DiagnosticEngine Diags;
    olga::CompileResult R = olga::compileMolga(Ag.Source, Diags);
    ASSERT_TRUE(R.Success) << Ag.Name << ": " << Diags.dump();
    const AttributeGrammar &AG = R.Grammars[0].AG;
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Ag.Name << ": " << GD.dump();
    std::shared_ptr<const CompiledArtifact> Bundle = compileArtifact(GE);

    IncrementalSession Live(AG, Bundle);
    provideRootInherited(AG, Live);
    DiagnosticEngine D;
    TreeGenerator Gen(AG, 41 + Idx);
    ASSERT_TRUE(Live.start(Gen.generate(500), D)) << Ag.Name << D.dump();
    EditScriptGen SG(AG, {.Seed = 19 + Idx});
    for (unsigned I = 0; I != 12; ++I)
      ASSERT_TRUE(Live.apply(SG.next(Live.tree()), D))
          << Ag.Name << ": " << D.dump();

    std::vector<uint8_t> Saved;
    std::string Why;
    ASSERT_TRUE(Live.encode(Saved, Why)) << Ag.Name << ": " << Why;
    IncrementalSession Resumed(AG, Bundle);
    provideRootInherited(AG, Resumed);
    std::string Reason;
    ASSERT_TRUE(Resumed.restore(Saved, Reason)) << Ag.Name << ": " << Reason;
    EXPECT_EQ(Live.attributionDigest(), Resumed.attributionDigest())
        << Ag.Name;
    std::vector<uint8_t> Resaved;
    ASSERT_TRUE(Resumed.encode(Resaved, Why)) << Why;
    EXPECT_EQ(Saved, Resaved) << Ag.Name;
  }
}

//===----------------------------------------------------------------------===//
// Session corruption injection
//===----------------------------------------------------------------------===//

TEST(SessionCorruption, EveryByteFlipAndTruncationRejected) {
  SessionRig Rig(workloads::deskCalculator);
  auto S = Rig.freshSession();
  DiagnosticEngine D;
  ASSERT_TRUE(S->start(Rig.startTree(5, 50), D)) << D.dump();
  EditScriptGen Gen(Rig.AG, {.Seed = 8});
  for (unsigned I = 0; I != 3; ++I)
    ASSERT_TRUE(S->apply(Gen.next(S->tree()), D)) << D.dump();
  std::vector<uint8_t> Bytes;
  std::string Why;
  ASSERT_TRUE(S->encode(Bytes, Why)) << Why;

  auto Victim = Rig.freshSession();
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x5A;
    std::string Reason;
    EXPECT_FALSE(Victim->restore(Bad, Reason))
        << "flip at byte " << I << " accepted";
    EXPECT_FALSE(Reason.empty()) << "flip at byte " << I;
  }
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Bad(Bytes.begin(), Bytes.begin() + Len);
    std::string Reason;
    EXPECT_FALSE(Victim->restore(Bad, Reason))
        << "truncation to " << Len << " bytes accepted";
  }
  // After all that abuse the victim still restores the good image.
  std::string Reason;
  EXPECT_TRUE(Victim->restore(Bytes, Reason)) << Reason;
  EXPECT_EQ(Victim->attributionDigest(), S->attributionDigest());
}

TEST(SessionCorruption, WrongGrammarAndWrongPlanRejected) {
  SessionRig Desk(workloads::deskCalculator);
  SessionRig Rep(workloads::repmin);
  auto S = Desk.freshSession();
  DiagnosticEngine D;
  ASSERT_TRUE(S->start(Desk.startTree(1, 80), D)) << D.dump();
  std::vector<uint8_t> Bytes;
  std::string Why;
  ASSERT_TRUE(S->encode(Bytes, Why)) << Why;

  auto Other = Rep.freshSession();
  std::string Reason;
  EXPECT_FALSE(Other->restore(Bytes, Reason));
  EXPECT_FALSE(Reason.empty());
}

//===----------------------------------------------------------------------===//
// Seeded fuzz: resumed-from-disk vs live across random scripts
//===----------------------------------------------------------------------===//

TEST(SessionFuzz, ResumedSessionsMatchLiveAcrossRandomScripts) {
  SessionRig Desk(workloads::deskCalculator);
  SessionRig Rep(workloads::repmin);
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SessionRig &Rig = (Seed % 2) ? Desk : Rep;
    UpdateStrategy Strategy =
        (Seed % 3) ? UpdateStrategy::StartAnywhere : UpdateStrategy::FromRoot;
    auto Live = Rig.freshSession(Strategy);
    DiagnosticEngine D;
    ASSERT_TRUE(Live->start(Rig.startTree(Seed, 200 + unsigned(Seed) * 60), D))
        << D.dump();
    EditScriptGen Gen(Rig.AG, {.Seed = Seed * 1013});
    unsigned Prefix = 5 + unsigned(Seed % 4) * 5;
    for (unsigned I = 0; I != Prefix; ++I)
      ASSERT_TRUE(Live->apply(Gen.next(Live->tree()), D)) << D.dump();

    // Snapshot mid-session, resume elsewhere, continue both identically.
    std::vector<uint8_t> Saved;
    std::string Why;
    ASSERT_TRUE(Live->encode(Saved, Why)) << Why;
    auto Resumed = Rig.freshSession(Strategy);
    std::string Reason;
    ASSERT_TRUE(Resumed->restore(Saved, Reason)) << Reason;

    Tree Copy = cloneTree(Rig.AG, Live->tree());
    EditScriptGen Cont(Rig.AG, {.Seed = Seed * 7919});
    EditLog Extra = Cont.generate(Copy, 10);
    expectLockstep(Rig, *Live, *Resumed, Extra);

    // Both equal the from-scratch oracle on the final tree.
    Tree Check = cloneTree(Rig.AG, Live->tree());
    Evaluator Full(Rig.GE.Plan);
    ASSERT_TRUE(Full.evaluate(Check, D)) << D.dump();
    expectSameAttribution(Rig.AG, Check.root(), Resumed->tree().root(),
                          "fuzz seed " + std::to_string(Seed));
  }
}

//===----------------------------------------------------------------------===//
// SessionStore: the on-disk path
//===----------------------------------------------------------------------===//

TEST(SessionStoreTest, StoresAndLoadsThroughDisk) {
  std::string Dir = ::testing::TempDir() + "fnc2-session-store";
  fs::remove_all(Dir);

  SessionRig Rig(workloads::deskCalculator);
  auto S = Rig.freshSession();
  DiagnosticEngine D;
  ASSERT_TRUE(S->start(Rig.startTree(4, 300), D)) << D.dump();
  EditScriptGen Gen(Rig.AG, {.Seed = 12});
  for (unsigned I = 0; I != 10; ++I)
    ASSERT_TRUE(S->apply(Gen.next(S->tree()), D)) << D.dump();

  SessionStore Store(Dir);
  std::string Reason;
  ASSERT_TRUE(Store.store(*S, "editor", Reason)) << Reason;
  EXPECT_TRUE(fs::exists(Store.pathFor(Rig.AG, "editor")));

  auto Back = Rig.freshSession();
  ASSERT_TRUE(Store.load(*Back, "editor", Reason)) << Reason;
  EXPECT_EQ(S->attributionDigest(), Back->attributionDigest());
  EXPECT_EQ(Back->log().size(), 10u);

  EXPECT_FALSE(Store.load(*Back, "no-such-session", Reason));
  EXPECT_FALSE(Reason.empty());
}

//===----------------------------------------------------------------------===//
// Concurrency: many sessions, one immutable plan (TSan-gated in CI)
//===----------------------------------------------------------------------===//

TEST(EditLogConcurrency, ManySessionsShareOneCompiledPlan) {
  SessionRig Rig(workloads::repmin);
  constexpr unsigned NumSessions = 8;
  constexpr unsigned EditsPerSession = 25;

  // Reference digests, computed sequentially.
  std::vector<uint64_t> Want(NumSessions);
  for (unsigned I = 0; I != NumSessions; ++I) {
    auto S = Rig.freshSession();
    DiagnosticEngine D;
    ASSERT_TRUE(S->start(Rig.startTree(100 + I, 400), D)) << D.dump();
    EditScriptGen Gen(Rig.AG, {.Seed = 500 + I});
    for (unsigned E = 0; E != EditsPerSession; ++E)
      ASSERT_TRUE(S->apply(Gen.next(S->tree()), D)) << D.dump();
    Want[I] = S->attributionDigest();
  }

  // The same work, all sessions racing on the one shared bundle.
  std::vector<uint64_t> Got(NumSessions, 0);
  std::vector<uint8_t> Ok(NumSessions, 0);
  ThreadPool Pool(4);
  Pool.parallelFor(NumSessions, [&](size_t I, unsigned) {
    IncrementalSession S(Rig.AG, Rig.Bundle);
    DiagnosticEngine D;
    TreeGenerator Gen(Rig.AG, 100 + I);
    if (!S.start(Gen.generate(400), D))
      return;
    EditScriptGen SG(Rig.AG, {.Seed = 500 + I});
    for (unsigned E = 0; E != EditsPerSession; ++E)
      if (!S.apply(SG.next(S.tree()), D))
        return;
    Got[I] = S.attributionDigest();
    Ok[I] = 1;
  });
  for (unsigned I = 0; I != NumSessions; ++I) {
    EXPECT_TRUE(Ok[I]) << "session " << I << " failed";
    EXPECT_EQ(Got[I], Want[I]) << "session " << I
                               << " diverged under sharing";
  }
}

//===----------------------------------------------------------------------===//
// Golden corpus: committed logs + final-attribution digests
//===----------------------------------------------------------------------===//

struct CorpusEntry {
  const char *Tag;
  GrammarFactory Make;
  uint64_t TreeSeed;
  unsigned TreeSize;
  uint64_t ScriptSeed;
  unsigned Edits;
};

class EditLogGoldenTest : public ::testing::TestWithParam<CorpusEntry> {};

// The replayable regression corpus: a committed edit log must still decode,
// still replay, and still produce the committed final-attribution digest.
// Regenerate with FNC2_UPDATE_GOLDENS=1 after intentional format or
// semantics changes.
TEST_P(EditLogGoldenTest, CorpusReplaysToCommittedDigest) {
  const CorpusEntry &E = GetParam();
  SessionRig Rig(E.Make);

  // Deterministic regeneration of the corpus entry.
  Tree Scratch = Rig.startTree(E.TreeSeed, E.TreeSize);
  EditScriptGen Gen(Rig.AG, {.Seed = E.ScriptSeed});
  EditLog Log = Gen.generate(Scratch, E.Edits);
  std::vector<uint8_t> Bytes = Log.encodeFile(Rig.AG);

  auto S = Rig.freshSession();
  DiagnosticEngine D;
  ASSERT_TRUE(S->start(Rig.startTree(E.TreeSeed, E.TreeSize), D)) << D.dump();
  ASSERT_TRUE(S->replay(Log, D)) << D.dump();
  char Digest[17];
  std::snprintf(Digest, sizeof(Digest), "%016llx",
                static_cast<unsigned long long>(S->attributionDigest()));

  const std::string LogPath =
      std::string(FNC2_GOLDEN_DIR) + "/editlog_" + E.Tag + ".golden";
  const std::string DigestPath =
      std::string(FNC2_GOLDEN_DIR) + "/editlog_" + E.Tag + ".digest";
  if (std::getenv("FNC2_UPDATE_GOLDENS")) {
    writeFileBytes(LogPath, Bytes);
    std::string Line = std::string(Digest) + "\n";
    writeFileBytes(DigestPath, std::span<const uint8_t>(
                                   reinterpret_cast<const uint8_t *>(
                                       Line.data()),
                                   Line.size()));
    return;
  }

  std::vector<uint8_t> GoldenLog = readFileBytes(LogPath);
  ASSERT_FALSE(GoldenLog.empty())
      << "missing golden " << LogPath
      << " (regenerate with FNC2_UPDATE_GOLDENS=1)";
  EXPECT_EQ(GoldenLog, Bytes)
      << "edit-log bytes drifted from " << LogPath
      << " — bump serialize::kFormatVersion if the layout changed and "
         "regenerate with FNC2_UPDATE_GOLDENS=1";

  std::vector<uint8_t> GoldenDigest = readFileBytes(DigestPath);
  ASSERT_FALSE(GoldenDigest.empty()) << "missing golden " << DigestPath;
  std::string WantDigest(GoldenDigest.begin(), GoldenDigest.end());
  while (!WantDigest.empty() &&
         (WantDigest.back() == '\n' || WantDigest.back() == '\r'))
    WantDigest.pop_back();
  EXPECT_EQ(WantDigest, std::string(Digest))
      << E.Tag << ": final attribution drifted from the committed corpus";

  // The committed bytes themselves still decode and replay to the same end.
  EditLog FromGolden;
  std::string Reason;
  ASSERT_TRUE(EditLog::decodeFile(GoldenLog, Rig.AG, FromGolden, Reason))
      << Reason;
  auto S2 = Rig.freshSession();
  ASSERT_TRUE(S2->start(Rig.startTree(E.TreeSeed, E.TreeSize), D)) << D.dump();
  ASSERT_TRUE(S2->replay(FromGolden, D)) << D.dump();
  EXPECT_EQ(S2->attributionDigest(), S->attributionDigest());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, EditLogGoldenTest,
    ::testing::Values(
        CorpusEntry{"desk", workloads::deskCalculator, 7, 400, 1001, 60},
        CorpusEntry{"repmin", workloads::repmin, 7, 400, 1002, 60},
        CorpusEntry{"minipascal", workloads::miniPascal, 7, 500, 1003, 60}),
    [](const ::testing::TestParamInfo<CorpusEntry> &I) {
      return std::string(I.param.Tag);
    });

} // namespace
