//===- tests/AnalysisTest.cpp - circularity test suite --------------------===//

#include "analysis/Classify.h"
#include "olga/Driver.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

TEST(SncTest, AcceptsDeskCalculator) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  SncResult R = runSncTest(AG);
  EXPECT_TRUE(R.IsSNC);
  EXPECT_TRUE(R.Witness.empty());
  // Exp: env -> val in the IO relation (value depends on environment).
  PhylumId Exp = AG.findPhylum("Exp");
  AttrId Env = AG.findAttr(Exp, "env");
  AttrId Val = AG.findAttr(Exp, "val");
  EXPECT_TRUE(R.IO[Exp].test(AG.attr(Env).IndexInOwner,
                             AG.attr(Val).IndexInOwner));
}

TEST(SncTest, AcceptsBinaryNumbersWithLenScaleFeedback) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult R = runSncTest(AG);
  EXPECT_TRUE(R.IsSNC);
  PhylumId List = AG.findPhylum("List");
  AttrId Scale = AG.findAttr(List, "scale");
  AttrId Val = AG.findAttr(List, "val");
  AttrId Len = AG.findAttr(List, "len");
  EXPECT_TRUE(R.IO[List].test(AG.attr(Scale).IndexInOwner,
                              AG.attr(Val).IndexInOwner));
  // len does not depend on scale.
  EXPECT_FALSE(R.IO[List].test(AG.attr(Scale).IndexInOwner,
                               AG.attr(Len).IndexInOwner));
}

TEST(SncTest, RejectsCircularGrammarWithWitness) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::circularGrammar(Diags);
  SncResult R = runSncTest(AG);
  EXPECT_FALSE(R.IsSNC);
  ASSERT_FALSE(R.Witness.empty());
  EXPECT_EQ(AG.prod(R.Witness.Prod).Name, "Top");
  std::string Trace = formatCircularityTrace(AG, R.Witness, &R.IO, nullptr);
  EXPECT_NE(Trace.find("circularity in operator 'Top'"), std::string::npos);
  EXPECT_NE(Trace.find("induced from below"), std::string::npos) << Trace;
}

TEST(NcTest, AgreesWithSncOnClassicGrammars) {
  DiagnosticEngine Diags;
  // On these grammars plain NC and SNC coincide.
  AttributeGrammar Good[] = {workloads::deskCalculator(Diags),
                             workloads::binaryNumbers(Diags),
                             workloads::repmin(Diags),
                             workloads::twoContextGrammar(Diags)};
  ASSERT_FALSE(Diags.hasErrors());
  for (const AttributeGrammar &AG : Good) {
    NcResult R = runNcTest(AG);
    EXPECT_FALSE(R.GaveUp) << AG.Name;
    EXPECT_TRUE(R.IsNC) << AG.Name;
  }
  AttributeGrammar Bad = workloads::circularGrammar(Diags);
  NcResult R = runNcTest(Bad);
  EXPECT_FALSE(R.IsNC);
  EXPECT_FALSE(R.Witness.empty());
}

TEST(DncTest, AcceptsSingleContextGrammars) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC);
  DncResult R = runDncTest(AG, Snc);
  EXPECT_TRUE(R.IsDNC);
  // The fraction context injects len -> scale from above on List.
  PhylumId List = AG.findPhylum("List");
  AttrId Scale = AG.findAttr(List, "scale");
  AttrId Len = AG.findAttr(List, "len");
  EXPECT_TRUE(R.OI[List].test(AG.attr(Len).IndexInOwner,
                              AG.attr(Scale).IndexInOwner));
}

TEST(DncTest, RejectsTwoContextGrammar) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC) << "two-context grammar must be SNC";
  DncResult R = runDncTest(AG, Snc);
  EXPECT_FALSE(R.IsDNC) << "opposite context orders union into an OI cycle";
  EXPECT_FALSE(R.Witness.empty());
}

TEST(OagTest, DeskCalculatorIsOag0) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  OagResult R = runOagTest(AG, 0);
  ASSERT_TRUE(R.IsOAG);
  EXPECT_EQ(R.UsedK, 0u);
  // Exp gets the 1-visit partition [env | val].
  PhylumId Exp = AG.findPhylum("Exp");
  EXPECT_EQ(R.Partitions[Exp].numVisits(), 1u);
  EXPECT_EQ(R.Partitions[Exp].numBlocks(), 2u);
}

TEST(OagTest, BinaryNumbersIsOag0WithTwoVisits) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  OagResult R = runOagTest(AG, 0);
  ASSERT_TRUE(R.IsOAG);
  PhylumId List = AG.findPhylum("List");
  EXPECT_EQ(R.Partitions[List].numVisits(), 2u)
      << R.Partitions[List].str(AG, List);
  // len comes back in visit 1, scale goes down in visit 2.
  AttrId Len = AG.findAttr(List, "len");
  AttrId Scale = AG.findAttr(List, "scale");
  EXPECT_LT(R.Partitions[List].blockOf(AG.attr(Len).IndexInOwner),
            R.Partitions[List].blockOf(AG.attr(Scale).IndexInOwner));
}

TEST(OagTest, Oag1GrammarNeedsOneRepair) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::oag1Grammar(Diags);
  OagResult R0 = runOagTest(AG, 0);
  EXPECT_FALSE(R0.IsOAG) << "must fail with the default peel";
  EXPECT_FALSE(R0.Witness.empty());
  OagResult R1 = runOagTest(AG, 1);
  ASSERT_TRUE(R1.IsOAG) << "one repair round must fix the partition";
  EXPECT_EQ(R1.UsedK, 1u);
  PhylumId X = AG.findPhylum("X");
  EXPECT_EQ(R1.Partitions[X].numVisits(), 2u)
      << R1.Partitions[X].str(AG, X);
}

TEST(OagTest, ConflictTriangleNeedsSeveralRepairs) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::dncNotOagGrammar(Diags);
  // The triangle of sibling conflicts defeats the default test and a single
  // repair round; only a larger budget eventually splits all pairings.
  EXPECT_FALSE(runOagTest(AG, 0).IsOAG);
  EXPECT_FALSE(runOagTest(AG, 1).IsOAG);
  OagResult R = runOagTest(AG, 8);
  if (R.IsOAG)
    EXPECT_GE(R.UsedK, 2u);
  // It is DNC regardless.
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC);
  EXPECT_TRUE(runDncTest(AG, Snc).IsDNC);
}

TEST(ClassifyTest, ClassCascade) {
  DiagnosticEngine Diags;
  struct Case {
    AttributeGrammar AG;
    AgClass Expected;
    const char *Name;
  };
  Case Cases[] = {
      {workloads::deskCalculator(Diags), AgClass::OAG, "OAG(0)"},
      {workloads::binaryNumbers(Diags), AgClass::OAG, "OAG(0)"},
      {workloads::repmin(Diags), AgClass::OAG, "OAG(0)"},
      {workloads::circularGrammar(Diags), AgClass::NotSNC, "not SNC"},
      {workloads::twoContextGrammar(Diags), AgClass::SNC, "SNC"},
      {workloads::dncNotOagGrammar(Diags), AgClass::DNC, "DNC"},
  };
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  for (auto &C : Cases) {
    ClassifyResult R = classifyGrammar(C.AG, 0);
    EXPECT_EQ(R.Class, C.Expected) << C.AG.Name;
    EXPECT_EQ(R.className(), C.Name) << C.AG.Name;
  }
  // With a bigger repair budget the OAG(1) grammar classifies as OAG(1).
  ClassifyResult R = classifyGrammar(workloads::oag1Grammar(Diags), 2);
  EXPECT_EQ(R.Class, AgClass::OAG);
  EXPECT_EQ(R.className(), "OAG(1)");
}

TEST(ClassifyTest, CascadeSkipsLaterPhasesOnFailure) {
  DiagnosticEngine Diags;
  ClassifyResult R = classifyGrammar(workloads::circularGrammar(Diags));
  EXPECT_FALSE(R.DncRan);
  EXPECT_FALSE(R.OagRan);
  ClassifyResult R2 = classifyGrammar(workloads::twoContextGrammar(Diags));
  EXPECT_TRUE(R2.DncRan);
  EXPECT_FALSE(R2.OagRan) << "OAG must not run when DNC fails";
}

TEST(PhylumRelationTest, TotalPairsCountsAcrossPhyla) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult R = runSncTest(AG);
  EXPECT_GT(R.IO.totalPairs(), 0u);
}

//===----------------------------------------------------------------------===//
// Worklist / parallel cascade vs naive reference
//===----------------------------------------------------------------------===//

/// Runs the cascade under \p Opts and \p Ref and asserts bit-identical
/// relations, identical class verdicts and identical cycle witnesses. The
/// fixpoints are chaotic iterations of one monotone operator on a finite
/// lattice, so any strategy reaches the same least fixpoint; the witness is
/// picked post-convergence in ProdId order on both sides.
void expectCascadeAgrees(const AttributeGrammar &AG, const GfaOptions &Opts,
                         const char *Tag) {
  GfaOptions Ref;
  Ref.NaiveFixpoint = true;
  ClassifyResult A = classifyGrammar(AG, /*OagK=*/1, Ref);
  ClassifyResult B = classifyGrammar(AG, /*OagK=*/1, Opts);

  EXPECT_EQ(A.className(), B.className()) << Tag;
  EXPECT_EQ(A.Snc.IsSNC, B.Snc.IsSNC) << Tag;
  EXPECT_TRUE(A.Snc.IO == B.Snc.IO) << Tag << ": IO relations differ";
  EXPECT_EQ(A.Snc.Witness.Prod, B.Snc.Witness.Prod) << Tag;
  EXPECT_EQ(A.Snc.Witness.Cycle, B.Snc.Witness.Cycle) << Tag;
  ASSERT_EQ(A.DncRan, B.DncRan) << Tag;
  if (A.DncRan) {
    EXPECT_EQ(A.Dnc.IsDNC, B.Dnc.IsDNC) << Tag;
    EXPECT_TRUE(A.Dnc.OI == B.Dnc.OI) << Tag << ": OI relations differ";
    EXPECT_EQ(A.Dnc.Witness.Prod, B.Dnc.Witness.Prod) << Tag;
    EXPECT_EQ(A.Dnc.Witness.Cycle, B.Dnc.Witness.Cycle) << Tag;
  }
  ASSERT_EQ(A.OagRan, B.OagRan) << Tag;
  if (A.OagRan) {
    EXPECT_EQ(A.Oag.IsOAG, B.Oag.IsOAG) << Tag;
    EXPECT_EQ(A.Oag.UsedK, B.Oag.UsedK) << Tag;
    EXPECT_TRUE(A.Oag.IDS == B.Oag.IDS) << Tag << ": IDS relations differ";
    EXPECT_EQ(A.Oag.Witness.Prod, B.Oag.Witness.Prod) << Tag;
    EXPECT_EQ(A.Oag.Witness.Cycle, B.Oag.Witness.Cycle) << Tag;
  }
}

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

const std::pair<const char *, GrammarFactory> ClassicCases[] = {
    {"deskCalculator", workloads::deskCalculator},
    {"binaryNumbers", workloads::binaryNumbers},
    {"repmin", workloads::repmin},
    {"circularGrammar", workloads::circularGrammar},
    {"twoContextGrammar", workloads::twoContextGrammar},
    {"dncNotOagGrammar", workloads::dncNotOagGrammar},
    {"oag1Grammar", workloads::oag1Grammar},
};

TEST(CascadeDifferentialTest, WorklistAgreesWithNaiveOnClassics) {
  for (auto [Name, Make] : ClassicCases) {
    DiagnosticEngine Diags;
    AttributeGrammar AG = Make(Diags);
    expectCascadeAgrees(AG, GfaOptions{}, Name);
  }
}

TEST(CascadeDifferentialTest, ForcedParallelAgreesWithNaiveOnClassics) {
  GfaOptions Par;
  Par.Threads = 4;
  Par.ParallelMinWork = 0; // every round fans out, even on tiny grammars
  for (auto [Name, Make] : ClassicCases) {
    DiagnosticEngine Diags;
    AttributeGrammar AG = Make(Diags);
    expectCascadeAgrees(AG, Par, Name);
  }
}

TEST(CascadeDifferentialTest, AgreesOnSpecGenSweep) {
  GfaOptions Par;
  Par.Threads = 4;
  Par.ParallelMinWork = 0;
  using Shape = workloads::SpecGenOptions::Shape;
  for (Shape S : {Shape::Oag0, Shape::Oag1, Shape::Dnc}) {
    for (uint64_t Seed : {7u, 21u}) {
      workloads::SpecGenOptions Opts;
      Opts.Name = "CascadeDiff";
      Opts.Phyla = 6;
      Opts.OperatorsPerPhylum = 3;
      Opts.AttrPairs = 2;
      Opts.ClassShape = S;
      Opts.Seed = Seed;
      DiagnosticEngine Diags;
      olga::CompileResult C =
          olga::compileMolga(workloads::generateMolgaSpec(Opts), Diags);
      ASSERT_TRUE(C.Success) << Diags.dump();
      std::string Tag = "shape=" + std::to_string(unsigned(S)) +
                        " seed=" + std::to_string(Seed);
      expectCascadeAgrees(C.Grammars[0].AG, GfaOptions{}, Tag.c_str());
      expectCascadeAgrees(C.Grammars[0].AG, Par, Tag.c_str());
    }
  }
}

// The TSan target: many parallel fixpoint rounds over a grammar big enough
// to keep all workers busy, repeated to shake out rare interleavings.
TEST(CascadeStressTest, ParallelRoundsAreRaceFreeAndDeterministic) {
  workloads::SpecGenOptions Opts;
  Opts.Name = "CascadeStress";
  Opts.Phyla = 10;
  Opts.OperatorsPerPhylum = 4;
  Opts.AttrPairs = 3;
  Opts.Seed = 1234;
  DiagnosticEngine Diags;
  olga::CompileResult C =
      olga::compileMolga(workloads::generateMolgaSpec(Opts), Diags);
  ASSERT_TRUE(C.Success) << Diags.dump();
  const AttributeGrammar &AG = C.Grammars[0].AG;

  GfaOptions Par;
  Par.Threads = 4;
  Par.ParallelMinWork = 0;
  ClassifyResult First = classifyGrammar(AG, /*OagK=*/1, Par);
  for (int Round = 0; Round != 8; ++Round) {
    ClassifyResult R = classifyGrammar(AG, /*OagK=*/1, Par);
    ASSERT_EQ(R.className(), First.className()) << "round " << Round;
    ASSERT_TRUE(R.Snc.IO == First.Snc.IO) << "round " << Round;
    if (R.DncRan)
      ASSERT_TRUE(R.Dnc.OI == First.Dnc.OI) << "round " << Round;
    if (R.OagRan)
      ASSERT_TRUE(R.Oag.IDS == First.Oag.IDS) << "round " << Round;
  }
}

} // namespace
