//===- tests/DifferentialTest.cpp - evaluator family equivalence ----------===//
//
// Differential testing across the evaluator family (in the spirit of
// systematic AG debugging): the exhaustive, demand-driven, storage-optimized
// and parallel batch evaluators share one semantics, so on every grammar and
// every tree they must produce structurally equal attribute values at every
// node, and the batch engine at N threads must match the sequential
// evaluator exactly.
//
//===----------------------------------------------------------------------===//

#include "eval/BatchEvaluator.h"
#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "fnc2/Generator.h"
#include "olga/Driver.h"
#include "storage/BatchStorageEvaluator.h"
#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

/// Clones \p T into a fresh tree with pristine attribute state.
Tree cloneTree(const AttributeGrammar &AG, const Tree &T) {
  Tree C(AG);
  C.setRoot(T.clone(T.root()));
  return C;
}

/// Applies a fixed value for every inherited attribute of the start phylum
/// through \p Set, so grammars whose roots demand context still evaluate.
template <typename EvalT>
void provideRootInherited(const AttributeGrammar &AG, EvalT &E) {
  for (AttrId A : AG.phylum(AG.Start).Attrs)
    if (AG.attr(A).isInherited())
      E.setRootInherited(A, Value::ofInt(7));
}

/// Asserts both trees carry identical attribute instances: same computed
/// masks, structurally equal values; locals compare when both sides did
/// compute them (the variants differ in whether locals survive).
void expectSameAttribution(const AttributeGrammar &AG, const TreeNode *Ref,
                           const TreeNode *Got, const std::string &Tag) {
  ASSERT_EQ(Ref->Prod, Got->Prod) << Tag;
  ASSERT_EQ(Ref->AttrComputed.size(), Got->AttrComputed.size())
      << Tag << ": attribute slot count at " << AG.prod(Ref->Prod).Name;
  for (unsigned I = 0; I != Ref->AttrComputed.size(); ++I) {
    EXPECT_EQ(bool(Ref->AttrComputed[I]), bool(Got->AttrComputed[I]))
        << Tag << ": computed mask " << I << " at " << AG.prod(Ref->Prod).Name;
    if (Ref->AttrComputed[I] && Got->AttrComputed[I]) {
      EXPECT_TRUE(Ref->AttrVals[I].equals(Got->AttrVals[I]))
          << Tag << ": attribute " << I << " at " << AG.prod(Ref->Prod).Name
          << ": " << Ref->AttrVals[I].str() << " vs " << Got->AttrVals[I].str();
    }
  }
  unsigned Locals = std::min(Ref->LocalComputed.size(),
                             Got->LocalComputed.size());
  for (unsigned I = 0; I != Locals; ++I)
    if (Ref->LocalComputed[I] && Got->LocalComputed[I]) {
      EXPECT_TRUE(Ref->LocalVals[I].equals(Got->LocalVals[I]))
          << Tag << ": local " << I << " at " << AG.prod(Ref->Prod).Name;
    }
  ASSERT_EQ(Ref->arity(), Got->arity()) << Tag;
  for (unsigned I = 0; I != Ref->arity(); ++I)
    expectSameAttribution(AG, Ref->child(I), Got->child(I), Tag);
}

/// Runs the whole family over \p NumTrees generated trees of \p AG and
/// cross-checks every variant against the sequential exhaustive evaluator.
void runFamily(const AttributeGrammar &AG, const GeneratedEvaluator &GE,
               unsigned NumTrees, unsigned TreeSize, uint64_t Seed) {
  ASSERT_TRUE(GE.Success) << AG.Name;
  TreeGenerator Gen(AG, Seed);

  std::vector<Tree> Sources;
  for (unsigned I = 0; I != NumTrees; ++I)
    Sources.push_back(Gen.generate(TreeSize + 31 * I));

  // Reference: the sequential exhaustive evaluator.
  std::vector<Tree> Reference;
  for (const Tree &T : Sources) {
    Tree R = cloneTree(AG, T);
    Evaluator E(GE.Plan);
    provideRootInherited(AG, E);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(R, D)) << AG.Name << ": " << D.dump();
    Reference.push_back(std::move(R));
  }

  // Demand-driven evaluation agrees.
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    DemandEvaluator DE(AG);
    provideRootInherited(AG, DE);
    DiagnosticEngine D;
    ASSERT_TRUE(DE.evaluateAll(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/demand");
  }

  // Storage-optimized evaluation agrees (mirroring writes into the tree).
  for (unsigned I = 0; I != NumTrees; ++I) {
    Tree T = cloneTree(AG, Sources[I]);
    StorageEvaluator SE(GE.Plan, GE.Storage);
    SE.setMirrorToTree(true);
    provideRootInherited(AG, SE);
    DiagnosticEngine D;
    ASSERT_TRUE(SE.evaluate(T, D)) << AG.Name << ": " << D.dump();
    expectSameAttribution(AG, Reference[I].root(), T.root(),
                          AG.Name + "/storage");
  }

  // The batch engine at 4 threads matches the sequential evaluator on every
  // tree, and so does the batched storage evaluator.
  ThreadPool Pool(4);
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchEvaluator BE(GE.Plan, Pool);
    provideRootInherited(AG, BE);
    BatchResult R = BE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded())
        << AG.Name << ": " << R.Outcomes[0].Diags.dump();
    for (unsigned I = 0; I != NumTrees; ++I)
      expectSameAttribution(AG, Reference[I].root(), Batch[I].root(),
                            AG.Name + "/batch");
  }
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchStorageEvaluator BSE(GE.Plan, GE.Storage, Pool);
    BSE.setMirrorToTree(true);
    provideRootInherited(AG, BSE);
    BatchStorageResult R = BSE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded())
        << AG.Name << ": " << R.Outcomes[0].Diags.dump();
    for (unsigned I = 0; I != NumTrees; ++I)
      expectSameAttribution(AG, Reference[I].root(), Batch[I].root(),
                            AG.Name + "/batch-storage");
  }
}

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

struct ClassicCase {
  const char *Name;
  GrammarFactory Make;
  unsigned TreeSize;
};

class ClassicDifferentialTest : public ::testing::TestWithParam<ClassicCase> {
};

TEST_P(ClassicDifferentialTest, FamilyAgrees) {
  const ClassicCase &C = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = C.Make(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  Opts.OagK = 1; // lets oag1Grammar order; harmless for the others
  GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(GE.Success) << GD.dump();
  runFamily(AG, GE, 6, C.TreeSize, 11);
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, ClassicDifferentialTest,
    ::testing::Values(ClassicCase{"desk", workloads::deskCalculator, 150},
                      ClassicCase{"binary", workloads::binaryNumbers, 150},
                      ClassicCase{"repmin", workloads::repmin, 150},
                      ClassicCase{"twoctx", workloads::twoContextGrammar, 20},
                      ClassicCase{"dnc", workloads::dncNotOagGrammar, 40},
                      ClassicCase{"oag1", workloads::oag1Grammar, 40}),
    [](const ::testing::TestParamInfo<ClassicCase> &I) {
      return I.param.Name;
    });

TEST(DifferentialTest, SpecGenSystemSuiteFamilyAgrees) {
  for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    DiagnosticEngine Diags;
    olga::CompileResult C = olga::compileMolga(Ag.Source, Diags);
    ASSERT_TRUE(C.Success) << Ag.Name << ": " << Diags.dump();
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator GE = generateEvaluator(C.Grammars[0].AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Ag.Name << ": " << GD.dump();
    runFamily(C.Grammars[0].AG, GE, 3, 160, 23);
  }
}

} // namespace
