//===- tests/DifferentialTest.cpp - evaluator family equivalence ----------===//
//
// Differential testing across the evaluator family (in the spirit of
// systematic AG debugging): the exhaustive, demand-driven, storage-optimized
// and parallel batch evaluators share one semantics, so on every grammar and
// every tree they must produce structurally equal attribute values at every
// node, and the batch engine at N threads must match the sequential
// evaluator exactly.
//
//===----------------------------------------------------------------------===//

#include "FamilyCheck.h"
#include "olga/Driver.h"
#include "storage/BatchStorageEvaluator.h"
#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"
#include "workloads/SpecGen.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

using namespace fnc2::testutil;

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

struct ClassicCase {
  const char *Name;
  GrammarFactory Make;
  unsigned TreeSize;
};

class ClassicDifferentialTest : public ::testing::TestWithParam<ClassicCase> {
};

TEST_P(ClassicDifferentialTest, FamilyAgrees) {
  const ClassicCase &C = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = C.Make(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratorOptions Opts;
  Opts.OagK = 1; // lets oag1Grammar order; harmless for the others
  GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
  ASSERT_TRUE(GE.Success) << GD.dump();
  runFamily(AG, GE, 6, C.TreeSize, 11);
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, ClassicDifferentialTest,
    ::testing::Values(ClassicCase{"desk", workloads::deskCalculator, 150},
                      ClassicCase{"binary", workloads::binaryNumbers, 150},
                      ClassicCase{"repmin", workloads::repmin, 150},
                      ClassicCase{"twoctx", workloads::twoContextGrammar, 20},
                      ClassicCase{"dnc", workloads::dncNotOagGrammar, 40},
                      ClassicCase{"oag1", workloads::oag1Grammar, 40}),
    [](const ::testing::TestParamInfo<ClassicCase> &I) {
      return I.param.Name;
    });

// Regression for the batch join: worker-local stats merged into the batch
// result must equal the sequential per-tree totals, with Sum counters
// adding and the storage peak merging as a maximum of per-worker peaks
// (never a sum — a sum would report a working set no worker ever had).
TEST(DifferentialTest, BatchStatsMergeMatchesSequential) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  TreeGenerator Gen(AG, 77);
  std::vector<Tree> Sources;
  for (unsigned I = 0; I != 24; ++I)
    Sources.push_back(Gen.generate(80 + 17 * I));

  // Sequential ground truth, accumulated through the schema-driven merge.
  EvalStats SeqEval;
  StorageStats SeqStorage;
  uint64_t MaxPeak = 0;
  for (const Tree &T : Sources) {
    Tree A = cloneTree(AG, T);
    Evaluator E(GE.Plan);
    DiagnosticEngine D;
    ASSERT_TRUE(E.evaluate(A, D)) << D.dump();
    SeqEval.merge(E.stats());

    Tree B = cloneTree(AG, T);
    StorageEvaluator SE(GE.Plan, GE.Storage);
    ASSERT_TRUE(SE.evaluate(B, D)) << D.dump();
    SeqStorage.merge(SE.stats());
    MaxPeak = std::max(MaxPeak, SE.stats().PeakLiveCells);
  }
  EXPECT_EQ(SeqStorage.PeakLiveCells, MaxPeak)
      << "StorageStats::merge takes the max of peaks";

  ThreadPool Pool(4);
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchEvaluator BE(GE.Plan, Pool);
    BatchResult R = BE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded());
    EXPECT_EQ(R.Stats.RulesEvaluated, SeqEval.RulesEvaluated);
    EXPECT_EQ(R.Stats.VisitsPerformed, SeqEval.VisitsPerformed);
    EXPECT_EQ(R.Stats.InstructionsExecuted, SeqEval.InstructionsExecuted);
  }
  {
    std::vector<Tree> Batch;
    for (const Tree &T : Sources)
      Batch.push_back(cloneTree(AG, T));
    BatchStorageEvaluator BSE(GE.Plan, GE.Storage, Pool);
    BatchStorageResult R = BSE.evaluate(Batch);
    ASSERT_TRUE(R.allSucceeded());
    EXPECT_EQ(R.Stats.RulesEvaluated, SeqStorage.RulesEvaluated);
    EXPECT_EQ(R.Stats.TreeBaselineCells, SeqStorage.TreeBaselineCells);
    EXPECT_EQ(R.Stats.CopiesSkipped, SeqStorage.CopiesSkipped);
    EXPECT_EQ(R.Stats.PeakLiveCells, MaxPeak)
        << "batch join must not sum per-worker peaks";
  }
}

// Compiled stream vs interpreted walk on the flagship workload: real parsed
// programs rather than generated trees, through both the exhaustive and the
// storage evaluator.
TEST(DifferentialTest, MiniPascalCompiledMatchesInterpreted) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    std::string Src = workloads::generateMiniPascalSource(40, Seed);
    DiagnosticEngine PD;
    Tree T = workloads::parseMiniPascal(AG, Src, PD);
    ASSERT_FALSE(PD.hasErrors()) << PD.dump();

    Tree Compiled = cloneTree(AG, T);
    Evaluator CE(GE.Plan);
    DiagnosticEngine D1;
    ASSERT_TRUE(CE.evaluate(Compiled, D1)) << D1.dump();

    Tree Interp = cloneTree(AG, T);
    Evaluator IE(GE.Plan);
    IE.setUseInterpreted(true);
    DiagnosticEngine D2;
    ASSERT_TRUE(IE.evaluate(Interp, D2)) << D2.dump();
    expectSameAttribution(AG, Compiled.root(), Interp.root(),
                          "minipascal/interp");
    EXPECT_EQ(IE.stats().RulesEvaluated, CE.stats().RulesEvaluated);
    EXPECT_EQ(IE.stats().VisitsPerformed, CE.stats().VisitsPerformed);

    Tree Storage = cloneTree(AG, T);
    StorageEvaluator SE(GE.Plan, GE.Storage);
    SE.setUseInterpreted(true);
    SE.setMirrorToTree(true);
    DiagnosticEngine D3;
    ASSERT_TRUE(SE.evaluate(Storage, D3)) << D3.dump();
    expectSameAttribution(AG, Compiled.root(), Storage.root(),
                          "minipascal/storage-interp");
  }
}

TEST(DifferentialTest, SpecGenSystemSuiteFamilyAgrees) {
  for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    DiagnosticEngine Diags;
    olga::CompileResult C = olga::compileMolga(Ag.Source, Diags);
    ASSERT_TRUE(C.Success) << Ag.Name << ": " << Diags.dump();
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    GeneratedEvaluator GE = generateEvaluator(C.Grammars[0].AG, GD, Opts);
    ASSERT_TRUE(GE.Success) << Ag.Name << ": " << GD.dump();
    runFamily(C.Grammars[0].AG, GE, 3, 160, 23);
  }
}

} // namespace
