//===- tests/ValueInternTest.cpp - string interning invariants ------------===//
//
// The interning pool underpins the compiled evaluators' value layout: string
// values and map keys compare by pointer first, so two equal strings built
// anywhere in the process must share one heap object, and the pool must keep
// that guarantee under concurrent interning (this file runs in the TSan gate
// alongside the concurrency suite).
//
//===----------------------------------------------------------------------===//

#include "value/Value.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace fnc2;

namespace {

TEST(ValueInternTest, EqualContentsShareOneObject) {
  Value A = Value::ofString("stack_pointer");
  Value B = Value::ofString(std::string("stack_") + "pointer");
  ASSERT_NE(A.identity(), nullptr);
  EXPECT_EQ(A.identity(), B.identity())
      << "equal strings must intern to the same representation";
  EXPECT_TRUE(A.equals(B));
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(ValueInternTest, DistinctContentsStayDistinct) {
  Value A = Value::ofString("alpha");
  Value B = Value::ofString("beta");
  EXPECT_NE(A.identity(), B.identity());
  EXPECT_FALSE(A.equals(B));
}

TEST(ValueInternTest, InternStringMatchesOfString) {
  std::shared_ptr<const std::string> P = internString("gamma");
  Value V = Value::ofString("gamma");
  EXPECT_EQ(static_cast<const void *>(P.get()), V.identity());
  EXPECT_EQ(*P, "gamma");
}

TEST(ValueInternTest, EmptyAndLongStringsIntern) {
  EXPECT_EQ(Value::ofString("").identity(), Value::ofString("").identity());
  std::string Long(4096, 'x');
  EXPECT_EQ(Value::ofString(Long).identity(),
            Value::ofString(Long).identity());
}

TEST(ValueInternTest, MapKeysShareInternedStrings) {
  // Keys intern too: lookup is a pointer chase, and maps built from equal
  // key strings hash/compare consistently.
  Value M1 = Value::emptyMap().mapInsert("key", Value::ofInt(1));
  Value M2 = Value::emptyMap().mapInsert(std::string("ke") + "y",
                                         Value::ofInt(1));
  EXPECT_TRUE(M1.equals(M2));
  EXPECT_EQ(M1.hash(), M2.hash());
  ASSERT_NE(M1.mapLookup("key"), nullptr);
  EXPECT_EQ(M1.mapLookup("key")->asInt(), 1);
}

TEST(ValueInternTest, ConcurrentInterningConverges) {
  // Many threads intern overlapping sets of strings; every thread must see
  // the same identity per content. Runs under -DFNC2_SANITIZE=thread in the
  // CI race gate, so the sharded pool's locking is TSan-checked here.
  constexpr unsigned NumThreads = 8;
  constexpr unsigned NumStrings = 256;
  std::vector<std::vector<const void *>> Seen(
      NumThreads, std::vector<const void *>(NumStrings));

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T != NumThreads; ++T)
    Threads.emplace_back([T, &Seen] {
      // Each thread walks the set in a different order so insertions race.
      for (unsigned I = 0; I != NumStrings; ++I) {
        unsigned K = (I * 17 + T * 31) % NumStrings;
        Value V = Value::ofString("sym" + std::to_string(K));
        Seen[T][K] = V.identity();
      }
    });
  for (std::thread &T : Threads)
    T.join();

  for (unsigned K = 0; K != NumStrings; ++K)
    for (unsigned T = 1; T != NumThreads; ++T)
      EXPECT_EQ(Seen[0][K], Seen[T][K]) << "string " << K << " thread " << T;
}

} // namespace
