//===- tests/OrderedTest.cpp - partitions & transformation tests ----------===//

#include "analysis/Oag.h"
#include "ordered/Transform.h"
#include "visitseq/VisitSequence.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

TEST(PartitionTest, FromLinearGroupsRuns) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  PhylumId List = AG.findPhylum("List");
  // Attribute order in owner: scale(0, inh), val(1, syn), len(2, syn).
  auto P = TotallyOrderedPartition::fromLinear(AG, List, {2, 0, 1});
  // len (syn) first, then scale (inh), then val (syn): 3 blocks.
  ASSERT_EQ(P.numBlocks(), 3u);
  EXPECT_EQ(P.Blocks[0].Kind, AttrKind::Synthesized);
  EXPECT_EQ(P.Blocks[1].Kind, AttrKind::Inherited);
  EXPECT_EQ(P.numVisits(), 2u);
  EXPECT_EQ(P.visitOf(2), 1u); // len returned by visit 1
  EXPECT_EQ(P.visitOf(0), 2u); // scale passed down for visit 2
  EXPECT_EQ(P.visitOf(1), 2u); // val returned by visit 2
}

TEST(PartitionTest, FromLinearMergesSameKindRuns) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  PhylumId X = AG.findPhylum("X");
  // h1(0) h2(1) inh; s1(2) s2(3) syn; linear h1 h2 s1 s2 gives 2 blocks.
  auto P = TotallyOrderedPartition::fromLinear(AG, X, {0, 1, 2, 3});
  EXPECT_EQ(P.numBlocks(), 2u);
  EXPECT_EQ(P.numVisits(), 1u);
}

TEST(PartitionTest, FromRelationPeelsChain) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  PhylumId X = AG.findPhylum("X");
  BitMatrix DS(4, 4);
  DS.set(0, 2); // h1 -> s1
  DS.set(2, 1); // s1 -> h2
  DS.set(1, 3); // h2 -> s2
  auto P = TotallyOrderedPartition::fromRelation(AG, X, DS);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->numBlocks(), 4u);
  EXPECT_EQ(P->numVisits(), 2u);
  EXPECT_LT(P->blockOf(0), P->blockOf(2));
  EXPECT_LT(P->blockOf(2), P->blockOf(1));
}

TEST(PartitionTest, FromRelationFailsOnCycle) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  PhylumId X = AG.findPhylum("X");
  BitMatrix DS(4, 4);
  DS.set(0, 2);
  DS.set(2, 0);
  EXPECT_FALSE(TotallyOrderedPartition::fromRelation(AG, X, DS).has_value());
}

TEST(PartitionTest, EmptyPartitionHasOneStructuralVisit) {
  TotallyOrderedPartition P;
  EXPECT_EQ(P.numVisits(), 1u);
}

TEST(TransformTest, SingleContextGrammarsCollapseToOnePartition) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {workloads::deskCalculator(Diags),
                           workloads::binaryNumbers(Diags),
                           workloads::repmin(Diags)};
  ASSERT_FALSE(Diags.hasErrors());
  for (const AttributeGrammar &AG : Gs) {
    SncResult Snc = runSncTest(AG);
    ASSERT_TRUE(Snc.IsSNC) << AG.Name;
    TransformResult R = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
    ASSERT_TRUE(R.Success) << AG.Name << ": " << R.FailureReason;
    EXPECT_EQ(R.MaxPartitionsPerPhylum, 1u) << AG.Name;
    EXPECT_DOUBLE_EQ(R.AvgPartitionsPerPhylum, 1.0) << AG.Name;
  }
}

TEST(TransformTest, TwoContextGrammarNeedsTwoPartitions) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::twoContextGrammar(Diags);
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC);

  TransformResult Long = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
  ASSERT_TRUE(Long.Success) << Long.FailureReason;
  PhylumId X = AG.findPhylum("X");
  EXPECT_EQ(Long.Partitions[X].size(), 2u)
      << "the opposite context orders are genuinely incompatible";
  // The leaf production of X needs one visit sequence per partition.
  ProdId Leaf = AG.findProd("LeafX");
  EXPECT_EQ(Long.Instances[Leaf].size(), 2u);

  TransformResult Eq = sncToLOrdered(AG, Snc, ReuseMode::Equality);
  ASSERT_TRUE(Eq.Success);
  EXPECT_GE(Eq.Partitions[X].size(), Long.Partitions[X].size());
}

TEST(TransformTest, LongInclusionNeverWorseThanEquality) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {
      workloads::deskCalculator(Diags), workloads::binaryNumbers(Diags),
      workloads::repmin(Diags), workloads::twoContextGrammar(Diags),
      workloads::dncNotOagGrammar(Diags), workloads::oag1Grammar(Diags)};
  ASSERT_FALSE(Diags.hasErrors());
  for (const AttributeGrammar &AG : Gs) {
    SncResult Snc = runSncTest(AG);
    ASSERT_TRUE(Snc.IsSNC) << AG.Name;
    TransformResult Long = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
    TransformResult Eq = sncToLOrdered(AG, Snc, ReuseMode::Equality);
    ASSERT_TRUE(Long.Success && Eq.Success) << AG.Name;
    EXPECT_LE(Long.TotalPartitions, Eq.TotalPartitions) << AG.Name;
    EXPECT_LE(Long.NumInstances, Eq.NumInstances) << AG.Name;
  }
}

TEST(TransformTest, DncNotOagGrammarIsTransformable) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::dncNotOagGrammar(Diags);
  SncResult Snc = runSncTest(AG);
  ASSERT_TRUE(Snc.IsSNC);
  TransformResult R = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
  ASSERT_TRUE(R.Success) << R.FailureReason;
  EXPECT_GT(R.NumInstances, 0u);
}

TEST(TransformTest, LinearOrdersRespectDependencies) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult R = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
  ASSERT_TRUE(R.Success);
  for (ProdId P = 0; P != AG.numProds(); ++P) {
    for (const TransformInstance &Inst : R.Instances[P]) {
      const ProductionInfo &PI = AG.info(P);
      ASSERT_EQ(Inst.Linear.size(), PI.numOccs());
      std::vector<unsigned> Pos(PI.numOccs());
      for (unsigned I = 0; I != Inst.Linear.size(); ++I)
        Pos[Inst.Linear[I]] = I;
      for (unsigned From = 0; From != PI.numOccs(); ++From)
        for (unsigned To : PI.DepGraph.successors(From))
          EXPECT_LT(Pos[From], Pos[To])
              << AG.prod(P).Name << ": dependency violated";
    }
  }
}

TEST(UniformInstancesTest, WrapsOagPartitions) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  OagResult Oag = runOagTest(AG);
  ASSERT_TRUE(Oag.IsOAG);
  TransformResult R = uniformInstances(AG, Oag.Partitions);
  ASSERT_TRUE(R.Success) << R.FailureReason;
  EXPECT_EQ(R.NumInstances, AG.numProds());
  EXPECT_EQ(R.MaxPartitionsPerPhylum, 1u);
}

TEST(VisitSeqTest, DeskCalculatorSingleVisitShape) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  OagResult Oag = runOagTest(AG);
  ASSERT_TRUE(Oag.IsOAG);
  TransformResult TR = uniformInstances(AG, Oag.Partitions);
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  EXPECT_EQ(Plan.numSequences(), AG.numProds());

  const VisitSequence *Add = Plan.find(AG.findProd("Add"), 0);
  ASSERT_NE(Add, nullptr);
  EXPECT_EQ(Add->NumVisits, 1u);
  // Shape: BEGIN, ... two child visits, evals ..., LEAVE.
  EXPECT_EQ(Add->Instrs.front().Kind, VisitInstr::Op::Begin);
  EXPECT_EQ(Add->Instrs.back().Kind, VisitInstr::Op::Leave);
  unsigned Visits = 0;
  for (const VisitInstr &I : Add->Instrs)
    Visits += I.Kind == VisitInstr::Op::Visit;
  EXPECT_EQ(Visits, 2u);
}

TEST(VisitSeqTest, EveryRuleEvaluatedExactlyOnce) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult TR = sncToLOrdered(AG, Snc);
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  for (const VisitSequence &Seq : Plan.Seqs) {
    std::vector<unsigned> Count(AG.numRules(), 0);
    for (const VisitInstr &I : Seq.Instrs)
      if (I.Kind == VisitInstr::Op::Eval)
        for (RuleId R : I.Rules)
          ++Count[R];
    for (RuleId R : AG.prod(Seq.Prod).Rules)
      EXPECT_EQ(Count[R], 1u)
          << AG.prod(Seq.Prod).Name << " rule " << AG.rule(R).FnName;
  }
}

TEST(VisitSeqTest, ChildVisitsAreSequentialAndComplete) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult TR = sncToLOrdered(AG, Snc);
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  for (const VisitSequence &Seq : Plan.Seqs) {
    const Production &Pr = AG.prod(Seq.Prod);
    std::vector<unsigned> Next(Pr.arity(), 1);
    for (const VisitInstr &I : Seq.Instrs) {
      if (I.Kind != VisitInstr::Op::Visit)
        continue;
      EXPECT_EQ(I.VisitNo, Next[I.Child]) << Pr.Name;
      ++Next[I.Child];
    }
    for (unsigned C = 0; C != Pr.arity(); ++C) {
      unsigned Expected =
          Plan.Partitions[Pr.Rhs[C]][Seq.ChildPartition[C]].numVisits();
      EXPECT_EQ(Next[C] - 1, Expected) << Pr.Name << " child " << C;
    }
  }
}

TEST(VisitSeqTest, DumpMentionsAllInstructionKinds) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  SncResult Snc = runSncTest(AG);
  TransformResult TR = sncToLOrdered(AG, Snc);
  EvaluationPlan Plan;
  DiagnosticEngine D;
  ASSERT_TRUE(buildVisitSequences(AG, TR, Plan, D));
  std::string Dump = Plan.dump();
  EXPECT_NE(Dump.find("BEGIN 1"), std::string::npos);
  EXPECT_NE(Dump.find("VISIT"), std::string::npos);
  EXPECT_NE(Dump.find("EVAL"), std::string::npos);
  EXPECT_NE(Dump.find("LEAVE"), std::string::npos);
}

} // namespace
