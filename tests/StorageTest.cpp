//===- tests/StorageTest.cpp - space optimization tests -------------------===//

#include "analysis/Classify.h"
#include "eval/Evaluator.h"
#include "grammar/GrammarBuilder.h"
#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

static EvaluationPlan planFor(const AttributeGrammar &AG) {
  SncResult Snc = runSncTest(AG);
  EXPECT_TRUE(Snc.IsSNC) << AG.Name;
  OagResult Oag = runOagTest(AG, 1);
  TransformResult TR = Oag.IsOAG ? uniformInstances(AG, Oag.Partitions)
                                 : sncToLOrdered(AG, Snc);
  EXPECT_TRUE(TR.Success) << TR.FailureReason;
  EvaluationPlan Plan;
  DiagnosticEngine D;
  EXPECT_TRUE(buildVisitSequences(AG, TR, Plan, D)) << D.dump();
  return Plan;
}

TEST(LifetimeTest, DeskCalculatorClassification) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);

  PhylumId Exp = AG.findPhylum("Exp");
  PhylumId Prog = AG.findPhylum("Prog");
  AttrId Env = AG.findAttr(Exp, "env");
  AttrId Val = AG.findAttr(Exp, "val");
  AttrId Result = AG.findAttr(Prog, "result");

  // env is redefined under Let while outer instances are still live: stack.
  EXPECT_EQ(SA.classOfAttr(Env), StorageClass::Stack);
  // val of the first son stays live across the second son's visit, which
  // recomputes val deeper: stack as well.
  EXPECT_EQ(SA.classOfAttr(Val), StorageClass::Stack);
  // result only ever has one live instance (the root's): a global variable.
  EXPECT_EQ(SA.classOfAttr(Result), StorageClass::Variable);

  // Nothing needs the tree in this grammar.
  EXPECT_EQ(SA.NumTreeAttrs, 0u);
  EXPECT_DOUBLE_EQ(SA.pctTree(), 0.0);
  EXPECT_NEAR(SA.pctVariables() + SA.pctStacks() + SA.pctTree(), 100.0, 1e-9);
}

TEST(LifetimeTest, BroadcastCopiesEliminated) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  // The auto-generated env broadcast copies share the env stack cell.
  EXPECT_GT(SA.TotalCopyRules, 0u);
  EXPECT_GT(SA.EliminatedCopyRules, 0u);
  EXPECT_LE(SA.EliminatedCopyRules, SA.TotalCopyRules);
  EXPECT_LE(SA.EliminatedCopyRules, SA.EliminableCopyRules);
}

TEST(LifetimeTest, RepminGminCrossesVisits) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::repmin(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  PhylumId T = AG.findPhylum("T");
  // min is produced in visit 1 and consumed (as gmin) via an instance whose
  // lifetime spans the two visits of the child in Top: some of repmin's
  // attributes must stay in the tree or on stacks; the partition between
  // classes must be consistent.
  unsigned Classified = SA.NumVariableAttrs + SA.NumStackAttrs +
                        SA.NumTreeAttrs;
  EXPECT_EQ(Classified, AG.numAttrOccurrences());
  // gmin of T: defined in visit boundary-crossing context in Top
  // (Top: VISIT1, EVAL gmin, VISIT2 — all one chunk, so it may well be
  // stack); just check it is not misclassified as a plain variable, since
  // nested instances coexist.
  AttrId GMin = AG.findAttr(T, "gmin");
  EXPECT_NE(SA.classOfAttr(GMin), StorageClass::Variable);
}

TEST(LifetimeTest, IntervalsRespectSequenceBounds) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  EXPECT_FALSE(SA.Intervals.empty());
  for (const LifetimeInterval &LI : SA.Intervals) {
    ASSERT_LT(LI.SeqIdx, Plan.Seqs.size());
    EXPECT_LE(LI.DefPos, LI.EndPos);
    EXPECT_LT(LI.EndPos, Plan.Seqs[LI.SeqIdx].Instrs.size());
  }
}

TEST(StorageEvaluatorTest, MatchesReferenceOnDeskCalc) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  Evaluator Ref(Plan);
  StorageEvaluator SE(Plan, SA);

  DiagnosticEngine D;
  Tree T = readTerm(
      AG, "Calc(Let<\"x\">(Num<2>,Add(Var<\"x\">,Let<\"y\">(Num<5>,"
          "Mul(Var<\"y\">,Var<\"x\">)))))",
      D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_TRUE(Ref.evaluate(T, D)) << D.dump();
  PhylumId Prog = AG.findPhylum("Prog");
  AttrId Result = AG.findAttr(Prog, "result");
  Value Expected = T.root()->attrVal(AG.attr(Result).IndexInOwner);
  EXPECT_EQ(Expected.asInt(), 12);

  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  // result is variable-class: read it back through the tree mirror.
  SE.setMirrorToTree(true);
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  EXPECT_TRUE(
      Expected.equals(T.root()->attrVal(AG.attr(Result).IndexInOwner)));
}

class StorageAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, unsigned>> {};

TEST_P(StorageAgreementTest, MirroredStorageRunMatchesReference) {
  auto [GrammarIdx, Seed] = GetParam();
  DiagnosticEngine Diags;
  AttributeGrammar AG = GrammarIdx == 0   ? workloads::deskCalculator(Diags)
                        : GrammarIdx == 1 ? workloads::binaryNumbers(Diags)
                        : GrammarIdx == 2 ? workloads::repmin(Diags)
                                          : workloads::oag1Grammar(Diags);
  ASSERT_FALSE(Diags.hasErrors());
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  Evaluator Ref(Plan);
  StorageEvaluator SE(Plan, SA);
  SE.setMirrorToTree(true);

  TreeGenerator Gen(AG, Seed);
  Tree T = Gen.generate(40 + (Seed * 29) % 160);
  DiagnosticEngine D;
  ASSERT_TRUE(Ref.evaluate(T, D)) << D.dump();

  // Snapshot every attribute instance from the reference run.
  std::vector<std::pair<TreeNode *, std::vector<Value>>> Snapshot;
  std::vector<TreeNode *> Work = {T.root()};
  while (!Work.empty()) {
    TreeNode *N = Work.back();
    Work.pop_back();
    Snapshot.emplace_back(N,
                          std::vector<Value>(N->Slots, N->Slots + N->FrameAttrs));
    for (auto &C : N->Children)
      Work.push_back(C.get());
  }

  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  for (auto &[N, Vals] : Snapshot) {
    ASSERT_EQ(size_t(N->FrameAttrs), Vals.size());
    for (size_t I = 0; I != Vals.size(); ++I)
      EXPECT_TRUE(Vals[I].equals(N->attrVal(I)))
          << AG.Name << " node " << AG.prod(N->Prod).Name << " attr " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grammars, StorageAgreementTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

TEST(StorageEvaluatorTest, PeakCellsWellBelowTreeBaseline) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  StorageEvaluator SE(Plan, SA);
  TreeGenerator Gen(AG, 11);
  Tree T = Gen.generate(2000);
  DiagnosticEngine D;
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  const StorageStats &S = SE.stats();
  EXPECT_GT(S.TreeBaselineCells, 1000u);
  EXPECT_GT(S.reductionFactor(), 2.0)
      << "peak=" << S.PeakLiveCells << " baseline=" << S.TreeBaselineCells;
  EXPECT_GT(S.CopiesSkipped, 0u);
}

TEST(StorageEvaluatorTest, StacksDrainCompletely) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  StorageEvaluator SE(Plan, SA);
  TreeGenerator Gen(AG, 4);
  Tree T = Gen.generate(300);
  DiagnosticEngine D;
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  // Evaluate twice: stale state from the first run must not leak.
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
}

// The storage evaluator executes every semantic rule the exhaustive one
// does (eliminated copies are counted as executed: their effect — a cell
// share — still happens), so RulesEvaluated must agree exactly on the same
// tree, and the stats must round-trip through the metrics registry.
TEST(StorageEvaluatorTest, RuleCountMatchesExhaustiveAndExports) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  TreeGenerator Gen(AG, 31);
  Tree T = Gen.generate(250);
  Tree T2(AG);
  T2.setRoot(T.clone(T.root()));

  Evaluator Ref(Plan);
  StorageEvaluator SE(Plan, SA);
  DiagnosticEngine D;
  ASSERT_TRUE(Ref.evaluate(T, D)) << D.dump();
  ASSERT_TRUE(SE.evaluate(T2, D)) << D.dump();
  EXPECT_EQ(SE.stats().RulesEvaluated, Ref.stats().RulesEvaluated);

  MetricsRegistry R;
  SE.stats().exportTo(R);
  EXPECT_EQ(R.value("storage.rules_evaluated"), SE.stats().RulesEvaluated);
  EXPECT_EQ(R.value("storage.peak_live_cells"), SE.stats().PeakLiveCells);
  EXPECT_EQ(R.size(), StorageStats::schema().size());
}

// Reusing one evaluator across trees accumulates the baseline alongside
// the other counters instead of clobbering it to the last tree's value
// (the old behaviour, which inflated reductionFactor() on reuse), and the
// schema merge keeps the peak a maximum while everything else sums.
TEST(StorageEvaluatorTest, BaselineAccumulatesAcrossRunsAndMergeKinds) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  StorageEvaluator SE(Plan, SA);
  TreeGenerator Gen(AG, 12);
  Tree T = Gen.generate(150);
  DiagnosticEngine D;
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  StorageStats One = SE.stats();
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  EXPECT_EQ(SE.stats().TreeBaselineCells, 2 * One.TreeBaselineCells);
  EXPECT_EQ(SE.stats().RulesEvaluated, 2 * One.RulesEvaluated);
  EXPECT_EQ(SE.stats().PeakLiveCells, One.PeakLiveCells)
      << "identical runs share the same peak working set";

  StorageStats Merged = One;
  Merged.merge(One);
  EXPECT_EQ(Merged.TreeBaselineCells, 2 * One.TreeBaselineCells);
  EXPECT_EQ(Merged.PeakLiveCells, One.PeakLiveCells)
      << "the peak merges as a maximum, not a sum";
}

TEST(StorageIdMapTest, LocalsGetDistinctIds) {
  DiagnosticEngine Diags;
  GrammarBuilder B("with-locals");
  PhylumId X = B.phylum("X");
  AttrId S = B.synthesized(X, "s", "int");
  ProdId P = B.production("Leaf", X, {});
  AttrOcc L1 = B.local(P, "tmp1");
  AttrOcc L2 = B.local(P, "tmp2");
  B.constant(P, L1, Value::ofInt(1));
  B.rule(P, L2, {L1}, "inc", [](std::span<const Value> A) {
    return Value::ofInt(A[0].asInt() + 1);
  });
  B.rule(P, AttrOcc::onSymbol(0, S), {L2}, "id",
         [](std::span<const Value> A) { return A[0]; });
  B.setStart(X);
  AttributeGrammar AG = B.finalize(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();

  StorageIdMap Ids(AG);
  EXPECT_EQ(Ids.numIds(), 3u);
  EXPECT_NE(Ids.idOfLocal(P, 0), Ids.idOfLocal(P, 1));
  EXPECT_TRUE(Ids.isLocal(Ids.idOfLocal(P, 0)));
  EXPECT_FALSE(Ids.isLocal(Ids.idOfAttr(S)));
  EXPECT_NE(Ids.name(AG, Ids.idOfLocal(P, 1)).find("tmp2"), std::string::npos);

  // And the machinery evaluates locals correctly end to end.
  EvaluationPlan Plan = planFor(AG);
  StorageAssignment SA = analyzeStorage(AG, Plan);
  StorageEvaluator SE(Plan, SA);
  SE.setMirrorToTree(true);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Leaf", D);
  ASSERT_TRUE(SE.evaluate(T, D)) << D.dump();
  EXPECT_EQ(T.root()->attrVal(0).asInt(), 2);
}

TEST(GroupingTest, GroupCountsNeverExceedClassCounts) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {
      workloads::deskCalculator(Diags), workloads::binaryNumbers(Diags),
      workloads::repmin(Diags), workloads::oag1Grammar(Diags),
      workloads::dncNotOagGrammar(Diags)};
  ASSERT_FALSE(Diags.hasErrors());
  for (const AttributeGrammar &AG : Gs) {
    EvaluationPlan Plan = planFor(AG);
    StorageAssignment SA = analyzeStorage(AG, Plan);
    unsigned VarIds = 0, StackIds = 0;
    for (unsigned Id = 0; Id != SA.Ids.numIds(); ++Id) {
      VarIds += SA.ClassOf[Id] == StorageClass::Variable;
      StackIds += SA.ClassOf[Id] == StorageClass::Stack;
    }
    EXPECT_LE(SA.NumVarGroups, VarIds) << AG.Name;
    EXPECT_LE(SA.NumStackGroups, StackIds) << AG.Name;
    if (VarIds)
      EXPECT_GE(SA.NumVarGroups, 1u) << AG.Name;
  }
}

} // namespace
