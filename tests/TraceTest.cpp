//===- tests/TraceTest.cpp - golden traces + trace layer unit tests -------===//
//
// The tracing layer's promise is determinism: on a single thread, the same
// grammar and tree produce the same span/counter sequence, byte for byte.
// The golden tests pin that sequence for two classic AGs against committed
// files (regenerate with FNC2_UPDATE_GOLDENS=1 after an intentional
// pipeline change). The remaining tests cover the collector machinery: the
// Chrome trace_event exporter emits well-formed JSON, counters fold into
// the metrics registry consistently with the evaluator stats, and the
// per-thread buffers under the batch engine stay race-free (the TSan gate
// in ci.sh runs this suite).
//
//===----------------------------------------------------------------------===//

#include "eval/BatchEvaluator.h"
#include "fnc2/Generator.h"
#include "incremental/Incremental.h"
#include "support/Trace.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace fnc2;

namespace {

std::string goldenPath(const std::string &Name) {
  return std::string(FNC2_GOLDEN_DIR) + "/" + Name;
}

/// Compares \p Actual with the committed golden \p Name; with
/// FNC2_UPDATE_GOLDENS=1 in the environment, rewrites the golden instead.
void checkGolden(const std::string &Name, const std::string &Actual) {
  const std::string Path = goldenPath(Name);
  if (std::getenv("FNC2_UPDATE_GOLDENS")) {
    std::ofstream Out(Path);
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    Out << Actual;
    return;
  }
  std::ifstream In(Path);
  ASSERT_TRUE(In.good()) << "missing golden " << Path
                         << " (regenerate with FNC2_UPDATE_GOLDENS=1)";
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_EQ(Buf.str(), Actual)
      << "trace drifted from " << Path
      << " (if the pipeline change is intentional, regenerate with "
         "FNC2_UPDATE_GOLDENS=1)";
}

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, true/false/null) — enough to validate the exporters without a
// JSON dependency.
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return Pos == S.size();
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos; // closing quote
    return true;
  }

  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && (std::isdigit(S[Pos]) || S[Pos] == '.' ||
                              S[Pos] == 'e' || S[Pos] == 'E' ||
                              S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }

  bool literal(const char *L) {
    size_t N = std::string(L).size();
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }

  void skipWs() {
    while (Pos < S.size() && std::isspace(static_cast<unsigned char>(S[Pos])))
      ++Pos;
  }

  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }

  const std::string &S;
  size_t Pos = 0;
};

//===----------------------------------------------------------------------===//
// Golden traces
//===----------------------------------------------------------------------===//

// The full generator cascade plus one exhaustive evaluation over the desk
// calculator: spans for SNC/DNC/OAG/transform/visitseq/storage, GFA
// counters per fixpoint sweep, per-visit spans and per-EVAL rule counts.
TEST(TraceGolden, DeskCalculatorPipeline) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();

  trace::TraceCollector C;
  C.install();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Mul(Num<2>,Num<3>)))", D);
  Evaluator E(GE.Plan);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  C.uninstall();

  EXPECT_EQ(C.threadCount(), 1u);
  checkGolden("trace_desk.golden", C.summary());
}

// An incremental session on repmin: initial evaluation, a minimum-lowering
// edit, an update showing the cutoff counters in action.
TEST(TraceGolden, RepminIncrementalUpdate) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::repmin(Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  IncrementalEvaluator IE(GE.Plan);
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Top(Fork(Leaf<5>,Fork(Leaf<7>,Leaf<9>)))", D);

  trace::TraceCollector C;
  C.install();
  ASSERT_TRUE(IE.initial(T, D)) << D.dump();
  TreeNode *Old = T.root()->child(0)->child(1)->child(0); // Leaf<7>
  IE.replaceSubtree(T, Old, T.makeLeaf(AG.findProd("Leaf"), Value::ofInt(1)));
  ASSERT_TRUE(IE.update(T, D)) << D.dump();
  C.uninstall();

  EXPECT_EQ(C.threadCount(), 1u);
  checkGolden("trace_repmin.golden", C.summary());
}

//===----------------------------------------------------------------------===//
// Collector machinery
//===----------------------------------------------------------------------===//

TEST(TraceTest, DisabledByDefault) {
  EXPECT_FALSE(trace::enabled());
  // Emissions without a collector are dropped, not crashes.
  FNC2_COUNT("trace_test.orphan", 1);
  FNC2_SPAN("trace_test.orphan_span");
}

TEST(TraceTest, InstallUninstallToggleCollection) {
  trace::TraceCollector C;
  C.install();
  EXPECT_TRUE(trace::enabled());
  EXPECT_TRUE(C.installed());
  FNC2_COUNT("trace_test.counted", 2);
  C.uninstall();
  EXPECT_FALSE(trace::enabled());
  FNC2_COUNT("trace_test.dropped", 1);

  ASSERT_EQ(C.eventCount(), 1u);
  std::vector<trace::TraceEvent> Events = C.events();
  EXPECT_STREQ(Events[0].Name, "trace_test.counted");
  EXPECT_EQ(Events[0].Value, 2u);
}

TEST(TraceTest, SecondCollectorAfterFirst) {
  trace::TraceCollector A;
  A.install();
  FNC2_COUNT("trace_test.first", 1);
  A.uninstall();

  trace::TraceCollector B;
  B.install();
  FNC2_COUNT("trace_test.second", 1);
  B.uninstall();

  ASSERT_EQ(A.eventCount(), 1u);
  ASSERT_EQ(B.eventCount(), 1u);
  EXPECT_STREQ(A.events()[0].Name, "trace_test.first");
  EXPECT_STREQ(B.events()[0].Name, "trace_test.second");
}

TEST(TraceTest, SummaryRendersSpansCountersInstants) {
  trace::TraceCollector C;
  C.install();
  {
    FNC2_SPAN("outer");
    FNC2_COUNT("ticks", 3);
    {
      FNC2_SPAN("inner");
      FNC2_INSTANT("mark", 7);
    }
  }
  C.uninstall();

  EXPECT_EQ(C.summary(), "> outer\n"
                         "  # ticks +3\n"
                         "  > inner\n"
                         "    ! mark 7\n"
                         "  < inner\n"
                         "< outer\n");
}

TEST(TraceTest, ChromeJsonIsWellFormed) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::binaryNumbers(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  trace::TraceCollector C;
  C.install();
  DiagnosticEngine D;
  Tree T = readTerm(
      AG, "Integer(Pair(Pair(Pair(Single(One),One),Zero),One))", D);
  Evaluator E(GE.Plan);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  C.uninstall();

  ASSERT_GT(C.eventCount(), 0u);
  std::string Json = C.chromeJson();
  EXPECT_TRUE(JsonChecker(Json).valid()) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\": \"E\""), std::string::npos);
}

TEST(TraceTest, MetricsJsonIsWellFormed) {
  MetricsRegistry R;
  R.add("a.b", 1);
  R.add("quote\"key", 2);
  R.add("tab\tkey", 3);
  EXPECT_TRUE(JsonChecker(R.json()).valid()) << R.json();
}

TEST(TraceTest, CountersFoldMatchesEvaluatorStats) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  trace::TraceCollector C;
  C.install();
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Num<2>))", D);
  Evaluator E(GE.Plan);
  ASSERT_TRUE(E.evaluate(T, D)) << D.dump();
  C.uninstall();

  // The trace counter and the stats counter observe the same increments.
  MetricsRegistry R;
  C.countersTo(R);
  EXPECT_EQ(R.value("eval.rules"), E.stats().RulesEvaluated);

  // And the stats export lands next to them under the schema names.
  E.stats().exportTo(R);
  EXPECT_EQ(R.value("eval.rules_evaluated"), E.stats().RulesEvaluated);
  EXPECT_EQ(R.value("eval.visits_performed"), E.stats().VisitsPerformed);
}

// The TSan target: many worker threads emit into one collector through the
// batch engine while the main thread owns install/uninstall at quiescent
// points. Any locking mistake in buffer registration shows up here.
TEST(TraceTest, BatchTracingIsRaceFree) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  ASSERT_TRUE(GE.Success) << GD.dump();

  TreeGenerator Gen(AG, 3);
  std::vector<Tree> Trees;
  for (unsigned I = 0; I != 32; ++I)
    Trees.push_back(Gen.generate(60 + I));

  ThreadPool Pool(4);
  trace::TraceCollector C;
  C.install();
  BatchEvaluator BE(GE.Plan, Pool);
  BatchResult R = BE.evaluate(Trees);
  C.uninstall();
  ASSERT_TRUE(R.allSucceeded());

  // Every tree span was recorded, and the folded rule counter agrees with
  // the merged per-worker stats.
  MetricsRegistry M;
  C.countersTo(M);
  EXPECT_EQ(M.value("eval.rules"), R.Stats.RulesEvaluated);
  uint64_t TreeSpans = 0;
  for (const trace::TraceEvent &E : C.events())
    if (E.Ph == trace::TraceEvent::Phase::Begin &&
        std::string(E.Name) == "batch.tree")
      ++TreeSpans;
  EXPECT_EQ(TreeSpans, Trees.size());

  // A second batch with a fresh collector must not see stale buffers.
  trace::TraceCollector C2;
  C2.install();
  std::vector<Tree> More;
  for (unsigned I = 0; I != 8; ++I)
    More.push_back(Gen.generate(40 + I));
  BatchResult R2 = BE.evaluate(More);
  C2.uninstall();
  ASSERT_TRUE(R2.allSucceeded());
  MetricsRegistry M2;
  C2.countersTo(M2);
  EXPECT_EQ(M2.value("eval.rules"), R2.Stats.RulesEvaluated);
}

} // namespace
