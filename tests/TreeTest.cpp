//===- tests/TreeTest.cpp - attributed tree unit tests --------------------===//

#include "tree/Tree.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

class TreeTest : public ::testing::Test {
protected:
  void SetUp() override {
    AG = workloads::deskCalculator(Diags);
    ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  }
  DiagnosticEngine Diags;
  AttributeGrammar AG{};
};

TEST_F(TreeTest, MakeAndValidate) {
  Tree T(AG);
  ProdId Num = AG.findProd("Num");
  ProdId Add = AG.findProd("Add");
  ProdId Calc = AG.findProd("Calc");
  std::vector<std::unique_ptr<TreeNode>> Kids;
  Kids.push_back(T.makeLeaf(Num, Value::ofInt(1)));
  Kids.push_back(T.makeLeaf(Num, Value::ofInt(2)));
  auto Sum = T.make(Add, std::move(Kids));
  std::vector<std::unique_ptr<TreeNode>> Top;
  Top.push_back(std::move(Sum));
  T.setRoot(T.make(Calc, std::move(Top)));

  DiagnosticEngine D;
  EXPECT_TRUE(T.validate(D)) << D.dump();
  EXPECT_EQ(T.size(), 4u);
  EXPECT_EQ(T.root()->child(0)->Parent, T.root());
  EXPECT_EQ(T.root()->child(0)->IndexInParent, 0u);
}

TEST_F(TreeTest, TermRoundTrip) {
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Mul(Num<2>,Num<3>)))", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  ASSERT_NE(T.root(), nullptr);
  EXPECT_EQ(T.size(), 6u);
  EXPECT_EQ(writeTerm(AG, T.root()), "Calc(Add(Num<1>,Mul(Num<2>,Num<3>)))");
}

TEST_F(TreeTest, TermWithStringLexeme) {
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Let<\"x\">(Num<5>,Var<\"x\">))", D);
  ASSERT_FALSE(D.hasErrors()) << D.dump();
  EXPECT_EQ(writeTerm(AG, T.root()), "Calc(Let<\"x\">(Num<5>,Var<\"x\">))");
}

TEST_F(TreeTest, TermSyntaxErrors) {
  struct Case {
    const char *Text;
    const char *ExpectSubstring;
  } Cases[] = {
      {"Nope(Num<1>)", "unknown operator"},
      {"Calc(Add(Num<1>))", "expects 2 children"},
      {"Calc(Num<1>) trailing", "trailing input"},
      {"Calc(Num)", "requires a lexeme"},
      {"Add(Num<1>,Num<2>)(", "trailing"},
  };
  for (const auto &C : Cases) {
    DiagnosticEngine D;
    readTerm(AG, C.Text, D);
    EXPECT_TRUE(D.hasErrors()) << C.Text;
    EXPECT_NE(D.dump().find(C.ExpectSubstring), std::string::npos)
        << C.Text << " => " << D.dump();
  }
}

TEST_F(TreeTest, TermRejectsWrongPhylum) {
  DiagnosticEngine D;
  // Calc expects an Exp child; Calc itself is a Prog operator.
  readTerm(AG, "Calc(Calc(Num<1>))", D);
  EXPECT_TRUE(D.hasErrors());
}

TEST_F(TreeTest, ReplaceSubtree) {
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Num<2>))", D);
  ASSERT_FALSE(D.hasErrors());
  TreeNode *Old = T.root()->child(0)->child(1); // Num<2>
  auto Fresh = T.makeLeaf(AG.findProd("Num"), Value::ofInt(9));
  auto Detached = T.replaceSubtree(Old, std::move(Fresh));
  EXPECT_EQ(writeTerm(AG, T.root()), "Calc(Add(Num<1>,Num<9>))");
  EXPECT_EQ(Detached->Lexeme.asInt(), 2);
  EXPECT_EQ(Detached->Parent, nullptr);
  DiagnosticEngine D2;
  EXPECT_TRUE(T.validate(D2)) << D2.dump();
}

TEST_F(TreeTest, ReplaceRoot) {
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Num<1>)", D);
  DiagnosticEngine D2;
  Tree T2 = readTerm(AG, "Calc(Num<42>)", D2);
  auto NewRoot = T.clone(T2.root());
  T.replaceSubtree(T.root(), std::move(NewRoot));
  EXPECT_EQ(writeTerm(AG, T.root()), "Calc(Num<42>)");
}

TEST_F(TreeTest, CloneIsDeepAndIndependent) {
  DiagnosticEngine D;
  Tree T = readTerm(AG, "Calc(Add(Num<1>,Num<2>))", D);
  auto Copy = T.clone(T.root());
  EXPECT_EQ(writeTerm(AG, Copy.get()), writeTerm(AG, T.root()));
  Copy->child(0)->child(0)->Lexeme = Value::ofInt(100);
  EXPECT_EQ(T.root()->child(0)->child(0)->Lexeme.asInt(), 1);
}

TEST_F(TreeTest, GeneratorHitsTargetSizeApproximately) {
  TreeGenerator Gen(AG, 42);
  Tree T = Gen.generate(200);
  DiagnosticEngine D;
  EXPECT_TRUE(T.validate(D)) << D.dump();
  EXPECT_GE(T.size(), 50u);
  EXPECT_LE(T.size(), 400u);
}

TEST_F(TreeTest, GeneratorIsDeterministic) {
  TreeGenerator G1(AG, 7), G2(AG, 7);
  Tree T1 = G1.generate(100), T2 = G2.generate(100);
  EXPECT_EQ(writeTerm(AG, T1.root()), writeTerm(AG, T2.root()));
  TreeGenerator G3(AG, 8);
  Tree T3 = G3.generate(100);
  EXPECT_NE(writeTerm(AG, T1.root()), writeTerm(AG, T3.root()));
}

TEST(TreeGenGrammars, GeneratesForAllClassicGrammars) {
  DiagnosticEngine Diags;
  AttributeGrammar Gs[] = {
      workloads::deskCalculator(Diags), workloads::binaryNumbers(Diags),
      workloads::repmin(Diags), workloads::twoContextGrammar(Diags)};
  ASSERT_FALSE(Diags.hasErrors()) << Diags.dump();
  for (const AttributeGrammar &AG : Gs) {
    TreeGenerator Gen(AG, 3);
    Tree T = Gen.generate(64);
    DiagnosticEngine D;
    EXPECT_TRUE(T.validate(D)) << AG.Name << ": " << D.dump();
    EXPECT_GE(T.size(), 2u) << AG.Name;
  }
}

} // namespace
