//===- tests/ValueTest.cpp - value domain unit tests ----------------------===//

#include "value/Value.h"

#include <gtest/gtest.h>

using namespace fnc2;

namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::unit().isUnit());
  EXPECT_EQ(Value::ofInt(-7).asInt(), -7);
  EXPECT_TRUE(Value::ofBool(true).asBool());
  EXPECT_EQ(Value::ofString("hi").asString(), "hi");
  Value L = Value::ofList({Value::ofInt(1), Value::ofInt(2)});
  ASSERT_TRUE(L.isList());
  EXPECT_EQ(L.asList().size(), 2u);
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_TRUE(Value::ofInt(3).equals(Value::ofInt(3)));
  EXPECT_FALSE(Value::ofInt(3).equals(Value::ofInt(4)));
  EXPECT_FALSE(Value::ofInt(3).equals(Value::ofBool(true)));
  Value A = Value::ofList({Value::ofString("x"), Value::ofInt(1)});
  Value B = Value::ofList({Value::ofString("x"), Value::ofInt(1)});
  EXPECT_TRUE(A.equals(B));
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(ValueTest, MapInsertAndLookup) {
  Value M = Value::emptyMap();
  EXPECT_EQ(M.mapLookup("x"), nullptr);
  Value M2 = M.mapInsert("x", Value::ofInt(1));
  ASSERT_NE(M2.mapLookup("x"), nullptr);
  EXPECT_EQ(M2.mapLookup("x")->asInt(), 1);
  // Persistence: the original map is unchanged.
  EXPECT_EQ(M.mapLookup("x"), nullptr);
}

TEST(ValueTest, MapShadowing) {
  Value M = Value::emptyMap()
                .mapInsert("x", Value::ofInt(1))
                .mapInsert("x", Value::ofInt(2));
  EXPECT_EQ(M.mapLookup("x")->asInt(), 2);
  EXPECT_EQ(M.mapSize(), 1u) << "shadowed binding not visible";
}

TEST(ValueTest, MapEqualityIgnoresInsertionOrder) {
  Value A = Value::emptyMap()
                .mapInsert("x", Value::ofInt(1))
                .mapInsert("y", Value::ofInt(2));
  Value B = Value::emptyMap()
                .mapInsert("y", Value::ofInt(2))
                .mapInsert("x", Value::ofInt(1));
  EXPECT_TRUE(A.equals(B));
  EXPECT_EQ(A.hash(), B.hash());
}

TEST(ValueTest, MapEqualityRespectsShadowing) {
  Value A = Value::emptyMap()
                .mapInsert("x", Value::ofInt(1))
                .mapInsert("x", Value::ofInt(2));
  Value B = Value::emptyMap().mapInsert("x", Value::ofInt(2));
  EXPECT_TRUE(A.equals(B));
}

TEST(ValueTest, ListOperations) {
  Value L = Value::ofList({});
  Value L1 = L.listAppend(Value::ofInt(1));
  EXPECT_EQ(L.asList().size(), 0u) << "lists are immutable";
  EXPECT_EQ(L1.asList().size(), 1u);
  Value L2 = Value::listConcat(L1, L1);
  EXPECT_EQ(L2.asList().size(), 2u);
}

TEST(ValueTest, Rendering) {
  EXPECT_EQ(Value::ofInt(5).str(), "5");
  EXPECT_EQ(Value::ofBool(false).str(), "false");
  EXPECT_EQ(Value::ofString("a").str(), "\"a\"");
  EXPECT_EQ(Value::ofList({Value::ofInt(1), Value::ofInt(2)}).str(), "[1, 2]");
  Value M = Value::emptyMap().mapInsert("k", Value::ofInt(9));
  EXPECT_EQ(M.str(), "{k=9}");
  EXPECT_EQ(Value::unit().str(), "()");
}

TEST(ValueTest, ListAppendBuilderIsLinear) {
  // Regression for the quadratic listAppend: the rvalue overload must reuse
  // the element vector when this value is its sole owner, so a 10k-element
  // build stays amortized O(N). The loop below finishes instantly at O(N)
  // and takes ~seconds of copying at O(N^2) with Value's copy costs —
  // but the contract we can assert deterministically is representation
  // reuse plus correct contents.
  constexpr int N = 10000;
  Value L = Value::ofList({});
  const void *LastId = nullptr;
  unsigned Reused = 0;
  for (int I = 0; I != N; ++I) {
    L = std::move(L).listAppend(Value::ofInt(I));
    Reused += L.identity() == LastId;
    LastId = L.identity();
  }
  ASSERT_EQ(L.asList().size(), size_t(N));
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(L.asList()[I].asInt(), I);
  // The sole-owner fast path must keep the same vector almost always
  // (occasional growth reallocations keep the identity, since the vector
  // object itself is reused; only the very first append may allocate).
  EXPECT_GE(Reused, unsigned(N) - 2);

  // The lvalue overload still copies: the original is not disturbed.
  Value Short = Value::ofList({Value::ofInt(1)});
  Value Extended = Short.listAppend(Value::ofInt(2));
  EXPECT_EQ(Short.asList().size(), 1u);
  EXPECT_EQ(Extended.asList().size(), 2u);
  EXPECT_NE(Short.identity(), Extended.identity());

  // A shared list must not be mutated by the rvalue path either.
  Value Shared = Value::ofList({Value::ofInt(7)});
  Value Alias = Shared;
  Value Grown = std::move(Shared).listAppend(Value::ofInt(8));
  EXPECT_EQ(Alias.asList().size(), 1u);
  EXPECT_EQ(Grown.asList().size(), 2u);
}

TEST(ValueTest, SharedTailsCompareFast) {
  // Build a long chain once, extend it two different ways; equality on the
  // shared part must be correct.
  Value Base = Value::emptyMap();
  for (int I = 0; I != 100; ++I)
    Base = Base.mapInsert("k" + std::to_string(I), Value::ofInt(I));
  Value A = Base.mapInsert("extra", Value::ofInt(1));
  Value B = Base.mapInsert("extra", Value::ofInt(1));
  EXPECT_TRUE(A.equals(B));
  Value C = Base.mapInsert("extra", Value::ofInt(2));
  EXPECT_FALSE(A.equals(C));
}

} // namespace
