#!/bin/sh
# ci.sh — tier-1 verification, perf baselines, and the concurrency race
# gate, one command.
#
#   1. Release-ish build of everything + the full test suite (including the
#      incremental edit-oracle and the golden-trace suites).
#   2. Perf baselines: the observability-overhead bench (evaluator family
#      timings, tracing off vs on), the batch-throughput bench and the
#      generator-scaling bench (cascade: naive vs worklist fixpoint); their
#      JSON outputs are copied to BENCH_evaluators.json, BENCH_batch.json
#      and BENCH_generator.json at the repo root on every run.
#   3. bench_check: the fresh bench JSONs are diffed against the committed
#      baselines; any shared data point more than 25% worse fails the run
#      (bench/bench_check.py — tolerant to added/removed points).
#   4. ThreadSanitizer build (-DFNC2_SANITIZE=thread) + the concurrency,
#      differential, interning, trace, oracle and parallel-cascade tests,
#      which exercise the shared-plan read path, the string-interning pool,
#      the per-thread trace buffers and the fixpoint engine's parallel
#      rounds from many threads.
#
# Usage: ./ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"
SRC="$(cd "$(dirname "$0")" && pwd)"

echo "== [1/4] RelWithDebInfo build + full ctest =="
cmake -B "$SRC/build" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SRC/build" -j "$JOBS"
ctest --test-dir "$SRC/build" --output-on-failure -j "$JOBS"

echo "== [2/4] perf baselines (observability + batch + generator scaling) =="
cmake --build "$SRC/build" -j "$JOBS" \
      --target observability_overhead batch_throughput generator_scaling
(cd "$SRC/build/bench" && ./observability_overhead)
(cd "$SRC/build/bench" && ./batch_throughput --benchmark_min_time=0.05s)
(cd "$SRC/build/bench" && ./generator_scaling)

echo "== [3/4] bench_check against committed baselines =="
if [ -f "$SRC/BENCH_evaluators.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_evaluators.json" \
          "$SRC/build/bench/evaluator_baselines.json"
fi
if [ -f "$SRC/BENCH_batch.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_batch.json" \
          "$SRC/build/bench/batch_throughput.json"
fi
if [ -f "$SRC/BENCH_generator.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_generator.json" \
          "$SRC/build/bench/generator_scaling.json"
fi
cp "$SRC/build/bench/evaluator_baselines.json" "$SRC/BENCH_evaluators.json"
cp "$SRC/build/bench/batch_throughput.json" "$SRC/BENCH_batch.json"
cp "$SRC/build/bench/generator_scaling.json" "$SRC/BENCH_generator.json"
echo "wrote BENCH_evaluators.json, BENCH_batch.json, BENCH_generator.json"

echo "== [4/4] ThreadSanitizer build + race gate =="
cmake -B "$SRC/build-tsan" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFNC2_SANITIZE=thread
cmake --build "$SRC/build-tsan" -j "$JOBS" \
      --target concurrency_test differential_test value_intern_test \
               trace_test incremental_oracle_test analysis_test
ctest --test-dir "$SRC/build-tsan" --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|Concurrency|Differential|ValueIntern|Trace|Oracle|Cascade'

echo "ci.sh: all green"
