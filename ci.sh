#!/bin/sh
# ci.sh — tier-1 verification, perf baselines, and the concurrency race
# gate, one command.
#
#   1. Release-ish build of everything + the full test suite (including the
#      incremental edit-oracle, golden-trace and artifact-cache suites).
#   2. Perf baselines: the observability-overhead bench (evaluator family
#      timings, tracing off vs on), the batch-throughput bench, the
#      generator-scaling bench (cascade: naive vs worklist fixpoint) and the
#      cache-warmup bench (cold cascade+store vs warm artifact load; the
#      bench itself exits nonzero if any warm run misses the cache or if the
#      warm speedup falls below the 5x floor at the largest sweep point);
#      and the incremental-scaling bench (edit-log replay against 1k/10k/
#      100k-node trees; the bench exits nonzero unless median per-edit work
#      stays proportional to the affected region — not the tree — and every
#      session, including the 100k-node one, saves and resumes
#      bit-identically); their JSON outputs are copied to
#      BENCH_evaluators.json, BENCH_batch.json, BENCH_generator.json,
#      BENCH_cache.json and BENCH_incremental.json at the repo root on
#      every run.
#   3. bench_check: the fresh bench JSONs are diffed against the committed
#      baselines; any shared data point more than 25% worse fails the run
#      (bench/bench_check.py — tolerant to added/removed points).
#   4. AddressSanitizer+UBSan build (-DFNC2_SANITIZE=address,undefined) of
#      the serialization, artifact-cache and edit-log/session suites: every
#      corruption-injection case (byte flips, truncations, version bumps,
#      stale keys — on artifacts, edit logs and persisted sessions alike)
#      must be rejected without touching invalid memory.
#   5. ThreadSanitizer build (-DFNC2_SANITIZE=thread) + the concurrency,
#      differential, interning, trace, oracle, parallel-cascade,
#      artifact-cache and multi-session race tests, which exercise the
#      shared-plan read path, the string-interning pool, the per-thread
#      trace buffers, the fixpoint engine's parallel rounds, racing cache
#      store/load, and many incremental sessions editing concurrently over
#      one immutable compiled plan.
#
# Usage: ./ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"
SRC="$(cd "$(dirname "$0")" && pwd)"

echo "== [1/5] RelWithDebInfo build + full ctest =="
cmake -B "$SRC/build" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SRC/build" -j "$JOBS"
ctest --test-dir "$SRC/build" --output-on-failure -j "$JOBS"

echo "== [2/5] perf baselines (observability + batch + generator + cache + incremental) =="
cmake --build "$SRC/build" -j "$JOBS" \
      --target observability_overhead batch_throughput generator_scaling \
               cache_warmup incremental_scaling
(cd "$SRC/build/bench" && ./observability_overhead)
(cd "$SRC/build/bench" && ./batch_throughput --benchmark_min_time=0.05s)
(cd "$SRC/build/bench" && ./generator_scaling)
# cache_warmup doubles as the cold-then-warm generator gate: it asserts
# every warm-phase generateEvaluator call reports FromCache (a cache.hit)
# and enforces the >=5x warm speedup floor, exiting 1 otherwise.
(cd "$SRC/build/bench" && ./cache_warmup)
# incremental_scaling self-gates: median per-edit reevaluation must stay
# proportional to the bounded edit region from 1k to 100k nodes, beat a
# from-scratch pass by >=4x at every point, and every session must save
# and resume bit-identically (the 100k point stresses serialization).
(cd "$SRC/build/bench" && ./incremental_scaling)

echo "== [3/5] bench_check against committed baselines =="
if [ -f "$SRC/BENCH_evaluators.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_evaluators.json" \
          "$SRC/build/bench/evaluator_baselines.json"
fi
if [ -f "$SRC/BENCH_batch.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_batch.json" \
          "$SRC/build/bench/batch_throughput.json"
fi
if [ -f "$SRC/BENCH_generator.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_generator.json" \
          "$SRC/build/bench/generator_scaling.json"
fi
if [ -f "$SRC/BENCH_cache.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_cache.json" \
          "$SRC/build/bench/cache_warmup.json"
fi
if [ -f "$SRC/BENCH_incremental.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_incremental.json" \
          "$SRC/build/bench/incremental_scaling.json"
fi
cp "$SRC/build/bench/evaluator_baselines.json" "$SRC/BENCH_evaluators.json"
cp "$SRC/build/bench/batch_throughput.json" "$SRC/BENCH_batch.json"
cp "$SRC/build/bench/generator_scaling.json" "$SRC/BENCH_generator.json"
cp "$SRC/build/bench/cache_warmup.json" "$SRC/BENCH_cache.json"
cp "$SRC/build/bench/incremental_scaling.json" "$SRC/BENCH_incremental.json"
echo "wrote BENCH_evaluators.json, BENCH_batch.json, BENCH_generator.json," \
     "BENCH_cache.json, BENCH_incremental.json"

echo "== [4/5] ASan+UBSan build + serialization/corruption gate =="
cmake -B "$SRC/build-asan" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFNC2_SANITIZE=address,undefined
cmake --build "$SRC/build-asan" -j "$JOBS" \
      --target serialize_test artifact_cache_test edit_log_test
ctest --test-dir "$SRC/build-asan" --output-on-failure -j "$JOBS" \
      -R 'Serialize|ArtifactFile|Artifact|EditLog|Session|ValueCodec|SubtreeCodec'

echo "== [5/5] ThreadSanitizer build + race gate =="
cmake -B "$SRC/build-tsan" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFNC2_SANITIZE=thread
cmake --build "$SRC/build-tsan" -j "$JOBS" \
      --target concurrency_test differential_test value_intern_test \
               trace_test incremental_oracle_test analysis_test \
               artifact_cache_test edit_log_test
ctest --test-dir "$SRC/build-tsan" --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|Concurrency|Differential|ValueIntern|Trace|Oracle|Cascade|Artifact|EditLogConcurrency|SessionFuzz'

echo "ci.sh: all green"
