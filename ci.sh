#!/bin/sh
# ci.sh — tier-1 verification, perf baselines, and the concurrency race
# gate, one command.
#
#   1. Release-ish build of everything + the full test suite (including the
#      incremental edit-oracle and the golden-trace suites).
#   2. Perf baselines: the observability-overhead bench (evaluator family
#      timings, tracing off vs on) and the batch-throughput bench; their
#      JSON outputs are copied to BENCH_evaluators.json and BENCH_batch.json
#      at the repo root on every run.
#   3. bench_check: the fresh bench JSONs are diffed against the committed
#      baselines; any shared data point more than 25% worse fails the run
#      (bench/bench_check.py — tolerant to added/removed points).
#   4. ThreadSanitizer build (-DFNC2_SANITIZE=thread) + the concurrency,
#      differential, interning, trace and oracle tests, which exercise the
#      shared-plan read path, the string-interning pool and the per-thread
#      trace buffers from many threads.
#
# Usage: ./ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"
SRC="$(cd "$(dirname "$0")" && pwd)"

echo "== [1/4] RelWithDebInfo build + full ctest =="
cmake -B "$SRC/build" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SRC/build" -j "$JOBS"
ctest --test-dir "$SRC/build" --output-on-failure -j "$JOBS"

echo "== [2/4] perf baselines (observability overhead + batch throughput) =="
cmake --build "$SRC/build" -j "$JOBS" \
      --target observability_overhead batch_throughput
(cd "$SRC/build/bench" && ./observability_overhead)
(cd "$SRC/build/bench" && ./batch_throughput --benchmark_min_time=0.05s)

echo "== [3/4] bench_check against committed baselines =="
if [ -f "$SRC/BENCH_evaluators.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_evaluators.json" \
          "$SRC/build/bench/evaluator_baselines.json"
fi
if [ -f "$SRC/BENCH_batch.json" ]; then
  python3 "$SRC/bench/bench_check.py" "$SRC/BENCH_batch.json" \
          "$SRC/build/bench/batch_throughput.json"
fi
cp "$SRC/build/bench/evaluator_baselines.json" "$SRC/BENCH_evaluators.json"
cp "$SRC/build/bench/batch_throughput.json" "$SRC/BENCH_batch.json"
echo "wrote BENCH_evaluators.json, BENCH_batch.json"

echo "== [4/4] ThreadSanitizer build + race gate =="
cmake -B "$SRC/build-tsan" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFNC2_SANITIZE=thread
cmake --build "$SRC/build-tsan" -j "$JOBS" \
      --target concurrency_test differential_test value_intern_test \
               trace_test incremental_oracle_test
ctest --test-dir "$SRC/build-tsan" --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|Concurrency|Differential|ValueIntern|Trace|Oracle'

echo "ci.sh: all green"
