#!/bin/sh
# ci.sh — tier-1 verification plus the concurrency race gate, one command.
#
#   1. Release-ish build of everything + the full test suite.
#   2. ThreadSanitizer build (-DFNC2_SANITIZE=thread) + the concurrency and
#      differential tests, which exercise the shared-plan read path from
#      many threads.
#
# Usage: ./ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 2)}"
SRC="$(cd "$(dirname "$0")" && pwd)"

echo "== [1/2] RelWithDebInfo build + full ctest =="
cmake -B "$SRC/build" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$SRC/build" -j "$JOBS"
ctest --test-dir "$SRC/build" --output-on-failure -j "$JOBS"

echo "== [2/2] ThreadSanitizer build + race gate =="
cmake -B "$SRC/build-tsan" -S "$SRC" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFNC2_SANITIZE=thread
cmake --build "$SRC/build-tsan" -j "$JOBS" \
      --target concurrency_test differential_test
ctest --test-dir "$SRC/build-tsan" --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|Concurrency|Differential'

echo "ci.sh: all green"
