//===- bench/ablation_space.cpp - space optimization ablation -------------===//
//
// Section 2.2 / 4.1: the static storage split (variables / stacks / tree
// cells), the grouping of variables and stacks driven by copy-rule counts
// (the paper cuts AG 5's variables 595 -> 106 and stacks 278 -> 49), and
// the dynamic effect: "a decrease of the number of attribute storage cells
// by a factor of 4 to 8 in the execution of AG 5 on various source texts".
// We report peak live cells under the storage-optimized evaluator against
// the tree-resident baseline across tree sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "storage/StorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

int main(int argc, char **argv) {
  // Static picture: classification and grouping per grammar.
  {
    TablePrinter T({"grammar", "% vars", "% stacks", "% tree",
                    "vars before", "vars after", "stacks before",
                    "stacks after", "copies elim."});
    auto report = [&](const AttributeGrammar &AG) {
      DiagnosticEngine D;
      GeneratedEvaluator GE = generateEvaluator(AG, D);
      if (!GE.Success)
        return;
      const StorageAssignment &SA = GE.Storage;
      unsigned VarIds = 0, StackIds = 0;
      for (unsigned Id = 0; Id != SA.Ids.numIds(); ++Id) {
        VarIds += SA.ClassOf[Id] == StorageClass::Variable;
        StackIds += SA.ClassOf[Id] == StorageClass::Stack;
      }
      T.addRow({AG.Name, TablePrinter::pct(SA.pctVariables()),
                TablePrinter::pct(SA.pctStacks()),
                TablePrinter::pct(SA.pctTree()), std::to_string(VarIds),
                std::to_string(SA.NumVarGroups), std::to_string(StackIds),
                std::to_string(SA.NumStackGroups),
                std::to_string(SA.EliminatedCopyRules) + "/" +
                    std::to_string(SA.TotalCopyRules)});
    };
    DiagnosticEngine Diags;
    AttributeGrammar G1 = workloads::deskCalculator(Diags);
    AttributeGrammar G2 = workloads::miniPascal(Diags);
    report(G1);
    report(G2);
    for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
      DiagnosticEngine D;
      olga::CompileResult R = olga::compileMolga(Ag.Source, D);
      if (!R.Success)
        continue;
      AttributeGrammar AG = std::move(R.Grammars[0].AG);
      AG.Name = Ag.Name + "-analogue";
      report(AG);
    }
    std::printf("== ablation: static storage classes and grouping ==\n%s\n",
                T.str().c_str());
  }

  // Dynamic picture: peak cells vs tree baseline across tree sizes, on the
  // AG5 analogue (the paper's subject) and mini-Pascal.
  {
    TablePrinter T({"grammar", "nodes", "baseline cells", "peak cells",
                    "reduction", "copies skipped"});
    auto sweep = [&](const AttributeGrammar &AG, std::string Name) {
      DiagnosticEngine D;
      GeneratedEvaluator GE = generateEvaluator(AG, D);
      if (!GE.Success)
        return;
      for (unsigned Size : {500u, 2000u, 8000u}) {
        StorageEvaluator SE(GE.Plan, GE.Storage);
        TreeGenerator Gen(AG, Size);
        Tree Tr = Gen.generate(Size);
        DiagnosticEngine TD;
        if (!SE.evaluate(Tr, TD)) {
          std::fprintf(stderr, "%s: %s\n", Name.c_str(), TD.dump().c_str());
          return;
        }
        const StorageStats &S = SE.stats();
        T.addRow({Name, std::to_string(Tr.size()),
                  std::to_string(S.TreeBaselineCells),
                  std::to_string(S.PeakLiveCells),
                  TablePrinter::num(S.reductionFactor(), 2) + "x",
                  std::to_string(S.CopiesSkipped)});
      }
    };
    DiagnosticEngine Diags;
    AttributeGrammar Calc = workloads::deskCalculator(Diags);
    sweep(Calc, "desk-calc");
    AttributeGrammar Pascal = workloads::miniPascal(Diags);
    sweep(Pascal, "mini-pascal");
    for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
      if (Ag.Name != "AG5")
        continue;
      DiagnosticEngine D;
      olga::CompileResult R = olga::compileMolga(Ag.Source, D);
      if (R.Success)
        sweep(R.Grammars[0].AG, "AG5-analogue");
    }
    std::printf("== ablation: dynamic storage cells, optimized vs "
                "tree-resident (paper: 4-8x) ==\n%s\n",
                T.str().c_str());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
