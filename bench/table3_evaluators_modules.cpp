//===- bench/table3_evaluators_modules.cpp - Paper Table 3 ----------------===//
//
// Reproduces Table 3: the same processing statistics on *modules* (molga
// texts not specifying an AG). Rows mirror the paper's C1/F1..C6/F6 pairs:
// Cn are small declaration-style modules, Fn the larger definition modules.
// The typing rate here is the compiler-like figure the paper highlights
// (an AG source additionally pays for well-definedness checking, so module
// typing is faster per line than AG typing — compare with Table 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/CEmitter.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static void printTable3() {
  TablePrinter T({"module", "# lines", "input (s)", "typing (s)",
                  "translator (s)", "memory (kB)", "total (s)",
                  "typing l/mn"});
  // Fun counts chosen so line counts roughly follow the paper's rows
  // (C1 189 / F1 372 / ... / F2 3188 being the largest).
  struct Row {
    const char *Name;
    unsigned Funs;
  } Rows[] = {{"C1", 30},  {"F1", 60},  {"C2", 50},  {"F2", 520},
              {"C3", 45},  {"F3", 180}, {"C4", 65},  {"F4", 200},
              {"C5", 66},  {"F5", 150}, {"C6", 14},  {"F6", 45}};
  unsigned Seed = 42;
  for (const Row &R : Rows) {
    std::string Src = workloads::generateMolgaModule(R.Name, R.Funs, ++Seed);
    Timer Total;
    DiagnosticEngine Diags;
    olga::CompileResult C = olga::compileMolga(Src, Diags);
    if (!C.Success) {
      std::fprintf(stderr, "%s failed: %s\n", R.Name, Diags.dump().c_str());
      continue;
    }
    Timer Translate;
    CEmitStats CS;
    DiagnosticEngine ED;
    std::string CCode = emitCFunctions(*C.Prog, CS, ED);
    double TranslatorSec = Translate.seconds();
    double TotalSec = Total.seconds();
    benchmark::DoNotOptimize(CCode.size());

    T.addRow({R.Name, std::to_string(C.Lines),
              TablePrinter::num(C.Phases.InputSec, 4),
              TablePrinter::num(C.Phases.TypingSec, 4),
              TablePrinter::num(TranslatorSec, 4),
              std::to_string(residentKb()), TablePrinter::num(TotalSec, 4),
              linesPerMinute(C.Lines, C.Phases.TypingSec)});
  }
  std::printf("== Table 3: generated-evaluator statistics on modules ==\n%s\n",
              T.str().c_str());
}

static void BM_TypeCheckLargeModule(benchmark::State &State) {
  std::string Src = workloads::generateMolgaModule("F2", 520, 7);
  for (auto _ : State) {
    DiagnosticEngine D;
    olga::CompileResult C = olga::compileMolga(Src, D);
    benchmark::DoNotOptimize(C.Success);
  }
}
BENCHMARK(BM_TypeCheckLargeModule)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
