//===- bench/fig3_generator_cascade.cpp - Paper Figure 3 ------------------===//
//
// Exercises the generator cascade of Figure 3 (SNC test -> DNC test ->
// OAG test -> transformation -> visit sequences -> space optimization) and
// measures two of the paper's claims:
//
//  * per-phase times on the system suite (the boxes of the figure);
//  * "cascading these phases costs the same as performing the OAG test
//    from scratch, since the first phase of the OAG test is the DNC test,
//    and the first phase of the latter is the SNC test": we compare the
//    full cascade against running the OAG test directly;
//  * the time row of Table 1 is "clearly non-linear but also
//    non-exponential": a size sweep shows the growth curve.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

int main(int argc, char **argv) {
  // Per-phase times on the suite.
  {
    TablePrinter T({"AG", "SNC (ms)", "DNC (ms)", "OAG (ms)",
                    "transform (ms)", "visit-seq (ms)", "storage (ms)",
                    "total (ms)"});
    for (const SuiteEntry &E : buildSystemSuite()) {
      const GeneratorPhaseTimes &P = E.Evaluator.Times;
      T.addRow({E.Ag.Name, TablePrinter::num(P.Snc * 1e3, 2),
                TablePrinter::num(P.Dnc * 1e3, 2),
                TablePrinter::num(P.Oag * 1e3, 2),
                TablePrinter::num(P.Transform * 1e3, 2),
                TablePrinter::num(P.VisitSeq * 1e3, 2),
                TablePrinter::num(P.Storage * 1e3, 2),
                TablePrinter::num(P.total() * 1e3, 2)});
    }
    std::printf("== Figure 3: generator cascade, per-phase times ==\n%s\n",
                T.str().c_str());
  }

  // Cascade vs direct OAG.
  {
    TablePrinter T({"AG", "cascade SNC+DNC+OAG (ms)", "direct OAG (ms)"});
    for (const SuiteEntry &E : buildSystemSuite()) {
      const AttributeGrammar &AG = E.Compile.Grammars[0].AG;
      Timer C;
      ClassifyResult CR = classifyGrammar(AG, E.Ag.OagK);
      double CascadeMs = C.milliseconds();
      benchmark::DoNotOptimize(CR.Class);
      Timer D;
      OagResult OR = runOagTest(AG, E.Ag.OagK);
      double DirectMs = D.milliseconds();
      benchmark::DoNotOptimize(OR.IsOAG);
      T.addRow({E.Ag.Name, TablePrinter::num(CascadeMs, 2),
                TablePrinter::num(DirectMs, 2)});
    }
    std::printf("== cascade vs direct OAG test (same order of magnitude) =="
                "\n%s\n",
                T.str().c_str());
  }

  // Size sweep: non-linear but non-exponential growth.
  {
    TablePrinter T({"phyla", "occ. attr.", "generator (ms)",
                    "ms per occ. attr."});
    for (unsigned Phyla : {8u, 16u, 32u, 64u, 128u}) {
      workloads::SpecGenOptions Opts;
      Opts.Name = "F3";
      Opts.Phyla = Phyla;
      Opts.AttrPairs = 2;
      Opts.Seed = 3000 + Phyla;
      DiagnosticEngine Diags;
      olga::CompileResult C =
          olga::compileMolga(workloads::generateMolgaSpec(Opts), Diags);
      if (!C.Success)
        continue;
      DiagnosticEngine GD;
      Timer G;
      GeneratedEvaluator GE = generateEvaluator(C.Grammars[0].AG, GD);
      double Ms = G.milliseconds();
      benchmark::DoNotOptimize(GE.Success);
      unsigned Occ = C.Grammars[0].AG.numAttrOccurrences();
      T.addRow({std::to_string(Phyla), std::to_string(Occ),
                TablePrinter::num(Ms, 2), TablePrinter::num(Ms / Occ, 4)});
    }
    std::printf("== generator scaling (non-linear, non-exponential) ==\n%s\n",
                T.str().c_str());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
