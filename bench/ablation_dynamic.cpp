//===- bench/ablation_dynamic.cpp - static vs dynamic scheduling ----------===//
//
// The design choice of section 2.1.1: FNC-2 ruled out dynamic scheduling —
// "as much information as possible about the evaluation order should be
// embodied in the code of the evaluator itself and not computed at
// run-time". We compare the visit-sequence interpreter (static schedule)
// against the demand-driven evaluator (dynamic schedule with memoization
// and cycle detection) on identical trees.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

struct Workload {
  AttributeGrammar AG;
  EvaluationPlan Plan;
};

Workload makeWorkload(int Which) {
  DiagnosticEngine Diags;
  Workload W;
  W.AG = Which == 0 ? workloads::deskCalculator(Diags)
                    : Which == 1 ? workloads::binaryNumbers(Diags)
                                 : workloads::miniPascal(Diags);
  DiagnosticEngine D;
  GeneratedEvaluator GE = generateEvaluator(W.AG, D);
  W.Plan = std::move(GE.Plan);
  W.Plan.AG = &W.AG;
  return W;
}

} // namespace

static void BM_StaticVisitSequences(benchmark::State &State) {
  static Workload W = makeWorkload(static_cast<int>(0));
  TreeGenerator Gen(W.AG, 11);
  Tree Tr = Gen.generate(static_cast<unsigned>(State.range(0)));
  Evaluator E(W.Plan);
  for (auto _ : State) {
    DiagnosticEngine D;
    bool Ok = E.evaluate(Tr, D);
    benchmark::DoNotOptimize(Ok);
  }
  State.counters["rules/s"] = benchmark::Counter(
      double(E.stats().RulesEvaluated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaticVisitSequences)->Arg(1000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

static void BM_DynamicDemandDriven(benchmark::State &State) {
  static Workload W = makeWorkload(static_cast<int>(0));
  TreeGenerator Gen(W.AG, 11);
  Tree Tr = Gen.generate(static_cast<unsigned>(State.range(0)));
  DemandEvaluator E(W.AG);
  for (auto _ : State) {
    DiagnosticEngine D;
    bool Ok = E.evaluateAll(Tr, D);
    benchmark::DoNotOptimize(Ok);
  }
  State.counters["rules/s"] = benchmark::Counter(
      double(E.stats().RulesEvaluated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DynamicDemandDriven)->Arg(1000)->Arg(8000)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  // Narrative table with one-shot timings across grammars.
  TablePrinter T({"grammar", "nodes", "static (ms)", "dynamic (ms)",
                  "dynamic/static", "static dispatches",
                  "dynamic dispatches"});
  for (int Which = 0; Which != 3; ++Which) {
    Workload W = makeWorkload(Which);
    TreeGenerator Gen(W.AG, 23);
    Tree Tr = Gen.generate(8000);
    Evaluator SE(W.Plan);
    DemandEvaluator DE(W.AG);
    DiagnosticEngine D;
    Timer TS;
    if (!SE.evaluate(Tr, D))
      continue;
    double StaticMs = TS.milliseconds();
    Timer TD;
    if (!DE.evaluateAll(Tr, D))
      continue;
    double DynamicMs = TD.milliseconds();
    T.addRow({W.AG.Name, std::to_string(Tr.size()),
              TablePrinter::num(StaticMs, 2), TablePrinter::num(DynamicMs, 2),
              TablePrinter::num(DynamicMs / StaticMs, 2) + "x",
              std::to_string(SE.stats().InstructionsExecuted),
              std::to_string(DE.stats().InstructionsExecuted)});
  }
  std::printf("== ablation: static visit sequences vs dynamic scheduling ==\n"
              "%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
