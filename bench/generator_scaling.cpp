//===- bench/generator_scaling.cpp - Cascade scaling: naive vs worklist ---===//
//
// The generator-cascade scaling study behind the worklist rewrite: SpecGen
// synthesizes grammars of growing phylum/operator/attribute counts, and
// each point runs the full front half of the generator — SNC, DNC, OAG
// tests plus the transformation/partitioning phase — under both fixpoint
// formulations:
//
//   naive     global re-sweeps, heap Digraphs, full Warshall closures
//             (GfaOptions::NaiveFixpoint, the pre-rewrite formulation)
//   worklist  per-production dirty bits, word-parallel paste/projection,
//             incrementally re-closed cached closures, parallel rounds
//             above the grammar-size gate
//
// Emits generator_scaling.json with one ms_per_round row per (spec, engine)
// for bench_check.py trend tracking (baseline: BENCH_generator.json), and
// prints the speedup table the README quotes. Exits 1 if a spec fails to
// compile or the two engines disagree on the class — the bench doubles as
// a coarse differential check.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "ordered/Transform.h"

#include <cstdio>
#include <vector>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

constexpr unsigned Rounds = 5;

struct SweepPoint {
  const char *Name;
  unsigned Phyla, Ops, AttrPairs;
};

// The largest point is sized to clear the default parallel gate
// (GfaOptions::ParallelMinWork) on its early all-dirty rounds.
const SweepPoint Sweep[] = {
    {"S1-small", 8, 3, 2},
    {"S2-medium", 16, 4, 3},
    {"S3-large", 28, 6, 4},
    {"S4-xlarge", 48, 8, 7},
};

struct Entry {
  std::string Spec;
  std::string Engine;
  double MsPerRound = 0;
  std::string Class;
};

/// One cascade + transform run, the unit both engines are timed on. This is
/// exactly the generator's phases 1-4 (figure 3) minus visit sequences and
/// storage, which are independent of the fixpoint formulation.
std::string runCascade(const AttributeGrammar &AG, const GfaOptions &Gfa) {
  ClassifyResult R = classifyGrammar(AG, /*OagK=*/1, Gfa);
  if (R.Class == AgClass::OAG)
    (void)uniformInstances(AG, R.Oag.Partitions);
  else if (R.Snc.IsSNC)
    (void)sncToLOrdered(AG, R.Snc, ReuseMode::LongInclusion);
  return R.className();
}

Entry measure(const std::string &Spec, const std::string &Engine,
              const AttributeGrammar &AG, const GfaOptions &Gfa) {
  Entry E;
  E.Spec = Spec;
  E.Engine = Engine;
  E.Class = runCascade(AG, Gfa); // warm-up
  Timer T;
  for (unsigned R = 0; R != Rounds; ++R)
    runCascade(AG, Gfa);
  E.MsPerRound = T.seconds() * 1e3 / Rounds;
  return E;
}

void emitJson(const std::vector<Entry> &Es) {
  std::ofstream Out("generator_scaling.json");
  Out << "{\n  \"rounds\": " << Rounds << ",\n  \"entries\": [\n";
  for (size_t I = 0; I != Es.size(); ++I) {
    const Entry &E = Es[I];
    Out << "    {\"spec\": \"" << E.Spec << "\", \"engine\": \"" << E.Engine
        << "\", \"class\": \"" << E.Class
        << "\", \"ms_per_round\": " << E.MsPerRound << "}"
        << (I + 1 == Es.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
}

} // namespace

int main() {
  GfaOptions Naive;
  Naive.NaiveFixpoint = true;
  GfaOptions Worklist; // defaults: worklist engine, gated parallel rounds

  std::vector<Entry> Entries;
  TablePrinter T({"spec", "phyla", "prods", "class", "naive ms",
                  "worklist ms", "speedup"});
  bool Ok = true;
  for (const SweepPoint &P : Sweep) {
    workloads::SpecGenOptions Opts;
    Opts.Name = "Scale" + std::to_string(P.Phyla);
    Opts.Phyla = P.Phyla;
    Opts.OperatorsPerPhylum = P.Ops;
    Opts.AttrPairs = P.AttrPairs;
    Opts.Seed = 7;
    DiagnosticEngine Diags;
    olga::CompileResult C =
        olga::compileMolga(workloads::generateMolgaSpec(Opts), Diags);
    if (!C.Success) {
      std::fprintf(stderr, "%s: compile failed:\n%s\n", P.Name,
                   Diags.dump().c_str());
      return 1;
    }
    const AttributeGrammar &AG = C.Grammars[0].AG;

    Entry N = measure(P.Name, "naive", AG, Naive);
    Entry W = measure(P.Name, "worklist", AG, Worklist);
    if (N.Class != W.Class) {
      std::fprintf(stderr, "%s: engines disagree: naive=%s worklist=%s\n",
                   P.Name, N.Class.c_str(), W.Class.c_str());
      Ok = false;
    }
    double Speedup = W.MsPerRound > 0 ? N.MsPerRound / W.MsPerRound : 0;
    T.addRow({P.Name, std::to_string(P.Phyla),
              std::to_string(AG.numProds()), W.Class,
              TablePrinter::num(N.MsPerRound, 3),
              TablePrinter::num(W.MsPerRound, 3),
              TablePrinter::num(Speedup, 2) + "x"});
    Entries.push_back(N);
    Entries.push_back(W);
  }

  std::printf("== generator cascade scaling (SNC+DNC+OAG+transform, "
              "%u rounds per point) ==\n%s\n",
              Rounds, T.str().c_str());
  emitJson(Entries);
  std::printf("wrote generator_scaling.json\n");
  return Ok ? 0 : 1;
}
