//===- bench/batch_throughput.cpp - Parallel batch evaluation -------------===//
//
// Throughput and scaling of the parallel batch engine: batches of disjoint
// trees evaluated against one shared plan at 1/2/4/8 threads, over the
// SpecGen system-AG suite (AG1..AG7 analogues) and the MiniPascal workload,
// for both the tree-resident and the storage-optimized interpreters. Trees
// are independent, so on real multicore hardware scaling is expected to be
// near-linear; the printed table reports trees/sec per thread count and the
// speedup at the widest configuration, and the same numbers are emitted as
// batch_throughput.json next to the table for downstream tooling.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/BatchEvaluator.h"
#include "storage/BatchStorageEvaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

#include <thread>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

constexpr unsigned ThreadSteps[] = {1, 2, 4, 8};
constexpr unsigned BatchTrees = 64;

struct Workload {
  std::string Name;
  const AttributeGrammar *AG = nullptr;
  const GeneratedEvaluator *GE = nullptr;
  std::vector<Tree> Trees;
  unsigned TotalNodes = 0;
};

struct Measurement {
  std::string Workload;
  std::string Engine;
  unsigned Threads = 0;
  double TreesPerSec = 0;
  double Speedup = 1.0;
};

/// Generated trees for one grammar, ~\p TreeSize nodes each.
void fillTrees(Workload &W, unsigned TreeSize, uint64_t Seed) {
  TreeGenerator Gen(*W.AG, Seed);
  for (unsigned I = 0; I != BatchTrees; ++I) {
    Tree T = Gen.generate(TreeSize);
    W.TotalNodes += T.size();
    W.Trees.push_back(std::move(T));
  }
}

/// Times \p Run over enough rounds to fill ~0.3 s and returns trees/sec.
template <typename Fn> double treesPerSec(size_t TreesPerRound, Fn Run) {
  Run(); // warm-up: faults in node storage, sizes caches
  unsigned Rounds = 1;
  for (;;) {
    Timer T;
    for (unsigned R = 0; R != Rounds; ++R)
      Run();
    double Sec = T.seconds();
    if (Sec > 0.3 || Rounds >= 64)
      return double(TreesPerRound) * Rounds / (Sec > 0 ? Sec : 1e-9);
    Rounds *= 4;
  }
}

void measureWorkload(Workload &W, TablePrinter &T,
                     std::vector<Measurement> &Out) {
  for (const char *Engine : {"tree", "storage"}) {
    bool Storage = Engine[0] == 's';
    std::vector<std::string> Row{W.Name + " (" + Engine + ")",
                                 std::to_string(W.Trees.size()),
                                 std::to_string(W.TotalNodes /
                                                unsigned(W.Trees.size()))};
    double Base = 0;
    for (unsigned Threads : ThreadSteps) {
      ThreadPool Pool(Threads);
      double Rate;
      if (Storage) {
        BatchStorageEvaluator BE(W.GE->Plan, W.GE->Storage, Pool);
        Rate = treesPerSec(W.Trees.size(), [&] {
          BatchStorageResult R = BE.evaluate(W.Trees);
          if (!R.allSucceeded())
            std::exit(1);
          benchmark::DoNotOptimize(R.Stats.RulesEvaluated);
        });
      } else {
        BatchEvaluator BE(W.GE->Plan, Pool);
        Rate = treesPerSec(W.Trees.size(), [&] {
          BatchResult R = BE.evaluate(W.Trees);
          if (!R.allSucceeded())
            std::exit(1);
          benchmark::DoNotOptimize(R.Stats.RulesEvaluated);
        });
      }
      if (Base == 0)
        Base = Rate;
      Row.push_back(TablePrinter::num(Rate, 0));
      Out.push_back({W.Name, Engine, Threads, Rate, Rate / Base});
    }
    Row.push_back(TablePrinter::num(Out.back().Speedup, 2) + "x");
    T.addRow(Row);
  }
}

void emitJson(const std::vector<Measurement> &Ms, const std::string &Path) {
  std::ofstream OutFile(Path);
  OutFile << "{\n  \"hardware_threads\": "
          << std::thread::hardware_concurrency()
          << ",\n  \"batch_trees\": " << BatchTrees
          << ",\n  \"measurements\": [\n";
  for (size_t I = 0; I != Ms.size(); ++I) {
    const Measurement &M = Ms[I];
    OutFile << "    {\"workload\": \"" << M.Workload << "\", \"engine\": \""
            << M.Engine << "\", \"threads\": " << M.Threads
            << ", \"trees_per_sec\": " << M.TreesPerSec
            << ", \"speedup\": " << M.Speedup << "}"
            << (I + 1 == Ms.size() ? "\n" : ",\n");
  }
  OutFile << "  ]\n}\n";
}

/// google-benchmark view of one batch round over the desk-calculator plan,
/// parameterized by thread count (State.range(0)).
void BM_BatchEvaluateDesk(benchmark::State &State) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  if (!GE.Success)
    State.SkipWithError("generation failed");
  TreeGenerator Gen(AG, 5);
  std::vector<Tree> Trees;
  for (unsigned I = 0; I != BatchTrees; ++I)
    Trees.push_back(Gen.generate(300));
  ThreadPool Pool(unsigned(State.range(0)));
  BatchEvaluator BE(GE.Plan, Pool);
  for (auto _ : State) {
    BatchResult R = BE.evaluate(Trees);
    benchmark::DoNotOptimize(R.NumSucceeded);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) * BatchTrees);
}
BENCHMARK(BM_BatchEvaluateDesk)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

int main(int argc, char **argv) {
  TablePrinter T({"workload", "#trees", "nodes/tree", "t/s @1", "t/s @2",
                  "t/s @4", "t/s @8", "speedup @8"});
  std::vector<Measurement> Ms;

  // The system-AG suite, shared-plan batches per AG.
  std::vector<SuiteEntry> Suite = buildSystemSuite();
  std::vector<Workload> Workloads;
  for (SuiteEntry &E : Suite) {
    Workload W;
    W.Name = E.Ag.Name;
    W.AG = &E.Compile.Grammars[0].AG;
    W.GE = &E.Evaluator;
    Workloads.push_back(std::move(W));
  }
  for (Workload &W : Workloads) {
    fillTrees(W, 300, 77);
    measureWorkload(W, T, Ms);
  }

  // MiniPascal: parsed programs instead of synthetic trees.
  DiagnosticEngine Diags;
  AttributeGrammar PascalAG = workloads::miniPascal(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator PascalGE = generateEvaluator(PascalAG, GD);
  if (!PascalGE.Success) {
    std::fprintf(stderr, "minipascal generation failed:\n%s\n",
                 GD.dump().c_str());
    return 1;
  }
  Workload Pascal;
  Pascal.Name = "minipascal";
  Pascal.AG = &PascalAG;
  Pascal.GE = &PascalGE;
  for (unsigned I = 0; I != BatchTrees; ++I) {
    std::string Src = workloads::generateMiniPascalSource(40, 1000 + I);
    DiagnosticEngine PD;
    Tree T = workloads::parseMiniPascal(PascalAG, Src, PD);
    if (PD.hasErrors()) {
      std::fprintf(stderr, "minipascal parse failed:\n%s\n",
                   PD.dump().c_str());
      return 1;
    }
    Pascal.TotalNodes += T.size();
    Pascal.Trees.push_back(std::move(T));
  }
  measureWorkload(Pascal, T, Ms);

  std::printf("== batch evaluation throughput (shared plan, disjoint trees; "
              "%u hardware threads) ==\n%s\n",
              std::thread::hardware_concurrency(), T.str().c_str());
  emitJson(Ms, "batch_throughput.json");
  std::printf("wrote batch_throughput.json\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
