//===- bench/fig4_unparser.cpp - Paper Figure 4 ---------------------------===//
//
// Exercises the ppat subsystem organization of Figure 4: an unparser is
// assembled from a user-supplied, tree-language-*dependent* part (the
// per-operator templates) and a generated, tree-language-*independent*
// fallback. The paper's point: "most of the unparser is independent from
// the input tree language and the dependent part is hence easier to
// generate". We report the dependent/independent operator split for two
// tree languages and the unparse throughput.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "tools/Companion.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static Unparser miniPascalUnparser(const AttributeGrammar &AG) {
  using P = UnparsePiece;
  Unparser U(AG);
  U.setTemplate(AG.findProd("Num"), {P::lexeme()});
  U.setTemplate(AG.findProd("Ident"), {P::lexeme()});
  U.setTemplate(AG.findProd("Add"),
                {P::child(0), P::text(" + "), P::child(1)});
  U.setTemplate(AG.findProd("Sub"),
                {P::child(0), P::text(" - "), P::child(1)});
  U.setTemplate(AG.findProd("Mul"),
                {P::child(0), P::text(" * "), P::child(1)});
  U.setTemplate(AG.findProd("Less"),
                {P::child(0), P::text(" < "), P::child(1)});
  U.setTemplate(AG.findProd("Assign"),
                {P::lexeme(), P::text(" := "), P::child(0), P::text(";\n")});
  U.setTemplate(AG.findProd("Write"),
                {P::text("write "), P::child(0), P::text(";\n")});
  U.setTemplate(AG.findProd("StmtCons"), {P::child(0), P::child(1)});
  U.setTemplate(AG.findProd("StmtNil"), {});
  U.setTemplate(AG.findProd("WhileStmt"),
                {P::text("while "), P::child(0), P::text(" do begin\n"),
                 P::child(1), P::text("end;\n")});
  return U;
}

int main(int argc, char **argv) {
  TablePrinter T({"tree language", "operators", "user templates",
                  "independent fallback", "% independent", "unparse (ms)",
                  "output bytes"});

  {
    DiagnosticEngine Diags;
    AttributeGrammar AG = workloads::miniPascal(Diags);
    Unparser U = miniPascalUnparser(AG);
    std::string Src = workloads::generateMiniPascalSource(300, 5);
    DiagnosticEngine D;
    Tree Tr = workloads::parseMiniPascal(AG, Src, D);
    Timer Un;
    std::string Out = U.unparse(Tr.root());
    double Ms = Un.milliseconds();
    T.addRow({"mini-pascal", std::to_string(AG.numProds()),
              std::to_string(U.numUserTemplates()),
              std::to_string(U.numFallbackOperators()),
              TablePrinter::pct(100.0 * U.numFallbackOperators() /
                                AG.numProds()),
              TablePrinter::num(Ms, 3), std::to_string(Out.size())});
  }
  {
    DiagnosticEngine Diags;
    AttributeGrammar AG = workloads::deskCalculator(Diags);
    Unparser U(AG);
    U.setTemplate(AG.findProd("Num"), {UnparsePiece::lexeme()});
    U.setTemplate(AG.findProd("Add"),
                  {UnparsePiece::text("("), UnparsePiece::child(0),
                   UnparsePiece::text("+"), UnparsePiece::child(1),
                   UnparsePiece::text(")")});
    TreeGenerator Gen(AG, 4);
    Tree Tr = Gen.generate(2000);
    Timer Un;
    std::string Out = U.unparse(Tr.root());
    double Ms = Un.milliseconds();
    T.addRow({"desk-calc", std::to_string(AG.numProds()),
              std::to_string(U.numUserTemplates()),
              std::to_string(U.numFallbackOperators()),
              TablePrinter::pct(100.0 * U.numFallbackOperators() /
                                AG.numProds()),
              TablePrinter::num(Ms, 3), std::to_string(Out.size())});
  }
  std::printf("== Figure 4: ppat unparser organization (dependent vs "
              "independent parts) ==\n%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
