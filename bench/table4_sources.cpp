//===- bench/table4_sources.cpp - Paper Table 4 ---------------------------===//
//
// Reproduces Table 4: the organization of the system's source corpus by
// sub-language. The paper counted the FNC-2 sources themselves (olga, asx,
// aic, ppat inputs; 49 files, 29767 lines in total) and argued that
// modularity is what makes such a corpus manageable. Our corpus is the
// workload suite this repository processes: the seven system-AG specs, the
// Table 3 module set and a batch of mini-Pascal programs.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/MiniPascal.h"

#include <algorithm>
#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

struct Corpus {
  std::string Language;
  std::vector<unsigned> LineCounts;
};

unsigned lineCount(const std::string &S) {
  return static_cast<unsigned>(std::count(S.begin(), S.end(), '\n') + 1);
}

} // namespace

int main(int argc, char **argv) {
  std::vector<Corpus> Corpora;

  Corpus Specs{"molga (AG specs)", {}};
  for (const workloads::SystemAg &Ag : workloads::systemAgSuite())
    Specs.LineCounts.push_back(lineCount(Ag.Source));
  Corpora.push_back(std::move(Specs));

  Corpus Modules{"molga (modules)", {}};
  unsigned Funs[] = {30, 60, 50, 520, 45, 180, 65, 200, 66, 150, 14, 45};
  unsigned Seed = 42;
  for (unsigned F : Funs)
    Modules.LineCounts.push_back(
        lineCount(workloads::generateMolgaModule("M", F, ++Seed)));
  Corpora.push_back(std::move(Modules));

  Corpus Pascal{"mini-pascal", {}};
  for (unsigned S = 1; S <= 10; ++S)
    Pascal.LineCounts.push_back(
        lineCount(workloads::generateMiniPascalSource(30 * S, S)));
  Corpora.push_back(std::move(Pascal));

  TablePrinter T({"language", "# files", "min", "max", "total", "ave."});
  unsigned GrandFiles = 0, GrandTotal = 0;
  for (const Corpus &C : Corpora) {
    unsigned Min = ~0u, Max = 0, Total = 0;
    for (unsigned L : C.LineCounts) {
      Min = std::min(Min, L);
      Max = std::max(Max, L);
      Total += L;
    }
    GrandFiles += C.LineCounts.size();
    GrandTotal += Total;
    T.addRow({C.Language, std::to_string(C.LineCounts.size()),
              std::to_string(Min), std::to_string(Max), std::to_string(Total),
              std::to_string(Total / static_cast<unsigned>(
                                         C.LineCounts.size()))});
  }
  T.addRow({"total", std::to_string(GrandFiles), "", "",
            std::to_string(GrandTotal),
            std::to_string(GrandTotal / GrandFiles)});
  std::printf("== Table 4: source files of the workload corpus ==\n%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
