//===- bench/BenchUtil.h - Shared bench helpers -----------------*- C++ -*-===//
//
// Part of fnc2cpp, a reproduction of the FNC-2 attribute grammar system.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure benches: building the system-AG suite
/// evaluators, resident-memory sampling, and rate formatting. Every bench
/// prints the paper-shaped table first (our measured values, with the
/// paper's reference numbers quoted in the header comment), then runs any
/// google-benchmark timings it registers.
///
//===----------------------------------------------------------------------===//

#ifndef FNC2_BENCH_BENCHUTIL_H
#define FNC2_BENCH_BENCHUTIL_H

#include "fnc2/Generator.h"
#include "olga/Driver.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "workloads/SpecGen.h"

#include <cstdio>
#include <fstream>
#include <string>

namespace fnc2::bench {

/// One compiled-and-generated system AG.
struct SuiteEntry {
  workloads::SystemAg Ag;
  olga::CompileResult Compile;
  GeneratedEvaluator Evaluator;
};

/// Compiles the whole AG1..AG7 suite through the front-end and generator.
/// Aborts the process with a message on failure (benches need the suite).
inline std::vector<SuiteEntry> buildSystemSuite() {
  std::vector<SuiteEntry> Out;
  for (workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    SuiteEntry E;
    E.Ag = Ag;
    DiagnosticEngine Diags;
    E.Compile = olga::compileMolga(Ag.Source, Diags);
    if (!E.Compile.Success) {
      std::fprintf(stderr, "suite %s failed to compile:\n%s\n",
                   Ag.Name.c_str(), Diags.dump().c_str());
      std::exit(1);
    }
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = Ag.OagK;
    E.Evaluator = generateEvaluator(E.Compile.Grammars[0].AG, GD, Opts);
    if (!E.Evaluator.Success) {
      std::fprintf(stderr, "suite %s failed to generate:\n%s\n",
                   Ag.Name.c_str(), GD.dump().c_str());
      std::exit(1);
    }
    Out.push_back(std::move(E));
  }
  return Out;
}

/// Current resident set size in kilobytes (0 when unavailable).
inline long residentKb() {
  std::ifstream In("/proc/self/status");
  std::string Word;
  while (In >> Word)
    if (Word == "VmRSS:") {
      long Kb = 0;
      In >> Kb;
      return Kb;
    }
  return 0;
}

/// Lines-per-minute throughput for a phase.
inline std::string linesPerMinute(unsigned Lines, double Seconds) {
  if (Seconds <= 0)
    return "-";
  return TablePrinter::num(Lines * 60.0 / Seconds, 0);
}

} // namespace fnc2::bench

#endif // FNC2_BENCH_BENCHUTIL_H
