//===- bench/ablation_handwritten.cpp - generated vs hand-written ---------===//
//
// Section 4.2: "comparison between the hand-written version of the system
// and the bootstrapped version shows that the latter is only between two
// and four times slower on average", and the slowdown is attributed to the
// execution of semantic rules, not the evaluator itself. We compile
// identical mini-Pascal trees with the AG-generated evaluator and with a
// hand-written recursive compiler producing the same P-code, and report the
// ratio across program sizes.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/Evaluator.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

int main(int argc, char **argv) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = workloads::miniPascal(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  if (!GE.Success) {
    std::fprintf(stderr, "%s\n", GD.dump().c_str());
    return 1;
  }

  TablePrinter T({"statements", "nodes", "hand (native) ms",
                  "hand (same data) ms", "generated AG ms",
                  "AG / same-data", "AG / native", "identical output"});
  for (unsigned Stmts : {50u, 200u, 800u, 3200u}) {
    std::string Src = workloads::generateMiniPascalSource(Stmts, Stmts);
    DiagnosticEngine D;
    Tree Tr = workloads::parseMiniPascal(AG, Src, D);
    if (D.hasErrors() || !Tr.root()) {
      std::fprintf(stderr, "parse failed: %s\n", D.dump().c_str());
      continue;
    }

    // Hand-written baselines: native data structures, and the semantic
    // rules' own persistent values (the paper's comparison basis); best of
    // three runs each.
    workloads::PCodeResult Hand, HandSame;
    double HandMs = 1e99, HandSameMs = 1e99;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Timer TH;
      Hand = workloads::compileMiniPascalByHand(AG, Tr.root());
      HandMs = std::min(HandMs, TH.milliseconds());
      Timer TS;
      HandSame = workloads::compileMiniPascalByHandSameData(AG, Tr.root());
      HandSameMs = std::min(HandSameMs, TS.milliseconds());
    }

    // Generated evaluator: best of three runs.
    Evaluator E(GE.Plan);
    double AgMs = 1e99;
    workloads::PCodeResult ByAg;
    for (int Rep = 0; Rep != 3; ++Rep) {
      Timer TA;
      if (!E.evaluate(Tr, D)) {
        std::fprintf(stderr, "%s\n", D.dump().c_str());
        return 1;
      }
      AgMs = std::min(AgMs, TA.milliseconds());
    }
    ByAg = workloads::pcodeFromTree(AG, Tr);

    bool Same = ByAg.Code == Hand.Code && ByAg.Errors == Hand.Errors &&
                ByAg.Code == HandSame.Code && ByAg.Errors == HandSame.Errors;
    T.addRow({std::to_string(Stmts), std::to_string(Tr.size()),
              TablePrinter::num(HandMs, 3), TablePrinter::num(HandSameMs, 3),
              TablePrinter::num(AgMs, 3),
              TablePrinter::num(AgMs / (HandSameMs > 0 ? HandSameMs : 1e-9),
                                2) +
                  "x",
              TablePrinter::num(AgMs / (HandMs > 0 ? HandMs : 1e-9), 2) +
                  "x",
              Same ? "yes" : "NO"});
  }
  std::printf("== ablation: AG-generated evaluator vs hand-written compilers "
              "(paper: 2-4x against the same basic data structures) ==\n%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
