#!/usr/bin/env python3
"""Tolerant bench-regression gate.

Compares a freshly produced bench JSON against the committed baseline and
fails (exit 1) when any shared data point regressed by more than the
tolerance (default 25%). Lower-is-better metrics (ms_per_round) regress
upward; higher-is-better metrics (trees_per_sec) regress downward.

The diff is tolerant by design: points present on only one side are
reported but never fail the gate (workloads/engines come and go), and
improvements of any size pass. Benchmarks on shared CI machines are noisy;
the 25% default is wide enough to only catch real structural regressions,
e.g. an accidental O(N^2) in a hot loop.

Usage: bench_check.py BASELINE.json FRESH.json [--tolerance 0.25]
"""

import argparse
import json
import sys

# metric name -> direction ("lower"/"higher" is better)
METRICS = {
    "ms_per_round": "lower",
    "trees_per_sec": "higher",
    "ms_per_edit": "lower",
    "rules_per_edit": "lower",
}


def points(doc):
    """Yields (key, metric, value) for every measurement row in a bench
    JSON. Rows live in any top-level list of objects; the key is every
    non-metric scalar field joined in name order."""
    out = {}
    for section, rows in doc.items():
        if not isinstance(rows, list):
            continue
        for row in rows:
            if not isinstance(row, dict):
                continue
            ident = tuple(
                (k, row[k])
                for k in sorted(row)
                if k not in METRICS and isinstance(row[k], (str, int))
            )
            for metric, direction in METRICS.items():
                if metric in row:
                    out[(section, ident, metric)] = (float(row[metric]),
                                                     direction)
    return out


def fmt(key):
    section, ident, metric = key
    fields = "/".join(str(v) for _, v in ident)
    return f"{section}[{fields}].{metric}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative regression (default 0.25 = 25%%)")
    args = ap.parse_args()

    with open(args.baseline) as f:
        base = points(json.load(f))
    with open(args.fresh) as f:
        new = points(json.load(f))

    failures = []
    for key, (base_val, direction) in sorted(base.items()):
        if key not in new:
            print(f"  note: {fmt(key)} missing from fresh run (ignored)")
            continue
        new_val, _ = new[key]
        if base_val <= 0:
            continue
        if direction == "lower":
            ratio = new_val / base_val
        else:
            ratio = base_val / new_val if new_val > 0 else float("inf")
        status = "ok"
        if ratio > 1 + args.tolerance:
            status = "REGRESSED"
            failures.append(key)
        if status != "ok" or ratio < 1 / (1 + args.tolerance):
            word = "regression" if status == "REGRESSED" else "improvement"
            print(f"  {status:>9}: {fmt(key)}: {base_val:g} -> {new_val:g} "
                  f"({word} x{ratio:.2f})")

    for key in sorted(set(new) - set(base)):
        print(f"  note: {fmt(key)} new in fresh run (ignored)")

    if failures:
        print(f"bench_check: {len(failures)} data point(s) regressed beyond "
              f"{args.tolerance:.0%}", file=sys.stderr)
        return 1
    print(f"bench_check: {len(set(base) & set(new))} shared point(s) within "
          f"{args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
