//===- bench/table2_evaluators_ags.cpp - Paper Table 2 --------------------===//
//
// Reproduces Table 2: processing statistics of the generated evaluators on
// AG sources. Rows are molga grammar specifications of increasing size;
// columns: #lines, per-phase CPU time (input = scan/parse/tree construction;
// typing = type- and well-definedness checking, which builds the abstract
// AG; translator = translation to C of the non-AG parts), memory, total
// time (including evaluator generation, as in the paper), and lines/minute.
//
// Paper reference shape: typing dominates input; the whole-process rate is
// not meaningful because evaluator generation is non-linear; memory around
// 1.3-1.4 kb per input line on a Sun-3/60.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/CEmitter.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static void printTable2() {
  TablePrinter T({"AG source", "# lines", "input (s)", "typing (s)",
                  "translator (s)", "memory (kB)", "total (s)", "input l/mn",
                  "typing l/mn"});
  struct Row {
    const char *Name;
    unsigned Phyla;
    unsigned Ops;
    unsigned Pairs;
    unsigned Funs;
  } Rows[] = {
      {"spec-small", 6, 3, 1, 6},    {"spec-medium", 16, 4, 2, 10},
      {"spec-large", 40, 4, 2, 14},  {"spec-xlarge", 80, 5, 3, 20},
      {"spec-xxlarge", 160, 5, 3, 24},
  };
  for (const Row &R : Rows) {
    workloads::SpecGenOptions Opts;
    Opts.Name = "T2";
    Opts.Phyla = R.Phyla;
    Opts.OperatorsPerPhylum = R.Ops;
    Opts.AttrPairs = R.Pairs;
    Opts.Funs = R.Funs;
    Opts.Seed = 1000 + R.Phyla;
    std::string Src = workloads::generateMolgaSpec(Opts);

    Timer Total;
    DiagnosticEngine Diags;
    olga::CompileResult C = olga::compileMolga(Src, Diags);
    if (!C.Success) {
      std::fprintf(stderr, "%s failed: %s\n", R.Name, Diags.dump().c_str());
      continue;
    }
    DiagnosticEngine GD;
    GeneratedEvaluator GE = generateEvaluator(C.Grammars[0].AG, GD);
    Timer Translate;
    CEmitStats CS;
    DiagnosticEngine ED;
    std::string CCode = emitC(C.Grammars[0], GE, CS, ED);
    double TranslatorSec = Translate.seconds();
    double TotalSec = Total.seconds();
    benchmark::DoNotOptimize(CCode.size());

    T.addRow({R.Name, std::to_string(C.Lines),
              TablePrinter::num(C.Phases.InputSec, 4),
              TablePrinter::num(C.Phases.TypingSec, 4),
              TablePrinter::num(TranslatorSec, 4),
              std::to_string(residentKb()), TablePrinter::num(TotalSec, 4),
              linesPerMinute(C.Lines, C.Phases.InputSec),
              linesPerMinute(C.Lines, C.Phases.TypingSec)});
  }
  std::printf("== Table 2: generated-evaluator statistics on AG sources ==\n"
              "%s\n",
              T.str().c_str());
}

static void BM_CompileMediumSpec(benchmark::State &State) {
  workloads::SpecGenOptions Opts;
  Opts.Name = "T2";
  Opts.Phyla = 16;
  Opts.AttrPairs = 2;
  Opts.Seed = 1016;
  std::string Src = workloads::generateMolgaSpec(Opts);
  for (auto _ : State) {
    DiagnosticEngine D;
    olga::CompileResult C = olga::compileMolga(Src, D);
    benchmark::DoNotOptimize(C.Success);
  }
}
BENCHMARK(BM_CompileMediumSpec)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
