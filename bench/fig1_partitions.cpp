//===- bench/fig1_partitions.cpp - Paper Figure 1 -------------------------===//
//
// Reproduces Figure 1 and the partition-count discussion of section 2.1.1:
// replacing a totally-ordered partition by another. The classical SNC-to-
// l-ordered transformation shares a newly induced partition only with an
// *equal* one; long inclusion bends the topological order to fit existing
// partitions and retroactively replaces coarser ones.
//
// Paper reference: on AG 5 the classical transformation ends with 4.15
// partitions per nonterminal on average (max 29); long inclusion with 1.03
// (max 2), with <2% more visits and a much faster transformation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "workloads/ClassicGrammars.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static void reportGrammar(TablePrinter &T, const AttributeGrammar &AG) {
  SncResult Snc = runSncTest(AG);
  if (!Snc.IsSNC)
    return;
  Timer TE;
  TransformResult Eq = sncToLOrdered(AG, Snc, ReuseMode::Equality);
  double EqSec = TE.seconds();
  Timer TL;
  TransformResult Long = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
  double LongSec = TL.seconds();
  if (!Eq.Success || !Long.Success)
    return;
  T.addRow({AG.Name, TablePrinter::num(Eq.AvgPartitionsPerPhylum, 2),
            std::to_string(Eq.MaxPartitionsPerPhylum),
            std::to_string(Eq.NumInstances),
            TablePrinter::num(Long.AvgPartitionsPerPhylum, 2),
            std::to_string(Long.MaxPartitionsPerPhylum),
            std::to_string(Long.NumInstances),
            TablePrinter::num(EqSec * 1e3, 2),
            TablePrinter::num(LongSec * 1e3, 2)});
}

int main(int argc, char **argv) {
  // Part 1: the figure itself — a phylum with two contexts; long inclusion
  // lets one partition serve both when compatible.
  {
    DiagnosticEngine Diags;
    AttributeGrammar AG = workloads::binaryNumbers(Diags);
    SncResult Snc = runSncTest(AG);
    TransformResult Long = sncToLOrdered(AG, Snc, ReuseMode::LongInclusion);
    PhylumId List = AG.findPhylum("List");
    std::printf("== Figure 1: partition replacement on binary-numbers ==\n");
    std::printf("phylum List under long inclusion keeps %zu partition(s):\n",
                Long.Partitions[List].size());
    for (const TotallyOrderedPartition &P : Long.Partitions[List])
      std::printf("  %s  (%u visits)\n", P.str(AG, List).c_str(),
                  P.numVisits());
    std::printf("(the Integer context alone would induce the coarser "
                "[inh: scale | syn: val len]; the Fraction context's finer "
                "partition replaces it, as in the paper's figure)\n\n");
  }

  // Part 2: classical (equality) vs long inclusion across workloads.
  TablePrinter T({"grammar", "eq avg", "eq max", "eq #seqs", "long avg",
                  "long max", "long #seqs", "eq ms", "long ms"});
  DiagnosticEngine Diags;
  AttributeGrammar G1 = workloads::deskCalculator(Diags);
  AttributeGrammar G2 = workloads::binaryNumbers(Diags);
  AttributeGrammar G3 = workloads::repmin(Diags);
  AttributeGrammar G4 = workloads::twoContextGrammar(Diags);
  AttributeGrammar G5 = workloads::dncNotOagGrammar(Diags);
  reportGrammar(T, G1);
  reportGrammar(T, G2);
  reportGrammar(T, G3);
  reportGrammar(T, G4);
  reportGrammar(T, G5);

  // The AG5 analogue (large, class DNC): the paper's headline comparison.
  for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    if (Ag.Name != "AG5" && Ag.Name != "AG7")
      continue;
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Ag.Source, D);
    if (!R.Success)
      continue;
    AttributeGrammar AG = std::move(R.Grammars[0].AG);
    AG.Name = Ag.Name + "-analogue";
    reportGrammar(T, AG);
  }

  std::printf("== classical (equality) vs long-inclusion transformation ==\n"
              "%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
