//===- bench/table1_generator.cpp - Paper Table 1 -------------------------===//
//
// Reproduces Table 1: statistics gathered for the evaluator generator on
// the seven system AGs. Columns follow the paper: sizes (phyla, operators,
// attribute occurrences, semantic rules), the AG class determined by the
// cascade, the storage split (% variables / % stacks / % non-temporary),
// group counts after packing, copy-rule elimination ratios and CPU time.
//
// Paper reference shapes (Sun-3/60, 1990): classes OAG(0) for most AGs, one
// DNC (AG 5, the largest) and one OAG(1) (AG 7); temporaries (variables +
// stacks) above ~80%; elimination close to the optimum (the "% elim./poss."
// column near 90%); times non-linear but non-exponential in AG size.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static void printTable1() {
  auto Suite = buildSystemSuite();
  TablePrinter T({"AG", "role", "phyla", "operators", "occ. attr.",
                  "sem. rules", "class", "% vars", "% stacks", "% non-temp.",
                  "# variables", "# stacks", "% elim./copy", "% elim./poss.",
                  "avg part.", "max part.", "time (s)"});
  for (const SuiteEntry &E : Suite) {
    Table1Row R = E.Evaluator.statsRow(E.Compile.Grammars[0].AG);
    T.addRow({E.Ag.Name, E.Ag.Role.substr(0, 28), std::to_string(R.Phyla),
              std::to_string(R.Operators), std::to_string(R.OccAttrs),
              std::to_string(R.SemRules), R.ClassName,
              TablePrinter::pct(R.PctVars), TablePrinter::pct(R.PctStacks),
              TablePrinter::pct(R.PctNonTemp),
              std::to_string(R.NumVariables), std::to_string(R.NumStacks),
              TablePrinter::pct(R.PctElimOfCopy),
              TablePrinter::pct(R.PctElimOfPoss),
              TablePrinter::num(R.AvgPartitions, 2),
              std::to_string(R.MaxPartitions),
              TablePrinter::num(R.TimeSec, 4)});
  }
  std::printf("== Table 1: evaluator generator statistics (AG1..AG7) ==\n%s\n",
              T.str().c_str());
}

static void BM_GenerateAG5(benchmark::State &State) {
  auto Suite = workloads::systemAgSuite();
  DiagnosticEngine Diags;
  olga::CompileResult R = olga::compileMolga(Suite[4].Source, Diags);
  for (auto _ : State) {
    DiagnosticEngine D;
    GeneratedEvaluator GE = generateEvaluator(R.Grammars[0].AG, D);
    benchmark::DoNotOptimize(GE.Success);
  }
}
BENCHMARK(BM_GenerateAG5)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
