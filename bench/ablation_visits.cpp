//===- bench/ablation_visits.cpp - visit-count ablation -------------------===//
//
// Section 2.1.1's trade-off: a replacing partition has at least as many
// sets as the replaced one, so long inclusion can increase the number of
// visits per node — but "on all the practical AGs we have used, this
// increase is less than 2% in average, and since pure tree-walking accounts
// only for a very small fraction of the evaluator running time, the dynamic
// effect is unnoticeable". We evaluate identical trees under plans built
// with the classical (equality) and long-inclusion transformations and
// compare dynamic visit and instruction counts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/Evaluator.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

static bool planFromMode(const AttributeGrammar &AG, ReuseMode Mode,
                         EvaluationPlan &Plan) {
  SncResult Snc = runSncTest(AG);
  if (!Snc.IsSNC)
    return false;
  TransformResult TR = sncToLOrdered(AG, Snc, Mode);
  if (!TR.Success)
    return false;
  DiagnosticEngine D;
  return buildVisitSequences(AG, TR, Plan, D);
}

static void reportGrammar(TablePrinter &T, const AttributeGrammar &AG,
                          unsigned TreeSize) {
  EvaluationPlan PlanEq, PlanLong;
  if (!planFromMode(AG, ReuseMode::Equality, PlanEq) ||
      !planFromMode(AG, ReuseMode::LongInclusion, PlanLong))
    return;

  TreeGenerator Gen(AG, 7);
  Tree Tr = Gen.generate(TreeSize);
  Evaluator EEq(PlanEq), ELong(PlanLong);
  DiagnosticEngine D;
  if (!EEq.evaluate(Tr, D) || !ELong.evaluate(Tr, D))
    return;
  uint64_t VEq = EEq.stats().VisitsPerformed;
  uint64_t VLong = ELong.stats().VisitsPerformed;
  double Increase = VEq == 0 ? 0.0 : 100.0 * (double(VLong) - VEq) / VEq;
  T.addRow({AG.Name, std::to_string(Tr.size()),
            std::to_string(PlanEq.numSequences()),
            std::to_string(PlanLong.numSequences()), std::to_string(VEq),
            std::to_string(VLong), TablePrinter::pct(Increase)});
}

int main(int argc, char **argv) {
  TablePrinter T({"grammar", "nodes", "eq #seqs", "long #seqs", "eq visits",
                  "long visits", "visit increase"});
  DiagnosticEngine Diags;
  AttributeGrammar G1 = workloads::deskCalculator(Diags);
  AttributeGrammar G2 = workloads::binaryNumbers(Diags);
  AttributeGrammar G3 = workloads::repmin(Diags);
  AttributeGrammar G4 = workloads::twoContextGrammar(Diags);
  reportGrammar(T, G1, 4000);
  reportGrammar(T, G2, 4000);
  reportGrammar(T, G3, 4000);
  reportGrammar(T, G4, 16);

  for (const workloads::SystemAg &Ag : workloads::systemAgSuite()) {
    DiagnosticEngine D;
    olga::CompileResult R = olga::compileMolga(Ag.Source, D);
    if (!R.Success)
      continue;
    AttributeGrammar AG = std::move(R.Grammars[0].AG);
    AG.Name = Ag.Name + "-analogue";
    reportGrammar(T, AG, 2000);
  }
  std::printf("== ablation: visit-count cost of long inclusion (paper: <2%% "
              "average) ==\n%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
