//===- bench/incremental_scaling.cpp - edit-log replay at scale -----------===//
//
// The scale story behind incremental evaluation (paper section 2.1.2): a
// long editor session replayed through IncrementalSession against trees of
// 1k / 10k / 100k nodes. Edits are EditScriptGen's mix (bounded subtree
// replacements, leaf value changes, production swaps), so the affected
// region per edit is bounded while the tree grows by two orders of
// magnitude — per-edit work must track the region, not the tree.
//
// Self-gates (exit 1):
//  * proportional work — the median reevaluated-rule count per edit grows
//    by at most ProportionalitySlack from the smallest to the largest tree
//    of a grammar, while the from-scratch rule count grows ~100x;
//  * incremental wins at scale — at every sweep point the median edit
//    reevaluates a small fraction (1/WinFactor) of a from-scratch pass;
//  * persistence at scale — each session (including the 100k-node one)
//    saves and resumes bit-identically at the end of its run.
//
// Emits incremental_scaling.json: one row per (grammar, nodes) with median
// ms_per_edit and rules_per_edit for bench_check.py trend tracking against
// BENCH_incremental.json.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incremental/Session.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/EditScriptGen.h"
#include "workloads/MiniPascal.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

constexpr double ProportionalitySlack = 6.0;
constexpr double WinFactor = 4.0;

struct SweepRow {
  std::string Grammar;
  unsigned Nodes = 0; // actual tree size
  unsigned Edits = 0;
  double MsPerEdit = 0;    // median
  double RulesPerEdit = 0; // median
  double FullMs = 0;       // from-scratch pass over the final tree
  double FullRules = 0;
};

double median(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  return V.empty() ? 0 : V[V.size() / 2];
}

/// Replays one generated session against a tree of ~\p TargetSize nodes and
/// returns the measured row. Exits on any failure (benches need the run).
SweepRow runPoint(const std::string &Name, const AttributeGrammar &AG,
                  const GeneratedEvaluator &GE, unsigned TargetSize,
                  unsigned NumEdits, uint64_t Seed) {
  TreeGenerator Gen(AG, Seed);
  Tree Start = Gen.generate(TargetSize);
  Tree ScriptTree(AG);
  ScriptTree.setRoot(Start.clone(Start.root()));

  // Pre-generate the whole script (structural replay on a copy) so the
  // timed loop below measures apply+update only, not candidate scanning.
  EditScriptGen Script(AG, {.Seed = Seed * 2654435761ULL + 17});
  EditLog Log = Script.generate(ScriptTree, NumEdits);

  IncrementalSession S(AG, compileArtifact(GE));
  for (AttrId A : AG.phylum(AG.Start).Attrs)
    if (AG.attr(A).isInherited())
      S.setRootInherited(A, Value::ofInt(7));
  DiagnosticEngine D;
  unsigned Nodes = Start.size();
  if (!S.start(std::move(Start), D)) {
    std::fprintf(stderr, "%s/%u: initial evaluation failed:\n%s\n",
                 Name.c_str(), Nodes, D.dump().c_str());
    std::exit(1);
  }

  std::vector<double> Ms, Rules;
  for (size_t I = 0; I != Log.size(); ++I) {
    S.evaluator().resetStats();
    Timer T;
    if (!S.apply(Log.op(I), D)) {
      std::fprintf(stderr, "%s/%u: edit %zu failed:\n%s\n", Name.c_str(),
                   Nodes, I, D.dump().c_str());
      std::exit(1);
    }
    Ms.push_back(T.milliseconds());
    Rules.push_back(double(S.stats().RulesReevaluated));
  }

  // From-scratch reference over the final tree.
  Tree Check(AG);
  Check.setRoot(S.tree().clone(S.tree().root()));
  Evaluator Full(GE.Plan);
  for (AttrId A : AG.phylum(AG.Start).Attrs)
    if (AG.attr(A).isInherited())
      Full.setRootInherited(A, Value::ofInt(7));
  Timer TF;
  if (!Full.evaluate(Check, D)) {
    std::fprintf(stderr, "%s/%u: from-scratch reference failed:\n%s\n",
                 Name.c_str(), Nodes, D.dump().c_str());
    std::exit(1);
  }
  double FullMs = TF.milliseconds();

  // Persistence at scale: the finished session must save and resume
  // bit-identically — the 100k-node point is the serialization stressor.
  std::vector<uint8_t> Saved;
  std::string Why;
  if (!S.encode(Saved, Why)) {
    std::fprintf(stderr, "%s/%u: session save failed: %s\n", Name.c_str(),
                 Nodes, Why.c_str());
    std::exit(1);
  }
  IncrementalSession Resumed(AG, compileArtifact(GE));
  for (AttrId A : AG.phylum(AG.Start).Attrs)
    if (AG.attr(A).isInherited())
      Resumed.setRootInherited(A, Value::ofInt(7));
  std::string Reason;
  if (!Resumed.restore(Saved, Reason) ||
      Resumed.attributionDigest() != S.attributionDigest()) {
    std::fprintf(stderr, "%s/%u: session resume failed: %s\n", Name.c_str(),
                 Nodes, Reason.c_str());
    std::exit(1);
  }

  SweepRow Row;
  Row.Grammar = Name;
  Row.Nodes = Nodes;
  Row.Edits = NumEdits;
  Row.MsPerEdit = median(Ms);
  Row.RulesPerEdit = median(Rules);
  Row.FullMs = FullMs;
  Row.FullRules = double(Full.stats().RulesEvaluated);
  return Row;
}

} // namespace

int main() {
  std::vector<SweepRow> Rows;
  TablePrinter T({"grammar", "nodes", "edits", "ms/edit (med)",
                  "rules/edit (med)", "full ms", "full rules", "win"});

  // Classics straight from their factories.
  struct ClassicPoint {
    const char *Name;
    AttributeGrammar (*Make)(DiagnosticEngine &);
    std::vector<unsigned> Sizes;
  };
  const ClassicPoint Classics[] = {
      {"desk", workloads::deskCalculator, {1000, 10000, 100000}},
      {"minipascal", workloads::miniPascal, {1000, 10000}},
  };
  for (const ClassicPoint &P : Classics) {
    DiagnosticEngine Diags;
    AttributeGrammar AG = P.Make(Diags);
    DiagnosticEngine GD;
    GeneratedEvaluator GE = generateEvaluator(AG, GD);
    if (!GE.Success) {
      std::fprintf(stderr, "%s: generation failed:\n%s\n", P.Name,
                   GD.dump().c_str());
      return 1;
    }
    for (unsigned Size : P.Sizes)
      Rows.push_back(runPoint(P.Name, AG, GE, Size,
                              Size >= 100000 ? 120 : 300, Size + 5));
  }

  // A SpecGen system AG (the generator-scaling S2 point), through the
  // molga front end like the system suite.
  {
    workloads::SpecGenOptions SOpts;
    SOpts.Name = "ScaleInc";
    SOpts.Phyla = 16;
    SOpts.OperatorsPerPhylum = 4;
    SOpts.AttrPairs = 3;
    SOpts.Seed = 7;
    DiagnosticEngine Diags;
    olga::CompileResult C =
        olga::compileMolga(workloads::generateMolgaSpec(SOpts), Diags);
    if (!C.Success) {
      std::fprintf(stderr, "specgen: compile failed:\n%s\n",
                   Diags.dump().c_str());
      return 1;
    }
    const AttributeGrammar &AG = C.Grammars[0].AG;
    DiagnosticEngine GD;
    GeneratorOptions Opts;
    Opts.OagK = 1;
    GeneratedEvaluator GE = generateEvaluator(AG, GD, Opts);
    if (!GE.Success) {
      std::fprintf(stderr, "specgen: generation failed:\n%s\n",
                   GD.dump().c_str());
      return 1;
    }
    for (unsigned Size : {1000u, 10000u})
      Rows.push_back(runPoint("specgen-s2", AG, GE, Size, 300, Size + 5));
  }

  bool Ok = true;
  for (const SweepRow &R : Rows) {
    double Win = R.RulesPerEdit > 0 ? R.FullRules / R.RulesPerEdit : 0;
    T.addRow({R.Grammar, std::to_string(R.Nodes), std::to_string(R.Edits),
              TablePrinter::num(R.MsPerEdit, 4),
              TablePrinter::num(R.RulesPerEdit, 0),
              TablePrinter::num(R.FullMs, 2), TablePrinter::num(R.FullRules, 0),
              TablePrinter::num(Win, 0) + "x"});
    // Incremental wins at every point: the median edit reevaluates a small
    // fraction of the rules a from-scratch pass runs.
    if (R.RulesPerEdit * WinFactor > R.FullRules) {
      std::fprintf(stderr,
                   "FAIL: %s/%u: median edit reevaluates %.0f rules, not a "
                   "1/%.0f fraction of the %.0f-rule from-scratch pass\n",
                   R.Grammar.c_str(), R.Nodes, R.RulesPerEdit, WinFactor,
                   R.FullRules);
      Ok = false;
    }
  }
  std::printf("== incremental edit-log replay at scale ==\n%s\n",
              T.str().c_str());

  // Proportional work: within each grammar, median rules/edit must not
  // follow the tree size. From 1k to 100k nodes full passes grow ~100x;
  // the median edit may grow only by the slack (deeper propagation paths).
  for (const SweepRow &R : Rows) {
    const SweepRow *Smallest = nullptr;
    for (const SweepRow &Q : Rows)
      if (Q.Grammar == R.Grammar && (!Smallest || Q.Nodes < Smallest->Nodes))
        Smallest = &Q;
    if (!Smallest || Smallest->Nodes == R.Nodes)
      continue;
    if (R.RulesPerEdit > Smallest->RulesPerEdit * ProportionalitySlack +
                             ProportionalitySlack) {
      std::fprintf(stderr,
                   "FAIL: %s: median rules/edit grew from %.0f at %u nodes "
                   "to %.0f at %u nodes — work is tracking tree size, not "
                   "the affected region\n",
                   R.Grammar.c_str(), Smallest->RulesPerEdit, Smallest->Nodes,
                   R.RulesPerEdit, R.Nodes);
      Ok = false;
    }
  }

  std::ofstream Out("incremental_scaling.json");
  Out << "{\n  \"entries\": [\n";
  for (size_t I = 0; I != Rows.size(); ++I) {
    const SweepRow &R = Rows[I];
    Out << "    {\"grammar\": \"" << R.Grammar << "\", \"nodes\": " << R.Nodes
        << ", \"edits\": " << R.Edits << ", \"ms_per_edit\": " << R.MsPerEdit
        << ", \"rules_per_edit\": " << R.RulesPerEdit
        << ", \"full_ms\": " << R.FullMs << ", \"full_rules\": " << R.FullRules
        << "}" << (I + 1 == Rows.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
  std::printf("wrote incremental_scaling.json\n");

  return Ok ? 0 : 1;
}
