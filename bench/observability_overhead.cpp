//===- bench/observability_overhead.cpp - Tracing layer overhead ----------===//
//
// The observability layer's two performance claims, measured:
//
//  1. Tracing *off* (instrumented binary, no collector installed) is within
//     run-to-run noise: every FNC2_SPAN/FNC2_COUNT site reduces to one
//     relaxed atomic load. Measured as two interleaved "off" timings whose
//     relative difference is the noise floor, plus a direct ns-per-call
//     micro-measurement of a disabled site.
//  2. Tracing *on* (collector installed, every event recorded) stays under
//     2x the off timing for every evaluator in the family.
//
// Each engine (exhaustive, demand, storage, incremental) runs fixed rounds
// over desk-calculator and repmin trees in three phases — off, on, off
// again — and the per-engine baseline (off ms/round) is emitted as
// evaluator_baselines.json for CI trend tracking, next to
// observability_overhead.json with the ratios. Exits 0 unconditionally:
// the JSON carries the verdicts.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "eval/DemandEvaluator.h"
#include "eval/Evaluator.h"
#include "incremental/Incremental.h"
#include "storage/StorageEvaluator.h"
#include "support/Trace.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"

#include <cmath>
#include <vector>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

using GrammarFactory = AttributeGrammar (*)(DiagnosticEngine &);

constexpr unsigned Rounds = 60;

struct Entry {
  std::string Workload;
  std::string Engine;
  double OffMs = 0;  // average of the two off phases
  double OnMs = 0;
  double Ratio = 0;     // on / off
  double NoisePct = 0;  // |off1 - off2| / off1
  uint64_t EventsPerRound = 0;
};

/// Milliseconds per round of \p Run over the fixed round count.
template <typename Fn> double msPerRound(Fn &&Run) {
  Run(); // warm-up
  Timer T;
  for (unsigned R = 0; R != Rounds; ++R)
    Run();
  return T.seconds() * 1e3 / Rounds;
}

/// One engine workload: phases off/on/off, collector per on-round so the
/// cost of installing and draining buffers is charged to "on" like it is
/// in real use.
template <typename Fn>
Entry measure(const std::string &Workload, const std::string &Engine,
              Fn &&Run) {
  Entry E;
  E.Workload = Workload;
  E.Engine = Engine;
  double Off1 = msPerRound(Run);
  uint64_t Events = 0;
  double On = msPerRound([&] {
    trace::TraceCollector C;
    C.install();
    Run();
    C.uninstall();
    Events = C.eventCount();
  });
  double Off2 = msPerRound(Run);
  E.OffMs = (Off1 + Off2) / 2;
  E.OnMs = On;
  E.Ratio = E.OffMs > 0 ? On / E.OffMs : 0;
  E.NoisePct = Off1 > 0 ? 100.0 * std::abs(Off1 - Off2) / Off1 : 0;
  E.EventsPerRound = Events;
  return E;
}

Tree cloneTree(const AttributeGrammar &AG, const Tree &T) {
  Tree C(AG);
  C.setRoot(T.clone(T.root()));
  return C;
}

unsigned subtreeSize(const TreeNode *N) {
  unsigned Size = 1;
  for (const auto &C : N->Children)
    Size += subtreeSize(C.get());
  return Size;
}

/// First non-root node rooting a subtree of at most 8 nodes (a leaf always
/// qualifies), the edit victim for the incremental rounds.
TreeNode *smallVictim(Tree &T) {
  std::vector<TreeNode *> Stack = {T.root()};
  while (!Stack.empty()) {
    TreeNode *N = Stack.back();
    Stack.pop_back();
    if (N->Parent && subtreeSize(N) <= 8)
      return N;
    for (auto &C : N->Children)
      Stack.push_back(C.get());
  }
  return nullptr;
}

/// ns per FNC2_COUNT call with no collector installed: the cost every
/// instrumented site pays in a production (tracing-off) run.
double disabledSiteNs() {
  constexpr uint64_t Calls = 20'000'000;
  Timer T;
  for (uint64_t I = 0; I != Calls; ++I)
    FNC2_COUNT("bench.disabled_site", 1);
  return T.seconds() * 1e9 / Calls;
}

void runGrammar(const std::string &Name, GrammarFactory Make,
                std::vector<Entry> &Out) {
  DiagnosticEngine Diags;
  AttributeGrammar AG = Make(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(AG, GD);
  if (!GE.Success) {
    std::fprintf(stderr, "%s: generation failed:\n%s\n", Name.c_str(),
                 GD.dump().c_str());
    return;
  }
  TreeGenerator Gen(AG, 9);
  Tree T = Gen.generate(500);
  DiagnosticEngine D;

  {
    Evaluator E(GE.Plan);
    Out.push_back(measure(Name, "exhaustive", [&] {
      if (!E.evaluate(T, D))
        std::exit(1);
    }));
  }
  {
    // Demand memoizes into the computed masks, so each round needs a
    // pristine clone; the clone is part of the round for off and on alike.
    Out.push_back(measure(Name, "demand", [&] {
      Tree C = cloneTree(AG, T);
      DemandEvaluator DE(AG);
      if (!DE.evaluateAll(C, D))
        std::exit(1);
    }));
  }
  {
    StorageEvaluator SE(GE.Plan, GE.Storage);
    Out.push_back(measure(Name, "storage", [&] {
      if (!SE.evaluate(T, D))
        std::exit(1);
    }));
  }
  {
    Tree IT = Gen.generate(500);
    IncrementalEvaluator IE(GE.Plan);
    if (!IE.initial(IT, D))
      std::exit(1);
    TreeGenerator EditGen(AG, 123);
    Out.push_back(measure(Name, "incremental", [&] {
      TreeNode *Victim = smallVictim(IT);
      if (!Victim)
        std::exit(1);
      PhylumId Phy = AG.prod(Victim->Prod).Lhs;
      IE.replaceSubtree(IT, Victim, EditGen.generateNode(IT, Phy, 4));
      if (!IE.update(IT, D, UpdateStrategy::StartAnywhere))
        std::exit(1);
    }));
  }
}

void emitOverheadJson(const std::vector<Entry> &Es, double SiteNs) {
  bool OnUnder2x = true, OffWithinNoise = true;
  double MaxNoise = 0;
  for (const Entry &E : Es) {
    OnUnder2x &= E.Ratio < 2.0;
    MaxNoise = std::max(MaxNoise, E.NoisePct);
  }
  // "Within noise" claim: the two off phases bracket each other, and a
  // disabled site costs a few ns — orders below one rule evaluation.
  OffWithinNoise = SiteNs < 50.0;

  std::ofstream Out("observability_overhead.json");
  Out << "{\n  \"rounds\": " << Rounds
      << ",\n  \"disabled_site_ns\": " << SiteNs
      << ",\n  \"off_within_noise\": " << (OffWithinNoise ? "true" : "false")
      << ",\n  \"on_under_2x\": " << (OnUnder2x ? "true" : "false")
      << ",\n  \"max_off_noise_pct\": " << MaxNoise
      << ",\n  \"entries\": [\n";
  for (size_t I = 0; I != Es.size(); ++I) {
    const Entry &E = Es[I];
    Out << "    {\"workload\": \"" << E.Workload << "\", \"engine\": \""
        << E.Engine << "\", \"off_ms_per_round\": " << E.OffMs
        << ", \"on_ms_per_round\": " << E.OnMs << ", \"ratio\": " << E.Ratio
        << ", \"off_noise_pct\": " << E.NoisePct
        << ", \"events_per_round\": " << E.EventsPerRound << "}"
        << (I + 1 == Es.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
}

void emitBaselinesJson(const std::vector<Entry> &Es) {
  std::ofstream Out("evaluator_baselines.json");
  Out << "{\n  \"rounds\": " << Rounds << ",\n  \"tree_nodes\": 500"
      << ",\n  \"baselines\": [\n";
  for (size_t I = 0; I != Es.size(); ++I) {
    const Entry &E = Es[I];
    Out << "    {\"workload\": \"" << E.Workload << "\", \"engine\": \""
        << E.Engine << "\", \"ms_per_round\": " << E.OffMs << "}"
        << (I + 1 == Es.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
}

} // namespace

int main() {
  std::vector<Entry> Entries;
  runGrammar("desk", workloads::deskCalculator, Entries);
  runGrammar("repmin", workloads::repmin, Entries);
  double SiteNs = disabledSiteNs();

  TablePrinter T({"workload", "engine", "off ms", "on ms", "ratio",
                  "off noise", "events/round"});
  for (const Entry &E : Entries)
    T.addRow({E.Workload, E.Engine, TablePrinter::num(E.OffMs, 3),
              TablePrinter::num(E.OnMs, 3), TablePrinter::num(E.Ratio, 2),
              TablePrinter::pct(E.NoisePct),
              std::to_string(E.EventsPerRound)});
  std::printf("== observability overhead (off / on / off, %u rounds each; "
              "disabled site: %.2f ns/call) ==\n%s\n",
              Rounds, SiteNs, T.str().c_str());

  emitOverheadJson(Entries, SiteNs);
  emitBaselinesJson(Entries);
  std::printf("wrote observability_overhead.json, evaluator_baselines.json\n");
  return 0;
}
