//===- bench/cache_warmup.cpp - artifact cache warm-start speedup ---------===//
//
// The measurement behind the artifact cache: across the SpecGen scaling
// sweep, compare the full generator cascade (SNC + DNC + OAG + transform +
// visit sequences + storage) against
//
//   cold   cascade + artifact store (the first run in an empty cache dir)
//   warm   artifact load only (every later process start)
//
// Emits cache_warmup.json with one ms_per_round row per (spec, engine) for
// bench_check.py trend tracking (baseline: BENCH_cache.json) and prints the
// speedup table the README quotes. Exits 1 when a spec fails to compile,
// when a warm run misses the cache, or when the warm path fails the ≥5x
// speedup floor at the largest sweep point.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fnc2/ArtifactCache.h"

#include <cstdio>
#include <filesystem>
#include <functional>
#include <vector>

using namespace fnc2;
using namespace fnc2::bench;

namespace {

constexpr unsigned Rounds = 5;
constexpr double RequiredWarmSpeedup = 5.0;

struct SweepPoint {
  const char *Name;
  unsigned Phyla, Ops, AttrPairs;
};

// Same sweep as generator_scaling so the two benches describe one system.
const SweepPoint Sweep[] = {
    {"S1-small", 8, 3, 2},
    {"S2-medium", 16, 4, 3},
    {"S3-large", 28, 6, 4},
    {"S4-xlarge", 48, 8, 7},
};

struct Entry {
  std::string Spec;
  std::string Engine;
  double MsPerRound = 0;
};

double msPerRound(unsigned N, const std::function<void()> &Fn) {
  Fn(); // warm-up round (page cache, allocator)
  Timer T;
  for (unsigned I = 0; I != N; ++I)
    Fn();
  return T.seconds() * 1e3 / N;
}

} // namespace

int main() {
  namespace fs = std::filesystem;
  const std::string CacheDir = ".fnc2-cache/warmup-bench";
  fs::remove_all(CacheDir);

  std::vector<Entry> Entries;
  TablePrinter T({"spec", "phyla", "prods", "nocache ms", "cold ms",
                  "warm ms", "warm speedup"});
  bool Ok = true;
  double LargestSpeedup = 0;

  for (const SweepPoint &P : Sweep) {
    workloads::SpecGenOptions SOpts;
    SOpts.Name = "Scale" + std::to_string(P.Phyla);
    SOpts.Phyla = P.Phyla;
    SOpts.OperatorsPerPhylum = P.Ops;
    SOpts.AttrPairs = P.AttrPairs;
    SOpts.Seed = 7;
    DiagnosticEngine Diags;
    olga::CompileResult C =
        olga::compileMolga(workloads::generateMolgaSpec(SOpts), Diags);
    if (!C.Success) {
      std::fprintf(stderr, "%s: compile failed:\n%s\n", P.Name,
                   Diags.dump().c_str());
      return 1;
    }
    const AttributeGrammar &AG = C.Grammars[0].AG;

    GeneratorOptions NoCache;
    NoCache.OagK = 1;
    GeneratorOptions Cached = NoCache;
    Cached.CacheDir = CacheDir;
    const std::string ArtifactPath =
        ArtifactCache(CacheDir).pathFor(ArtifactCache::artifactKey(AG, Cached));

    // Full cascade, no cache in play.
    double NoCacheMs = msPerRound(Rounds, [&] {
      DiagnosticEngine D;
      if (!generateEvaluator(AG, D, NoCache).Success)
        std::abort();
    });

    // Cold: empty dir each round — cascade + encode + atomic store.
    double ColdMs = msPerRound(Rounds, [&] {
      fs::remove(ArtifactPath);
      DiagnosticEngine D;
      GeneratedEvaluator G = generateEvaluator(AG, D, Cached);
      if (!G.Success || G.FromCache)
        std::abort();
    });

    // Warm: the artifact exists; every run must be a pure load.
    unsigned WarmRounds = Rounds * 4;
    double WarmMs = msPerRound(WarmRounds, [&] {
      DiagnosticEngine D;
      GeneratedEvaluator G = generateEvaluator(AG, D, Cached);
      if (!G.Success)
        std::abort();
      if (!G.FromCache) {
        std::fprintf(stderr, "warm run missed the cache\n");
        std::exit(1);
      }
    });

    double Speedup = WarmMs > 0 ? NoCacheMs / WarmMs : 0;
    LargestSpeedup = Speedup; // last point is the largest
    T.addRow({P.Name, std::to_string(P.Phyla), std::to_string(AG.numProds()),
              TablePrinter::num(NoCacheMs, 3), TablePrinter::num(ColdMs, 3),
              TablePrinter::num(WarmMs, 3),
              TablePrinter::num(Speedup, 1) + "x"});
    Entries.push_back({P.Name, "nocache", NoCacheMs});
    Entries.push_back({P.Name, "cold", ColdMs});
    Entries.push_back({P.Name, "warm", WarmMs});
  }

  std::printf("== artifact cache warm start (full generator vs cached load, "
              "%u rounds per point) ==\n%s\n",
              Rounds, T.str().c_str());

  if (LargestSpeedup < RequiredWarmSpeedup) {
    std::fprintf(stderr,
                 "FAIL: warm load speedup %.1fx at %s is below the "
                 "required %.0fx floor\n",
                 LargestSpeedup, Sweep[std::size(Sweep) - 1].Name,
                 RequiredWarmSpeedup);
    Ok = false;
  }

  std::ofstream Out("cache_warmup.json");
  Out << "{\n  \"rounds\": " << Rounds << ",\n  \"entries\": [\n";
  for (size_t I = 0; I != Entries.size(); ++I) {
    const Entry &E = Entries[I];
    Out << "    {\"spec\": \"" << E.Spec << "\", \"engine\": \"" << E.Engine
        << "\", \"ms_per_round\": " << E.MsPerRound << "}"
        << (I + 1 == Entries.size() ? "\n" : ",\n");
  }
  Out << "  ]\n}\n";
  std::printf("wrote cache_warmup.json\n");

  fs::remove_all(CacheDir);
  return Ok ? 0 : 1;
}
