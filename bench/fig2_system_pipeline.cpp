//===- bench/fig2_system_pipeline.cpp - Paper Figure 2 --------------------===//
//
// Exercises the system structure of Figure 2: the generation-time half
// (OLGA front-end -> evaluator generator -> translators) and the
// execution-time half (constructed tree -> generated evaluator -> decorated
// tree), reporting per-component times so the division of labour is
// visible. The paper's comparison point: the bootstrapped system is 2-4x
// slower than the hand-written original, and five times slower than Sun's
// one-pass C compiler (an unfair baseline, as discussed in section 4.2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "codegen/CEmitter.h"
#include "eval/Evaluator.h"
#include "tree/TreeGen.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

int main(int argc, char **argv) {
  TablePrinter T({"spec", "lines", "front-end (s)", "generator (s)",
                  "translator (s)", "tree nodes", "evaluation (s)",
                  "rules evaluated"});
  for (unsigned Phyla : {8u, 24u, 64u}) {
    workloads::SpecGenOptions Opts;
    Opts.Name = "F2";
    Opts.Phyla = Phyla;
    Opts.AttrPairs = 2;
    Opts.Funs = 8;
    Opts.Seed = 2000 + Phyla;
    std::string Src = workloads::generateMolgaSpec(Opts);

    DiagnosticEngine Diags;
    Timer FE;
    olga::CompileResult C = olga::compileMolga(Src, Diags);
    double FrontEndSec = FE.seconds();
    if (!C.Success) {
      std::fprintf(stderr, "spec failed: %s\n", Diags.dump().c_str());
      continue;
    }

    DiagnosticEngine GD;
    Timer Gen;
    GeneratedEvaluator GE = generateEvaluator(C.Grammars[0].AG, GD);
    double GeneratorSec = Gen.seconds();

    Timer Tr;
    CEmitStats CS;
    DiagnosticEngine ED;
    std::string CCode = emitC(C.Grammars[0], GE, CS, ED);
    double TranslatorSec = Tr.seconds();
    benchmark::DoNotOptimize(CCode.size());

    // Execution time: evaluate a generated tree.
    TreeGenerator TG(C.Grammars[0].AG, 99);
    Tree Tree = TG.generate(5000);
    Evaluator E(GE.Plan);
    DiagnosticEngine TD;
    Timer Ev;
    bool Ok = E.evaluate(Tree, TD);
    double EvalSec = Ev.seconds();
    if (!Ok) {
      std::fprintf(stderr, "evaluation failed: %s\n", TD.dump().c_str());
      continue;
    }

    T.addRow({"phyla=" + std::to_string(Phyla), std::to_string(C.Lines),
              TablePrinter::num(FrontEndSec, 4),
              TablePrinter::num(GeneratorSec, 4),
              TablePrinter::num(TranslatorSec, 4),
              std::to_string(Tree.size()), TablePrinter::num(EvalSec, 4),
              std::to_string(E.stats().RulesEvaluated)});
  }
  std::printf("== Figure 2: the FNC-2 system pipeline, generation time vs "
              "execution time ==\n%s\n",
              T.str().c_str());

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
