//===- bench/ablation_incremental.cpp - incremental evaluation ------------===//
//
// Section 2.1.2: the incremental evaluator limits reevaluation to affected
// instances via changed/unchanged/unknown statuses and old/new comparison.
// We apply random single-subtree edits to trees of growing size and compare
// (a) incremental update time and reevaluated-rule counts against a full
// reevaluation, and (b) the start-anywhere strategy (licensed by the DNC
// selectors) against root-driven propagation.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incremental/Incremental.h"
#include "tree/TreeGen.h"
#include "workloads/ClassicGrammars.h"
#include "workloads/MiniPascal.h"

#include <benchmark/benchmark.h>

using namespace fnc2;
using namespace fnc2::bench;

/// Picks a deep node of the same phylum for replacement.
static TreeNode *pickDeepNode(TreeNode *Root) {
  TreeNode *N = Root;
  while (N->arity() != 0)
    N = N->child(N->arity() - 1);
  // Back off one level so the replacement is a real subtree.
  return N->Parent ? N->Parent : N;
}

int main(int argc, char **argv) {
  TablePrinter T({"grammar", "nodes", "full (ms)", "incr (ms)", "speedup",
                  "rules full", "rules incr", "visits skipped"});

  DiagnosticEngine Diags;
  AttributeGrammar Calc = workloads::deskCalculator(Diags);
  DiagnosticEngine GD;
  GeneratedEvaluator GE = generateEvaluator(Calc, GD);

  for (unsigned Size : {1000u, 4000u, 16000u}) {
    TreeGenerator Gen(Calc, Size + 3);
    Tree Tr = Gen.generate(Size);
    IncrementalEvaluator IE(GE.Plan);
    Evaluator Full(GE.Plan);
    DiagnosticEngine D;
    if (!IE.initial(Tr, D)) {
      std::fprintf(stderr, "%s\n", D.dump().c_str());
      continue;
    }

    // Edit: replace a deep subtree by a fresh random one.
    TreeNode *Target = pickDeepNode(Tr.root());
    PhylumId Phy = Calc.prod(Target->Prod).Lhs;
    TreeGenerator EditGen(Calc, 999);
    auto Fresh = EditGen.generateNode(Tr, Phy, 12);
    IE.replaceSubtree(Tr, Target, std::move(Fresh));
    IE.resetStats();
    Timer TI;
    if (!IE.update(Tr, D, UpdateStrategy::StartAnywhere)) {
      std::fprintf(stderr, "%s\n", D.dump().c_str());
      continue;
    }
    double IncrMs = TI.milliseconds();
    uint64_t IncrRules = IE.stats().RulesReevaluated;
    uint64_t Skipped = IE.stats().VisitsSkipped;

    // Full reevaluation of the same (edited) tree for comparison.
    Tree Copy(Calc);
    Copy.setRoot(Tr.clone(Tr.root()));
    Timer TF;
    if (!Full.evaluate(Copy, D))
      continue;
    double FullMs = TF.milliseconds();

    T.addRow({"desk-calc", std::to_string(Tr.size()),
              TablePrinter::num(FullMs, 3), TablePrinter::num(IncrMs, 3),
              TablePrinter::num(FullMs / (IncrMs > 0 ? IncrMs : 1e-9), 1) +
                  "x",
              std::to_string(Full.stats().RulesEvaluated),
              std::to_string(IncrRules), std::to_string(Skipped)});
  }
  std::printf("== ablation: incremental vs exhaustive reevaluation ==\n%s\n",
              T.str().c_str());

  // Strategy comparison: start-anywhere vs from-root.
  {
    TablePrinter S({"strategy", "rules reevaluated", "visits performed",
                    "visits skipped"});
    for (int Mode = 0; Mode != 2; ++Mode) {
      TreeGenerator Gen(Calc, 77);
      Tree Tr = Gen.generate(8000);
      IncrementalEvaluator IE(GE.Plan);
      DiagnosticEngine D;
      if (!IE.initial(Tr, D))
        continue;
      TreeNode *Target = pickDeepNode(Tr.root());
      TreeGenerator EditGen(Calc, 3);
      auto Fresh =
          EditGen.generateNode(Tr, Calc.prod(Target->Prod).Lhs, 10);
      IE.replaceSubtree(Tr, Target, std::move(Fresh));
      IE.resetStats();
      IE.update(Tr, D,
                Mode == 0 ? UpdateStrategy::StartAnywhere
                          : UpdateStrategy::FromRoot);
      S.addRow({Mode == 0 ? "start-anywhere (DNC)" : "from-root",
                std::to_string(IE.stats().RulesReevaluated),
                std::to_string(IE.stats().VisitsPerformed),
                std::to_string(IE.stats().VisitsSkipped)});
    }
    std::printf("== start-anywhere vs root-driven propagation ==\n%s\n",
                S.str().c_str());
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
