file(REMOVE_RECURSE
  "CMakeFiles/olga_test.dir/OlgaTest.cpp.o"
  "CMakeFiles/olga_test.dir/OlgaTest.cpp.o.d"
  "olga_test"
  "olga_test.pdb"
  "olga_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olga_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
