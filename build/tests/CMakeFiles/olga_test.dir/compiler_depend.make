# Empty compiler generated dependencies file for olga_test.
# This may be replaced when dependencies are built.
