file(REMOVE_RECURSE
  "CMakeFiles/ordered_test.dir/OrderedTest.cpp.o"
  "CMakeFiles/ordered_test.dir/OrderedTest.cpp.o.d"
  "ordered_test"
  "ordered_test.pdb"
  "ordered_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
