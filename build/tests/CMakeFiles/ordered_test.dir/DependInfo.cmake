
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/OrderedTest.cpp" "tests/CMakeFiles/ordered_test.dir/OrderedTest.cpp.o" "gcc" "tests/CMakeFiles/ordered_test.dir/OrderedTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/fnc2_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/olga/CMakeFiles/fnc2_olga.dir/DependInfo.cmake"
  "/root/repo/build/src/fnc2/CMakeFiles/fnc2_fnc2.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/fnc2_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/fnc2_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/incremental/CMakeFiles/fnc2_incremental.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/fnc2_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fnc2_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/visitseq/CMakeFiles/fnc2_visitseq.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_ordered.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fnc2_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gfa/CMakeFiles/fnc2_gfa.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/fnc2_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/fnc2_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/fnc2_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fnc2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
