# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/grammar_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/ordered_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/incremental_test[1]_include.cmake")
include("/root/repo/build/tests/olga_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
