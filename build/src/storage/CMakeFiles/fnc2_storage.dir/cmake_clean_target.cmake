file(REMOVE_RECURSE
  "libfnc2_storage.a"
)
