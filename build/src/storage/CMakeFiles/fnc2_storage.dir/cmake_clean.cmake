file(REMOVE_RECURSE
  "CMakeFiles/fnc2_storage.dir/Lifetime.cpp.o"
  "CMakeFiles/fnc2_storage.dir/Lifetime.cpp.o.d"
  "CMakeFiles/fnc2_storage.dir/StorageEvaluator.cpp.o"
  "CMakeFiles/fnc2_storage.dir/StorageEvaluator.cpp.o.d"
  "libfnc2_storage.a"
  "libfnc2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
