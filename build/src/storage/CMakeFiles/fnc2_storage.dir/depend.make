# Empty dependencies file for fnc2_storage.
# This may be replaced when dependencies are built.
