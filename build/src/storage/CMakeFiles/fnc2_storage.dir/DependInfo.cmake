
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/Lifetime.cpp" "src/storage/CMakeFiles/fnc2_storage.dir/Lifetime.cpp.o" "gcc" "src/storage/CMakeFiles/fnc2_storage.dir/Lifetime.cpp.o.d"
  "/root/repo/src/storage/StorageEvaluator.cpp" "src/storage/CMakeFiles/fnc2_storage.dir/StorageEvaluator.cpp.o" "gcc" "src/storage/CMakeFiles/fnc2_storage.dir/StorageEvaluator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/visitseq/CMakeFiles/fnc2_visitseq.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fnc2_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/fnc2_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_ordered.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fnc2_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/gfa/CMakeFiles/fnc2_gfa.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/fnc2_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/fnc2_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fnc2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
