# Empty compiler generated dependencies file for fnc2_gfa.
# This may be replaced when dependencies are built.
