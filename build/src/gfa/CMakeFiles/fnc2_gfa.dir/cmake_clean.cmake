file(REMOVE_RECURSE
  "CMakeFiles/fnc2_gfa.dir/GrammarFlow.cpp.o"
  "CMakeFiles/fnc2_gfa.dir/GrammarFlow.cpp.o.d"
  "libfnc2_gfa.a"
  "libfnc2_gfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_gfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
