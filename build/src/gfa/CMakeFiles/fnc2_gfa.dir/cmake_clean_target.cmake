file(REMOVE_RECURSE
  "libfnc2_gfa.a"
)
