file(REMOVE_RECURSE
  "libfnc2_value.a"
)
