# Empty compiler generated dependencies file for fnc2_value.
# This may be replaced when dependencies are built.
