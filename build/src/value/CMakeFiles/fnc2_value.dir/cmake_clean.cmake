file(REMOVE_RECURSE
  "CMakeFiles/fnc2_value.dir/Value.cpp.o"
  "CMakeFiles/fnc2_value.dir/Value.cpp.o.d"
  "libfnc2_value.a"
  "libfnc2_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
