# Empty dependencies file for fnc2_grammar.
# This may be replaced when dependencies are built.
