file(REMOVE_RECURSE
  "CMakeFiles/fnc2_grammar.dir/AttributeGrammar.cpp.o"
  "CMakeFiles/fnc2_grammar.dir/AttributeGrammar.cpp.o.d"
  "CMakeFiles/fnc2_grammar.dir/GrammarBuilder.cpp.o"
  "CMakeFiles/fnc2_grammar.dir/GrammarBuilder.cpp.o.d"
  "libfnc2_grammar.a"
  "libfnc2_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
