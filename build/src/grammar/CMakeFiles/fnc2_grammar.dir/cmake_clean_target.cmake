file(REMOVE_RECURSE
  "libfnc2_grammar.a"
)
