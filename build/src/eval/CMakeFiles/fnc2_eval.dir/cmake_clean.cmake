file(REMOVE_RECURSE
  "CMakeFiles/fnc2_eval.dir/DemandEvaluator.cpp.o"
  "CMakeFiles/fnc2_eval.dir/DemandEvaluator.cpp.o.d"
  "CMakeFiles/fnc2_eval.dir/Evaluator.cpp.o"
  "CMakeFiles/fnc2_eval.dir/Evaluator.cpp.o.d"
  "libfnc2_eval.a"
  "libfnc2_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
