file(REMOVE_RECURSE
  "libfnc2_eval.a"
)
