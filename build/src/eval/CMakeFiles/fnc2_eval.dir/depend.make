# Empty dependencies file for fnc2_eval.
# This may be replaced when dependencies are built.
