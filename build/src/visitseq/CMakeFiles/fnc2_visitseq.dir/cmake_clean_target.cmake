file(REMOVE_RECURSE
  "libfnc2_visitseq.a"
)
