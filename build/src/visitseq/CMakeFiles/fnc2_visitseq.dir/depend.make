# Empty dependencies file for fnc2_visitseq.
# This may be replaced when dependencies are built.
