file(REMOVE_RECURSE
  "CMakeFiles/fnc2_visitseq.dir/VisitSequence.cpp.o"
  "CMakeFiles/fnc2_visitseq.dir/VisitSequence.cpp.o.d"
  "libfnc2_visitseq.a"
  "libfnc2_visitseq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_visitseq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
