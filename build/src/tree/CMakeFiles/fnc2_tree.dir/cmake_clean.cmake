file(REMOVE_RECURSE
  "CMakeFiles/fnc2_tree.dir/Tree.cpp.o"
  "CMakeFiles/fnc2_tree.dir/Tree.cpp.o.d"
  "CMakeFiles/fnc2_tree.dir/TreeGen.cpp.o"
  "CMakeFiles/fnc2_tree.dir/TreeGen.cpp.o.d"
  "libfnc2_tree.a"
  "libfnc2_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
