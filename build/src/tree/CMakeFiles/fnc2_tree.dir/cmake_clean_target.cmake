file(REMOVE_RECURSE
  "libfnc2_tree.a"
)
