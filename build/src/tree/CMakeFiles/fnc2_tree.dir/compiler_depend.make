# Empty compiler generated dependencies file for fnc2_tree.
# This may be replaced when dependencies are built.
