# Empty compiler generated dependencies file for fnc2_tools.
# This may be replaced when dependencies are built.
