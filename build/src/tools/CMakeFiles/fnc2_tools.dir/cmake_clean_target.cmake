file(REMOVE_RECURSE
  "libfnc2_tools.a"
)
