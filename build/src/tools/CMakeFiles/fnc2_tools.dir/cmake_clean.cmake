file(REMOVE_RECURSE
  "CMakeFiles/fnc2_tools.dir/Companion.cpp.o"
  "CMakeFiles/fnc2_tools.dir/Companion.cpp.o.d"
  "libfnc2_tools.a"
  "libfnc2_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
