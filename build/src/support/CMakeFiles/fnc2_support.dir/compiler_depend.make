# Empty compiler generated dependencies file for fnc2_support.
# This may be replaced when dependencies are built.
