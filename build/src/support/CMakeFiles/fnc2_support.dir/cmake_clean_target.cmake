file(REMOVE_RECURSE
  "libfnc2_support.a"
)
