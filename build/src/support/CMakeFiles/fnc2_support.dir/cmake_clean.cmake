file(REMOVE_RECURSE
  "CMakeFiles/fnc2_support.dir/BitMatrix.cpp.o"
  "CMakeFiles/fnc2_support.dir/BitMatrix.cpp.o.d"
  "CMakeFiles/fnc2_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/fnc2_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/fnc2_support.dir/Digraph.cpp.o"
  "CMakeFiles/fnc2_support.dir/Digraph.cpp.o.d"
  "CMakeFiles/fnc2_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/fnc2_support.dir/TablePrinter.cpp.o.d"
  "libfnc2_support.a"
  "libfnc2_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
