file(REMOVE_RECURSE
  "libfnc2_partition.a"
)
