# Empty compiler generated dependencies file for fnc2_partition.
# This may be replaced when dependencies are built.
