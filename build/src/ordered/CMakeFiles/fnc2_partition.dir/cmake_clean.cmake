file(REMOVE_RECURSE
  "CMakeFiles/fnc2_partition.dir/Partition.cpp.o"
  "CMakeFiles/fnc2_partition.dir/Partition.cpp.o.d"
  "libfnc2_partition.a"
  "libfnc2_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
