# Empty compiler generated dependencies file for fnc2_ordered.
# This may be replaced when dependencies are built.
