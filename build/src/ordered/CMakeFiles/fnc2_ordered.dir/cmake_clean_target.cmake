file(REMOVE_RECURSE
  "libfnc2_ordered.a"
)
