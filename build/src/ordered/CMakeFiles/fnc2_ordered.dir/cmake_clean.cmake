file(REMOVE_RECURSE
  "CMakeFiles/fnc2_ordered.dir/Transform.cpp.o"
  "CMakeFiles/fnc2_ordered.dir/Transform.cpp.o.d"
  "libfnc2_ordered.a"
  "libfnc2_ordered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_ordered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
