
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordered/Transform.cpp" "src/ordered/CMakeFiles/fnc2_ordered.dir/Transform.cpp.o" "gcc" "src/ordered/CMakeFiles/fnc2_ordered.dir/Transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/fnc2_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/gfa/CMakeFiles/fnc2_gfa.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/fnc2_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/fnc2_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fnc2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
