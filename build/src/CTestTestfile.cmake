# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("value")
subdirs("grammar")
subdirs("tree")
subdirs("gfa")
subdirs("analysis")
subdirs("ordered")
subdirs("visitseq")
subdirs("eval")
subdirs("storage")
subdirs("incremental")
subdirs("olga")
subdirs("codegen")
subdirs("tools")
subdirs("fnc2")
subdirs("workloads")
