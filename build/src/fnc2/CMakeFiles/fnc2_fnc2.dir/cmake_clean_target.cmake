file(REMOVE_RECURSE
  "libfnc2_fnc2.a"
)
