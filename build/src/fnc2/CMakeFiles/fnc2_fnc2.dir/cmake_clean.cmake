file(REMOVE_RECURSE
  "CMakeFiles/fnc2_fnc2.dir/Generator.cpp.o"
  "CMakeFiles/fnc2_fnc2.dir/Generator.cpp.o.d"
  "libfnc2_fnc2.a"
  "libfnc2_fnc2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_fnc2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
