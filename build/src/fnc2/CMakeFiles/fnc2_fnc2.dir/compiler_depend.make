# Empty compiler generated dependencies file for fnc2_fnc2.
# This may be replaced when dependencies are built.
