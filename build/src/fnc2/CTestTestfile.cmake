# CMake generated Testfile for 
# Source directory: /root/repo/src/fnc2
# Build directory: /root/repo/build/src/fnc2
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
