file(REMOVE_RECURSE
  "libfnc2_olga.a"
)
