file(REMOVE_RECURSE
  "CMakeFiles/fnc2_olga.dir/Driver.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Driver.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/ExprEval.cpp.o"
  "CMakeFiles/fnc2_olga.dir/ExprEval.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/Lexer.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Lexer.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/Lower.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Lower.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/Optimizer.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Optimizer.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/Parser.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Parser.cpp.o.d"
  "CMakeFiles/fnc2_olga.dir/Sema.cpp.o"
  "CMakeFiles/fnc2_olga.dir/Sema.cpp.o.d"
  "libfnc2_olga.a"
  "libfnc2_olga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_olga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
