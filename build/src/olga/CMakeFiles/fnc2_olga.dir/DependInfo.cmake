
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/olga/Driver.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Driver.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Driver.cpp.o.d"
  "/root/repo/src/olga/ExprEval.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/ExprEval.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/ExprEval.cpp.o.d"
  "/root/repo/src/olga/Lexer.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Lexer.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Lexer.cpp.o.d"
  "/root/repo/src/olga/Lower.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Lower.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Lower.cpp.o.d"
  "/root/repo/src/olga/Optimizer.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Optimizer.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Optimizer.cpp.o.d"
  "/root/repo/src/olga/Parser.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Parser.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Parser.cpp.o.d"
  "/root/repo/src/olga/Sema.cpp" "src/olga/CMakeFiles/fnc2_olga.dir/Sema.cpp.o" "gcc" "src/olga/CMakeFiles/fnc2_olga.dir/Sema.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grammar/CMakeFiles/fnc2_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/fnc2_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fnc2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
