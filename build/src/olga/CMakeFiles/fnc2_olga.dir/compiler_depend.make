# Empty compiler generated dependencies file for fnc2_olga.
# This may be replaced when dependencies are built.
