file(REMOVE_RECURSE
  "libfnc2_codegen.a"
)
