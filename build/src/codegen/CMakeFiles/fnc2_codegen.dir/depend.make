# Empty dependencies file for fnc2_codegen.
# This may be replaced when dependencies are built.
