file(REMOVE_RECURSE
  "CMakeFiles/fnc2_codegen.dir/CEmitter.cpp.o"
  "CMakeFiles/fnc2_codegen.dir/CEmitter.cpp.o.d"
  "libfnc2_codegen.a"
  "libfnc2_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
