file(REMOVE_RECURSE
  "libfnc2_analysis.a"
)
