file(REMOVE_RECURSE
  "CMakeFiles/fnc2_analysis.dir/Classify.cpp.o"
  "CMakeFiles/fnc2_analysis.dir/Classify.cpp.o.d"
  "CMakeFiles/fnc2_analysis.dir/NonCircular.cpp.o"
  "CMakeFiles/fnc2_analysis.dir/NonCircular.cpp.o.d"
  "CMakeFiles/fnc2_analysis.dir/Oag.cpp.o"
  "CMakeFiles/fnc2_analysis.dir/Oag.cpp.o.d"
  "CMakeFiles/fnc2_analysis.dir/Snc.cpp.o"
  "CMakeFiles/fnc2_analysis.dir/Snc.cpp.o.d"
  "libfnc2_analysis.a"
  "libfnc2_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
