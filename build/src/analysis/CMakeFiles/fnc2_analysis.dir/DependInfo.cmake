
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/Classify.cpp" "src/analysis/CMakeFiles/fnc2_analysis.dir/Classify.cpp.o" "gcc" "src/analysis/CMakeFiles/fnc2_analysis.dir/Classify.cpp.o.d"
  "/root/repo/src/analysis/NonCircular.cpp" "src/analysis/CMakeFiles/fnc2_analysis.dir/NonCircular.cpp.o" "gcc" "src/analysis/CMakeFiles/fnc2_analysis.dir/NonCircular.cpp.o.d"
  "/root/repo/src/analysis/Oag.cpp" "src/analysis/CMakeFiles/fnc2_analysis.dir/Oag.cpp.o" "gcc" "src/analysis/CMakeFiles/fnc2_analysis.dir/Oag.cpp.o.d"
  "/root/repo/src/analysis/Snc.cpp" "src/analysis/CMakeFiles/fnc2_analysis.dir/Snc.cpp.o" "gcc" "src/analysis/CMakeFiles/fnc2_analysis.dir/Snc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gfa/CMakeFiles/fnc2_gfa.dir/DependInfo.cmake"
  "/root/repo/build/src/ordered/CMakeFiles/fnc2_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/fnc2_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/fnc2_value.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/fnc2_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
