# Empty compiler generated dependencies file for fnc2_analysis.
# This may be replaced when dependencies are built.
