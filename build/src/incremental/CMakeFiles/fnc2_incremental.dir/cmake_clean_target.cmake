file(REMOVE_RECURSE
  "libfnc2_incremental.a"
)
