file(REMOVE_RECURSE
  "CMakeFiles/fnc2_incremental.dir/Incremental.cpp.o"
  "CMakeFiles/fnc2_incremental.dir/Incremental.cpp.o.d"
  "libfnc2_incremental.a"
  "libfnc2_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
