# Empty dependencies file for fnc2_incremental.
# This may be replaced when dependencies are built.
