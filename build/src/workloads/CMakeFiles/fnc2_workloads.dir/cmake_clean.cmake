file(REMOVE_RECURSE
  "CMakeFiles/fnc2_workloads.dir/ClassicGrammars.cpp.o"
  "CMakeFiles/fnc2_workloads.dir/ClassicGrammars.cpp.o.d"
  "CMakeFiles/fnc2_workloads.dir/MiniPascal.cpp.o"
  "CMakeFiles/fnc2_workloads.dir/MiniPascal.cpp.o.d"
  "CMakeFiles/fnc2_workloads.dir/SpecGen.cpp.o"
  "CMakeFiles/fnc2_workloads.dir/SpecGen.cpp.o.d"
  "libfnc2_workloads.a"
  "libfnc2_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fnc2_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
