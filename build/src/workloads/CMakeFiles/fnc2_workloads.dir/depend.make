# Empty dependencies file for fnc2_workloads.
# This may be replaced when dependencies are built.
