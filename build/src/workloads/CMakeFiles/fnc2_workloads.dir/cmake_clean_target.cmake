file(REMOVE_RECURSE
  "libfnc2_workloads.a"
)
