# Empty dependencies file for incremental_editor.
# This may be replaced when dependencies are built.
