file(REMOVE_RECURSE
  "CMakeFiles/incremental_editor.dir/incremental_editor.cpp.o"
  "CMakeFiles/incremental_editor.dir/incremental_editor.cpp.o.d"
  "incremental_editor"
  "incremental_editor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_editor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
