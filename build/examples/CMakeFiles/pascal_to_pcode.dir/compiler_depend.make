# Empty compiler generated dependencies file for pascal_to_pcode.
# This may be replaced when dependencies are built.
